// Command bbmb runs a BlindBox middlebox: it listens for BlindBox HTTPS
// clients, proxies them to an upstream server, performs obfuscated rule
// encryption with both endpoints, and inspects the encrypted token stream
// against a ruleset.
//
// Usage:
//
//	bbmb -listen :8443 -forward server:9443 -rules rules.txt -rgconfig rg.json [-secondary]
//
// The ruleset and RG configuration are produced by bbrulegen.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	blindbox "repro"
	"repro/internal/middlebox"
	"repro/internal/rgconfig"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "address to accept BlindBox HTTPS clients on")
	forward := flag.String("forward", "", "upstream server address (required)")
	rulesPath := flag.String("rules", "", "signed ruleset file from bbrulegen (required)")
	rgPath := flag.String("rgconfig", "", "rule-generator public configuration from bbrulegen (required)")
	secondary := flag.Bool("secondary", false, "enable the Protocol III decryption element and secondary inspection")
	flag.Parse()
	if *forward == "" || *rulesPath == "" || *rgPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	signed, err := rgconfig.LoadSignedRuleset(*rulesPath)
	if err != nil {
		log.Fatalf("loading ruleset: %v", err)
	}
	pub, _, err := rgconfig.LoadPublic(*rgPath)
	if err != nil {
		log.Fatalf("loading RG config: %v", err)
	}

	mb, err := blindbox.NewMiddlebox(middlebox.Config{
		Ruleset:     signed,
		RGPublicKey: pub,
		Secondary:   *secondary,
		OnAlert: func(a blindbox.Alert) {
			switch {
			case a.Secondary:
				log.Printf("ALERT conn=%d %s secondary rules=%v", a.ConnID, a.Direction, a.SecondarySIDs)
			case a.Event.Kind == blindbox.RuleMatch:
				log.Printf("ALERT conn=%d %s sid=%d msg=%q offset=%d action=%v",
					a.ConnID, a.Direction, a.Event.Rule.SID, a.Event.Rule.Msg,
					a.Event.Offset, a.Event.Rule.Action)
			}
		},
	})
	if err != nil {
		log.Fatalf("middlebox: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	p1, p2, _ := signed.Ruleset.ProtocolBreakdown()
	fmt.Printf("bbmb: %d rules (%.0f%% protocol I, %.0f%% <= II), listening on %s, forwarding to %s\n",
		len(signed.Ruleset.Rules), p1*100, p2*100, ln.Addr(), *forward)
	log.Fatal(mb.Serve(ln, *forward))
}
