// Command bbmb runs a BlindBox middlebox: it listens for BlindBox HTTPS
// clients, proxies them to an upstream server, performs obfuscated rule
// encryption with both endpoints, and inspects the encrypted token stream
// against a ruleset.
//
// Usage:
//
//	bbmb -listen :8443 -forward server:9443 -rules rules.txt -rgconfig rg.json [-secondary]
//	     [-admin :8081] [-worker mb-a] [-trace spans.jsonl] [-trace-sample 0.01] [-recorder-events 256]
//	     [-log-level info] [-policy fail-closed] [-dial-retries 3] [-prep-retries 3]
//	     [-timeout-handshake 10s] [-timeout-prep 60s] [-timeout-idle -1s]
//	     [-timeout-write 1m] [-timeout-barrier 30s]
//
// The ruleset and RG configuration are produced by bbrulegen. With -admin,
// the middlebox serves Prometheus metrics on /metrics, a JSON snapshot on
// /metrics.json, net/http/pprof under /debug/pprof/, and the flight
// recorder's flow tables on /debug/flows and /debug/flightrecorder?flow=N.
// -worker names this middlebox for fleet aggregation: the name is exported
// as blindbox_worker_info{worker=...} so `bbfleet` can confirm it scraped
// the worker it thinks it scraped (RUNBOOK.md, Fleet observability).
// With -trace, spans are appended to the given JSONL file, summarizable
// with `bbtrace -spans`: head-sampled flows (-trace-sample of flows,
// decided at the client when it traces, here otherwise) stream every span,
// and every other flow buffers its last -recorder-events spans in a
// per-flow ring flushed only on an interesting end — alert, block,
// timeout, degradation, retry exhaustion or connection error. -trace-sample 1
// streams everything (the legacy behavior); 0 keeps only interesting flows.
//
// The fault-tolerance knobs (RUNBOOK.md) bound every blocking step: a
// timeout flag of 0 selects the library default, a negative value disables
// that deadline. -policy picks what happens when detection cannot keep up
// inside the barrier deadline: fail-closed (default, the paper's stance —
// the flow is killed rather than forwarded unscanned) or fail-open (the
// flow degrades to plain forwarding and is counted in
// blindbox_mb_unscanned_bytes_total).
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	blindbox "repro"
	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/rgconfig"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "address to accept BlindBox HTTPS clients on")
	forward := flag.String("forward", "", "upstream server address (required)")
	rulesPath := flag.String("rules", "", "signed ruleset file from bbrulegen (required)")
	rgPath := flag.String("rgconfig", "", "rule-generator public configuration from bbrulegen (required)")
	secondary := flag.Bool("secondary", false, "enable the Protocol III decryption element and secondary inspection")
	admin := flag.String("admin", "", "serve /metrics, /metrics.json and /debug/pprof on this address")
	worker := flag.String("worker", "", "fleet-wide worker name, exported as blindbox_worker_info for bbfleet")
	tracePath := flag.String("trace", "", "append per-flow JSONL spans to this file")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate: fraction of flows that stream every span (interesting flows always flush)")
	recorderEvents := flag.Int("recorder-events", obs.DefaultRecorderEvents, "per-flow flight-recorder ring capacity in spans")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	policy := flag.String("policy", "fail-closed", "degradation policy on barrier timeout: fail-closed or fail-open")
	dialRetries := flag.Int("dial-retries", 0, "upstream dial attempts (0 = default 3)")
	prepRetries := flag.Int("prep-retries", 0, "rule-preparation attempts per endpoint (0 = default 3)")
	tmoHandshake := flag.Duration("timeout-handshake", 0, "interposed handshake deadline (0 = default 10s, negative disables)")
	tmoPrep := flag.Duration("timeout-prep", 0, "per-attempt rule-preparation deadline (0 = default 60s, negative disables)")
	tmoIdle := flag.Duration("timeout-idle", 0, "idle read deadline on forwarded flows (0 = default off, negative disables)")
	tmoWrite := flag.Duration("timeout-write", 0, "per-record forward write deadline (0 = default 1m, negative disables)")
	tmoBarrier := flag.Duration("timeout-barrier", 0, "detection barrier deadline (0 = default 30s, negative disables)")
	flag.Parse()
	if *forward == "" || *rulesPath == "" || *rgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	pol, err := middlebox.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("bad -policy: %v", err)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("bad -log-level: %v", err)
	}
	logger := obs.NewLogger(os.Stderr, level)

	signed, err := rgconfig.LoadSignedRuleset(*rulesPath)
	if err != nil {
		log.Fatalf("loading ruleset: %v", err)
	}
	pub, _, err := rgconfig.LoadPublic(*rgPath)
	if err != nil {
		log.Fatalf("loading RG config: %v", err)
	}

	reg := obs.NewRegistry()
	obs.RegisterWorkerInfo(reg, *worker)
	var trace obs.Sink
	flushTrace := func() {}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening trace file: %v", err)
		}
		sink := obs.NewJSONLSink(f)
		flushTrace = func() {
			if err := sink.Flush(); err != nil {
				logger.Error("flushing trace file", "err", err)
			}
		}
		// The sink buffers; drain it every second so the span file tails
		// usefully while the daemon runs (shutdown flushes the remainder).
		go func() {
			for range time.Tick(time.Second) {
				flushTrace()
			}
		}()
		trace = sink
	}
	// The flight recorder is always on: rings are pooled and bounded, the
	// /debug endpoints work without -trace, and with -trace it enforces the
	// sampling policy instead of streaming every flow.
	rec := blindbox.NewRecorder(blindbox.RecorderConfig{
		Events:  *recorderEvents,
		Sample:  *traceSample,
		Sink:    trace,
		Metrics: reg,
	})

	mb, err := blindbox.NewMiddlebox(middlebox.Config{
		Ruleset:     signed,
		RGPublicKey: pub,
		Secondary:   *secondary,
		Metrics:     reg,
		Trace:       trace,
		Recorder:    rec,
		Logger:      logger,
		Policy:      pol,
		Timeouts: middlebox.Timeouts{
			Handshake: *tmoHandshake, Prep: *tmoPrep, Idle: *tmoIdle,
			Write: *tmoWrite, Barrier: *tmoBarrier,
		},
		DialRetry: retry.Policy{Attempts: *dialRetries},
		PrepRetry: retry.Policy{Attempts: *prepRetries},
		OnAlert: func(a blindbox.Alert) {
			switch {
			case a.Secondary:
				logger.Warn("alert", "conn", a.ConnID, "dir", a.Direction, "secondary", true, "sids", a.SecondarySIDs)
			case a.Event.Kind == blindbox.RuleMatch:
				logger.Warn("alert", "conn", a.ConnID, "dir", a.Direction,
					"sid", a.Event.Rule.SID, "msg", a.Event.Rule.Msg,
					"offset", a.Event.Offset, "action", a.Event.Rule.Action.String())
			}
		},
	})
	if err != nil {
		log.Fatalf("middlebox: %v", err)
	}

	if *admin != "" {
		mux := obs.AdminMux(reg)
		rec.Mount(mux)
		aln, err := obs.ServeAdminMux(*admin, mux, logger)
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		defer aln.Close()
		fmt.Printf("bbmb: admin endpoint on http://%s/metrics (pprof under /debug/pprof/, flight recorder on /debug/flows)\n", aln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Serve only returns on listener failure, and log.Fatal skips deferred
	// cleanup — drain in-flight detection and the span buffer on SIGINT/TERM.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigC
		logger.Info("shutting down", "signal", sig.String())
		_ = ln.Close()
		if err := mb.Close(); err != nil {
			logger.Error("draining middlebox", "err", err)
		}
		flushTrace()
		os.Exit(0)
	}()
	p1, p2, _ := signed.Ruleset.ProtocolBreakdown()
	fmt.Printf("bbmb: %d rules (%.0f%% protocol I, %.0f%% <= II), listening on %s, forwarding to %s, policy %s\n",
		len(signed.Ruleset.Rules), p1*100, p2*100, ln.Addr(), *forward, pol)
	err = mb.Serve(ln, *forward)
	flushTrace()
	log.Fatal(err)
}
