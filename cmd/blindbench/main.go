// Command blindbench regenerates every table and figure of the BlindBox
// paper's evaluation (§7) on this machine.
//
// Usage:
//
//	blindbench -experiment all
//	blindbench -experiment table1|table2|fig3|fig4|fig5|fig6|accuracy|throughput|pipeline|setup|setupbreakdown|ablation|faults
//	blindbench -experiment pipeline -matrix 1,2,4,8 -out BENCH_pipeline.json [-matrix-md matrix.md] [-metrics-out metrics.json]
//	blindbench -experiment faults -policy fail-closed -faults-out BENCH_faults.json
//	blindbench -experiment setupbreakdown -setup-out BENCH_setup_breakdown.json [-trace-dir traces/]
//	blindbench -experiment obsoverhead -obs-out BENCH_obs.json
//
// Absolute numbers reflect this host, not the paper's DPDK testbed; the
// reproduced quantities are the comparative shapes (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/middlebox"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run: all, table1, table2, fig3, fig4, fig5, fig6, accuracy, throughput, pipeline, setup, setupbreakdown, ablation, faults, scenarios, obsoverhead")
	fast := flag.Bool("fast", false, "reduce sample sizes for a quicker run")
	parallel := flag.Int("parallel", 0, "worker count for the pipeline experiment's parallel stages (0 = self-tuned)")
	matrix := flag.String("matrix", "", "pipeline: comma-separated GOMAXPROCS values for the scaling matrix (e.g. 1,2,4,8; empty disables)")
	matrixMD := flag.String("matrix-md", "", "pipeline: also render the scaling matrix as a markdown table to this file")
	out := flag.String("out", "BENCH_pipeline.json", "path for the pipeline experiment's machine-readable result (empty disables)")
	metricsOut := flag.String("metrics-out", "", "write the pipeline experiment's obs registry snapshot to this JSON file")
	policy := flag.String("policy", "fail-closed", "degradation policy for the faults experiment: fail-closed or fail-open")
	faultsOut := flag.String("faults-out", "BENCH_faults.json", "path for the faults experiment's machine-readable result (empty disables)")
	setupOut := flag.String("setup-out", "BENCH_setup_breakdown.json", "path for the setupbreakdown experiment's machine-readable result (empty disables)")
	scenariosOut := flag.String("scenarios-out", "BENCH_scenarios.json", "path for the scenarios experiment's machine-readable result (empty disables)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "path for the obsoverhead experiment's machine-readable result (empty disables)")
	traceDir := flag.String("trace-dir", "", "setupbreakdown: also write the parties' raw span files (client/mb/server.jsonl) to this directory")
	flag.Parse()

	runners := map[string]func(fast bool) error{
		"table1":     runTable1,
		"table2":     runTable2,
		"fig3":       runFig3,
		"fig4":       runFig4,
		"fig5":       runFig5,
		"fig6":       runFig6,
		"accuracy":   runAccuracy,
		"throughput": runThroughput,
		"pipeline": func(fast bool) error {
			return runPipeline(fast, *parallel, *matrix, *matrixMD, *out, *metricsOut)
		},
		"setup":      runSetup,
		"setupbreakdown": func(fast bool) error {
			return runSetupBreakdown(fast, *setupOut, *traceDir)
		},
		"ablation":    runAblation,
		"faults":      func(fast bool) error { return runFaults(fast, *policy, *faultsOut) },
		"scenarios":   func(bool) error { return runScenarios(*scenariosOut) },
		"obsoverhead": func(fast bool) error { return runObsOverhead(fast, *obsOut) },
	}
	order := []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "accuracy", "throughput", "pipeline", "setup", "setupbreakdown", "ablation", "faults", "scenarios", "obsoverhead"}

	if *exp == "all" {
		for _, name := range order {
			banner(name)
			if err := runners[name](*fast); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := run(*fast); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *exp, err)
		os.Exit(1)
	}
}

func banner(name string) {
	fmt.Printf("\n===== %s =====\n", name)
}

func runTable1(bool) error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	experiments.PrintTable1(os.Stdout, rows)
	return nil
}

func runTable2(fast bool) error {
	opt := experiments.DefaultTable2Options()
	if fast {
		opt.SetupKeywords = 2
		opt.MinSample = 5 * time.Millisecond
	}
	rows, err := experiments.Table2(opt)
	if err != nil {
		return err
	}
	experiments.PrintTable2(os.Stdout, rows)
	return nil
}

func runFig3(bool) error {
	rows := experiments.PageLoad(netem.Typical20Mbps(), tokenize.Delimiter)
	experiments.PrintPageLoad(os.Stdout, "3 (20Mbps x 10ms)", rows)
	return nil
}

func runFig4(bool) error {
	rows := experiments.PageLoad(netem.Fast1Gbps(), tokenize.Delimiter)
	experiments.PrintPageLoad(os.Stdout, "4 (1Gbps x 10ms)", rows)
	return nil
}

func runFig5(bool) error {
	experiments.PrintBandwidth(os.Stdout, experiments.Bandwidth())
	return nil
}

func runFig6(bool) error {
	experiments.PrintFig6(os.Stdout, experiments.Bandwidth())
	return nil
}

func runAccuracy(fast bool) error {
	opt := experiments.DefaultAccuracyOptions()
	if fast {
		opt.Rules = 100
		opt.Trace.Flows = 50
	}
	results, err := experiments.Accuracy(opt)
	if err != nil {
		return err
	}
	experiments.PrintAccuracy(os.Stdout, results)
	return nil
}

func runThroughput(fast bool) error {
	opt := experiments.DefaultThroughputOptions()
	if fast {
		opt.Rules = 500
		opt.TrafficBytes = 1 << 20
	}
	res, err := experiments.Throughput(opt)
	if err != nil {
		return err
	}
	experiments.PrintThroughput(os.Stdout, res)
	// Per-core scaling: the paper's rates are per core; per-connection
	// engines share nothing, so the aggregate grows with available cores.
	for _, conns := range []int{1, 2, 4} {
		agg, err := experiments.ThroughputScaling(opt, conns)
		if err != nil {
			return err
		}
		fmt.Printf("aggregate over %d parallel connections: %.0f Mbps (GOMAXPROCS=%d)\n",
			conns, agg, runtime.GOMAXPROCS(0))
	}
	return nil
}

func runPipeline(fast bool, workers int, matrix, matrixMD, out, metricsOut string) error {
	opt := experiments.DefaultPipelineOptions()
	opt.Workers = workers
	if matrix != "" {
		gmps, err := parseMatrix(matrix)
		if err != nil {
			return err
		}
		opt.Matrix = gmps
	}
	if fast {
		opt.Rules = 500
		opt.TrafficBytes = 1 << 20
		opt.Conns = 4
	}
	if metricsOut != "" {
		opt.Metrics = obs.NewRegistry()
	}
	res, err := experiments.Pipeline(opt)
	if err != nil {
		return err
	}
	experiments.PrintPipeline(os.Stdout, res)
	if out != "" {
		if err := experiments.WritePipelineJSON(out, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if matrixMD != "" {
		if err := experiments.WriteMatrixMarkdown(matrixMD, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", matrixMD)
	}
	if metricsOut != "" {
		data, err := json.MarshalIndent(opt.Metrics.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(metricsOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	return nil
}

// parseMatrix parses the -matrix flag: a comma-separated list of
// GOMAXPROCS values, e.g. "1,2,4,8".
func parseMatrix(s string) ([]int, error) {
	var gmps []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-matrix: %q is not a positive GOMAXPROCS value", part)
		}
		gmps = append(gmps, n)
	}
	if len(gmps) == 0 {
		return nil, fmt.Errorf("-matrix: no GOMAXPROCS values in %q", s)
	}
	return gmps, nil
}

func runSetup(fast bool) error {
	opt := experiments.DefaultSetupOptions()
	if fast {
		opt.MeasuredKeywords = 2
	}
	res, err := experiments.Setup(opt)
	if err != nil {
		return err
	}
	experiments.PrintSetup(os.Stdout, res)
	return nil
}

func runSetupBreakdown(fast bool, out, traceDir string) error {
	opt := experiments.DefaultSetupBreakdownOptions()
	opt.TraceDir = traceDir
	if fast {
		opt.Sessions = 1
		opt.PayloadBytes = 1 << 10
		opt.Keywords = 2
	}
	res, err := experiments.SetupBreakdown(opt)
	if err != nil {
		return err
	}
	experiments.PrintSetupBreakdown(os.Stdout, res)
	if out != "" {
		if err := experiments.WriteSetupBreakdownJSON(out, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if traceDir != "" {
		fmt.Printf("wrote %s/{client,mb,server}.jsonl — assemble with: go run ./cmd/bbtrace -assemble %s/client.jsonl %s/mb.jsonl %s/server.jsonl\n",
			traceDir, traceDir, traceDir, traceDir)
	}
	return nil
}

func runFaults(fast bool, policy, out string) error {
	pol, err := middlebox.ParsePolicy(policy)
	if err != nil {
		return err
	}
	opt := experiments.DefaultFaultsOptions()
	opt.Policy = pol
	if fast {
		opt.Sessions = 8
		opt.PayloadBytes = 4 << 10
	}
	res, err := experiments.Faults(opt)
	if err != nil {
		return err
	}
	experiments.PrintFaults(os.Stdout, res)
	if out != "" {
		if err := experiments.WriteFaultsJSON(out, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runScenarios(out string) error {
	res, err := experiments.Scenarios(experiments.DefaultScenariosOptions())
	if err != nil {
		return err
	}
	experiments.PrintScenarios(os.Stdout, res)
	if out != "" {
		if err := experiments.WriteScenariosJSON(out, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runObsOverhead(fast bool, out string) error {
	opt := experiments.DefaultObsOverheadOptions()
	if fast {
		opt.Rules = 300
		opt.TrafficBytes = 1 << 20
		opt.Flows = 16
		opt.Reps = 2
	}
	res, err := experiments.ObsOverhead(opt)
	if err != nil {
		return err
	}
	experiments.PrintObsOverhead(os.Stdout, res)
	if out != "" {
		if err := experiments.WriteObsOverheadJSON(out, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func runAblation(bool) error {
	if err := experiments.AblationGarbleSBox(os.Stdout); err != nil {
		return err
	}
	if err := experiments.AblationGarbleRows(os.Stdout); err != nil {
		return err
	}
	return experiments.AblationUnauthorized(os.Stdout)
}
