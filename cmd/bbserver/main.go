// Command bbserver is a BlindBox HTTPS server: it accepts connections
// (typically proxied through a bbmb middlebox) and serves either an echo
// of the request or a synthetic page body.
//
// Usage:
//
//	bbserver -listen :9443 -rgconfig blindbox.endpoint.json [-mode echo|page] [-bytes 65536]
//	         [-admin :8082] [-trace spans.jsonl] [-trace-sample 0.01] [-recorder-events 256]
//
// With -admin, the server exposes its endpoint metrics (handshake duration,
// records written) on /metrics plus net/http/pprof under /debug/pprof/ and
// the flight recorder's flow tables on /debug/flows and
// /debug/flightrecorder?flow=N.
// With -trace, the server appends its pipeline spans (conn, handshake,
// prep.garble, tokenize, encrypt) to the given JSONL file, joining the
// distributed trace the client or middlebox propagates in the handshake —
// assemble the parties' files with `bbtrace -assemble` (DESIGN.md §8).
// The head-sampling decision arrives on the hello with the trace context;
// for flows without one, -trace-sample decides locally. Flows that end in
// an interesting state (alert, timeout, error) always flush their last
// -recorder-events spans. SIGINT/SIGTERM flush the span buffer before exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	blindbox "repro"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/rgconfig"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9443", "listen address")
	rgPath := flag.String("rgconfig", "", "endpoint RG configuration from bbrulegen (required)")
	mode := flag.String("mode", "echo", "echo: return the request; page: return a synthetic page")
	pageBytes := flag.Int("bytes", 64<<10, "synthetic page size for -mode page")
	admin := flag.String("admin", "", "serve /metrics, /metrics.json and /debug/pprof on this address")
	tracePath := flag.String("trace", "", "append per-flow JSONL spans to this file")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate for flows without a wire decision (interesting flows always flush)")
	recorderEvents := flag.Int("recorder-events", obs.DefaultRecorderEvents, "per-flow flight-recorder ring capacity in spans")
	flag.Parse()
	if *rgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	rg, err := rgconfig.LoadEndpoint(*rgPath)
	if err != nil {
		log.Fatalf("loading RG config: %v", err)
	}
	cfg := blindbox.ConnConfig{Core: blindbox.DefaultConfig(), RG: rg}
	flushTrace := func() {}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening trace file: %v", err)
		}
		sink := obs.NewJSONLSink(f)
		flushTrace = func() {
			if err := sink.Flush(); err != nil {
				log.Printf("flushing trace file: %v", err)
			}
		}
		// The sink buffers; drain it every second so the span file tails
		// usefully while the daemon runs (shutdown flushes the remainder).
		go func() {
			for range time.Tick(time.Second) {
				flushTrace()
			}
		}()
		cfg.Trace = sink
	}
	// The flight recorder is always on: rings are pooled and bounded, the
	// /debug endpoints work without -trace, and with -trace it enforces the
	// sampling policy instead of streaming every flow.
	reg := obs.NewRegistry()
	cfg.Recorder = blindbox.NewRecorder(blindbox.RecorderConfig{
		Events:  *recorderEvents,
		Sample:  *traceSample,
		Sink:    cfg.Trace,
		Metrics: reg,
	})

	if *admin != "" {
		cfg.Metrics = reg
		mux := obs.AdminMux(reg)
		cfg.Recorder.Mount(mux)
		aln, err := obs.ServeAdminMux(*admin, mux, obs.NewLogger(os.Stderr, slog.LevelInfo))
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		defer aln.Close()
		fmt.Printf("bbserver: admin endpoint on http://%s/metrics (flight recorder on /debug/flows)\n", aln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// log.Fatal skips deferred cleanup — flush the span buffer on
	// SIGINT/SIGTERM so short demo sessions keep their final spans.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigC
		log.Printf("shutting down on %s", sig)
		_ = ln.Close()
		flushTrace()
		os.Exit(0)
	}()
	fmt.Printf("bbserver (%s) listening on %s\n", *mode, ln.Addr())
	for {
		raw, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go handle(raw, cfg, *mode, *pageBytes)
	}
}

func handle(raw net.Conn, cfg blindbox.ConnConfig, mode string, pageBytes int) {
	conn, err := blindbox.Server(raw, cfg)
	if err != nil {
		_ = raw.Close()
		log.Printf("handshake: %v", err)
		return
	}
	defer conn.Close()
	req, err := io.ReadAll(conn)
	if err != nil {
		log.Printf("read: %v", err)
		return
	}
	log.Printf("request: %d bytes (mb on path: %v)", len(req), conn.MBPresent())
	var werr error
	switch mode {
	case "page":
		body := corpus.SynthesizeTextSeeded(int64(len(req)), pageBytes)
		header := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n", len(body))
		if _, werr = conn.Write([]byte(header)); werr == nil {
			_, werr = conn.Write(body)
		}
	default:
		_, werr = conn.Write(req)
	}
	if werr != nil {
		log.Printf("write: %v", werr)
		return
	}
	if err := conn.CloseWrite(); err != nil {
		log.Printf("close: %v", err)
	}
}
