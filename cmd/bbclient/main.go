// Command bbclient opens a BlindBox HTTPS connection (through a bbmb
// middlebox or directly to a bbserver), sends a request, and prints the
// response, timing the handshake (which includes rule preparation when a
// middlebox is on path) and the transfer separately — the two cost
// components the paper's §7.2.2 separates.
//
// Usage:
//
//	bbclient -addr 127.0.0.1:8443 -rgconfig blindbox.endpoint.json [-data "GET / ..."] [-protocol 2] [-tokens delimiter]
//	         [-timeout 30s] [-retries 3] [-trace spans.jsonl] [-trace-sample 1] [-recorder-events 256]
//
// -timeout bounds the dial and the whole handshake (including rule
// preparation when a middlebox is on path); 0 selects the 30s default and
// a negative value disables the deadline. -retries bounds how many times
// the dial+handshake is attempted with jittered backoff before giving up
// with a typed *retry.Error.
//
// With -trace, the client appends its pipeline spans (conn, handshake,
// prep.garble, tokenize, encrypt) to the given JSONL file and roots a
// distributed trace that the middlebox and server join over the wire —
// assemble the three files with `bbtrace -assemble` (DESIGN.md §8).
// -trace-sample below 1 engages the flight recorder: that fraction of
// flows streams every span (the head-sampling decision rides the hello so
// all parties agree), the rest buffer their last -recorder-events spans
// and flush them only when the flow ends in an interesting state (alert,
// timeout, error).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	blindbox "repro"
	"repro/internal/obs"
	"repro/internal/rgconfig"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8443", "middlebox or server address")
	rgPath := flag.String("rgconfig", "", "endpoint RG configuration from bbrulegen (required)")
	data := flag.String("data", "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n", "request payload")
	protocol := flag.Int("protocol", 2, "BlindBox protocol: 1, 2 or 3")
	tokens := flag.String("tokens", "delimiter", "tokenization: window or delimiter")
	timeout := flag.Duration("timeout", 0, "dial + handshake deadline (0 = default 30s, negative disables)")
	retries := flag.Int("retries", 0, "dial attempts with backoff (0 = default 3)")
	tracePath := flag.String("trace", "", "append per-flow JSONL spans to this file")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate: fraction of flows that stream every span (interesting flows always flush)")
	recorderEvents := flag.Int("recorder-events", obs.DefaultRecorderEvents, "per-flow flight-recorder ring capacity in spans")
	flag.Parse()
	if *rgPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	rg, err := rgconfig.LoadEndpoint(*rgPath)
	if err != nil {
		log.Fatalf("loading RG config: %v", err)
	}

	cfg := blindbox.ConnConfig{Core: blindbox.DefaultConfig(), RG: rg}
	flushTrace := func() {}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening trace file: %v", err)
		}
		sink := obs.NewJSONLSink(f)
		flushTrace = func() {
			if err := sink.Flush(); err != nil {
				log.Printf("flushing trace file: %v", err)
			}
		}
		// Drain the buffered sink every second so the file tails usefully
		// during long transfers; an interrupt flushes the remainder.
		go func() {
			for range time.Tick(time.Second) {
				flushTrace()
			}
		}()
		sigC := make(chan os.Signal, 1)
		signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigC
			flushTrace()
			os.Exit(1)
		}()
		cfg.Trace = sink
		// The recorder enforces -trace-sample: at the default rate of 1
		// every flow streams (legacy behavior); below 1 only sampled and
		// interesting flows reach the span file.
		cfg.Recorder = blindbox.NewRecorder(blindbox.RecorderConfig{
			Events: *recorderEvents,
			Sample: *traceSample,
			Sink:   sink,
		})
	}
	cfg.Timeouts.Handshake = *timeout
	cfg.DialRetry.Attempts = *retries
	cfg.Core.Protocol = blindbox.Protocol(*protocol)
	switch *tokens {
	case "window":
		cfg.Core.Mode = blindbox.WindowTokens
	case "delimiter":
		cfg.Core.Mode = blindbox.DelimiterTokens
	default:
		log.Fatalf("unknown tokenization %q", *tokens)
	}

	start := time.Now()
	conn, err := blindbox.Dial(*addr, cfg)
	if err != nil {
		flushTrace()
		log.Fatalf("dial: %v", err)
	}
	// die closes the connection (emitting its conn span) and drains the
	// trace buffer before exiting, so failed runs still leave usable spans.
	die := func(format string, args ...any) {
		_ = conn.Close()
		flushTrace()
		log.Fatalf(format, args...)
	}
	handshake := time.Since(start)
	fmt.Printf("handshake: %v (middlebox on path: %v)\n", handshake, conn.MBPresent())

	start = time.Now()
	if _, err := conn.Write([]byte(*data)); err != nil {
		die("write: %v", err)
	}
	if err := conn.CloseWrite(); err != nil {
		die("close-write: %v", err)
	}
	resp, err := io.ReadAll(conn)
	if err != nil {
		die("read: %v", err)
	}
	fmt.Printf("transfer: %v, response %d bytes\n", time.Since(start), len(resp))
	if len(resp) < 512 {
		fmt.Printf("response: %q\n", resp)
	}
	_ = conn.Close()
	flushTrace()
}
