// Command bblint is the BlindBox static-analysis driver. It loads every
// package named by its arguments (default ./...), type-checks them with the
// standard library's go/types, runs the rule suite of internal/lint, and
// prints findings as file:line:col diagnostics with rule IDs.
//
// Usage:
//
//	bblint [-json] [-rules] [packages...]
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on load or usage errors.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <rule-id> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI diffing)")
	listRules := flag.Bool("rules", false, "print the rule catalog and exit")
	flag.Parse()

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	rules := lint.DefaultRules(loader.ModulePath, loader.GoMinor)
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("bblint: no packages match %v", patterns))
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fatal(fmt.Errorf("bblint: loading %s: %w", p, err))
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "bblint: warning: %s: %v (analysis may be incomplete)\n", p, terr)
		}
		pkgs = append(pkgs, pkg)
	}

	findings := lint.Run(pkgs, rules)
	relativize(findings)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "bblint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites finding paths relative to the working directory so CI
// output is stable across checkouts.
func relativize(findings []lint.Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(wd, findings[i].File); err == nil && !filepath.IsAbs(rel) {
			findings[i].File = rel
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
