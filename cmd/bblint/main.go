// Command bblint is the BlindBox static-analysis driver. It loads every
// package named by its arguments (default ./...) in parallel, type-checks
// them with the standard library's go/types, runs the rule suite of
// internal/lint (including the secret-flow taint analysis and the
// hotpath-alloc zero-allocation check), and prints findings as
// file:line:col diagnostics with rule IDs. Diagnostics are deduplicated by
// position and rule and always emitted in sorted order, independent of load
// parallelism.
//
// Usage:
//
//	bblint [-json] [-rules] [-parallel n] [packages...]
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on load or analysis errors (unparseable source, unresolvable imports,
// bad usage).
//
// Findings can be suppressed in source with
//
//	//lint:ignore <rule-id> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI diffing)")
	listRules := flag.Bool("rules", false, "print the rule catalog and exit")
	parallel := flag.Int("parallel", 0, "package-load worker goroutines (0 = one per core)")
	flag.Parse()

	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	rules := lint.DefaultRules(loader.ModulePath, loader.GoMinor)
	if *listRules {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.ID(), r.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("bblint: no packages match %v", patterns))
	}

	pkgs, err := loader.LoadAll(paths, *parallel)
	if err != nil {
		fatal(fmt.Errorf("bblint: %w", err))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "bblint: warning: %s: %v (analysis may be incomplete)\n", pkg.ImportPath, terr)
		}
	}

	findings := lint.Run(pkgs, rules)
	relativize(findings)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bblint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		for _, line := range ruleSummary(findings) {
			fmt.Fprintln(os.Stderr, "bblint:   "+line)
		}
		os.Exit(1)
	}
}

// ruleSummary renders per-rule finding counts, most frequent first.
func ruleSummary(findings []lint.Finding) []string {
	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.RuleID]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool {
		if counts[rules[i]] != counts[rules[j]] {
			return counts[rules[i]] > counts[rules[j]]
		}
		return rules[i] < rules[j]
	})
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = fmt.Sprintf("%4d  %s", counts[r], r)
	}
	return out
}

// relativize rewrites finding paths relative to the working directory so CI
// output is stable across checkouts.
func relativize(findings []lint.Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(wd, findings[i].File); err == nil && !filepath.IsAbs(rel) {
			findings[i].File = rel
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
