// Command bbfleet is the fleet observability plane: it scrapes N bbmb
// worker admin endpoints, aggregates their metrics into one merged
// exposition with per-worker labels and worker="fleet" rollups, evaluates
// declared SLOs, and assembles cross-worker traces on demand.
//
// Continuous aggregator (the fleet's single pane of glass):
//
//	bbfleet -workers mb-a=http://127.0.0.1:9001,mb-b=http://127.0.0.1:9002 -admin :9100
//
// serves /cluster/metrics (merged exposition), /cluster/workers (health
// JSON) and /cluster/trace?id=<traceid> (cross-worker trace tree), plus
// the aggregator's own blindbox_fleet_* self-metrics on /metrics.
//
// One-shot health check (CI and cron):
//
//	bbfleet -workers http://127.0.0.1:9001 -check [-json]
//
// scrapes one round, evaluates the SLOs and exits 1 when any objective is
// breached or any worker is down.
//
// Live terminal view:
//
//	bbfleet -workers ... -top
//
// redraws a worker/SLO table every scrape interval until interrupted.
//
// SLO thresholds are knobs (-slo-scan-p99, -slo-unscanned-bytes,
// -slo-conn-error-ratio, -slo-failclosed-drops); a negative value disables
// that objective. Worker names default to their URL; name them explicitly
// (name=url) to match the bbmb -worker label.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/agg"
	"repro/internal/retry"
)

func main() {
	workers := flag.String("workers", "", "comma-separated worker admin endpoints, each url or name=url (required)")
	interval := flag.Duration("interval", agg.DefaultInterval, "scrape period")
	timeout := flag.Duration("timeout", agg.DefaultTimeout, "per-worker HTTP timeout for one scrape attempt")
	keep := flag.Int("keep", agg.DefaultKeep, "parsed snapshots retained per worker (the rate window)")
	retries := flag.Int("retries", 0, "scrape attempts per worker per round (0 = default 3, with jittered backoff)")
	staleAfter := flag.Duration("stale-after", 0, "mark a worker stale after this much scrape silence (0 = 3x interval)")
	downAfter := flag.Duration("down-after", 0, "mark a worker down after this much scrape silence (0 = 10x interval)")
	admin := flag.String("admin", "", "serve /cluster/metrics, /cluster/workers, /cluster/trace and /metrics on this address")
	check := flag.Bool("check", false, "one-shot: scrape once, print the fleet report, exit 1 on any SLO breach or down worker")
	jsonOut := flag.Bool("json", false, "with -check: print the report as JSON instead of text")
	top := flag.Bool("top", false, "live terminal view, redrawn every scrape interval")
	sloScanP99 := flag.Float64("slo-scan-p99", 0.1, "SLO: p99 scan latency bound in seconds (negative disables)")
	sloUnscanned := flag.Float64("slo-unscanned-bytes", 0, "SLO: fleet unscanned-bytes budget (negative disables)")
	sloConnErr := flag.Float64("slo-conn-error-ratio", 0.05, "SLO: connection error ratio bound (negative disables)")
	sloFailClosed := flag.Float64("slo-failclosed-drops", 0, "SLO: fleet fail-closed drop budget (negative disables)")
	flag.Parse()

	if *workers == "" {
		flag.Usage()
		os.Exit(2)
	}
	targets, err := parseTargets(*workers)
	if err != nil {
		log.Fatalf("bad -workers: %v", err)
	}
	slos := buildSLOs(map[string]float64{
		"scan_p99":         *sloScanP99,
		"unscanned_bytes":  *sloUnscanned,
		"conn_error_ratio": *sloConnErr,
		"failclosed_drops": *sloFailClosed,
	})

	reg := obs.NewRegistry()
	s, err := agg.New(agg.Config{
		Targets:    targets,
		Interval:   *interval,
		Timeout:    *timeout,
		Keep:       *keep,
		Retry:      retry.Policy{Attempts: *retries},
		StaleAfter: *staleAfter,
		DownAfter:  *downAfter,
		Metrics:    reg,
		SLOs:       slos,
	})
	if err != nil {
		log.Fatalf("bbfleet: %v", err)
	}

	if *check {
		if err := s.ScrapeOnce(nil); err != nil {
			fmt.Fprintf(os.Stderr, "bbfleet: scrape: %v\n", err)
		}
		rep := s.Check()
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatalf("bbfleet: encoding report: %v", err)
			}
		} else {
			printReport(os.Stdout, rep)
		}
		if !rep.OK {
			os.Exit(1)
		}
		return
	}
	if *admin == "" && !*top {
		fmt.Fprintln(os.Stderr, "bbfleet: need -check, -top or -admin (nothing to do)")
		flag.Usage()
		os.Exit(2)
	}

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	stop := make(chan struct{})
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigC
		close(stop)
	}()
	go s.Run(stop)

	if *admin != "" {
		ln, err := obs.ServeAdminMux(*admin, s.Mux(), logger)
		if err != nil {
			log.Fatalf("bbfleet: admin endpoint: %v", err)
		}
		defer ln.Close()
		fmt.Printf("bbfleet: aggregating %d worker(s) on http://%s/cluster/metrics (health on /cluster/workers, traces on /cluster/trace?id=)\n",
			len(targets), ln.Addr())
	}
	if *top {
		runTop(s, *interval, stop)
		return
	}
	<-stop
}

// parseTargets parses the -workers list: comma-separated entries, each a
// bare URL (worker name derived from it) or name=url. A missing scheme
// defaults to http.
func parseTargets(list string) ([]agg.Target, error) {
	var out []agg.Target
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var t agg.Target
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			t = agg.Target{Name: name, URL: url}
		} else {
			t = agg.Target{URL: part}
		}
		if !strings.Contains(t.URL, "://") {
			t.URL = "http://" + t.URL
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker endpoints in %q", list)
	}
	return out, nil
}

// buildSLOs applies the threshold knobs to the stock objectives, dropping
// any with a negative (disabled) threshold.
func buildSLOs(thresholds map[string]float64) []agg.SLO {
	var out []agg.SLO
	for _, slo := range agg.DefaultSLOs() {
		th, ok := thresholds[slo.Name]
		if !ok {
			out = append(out, slo)
			continue
		}
		if th < 0 {
			continue
		}
		slo.Threshold = th
		out = append(out, slo)
	}
	return out
}

// printReport renders the fleet verdict as text: a fleet summary line,
// the worker table, the SLO table and the final verdict.
func printReport(w io.Writer, rep agg.CheckReport) {
	states := map[agg.WorkerState]int{}
	for _, wh := range rep.Workers {
		states[wh.State]++
	}
	fmt.Fprintf(w, "fleet: %d worker(s) — %d up, %d degraded, %d stale, %d down\n",
		len(rep.Workers), states[agg.StateUp], states[agg.StateDegraded], states[agg.StateStale], states[agg.StateDown])
	fmt.Fprintf(w, "fleet rates: %.0f tokens/s, %.1f alerts/s, %.1f conns/s, queue %d; totals: %.0f conns, %.0f tokens, %.0f alerts, %.0f unscanned bytes\n",
		rep.Fleet.TokensPerSec, rep.Fleet.AlertsPerSec, rep.Fleet.ConnsPerSec, rep.Fleet.QueueDepth,
		rep.Fleet.Connections, rep.Fleet.TokensScanned, rep.Fleet.Alerts, rep.Fleet.UnscannedBytes)
	fmt.Fprintf(w, "%-12s %-9s %12s %10s %8s %10s  %s\n",
		"WORKER", "STATE", "TOKENS/S", "ALERTS/S", "QUEUE", "STALE(S)", "LAST ERROR")
	for _, wh := range rep.Workers {
		stale := "-"
		if wh.StalenessSeconds >= 0 {
			stale = fmt.Sprintf("%.1f", wh.StalenessSeconds)
		}
		errStr := wh.LastError
		if len(errStr) > 48 {
			errStr = errStr[:48] + "…"
		}
		fmt.Fprintf(w, "%-12s %-9s %12.0f %10.1f %8d %10s  %s\n",
			wh.Name, wh.State, wh.Rates.TokensPerSec, wh.Rates.AlertsPerSec,
			wh.Rates.QueueDepth, stale, errStr)
	}
	fmt.Fprintln(w, "SLOs:")
	for _, r := range rep.SLOs {
		fmt.Fprintf(w, "  %s\n", r)
	}
	verdict := "OK"
	if !rep.OK {
		verdict = "FAILING"
	}
	fmt.Fprintf(w, "verdict: %s\n", verdict)
}

// runTop redraws the fleet report every interval until stop closes — a
// minimal ANSI live view (clear screen + cursor home per frame).
func runTop(s *agg.Scraper, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		rep := s.Check()
		var b strings.Builder
		fmt.Fprintf(&b, "\x1b[H\x1b[2Jbbfleet -top  %s  (every %s, ^C to quit)\n\n",
			time.Now().Format("15:04:05"), interval)
		printReport(&b, rep)
		printWorkerTotals(&b, rep.Workers)
		//lint:ignore unchecked-err a failed terminal write means the terminal went away
		io.WriteString(os.Stdout, b.String())
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// printWorkerTotals appends the cumulative-totals table -top shows below
// the rate table (sorted by tokens scanned, busiest first).
func printWorkerTotals(w io.Writer, workers []agg.WorkerHealth) {
	rows := append([]agg.WorkerHealth(nil), workers...)
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].Rates.TokensScanned > rows[j].Rates.TokensScanned
	})
	fmt.Fprintf(w, "\n%-12s %12s %12s %10s %16s\n", "WORKER", "CONNS", "TOKENS", "ALERTS", "UNSCANNED(B)")
	for _, wh := range rows {
		fmt.Fprintf(w, "%-12s %12.0f %12.0f %10.0f %16.0f\n",
			wh.Name, wh.Rates.Connections, wh.Rates.TokensScanned, wh.Rates.Alerts, wh.Rates.UnscannedBytes)
	}
}
