// Command bbrulegen plays the rule-generator (RG) role: it signs a
// ruleset and emits the three artifacts of a BlindBox deployment —
//
//   - <out>.rules.json     signed ruleset + fragment tags (for bbmb)
//   - <out>.rg.json        RG public identity (for bbmb)
//   - <out>.endpoint.json  RG tag key + public key (install at endpoints)
//
// Rules come from a Snort-subset file (-in) or a synthetic dataset model
// (-dataset, see internal/corpus for the Table 1 datasets).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	blindbox "repro"
	"repro/internal/corpus"
	"repro/internal/rgconfig"
	"repro/internal/rules"
)

func main() {
	in := flag.String("in", "", "ruleset file in the Snort-compatible subset")
	dataset := flag.String("dataset", "", `synthetic dataset name (e.g. "Snort Emerging Threats (HTTP)") — alternative to -in`)
	numRules := flag.Int("n", 0, "override the synthetic dataset's rule count")
	seed := flag.Int64("seed", 1, "synthetic generation seed")
	name := flag.String("name", "LocalRG", "rule generator name")
	out := flag.String("out", "blindbox", "output file prefix")
	list := flag.Bool("list", false, "list available synthetic datasets and exit")
	flag.Parse()

	if *list {
		for _, d := range corpus.Datasets {
			fmt.Printf("%-32q %5d rules  P1=%.1f%% P2=%.1f%%\n", d.Name, d.NumRules, d.P1Frac*100, d.P2Frac*100)
		}
		return
	}

	var (
		rs  *rules.Ruleset
		err error
	)
	switch {
	case *in != "":
		data, rerr := os.ReadFile(*in)
		if rerr != nil {
			log.Fatal(rerr)
		}
		rs, err = blindbox.ParseRules(*in, string(data))
	case *dataset != "":
		spec, ok := corpus.DatasetByName(*dataset)
		if !ok {
			log.Fatalf("unknown dataset %q (use -list)", *dataset)
		}
		if *numRules > 0 {
			spec.NumRules = *numRules
		}
		rs, err = spec.Generate(*seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("building ruleset: %v", err)
	}

	rg, err := blindbox.NewRuleGenerator(*name)
	if err != nil {
		log.Fatal(err)
	}
	signed := rg.Sign(rs)

	rulesPath := *out + ".rules.json"
	rgPath := *out + ".rg.json"
	epPath := *out + ".endpoint.json"
	if err := rgconfig.SaveSignedRuleset(rulesPath, signed); err != nil {
		log.Fatal(err)
	}
	if err := rgconfig.SavePublic(rgPath, *name, rg.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := rgconfig.SaveEndpoint(epPath, *name, rg.PublicKey(), rg.TagKey()); err != nil {
		log.Fatal(err)
	}

	p1, p2, _ := rs.ProtocolBreakdown()
	fmt.Printf("signed %d rules (%.1f%% protocol I, %.1f%% <= II; %d distinct keywords)\n",
		len(rs.Rules), p1*100, p2*100, len(rs.Keywords()))
	fmt.Printf("wrote %s (middlebox), %s (middlebox), %s (endpoints)\n", rulesPath, rgPath, epPath)
}
