// Command bbtrace generates ICTF-like attack traces as standard pcap files
// and inspects pcap files with both detection engines — the plaintext
// Snort-like baseline and the encrypted BlindBox pipeline — reporting the
// §7.1 accuracy comparison on file-based traces.
//
// Generate a trace:
//
//	bbtrace -gen trace.pcap -rules out.rules.json [-flows 100] [-misalign 0.03]
//
// Inspect a trace:
//
//	bbtrace -inspect trace.pcap -rules out.rules.json [-tokens delimiter]
//
// Summarize a JSONL span file written by bbmb -trace (or any obs.JSONLSink):
//
//	bbtrace -spans spans.jsonl
//
// Assemble the distributed trace of a three-party session — merge the span
// files of client, middlebox and server, align clocks, print each flow's
// span tree and critical path (DESIGN.md §8):
//
//	bbtrace -assemble client.jsonl mb.jsonl server.jsonl [-json out.json] [-strict]
//
// Pull live flight-recorder spans straight from running workers' admin
// endpoints (the same /debug/spans and /debug/trace endpoints bbfleet's
// /cluster/trace uses, via the same pull client) and summarize or assemble
// them without touching disk:
//
//	bbtrace -from-url http://127.0.0.1:9001,http://127.0.0.1:9002 [-id <traceid>] [-assemble]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/rgconfig"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

func main() {
	gen := flag.String("gen", "", "write a synthetic attack trace to this pcap file")
	inspect := flag.String("inspect", "", "inspect this pcap file")
	spans := flag.String("spans", "", "summarize this JSONL span file (from bbmb -trace)")
	fromURL := flag.String("from-url", "", "comma-separated worker admin base URLs: pull live flight-recorder spans instead of reading files")
	traceID := flag.String("id", "", "with -from-url: pull only this 32-hex trace ID (/debug/trace) instead of every live flow (/debug/spans)")
	assemble := flag.Bool("assemble", false, "assemble the JSONL span files given as arguments into per-flow trace trees")
	jsonOut := flag.String("json", "", "with -assemble: also write the machine-readable report to this file (- for stdout)")
	strict := flag.Bool("strict", false, "with -assemble: exit non-zero on orphan spans, rootless traces, or critical path > wall-clock")
	rulesPath := flag.String("rules", "", "signed ruleset from bbrulegen (required for -gen/-inspect)")
	flows := flag.Int("flows", 100, "flows to generate")
	flowBytes := flag.Int("flowbytes", 8<<10, "benign bytes per flow")
	attacks := flag.Float64("attacks", 1.5, "mean injected attacks per flow")
	misalign := flag.Float64("misalign", 0.03, "fraction of injections misaligned with delimiters")
	seed := flag.Int64("seed", 1, "generation seed")
	tokens := flag.String("tokens", "delimiter", "tokenization for -inspect: window or delimiter")
	flag.Parse()

	if *fromURL != "" {
		if err := pullFromWorkers(*fromURL, *traceID, *assemble, *jsonOut, *strict, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *assemble {
		if flag.NArg() == 0 {
			log.Fatal("bbtrace -assemble: need at least one JSONL span file argument")
		}
		if err := assembleFiles(flag.Args(), *jsonOut, *strict, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *spans != "" {
		if err := summarizeSpans(*spans); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *rulesPath == "" || (*gen == "") == (*inspect == "") {
		flag.Usage()
		os.Exit(2)
	}
	signed, err := rgconfig.LoadSignedRuleset(*rulesPath)
	if err != nil {
		log.Fatalf("loading ruleset: %v", err)
	}
	rs := signed.Ruleset

	if *gen != "" {
		if err := generate(*gen, rs, *flows, *flowBytes, *attacks, *misalign, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	mode := tokenize.Delimiter
	if *tokens == "window" {
		mode = tokenize.Window
	}
	if err := inspectPcap(*inspect, rs, mode); err != nil {
		log.Fatal(err)
	}
}

// summarizeSpans aggregates a JSONL span stream per span name: count,
// total/mean/max duration, and the tokens and bytes the spans covered. It
// also reports how many distinct flows appear and any spans that ended in
// error.
func summarizeSpans(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return summarizeSpanSet(path, spans)
}

// summarizeSpanSet prints the span summary table for an already-collected
// span set, labeled by its source (a file path or worker URL list).
func summarizeSpanSet(label string, spans []obs.Span) error {
	if len(spans) == 0 {
		fmt.Printf("%s: no spans\n", label)
		return nil
	}

	type agg struct {
		count, errs   int
		total, max    time.Duration
		tokens, bytes int
	}
	byName := map[string]*agg{}
	flows := map[uint64]bool{}
	// disposition tracks how each flow's spans reached the file: "head"
	// (streamed by head sampling) or "tail" (flight-recorder flush on an
	// interesting end). Flows without the label predate the recorder or
	// streamed directly; they are reported as unlabeled, not as errors.
	disposition := map[uint64]string{}
	for _, sp := range spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{}
			byName[sp.Name] = a
		}
		a.count++
		d := time.Duration(sp.Dur)
		a.total += d
		if d > a.max {
			a.max = d
		}
		a.tokens += sp.Tokens
		a.bytes += sp.Bytes
		if sp.Err != "" {
			a.errs++
		}
		flows[sp.Flow] = true
		if sp.Sampled != "" {
			disposition[sp.Flow] = sp.Sampled
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d spans over %d flows\n", label, len(spans), len(flows))
	if len(disposition) > 0 {
		head, tail := 0, 0
		for _, d := range disposition {
			if d == "tail" {
				tail++
			} else {
				head++
			}
		}
		fmt.Printf("sampling: %d head-sampled, %d tail-flushed, %d unlabeled flows (sampled-out flows never reach the file)\n",
			head, tail, len(flows)-head-tail)
	}
	fmt.Printf("%-10s %8s %12s %12s %12s %10s %12s %6s\n",
		"span", "count", "total", "mean", "max", "tokens", "bytes", "errs")
	for _, name := range names {
		a := byName[name]
		fmt.Printf("%-10s %8d %12s %12s %12s %10d %12d %6d\n",
			name, a.count, a.total.Round(time.Microsecond),
			(a.total / time.Duration(a.count)).Round(time.Nanosecond),
			a.max.Round(time.Microsecond), a.tokens, a.bytes, a.errs)
	}
	return nil
}

func generate(path string, rs *rules.Ruleset, flows, flowBytes int, attacks, misalign float64, seed int64) error {
	cfg := corpus.TraceConfig{
		Flows:            flows,
		FlowBytes:        flowBytes,
		AttacksPerFlow:   attacks,
		MisalignFraction: misalign,
	}
	trace := corpus.AttackTrace(seed, rs, cfg)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcapio.NewWriter(f)
	if err != nil {
		return err
	}
	totalBytes, totalPkts := 0, 0
	for i, flow := range trace {
		key := packet.FlowKey{
			SrcIP:   [4]byte{10, 0, byte(i >> 8), byte(i)},
			DstIP:   [4]byte{192, 168, 0, 80},
			SrcPort: uint16(20000 + i),
			DstPort: 80,
		}
		for j, seg := range packet.Segmentize(key, flow.Payload, 1460) {
			err := w.WritePacket(pcapio.Packet{
				TimestampSec:   uint32(i),
				TimestampMicro: uint32(j),
				Data:           seg.Marshal(),
			})
			if err != nil {
				return err
			}
			totalPkts++
		}
		totalBytes += len(flow.Payload)
	}
	fmt.Printf("wrote %s: %d flows, %d packets, %d payload bytes\n", path, len(trace), totalPkts, totalBytes)
	return nil
}

func inspectPcap(path string, rs *rules.Ruleset, mode tokenize.Mode) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcapio.NewReader(f)
	if err != nil {
		return err
	}
	asm := packet.NewAssembler()
	pkts := 0
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		seg, err := packet.Unmarshal(p.Data)
		if err == packet.ErrNotTCP {
			continue
		}
		if err != nil {
			return err
		}
		asm.Add(seg)
		pkts++
	}
	keys, payloads := asm.Flows()

	ids := baseline.New(rs)
	k := bbcrypto.DeriveBlock([]byte("bbtrace"), "k")
	tkeys := core.DirectTokenKeys(k, rs, mode)

	var (
		baseRules, bbRules int
		baseKeywords, bbKw int
		flowsWithAlerts    int
	)
	for fi, payload := range payloads {
		truth := ids.Inspect(payload)
		baseRules += len(truth.RuleSIDs)
		baseKeywords += truth.KeywordMatches

		sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
		eng := detect.NewEngine(rs, tkeys, detect.Config{Mode: mode, Protocol: dpienc.ProtocolII})
		kwSeen := map[[2]int]bool{}
		sids := map[int]bool{}
		for _, tok := range tokenize.TokenizeAll(mode, payload) {
			for _, ev := range eng.ProcessToken(sender.EncryptToken(tok)) {
				switch ev.Kind {
				case detect.KeywordMatch:
					kwSeen[[2]int{ev.Rule.SID, ev.KeywordIndex}] = true
				case detect.RuleMatch:
					sids[ev.Rule.SID] = true
				}
			}
		}
		confirmed := 0
		for _, sid := range truth.RuleSIDs {
			if sids[sid] {
				confirmed++
			}
		}
		bbRules += confirmed
		bbKw += min(len(kwSeen), truth.KeywordMatches)
		if confirmed > 0 {
			flowsWithAlerts++
			if fi < 5 {
				fmt.Printf("flow %s: %d rule(s) detected\n", keys[fi], confirmed)
			}
		}
	}
	fmt.Printf("inspected %d packets, %d flows (%s tokens)\n", pkts, len(payloads), mode)
	fmt.Printf("plaintext baseline: %d rule matches, %d keyword matches\n", baseRules, baseKeywords)
	rate := func(a, b int) float64 {
		if b == 0 {
			return 1
		}
		return float64(a) / float64(b)
	}
	fmt.Printf("BlindBox (encrypted): %d rule matches (%.1f%%), %d keyword matches (%.1f%%)\n",
		bbRules, 100*rate(bbRules, baseRules), bbKw, 100*rate(bbKw, baseKeywords))
	fmt.Printf("flows with alerts: %d\n", flowsWithAlerts)
	return nil
}
