//go:build ignore

// Regenerates the three-party trace fixture for the bbtrace -assemble
// golden test:
//
//	cd cmd/bbtrace/testdata && go run gen.go
//
// The fixture models one BlindBox flow as the three parties would emit it
// with -trace: the client roots the trace, middlebox and server spans hang
// off the client's connection span, and each party's file carries its own
// (deliberately skewed) clock — the middlebox runs 5µs ahead of the
// client, the server 2ms behind — so the golden output pins the clock
// alignment too. All IDs and timestamps are fixed by hand; the generator
// only spares us writing JSON lines manually.
package main

import (
	"encoding/json"
	"log"
	"os"

	"repro/internal/obs"
)

// Clock skews added to true time when writing each party's file.
const (
	mbSkew     = 5_000      // mb clock = truth + 5µs
	serverSkew = -2_000_000 // server clock = truth - 2ms
)

const trace = "00112233445566778899aabbccddeeff"

func sp(id, parent uint64, party, name, dir string, start, dur int64) obs.Span {
	return obs.Span{
		TraceID: trace, SpanID: id, Parent: parent,
		Party: party, Flow: 7, Dir: dir, Name: name,
		Start: start, Dur: dur,
	}
}

func write(path string, skew int64, spans []obs.Span) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, s := range spans {
		s.Start += skew
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	// True-time layout (ns): client conn [1ms, 11ms] roots the flow.
	client := []obs.Span{
		sp(1, 0, obs.PartyClient, obs.SpanConn, "", 1_000_000, 10_000_000),
		sp(2, 1, obs.PartyClient, obs.SpanHandshake, "", 1_001_000, 800_000),
	}
	tok := sp(3, 1, obs.PartyClient, obs.SpanTokenize, "c2s", 4_200_000, 150_000)
	tok.Tokens, tok.Bytes = 512, 4096
	enc := sp(4, 1, obs.PartyClient, obs.SpanEncrypt, "c2s", 4_360_000, 240_000)
	enc.Tokens, enc.Bytes = 512, 4096
	client = append(client, tok, enc)

	mb := []obs.Span{
		sp(10, 1, obs.PartyMB, obs.SpanHandshake, "", 1_200_000, 600_000),
		sp(11, 1, obs.PartyMB, obs.SpanPrep, "", 1_900_000, 2_000_000),
	}
	for i, leg := range []string{"client", "server"} {
		id := uint64(12 + 3*i)
		lab := sp(id, 11, obs.PartyMB, obs.SpanPrepLabels, leg, 1_950_000+int64(i)*10_000, 1_200_000+int64(i)*100_000)
		lab.Gates, lab.Rows, lab.Bytes = 51_200, 153_600, 2_458_000
		ob := sp(id+1, 11, obs.PartyMB, obs.SpanPrepOTBase, leg, 3_200_000+int64(i)*15_000, 300_000)
		ob.Bytes = 8_320
		oe := sp(id+2, 11, obs.PartyMB, obs.SpanPrepOTExt, leg, 3_550_000+int64(i)*15_000, 280_000)
		oe.Rows, oe.Bytes = 512, 24_576
		mb = append(mb, lab, ob, oe)
	}
	re := sp(18, 11, obs.PartyMB, obs.SpanPrepRuleEnc, "", 3_850_000, 40_000)
	re.Gates, re.Rows = 51_200, 153_600
	re2 := sp(19, 11, obs.PartyMB, obs.SpanPrepRuleEnc, "", 3_892_000, 38_000)
	re2.Gates, re2.Rows = 51_200, 153_600
	fwdC := sp(20, 1, obs.PartyMB, obs.SpanForward, "c2s", 3_950_000, 7_000_000)
	fwdC.Bytes = 4096
	fwdS := sp(21, 1, obs.PartyMB, obs.SpanForward, "s2c", 3_955_000, 6_990_000)
	fwdS.Bytes = 4096
	mb = append(mb, re, re2, fwdC, fwdS)
	scanStarts := []int64{4_500_000, 4_710_000, 5_020_000}
	for i, start := range scanStarts {
		sc := sp(uint64(22+i), 20, obs.PartyMB, obs.SpanScan, "c2s", start, 180_000)
		sc.Shard = obs.ShardID(0)
		sc.Tokens = 170 + i
		mb = append(mb, sc)
	}
	scS := sp(25, 21, obs.PartyMB, obs.SpanScan, "s2c", 5_400_000, 160_000)
	scS.Shard = obs.ShardID(1)
	scS.Tokens = 512
	mb = append(mb, scS)

	server := []obs.Span{
		sp(30, 1, obs.PartyServer, obs.SpanConn, "", 1_450_000, 9_400_000),
		sp(31, 30, obs.PartyServer, obs.SpanHandshake, "", 1_460_000, 300_000),
	}
	stok := sp(32, 30, obs.PartyServer, obs.SpanTokenize, "s2c", 5_500_000, 140_000)
	stok.Tokens, stok.Bytes = 512, 4096
	senc := sp(33, 30, obs.PartyServer, obs.SpanEncrypt, "s2c", 5_650_000, 230_000)
	senc.Tokens, senc.Bytes = 512, 4096
	server = append(server, stok, senc)

	write("client.jsonl", 0, client)
	write("mb.jsonl", mbSkew, mb)
	write("server.jsonl", serverSkew, server)
}
