// Live span pulls: -from-url fetches flight-recorder spans from running
// workers' admin endpoints through agg.PullSpans — the same client and
// wire form bbfleet's /cluster/trace uses — then hands them to the
// existing summarize/assemble paths.
package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/agg"
)

// pullFromWorkers pulls live spans from every base URL in the
// comma-separated list (scheme optional; trace narrows the pull to one
// trace ID) and summarizes them, or assembles them when doAssemble is
// set. A worker that serves no matching spans contributes nothing but is
// not an error; an unreachable worker is.
func pullFromWorkers(urls, trace string, doAssemble bool, jsonPath string, strict bool, w io.Writer) error {
	var all []obs.Span
	var sources []string
	for _, base := range strings.Split(urls, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		spans, err := agg.PullSpans(nil, base, trace)
		if err != nil {
			return fmt.Errorf("pulling spans from %s: %w", base, err)
		}
		sources = append(sources, base)
		all = append(all, spans...)
	}
	if len(sources) == 0 {
		return fmt.Errorf("bbtrace -from-url: no worker URLs given")
	}
	label := strings.Join(sources, ",")
	if doAssemble {
		return assembleSpanSet(sources, all, jsonPath, strict, w)
	}
	return summarizeSpanSet(label, all)
}
