// Trace assembly mode: merge the JSONL span files written by the three
// BlindBox parties (bbclient/bbmb/bbserver -trace), reconstruct each
// flow's span tree with clock alignment, and report the critical path —
// the distributed-tracing half of bbtrace (DESIGN.md §8).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// assembleReport is the machine-readable result of -assemble (-json); the
// same shapes back BENCH_setup_breakdown.json.
type assembleReport struct {
	// Files are the span files merged, in argument order.
	Files []string `json:"files"`
	// Traces holds one entry per assembled flow, by root start.
	Traces []traceReport `json:"traces"`
	// Untraced counts v1 flat spans (no trace ID) that were skipped.
	Untraced int `json:"untraced_spans"`
}

// traceReport summarizes one assembled flow.
type traceReport struct {
	// Trace is the 32-hex trace ID.
	Trace string `json:"trace"`
	// Spans counts the spans in the tree (orphans excluded).
	Spans int `json:"spans"`
	// WallNs is the root span's duration; CritNs the attributed critical
	// path (equal for a well-formed trace).
	WallNs int64 `json:"wall_ns"`
	CritNs int64 `json:"crit_ns"`
	// Offsets maps each party to its estimated clock offset.
	Offsets map[string]int64 `json:"clock_offsets_ns"`
	// Orphans counts spans not reachable from the root.
	Orphans int `json:"orphans"`
	// Partial marks a trace whose root was sampled out at its party (the
	// flight recorder kept only some parties' spans); the tree hangs off a
	// synthesized placeholder root.
	Partial bool `json:"partial,omitempty"`
	// Stages aggregates the tree per span name, by critical time.
	Stages []obs.StageStat `json:"stages"`
}

// assembleFiles merges the span files, prints the human timeline to w,
// optionally writes the machine JSON, and returns an error when strict
// checks fail (orphan spans, rootless traces, or critical > wall).
func assembleFiles(paths []string, jsonPath string, strict bool, w io.Writer) error {
	var all []obs.Span
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		spans, err := obs.ReadSpans(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		all = append(all, spans...)
	}
	return assembleSpanSet(paths, all, jsonPath, strict, w)
}

// assembleSpanSet assembles an already-collected span set — the shared
// back half of -assemble (files) and -from-url -assemble (live pulls).
// sources label the report's provenance (file paths or worker URLs).
func assembleSpanSet(sources []string, all []obs.Span, jsonPath string, strict bool, w io.Writer) error {
	flows, untraced, err := obs.AssembleSpans(all)
	if err != nil {
		return err
	}
	if len(flows) == 0 {
		return fmt.Errorf("no traced spans in %d source(s) (%d untraced)", len(sources), len(untraced))
	}

	rep := assembleReport{Files: sources, Untraced: len(untraced)}
	var strictErr error
	for _, ft := range flows {
		printFlow(w, ft)
		rep.Traces = append(rep.Traces, traceReport{
			Trace:   ft.Trace,
			Spans:   len(ft.Nodes()),
			WallNs:  ft.WallNs,
			CritNs:  ft.CritNs,
			Offsets: ft.Offsets,
			Orphans: len(ft.Orphans),
			Partial: ft.Partial,
			Stages:  ft.Stages(),
		})
		if strictErr == nil {
			// Partial traces (root sampled out at its party) get a pass on
			// the root and orphan checks: missing ancestors are expected
			// under tail sampling, and the synthesized root adopts them.
			switch {
			case ft.Root == nil:
				strictErr = fmt.Errorf("trace %s: no root span", ft.Trace)
			case len(ft.Orphans) > 0 && !ft.Partial:
				strictErr = fmt.Errorf("trace %s: %d orphan span(s)", ft.Trace, len(ft.Orphans))
			case ft.CritNs > ft.WallNs:
				strictErr = fmt.Errorf("trace %s: critical path %dns exceeds wall-clock %dns", ft.Trace, ft.CritNs, ft.WallNs)
			}
		}
	}
	if len(untraced) > 0 {
		fmt.Fprintf(w, "untraced: %d span(s) without trace context skipped\n", len(untraced))
	}

	if jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if jsonPath == "-" {
			fmt.Fprintln(w, string(out))
		} else if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	if strict && strictErr != nil {
		return strictErr
	}
	return nil
}

// printFlow renders one flow: header, aligned span tree, stage table and
// orphans. Offsets are relative to the root's aligned start so the output
// is stable across runs of the same fixture.
func printFlow(w io.Writer, ft *obs.FlowTrace) {
	partial := ""
	if ft.Partial {
		partial = " [partial: root sampled out]"
	}
	fmt.Fprintf(w, "trace %s: wall %s, critical %s (%.1f%%)%s\n",
		ft.Trace, ns(ft.WallNs), ns(ft.CritNs), pct(ft.CritNs, ft.WallNs), partial)
	if len(ft.Offsets) > 1 {
		fmt.Fprintf(w, "  clock offsets:")
		for _, party := range []string{obs.PartyClient, obs.PartyMB, obs.PartyServer} {
			if off, ok := ft.Offsets[party]; ok {
				fmt.Fprintf(w, " %s=%s", party, signedNs(off))
			}
		}
		fmt.Fprintln(w)
	}
	if ft.Root == nil {
		fmt.Fprintf(w, "  NO ROOT: all %d span(s) orphaned\n", len(ft.Orphans))
		return
	}
	printNode(w, ft.Root, ft.Root.Start, 1)
	fmt.Fprintf(w, "  stages (by critical time):\n")
	fmt.Fprintf(w, "    %-14s %6s %12s %12s %8s %8s %10s %9s %9s\n",
		"stage", "count", "total", "critical", "maxconc", "tokens", "bytes", "gates", "rows")
	for _, st := range ft.Stages() {
		fmt.Fprintf(w, "    %-14s %6d %12s %12s %8d %8d %10d %9d %9d\n",
			st.Name, st.Count, ns(st.TotalNs), ns(st.CritNs), st.MaxConc,
			st.Tokens, st.Bytes, st.Gates, st.Rows)
	}
	for _, sp := range ft.Orphans {
		fmt.Fprintf(w, "  ORPHAN: %s %s/%s id=%d parent=%d\n", sp.Name, sp.Party, sp.Dir, sp.SpanID, sp.Parent)
	}
}

// collapseAfter bounds how many same-name siblings print individually;
// long scan runs collapse into one summary line.
const collapseAfter = 6

// printNode renders n and its subtree, offsets relative to base.
func printNode(w io.Writer, n *obs.SpanNode, base int64, depth int) {
	fmt.Fprintf(w, "  %*s%11s %10s  %s", 2*depth-2, "", signedNs(n.Start-base), ns(n.End-n.Start), n.Span.Name)
	if n.Span.Party != "" {
		fmt.Fprintf(w, " [%s]", n.Span.Party)
	}
	if n.Span.Dir != "" {
		fmt.Fprintf(w, " dir=%s", n.Span.Dir)
	}
	if n.Span.Shard != nil {
		fmt.Fprintf(w, " shard=%d", *n.Span.Shard)
	}
	if n.Span.Tokens > 0 {
		fmt.Fprintf(w, " tokens=%d", n.Span.Tokens)
	}
	if n.Span.Bytes > 0 {
		fmt.Fprintf(w, " bytes=%d", n.Span.Bytes)
	}
	if n.Span.Gates > 0 {
		fmt.Fprintf(w, " gates=%d", n.Span.Gates)
	}
	if n.Span.Err != "" {
		fmt.Fprintf(w, " err=%q", n.Span.Err)
	}
	fmt.Fprintln(w)

	printed := map[string]int{}
	skipped := map[string]struct {
		count int
		total int64
	}{}
	for _, c := range n.Children {
		if printed[c.Span.Name] >= collapseAfter {
			s := skipped[c.Span.Name]
			s.count++
			s.total += c.End - c.Start
			skipped[c.Span.Name] = s
			continue
		}
		printed[c.Span.Name]++
		printNode(w, c, base, depth+1)
	}
	for _, c := range n.Children {
		// Report each collapsed name once, in first-child order.
		if s, ok := skipped[c.Span.Name]; ok {
			fmt.Fprintf(w, "  %*s… %d more %s span(s), %s total\n",
				2*depth, "", s.count, c.Span.Name, ns(s.total))
			delete(skipped, c.Span.Name)
		}
	}
}

// ns renders nanoseconds with time.Duration's formatting, rounded for
// readability at microsecond granularity.
func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

// signedNs renders a clock offset with an explicit sign.
func signedNs(v int64) string {
	if v >= 0 {
		return "+" + ns(v)
	}
	return ns(v)
}

// pct guards the critical-path percentage against a zero wall-clock.
func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
