package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fixtureFiles are the checked-in three-party span files (see
// testdata/gen.go for the layout and the deliberate clock skews).
func fixtureFiles() []string {
	return []string{
		filepath.Join("testdata", "client.jsonl"),
		filepath.Join("testdata", "mb.jsonl"),
		filepath.Join("testdata", "server.jsonl"),
	}
}

// TestAssembleGolden pins the human -assemble output on the three-party
// fixture: tree shape, clock offsets, critical-path attribution and the
// stage table. Regenerate with
//
//	go run ./cmd/bbtrace -assemble cmd/bbtrace/testdata/{client,mb,server}.jsonl > cmd/bbtrace/testdata/golden.txt
//
// after reviewing the diff.
func TestAssembleGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := assembleFiles(fixtureFiles(), "", true, &buf); err != nil {
		t.Fatalf("assembleFiles (strict): %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("assemble output diverged from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestAssembleJSONReport checks the machine-readable report: one
// well-formed trace, critical path bounded by the wall-clock, no orphans,
// and the three parties' clock offsets present.
func TestAssembleJSONReport(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	if err := assembleFiles(fixtureFiles(), jsonPath, true, &buf); err != nil {
		t.Fatalf("assembleFiles: %v", err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep assembleReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Traces) != 1 {
		t.Fatalf("report has %d traces, want 1", len(rep.Traces))
	}
	tr := rep.Traces[0]
	if tr.Orphans != 0 {
		t.Errorf("fixture trace has %d orphans, want 0", tr.Orphans)
	}
	if tr.CritNs <= 0 || tr.CritNs > tr.WallNs {
		t.Errorf("critical path %dns out of (0, wall=%dns]", tr.CritNs, tr.WallNs)
	}
	for _, party := range []string{"client", "mb", "server"} {
		if _, ok := tr.Offsets[party]; !ok {
			t.Errorf("no clock offset reported for party %q", party)
		}
	}
	if tr.Spans != 24 {
		t.Errorf("tree has %d spans, fixture has 24", tr.Spans)
	}
	var names []string
	for _, st := range tr.Stages {
		names = append(names, st.Name)
	}
	for _, want := range []string{"prep.labels", "prep.ot_base", "prep.ot_ext", "prep.rule_enc", "scan", "forward"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q missing from report (have %v)", want, names)
		}
	}
}
