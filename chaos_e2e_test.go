// Chaos suite: seeded fault injection against full client -> middlebox ->
// server sessions. The claim under test is the fault-tolerance layer's
// contract (DESIGN.md §9): every injected fault ends in a clean typed
// error, a recovered session, or policy-conformant degradation — never a
// hang, and never a silently unscanned byte under the fail-closed policy.
package blindbox

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/middlebox"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/transport"
)

// chaosTimeouts are deliberately short so a wedged step fails the test in
// seconds, not minutes. Stall faults stay well under these bounds.
func chaosEndpointTimeouts() transport.Timeouts {
	return transport.Timeouts{
		Handshake: 3 * time.Second,
		Read:      3 * time.Second,
		Write:     3 * time.Second,
	}
}

func chaosMBTimeouts() middlebox.Timeouts {
	return middlebox.Timeouts{
		Handshake: 2 * time.Second,
		Prep:      3 * time.Second,
		Idle:      3 * time.Second,
		Write:     2 * time.Second,
		Barrier:   2 * time.Second,
	}
}

// chaosHarness is one live middlebox + echo server, shared by the
// sessions of one test.
type chaosHarness struct {
	t        *testing.T
	g        *RuleGenerator
	mb       *Middlebox
	mbAddr   string
	serverLn net.Listener
	mbLn     net.Listener

	mu     sync.Mutex
	alerts []Alert
}

// newChaosHarness builds the harness: a single-keyword ruleset, a
// middlebox with the given policy/timeouts, and an echo server whose
// endpoints carry chaos timeouts of their own.
func newChaosHarness(t *testing.T, policy middlebox.Policy, barrier time.Duration, shards int, onAlert func(Alert)) *chaosHarness {
	t.Helper()
	g, err := NewRuleGenerator("ChaosRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("chaos",
		`alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	h := &chaosHarness{t: t, g: g}
	tmo := chaosMBTimeouts()
	if barrier != 0 {
		tmo.Barrier = barrier
	}
	mbCfg := MiddleboxConfig{
		Ruleset:      g.Sign(rs),
		RGPublicKey:  g.PublicKey(),
		Policy:       policy,
		Timeouts:     tmo,
		DetectShards: shards,
		ShardQueue:   8,
		OnAlert: func(a Alert) {
			h.mu.Lock()
			h.alerts = append(h.alerts, a)
			h.mu.Unlock()
			if onAlert != nil {
				onAlert(a)
			}
		},
	}
	h.mb, err = NewMiddlebox(mbCfg)
	if err != nil {
		t.Fatal(err)
	}
	h.serverLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.mbLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.mbAddr = h.mbLn.Addr().String()
	epCfg := ConnConfig{
		Core:     DefaultConfig(),
		RG:       RGMaterial{TagKey: g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	go func() {
		for {
			raw, err := h.serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				conn.Write(data)
				conn.CloseWrite()
			}()
		}
	}()
	go h.mb.Serve(h.mbLn, h.serverLn.Addr().String())
	t.Cleanup(func() {
		h.mbLn.Close()
		h.serverLn.Close()
	})
	return h
}

// alertConns returns the distinct connection IDs that produced alerts.
func (h *chaosHarness) alertConns() map[uint64]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make(map[uint64]bool)
	for _, a := range h.alerts {
		ids[a.ConnID] = true
	}
	return ids
}

// closeMB closes the middlebox under a watchdog: a Close that cannot
// terminate is itself a fault-tolerance bug.
func (h *chaosHarness) closeMB(timeout time.Duration) {
	h.t.Helper()
	done := make(chan error, 1)
	go func() { done <- h.mb.Close() }()
	select {
	case err := <-done:
		if err != nil {
			h.t.Fatalf("middlebox Close: %v", err)
		}
	case <-time.After(timeout):
		h.t.Fatalf("middlebox Close did not return within %v", timeout)
	}
}

// chaosResult classifies one session outcome.
type chaosResult struct {
	echoed []byte
	err    error
}

// runChaosSession drives one echo session whose client socket is wrapped
// in fc, under a watchdog. A watchdog expiry is the one unacceptable
// outcome: it means some step blocked past every configured deadline.
func runChaosSession(t *testing.T, ccfg ConnConfig, fc net.Conn, payload []byte, watchdog time.Duration) chaosResult {
	t.Helper()
	resC := make(chan chaosResult, 1)
	go func() {
		conn, err := Client(fc, ccfg)
		if err != nil {
			resC <- chaosResult{err: err}
			return
		}
		defer conn.Close()
		for off := 0; off < len(payload); off += 2000 {
			end := off + 2000
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := conn.Write(payload[off:end]); err != nil {
				resC <- chaosResult{err: err}
				return
			}
		}
		if err := conn.CloseWrite(); err != nil {
			resC <- chaosResult{err: err}
			return
		}
		echoed, err := io.ReadAll(conn)
		resC <- chaosResult{echoed: echoed, err: err}
	}()
	select {
	case res := <-resC:
		return res
	case <-time.After(watchdog):
		t.Fatal("chaos session hung: no outcome within the watchdog")
		return chaosResult{}
	}
}

// TestChaosSeededFaultSchedules replays deterministic fault schedules —
// resets, truncations, corruption, stalls and latency at seeded byte
// offsets, both directions — against live sessions. Every session must
// terminate (succeed or fail cleanly); the middlebox must stay available
// for the next session; and under the default fail-closed policy not one
// payload byte may be forwarded unscanned.
func TestChaosSeededFaultSchedules(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	h := newChaosHarness(t, middlebox.FailClosed, 0, 2, nil)
	prof := netem.ScheduleProfile{Faults: 3, MaxOffset: 12 << 10, MaxDelay: 60 * time.Millisecond}
	ccfg := ConnConfig{
		Core:     Config{Protocol: ProtocolI, Mode: DelimiterTokens},
		RG:       RGMaterial{TagKey: h.g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	payload := conformancePayload(77, 6<<10)

	successes, failures, faultsFired := 0, 0, 0
	for seed := 0; seed < seeds; seed++ {
		schedule := netem.Schedule(uint64(seed), prof)
		raw, err := net.Dial("tcp", h.mbAddr)
		if err != nil {
			t.Fatal(err)
		}
		fc := netem.NewFaultConn(raw, schedule...)
		res := runChaosSession(t, ccfg, fc, payload, 15*time.Second)
		fc.Close()
		fired := fc.Fired()
		faultsFired += len(fired)
		switch {
		case res.err == nil && bytes.Equal(res.echoed, payload):
			successes++
		case res.err == nil && len(res.echoed) == 0:
			// Clean severance: the peer closed before echoing (EOF reads
			// as a successful empty ReadAll). Policy-conformant teardown.
			failures++
		case res.err == nil:
			t.Fatalf("seed %d: partial echo without error: %d of %d bytes (faults %v)",
				seed, len(res.echoed), len(payload), fired)
		default:
			failures++
			t.Logf("seed %d: clean failure %v (faults %v)", seed, res.err, fired)
		}
	}
	t.Logf("chaos: %d sessions, %d succeeded, %d failed cleanly, %d faults fired",
		seeds, successes, failures, faultsFired)
	if faultsFired == 0 {
		t.Fatal("no faults fired: the chaos run was vacuous")
	}

	h.closeMB(10 * time.Second)
	st := h.mb.Stats()
	if st.UnscannedBytes != 0 || st.Degraded != 0 {
		t.Fatalf("fail-closed middlebox forwarded unscanned traffic: %+v", st)
	}
	// Cross-check against the alert transcript: every fully-echoed session
	// carried the planted keyword through detection, so at least that many
	// distinct connections must have alerted.
	if got := len(h.alertConns()); got < successes {
		t.Fatalf("%d connections alerted, want >= %d (one per successful session)", got, successes)
	}
}

// TestChaosFailOpenDegradation stalls detection (a blocked alert sink
// keeps the flow's shard busy, so the detection barrier cannot drain) and
// verifies the fail-open policy: the session completes unscanned, the
// degradation is counted, and every unscanned byte is accounted.
func TestChaosFailOpenDegradation(t *testing.T) {
	gate := make(chan struct{})
	h := newChaosHarness(t, middlebox.FailOpen, 200*time.Millisecond, 1,
		func(Alert) { <-gate })
	ccfg := ConnConfig{
		Core:     Config{Protocol: ProtocolI, Mode: DelimiterTokens},
		RG:       RGMaterial{TagKey: h.g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	payload := []byte("calm traffic then attack01 then more calm traffic to fill the record")
	raw, err := net.Dial("tcp", h.mbAddr)
	if err != nil {
		t.Fatal(err)
	}
	res := runChaosSession(t, ccfg, raw, payload, 15*time.Second)
	if res.err != nil {
		t.Fatalf("fail-open session did not survive detection stall: %v", res.err)
	}
	if !bytes.Equal(res.echoed, payload) {
		t.Fatalf("fail-open echo mismatch: %d bytes, want %d", len(res.echoed), len(payload))
	}
	close(gate) // release the stalled shard so Close can drain
	h.closeMB(10 * time.Second)
	st := h.mb.Stats()
	if st.Degraded == 0 {
		t.Fatalf("no flow recorded as degraded: %+v", st)
	}
	if st.UnscannedBytes == 0 {
		t.Fatalf("degraded flow forwarded data without accounting it unscanned: %+v", st)
	}
	if st.FailClosedDrops != 0 {
		t.Fatalf("fail-open middlebox recorded fail-closed drops: %+v", st)
	}
}

// TestChaosFailClosedDrop is the same detection stall under the default
// policy: the connection must be severed with zero payload bytes
// forwarded — the invariant the paper's threat model demands.
func TestChaosFailClosedDrop(t *testing.T) {
	gate := make(chan struct{})
	h := newChaosHarness(t, middlebox.FailClosed, 200*time.Millisecond, 1,
		func(Alert) { <-gate })
	ccfg := ConnConfig{
		Core:     Config{Protocol: ProtocolI, Mode: DelimiterTokens},
		RG:       RGMaterial{TagKey: h.g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	payload := []byte("calm traffic then attack01 then more calm traffic to fill the record")
	raw, err := net.Dial("tcp", h.mbAddr)
	if err != nil {
		t.Fatal(err)
	}
	res := runChaosSession(t, ccfg, raw, payload, 15*time.Second)
	if res.err == nil && len(res.echoed) > 0 {
		t.Fatalf("fail-closed session delivered %d echoed bytes through a stalled detector", len(res.echoed))
	}
	close(gate)
	h.closeMB(10 * time.Second)
	st := h.mb.Stats()
	if st.FailClosedDrops == 0 {
		t.Fatalf("no fail-closed drop recorded: %+v", st)
	}
	if st.UnscannedBytes != 0 || st.Degraded != 0 {
		t.Fatalf("fail-closed middlebox degraded or forwarded unscanned traffic: %+v", st)
	}
	if st.BytesForwarded != 0 {
		t.Fatalf("fail-closed middlebox forwarded %d payload bytes past a stalled detector", st.BytesForwarded)
	}
}

// TestChaosCloseDuringStalledHandshake pins the Close contract for
// setup-phase connections: a peer that never sends its hello must not
// block shutdown, even with handshake deadlines disabled.
func TestChaosCloseDuringStalledHandshake(t *testing.T) {
	g, err := NewRuleGenerator("ChaosRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("chaos", `alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Timeouts: middlebox.Timeouts{
			Handshake: middlebox.NoTimeout, // promptness must come from Close itself
			Idle:      middlebox.NoTimeout,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clientMB, clientPeer := net.Pipe()
	serverMB, serverPeer := net.Pipe()
	defer clientPeer.Close()
	defer serverPeer.Close()
	errC := make(chan error, 1)
	go func() { errC <- mb.Interpose(clientMB, serverMB) }()
	time.Sleep(20 * time.Millisecond) // let Interpose block on the client hello

	done := make(chan error, 1)
	go func() { done <- mb.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on a connection stalled in its handshake")
	}
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("stalled interposition returned nil error after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Interpose did not return after Close severed its legs")
	}
}

// TestChaosHandshakeDeadline verifies the middlebox handshake deadline
// surfaces as a typed timeout instead of an indefinite block.
func TestChaosHandshakeDeadline(t *testing.T) {
	g, err := NewRuleGenerator("ChaosRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("chaos", `alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Timeouts:    middlebox.Timeouts{Handshake: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	clientMB, clientPeer := net.Pipe()
	serverMB, serverPeer := net.Pipe()
	defer clientPeer.Close()
	defer serverPeer.Close()
	errC := make(chan error, 1)
	go func() { errC <- mb.Interpose(clientMB, serverMB) }()
	select {
	case err := <-errC:
		if !transport.IsTimeout(err) {
			t.Fatalf("stalled handshake error = %v, want a deadline expiry", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake deadline did not fire")
	}
}

// TestChaosDialRetryTyped verifies endpoint dial retry is bounded and
// surfaces a typed exhaustion error carrying the attempt count.
func TestChaosDialRetryTyped(t *testing.T) {
	// A listener that is immediately closed: every connect is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = Dial(addr, ConnConfig{
		Core:      DefaultConfig(),
		DialRetry: retry.Policy{Attempts: 2, Base: time.Millisecond},
	})
	var rerr *retry.Error
	if !errors.As(err, &rerr) {
		t.Fatalf("dial error = %v (%T), want *retry.Error", err, err)
	}
	if rerr.Attempts != 2 {
		t.Fatalf("retry attempts = %d, want 2", rerr.Attempts)
	}
}

// flightRecorderSession drives one echo session through a directly-driven
// Interpose whose server leg is optionally wrapped in a FaultConn, with the
// middlebox recording into rec. It returns once Interpose has ended the
// flow (so the flight recorder has settled its disposition).
func flightRecorderSession(t *testing.T, rec *obs.Recorder, serverFaults []netem.Fault, payload []byte) {
	t.Helper()
	g, err := NewRuleGenerator("ChaosRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("chaos",
		`alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Recorder:    rec,
		Timeouts:    chaosMBTimeouts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	epCfg := ConnConfig{
		Core:     DefaultConfig(),
		RG:       RGMaterial{TagKey: g.TagKey()},
		Timeouts: chaosEndpointTimeouts(),
	}
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	go func() {
		raw, err := serverLn.Accept()
		if err != nil {
			return
		}
		conn, err := Server(raw, epCfg)
		if err != nil {
			raw.Close()
			return
		}
		defer conn.Close()
		data, err := io.ReadAll(conn)
		if err != nil {
			return
		}
		conn.Write(data)
		conn.CloseWrite()
	}()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()

	errC := make(chan error, 1)
	go func() {
		clientLeg, err := mbLn.Accept()
		if err != nil {
			errC <- err
			return
		}
		rawServer, err := net.Dial("tcp", serverLn.Addr().String())
		if err != nil {
			clientLeg.Close()
			errC <- err
			return
		}
		var serverLeg net.Conn = rawServer
		if len(serverFaults) > 0 {
			serverLeg = netem.NewFaultConn(rawServer, serverFaults...)
		}
		errC <- mb.Interpose(clientLeg, serverLeg)
	}()

	raw, err := net.Dial("tcp", mbLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	res := runChaosSession(t, epCfg, raw, payload, 15*time.Second)
	if res.err != nil {
		t.Fatalf("session failed: %v", res.err)
	}
	select {
	case <-errC:
		// Interpose returned; its deferred End settled the flow.
	case <-time.After(10 * time.Second):
		t.Fatal("Interpose did not return after the session completed")
	}
}

// assertSingleTailTrace checks the flushed spans form one complete trace:
// every span tail-labeled, every span on the same trace ID, and the flow's
// lifecycle spans (conn, handshake) present alongside the wanted names.
func assertSingleTailTrace(t *testing.T, spans []obs.Span, want ...string) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("flight recorder flushed nothing")
	}
	names := map[string]int{}
	trace := spans[0].TraceID
	if trace == "" {
		t.Fatalf("flushed span carries no trace ID: %+v", spans[0])
	}
	for _, sp := range spans {
		names[sp.Name]++
		if sp.Sampled != "tail" {
			t.Fatalf("span %s labeled %q, want tail", sp.Name, sp.Sampled)
		}
		if sp.TraceID != trace {
			t.Fatalf("span %s on trace %s, want the flow's single trace %s", sp.Name, sp.TraceID, trace)
		}
	}
	for _, name := range append([]string{obs.SpanConn, obs.SpanHandshake}, want...) {
		if names[name] == 0 {
			t.Errorf("flushed trace is missing %s span(s); got %v", name, names)
		}
	}
}

// TestChaosFaultedFlowFlushesFlightRecorder injects a deterministic netem
// fault on the middlebox's server leg and verifies the tail-sampling
// contract for faulted flows: with head sampling off, the flow's full
// flight-recorder ring is flushed, it contains the fault event harvested
// from the FaultConn transcript, and every span sits on one trace ID.
func TestChaosFaultedFlowFlushesFlightRecorder(t *testing.T) {
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.RecorderConfig{Sample: 0, Sink: sink})
	// A survivable latency fault on the first server-leg write: the session
	// completes, so only the fault makes this flow interesting.
	fault := netem.Fault{Kind: netem.FaultLatency, After: 0, Dur: 10 * time.Millisecond}
	payload := bytes.Repeat([]byte("plain benign words here. "), 64)
	flightRecorderSession(t, rec, []netem.Fault{fault}, payload)

	spans := sink.Spans()
	assertSingleTailTrace(t, spans, obs.SpanEventFault)
	for _, sp := range spans {
		if sp.Name == obs.SpanEventFault && sp.Err != fault.String() {
			t.Errorf("fault event detail %q, want the transcript entry %q", sp.Err, fault.String())
		}
	}
	recents := rec.Recent()
	if len(recents) != 1 || recents[0].Disposition != obs.DispositionTail {
		t.Fatalf("recent flow table = %+v, want one tail-flushed flow", recents)
	}
}

// TestChaosAlertFlowFlushesFlightRecorder verifies the other interesting
// terminal state: an unsampled flow that fires an alert flushes a complete
// trace — scan, forward and the alert event — on a single trace ID.
func TestChaosAlertFlowFlushesFlightRecorder(t *testing.T) {
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.RecorderConfig{Sample: 0, Sink: sink})
	flightRecorderSession(t, rec, nil, conformancePayload(77, 6<<10))

	spans := sink.Spans()
	assertSingleTailTrace(t, spans, obs.SpanScan, obs.SpanForward, obs.SpanEventAlert)
	for _, sp := range spans {
		if sp.Name == obs.SpanEventAlert && sp.Err == "sid 1" {
			return
		}
	}
	t.Fatalf("no alert event for sid 1 in the flushed trace")
}
