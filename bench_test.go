// Benchmarks regenerating the paper's evaluation under `go test -bench`:
// one benchmark (or family) per table and figure, plus the design-choice
// ablations DESIGN.md calls out. cmd/blindbench prints the same results as
// formatted tables; these expose them to standard Go tooling.
package blindbox

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	mrand "math/rand"
	"runtime"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/experiments"
	"repro/internal/garble"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/strawman"
	"repro/internal/tokenize"
)

func newBenchRand() *mrand.Rand { return mrand.New(mrand.NewSource(experiments.Seed)) }

// ---------------------------------------------------------------------------
// Table 1

// BenchmarkTable1Classification parses and classifies all six dataset
// models (the full Table 1 computation).
func BenchmarkTable1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2 — client encryption rows

func benchToken() tokenize.Token {
	var t tokenize.Token
	copy(t.Text[:], "benigntk")
	return t
}

// BenchmarkEncryptTokenVanilla is the vanilla-HTTPS row: AES-GCM over one
// 16-byte block (paper: 13 ns).
func BenchmarkEncryptTokenVanilla(b *testing.B) {
	gcm := bbcrypto.NewGCM(bbcrypto.Block{1})
	nonce := make([]byte, gcm.NonceSize())
	pt := make([]byte, 16)
	buf := make([]byte, 0, 64)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		buf = gcm.Seal(buf[:0], nonce, pt, nil)
	}
}

// BenchmarkEncryptTokenBlindBox is DPIEnc token encryption (paper: 69 ns).
func BenchmarkEncryptTokenBlindBox(b *testing.B) {
	s := dpienc.NewSender(bbcrypto.Block{1}, bbcrypto.Block{2}, dpienc.ProtocolII, 0)
	t := benchToken()
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		t.Offset = i
		s.EncryptToken(t)
	}
}

// BenchmarkEncryptTokenSearchable is the Song-et-al.-style strawman
// (paper: 2.7 µs, dominated by per-token entropy reads).
func BenchmarkEncryptTokenSearchable(b *testing.B) {
	s := strawman.NewSearchableSender(bbcrypto.Block{1})
	t := benchToken()
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		s.EncryptToken(t)
	}
}

// BenchmarkEncryptTokenFE is the functional-encryption strawman (paper:
// 70 ms per 128 bits).
func BenchmarkEncryptTokenFE(b *testing.B) {
	fe := strawman.NewFEScheme()
	t := benchToken()
	for i := 0; i < b.N; i++ {
		fe.Encrypt(t)
	}
}

// BenchmarkEncryptPacketVanilla seals a 1500-byte packet with AES-GCM
// (paper: 3 µs).
func BenchmarkEncryptPacketVanilla(b *testing.B) {
	gcm := bbcrypto.NewGCM(bbcrypto.Block{1})
	nonce := make([]byte, gcm.NonceSize())
	pkt := make([]byte, 1500)
	rand.Read(pkt)
	buf := make([]byte, 0, 2048)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		buf = gcm.Seal(buf[:0], nonce, pkt, nil)
	}
}

// BenchmarkEncryptPacketBlindBox runs the full sender pipeline (tokenize +
// DPIEnc) over 1500-byte packets, window mode (paper: 90 µs).
func BenchmarkEncryptPacketBlindBox(b *testing.B) {
	keys := bbcrypto.DeriveSessionKeys([]byte("bench"))
	pipe := core.NewSenderPipeline(keys, core.Config{Protocol: dpienc.ProtocolII, Mode: tokenize.Window})
	pkt := corpus.SynthesizeText(newBenchRand(), 1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks, _ := pipe.ProcessText(pkt)
		_ = toks
	}
}

// ---------------------------------------------------------------------------
// Table 2 — setup rows (§7.2.2, also the "setup" experiment)

// BenchmarkRulePreparation measures the complete per-keyword setup: both
// endpoints garble F, the middlebox verifies, runs OT and evaluates
// (paper: 588 ms for one keyword end to end).
func BenchmarkRulePreparation(b *testing.B) {
	k := bbcrypto.RandomBlock()
	kRG := bbcrypto.RandomBlock()
	krand := bbcrypto.RandomBlock()
	var frag [tokenize.TokenSize]byte
	copy(frag[:], "benchkw0")
	blk := rules.FragmentBlock(frag)
	req := ruleprep.Request{
		Fragments: []bbcrypto.Block{blk},
		Tags:      []bbcrypto.Block{bbcrypto.MAC(kRG, blk)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb, err := ruleprep.NewMiddlebox(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ruleprep.RunLocal(
			ruleprep.NewEndpoint(k, kRG, krand),
			ruleprep.NewEndpoint(k, kRG, krand), mb); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2 — middlebox detection rows

func detectEngine(b *testing.B, numKeywords int, idx detect.Index) (*detect.Engine, dpienc.EncryptedToken) {
	b.Helper()
	k := bbcrypto.Block{7}
	keys := make(detect.TokenKeys, numKeywords)
	lines := make([]byte, 0, numKeywords*64)
	for i := 0; i < numKeywords; i++ {
		var frag [tokenize.TokenSize]byte
		copy(frag[:], fmt.Sprintf("kw%06x", i))
		keys[rules.FragmentBlock(frag)] = dpienc.ComputeTokenKey(k, frag)
		lines = append(lines, []byte(fmt.Sprintf(
			"alert tcp any any -> any any (content:\"kw%06x\"; sid:%d;)\n", i, i+1))...)
	}
	rs, err := rules.Parse("bench", string(lines))
	if err != nil {
		b.Fatal(err)
	}
	eng := detect.NewEngine(rs, keys, detect.Config{
		Mode: tokenize.Window, Protocol: dpienc.ProtocolII, Index: idx,
	})
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	et := sender.EncryptToken(benchToken()) // never matches
	return eng, et
}

// BenchmarkDetectBlindBox1Rule: one token against one rule (paper: 20 ns).
func BenchmarkDetectBlindBox1Rule(b *testing.B) {
	eng, et := detectEngine(b, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ProcessToken(et)
	}
}

// BenchmarkDetectBlindBox3KRules: one token against a 3K-rule keyword set
// (paper: 137 ns — logarithmic in rules).
func BenchmarkDetectBlindBox3KRules(b *testing.B) {
	eng, et := detectEngine(b, 9900, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ProcessToken(et)
	}
}

// BenchmarkScanBatch3KRules: the batched detection path over record-sized
// token batches against the 3K-rule set — the per-token overhead ScanBatch
// amortizes relative to BenchmarkDetectBlindBox3KRules.
func BenchmarkScanBatch3KRules(b *testing.B) {
	eng, et := detectEngine(b, 9900, nil)
	batch := make([]dpienc.EncryptedToken, 512)
	for i := range batch {
		batch[i] = et
	}
	var dst []detect.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = eng.ScanBatch(batch, dst[:0])
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkScanBatch3KRulesInstrumented is BenchmarkScanBatch3KRules with an
// enabled (but unscraped) obs registry on the engine — the production
// middlebox configuration. Its tokens/s must stay within scheduler noise of
// the uninstrumented rate: two atomic adds per 512-token batch.
func BenchmarkScanBatch3KRulesInstrumented(b *testing.B) {
	eng, et := detectEngine(b, 9900, nil)
	eng.Instrument(obs.NewRegistry())
	batch := make([]dpienc.EncryptedToken, 512)
	for i := range batch {
		batch[i] = et
	}
	var dst []detect.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = eng.ScanBatch(batch, dst[:0])
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkDetectBlindBox3KRulesParallel scans record-sized batches on one
// engine per goroutine — the middlebox pool's shard confinement without the
// network. tokens/s is the aggregate across GOMAXPROCS engines; on >= 4
// cores it should be >= 2x BenchmarkScanBatch3KRules' rate.
func BenchmarkDetectBlindBox3KRulesParallel(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	engines := make(chan *detect.Engine, n)
	var et dpienc.EncryptedToken
	for i := 0; i < n; i++ {
		eng, tok := detectEngine(b, 9900, nil)
		et = tok
		engines <- eng
	}
	batch := make([]dpienc.EncryptedToken, 512)
	for i := range batch {
		batch[i] = et
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		eng := <-engines
		defer func() { engines <- eng }()
		var dst []detect.Event
		for pb.Next() {
			dst = eng.ScanBatch(batch, dst[:0])
		}
	})
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkEncryptTokensBatch: batched DPIEnc over record-sized token
// slices with a reused output buffer (the transport hot path).
func BenchmarkEncryptTokensBatch(b *testing.B) {
	s := dpienc.NewSender(bbcrypto.Block{1}, bbcrypto.Block{2}, dpienc.ProtocolII, 0)
	toks := make([]tokenize.Token, 512)
	for i := range toks {
		copy(toks[i].Text[:], fmt.Sprintf("tk%06x", i%64))
		toks[i].Offset = i * 8
	}
	var out []dpienc.EncryptedToken
	b.SetBytes(512 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = s.EncryptTokensInto(out[:0], toks)
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds(), "tokens/s")
}

// BenchmarkDetectSearchable3KRules: the linear-scan strawman at 9900
// keywords (paper: 5.6 ms).
func BenchmarkDetectSearchable3KRules(b *testing.B) {
	k := bbcrypto.Block{7}
	keys := make([]dpienc.TokenKey, 9900)
	for i := range keys {
		var frag [tokenize.TokenSize]byte
		copy(frag[:], fmt.Sprintf("kw%06x", i))
		keys[i] = dpienc.ComputeTokenKey(k, frag)
	}
	mb := strawman.NewSearchableMB(keys)
	ct := strawman.NewSearchableSender(k).EncryptToken(benchToken())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Detect(ct)
	}
}

// BenchmarkDetectFE1Rule: one FE predicate test (paper: 170 ms).
func BenchmarkDetectFE1Rule(b *testing.B) {
	fe := strawman.NewFEScheme()
	key := fe.KeyGen(benchToken().Text)
	ct := fe.Encrypt(benchToken())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe.Test(ct, key)
	}
}

// ---------------------------------------------------------------------------
// Figures 3 and 4 — page load model

// BenchmarkPageLoad20Mbps evaluates the Fig. 3 model over all five sites.
func BenchmarkPageLoad20Mbps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PageLoad(netem.Typical20Mbps(), tokenize.Delimiter)
	}
}

// BenchmarkPageLoad1Gbps evaluates the Fig. 4 model.
func BenchmarkPageLoad1Gbps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PageLoad(netem.Fast1Gbps(), tokenize.Delimiter)
	}
}

// ---------------------------------------------------------------------------
// Figures 5 and 6 — tokenization bandwidth

// BenchmarkTokenizeTop50 measures both tokenizers over the top-50 corpus
// (the Fig. 5 computation); reported bytes are page bytes processed.
func BenchmarkTokenizeTop50(b *testing.B) {
	pages := corpus.Top50(experiments.Seed)
	total := 0
	for _, p := range pages {
		total += p.TotalBytes()
	}
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(total))
			for i := 0; i < b.N; i++ {
				for _, p := range pages {
					tk := tokenize.New(mode)
					for _, seg := range p.Flow() {
						if seg.Binary {
							tk.Skip(len(seg.Data))
						} else {
							tk.Append(seg.Data)
						}
					}
					tk.Flush()
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// §7.1 accuracy and §7.2.3 throughput

// BenchmarkAccuracyTrace runs the full ICTF-like accuracy experiment.
func BenchmarkAccuracyTrace(b *testing.B) {
	opt := experiments.DefaultAccuracyOptions()
	opt.Rules = 100
	opt.Trace.Flows = 40
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Accuracy(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMiddleboxThroughput measures BlindBox Detect over encrypted
// tokens of synthetic traffic; throughput is reported in traffic bytes.
func BenchmarkMiddleboxThroughput(b *testing.B) {
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = 3000
	spec.P2Frac = 1.0
	rs, err := spec.Generate(experiments.Seed)
	if err != nil {
		b.Fatal(err)
	}
	traffic := corpus.SynthesizeText(newBenchRand(), 1<<20)
	k := bbcrypto.Block{3}
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	ets := sender.EncryptTokens(tokenize.TokenizeAll(tokenize.Delimiter, traffic))
	eng := detect.NewEngine(rs, core.DirectTokenKeys(k, rs, tokenize.Delimiter), detect.Config{
		Mode: tokenize.Delimiter, Protocol: dpienc.ProtocolII,
	})
	b.SetBytes(int64(len(traffic)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ets {
			eng.ProcessToken(ets[j])
		}
	}
}

// BenchmarkBaselineThroughput measures the Snort-like plaintext pipeline
// over the same traffic.
func BenchmarkBaselineThroughput(b *testing.B) {
	res, err := experiments.Throughput(experiments.ThroughputOptions{
		Rules: 3000, TrafficBytes: 1 << 20, Mode: tokenize.Delimiter,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.BaselineMbps, "baseline-Mbps")
	b.ReportMetric(res.BlindBoxMbps, "blindbox-Mbps")
	b.ReportMetric(res.SenderMbps, "sender-Mbps")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

// BenchmarkDetectTreeVsHash compares the two Index implementations at 3K
// rules (ablation #1).
func BenchmarkDetectTreeVsHash(b *testing.B) {
	for _, mk := range []func() detect.Index{
		func() detect.Index { return detect.NewTreeIndex() },
		func() detect.Index { return detect.NewHashIndex() },
	} {
		idx := mk()
		b.Run(idx.Name(), func(b *testing.B) {
			eng, et := detectEngine(b, 9900, mk())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ProcessToken(et)
			}
		})
	}
}

// BenchmarkTokenizerAblation compares per-byte tokenizer cost (ablation #2).
func BenchmarkTokenizerAblation(b *testing.B) {
	text := corpus.SynthesizeText(newBenchRand(), 64<<10)
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				tokenize.TokenizeAll(mode, text)
			}
		})
	}
}

// BenchmarkSaltAblation compares BlindBox counter-table salts against
// transmitted per-token salts (the searchable strawman's approach,
// ablation #3): same AES work, but the strawman pays an entropy read per
// token and 8 extra wire bytes.
func BenchmarkSaltAblation(b *testing.B) {
	t := benchToken()
	b.Run("counter-table", func(b *testing.B) {
		s := dpienc.NewSender(bbcrypto.Block{1}, bbcrypto.Block{}, dpienc.ProtocolII, 0)
		for i := 0; i < b.N; i++ {
			s.EncryptToken(t)
		}
	})
	b.Run("transmitted-salts", func(b *testing.B) {
		s := strawman.NewSearchableSender(bbcrypto.Block{1})
		for i := 0; i < b.N; i++ {
			s.EncryptToken(t)
		}
	})
}

// BenchmarkDPIEncHashAblation compares the AES instantiation of H in
// DPIEnc against a SHA-256 instantiation (§3.1: "SHA-1 is not as fast as
// AES", ablation #4). Like the real sender, the AES variant keys the
// cipher once per token (the key schedule amortizes over occurrences);
// each op is then one block encryption vs one SHA-256 compression.
func BenchmarkDPIEncHashAblation(b *testing.B) {
	tk := dpienc.ComputeTokenKey(bbcrypto.Block{1}, benchToken().Text)
	b.Run("aes", func(b *testing.B) {
		blk := bbcrypto.NewAES(tk)
		var pt, ct bbcrypto.Block
		for i := 0; i < b.N; i++ {
			pt[8] = byte(i)
			blk.Encrypt(ct[:], pt[:])
		}
	})
	b.Run("sha256", func(b *testing.B) {
		var salt [8]byte
		for i := 0; i < b.N; i++ {
			salt[0] = byte(i)
			h := sha256.New()
			h.Write(salt[:])
			h.Write(tk[:])
			h.Sum(nil)
		}
	})
}

// BenchmarkProtocolIIIOverhead compares Protocol II and Protocol III token
// encryption (ablation #5: the paired ciphertext costs one extra AES call
// and 16 wire bytes per token).
func BenchmarkProtocolIIIOverhead(b *testing.B) {
	t := benchToken()
	for _, proto := range []dpienc.Protocol{dpienc.ProtocolII, dpienc.ProtocolIII} {
		b.Run(proto.String(), func(b *testing.B) {
			s := dpienc.NewSender(bbcrypto.Block{1}, bbcrypto.Block{2}, proto, 0)
			for i := 0; i < b.N; i++ {
				t.Offset = i
				s.EncryptToken(t)
			}
		})
	}
}

// BenchmarkGarbleSBox compares garbling the AES circuit built with each
// S-box construction (DESIGN.md substitution #2 ablation).
func BenchmarkGarbleSBox(b *testing.B) {
	for _, impl := range []circuit.SBoxImpl{circuit.SBoxGF, circuit.SBoxMux} {
		c := circuit.BuildAES128(impl)
		b.Run(impl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := garble.Garble(c, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{byte(i)})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGarbledEval measures evaluating one garbled AES-128 — the
// middlebox's per-rule cost during setup.
func BenchmarkGarbledEval(b *testing.B) {
	c := circuit.BuildAES128(circuit.SBoxGF)
	g, labels, err := garble.Garble(c, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		b.Fatal(err)
	}
	in := make([]garble.Block, c.NInputs)
	for i := range in {
		in[i] = labels.For(i, i%3 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := garble.Eval(c, g, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGarbleRows compares the three AND-gate table constructions on
// a garbled AES-128 (wire sizes: 4, 3 and 2 blocks per gate).
func BenchmarkGarbleRows(b *testing.B) {
	c := circuit.BuildAES128(circuit.SBoxGF)
	for _, v := range []struct {
		name string
		opts garble.Options
	}{
		{"pp4", garble.Options{FullRows: true}},
		{"grr3", garble.Options{}},
		{"half2", garble.Options{HalfGates: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				g, _, err := garble.GarbleWith(c, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{byte(i)}), v.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = g.Size()
			}
			b.ReportMetric(float64(size), "wire-bytes")
		})
	}
}
