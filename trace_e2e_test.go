// End-to-end distributed-tracing suite: full client -> middlebox -> server
// sessions with every party tracing into its own sink, assembled with
// internal/obs. The core property: each session yields exactly one
// acyclic span tree — a single root on the client, every span reachable
// from it by parent links, all three parties on one trace ID, and a
// critical path bounded by the wall-clock.
package blindbox

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestE2ETraceTreeProperties runs traced sessions and checks the
// assembled trace invariants that bbtrace -assemble -strict enforces.
func TestE2ETraceTreeProperties(t *testing.T) {
	g, err := NewRuleGenerator("TraceRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ParseRules("trace-e2e",
		`alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}

	var clientSink, mbSink, serverSink obs.CollectSink
	mb, err := NewMiddlebox(MiddleboxConfig{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Trace:       &mbSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()

	serverCfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}, Trace: &serverSink}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := Server(raw, serverCfg)
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				conn.Write(data)
				conn.CloseWrite()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	const sessions = 3
	payload := []byte(strings.Repeat("benign attack01 words here. ", 64))
	for i := 0; i < sessions; i++ {
		cfg := ConnConfig{Core: DefaultConfig(), RG: RGMaterial{TagKey: g.TagKey()}, Trace: &clientSink}
		conn, err := Dial(mbLn.Addr().String(), cfg)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("session %d write: %v", i, err)
		}
		if err := conn.CloseWrite(); err != nil {
			t.Fatalf("session %d close-write: %v", i, err)
		}
		if _, err := io.ReadAll(conn); err != nil {
			t.Fatalf("session %d read: %v", i, err)
		}
		conn.Close()
	}

	// The middlebox emits forward spans when its relay goroutines drain,
	// shortly after the client closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		forwards := 0
		for _, sp := range mbSink.Spans() {
			if sp.Name == obs.SpanForward {
				forwards++
			}
		}
		if forwards >= 2*sessions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("middlebox emitted %d forward spans, want %d", forwards, 2*sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	all := append(append(clientSink.Spans(), mbSink.Spans()...), serverSink.Spans()...)
	flows, untraced, err := obs.AssembleSpans(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(untraced) != 0 {
		t.Errorf("%d span(s) carried no trace context: %+v", len(untraced), untraced)
	}
	if len(flows) != sessions {
		t.Fatalf("assembled %d traces, want one per session (%d)", len(flows), sessions)
	}
	for _, ft := range flows {
		// Exactly one root, owned by the client (it dials first and
		// injects the trace into its hello).
		if ft.Root == nil {
			t.Fatalf("trace %s: no root span", ft.Trace)
		}
		if ft.Root.Span.Party != obs.PartyClient || ft.Root.Span.Name != obs.SpanConn {
			t.Errorf("trace %s: root is %s/%s, want client conn span",
				ft.Trace, ft.Root.Span.Party, ft.Root.Span.Name)
		}
		// Acyclic and complete: the assembler reaches spans from the root
		// by parent links only, so zero orphans means every span sits in
		// one tree with no cycles and no second root.
		if len(ft.Orphans) != 0 {
			t.Errorf("trace %s: %d orphan span(s): %+v", ft.Trace, len(ft.Orphans), ft.Orphans)
		}
		parties := map[string]bool{}
		roots := 0
		for _, n := range ft.Nodes() {
			parties[n.Span.Party] = true
			if n.Span.Parent == 0 {
				roots++
			}
		}
		if roots != 1 {
			t.Errorf("trace %s: %d parentless spans in the tree, want 1", ft.Trace, roots)
		}
		for _, p := range []string{obs.PartyClient, obs.PartyMB, obs.PartyServer} {
			if !parties[p] {
				t.Errorf("trace %s: no spans from party %q — trace context did not propagate", ft.Trace, p)
			}
		}
		if ft.CritNs <= 0 || ft.CritNs > ft.WallNs {
			t.Errorf("trace %s: critical path %dns outside (0, wall=%dns]", ft.Trace, ft.CritNs, ft.WallNs)
		}
	}
}
