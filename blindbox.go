// Package blindbox is the public API of this BlindBox implementation — a
// from-scratch Go reproduction of "BlindBox: Deep Packet Inspection over
// Encrypted Traffic" (Sherry, Lan, Popa, Ratnasamy — SIGCOMM 2015).
//
// BlindBox lets a middlebox perform deep packet inspection directly over
// encrypted traffic: endpoints speak BlindBox HTTPS (an encrypted transport
// plus a searchable-encrypted token side channel), and the middlebox
// matches attack rules against the tokens without ever holding the session
// key. Three protocols are provided:
//
//   - Protocol I: single-keyword rules, exact-match privacy;
//   - Protocol II: multi-keyword rules with offset information;
//   - Protocol III: full IDS (regexps) under probable-cause privacy — the
//     middlebox can decrypt a flow only after a suspicious keyword matched.
//
// A minimal deployment has four parties, mirroring Fig. 1 of the paper:
//
//	rg, _ := blindbox.NewRuleGenerator("ExampleRG")       // rule generator
//	rs, _ := blindbox.ParseRules("demo", ruleText)        //
//	signed := rg.Sign(rs)                                 // signed ruleset
//
//	mb, _ := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{   // middlebox
//	    Ruleset:     signed,
//	    RGPublicKey: rg.PublicKey(),
//	    OnAlert:     func(a blindbox.Alert) { log.Println(a.Event.Rule.Msg) },
//	})
//	go mb.Serve(listener, serverAddr)
//
//	cfg := blindbox.ConnConfig{                           // endpoints
//	    Core: blindbox.DefaultConfig(),
//	    RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
//	}
//	conn, _ := blindbox.Dial(mbAddr, cfg)                 // client
//	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
//
// See the examples directory for complete programs (quickstart,
// exfiltration detection, parental filtering, and a full Protocol III IDS)
// and cmd/blindbench for the harness that regenerates every table and
// figure of the paper's evaluation.
package blindbox

import (
	"io"
	"net"
	"net/http"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/transport"
)

// Protocol selects the BlindBox protocol (§2.4 of the paper).
type Protocol = dpienc.Protocol

// The three BlindBox protocols.
const (
	// ProtocolI supports one exact-match keyword per rule.
	ProtocolI = dpienc.ProtocolI
	// ProtocolII adds multiple keywords and offset information.
	ProtocolII = dpienc.ProtocolII
	// ProtocolIII adds probable-cause decryption for full IDS rules.
	ProtocolIII = dpienc.ProtocolIII
)

// Mode selects the tokenization algorithm (§3).
type Mode = tokenize.Mode

// The two tokenization modes.
const (
	// WindowTokens emits one token per byte offset.
	WindowTokens = tokenize.Window
	// DelimiterTokens emits only delimiter-anchored tokens.
	DelimiterTokens = tokenize.Delimiter
)

// Config fixes a connection's protocol parameters.
type Config = core.Config

// DefaultConfig is Protocol II with delimiter tokenization — the paper's
// primary evaluation configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// ConnConfig configures an endpoint connection.
type ConnConfig = transport.ConnConfig

// RGMaterial is the rule-generator configuration installed at endpoints.
type RGMaterial = transport.RGMaterial

// Conn is a BlindBox HTTPS connection endpoint.
type Conn = transport.Conn

// Dial opens a BlindBox HTTPS client connection to addr.
func Dial(addr string, cfg ConnConfig) (*Conn, error) { return transport.Dial(addr, cfg) }

// Client runs the client handshake over an existing transport.
func Client(raw net.Conn, cfg ConnConfig) (*Conn, error) { return transport.Client(raw, cfg) }

// Server runs the server handshake over an accepted transport.
func Server(raw net.Conn, cfg ConnConfig) (*Conn, error) { return transport.Server(raw, cfg) }

// Mux multiplexes SPDY-like logical streams over one BlindBox HTTPS
// connection, amortizing the handshake and rule preparation across many
// requests — the persistent-connection setting the paper recommends (§1).
type Mux = transport.Mux

// Stream is one logical flow within a Mux.
type Stream = transport.Stream

// NewMux wraps an established connection for stream multiplexing. The
// connection initiator (client) passes true.
func NewMux(conn *Conn, initiator bool) *Mux { return transport.NewMux(conn, initiator) }

// Middlebox is the BlindBox DPI middlebox.
type Middlebox = middlebox.Middlebox

// MiddleboxConfig configures a middlebox.
type MiddleboxConfig = middlebox.Config

// Alert is a middlebox detection report.
type Alert = middlebox.Alert

// Event is one primary detection event.
type Event = detect.Event

// Detection event kinds.
const (
	// KeywordMatch fires per matched rule keyword.
	KeywordMatch = detect.KeywordMatch
	// RuleMatch fires when a whole rule is satisfied.
	RuleMatch = detect.RuleMatch
)

// NewMiddlebox validates the signed ruleset and builds a middlebox.
func NewMiddlebox(cfg MiddleboxConfig) (*Middlebox, error) { return middlebox.New(cfg) }

// Ruleset is a parsed rule collection.
type Ruleset = rules.Ruleset

// Rule is one parsed IDS rule.
type Rule = rules.Rule

// SignedRuleset is a ruleset with RG provenance and authorization tags.
type SignedRuleset = rules.SignedRuleset

// RuleGenerator is the RG role: it signs rulesets and issues the keys that
// authorize keyword encryption.
type RuleGenerator = rules.Generator

// NewRuleGenerator creates an RG with fresh keys.
func NewRuleGenerator(name string) (*RuleGenerator, error) { return rules.NewGenerator(name) }

// ParseRules parses a Snort-compatible ruleset.
func ParseRules(name, text string) (*Ruleset, error) { return rules.Parse(name, text) }

// ParseRule parses a single rule line.
func ParseRule(line string) (*Rule, error) { return rules.ParseRule(line) }

// SessionKeys are the three per-connection keys (kSSL, k, krand) of §2.3.
type SessionKeys = bbcrypto.SessionKeys

// Metrics is a metrics registry: install one in MiddleboxConfig.Metrics or
// ConnConfig.Metrics and serve it with AdminMux. A nil *Metrics disables
// collection at near-zero cost.
type Metrics = obs.Registry

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// AdminMux serves r as Prometheus text on /metrics, JSON on /metrics.json,
// a liveness probe on /healthz, and net/http/pprof under /debug/pprof/.
func AdminMux(r *Metrics) *http.ServeMux { return obs.AdminMux(r) }

// Span is one per-flow trace record (see the obs package for the schema).
type Span = obs.Span

// TraceSink receives pipeline spans; install one in MiddleboxConfig.Trace
// or ConnConfig.Trace.
type TraceSink = obs.Sink

// NewTraceSink writes spans to w as JSON lines, one span per line, buffered
// — the format `bbtrace -spans` consumes. Call Flush before closing w.
func NewTraceSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONLSink(w) }

// Recorder is the flight-recorder / tail-sampling layer: install one in
// MiddleboxConfig.Recorder or ConnConfig.Recorder to bound tracing cost —
// head-sampled flows stream their spans, flows ending in an interesting
// state flush a bounded per-flow ring, the rest cost nothing downstream
// (DESIGN.md §8).
type Recorder = obs.Recorder

// RecorderConfig configures a Recorder (ring size, head-sampling rate,
// sink, self-metrics).
type RecorderConfig = obs.RecorderConfig

// FlowSummary is one row of the recorder's /debug/flows tables.
type FlowSummary = obs.FlowSummary

// NewRecorder builds a flight recorder; mount its debug endpoints on an
// AdminMux with Recorder.Mount.
func NewRecorder(cfg RecorderConfig) *Recorder { return obs.NewRecorder(cfg) }
