// Exfiltration detection via document watermarking (the paper's §1 and
// §7.1 "data exfiltration" application, after Silowash et al.): an
// enterprise plants confidentiality watermarks in sensitive documents and
// the egress middlebox blocks any encrypted upload that carries one —
// without being able to read anything else the employees send.
//
// This is a Protocol I workload: each watermark is a single keyword, so
// the simplest BlindBox protocol suffices (Table 1, row 1: 100% of
// watermarking rules are Protocol I).
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"strings"

	blindbox "repro"
)

// watermarks the enterprise embeds in confidential documents. The unique
// part leads: under delimiter tokenization an undelimited keyword is
// matched by its first 8-byte fragment, so watermarks sharing a long
// common prefix (e.g. "CONF-MARK-<id>") would all fire whenever any one
// of them appears.
var watermarks = []string{
	"ab12f9-CONF-MARK",
	"77e0c3-CONF-MARK",
	"d4491b-CONF-MARK",
}

func main() {
	rg, err := blindbox.NewRuleGenerator("EnterpriseDLP")
	if err != nil {
		log.Fatal(err)
	}
	var rules []string
	for i, wm := range watermarks {
		rules = append(rules, fmt.Sprintf(
			`drop tcp $HOME_NET any -> $EXTERNAL_NET any (msg:"confidential watermark %d"; content:"%s"; sid:%d;)`,
			i, wm, 9000+i))
	}
	ruleset, err := blindbox.ParseRules("watermarks", strings.Join(rules, "\n"))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ruleset.Rules {
		if r.Protocol() != 1 {
			log.Fatalf("watermark rule %d needs protocol %d; expected Protocol I", r.SID, r.Protocol())
		}
	}

	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     rg.Sign(ruleset),
		RGPublicKey: rg.PublicKey(),
		OnAlert: func(a blindbox.Alert) {
			if a.Event.Kind == blindbox.RuleMatch {
				fmt.Printf("DLP: blocking upload — %s (offset %d)\n", a.Event.Rule.Msg, a.Event.Offset)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	uploadLn := mustListen()
	mbLn := mustListen()
	go acceptUploads(uploadLn, rg)
	go mb.Serve(mbLn, uploadLn.Addr().String())

	cfg := blindbox.ConnConfig{
		// Protocol I with delimiter tokens: the watermark is a single
		// delimiter-bounded keyword.
		Core: blindbox.Config{Protocol: blindbox.ProtocolI, Mode: blindbox.DelimiterTokens},
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}

	// An innocent upload passes.
	ok, err := upload(mbLn.Addr().String(), cfg,
		"quarterly weather report: it rained, then it did not, attached are charts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("innocent upload delivered: %v\n", ok)

	// An upload of a watermarked document is severed mid-flight.
	leaked := "EMPLOYEE attaches wrong file: ... " + watermarks[1] + " ... salaries and board minutes"
	ok, _ = upload(mbLn.Addr().String(), cfg, leaked)
	fmt.Printf("watermarked upload delivered: %v (want false)\n", ok)
	fmt.Printf("middlebox stats: %+v\n", mb.Stats())
}

// upload sends a document through the middlebox and reports whether the
// server acknowledged the complete document.
func upload(addr string, cfg blindbox.ConnConfig, doc string) (bool, error) {
	conn, err := blindbox.Dial(addr, cfg)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(doc)); err != nil {
		return false, nil // severed while writing: blocked
	}
	if err := conn.CloseWrite(); err != nil {
		return false, nil
	}
	ack, err := io.ReadAll(conn)
	if err != nil {
		return false, nil // severed before the ack: blocked
	}
	return string(ack) == fmt.Sprintf("received %d bytes", len(doc)), nil
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

// acceptUploads is the outside file-sharing service: it acknowledges each
// received document.
func acceptUploads(ln net.Listener, rg *blindbox.RuleGenerator) {
	cfg := blindbox.ConnConfig{
		Core: blindbox.Config{Protocol: blindbox.ProtocolI, Mode: blindbox.DelimiterTokens},
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := blindbox.Server(raw, cfg)
			if err != nil {
				_ = raw.Close()
				return
			}
			defer conn.Close()
			doc, err := io.ReadAll(conn)
			if err != nil {
				return
			}
			fmt.Fprintf(conn, "received %d bytes", len(doc))
			_ = conn.CloseWrite()
		}()
	}
}
