// Persistent-connection tunneling (the paper's recommended deployment
// model, §1: "BlindBox is most fit for settings using long or persistent
// connections through SPDY-like protocols or tunneling"): connection setup
// pays for obfuscated rule encryption once, then any number of logical
// requests share it via stream multiplexing — the middlebox keeps
// inspecting every stream.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	blindbox "repro"
)

func main() {
	rg, err := blindbox.NewRuleGenerator("TunnelRG")
	if err != nil {
		log.Fatal(err)
	}
	ruleset, err := blindbox.ParseRules("tunnel", `
alert tcp any any -> any any (msg:"sqli probe"; content:"UNION-SELECT-0x1"; sid:2001;)
alert tcp any any -> any any (msg:"path traversal"; content:"/../../etc/passwd"; sid:2002;)
`)
	if err != nil {
		log.Fatal(err)
	}

	alerted := make(chan int, 64)
	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     rg.Sign(ruleset),
		RGPublicKey: rg.PublicKey(),
		OnAlert: func(a blindbox.Alert) {
			if a.Event.Kind == blindbox.RuleMatch {
				alerted <- a.Event.Rule.SID
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	srvLn := mustListen()
	mbLn := mustListen()
	go serveMux(srvLn, rg)
	go mb.Serve(mbLn, srvLn.Addr().String())

	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}

	// One handshake — including garbled-circuit rule preparation — for the
	// whole session.
	start := time.Now()
	conn, err := blindbox.Dial(mbLn.Addr().String(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("tunnel established in %v (rule preparation amortized over the session)\n",
		time.Since(start).Round(time.Millisecond))
	mux := blindbox.NewMux(conn, true)

	requests := []string{
		"GET /catalog?page=1 HTTP/1.1\r\n\r\n",
		"GET /catalog?page=2 HTTP/1.1\r\n\r\n",
		"GET /search?q=shoes UNION-SELECT-0x1 HTTP/1.1\r\n\r\n", // attack on stream 3
		"GET /account HTTP/1.1\r\n\r\n",
		"GET /static/app.js HTTP/1.1\r\n\r\n",
	}
	start = time.Now()
	for i, req := range requests {
		st, err := mux.Open()
		if err != nil {
			log.Fatal(err)
		}
		_, _ = st.Write([]byte(req))
		_ = st.Close()
		resp, err := io.ReadAll(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %d: %d-byte response\n", i+1, len(resp))
	}
	fmt.Printf("%d requests over one inspected tunnel in %v\n",
		len(requests), time.Since(start).Round(time.Millisecond))

	deadline := time.After(3 * time.Second)
	select {
	case sid := <-alerted:
		fmt.Printf("middlebox alerted on rule %d (the stream-3 probe) — still inspecting inside the tunnel\n", sid)
	case <-deadline:
		fmt.Println("WARNING: expected an alert on the injected probe")
	}
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

// serveMux answers every stream of every tunnel with a small page.
func serveMux(ln net.Listener, rg *blindbox.RuleGenerator) {
	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := blindbox.Server(raw, cfg)
			if err != nil {
				_ = raw.Close()
				return
			}
			mux := blindbox.NewMux(conn, false)
			for {
				st, err := mux.Accept()
				if err != nil {
					_ = conn.Close()
					return
				}
				go func() {
					if _, err := io.ReadAll(st); err != nil {
						return
					}
					_, _ = st.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 14\r\n\r\n<html>ok</html>"))
					_ = st.Close()
				}()
			}
		}()
	}
}
