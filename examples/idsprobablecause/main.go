// Full IDS with probable-cause privacy (Protocol III, §5 of the paper):
// rules may carry regular expressions, which exact-match detection cannot
// evaluate. The flow stays encrypted until a suspicious keyword matches;
// only then can the middlebox recover kSSL from the token stream, decrypt
// the flow, and run the full rule (pcre included) over the plaintext —
// privacy is given up only with cause.
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	blindbox "repro"
)

func main() {
	rg, err := blindbox.NewRuleGenerator("UniversityIDS")
	if err != nil {
		log.Fatal(err)
	}
	// A classic shellcode-ish rule: a selective keyword gates an expensive
	// regexp, exactly the structure the Snort manual urges (§2.2.3).
	ruleset, err := blindbox.ParseRules("campus", `
alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"cmd injection"; content:"exec-cmd"; pcre:"/exec-cmd=[a-f0-9]{8,}/"; sid:4242;)
`)
	if err != nil {
		log.Fatal(err)
	}
	if ruleset.Rules[0].Protocol() != 3 {
		log.Fatalf("expected a Protocol III rule, got %d", ruleset.Rules[0].Protocol())
	}

	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     rg.Sign(ruleset),
		RGPublicKey: rg.PublicKey(),
		Secondary:   true, // enable the decryption element + full-rule inspection
		OnAlert: func(a blindbox.Alert) {
			switch {
			case a.Secondary:
				fmt.Printf("secondary IDS (decrypted flow): rules %v confirmed by regexp\n", a.SecondarySIDs)
			case a.Event.HasSSLKey:
				fmt.Printf("probable cause at offset %d: kSSL recovered, flow handed to decryption element\n",
					a.Event.Offset)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	srvLn := mustListen()
	mbLn := mustListen()
	go serveEcho(srvLn, rg)
	go mb.Serve(mbLn, srvLn.Addr().String())

	cfg := blindbox.ConnConfig{
		// Protocol III: every token carries the paired ciphertext that
		// embeds kSSL (c2 = Enc*(salt,t) XOR kSSL).
		Core: blindbox.Config{Protocol: blindbox.ProtocolIII, Mode: blindbox.WindowTokens},
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}

	send := func(label, payload string) {
		conn, err := blindbox.Dial(mbLn.Addr().String(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		_, _ = conn.Write([]byte(payload))
		_ = conn.CloseWrite()
		_, _ = io.ReadAll(conn)
		fmt.Printf("--- %s sent (%d bytes)\n", label, len(payload))
	}

	// Innocent flow: stays encrypted end to end; the middlebox learns
	// nothing (KeysRecovered stays 0 so far).
	send("innocent flow", "GET /lecture-notes HTTP/1.1\r\nHost: cs.example\r\n\r\nprivate study notes")
	fmt.Printf("after innocent flow: keys recovered = %d (want 0)\n", mb.Stats().KeysRecovered)

	// Suspicious flow: the keyword matches, kSSL is recovered, and the
	// decrypted flow passes the regexp -> secondary alert.
	send("attack flow", "POST /run HTTP/1.1\r\nHost: victim.example\r\n\r\nexec-cmd=deadbeef99 && rm -rf /")
	fmt.Printf("after attack flow: keys recovered = %d (want > 0)\n", mb.Stats().KeysRecovered)
	fmt.Printf("middlebox stats: %+v\n", mb.Stats())
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func serveEcho(ln net.Listener, rg *blindbox.RuleGenerator) {
	cfg := blindbox.ConnConfig{
		Core: blindbox.Config{Protocol: blindbox.ProtocolIII, Mode: blindbox.WindowTokens},
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := blindbox.Server(raw, cfg)
			if err != nil {
				_ = raw.Close()
				return
			}
			defer conn.Close()
			data, err := io.ReadAll(conn)
			if err != nil {
				return
			}
			_, _ = conn.Write(data)
			_ = conn.CloseWrite()
		}()
	}
}
