// Parental filtering (the paper's §2.1 Example #2): Bob registers for
// filtering with his ISP, but installs the Electronic Filtering
// Foundation's BlindBox configuration so the ISP's middlebox can scan only
// for the EFF's blocklist — it cannot read his traffic or sell it to
// marketers.
//
// Like watermarking, this is a pure Protocol I workload (Table 1, row 2).
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"strings"

	blindbox "repro"
)

// blocklist is the filtering ruleset: domains and terms. (The University
// of Toulouse blacklists the paper uses are lists of exactly this shape.)
var blocklist = []string{
	"gambling-palace.example",
	"adult-content.example",
	"violent-games.example",
}

func main() {
	eff, err := blindbox.NewRuleGenerator("ElectronicFilteringFoundation")
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for i, domain := range blocklist {
		lines = append(lines, fmt.Sprintf(
			`drop tcp $HOME_NET any -> $EXTERNAL_NET any (msg:"filtered: %s"; content:"%s"; sid:%d;)`,
			domain, domain, 5000+i))
	}
	ruleset, err := blindbox.ParseRules("eff-filter", strings.Join(lines, "\n"))
	if err != nil {
		log.Fatal(err)
	}
	p1, _, _ := ruleset.ProtocolBreakdown()
	fmt.Printf("blocklist rules supported by Protocol I: %.0f%% (paper Table 1: 100%%)\n", p1*100)

	var blockedCount int
	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     eff.Sign(ruleset),
		RGPublicKey: eff.PublicKey(),
		OnAlert: func(a blindbox.Alert) {
			if a.Event.Kind == blindbox.RuleMatch {
				blockedCount++
				fmt.Printf("ISP filter: %s\n", a.Event.Rule.Msg)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	webLn := mustListen()
	ispLn := mustListen()
	go serveWeb(webLn, eff)
	go mb.Serve(ispLn, webLn.Addr().String())

	cfg := blindbox.ConnConfig{
		Core: blindbox.Config{Protocol: blindbox.ProtocolI, Mode: blindbox.DelimiterTokens},
		RG:   blindbox.RGMaterial{TagKey: eff.TagKey()},
	}

	browse := func(host string) {
		conn, err := blindbox.Dial(ispLn.Addr().String(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		req := fmt.Sprintf("GET / HTTP/1.1\r\nHost: %s\r\n\r\n", host)
		if _, err := conn.Write([]byte(req)); err != nil {
			fmt.Printf("browse %s: connection severed\n", host)
			return
		}
		_ = conn.CloseWrite()
		body, err := io.ReadAll(conn)
		if err != nil || len(body) == 0 {
			fmt.Printf("browse %s: blocked\n", host)
			return
		}
		fmt.Printf("browse %s: %d bytes (private from the ISP)\n", host, len(body))
	}

	browse("homework-help.example")
	browse("encyclopedia.example")
	browse("gambling-palace.example")
	fmt.Printf("pages blocked: %d (want 1)\n", blockedCount)
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

func serveWeb(ln net.Listener, rg *blindbox.RuleGenerator) {
	cfg := blindbox.ConnConfig{
		Core: blindbox.Config{Protocol: blindbox.ProtocolI, Mode: blindbox.DelimiterTokens},
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := blindbox.Server(raw, cfg)
			if err != nil {
				_ = raw.Close()
				return
			}
			defer conn.Close()
			if _, err := io.ReadAll(conn); err != nil {
				return
			}
			_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n<html>a page</html>"))
			_ = conn.CloseWrite()
		}()
	}
}
