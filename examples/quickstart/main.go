// Quickstart: the smallest complete BlindBox deployment — a rule
// generator, a middlebox, a BlindBox HTTPS server and a client, all over
// loopback TCP. The client sends one innocent request and one containing
// an attack keyword; the middlebox alerts on the second without ever
// seeing the plaintext.
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	blindbox "repro"
)

func main() {
	// 1. The rule generator (e.g. "McAfee" in the paper's Example #1)
	//    authors and signs the ruleset. Endpoints install its tag key;
	//    the middlebox receives the signed rules.
	rg, err := blindbox.NewRuleGenerator("QuickstartRG")
	if err != nil {
		log.Fatal(err)
	}
	ruleset, err := blindbox.ParseRules("quickstart", `
alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"botnet beacon"; content:"beacon-7f3a9"; sid:1001;)
`)
	if err != nil {
		log.Fatal(err)
	}
	signed := rg.Sign(ruleset)

	// 2. The middlebox interposes between client and server.
	alerts := make(chan blindbox.Alert, 16)
	mb, err := blindbox.NewMiddlebox(blindbox.MiddleboxConfig{
		Ruleset:     signed,
		RGPublicKey: rg.PublicKey(),
		OnAlert:     func(a blindbox.Alert) { alerts <- a },
	})
	if err != nil {
		log.Fatal(err)
	}

	serverLn := mustListen()
	mbLn := mustListen()
	go serveEcho(serverLn, rg)
	go mb.Serve(mbLn, serverLn.Addr().String())

	// 3. The client dials through the middlebox.
	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for _, payload := range []string{
		"GET /weather?city=london HTTP/1.1\r\nHost: api.example\r\n\r\n",
		"POST /c2 HTTP/1.1\r\nHost: api.example\r\n\r\nid=beacon-7f3a9&cmd=sleep",
	} {
		conn, err := blindbox.Dial(mbLn.Addr().String(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client: middlebox on path: %v\n", conn.MBPresent())
		if _, err := conn.Write([]byte(payload)); err != nil {
			log.Fatal(err)
		}
		_ = conn.CloseWrite()
		echoed, err := io.ReadAll(conn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client: server echoed %d bytes\n", len(echoed))
		_ = conn.Close()
	}

	// 4. Drain alerts: exactly the attack connection should have fired.
	close(alerts)
	n := 0
	for a := range alerts {
		if a.Event.Kind == blindbox.RuleMatch {
			n++
			fmt.Printf("middlebox alert: conn %d %s rule %d (%s) at offset %d\n",
				a.ConnID, a.Direction, a.Event.Rule.SID, a.Event.Rule.Msg, a.Event.Offset)
		}
	}
	fmt.Printf("total rule alerts: %d (expected >= 1, only for the beacon request)\n", n)
	fmt.Printf("middlebox stats: %+v\n", mb.Stats())
}

func mustListen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ln
}

// serveEcho accepts BlindBox HTTPS connections and echoes each request.
func serveEcho(ln net.Listener, rg *blindbox.RuleGenerator) {
	cfg := blindbox.ConnConfig{
		Core: blindbox.DefaultConfig(),
		RG:   blindbox.RGMaterial{TagKey: rg.TagKey()},
	}
	for {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn, err := blindbox.Server(raw, cfg)
			if err != nil {
				_ = raw.Close()
				return
			}
			defer conn.Close()
			data, err := io.ReadAll(conn)
			if err != nil {
				return
			}
			_, _ = conn.Write(data)
			_ = conn.CloseWrite()
		}()
	}
}
