#!/usr/bin/env bash
# bench.sh — pipeline benchmarks + the tokens/sec regression gate.
#
#   scripts/bench.sh          # run benchmarks, write BENCH_pipeline.json
#                             # (+ the GOMAXPROCS scaling matrix, rendered
#                             # to BENCH_pipeline_matrix.md), gate against
#                             # scripts/bench_baseline.json
#   scripts/bench.sh ci       # same on the reduced corpus (CI job),
#                             # matrix trimmed to 1,4
#   scripts/bench.sh update   # refresh the checked-in baseline
#
# The gate fails when tokens/sec regresses more than 15% below the baseline
# (override with BENCH_TOLERANCE, e.g. BENCH_TOLERANCE=0.25). Cross-run
# comparison only applies when the baseline was recorded on a host with the
# same core count; host-independent same-run invariants always apply.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
OUT="BENCH_pipeline.json"
BASELINE="scripts/bench_baseline.json"

case "$MODE" in
    check|update|ci) ;;
    *) echo "usage: $0 [check|update|ci]" >&2; exit 2 ;;
esac

FAST=""
if [ "$MODE" = ci ]; then
    FAST="-fast"
fi

printf '\n=== micro-benchmarks (-benchmem) ===\n'
go test -run '^$' \
    -bench 'DetectBlindBox3KRules$|DetectBlindBox3KRulesParallel|ScanBatch3KRules|EncryptTokensBatch|EncryptTokenBlindBox$' \
    -benchmem -benchtime "${BENCH_TIME:-0.3s}" .

printf '\n=== pipeline stage timings ===\n'
# The GOMAXPROCS scaling matrix defaults to 1,2,4,8 (clipped by what the
# benchgate enforces per row: strict speedup floors only where the host
# has the cores, noise floors elsewhere). Override with BENCH_MATRIX.
MATRIX="${BENCH_MATRIX:-1,2,4,8}"
if [ "$MODE" = ci ]; then
    MATRIX="${BENCH_MATRIX:-1,4}"
fi
go run ./cmd/blindbench -experiment pipeline $FAST -parallel "${BENCH_WORKERS:-0}" \
    -matrix "$MATRIX" -matrix-md "${OUT%.json}_matrix.md" -out "$OUT"

if [ "$MODE" = update ]; then
    cp "$OUT" "$BASELINE"
    echo "baseline updated: $BASELINE"
    exit 0
fi

printf '\n=== regression gate ===\n'
go run ./scripts/benchgate -current "$OUT" -baseline "$BASELINE"
