#!/usr/bin/env bash
# ci.sh — the full BlindBox verification gate, runnable locally or in CI.
#
#   scripts/ci.sh            # everything: vet, build, bblint, tests, race, fuzz smoke
#   scripts/ci.sh quick      # vet + build + bblint + unit tests only
#
# Every stage uses only the Go toolchain; the module has no dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n=== %s ===\n' "$*"; }

step "go vet"
go vet ./...

step "go build"
go build ./...

# bblint writes its machine-readable report unconditionally (CI uploads it
# as an artifact); on findings the JSON run exits 1, the guard prints the
# human-readable diagnostics plus the per-rule summary, and the gate fails.
step "bblint (static analysis)"
if ! go run ./cmd/bblint -json ./... > bblint-report.json; then
    echo "bblint findings (report: bblint-report.json):"
    go run ./cmd/bblint ./... || true
    exit 1
fi

step "go test"
go test ./...

if [ "$MODE" = "quick" ]; then
    echo "quick gate passed."
    exit 0
fi

# Three-party tracing over loopback: run a traced client/middlebox/server
# session (setupbreakdown fails if the §3.3 sub-spans cover < 90% of the
# preparation window), then strict-assemble the three span files — orphan
# spans, a rootless trace, or critical path > wall-clock fail the gate.
# Note: bbtrace flags must precede the positional file arguments.
step "three-party tracing (setupbreakdown + strict assemble)"
TRACEDIR="$(mktemp -d)"
FLEETDIR=""
FLEET_PIDS=()
cleanup() {
    if [ "${#FLEET_PIDS[@]}" -gt 0 ]; then
        kill "${FLEET_PIDS[@]}" 2>/dev/null || true
    fi
    rm -rf "$TRACEDIR" ${FLEETDIR:+"$FLEETDIR"}
}
trap cleanup EXIT
go run ./cmd/blindbench -experiment setupbreakdown -fast \
    -setup-out "$TRACEDIR/BENCH_setup_breakdown.json" -trace-dir "$TRACEDIR"
go run ./cmd/bbtrace -assemble -strict \
    "$TRACEDIR/client.jsonl" "$TRACEDIR/mb.jsonl" "$TRACEDIR/server.jsonl"

step "go test -race"
go test -race ./...

# Chaos suite under the race detector: every injected fault (stall, reset,
# corruption, truncation) must end in a clean typed outcome, never a hang —
# the -timeout is the wall-clock backstop that turns a hang into a failure.
step "chaos suite (-race)"
go test -race -run 'TestChaos' -timeout 5m .

# Adversarial scenarios: the evasion suite runs as live loopback sessions
# under the race detector (an undeclared miss, an undocumented miss class,
# or a false alert fails the test), then the scenarios experiment
# regenerates BENCH_scenarios.json and benchgate enforces the conformance
# contract against it (and against DESIGN.md's miss-class enumeration).
step "adversarial scenarios (evasion e2e -race + benchgate -scenarios)"
go test -race -run 'TestEvasionE2E' -timeout 10m .
go run ./cmd/blindbench -experiment scenarios -scenarios-out BENCH_scenarios.json
go run ./scripts/benchgate -scenarios BENCH_scenarios.json -design DESIGN.md

# Observability overhead: the flight recorder's cost contract (DESIGN.md
# §8). The experiment times the batched detection path with tracing off,
# recorded-but-unsampled, and head-sampled; benchgate enforces the budget —
# unsampled flows keep >= 95% of the tracing-off rate and the record path
# allocates nothing per span at steady state. BENCH_obs.json is uploaded as
# a workflow artifact.
step "observability overhead (obsoverhead + benchgate -obs)"
go run ./cmd/blindbench -experiment obsoverhead -fast -obs-out BENCH_obs.json
go run ./scripts/benchgate -obs BENCH_obs.json

# Fleet observability plane over two layers. First the in-process e2e
# under the race detector: three live workers, /cluster/metrics rollups
# equal to the sum of per-worker Middlebox.Stats() to the digit, one
# acyclic cross-worker trace, and a chaos-injected degradation flipping
# the SLO verdict. Then the real binaries: one bbserver, three bbmb
# workers with admin endpoints, bbclient traffic through each, and
# `bbfleet -check -json` must exit 0 with all three workers up and the
# fleet tokens_scanned_total equal to the sum of the per-worker totals.
step "fleet observability (fleet e2e -race + bbfleet -check over live workers)"
go test -race -run 'TestFleetObservabilityPlane' -timeout 5m .

FLEETDIR="$(mktemp -d)"
go build -o "$FLEETDIR" ./cmd/bbrulegen ./cmd/bbserver ./cmd/bbmb ./cmd/bbclient ./cmd/bbfleet
"$FLEETDIR/bbrulegen" -dataset "Snort Emerging Threats (HTTP)" -n 20 -out "$FLEETDIR/fleet"
"$FLEETDIR/bbserver" -listen 127.0.0.1:19600 -rgconfig "$FLEETDIR/fleet.endpoint.json" \
    > "$FLEETDIR/server.log" 2>&1 &
FLEET_PIDS+=($!)
for i in 1 2 3; do
    "$FLEETDIR/bbmb" -listen "127.0.0.1:1960$i" -forward 127.0.0.1:19600 \
        -rules "$FLEETDIR/fleet.rules.json" -rgconfig "$FLEETDIR/fleet.rg.json" \
        -admin "127.0.0.1:1961$i" -worker "w$i" > "$FLEETDIR/w$i.log" 2>&1 &
    FLEET_PIDS+=($!)
done
# bbclient -retries rides out worker start-up; one session per worker so
# every admin endpoint carries nonzero totals before the check.
for i in 1 2 3; do
    "$FLEETDIR/bbclient" -addr "127.0.0.1:1960$i" -rgconfig "$FLEETDIR/fleet.endpoint.json" \
        -retries 5 > /dev/null
done
"$FLEETDIR/bbfleet" -check -json -retries 5 \
    -workers w1=127.0.0.1:19611,w2=127.0.0.1:19612,w3=127.0.0.1:19613 \
    > "$FLEETDIR/fleet-report.json"
grep -q '"ok": true' "$FLEETDIR/fleet-report.json"
[ "$(grep -c '"state": "up"' "$FLEETDIR/fleet-report.json")" -eq 3 ]
# The report lists per-worker totals then the fleet rollup (last): the
# rollup must equal the sum — the same exactness contract the e2e pins
# against /cluster/metrics.
awk -F': ' '/"tokens_scanned_total"/ { gsub(/,/, "", $2); v[n++] = $2 }
    END {
        if (n < 4) { printf "fleet check: %d tokens_scanned_total rows, want 4\n", n; exit 1 }
        sum = 0; for (i = 0; i < n - 1; i++) sum += v[i]
        if (sum == 0 || sum != v[n-1]) {
            printf "fleet tokens_scanned_total %s != worker sum %d\n", v[n-1], sum; exit 1
        }
        printf "fleet tokens_scanned_total %d == sum of %d workers\n", v[n-1], n-1
    }' "$FLEETDIR/fleet-report.json"

# Fuzz smoke: each corpus gets a short budget. `go test -fuzz` accepts a
# single fuzz target per invocation, so loop over every target explicitly.
step "fuzz smoke (${FUZZTIME} per target)"
while read -r pkg target; do
    echo "--- ${pkg} ${target}"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
done <<'EOF'
./internal/tokenize FuzzStreamingEquivalence
./internal/tokenize FuzzSplitKeywordConsistency
./internal/tokenize FuzzEvasionTokenizeDetect
./internal/rules FuzzParseRule
./internal/rules FuzzParse
./internal/garble FuzzUnmarshal
./internal/transport FuzzUnmarshalHello
./internal/transport FuzzUnmarshalTokens
./internal/transport FuzzUnmarshalByteSlices
./internal/transport FuzzReadRecord
./internal/dpienc FuzzEncryptRecoverRoundTrip
./internal/dpienc FuzzCounterResetSync
./internal/detect FuzzIndexConsistency
./internal/obs FuzzSamplerDecision
EOF

echo
echo "full gate passed."
