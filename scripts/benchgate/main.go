// Command benchgate guards against performance regressions in the
// batched/parallel pipeline. It reads a freshly generated BENCH_pipeline.json
// and fails when tokens/sec fell more than the tolerance below the
// checked-in baseline (scripts/bench_baseline.json).
//
// Two layers of checks:
//
//  1. Same-run invariants, valid on any host: the batched detection path
//     and the parallel encryption path must not be slower than their
//     per-token/sequential forms beyond a looser allowance (they measure
//     the same work in the same process, so only scheduling noise
//     separates them).
//  2. Cross-run comparison against the baseline, applied only when the
//     baseline was recorded on a matching host (same core count) —
//     absolute tokens/sec on different hardware is not comparable.
//  3. Per-core-count floors over the GOMAXPROCS scaling matrix: rows the
//     host can genuinely parallelize must keep encrypt_speedup >= 1.0 and
//     detect_par_speedup >= 1.0 (>= 1.2 from four procs up) — the
//     self-tuning fan-out promises parallel is never slower than
//     sequential. Matrix rows also diff against baseline rows with the
//     same GOMAXPROCS value.
//
// BENCH_TOLERANCE overrides the default 0.15 (15%) cross-run tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// allocCeiling is the host-independent allocs/token ceiling for the
// steady-state hot paths: effectively zero, with headroom for O(1)
// bookkeeping per multi-million-token pass.
const allocCeiling = 0.01

// allocSlack is the absolute slack added to the cross-run allocation
// comparison (a zero baseline would otherwise forbid any allocation ever).
const allocSlack = 0.005

func main() {
	current := flag.String("current", "BENCH_pipeline.json", "freshly generated pipeline result")
	baseline := flag.String("baseline", "scripts/bench_baseline.json", "checked-in baseline result")
	scenarios := flag.String("scenarios", "", "gate a BENCH_scenarios.json instead of the pipeline result")
	obsPath := flag.String("obs", "", "gate a BENCH_obs.json (flight-recorder overhead) instead of the pipeline result")
	design := flag.String("design", "DESIGN.md", "design doc that must enumerate every documented miss class")
	flag.Parse()

	if *scenarios != "" {
		gateScenarios(*scenarios, *design)
		return
	}
	if *obsPath != "" {
		gateObs(*obsPath)
		return
	}

	tol := 0.15
	if v := os.Getenv("BENCH_TOLERANCE"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil || parsed < 0 || parsed >= 1 {
			fmt.Fprintf(os.Stderr, "benchgate: bad BENCH_TOLERANCE %q\n", v)
			os.Exit(2)
		}
		tol = parsed
	}

	cur, err := experiments.ReadPipelineJSON(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	failed := false
	check := func(name string, got, min float64) {
		if got < min {
			failed = true
			fmt.Printf("FAIL %-44s %.3g < %.3g\n", name, got, min)
		} else {
			fmt.Printf("ok   %-44s %.3g >= %.3g\n", name, got, min)
		}
	}
	checkMax := func(name string, got, max float64) {
		if got > max {
			failed = true
			fmt.Printf("FAIL %-44s %.3g > %.3g\n", name, got, max)
		} else {
			fmt.Printf("ok   %-44s %.3g <= %.3g\n", name, got, max)
		}
	}

	// Same-run invariants. The allowance is looser than the cross-run
	// tolerance: these compare two timings taken seconds apart, so pure
	// scheduler noise is the dominant error.
	sameRun := tol + 0.10
	check("detect batch/per-token speedup", cur.DetectBatchSpeedup, 1-sameRun)
	check("encrypt parallel/sequential speedup", cur.EncryptSpeedup, 1-sameRun)
	// Metrics must be noise: the instrumented batched path may not fall
	// below the uninstrumented one beyond scheduler jitter. Skipped for
	// results recorded before the instrumented stage existed (value 0).
	if cur.DetectObsSpeedup > 0 {
		check("detect instrumented/batch speedup", cur.DetectObsSpeedup, 1-sameRun)
	}
	// Tracing must be noise too: one span per batch into an enabled JSONL
	// sink may not drag the batched path down beyond scheduler jitter.
	// Skipped for results recorded before the traced stage existed.
	if cur.DetectTraceSpeedup > 0 {
		check("detect traced/batch speedup", cur.DetectTraceSpeedup, 1-sameRun)
	}
	// Allocation ceilings, valid on any host: the steady-state batch
	// encrypt and batched detect hot paths are written to allocate nothing
	// per token (//bb:hotpath enforces the constructs statically; this
	// catches what escapes the lint, e.g. map growth). The ceiling leaves
	// room for O(1)-per-pass bookkeeping amortized over millions of tokens.
	if cur.AllocsMeasured {
		checkMax("encrypt steady-state allocs/token", cur.EncryptAllocsPerToken, allocCeiling)
		checkMax("detect steady-state allocs/token", cur.DetectAllocsPerToken, allocCeiling)
	}
	// Per-core-count speedup floors over the scaling matrix: "parallel is
	// never slower than sequential" is a hard promise of the self-tuning
	// fan-out, so rows the host can genuinely parallelize (enough cores,
	// more than one proc) must clear strict floors, and detection must
	// actually scale once four procs are available. Oversubscribed or
	// single-proc rows tune to the sequential fallback, where tuned and
	// sequential run the same code and only scheduler noise separates them.
	for _, row := range cur.Matrix {
		name := func(metric string) string {
			return fmt.Sprintf("matrix gmp=%d %s", row.GoMaxProcs, metric)
		}
		// Single-proc and oversubscribed rows tune to the sequential
		// fallback: tuned and sequential run the same code, the parallel
		// detect number additionally pays the cache pressure of draining
		// many engines on one core, and GOMAXPROCS above the core count
		// adds scheduler jitter on top. Only a catastrophe floor is
		// meaningful there.
		encFloor, detFloor := 0.5, 0.5
		if row.Cores >= row.GoMaxProcs && row.GoMaxProcs > 1 {
			encFloor, detFloor = 1.0, 1.0
			if row.GoMaxProcs >= 4 {
				detFloor = 1.2
			}
		}
		check(name("encrypt tuned/seq speedup"), row.EncryptSpeedup, encFloor)
		check(name("detect par/seq speedup"), row.DetectParSpeedup, detFloor)
		checkMax(name("encrypt allocs/token"), row.EncryptAllocsPerToken, allocCeiling)
		checkMax(name("detect allocs/token"), row.DetectAllocsPerToken, allocCeiling)
	}

	base, err := experiments.ReadPipelineJSON(*baseline)
	switch {
	case err != nil:
		fmt.Printf("benchgate: no usable baseline (%v); cross-run comparison skipped\n", err)
	case base.Cores != cur.Cores || base.GoMaxProcs != cur.GoMaxProcs:
		fmt.Printf("benchgate: baseline host (%d cores, GOMAXPROCS %d) != this host (%d, %d); cross-run comparison skipped\n",
			base.Cores, base.GoMaxProcs, cur.Cores, cur.GoMaxProcs)
	case base.Rules != cur.Rules || base.TrafficBytes != cur.TrafficBytes || base.Mode != cur.Mode:
		fmt.Printf("benchgate: baseline corpus (%d rules, %d bytes, %s) != current (%d, %d, %s); cross-run comparison skipped\n",
			base.Rules, base.TrafficBytes, base.Mode, cur.Rules, cur.TrafficBytes, cur.Mode)
	default:
		floor := 1 - tol
		check("detect per-token tokens/sec vs baseline", cur.DetectSeqTokensPerSec, floor*base.DetectSeqTokensPerSec)
		check("detect batch tokens/sec vs baseline", cur.DetectBatchTokensPerSec, floor*base.DetectBatchTokensPerSec)
		check("detect parallel tokens/sec vs baseline", cur.DetectParTokensPerSec, floor*base.DetectParTokensPerSec)
		check("encrypt sequential tokens/sec vs baseline", cur.EncryptSeqTokensPerSec, floor*base.EncryptSeqTokensPerSec)
		check("encrypt parallel tokens/sec vs baseline", cur.EncryptParTokensPerSec, floor*base.EncryptParTokensPerSec)
		// Allocation regression: only when both sides carry the audit.
		if base.AllocsMeasured && cur.AllocsMeasured {
			checkMax("encrypt allocs/token vs baseline", cur.EncryptAllocsPerToken, base.EncryptAllocsPerToken*(1+tol)+allocSlack)
			checkMax("detect allocs/token vs baseline", cur.DetectAllocsPerToken, base.DetectAllocsPerToken*(1+tol)+allocSlack)
		}
		// Matrix rows diff against the baseline row with the same
		// GOMAXPROCS value (the host already matched above); rows present
		// on only one side are skipped rather than failed, so widening or
		// narrowing the matrix does not spuriously trip the gate.
		baseRows := make(map[int]experiments.MatrixRow, len(base.Matrix))
		for _, r := range base.Matrix {
			baseRows[r.GoMaxProcs] = r
		}
		for _, r := range cur.Matrix {
			b, ok := baseRows[r.GoMaxProcs]
			if !ok {
				fmt.Printf("benchgate: baseline has no matrix row for GOMAXPROCS %d; row skipped\n", r.GoMaxProcs)
				continue
			}
			name := func(metric string) string {
				return fmt.Sprintf("matrix gmp=%d %s vs baseline", r.GoMaxProcs, metric)
			}
			check(name("encrypt tuned tokens/sec"), r.EncryptTunedTokensPerSec, floor*b.EncryptTunedTokensPerSec)
			check(name("detect par tokens/sec"), r.DetectParTokensPerSec, floor*b.DetectParTokensPerSec)
			checkMax(name("encrypt allocs/token"), r.EncryptAllocsPerToken, b.EncryptAllocsPerToken*(1+tol)+allocSlack)
			checkMax(name("detect allocs/token"), r.DetectAllocsPerToken, b.DetectAllocsPerToken*(1+tol)+allocSlack)
		}
	}

	if failed {
		fmt.Println("benchgate: REGRESSION (rerun on an idle machine, or refresh the baseline with scripts/bench.sh update)")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// obsOverheadFloor is the tracing budget from DESIGN.md §8: a
// traced-but-unsampled flow (what 99% of flows are at 1% sampling) must
// keep at least 95% of the tracing-off token rate.
const obsOverheadFloor = 0.95

// gateObs enforces the flight-recorder cost contract on a BENCH_obs.json:
// the unsampled pass within the overhead budget, the scraped-at-10Hz pass
// keeping >= 95% of the unscraped rate (skipped for results predating the
// fleet plane), zero steady-state allocations on the record path, and
// proof that both dispositions were actually exercised (the head pass
// flushed, the unsampled pass dropped).
func gateObs(path string) {
	res, err := experiments.ReadObsOverheadJSON(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	failed := false
	check := func(name string, ok bool, detail string) {
		if ok {
			fmt.Printf("ok   %-44s %s\n", name, detail)
		} else {
			failed = true
			fmt.Printf("FAIL %-44s %s\n", name, detail)
		}
	}
	check("unsampled/off overhead ratio", res.UnsampledOverheadRatio >= obsOverheadFloor,
		fmt.Sprintf("%.3f (floor %.2f)", res.UnsampledOverheadRatio, obsOverheadFloor))
	// A worker being scraped at 10 Hz must keep >= 95% of its unscraped
	// rate, and the scraper must actually have polled during the pass.
	// Results recorded before the fleet plane carry no scraped pass (zero
	// fields) and skip the check rather than fail it.
	if res.ScrapedNs > 0 {
		check("scraped/unsampled overhead ratio", res.ScrapedOverheadRatio >= obsOverheadFloor && res.Scrapes > 0,
			fmt.Sprintf("%.3f (floor %.2f, %d scrapes)", res.ScrapedOverheadRatio, obsOverheadFloor, res.Scrapes))
	} else {
		fmt.Println("benchgate: result has no scraped pass (pre-fleet JSON); scrape check skipped")
	}
	check("record path allocs/span", res.AllocsMeasured && res.RecordAllocsPerSpan <= allocCeiling,
		fmt.Sprintf("%.4f (ceiling %.2g)", res.RecordAllocsPerSpan, allocCeiling))
	check("head pass streamed spans", res.FlowsHead > 0 && res.SpansFlushed > 0,
		fmt.Sprintf("%d flows, %d spans", res.FlowsHead, res.SpansFlushed))
	check("unsampled pass dropped rings", res.FlowsDrop > 0 && res.SpansDropped > 0,
		fmt.Sprintf("%d flows, %d spans", res.FlowsDrop, res.SpansDropped))
	if failed {
		fmt.Println("benchgate: OBSERVABILITY OVERHEAD FAILURE (rerun on an idle machine before concluding a regression)")
		os.Exit(1)
	}
	fmt.Println("benchgate: obs ok")
}

// gateScenarios enforces the adversarial-conformance contract on a
// BENCH_scenarios.json: at least the evasion and bittorrent packs with at
// least six named transforms, every MustDetect case caught, zero
// undeclared misses, zero false alerts, every case conforming, and every
// exercised miss class enumerated in the design doc — a miss may never
// pass silently.
func gateScenarios(path, designPath string) {
	res, err := experiments.ReadScenariosJSON(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL "+format+"\n", args...)
	}

	if len(res.Packs) < 2 {
		fail("scenario packs: %d < 2", len(res.Packs))
	}
	if len(res.Transforms) < 6 {
		fail("named evasion transforms: %d < 6 (%v)", len(res.Transforms), res.Transforms)
	}
	for _, p := range res.Packs {
		if p.UndeclaredMisses != 0 {
			fail("%s: %d undeclared miss(es)", p.Pack, p.UndeclaredMisses)
		}
		if p.FalseAlerts != 0 {
			fail("%s: %d false alert(s)", p.Pack, p.FalseAlerts)
		}
		if p.Detected != p.MustDetect {
			fail("%s: detection %d/%d — a MustDetect case regressed", p.Pack, p.Detected, p.MustDetect)
		}
		fmt.Printf("ok   %-16s detection %d/%d, false alerts %d/%d, documented misses %d\n",
			p.Pack, p.Detected, p.MustDetect, p.FalseAlerts, p.Benign, p.DocumentedMisses)
	}
	for _, c := range res.Cases {
		if !c.OK {
			fail("%s/%s [%s]: %s", c.Pack, c.Label, c.Outcome, c.Reason)
		}
	}

	designBlob, err := os.ReadFile(designPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	for _, mc := range res.MissClasses {
		if !strings.Contains(string(designBlob), mc) {
			fail("documented miss class %q is not enumerated in %s", mc, designPath)
		} else {
			fmt.Printf("ok   miss class %-28s enumerated in %s\n", mc, designPath)
		}
	}

	if failed {
		fmt.Println("benchgate: ADVERSARIAL CONFORMANCE FAILURE")
		os.Exit(1)
	}
	fmt.Println("benchgate: scenarios ok")
}
