package transport

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/dpienc"
	"repro/internal/tokenize"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello record")
	if err := WriteRecord(&buf, RecData, body); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != RecData || !bytes.Equal(got, body) {
		t.Fatalf("round trip: %d %q", typ, got)
	}
}

func TestRecordRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	hdr := []byte{byte(RecData), 0xFF, 0xFF, 0xFF, 0xFF}
	buf.Write(hdr)
	if _, _, err := ReadRecord(&buf); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := WriteRecord(io.Discard, RecData, make([]byte, MaxRecordLen+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestHelloRoundTripAndMBFlag(t *testing.T) {
	h := Hello{
		PublicKey: bytes.Repeat([]byte{7}, 32),
		Protocol:  dpienc.ProtocolIII,
		Mode:      byte(tokenize.Delimiter),
		Salt0:     12345,
	}
	enc := MarshalHello(h)
	got, err := UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PublicKey, h.PublicKey) || got.Protocol != h.Protocol ||
		got.Mode != h.Mode || got.Salt0 != h.Salt0 || got.MBPresent {
		t.Fatalf("hello round trip: %+v", got)
	}
	if err := SetMBPresent(enc); err != nil {
		t.Fatal(err)
	}
	got, err = UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MBPresent {
		t.Fatal("MBPresent not set")
	}
}

func TestHelloTraceExtension(t *testing.T) {
	h := Hello{
		PublicKey: bytes.Repeat([]byte{9}, 32),
		Protocol:  dpienc.ProtocolI,
		Salt0:     42,
		HasTrace:  true,
		TraceID:   [16]byte{0xAA, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0xBB},
		TraceSpan: 0xDEADBEEF,
	}
	enc := MarshalHello(h)
	got, err := UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTrace || got.TraceID != h.TraceID || got.TraceSpan != h.TraceSpan {
		t.Fatalf("trace extension round trip: %+v", got)
	}
	// The middlebox flips MBPresent in place; the extension must survive.
	if err := SetMBPresent(enc); err != nil {
		t.Fatal(err)
	}
	got, err = UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MBPresent || !got.HasTrace || got.TraceID != h.TraceID || got.TraceSpan != h.TraceSpan {
		t.Fatalf("extension lost across SetMBPresent: %+v", got)
	}
}

func TestAppendHelloTrace(t *testing.T) {
	plain := MarshalHello(Hello{PublicKey: bytes.Repeat([]byte{7}, 32), Salt0: 5})
	id := [16]byte{1, 2, 3}
	withTrace, err := AppendHelloTrace(plain, id, 77)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalHello(withTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTrace || got.TraceID != id || got.TraceSpan != 77 || got.Salt0 != 5 {
		t.Fatalf("injected hello: %+v", got)
	}
	// Appending to a hello that already carries context is a no-op.
	again, err := AppendHelloTrace(withTrace, [16]byte{9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, withTrace) {
		t.Fatal("AppendHelloTrace rewrote an existing extension")
	}
	// A hello with unknown trailing bytes is left alone.
	weird := append(append([]byte(nil), plain...), 0x7F, 0x7F)
	out, err := AppendHelloTrace(weird, id, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, weird) {
		t.Fatal("AppendHelloTrace touched an unknown extension")
	}
}

func TestHelloSampledExtension(t *testing.T) {
	h := Hello{
		PublicKey: bytes.Repeat([]byte{9}, 32),
		Salt0:     42,
		HasTrace:  true,
		TraceID:   [16]byte{0xAA, 15: 0xBB},
		TraceSpan: 7,
		HasSample: true,
		Sampled:   true,
	}
	enc := MarshalHello(h)
	got, err := UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasSample || !got.Sampled {
		t.Fatalf("sampling extension round trip: %+v", got)
	}
	h.Sampled = false
	got, err = UnmarshalHello(MarshalHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasSample || got.Sampled {
		t.Fatalf("negative decision round trip: %+v", got)
	}
	// The decision only rides along with a trace extension.
	got, err = UnmarshalHello(MarshalHello(Hello{PublicKey: h.PublicKey, HasSample: true, Sampled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if got.HasSample {
		t.Fatalf("sampling extension without trace context: %+v", got)
	}
	// MBPresent flips in place without disturbing either extension.
	if err := SetMBPresent(enc); err != nil {
		t.Fatal(err)
	}
	got, err = UnmarshalHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MBPresent || !got.HasTrace || !got.HasSample || !got.Sampled {
		t.Fatalf("extensions lost across SetMBPresent: %+v", got)
	}
}

func TestAppendHelloSampled(t *testing.T) {
	plain := MarshalHello(Hello{PublicKey: bytes.Repeat([]byte{7}, 32), Salt0: 5})
	// Without a trace extension there is nowhere to hang the decision.
	out, err := AppendHelloSampled(plain, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, plain) {
		t.Fatal("AppendHelloSampled modified an untraced hello")
	}
	traced, err := AppendHelloTrace(plain, [16]byte{1, 2, 3}, 77)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := AppendHelloSampled(traced, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalHello(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTrace || got.TraceSpan != 77 || !got.HasSample || !got.Sampled {
		t.Fatalf("appended decision: %+v", got)
	}
	// A present decision is never rewritten — first writer wins, so every
	// party downstream of the decider sees the same verdict.
	again, err := AppendHelloSampled(sampled, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, sampled) {
		t.Fatal("AppendHelloSampled rewrote an existing decision")
	}
	// Unknown trailing bytes are left alone, like AppendHelloTrace.
	weird := append(append([]byte(nil), traced...), 0x7F, 0x7F)
	out, err = AppendHelloSampled(weird, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, weird) {
		t.Fatal("AppendHelloSampled touched an unknown extension")
	}
}

func TestHelloRejectsShort(t *testing.T) {
	for _, data := range [][]byte{nil, {32}, {4, 1, 2}} {
		if _, err := UnmarshalHello(data); err == nil {
			t.Fatalf("short hello %v accepted", data)
		}
	}
}

func TestTokensRoundTrip(t *testing.T) {
	toks := []dpienc.EncryptedToken{
		{C1: dpienc.Ciphertext{1, 2, 3, 4, 5}, Offset: 10},
		{C1: dpienc.Ciphertext{9, 8, 7, 6, 5}, Offset: 999999},
	}
	for _, protoIII := range []bool{false, true} {
		if protoIII {
			toks[0].C2[3] = 0xAB
		}
		enc := MarshalTokens(toks, protoIII)
		got, err := UnmarshalTokens(enc, protoIII)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != toks[0] || got[1] != toks[1] {
			t.Fatalf("protoIII=%v round trip mismatch", protoIII)
		}
		if _, err := UnmarshalTokens(enc[:len(enc)-1], protoIII); err == nil {
			t.Fatal("truncated tokens accepted")
		}
	}
}

func TestByteSlicesRoundTrip(t *testing.T) {
	in := [][]byte{[]byte("a"), {}, []byte("longer slice here")}
	enc := MarshalByteSlices(in)
	got, err := UnmarshalByteSlices(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], in[0]) || len(got[1]) != 0 || !bytes.Equal(got[2], in[2]) {
		t.Fatalf("round trip: %q", got)
	}
	if _, err := UnmarshalByteSlices(enc[:5]); err == nil {
		t.Fatal("truncated slice list accepted")
	}
	if _, err := UnmarshalByteSlices(append(enc, 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// pair dials a loopback TCP pair and runs client/server handshakes
// concurrently (no middlebox).
func pair(t *testing.T, cfg ConnConfig) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		c   *Conn
		err error
	}
	ch := make(chan result, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			ch <- result{nil, err}
			return
		}
		c, err := Server(raw, cfg)
		ch <- result{c, err}
	}()
	client, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestDirectConnRoundTrip(t *testing.T) {
	for _, cfg := range []core.Config{
		{Protocol: dpienc.ProtocolII, Mode: tokenize.Delimiter},
		{Protocol: dpienc.ProtocolIII, Mode: tokenize.Window},
	} {
		client, server := pair(t, ConnConfig{Core: cfg})
		if client.MBPresent() || server.MBPresent() {
			t.Fatal("MBPresent set on a direct connection")
		}
		msg := []byte("GET /login.php?user=alice HTTP/1.1\r\nHost: example.com\r\n\r\n")
		done := make(chan error, 1)
		go func() {
			if _, err := client.Write(msg); err != nil {
				done <- err
				return
			}
			done <- client.CloseWrite()
		}()
		got, err := io.ReadAll(server)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("cfg %+v: got %q", cfg, got)
		}
	}
}

func TestConnSharedKeys(t *testing.T) {
	client, server := pair(t, ConnConfig{Core: core.DefaultConfig()})
	if client.SessionKeys() != server.SessionKeys() {
		t.Fatal("handshake did not agree on session keys")
	}
}

func TestBinaryWriteRoundTrip(t *testing.T) {
	client, server := pair(t, ConnConfig{Core: core.DefaultConfig()})
	text := []byte("header: text part\r\n\r\n")
	binaryData := bytes.Repeat([]byte{0xDE, 0xAD, 0x00, 0xFF}, 4096)
	done := make(chan error, 1)
	go func() {
		if _, err := client.Write(text); err != nil {
			done <- err
			return
		}
		if _, err := client.WriteBinary(binaryData); err != nil {
			done <- err
			return
		}
		done <- client.CloseWrite()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte{}, text...), binaryData...)) {
		t.Fatalf("got %d bytes, want %d", len(got), len(text)+len(binaryData))
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	client, server := pair(t, ConnConfig{Core: core.DefaultConfig()})
	req := []byte("request words flowing one way")
	resp := []byte("response words flowing back")
	errs := make(chan error, 2)
	go func() {
		if _, err := client.Write(req); err != nil {
			errs <- err
			return
		}
		if err := client.CloseWrite(); err != nil {
			errs <- err
			return
		}
		got, err := io.ReadAll(client)
		if err != nil {
			errs <- err
			return
		}
		if !bytes.Equal(got, resp) {
			errs <- io.ErrUnexpectedEOF
			return
		}
		errs <- nil
	}()
	go func() {
		got, err := io.ReadAll(server)
		if err != nil {
			errs <- err
			return
		}
		if !bytes.Equal(got, req) {
			errs <- io.ErrUnexpectedEOF
			return
		}
		if _, err := server.Write(resp); err != nil {
			errs <- err
			return
		}
		errs <- server.CloseWrite()
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargeTransferWithSaltResets(t *testing.T) {
	client, server := pair(t, ConnConfig{Core: core.DefaultConfig()})
	// Sending more than the default 1 MiB reset interval exercises the
	// counter-table reset and the validator's deterministic re-sync.
	payload := bytes.Repeat([]byte("words and more words across resets "), 40000) // ~1.4 MB
	done := make(chan error, 1)
	go func() {
		if _, err := client.Write(payload); err != nil {
			done <- err
			return
		}
		done <- client.CloseWrite()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("large transfer corrupted: %d vs %d bytes", len(got), len(payload))
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg := ConnConfig{Core: core.DefaultConfig()}
	serverErr := make(chan error, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		s, err := Server(raw, cfg)
		if err != nil {
			serverErr <- err
			return
		}
		_, err = io.ReadAll(s)
		serverErr <- err
	}()
	// A man-in-the-middle that flips data bytes must be caught by GCM.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tamper := &tamperConn{Conn: raw}
	client, err := Client(tamper, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tamper.arm = true
	client.Write([]byte("some words that will be flipped"))
	client.CloseWrite()
	if err := <-serverErr; err == nil {
		t.Fatal("tampered record not rejected")
	}
	client.Close()
}

// tamperConn flips a byte in the first large write after arming.
type tamperConn struct {
	net.Conn
	arm   bool
	fired bool
}

func (tc *tamperConn) Write(p []byte) (int, error) {
	if tc.arm && !tc.fired && len(p) > 20 {
		tc.fired = true
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0xFF
		return tc.Conn.Write(q)
	}
	return tc.Conn.Write(p)
}

func TestBlocksRoundTrip(t *testing.T) {
	in := []bbcrypto.Block{{1, 2}, {3}, {0xFF}}
	enc := MarshalBlocks(in)
	got, err := UnmarshalBlocks(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != in[0] || got[2] != in[2] {
		t.Fatalf("blocks round trip: %v", got)
	}
	if _, err := UnmarshalBlocks(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated blocks accepted")
	}
	if _, err := UnmarshalBlocks([]byte{1}); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestValidationDisabledAcceptsForgedTokens(t *testing.T) {
	// A receiver that opts out of §3.4 validation (lazy receiver model in
	// tests) must deliver data even when the token channel is wrong.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg := ConnConfig{Core: core.DefaultConfig()}
	got := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		s, err := Server(raw, cfg)
		if err != nil {
			errCh <- err
			return
		}
		s.SetValidationDisabled(true)
		data, err := io.ReadAll(s)
		if err != nil {
			errCh <- err
			return
		}
		got <- data
	}()
	client, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the token channel by writing a bogus token record directly.
	if err := WriteRecord(client.raw, RecTokens, MarshalTokens([]dpienc.EncryptedToken{{Offset: 1}}, false)); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("payload anyway"))
	client.CloseWrite()
	select {
	case data := <-got:
		if !bytes.Equal(data, []byte("payload anyway")) {
			t.Fatalf("got %q", data)
		}
	case err := <-errCh:
		t.Fatalf("lazy receiver rejected traffic: %v", err)
	}
	client.Close()
}
