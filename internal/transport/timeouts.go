// Deadlines and typed step errors for the endpoint transport — the
// endpoint half of the fault-tolerance layer (DESIGN.md §9). The paper's
// prototype assumes both peers and the middlebox stay live; here every
// blocking network step carries a deadline so one stalled peer cannot wedge
// a connection forever.

package transport

import (
	"errors"
	"net"
	"os"
	"time"
)

// NoTimeout disables one Timeouts knob explicitly. (The zero value of a
// knob selects its default instead, so "no deadline" needs a sentinel.)
const NoTimeout = time.Duration(-1)

// Timeouts bounds the blocking network steps of an endpoint connection.
// Each field covers one step class; zero selects the documented default
// and NoTimeout disables the deadline for that step. Timeouts is a plain
// value: normalize once at handshake time, never mutated afterwards, safe
// to share.
type Timeouts struct {
	// Handshake bounds the whole connection setup: the hello exchange
	// plus, when a middlebox interposed, the entire rule-preparation
	// protocol (§3.3, the longest setup step — garbling dominates).
	// Default 30 s.
	Handshake time.Duration
	// Read bounds each blocking record read after the handshake. Default
	// NoTimeout: receivers of long-lived connections legitimately idle
	// (the Mux keeps connections open across requests), so callers opt
	// into read deadlines per deployment.
	Read time.Duration
	// Write bounds each record write after the handshake. A write that
	// blocks this long means the peer stopped draining with full TCP
	// buffers. Default 1 m.
	Write time.Duration
}

// DefaultTimeouts returns the defaults a zero Timeouts resolves to.
func DefaultTimeouts() Timeouts {
	return Timeouts{Handshake: 30 * time.Second, Read: NoTimeout, Write: time.Minute}
}

// withDefaults resolves zero knobs to their defaults.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.Handshake == 0 {
		t.Handshake = d.Handshake
	}
	if t.Read == 0 {
		t.Read = d.Read
	}
	if t.Write == 0 {
		t.Write = d.Write
	}
	return t
}

// enabled converts a resolved knob into an applicable duration: positive
// values pass through, NoTimeout (and any negative) becomes zero.
func enabled(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d
}

// deadlineFor turns a resolved knob into an absolute deadline, or the
// zero time (= no deadline) when the knob is disabled.
func deadlineFor(d time.Duration) time.Time {
	if e := enabled(d); e > 0 {
		return time.Now().Add(e)
	}
	return time.Time{}
}

// StepError tags a transport failure with the protocol step it happened
// in ("handshake", "read", "write"). It wraps the underlying error, so
// errors.Is/As see through it — in particular IsTimeout recognizes wrapped
// deadline expiries.
type StepError struct {
	// Step names the blocking step that failed.
	Step string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *StepError) Error() string { return "transport: " + e.Step + ": " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StepError) Unwrap() error { return e.Err }

// IsTimeout reports whether err is (or wraps) a deadline expiry — the
// typed check the chaos suite and operators' error triage use to separate
// "peer too slow" from protocol violations.
func IsTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// stepErr wraps deadline expiries with their step name and passes every
// other error through untouched: io.EOF must stay bare for the Read
// contract, and protocol violations already carry descriptive messages.
func stepErr(step string, err error) error {
	if err == nil || !IsTimeout(err) {
		return err
	}
	return &StepError{Step: step, Err: err}
}
