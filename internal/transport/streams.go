// SPDY-like stream multiplexing over one BlindBox HTTPS connection.
//
// The paper concludes that BlindBox "is most fit for settings using long or
// persistent connections through SPDY-like protocols or tunneling" (§1,
// §10): connection setup costs minutes for large rulesets, so it must be
// amortized over many requests. Mux provides that setting: any number of
// logical bidirectional streams share a single Conn — one handshake, one
// rule preparation — while the middlebox continues to inspect every token.
//
// Framing is carried inside the encrypted data plane: each frame is a
// 9-byte header (stream id, flags, length) written as *binary* payload
// (creating a tokenizer segment break, so header bytes are never tokenized
// and never confuse detection) followed by the frame body written as text
// or binary payload. Keywords within one frame are always detectable;
// a keyword split across two frames is not (frames default to 16 KiB, so
// senders only split at large boundaries). This mirrors real BlindBox
// semantics: tokenization follows the byte stream the endpoint transmits.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// frame header: id(4) | flags(1) | length(4).
const frameHeaderLen = 9

// frame flags.
const (
	flagFIN    = 1 << 0 // sender half-closes the stream
	flagBinary = 1 << 1 // body is binary (untokenized) payload
)

// maxFrameBody bounds one frame's body.
const maxFrameBody = 16 << 10

// ErrMuxClosed is returned once the underlying connection is done.
var ErrMuxClosed = errors.New("transport: mux closed")

// Mux multiplexes logical streams over one BlindBox HTTPS connection.
type Mux struct {
	conn *Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	streams map[uint32]*Stream
	nextID  uint32
	pending []*Stream // peer-opened streams awaiting Accept
	readErr error
}

// NewMux wraps an established connection. The initiator (client) opens
// odd-numbered streams; the responder even-numbered, so both sides may
// Open without coordination.
func NewMux(conn *Conn, initiator bool) *Mux {
	m := &Mux{
		conn:    conn,
		streams: make(map[uint32]*Stream),
	}
	m.cond = sync.NewCond(&m.mu)
	if initiator {
		m.nextID = 1
	} else {
		m.nextID = 2
	}
	go m.readLoop()
	return m
}

// Open creates a new outgoing stream.
func (m *Mux) Open() (*Stream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.readErr != nil {
		return nil, m.readErr
	}
	id := m.nextID
	m.nextID += 2
	s := newStream(m, id)
	m.streams[id] = s
	return s, nil
}

// Accept returns the next stream opened by the peer.
func (m *Mux) Accept() (*Stream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) == 0 {
		if m.readErr != nil {
			err := m.readErr
			if err == io.EOF {
				err = ErrMuxClosed
			}
			return nil, err
		}
		m.cond.Wait()
	}
	s := m.pending[0]
	m.pending = m.pending[1:]
	return s, nil
}

// Close closes the underlying connection and all streams.
func (m *Mux) Close() error {
	err := m.conn.Close()
	m.fail(ErrMuxClosed)
	return err
}

// readLoop demultiplexes inbound frames to streams.
func (m *Mux) readLoop() {
	for {
		var hdr [frameHeaderLen]byte
		if _, err := io.ReadFull(m.conn, hdr[:]); err != nil {
			m.fail(err)
			return
		}
		id := binary.BigEndian.Uint32(hdr[0:4])
		flags := hdr[4]
		n := binary.BigEndian.Uint32(hdr[5:9])
		if n > maxFrameBody {
			m.fail(fmt.Errorf("transport: frame body %d exceeds cap", n))
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(m.conn, body); err != nil {
			m.fail(err)
			return
		}

		m.mu.Lock()
		s := m.streams[id]
		if s == nil {
			s = newStream(m, id)
			m.streams[id] = s
			m.pending = append(m.pending, s)
			m.cond.Broadcast()
		}
		m.mu.Unlock()
		s.push(body, flags&flagFIN != 0)
	}
}

// fail propagates a fatal error to all streams and Accept.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.readErr == nil {
		m.readErr = err
		m.cond.Broadcast()
	}
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.mu.Unlock()
	for _, s := range streams {
		s.fail(err)
	}
}

// writeFrame sends one frame; the header goes through the binary
// (untokenized) path and the body through text or binary per kind.
func (m *Mux) writeFrame(id uint32, flags byte, body []byte, binaryBody bool) error {
	if binaryBody {
		flags |= flagBinary
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], id)
	hdr[4] = flags
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(body)))
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if _, err := m.conn.WriteBinary(hdr[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	if binaryBody {
		_, err := m.conn.WriteBinary(body)
		return err
	}
	_, err := m.conn.Write(body)
	return err
}

// Stream is one logical bidirectional flow.
type Stream struct {
	mux *Mux
	id  uint32

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	remFIN bool
	err    error

	wroteFIN bool
}

func newStream(m *Mux, id uint32) *Stream {
	s := &Stream{mux: m, id: id}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ID returns the stream identifier.
func (s *Stream) ID() uint32 { return s.id }

func (s *Stream) push(data []byte, fin bool) {
	s.mu.Lock()
	s.buf = append(s.buf, data...)
	if fin {
		s.remFIN = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Read returns buffered stream data, blocking until data, FIN or error.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 {
		if s.remFIN {
			return 0, io.EOF
		}
		if s.err != nil {
			return 0, s.err
		}
		s.cond.Wait()
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// Write sends text (tokenized, inspectable) payload on the stream,
// splitting into frames.
func (s *Stream) Write(p []byte) (int, error) { return s.write(p, false) }

// WriteBinary sends untokenized payload on the stream.
func (s *Stream) WriteBinary(p []byte) (int, error) { return s.write(p, true) }

func (s *Stream) write(p []byte, binaryBody bool) (int, error) {
	if s.wroteFIN {
		return 0, errors.New("transport: write on closed stream")
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxFrameBody {
			n = maxFrameBody
		}
		if err := s.mux.writeFrame(s.id, 0, p[:n], binaryBody); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

// Close half-closes the stream (sends FIN); reads may continue.
func (s *Stream) Close() error {
	if s.wroteFIN {
		return nil
	}
	s.wroteFIN = true
	return s.mux.writeFrame(s.id, flagFIN, nil, false)
}

var _ io.ReadWriteCloser = (*Stream)(nil)
