// Endpoint connection logic of BlindBox HTTPS: the handshake (§2.3), the
// AES-GCM record layer, the token side-channel, receiver-side validation
// (§3.4), and the endpoint half of the rule-preparation exchange (§3.3).

package transport

import (
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/retry"
	"repro/internal/ruleprep"
	"repro/internal/tokenize"
)

// RGMaterial is the rule-generator configuration endpoints install before
// using BlindBox HTTPS (the paper's "BlindBox HTTPS configuration which
// includes RG's public key", §2.3). TagKey authorizes keyword fragments
// inside the garbled circuit.
type RGMaterial struct {
	TagKey bbcrypto.Block
}

// ConnConfig configures one endpoint connection.
type ConnConfig struct {
	// Core selects protocol, tokenization mode and initial salt.
	Core core.Config
	// RG is the installed rule-generator material.
	RG RGMaterial
	// EncryptWorkers fans the stateless AES step of outgoing token
	// encryption across this many goroutines. 0 (the default) self-tunes:
	// a cached calibration pass (internal/tuning) picks the worker count
	// and the batch size below which fan-out falls back to sequential, so
	// parallel is never slower than sequential. 1 forces everything onto
	// the writing goroutine; > 1 forces that worker count; negative means
	// GOMAXPROCS. The on-wire token stream is byte-identical in every
	// case — only the sender's CPU use changes.
	EncryptWorkers int
	// Timeouts bounds the connection's blocking network steps; the zero
	// value selects DefaultTimeouts (see Timeouts for the per-step
	// semantics and NoTimeout for disabling a step's deadline).
	Timeouts Timeouts
	// DialRetry bounds Dial's connect-plus-handshake retry loop; the
	// zero value retries up to retry.DefaultAttempts times with jittered
	// exponential backoff. Set Attempts to 1 to fail on the first error.
	// Only Dial consults it — Client and Server run on an established
	// transport and never retry.
	DialRetry retry.Policy
	// Metrics registers this endpoint's handshake/record metrics
	// (obs.Conn*) and enables stage timing on the sender pipeline
	// (obs.Sender*, obs.DPIEnc*). Nil disables instrumentation entirely.
	Metrics *obs.Registry
	// Trace receives this endpoint's spans (handshake, tokenize, encrypt).
	// Endpoints never see middlebox connection IDs, so spans carry a
	// transport-local flow sequence number instead.
	Trace obs.Sink
	// Recorder, when set, interposes a per-flow flight recorder between
	// the span producers and Trace: head-sampled flows stream, flows that
	// end in an interesting state flush their ring, the rest are dropped.
	// A tracing client puts its head-sampling decision on the hello so
	// middlebox and server keep the same flows. Nil preserves the legacy
	// stream-everything behavior of Trace.
	Recorder *obs.Recorder
}

// connSeq numbers instrumented endpoint connections process-wide, giving
// endpoint spans a stable flow ID.
var connSeq atomic.Uint64

// Conn is a BlindBox HTTPS connection endpoint. It implements
// io.ReadWriteCloser for text payloads; binary (untokenized) payloads go
// through WriteBinary.
type Conn struct {
	raw      net.Conn
	isClient bool
	cfg      ConnConfig
	keys     bbcrypto.SessionKeys
	// mbPresent records whether a middlebox interposed on the handshake.
	mbPresent bool

	// tmo is cfg.Timeouts resolved once at handshake time.
	tmo Timeouts

	aead          cipher.AEAD
	seqOut, seqIn uint64
	writeMu       sync.Mutex
	pipe          *core.SenderPipeline
	validator     *core.Validator
	readBuf       []byte
	readErr       error
	// termErr republishes readErr for Close, which may run on a
	// different goroutine than the reader (e.g. under a stream Mux).
	termErr        atomic.Pointer[error]
	wroteClose     bool
	validationSkip bool

	// flowID labels this endpoint's spans; records/recordBytes count what
	// the endpoint writes after the handshake. All stay zero-valued (and
	// the handles nil, no-op) when ConnConfig.Metrics and Trace are unset.
	flowID      uint64
	records     *obs.Counter
	recordBytes *obs.Histogram
	trace       obs.Sink
	// fr is this flow's flight recorder (nil without ConnConfig.Recorder);
	// when set it is the span sink and owns the flush/drop decision.
	fr *obs.FlowRecorder
	// ctx is the connection span's trace context: the root of a fresh
	// trace on a tracing client, or a child of the peer-negotiated root
	// elsewhere. hsCtx is the handshake span's context (parent of the
	// §3.3 prep.garble sub-spans). connStart/closeOnce emit the
	// connection span exactly once at Close.
	ctx       obs.SpanCtx
	hsCtx     obs.SpanCtx
	connStart time.Time
	closeOnce sync.Once
}

// party names this endpoint for Span.Party.
func (c *Conn) party() string {
	if c.isClient {
		return obs.PartyClient
	}
	return obs.PartyServer
}

// traced reports whether this endpoint produces spans at all (directly to
// Trace, or through a flight recorder).
func (c *Conn) traced() bool {
	return c.cfg.Trace != nil || c.cfg.Recorder != nil
}

// traceSink is where this connection's spans go: the flow's flight
// recorder when one exists, else the configured sink (legacy streaming),
// else nil.
func (c *Conn) traceSink() obs.Sink {
	if c.fr != nil {
		return c.fr
	}
	if c.cfg.Trace != nil {
		return c.cfg.Trace
	}
	return nil
}

// Dial opens a BlindBox HTTPS connection to addr (typically the middlebox
// in front of the server). Connect and handshake are retried as one unit
// under cfg.DialRetry — a handshake that died mid-way cannot be resumed,
// only redone on a fresh transport. Retries are counted in cfg.Metrics
// (obs.ConnDialRetriesTotal) when instrumentation is configured.
func Dial(addr string, cfg ConnConfig) (*Conn, error) {
	tmo := cfg.Timeouts.withDefaults()
	pol := cfg.DialRetry
	if pol.Notify == nil && cfg.Metrics != nil {
		retries := cfg.Metrics.Counter(obs.ConnDialRetriesTotal, obs.Help(obs.ConnDialRetriesTotal))
		pol.Notify = func(attempt int, err error, backoff time.Duration) {
			if backoff > 0 {
				retries.Inc()
			}
		}
	}
	var c *Conn
	err := pol.Do(nil, func(int) error {
		raw, err := net.DialTimeout("tcp", addr, enabled(tmo.Handshake))
		if err != nil {
			return err
		}
		cc, err := Client(raw, cfg)
		if err != nil {
			_ = raw.Close()
			return err
		}
		c = cc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Client runs the client side of the handshake over an established
// transport.
func Client(raw net.Conn, cfg ConnConfig) (*Conn, error) {
	c := &Conn{raw: raw, isClient: true, cfg: cfg}
	if err := c.handshake(); err != nil {
		return nil, err
	}
	return c, nil
}

// Server runs the server side of the handshake over an accepted transport.
// The server adopts the client's protocol parameters.
func Server(raw net.Conn, cfg ConnConfig) (*Conn, error) {
	c := &Conn{raw: raw, isClient: false, cfg: cfg}
	if err := c.handshake(); err != nil {
		return nil, err
	}
	return c, nil
}

// handshake runs the connection setup under the handshake deadline: the
// hello exchange plus (with a middlebox on path) the whole rule-preparation
// protocol. A deadline expiry surfaces as a *StepError for step
// "handshake".
func (c *Conn) handshake() error {
	c.tmo = c.cfg.Timeouts.withDefaults()
	if dl := deadlineFor(c.tmo.Handshake); !dl.IsZero() {
		if err := c.raw.SetDeadline(dl); err == nil {
			defer func() { _ = c.raw.SetDeadline(time.Time{}) }()
		}
	}
	err := stepErr("handshake", c.runHandshake())
	if err != nil {
		// A failed handshake is this flow's terminal state: emit the
		// connection span with the error and let the flight recorder
		// flush (handshake failures are always interesting).
		c.finishTrace(err.Error())
	}
	return err
}

// runHandshake is the deadline-free handshake body.
func (c *Conn) runHandshake() error {
	hsStart := time.Now()
	c.connStart = hsStart
	if c.cfg.Metrics != nil || c.traced() {
		c.flowID = connSeq.Add(1)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	my := Hello{
		PublicKey: priv.PublicKey().Bytes(),
		Protocol:  c.cfg.Core.Protocol,
		Mode:      byte(c.cfg.Core.Mode),
		Salt0:     c.cfg.Core.Salt0,
	}
	var peer Hello
	var head bool
	if c.isClient {
		// A tracing client roots the flow's distributed trace and
		// carries the context in its hello, so the middlebox and server
		// parent their spans under this connection span. With a flight
		// recorder the head-sampling decision rides along too, keeping
		// all parties streaming (or buffering) the same flows.
		if c.traced() {
			c.ctx = obs.NewSpanCtx()
			my.HasTrace = true
			my.TraceID = c.ctx.Trace
			my.TraceSpan = c.ctx.Span
			if c.cfg.Recorder != nil {
				head = c.cfg.Recorder.Decide(c.ctx.Trace)
				my.HasSample = true
				my.Sampled = head
			}
		}
		if err := WriteRecord(c.raw, RecHello, MarshalHello(my)); err != nil {
			return err
		}
		typ, body, err := ReadRecord(c.raw)
		if err != nil {
			return err
		}
		if typ != RecHelloReply {
			return fmt.Errorf("transport: expected hello reply, got %d", typ)
		}
		if peer, err = UnmarshalHello(body); err != nil {
			return err
		}
	} else {
		typ, body, err := ReadRecord(c.raw)
		if err != nil {
			return err
		}
		if typ != RecHello {
			return fmt.Errorf("transport: expected hello, got %d", typ)
		}
		if peer, err = UnmarshalHello(body); err != nil {
			return err
		}
		// Adopt the client's parameters.
		c.cfg.Core.Protocol = peer.Protocol
		c.cfg.Core.Mode = tokenize.Mode(peer.Mode)
		c.cfg.Core.Salt0 = peer.Salt0
		my.Protocol, my.Mode, my.Salt0 = peer.Protocol, peer.Mode, peer.Salt0
		// A tracing server joins the trace negotiated in the hello
		// (rooted at the client, or injected by a tracing middlebox);
		// without one it roots its own single-party trace. The sampling
		// decision on the hello wins over a local one, so all parties
		// agree; absent a wire decision the server's sampler decides
		// (deterministic on the trace ID, so equal rates still agree).
		if c.traced() {
			if peer.HasTrace {
				c.ctx = obs.JoinSpanCtx(obs.TraceID(peer.TraceID), peer.TraceSpan).Child()
			} else {
				c.ctx = obs.NewSpanCtx()
			}
			if c.cfg.Recorder != nil {
				if peer.HasSample {
					head = peer.Sampled
				} else {
					head = c.cfg.Recorder.Decide(c.ctx.Trace)
				}
			}
		}
		if err := WriteRecord(c.raw, RecHelloReply, MarshalHello(my)); err != nil {
			return err
		}
	}
	c.mbPresent = peer.MBPresent
	c.hsCtx = c.ctx.Child()
	if c.cfg.Recorder != nil {
		// Begin the flight recorder before rule preparation so the
		// prep.garble sub-spans land in the ring too.
		if fr := c.cfg.Recorder.BeginFlowSampled(c.flowID, c.party(), c.ctx, head); fr != nil {
			c.fr = fr
		}
	}

	peerKey, err := ecdh.X25519().NewPublicKey(peer.PublicKey)
	if err != nil {
		return fmt.Errorf("transport: bad peer key: %w", err)
	}
	k0, err := priv.ECDH(peerKey)
	if err != nil {
		return err
	}
	c.keys = bbcrypto.DeriveSessionKeys(k0)
	c.aead = bbcrypto.NewGCM(c.keys.KSSL)
	c.pipe = core.NewSenderPipeline(c.keys, c.cfg.Core)
	if c.cfg.EncryptWorkers == 0 {
		c.pipe.AutoTune()
	} else if c.cfg.EncryptWorkers != 1 {
		c.pipe.SetParallelism(c.cfg.EncryptWorkers)
	}
	c.validator = core.NewValidator(c.keys, c.cfg.Core)

	if c.mbPresent {
		if err := c.servePreparation(); err != nil {
			return fmt.Errorf("transport: rule preparation: %w", err)
		}
	}
	c.instrument(hsStart)
	return nil
}

// instrument wires the endpoint's observability after a successful
// handshake: the handshake duration (rule preparation included), the
// outgoing record metrics, and stage timing on the sender pipeline. With
// neither Metrics nor Trace configured it leaves every handle nil.
func (c *Conn) instrument(hsStart time.Time) {
	if c.cfg.Metrics == nil && !c.traced() {
		return
	}
	c.trace = c.traceSink()
	dir := "s2c"
	if c.isClient {
		dir = "c2s"
	}
	r := c.cfg.Metrics
	c.records = r.Counter(obs.ConnRecordsTotal, obs.Help(obs.ConnRecordsTotal))
	c.recordBytes = r.Histogram(obs.ConnRecordBytes, obs.Help(obs.ConnRecordBytes), obs.SizeBuckets)
	hsDur := time.Since(hsStart)
	r.Histogram(obs.ConnHandshakeSeconds, obs.Help(obs.ConnHandshakeSeconds), obs.LatencyBuckets).
		Observe(hsDur.Seconds())
	if c.trace != nil {
		sp := obs.Span{
			Flow: c.flowID, Party: c.party(), Name: obs.SpanHandshake,
			Start: hsStart.UnixNano(), Dur: int64(hsDur),
		}
		c.hsCtx.Stamp(&sp)
		c.trace.Emit(sp)
	}
	c.pipe.Instrument(r, c.trace, c.flowID, dir, c.ctx, c.party())
}

// writeRecord counts and sizes one outgoing record, then writes it under
// the per-record write deadline. A deadline expiry surfaces as a
// *StepError for step "write".
func (c *Conn) writeRecord(typ RecordType, body []byte) error {
	c.records.Inc()
	c.recordBytes.Observe(float64(len(body)))
	if dl := deadlineFor(c.tmo.Write); !dl.IsZero() {
		_ = c.raw.SetWriteDeadline(dl)
	}
	return stepErr("write", WriteRecord(c.raw, typ, body))
}

// SessionKeys exposes the derived keys (tests and the probable-cause
// decryption check need them).
func (c *Conn) SessionKeys() bbcrypto.SessionKeys { return c.keys }

// MBPresent reports whether a middlebox interposed on the handshake.
func (c *Conn) MBPresent() bool { return c.mbPresent }

// servePreparation answers the middlebox's obfuscated-rule-encryption
// protocol until SubPrepDone (§3.3). The endpoint never learns the rules:
// it garbles the generic function F and plays the OT sender.
func (c *Conn) servePreparation() error {
	ep := ruleprep.NewEndpoint(c.keys.K, c.cfg.RG.TagKey, c.keys.KRand)
	if sink := c.traceSink(); sink != nil {
		// Per-circuit prep.garble spans parent under this endpoint's
		// handshake span.
		ep.SetTrace(sink, c.hsCtx, c.flowID, c.party())
	}
	var (
		jobs   []*ruleprep.FragmentJob
		sender *ot.ExtSender
		pairs  [][2]bbcrypto.Block
	)
	for {
		typ, body, err := ReadRecord(c.raw)
		if err != nil {
			return err
		}
		if typ != RecGarble {
			return fmt.Errorf("unexpected record %d during preparation", typ)
		}
		if len(body) < 1 {
			return errors.New("empty preparation message")
		}
		sub, payload := body[0], body[1:]
		switch sub {
		case SubPrepStart:
			if len(payload) != 4 {
				return errors.New("bad prep start")
			}
			n := int(binary.BigEndian.Uint32(payload))
			if jobs, err = ep.GarbleAll(n); err != nil {
				return err
			}
			pairs = pairs[:0]
			for _, job := range jobs {
				msg := make([]byte, 1, 1+8)
				msg[0] = SubCircuit
				var idx [4]byte
				binary.BigEndian.PutUint32(idx[:], uint32(job.Index))
				msg = append(msg, idx[:]...)
				blob := job.G.Marshal()
				var l [4]byte
				binary.BigEndian.PutUint32(l[:], uint32(len(blob)))
				msg = append(msg, l[:]...)
				msg = append(msg, blob...)
				msg = append(msg, MarshalBlocks(job.EndpointLabels)...)
				if err := WriteRecord(c.raw, RecGarble, msg); err != nil {
					return err
				}
				pairs = append(pairs, job.OTPairs()...)
			}
		case SubOTMsgA:
			msgAs, err := UnmarshalByteSlices(payload)
			if err != nil {
				return err
			}
			sender = ot.NewExtSender()
			msgBs, err := sender.BaseRespond(msgAs)
			if err != nil {
				return err
			}
			if err := WriteRecord(c.raw, RecGarble, append([]byte{SubOTMsgB}, MarshalByteSlices(msgBs)...)); err != nil {
				return err
			}
		case SubOTU:
			if sender == nil {
				return errors.New("OT correction before base phase")
			}
			u, err := UnmarshalByteSlices(payload)
			if err != nil {
				return err
			}
			masked, err := sender.Send(u, pairs)
			if err != nil {
				return err
			}
			flat := make([]bbcrypto.Block, 0, 2*len(masked))
			for _, p := range masked {
				flat = append(flat, p[0], p[1])
			}
			if err := WriteRecord(c.raw, RecGarble, append([]byte{SubOTMasked}, MarshalBlocks(flat)...)); err != nil {
				return err
			}
		case SubPrepDone:
			return nil
		default:
			return fmt.Errorf("unknown preparation message %d", sub)
		}
	}
}

// record plaintext kinds.
const (
	kindText   = 0
	kindBinary = 1
)

func (c *Conn) nonce(seq uint64, outbound bool) []byte {
	n := make([]byte, 12)
	dir := byte(0)
	if c.isClient == outbound {
		// Client→server records use direction 0; server→client use 1.
		dir = 0
	} else {
		dir = 1
	}
	n[0] = dir
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// Write sends text (inspectable) payload. It tokenizes, encrypts tokens,
// and sends the SSL data record, splitting large writes.
func (c *Conn) Write(p []byte) (int, error) {
	return c.write(p, false)
}

// WriteBinary sends payload the IDS does not inspect (images, video): the
// data is SSL-protected but produces no tokens (§3 bandwidth optimization).
func (c *Conn) WriteBinary(p []byte) (int, error) {
	return c.write(p, true)
}

func (c *Conn) write(p []byte, binary_ bool) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.wroteClose {
		return 0, errors.New("transport: write after close")
	}
	total := 0
	// The per-record ciphertext slice comes from the shared pool and is
	// recycled once its batch has been marshaled onto the wire.
	toks := dpienc.GetTokenBuf()
	defer func() { dpienc.PutTokenBuf(toks) }()
	for len(p) > 0 {
		n := len(p)
		if n > maxDataRecord {
			n = maxDataRecord
		}
		chunk := p[:n]
		p = p[n:]

		var reset *core.SaltReset
		if binary_ {
			toks, reset = c.pipe.ProcessBinaryInto(toks[:0], len(chunk))
		} else {
			toks, reset = c.pipe.ProcessTextInto(toks[:0], chunk)
		}
		if reset != nil {
			var s [8]byte
			binary.BigEndian.PutUint64(s[:], reset.Salt0)
			if err := c.writeRecord(RecSalt, s[:]); err != nil {
				return total, err
			}
		}
		if len(toks) > 0 {
			body := MarshalTokens(toks, c.cfg.Core.Protocol == dpienc.ProtocolIII)
			if err := c.writeRecord(RecTokens, body); err != nil {
				return total, err
			}
		}
		pt := make([]byte, 1+len(chunk))
		if binary_ {
			pt[0] = kindBinary
		}
		copy(pt[1:], chunk)
		ct := c.aead.Seal(nil, c.nonce(c.seqOut, true), pt, []byte{byte(RecData)})
		c.seqOut++
		if err := c.writeRecord(RecData, ct); err != nil {
			return total, err
		}
		total += len(chunk)
	}
	return total, nil
}

// CloseWrite flushes trailing tokens and signals end-of-stream; reads may
// continue.
func (c *Conn) CloseWrite() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.wroteClose {
		return nil
	}
	c.wroteClose = true
	toks := c.pipe.FlushInto(dpienc.GetTokenBuf())
	defer dpienc.PutTokenBuf(toks)
	if len(toks) > 0 {
		body := MarshalTokens(toks, c.cfg.Core.Protocol == dpienc.ProtocolIII)
		if err := c.writeRecord(RecTokens, body); err != nil {
			return err
		}
	}
	return c.writeRecord(RecClose, nil)
}

// Close closes the connection, sending the end-of-stream first, and emits
// the connection-level span (the root of the flow's distributed trace on
// a tracing client) covering handshake through close.
func (c *Conn) Close() error {
	_ = c.CloseWrite()
	err := c.raw.Close()
	errMsg := ""
	if ep := c.termErr.Load(); ep != nil && *ep != io.EOF {
		errMsg = (*ep).Error()
	}
	c.finishTrace(errMsg)
	return err
}

// finishTrace emits the connection-level span exactly once and ends the
// flow's flight recorder, which flushes or drops the ring depending on
// head sampling and terminal state. errMsg is the flow's terminal error
// ("" for a clean close); a non-empty error marks the flow interesting.
func (c *Conn) finishTrace(errMsg string) {
	c.closeOnce.Do(func() {
		if sink := c.traceSink(); sink != nil && c.ctx.Valid() {
			sp := obs.Span{
				Flow: c.flowID, Party: c.party(), Name: obs.SpanConn,
				Start: c.connStart.UnixNano(), Dur: int64(time.Since(c.connStart)),
				Err: errMsg,
			}
			c.ctx.Stamp(&sp)
			sink.Emit(sp)
		}
		if c.fr != nil {
			c.fr.End(errMsg)
		}
	})
}

// SetValidationDisabled turns off receiver-side token validation — used
// only by tests modeling a lazy receiver; an honest BlindBox receiver
// always validates (§3.4).
func (c *Conn) SetValidationDisabled(v bool) { c.validationSkip = v }

// Read returns decrypted, validated payload bytes (both text and binary
// kinds). It returns io.EOF after the peer's RecClose.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.readBuf) == 0 {
		if c.readErr != nil {
			return 0, c.readErr
		}
		if err := c.readRecord(); err != nil {
			c.readErr = err
			c.termErr.Store(&err)
			return 0, err
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

func (c *Conn) readRecord() error {
	if dl := deadlineFor(c.tmo.Read); !dl.IsZero() {
		_ = c.raw.SetReadDeadline(dl)
	}
	typ, body, err := ReadRecord(c.raw)
	if err != nil {
		return stepErr("read", err)
	}
	switch typ {
	case RecSalt:
		// The validator's own pipeline resets deterministically at the
		// same byte counts; the explicit announcement is for the
		// middlebox.
		return nil
	case RecTokens:
		toks, err := UnmarshalTokens(body, c.cfg.Core.Protocol == dpienc.ProtocolIII)
		if err != nil {
			return err
		}
		if !c.validationSkip {
			c.validator.ReceiveTokens(toks)
		}
		return nil
	case RecData:
		pt, err := c.aead.Open(nil, c.nonce(c.seqIn, false), body, []byte{byte(RecData)})
		if err != nil {
			return fmt.Errorf("transport: record authentication failed: %w", err)
		}
		c.seqIn++
		if len(pt) < 1 {
			return errors.New("transport: empty data record")
		}
		kind, payload := pt[0], pt[1:]
		if !c.validationSkip {
			switch kind {
			case kindText:
				if err := c.validator.ValidateText(payload); err != nil {
					return err
				}
			case kindBinary:
				if err := c.validator.ValidateBinary(len(payload)); err != nil {
					return err
				}
			default:
				return fmt.Errorf("transport: unknown data kind %d", kind)
			}
		}
		c.readBuf = append(c.readBuf, payload...)
		return nil
	case RecClose:
		if !c.validationSkip {
			if err := c.validator.Finish(); err != nil {
				return err
			}
		}
		return io.EOF
	default:
		return fmt.Errorf("transport: unexpected record type %d", typ)
	}
}

var _ io.ReadWriteCloser = (*Conn)(nil)
