package transport

import (
	"bytes"
	"testing"

	"repro/internal/dpienc"
)

// FuzzUnmarshalHello checks hello parsing never panics and accepted
// hellos round-trip.
func FuzzUnmarshalHello(f *testing.F) {
	f.Add(MarshalHello(Hello{PublicKey: make([]byte, 32), Protocol: 2, Mode: 1, Salt0: 7}))
	f.Add(MarshalHello(Hello{PublicKey: make([]byte, 32), HasTrace: true, TraceID: [16]byte{1, 2}, TraceSpan: 99}))
	f.Add(MarshalHello(Hello{PublicKey: make([]byte, 32), HasTrace: true, TraceID: [16]byte{3}, HasSample: true, Sampled: true}))
	f.Add([]byte{})
	f.Add([]byte{32, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHello(data)
		if err != nil {
			return
		}
		enc := MarshalHello(h)
		h2, err := UnmarshalHello(enc)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !bytes.Equal(h2.PublicKey, h.PublicKey) || h2.Salt0 != h.Salt0 ||
			h2.Protocol != h.Protocol || h2.Mode != h.Mode || h2.MBPresent != h.MBPresent ||
			h2.HasTrace != h.HasTrace || h2.TraceID != h.TraceID || h2.TraceSpan != h.TraceSpan ||
			h2.HasSample != h.HasSample || h2.Sampled != h.Sampled {
			t.Fatal("hello round trip diverged")
		}
	})
}

// FuzzUnmarshalTokens checks token-batch parsing on arbitrary bytes for
// both protocol families.
func FuzzUnmarshalTokens(f *testing.F) {
	f.Add(MarshalTokens([]dpienc.EncryptedToken{{Offset: 3}}, false), false)
	f.Add(MarshalTokens([]dpienc.EncryptedToken{{Offset: 3}, {Offset: 9}}, true), true)
	f.Add([]byte{0, 0, 0, 200}, false)
	f.Fuzz(func(t *testing.T, data []byte, protoIII bool) {
		toks, err := UnmarshalTokens(data, protoIII)
		if err != nil {
			return
		}
		enc := MarshalTokens(toks, protoIII)
		if !bytes.Equal(enc, data) {
			t.Fatalf("token batch round trip diverged (%d tokens)", len(toks))
		}
	})
}

// FuzzUnmarshalByteSlices checks the length-prefixed list codec.
func FuzzUnmarshalByteSlices(f *testing.F) {
	f.Add(MarshalByteSlices([][]byte{[]byte("a"), {}, []byte("bcd")}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		slices, err := UnmarshalByteSlices(data)
		if err != nil {
			return
		}
		if !bytes.Equal(MarshalByteSlices(slices), data) {
			t.Fatal("slice list round trip diverged")
		}
	})
}

// FuzzReadRecord checks record framing against arbitrary byte streams.
func FuzzReadRecord(f *testing.F) {
	var buf bytes.Buffer
	WriteRecord(&buf, RecData, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{byte(RecClose), 0, 0, 0, 0})
	f.Add([]byte{1, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRecord(&out, typ, body); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("record round trip diverged")
		}
	})
}
