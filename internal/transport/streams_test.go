package transport

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
)

// muxPair builds a client/server mux over a loopback connection.
func muxPair(t *testing.T) (*Mux, *Mux) {
	t.Helper()
	client, server := pair(t, ConnConfig{Core: core.DefaultConfig()})
	mc := NewMux(client, true)
	ms := NewMux(server, false)
	t.Cleanup(func() { mc.Close(); ms.Close() })
	return mc, ms
}

func TestStreamRoundTrip(t *testing.T) {
	mc, ms := muxPair(t)
	done := make(chan error, 1)
	go func() {
		st, err := ms.Accept()
		if err != nil {
			done <- err
			return
		}
		data, err := io.ReadAll(st)
		if err != nil {
			done <- err
			return
		}
		st.Write(data)
		st.Close()
		done <- nil
	}()
	st, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("GET /stream-one HTTP/1.1\r\n\r\n")
	st.Write(msg)
	st.Close()
	echo, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, msg) {
		t.Fatalf("echo = %q", echo)
	}
}

func TestManyStreamsOneHandshake(t *testing.T) {
	// The whole point of the mux: many requests amortize one setup.
	mc, ms := muxPair(t)
	const n = 20
	go func() {
		for {
			st, err := ms.Accept()
			if err != nil {
				return
			}
			go func() {
				data, err := io.ReadAll(st)
				if err != nil {
					return
				}
				st.Write(data)
				st.Close()
			}()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := mc.Open()
			if err != nil {
				errs <- err
				return
			}
			msg := []byte(fmt.Sprintf("request number %d with padding words", i))
			if _, err := st.Write(msg); err != nil {
				errs <- err
				return
			}
			st.Close()
			echo, err := io.ReadAll(st)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(echo, msg) {
				errs <- fmt.Errorf("stream %d: echo mismatch", i)
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamIDsDoNotCollide(t *testing.T) {
	mc, ms := muxPair(t)
	c1, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ms.Open()
	if err != nil {
		t.Fatal(err)
	}
	if c1.ID()%2 != 1 || c2.ID()%2 != 1 {
		t.Fatalf("client stream ids %d/%d not odd", c1.ID(), c2.ID())
	}
	if s1.ID()%2 != 0 {
		t.Fatalf("server stream id %d not even", s1.ID())
	}
	if c1.ID() == c2.ID() {
		t.Fatal("duplicate client stream ids")
	}
}

func TestStreamBinaryBody(t *testing.T) {
	mc, ms := muxPair(t)
	go func() {
		st, err := ms.Accept()
		if err != nil {
			return
		}
		data, _ := io.ReadAll(st)
		st.WriteBinary(data)
		st.Close()
	}()
	st, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xCC, 0x01, 0xFF}, 20000) // > 1 frame
	st.WriteBinary(blob)
	st.Close()
	echo, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, blob) {
		t.Fatalf("binary echo corrupted: %d vs %d bytes", len(echo), len(blob))
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	mc, _ := muxPair(t)
	st, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := st.Write([]byte("late")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := st.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestMuxCloseUnblocksStreams(t *testing.T) {
	mc, ms := muxPair(t)
	st, err := mc.Open()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("x")) // materialize the stream at the peer
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := st.Read(buf); err != nil {
				readErr <- err
				return
			}
		}
	}()
	ms.Close()
	mc.Close()
	if err := <-readErr; err == nil {
		t.Fatal("blocked read not released by mux close")
	}
	if _, err := ms.Accept(); err == nil {
		t.Fatal("accept after close succeeded")
	}
}
