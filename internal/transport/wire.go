// Wire format of BlindBox HTTPS. The paper's prototype opens three sockets
// (SSL data, encrypted tokens, garbled-circuit channel, §6); we multiplex
// the three logical channels over one connection with typed records, which
// simplifies middlebox interposition without changing the protocol content.

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
)

// RecordType identifies the logical channel of a record.
type RecordType byte

const (
	// RecHello carries the client handshake: X25519 public key and the
	// connection configuration.
	RecHello RecordType = iota + 1
	// RecHelloReply carries the server handshake.
	RecHelloReply
	// RecData is an AES-GCM-protected application data record (the
	// "primary SSL stream").
	RecData
	// RecTokens carries DPIEnc-encrypted tokens.
	RecTokens
	// RecSalt announces a counter-table reset (the new salt0).
	RecSalt
	// RecGarble carries a rule-preparation message between the middlebox
	// and one endpoint; it is never forwarded across the middlebox.
	RecGarble
	// RecClose signals an orderly end of the sender's stream.
	RecClose
)

// MaxRecordLen bounds a record body; garbled circuits dominate (a few MB
// for our AES circuit), so the cap is generous.
const MaxRecordLen = 64 << 20

// maxDataRecord bounds the plaintext of one data record; larger writes are
// split. 16 KiB matches TLS record sizing.
const maxDataRecord = 16 << 10

// WriteRecord frames and writes one record.
func WriteRecord(w io.Writer, typ RecordType, body []byte) error {
	if len(body) > MaxRecordLen {
		return fmt.Errorf("transport: record body %d exceeds cap", len(body))
	}
	var hdr [5]byte
	hdr[0] = byte(typ)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadRecord reads one framed record.
func ReadRecord(r io.Reader) (RecordType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxRecordLen {
		return 0, nil, fmt.Errorf("transport: record body %d exceeds cap", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return RecordType(hdr[0]), body, nil
}

// Hello is the cleartext handshake payload. The middlebox sets MBPresent
// when forwarding, informing the endpoints that a rule-preparation
// exchange will follow the handshake. HasTrace marks an optional trailing
// trace-context extension: the 128-bit distributed trace ID plus the root
// span ID, so client, middlebox and server spans of one flow join into
// one trace (DESIGN.md §8). HasSample marks a second optional extension
// carrying the head-sampling decision for the trace, so all three parties
// stream or buffer the same flows. Peers without tracing ignore both.
type Hello struct {
	PublicKey []byte // X25519, 32 bytes
	Protocol  dpienc.Protocol
	Mode      byte // tokenize.Mode
	Salt0     uint64
	MBPresent bool
	HasTrace  bool
	TraceID   [16]byte
	TraceSpan uint64
	HasSample bool // a head-sampling decision rides on the hello
	Sampled   bool // the decision itself (bit0 of the extension flags)
}

// helloTraceExt tags the trace-context extension after the MBPresent
// byte: 1 tag byte + 16 trace-ID bytes + 8 root-span-ID bytes.
// helloSampledExt tags the sampling-decision extension after the trace
// extension: 1 tag byte + 1 flags byte (bit0 = head-sampled). It is only
// valid following a trace extension — a decision is meaningless without
// the trace ID it applies to.
const (
	helloTraceExt      byte = 0x01
	helloTraceExtLen        = 1 + 16 + 8
	helloSampledExt    byte = 0x02
	helloSampledExtLen      = 1 + 1
)

// MarshalHello encodes a Hello.
func MarshalHello(h Hello) []byte {
	out := make([]byte, 0, 32+11+helloTraceExtLen+helloSampledExtLen)
	out = append(out, byte(len(h.PublicKey)))
	out = append(out, h.PublicKey...)
	out = append(out, byte(h.Protocol), h.Mode)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], h.Salt0)
	out = append(out, s[:]...)
	if h.MBPresent {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	if h.HasTrace {
		out = append(out, helloTraceExt)
		out = append(out, h.TraceID[:]...)
		binary.BigEndian.PutUint64(s[:], h.TraceSpan)
		out = append(out, s[:]...)
		if h.HasSample {
			var flags byte
			if h.Sampled {
				flags = 1
			}
			out = append(out, helloSampledExt, flags)
		}
	}
	return out
}

// UnmarshalHello decodes a Hello. Unknown trailing bytes are ignored for
// forward compatibility; a well-formed trace extension is decoded.
func UnmarshalHello(data []byte) (Hello, error) {
	var h Hello
	if len(data) < 1 {
		return h, errors.New("transport: short hello")
	}
	kl := int(data[0])
	if len(data) < 1+kl+11 {
		return h, errors.New("transport: short hello")
	}
	h.PublicKey = append([]byte(nil), data[1:1+kl]...)
	rest := data[1+kl:]
	h.Protocol = dpienc.Protocol(rest[0])
	h.Mode = rest[1]
	h.Salt0 = binary.BigEndian.Uint64(rest[2:10])
	h.MBPresent = rest[10] == 1
	if ext := rest[11:]; len(ext) >= helloTraceExtLen && ext[0] == helloTraceExt {
		h.HasTrace = true
		copy(h.TraceID[:], ext[1:17])
		h.TraceSpan = binary.BigEndian.Uint64(ext[17:25])
		if ext = ext[helloTraceExtLen:]; len(ext) >= helloSampledExtLen && ext[0] == helloSampledExt {
			h.HasSample = true
			h.Sampled = ext[1]&1 == 1
		}
	}
	return h, nil
}

// AppendHelloTrace appends a trace-context extension to an encoded hello
// that lacks one — what the middlebox does when it traces but the client
// sent no context, so the server can still join the middlebox's trace.
func AppendHelloTrace(encoded []byte, traceID [16]byte, rootSpan uint64) ([]byte, error) {
	h, err := UnmarshalHello(encoded)
	if err != nil {
		return nil, err
	}
	if h.HasTrace {
		return encoded, nil
	}
	if base := 1 + int(encoded[0]) + 11; len(encoded) != base {
		// Unknown trailing extension: leave the hello alone rather than
		// append where no parser would look.
		return encoded, nil
	}
	out := append(append([]byte(nil), encoded...), helloTraceExt)
	out = append(out, traceID[:]...)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], rootSpan)
	return append(out, s[:]...), nil
}

// AppendHelloSampled appends a sampling-decision extension to an encoded
// hello that carries a trace extension but no decision — what the
// middlebox does after deciding head sampling for a flow whose client
// sent trace context without a decision. A hello without a trace
// extension, with a decision already present, or with unknown trailing
// bytes is returned unchanged (peers then decide locally).
func AppendHelloSampled(encoded []byte, sampled bool) ([]byte, error) {
	h, err := UnmarshalHello(encoded)
	if err != nil {
		return nil, err
	}
	if !h.HasTrace || h.HasSample {
		return encoded, nil
	}
	if base := 1 + int(encoded[0]) + 11 + helloTraceExtLen; len(encoded) != base {
		// Unknown trailing extension after the trace context: leave the
		// hello alone rather than append where no parser would look.
		return encoded, nil
	}
	var flags byte
	if sampled {
		flags = 1
	}
	return append(append([]byte(nil), encoded...), helloSampledExt, flags), nil
}

// SetMBPresent flips the MBPresent flag inside an encoded hello in place —
// what the middlebox does when forwarding handshakes.
func SetMBPresent(encoded []byte) error {
	if len(encoded) < 1 {
		return errors.New("transport: short hello")
	}
	kl := int(encoded[0])
	if len(encoded) < 1+kl+11 {
		return errors.New("transport: short hello")
	}
	encoded[1+kl+10] = 1
	return nil
}

// Token wire format: offset (8) + C1 (5) + optional C2 (16, Protocol III).
func tokenSize(protoIII bool) int {
	if protoIII {
		return 8 + dpienc.CiphertextSize + bbcrypto.BlockSize
	}
	return 8 + dpienc.CiphertextSize
}

// MarshalTokens encodes a token batch.
func MarshalTokens(toks []dpienc.EncryptedToken, protoIII bool) []byte {
	sz := tokenSize(protoIII)
	out := make([]byte, 4, 4+len(toks)*sz)
	binary.BigEndian.PutUint32(out, uint32(len(toks)))
	var tmp [8]byte
	for _, t := range toks {
		binary.BigEndian.PutUint64(tmp[:], uint64(t.Offset))
		out = append(out, tmp[:]...)
		out = append(out, t.C1[:]...)
		if protoIII {
			out = append(out, t.C2[:]...)
		}
	}
	return out
}

// UnmarshalTokens decodes a token batch.
func UnmarshalTokens(data []byte, protoIII bool) ([]dpienc.EncryptedToken, error) {
	if len(data) < 4 {
		return nil, errors.New("transport: short token batch")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	sz := tokenSize(protoIII)
	if len(data) != n*sz {
		return nil, fmt.Errorf("transport: token batch size %d != %d*%d", len(data), n, sz)
	}
	toks := make([]dpienc.EncryptedToken, n)
	for i := range toks {
		toks[i].Offset = int(binary.BigEndian.Uint64(data))
		data = data[8:]
		copy(toks[i].C1[:], data)
		data = data[dpienc.CiphertextSize:]
		if protoIII {
			copy(toks[i].C2[:], data)
			data = data[bbcrypto.BlockSize:]
		}
	}
	return toks, nil
}

// Rule-preparation subtypes carried inside RecGarble records.
const (
	// SubPrepStart (MB→EP): uint32 fragment count.
	SubPrepStart byte = iota + 1
	// SubCircuit (EP→MB): uint32 index, uint32 len, garbled blob, then
	// 256 endpoint-input labels.
	SubCircuit
	// SubOTMsgA (MB→EP): 128 base-OT first messages.
	SubOTMsgA
	// SubOTMsgB (EP→MB): 128 base-OT responses.
	SubOTMsgB
	// SubOTU (MB→EP): the IKNP correction matrix.
	SubOTU
	// SubOTMasked (EP→MB): the masked label pairs.
	SubOTMasked
	// SubPrepDone (MB→EP): setup complete, data may flow.
	SubPrepDone
)

// MarshalByteSlices length-prefixes a list of byte slices.
func MarshalByteSlices(slices [][]byte) []byte {
	total := 4
	for _, s := range slices {
		total += 4 + len(s)
	}
	out := make([]byte, 4, total)
	binary.BigEndian.PutUint32(out, uint32(len(slices)))
	var tmp [4]byte
	for _, s := range slices {
		binary.BigEndian.PutUint32(tmp[:], uint32(len(s)))
		out = append(out, tmp[:]...)
		out = append(out, s...)
	}
	return out
}

// UnmarshalByteSlices inverts MarshalByteSlices.
func UnmarshalByteSlices(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("transport: short slice list")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n > MaxRecordLen {
		return nil, errors.New("transport: slice list too long")
	}
	out := make([][]byte, n)
	for i := range out {
		if len(data) < 4 {
			return nil, errors.New("transport: truncated slice list")
		}
		l := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, errors.New("transport: truncated slice entry")
		}
		out[i] = data[:l:l]
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, errors.New("transport: trailing bytes in slice list")
	}
	return out, nil
}

// MarshalBlocks packs 16-byte blocks.
func MarshalBlocks(blocks []bbcrypto.Block) []byte {
	out := make([]byte, 4, 4+len(blocks)*bbcrypto.BlockSize)
	binary.BigEndian.PutUint32(out, uint32(len(blocks)))
	for _, b := range blocks {
		out = append(out, b[:]...)
	}
	return out
}

// UnmarshalBlocks inverts MarshalBlocks.
func UnmarshalBlocks(data []byte) ([]bbcrypto.Block, error) {
	if len(data) < 4 {
		return nil, errors.New("transport: short block list")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*bbcrypto.BlockSize {
		return nil, errors.New("transport: block list size mismatch")
	}
	out := make([]bbcrypto.Block, n)
	for i := range out {
		copy(out[i][:], data[i*bbcrypto.BlockSize:])
	}
	return out, nil
}
