package middlebox

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/transport"
)

// TestOnAlertConcurrentCallbackSafety pins the documented OnAlert contract:
// callbacks may fire concurrently across connections (the callback below is
// intentionally exercised under the race detector in CI), but within one
// connection direction alerts arrive in stream order. The keyword appears
// several times per payload, so each flow produces an ordered event
// sequence to check.
func TestOnAlertConcurrentCallbackSafety(t *testing.T) {
	type flowKey struct {
		conn uint64
		dir  Direction
	}
	var (
		mu       sync.Mutex
		offsets  = map[flowKey][]int{}
		inflight atomic.Int64
		maxSeen  atomic.Int64
	)
	h := newHarnessWithAlert(t,
		`alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`,
		func(a Alert) {
			n := inflight.Add(1)
			for {
				old := maxSeen.Load()
				if n <= old || maxSeen.CompareAndSwap(old, n) {
					break
				}
			}
			if a.Event.Kind == detect.KeywordMatch {
				mu.Lock()
				k := flowKey{a.ConnID, a.Direction}
				offsets[k] = append(offsets[k], a.Event.Offset)
				mu.Unlock()
			}
			inflight.Add(-1)
		})

	payload := []byte("first attackkw then more text attackkw and attackkw again plus attackkw end")
	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
				Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey},
			})
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.Write(payload); err != nil {
				errs <- err
				return
			}
			if err := conn.CloseWrite(); err != nil {
				errs <- err
				return
			}
			if _, err := io.ReadAll(conn); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Drain the shards so every queued alert has been delivered.
	if err := h.mb.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	c2s := 0
	for k, offs := range offsets {
		for i := 1; i < len(offs); i++ {
			if offs[i] < offs[i-1] {
				t.Fatalf("flow %v: alert offsets out of stream order: %v", k, offs)
			}
		}
		if k.dir == ClientToServer {
			c2s++
			if len(offs) != 4 {
				t.Fatalf("flow %v: %d keyword alerts, want 4 (offsets %v)", k, len(offs), offs)
			}
		}
	}
	if c2s != sessions {
		t.Fatalf("client-to-server alert flows = %d, want %d", c2s, sessions)
	}
}

// TestCloseDrainsAndRejectsNewConns checks the graceful-drain contract:
// Close returns only after queued detection work is flushed, and later
// connections are refused.
func TestCloseDrainsAndRejectsNewConns(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`, false)
	conn := h.dial(t, core.DefaultConfig())
	if _, err := conn.Write([]byte("carrying attackkw onward")); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	if err := h.mb.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close every alert of the finished session must be visible —
	// no waitFor polling needed.
	found := false
	for _, a := range h.snapshot() {
		if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("alert lost across Close drain")
	}
	if err := h.mb.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// New connections are refused (the proxy leg errors out quickly).
	c2, s2 := net.Pipe()
	defer c2.Close()
	defer s2.Close()
	done := make(chan error, 1)
	go func() { done <- h.mb.Interpose(c2, s2) }()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Interpose after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Interpose did not return after Close")
	}
}

// TestSequentialConfigDisablesPool checks the conformance escape hatch: a
// Sequential middlebox has no shards yet detects identically.
func TestSequentialConfigDisablesPool(t *testing.T) {
	h := newHarnessSequential(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`)
	if h.mb.pool != nil {
		t.Fatal("Sequential config built a detection pool")
	}
	conn := h.dial(t, core.DefaultConfig())
	if _, err := conn.Write([]byte("payload with attackkw inside")); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 7 {
				return true
			}
		}
		return false
	})
}

// TestShardIndexPinsFlows sanity-checks the pinning function: stable per
// flow, spread across shards, directions of one connection separated when
// more than one shard exists.
func TestShardIndexPinsFlows(t *testing.T) {
	p := &detectPool{}
	p.set.Store(&shardSet{chans: make([]chan detectJob, 4)})
	p.active.Store(4)
	for id := uint64(1); id < 100; id++ {
		a := p.shardIndex(id, ClientToServer)
		if a != p.shardIndex(id, ClientToServer) {
			t.Fatal("shard pinning is not stable")
		}
		b := p.shardIndex(id, ServerToClient)
		if a == b {
			t.Fatalf("conn %d: both directions pinned to shard %d", id, a)
		}
		if a < 0 || a >= 4 || b < 0 || b >= 4 {
			t.Fatalf("shard out of range: %d/%d", a, b)
		}
	}
}

// newHarnessWithAlert is newHarness with a custom OnAlert callback.
func newHarnessWithAlert(t *testing.T, rulesText string, onAlert func(Alert)) *harness {
	t.Helper()
	return newHarnessConfigured(t, rulesText, func(cfg *Config) { cfg.OnAlert = onAlert })
}

// newHarnessSequential is newHarness with the sequential (poolless) pipeline.
func newHarnessSequential(t *testing.T, rulesText string) *harness {
	t.Helper()
	return newHarnessConfigured(t, rulesText, func(cfg *Config) { cfg.Sequential = true })
}
