package middlebox

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestConcurrentSessionsStress hammers one middlebox with many concurrent
// BlindBox sessions — a mix of clean and attack traffic, with stats and
// alert readers running alongside the flows. Its main job is to give the
// race detector (go test -race, part of the CI gate) real contention over
// the per-connection flow state, the alert callback and the atomic
// counters; it also checks that every session still echoes correctly and
// every attack session raises an alert under load.
func TestConcurrentSessionsStress(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`, false)

	// Rule preparation garbles an AES circuit per session, which is what
	// bounds the session count here — especially under the race detector.
	workers, sessionsPerGoro := 4, 2
	if testing.Short() {
		workers, sessionsPerGoro = 2, 1
	}
	clean := []byte("GET /home.html HTTP/1.1\r\nHost: innocent.example\r\n\r\n")
	attack := []byte("POST /x HTTP/1.1\r\n\r\npayload with attackkw inside it")

	runSession := func(msg []byte) error {
		conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
			Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey},
		})
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		if _, err := conn.Write(msg); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		if err := conn.CloseWrite(); err != nil {
			return fmt.Errorf("close write: %w", err)
		}
		echoed, err := io.ReadAll(conn)
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if !bytes.Equal(echoed, msg) {
			return fmt.Errorf("echo mismatch: got %d bytes, want %d", len(echoed), len(msg))
		}
		return nil
	}

	// Observer goroutine: concurrent readers of the middlebox counters and
	// the alert log while flows are in flight.
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.mb.Stats()
				_ = h.snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	var attacks atomic.Int64
	errs := make(chan error, workers*sessionsPerGoro)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < sessionsPerGoro; s++ {
				msg := clean
				if (w+s)%2 == 0 {
					msg = attack
					attacks.Add(1)
				}
				if err := runSession(msg); err != nil {
					errs <- fmt.Errorf("worker %d session %d: %w", w, s, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	observer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := int(attacks.Load())
	waitFor(t, func() bool { return len(h.snapshot()) >= want })
	if got := h.mb.Stats().TokensScanned; got == 0 {
		t.Fatal("middlebox scanned no tokens under load")
	}
}
