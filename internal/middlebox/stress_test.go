package middlebox

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/transport"
)

// TestConcurrentSessionsStress hammers one middlebox with many concurrent
// BlindBox sessions — a mix of clean and attack traffic, with stats and
// alert readers running alongside the flows. Its main job is to give the
// race detector (go test -race, part of the CI gate) real contention over
// the per-connection flow state, the alert callback and the atomic
// counters; it also checks that every session still echoes correctly and
// every attack session raises an alert under load.
func TestConcurrentSessionsStress(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`, false)

	// Rule preparation garbles an AES circuit per session, which is what
	// bounds the session count here — especially under the race detector.
	workers, sessionsPerGoro := 4, 2
	if testing.Short() {
		workers, sessionsPerGoro = 2, 1
	}
	clean := []byte("GET /home.html HTTP/1.1\r\nHost: innocent.example\r\n\r\n")
	attack := []byte("POST /x HTTP/1.1\r\n\r\npayload with attackkw inside it")

	runSession := func(msg []byte) error {
		conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
			Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey},
		})
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		if _, err := conn.Write(msg); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		if err := conn.CloseWrite(); err != nil {
			return fmt.Errorf("close write: %w", err)
		}
		echoed, err := io.ReadAll(conn)
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if !bytes.Equal(echoed, msg) {
			return fmt.Errorf("echo mismatch: got %d bytes, want %d", len(echoed), len(msg))
		}
		return nil
	}

	// Observer goroutine: concurrent readers of the middlebox counters and
	// the alert log while flows are in flight.
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.mb.Stats()
				_ = h.snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	var attacks atomic.Int64
	errs := make(chan error, workers*sessionsPerGoro)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < sessionsPerGoro; s++ {
				msg := clean
				if (w+s)%2 == 0 {
					msg = attack
					attacks.Add(1)
				}
				if err := runSession(msg); err != nil {
					errs <- fmt.Errorf("worker %d session %d: %w", w, s, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	observer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := int(attacks.Load())
	waitFor(t, func() bool { return len(h.snapshot()) >= want })
	if got := h.mb.Stats().TokensScanned; got == 0 {
		t.Fatal("middlebox scanned no tokens under load")
	}
}

// TestPoolStressCancellationAndDrain aims the race detector at the worker
// pool's ugliest path: connections that vanish abruptly mid-stream while
// their detection batches are still queued on a shard, interleaved with
// sessions that complete normally. Afterwards Middlebox.Close must drain
// and return, with no alert duplicated (the alerted-once rule invariant
// must survive concurrent batch scans) and none lost from the sessions
// that completed.
func TestPoolStressCancellationAndDrain(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`, false)

	sessions := 6
	if testing.Short() {
		sessions = 4
	}
	attack := []byte("POST /x HTTP/1.1\r\n\r\npayload with attackkw inside it " +
		"and again attackkw to keep shards busy")

	var wg sync.WaitGroup
	var completed atomic.Int64
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			raw, err := net.Dial("tcp", h.mbAddr)
			if err != nil {
				errs <- fmt.Errorf("session %d dial: %w", s, err)
				return
			}
			conn, err := transport.Client(raw, transport.ConnConfig{
				Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey},
			})
			if err != nil {
				raw.Close()
				errs <- fmt.Errorf("session %d handshake: %w", s, err)
				return
			}
			if _, err := conn.Write(attack); err != nil {
				raw.Close()
				errs <- fmt.Errorf("session %d write: %w", s, err)
				return
			}
			if s%2 == 1 {
				// Abrupt mid-stream cancellation: kill the TCP socket with
				// detection work possibly still queued for this flow.
				raw.Close()
				return
			}
			if err := conn.CloseWrite(); err != nil {
				errs <- fmt.Errorf("session %d close write: %w", s, err)
				return
			}
			echoed, err := io.ReadAll(conn)
			if err != nil {
				errs <- fmt.Errorf("session %d read: %w", s, err)
				return
			}
			if !bytes.Equal(echoed, attack) {
				errs <- fmt.Errorf("session %d echo mismatch: %d bytes", s, len(echoed))
				return
			}
			conn.Close()
			completed.Add(1)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Graceful drain: Close must finish even though half the sessions died
	// abruptly, and it must flush every queued batch first.
	done := make(chan error, 1)
	go func() { done <- h.mb.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Middlebox.Close did not drain")
	}

	// No duplicated alerts: a rule fires at most once per flow.
	type flowKey struct {
		conn uint64
		dir  Direction
		sid  int
	}
	ruleMatches := map[flowKey]int{}
	c2sConns := map[uint64]bool{}
	for _, a := range h.snapshot() {
		if a.Event.Kind != detect.RuleMatch {
			continue
		}
		k := flowKey{a.ConnID, a.Direction, a.Event.Rule.SID}
		ruleMatches[k]++
		if ruleMatches[k] > 1 {
			t.Fatalf("rule %d alerted %d times on flow %d/%v", k.sid, ruleMatches[k], k.conn, k.dir)
		}
		if a.Direction == ClientToServer {
			c2sConns[a.ConnID] = true
		}
	}
	// No lost alerts: every session that completed its echo round-trip must
	// have produced a client->server rule match (cancelled ones may or may
	// not, depending on how far they got).
	if int64(len(c2sConns)) < completed.Load() {
		t.Fatalf("%d flows alerted client->server, want at least %d (completed sessions)",
			len(c2sConns), completed.Load())
	}
}
