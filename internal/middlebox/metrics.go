// Observability plumbing for the middlebox. The middlebox always runs
// against a real obs.Registry — a private one when Config.Metrics is nil —
// so Stats() and a /metrics scrape read the same counters and can never
// disagree. The seed implementation already paid for atomic counters on
// this path; the registry handles cost the same.

package middlebox

import (
	"strconv"

	"repro/internal/obs"
)

// mbMetrics holds the middlebox's registered metric handles, resolved once
// at construction so the hot path never takes the registry lock.
type mbMetrics struct {
	reg *obs.Registry

	conns     *obs.Counter
	connErrs  *obs.Counter
	tokens    *obs.Counter
	bytes     *obs.Counter
	alerts    *obs.Counter
	blocked   *obs.Counter
	keys      *obs.Counter
	degraded  *obs.Counter
	fcDrops   *obs.Counter
	unscanned *obs.Counter

	alertsBySID *obs.CounterVec
	shardDepth  *obs.GaugeVec
	timeouts    *obs.CounterVec
	retries     *obs.CounterVec

	scan      *obs.Histogram
	barrier   *obs.Histogram
	handshake *obs.Histogram
	prep      *obs.Histogram
}

func newMBMetrics(r *obs.Registry) *mbMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &mbMetrics{
		reg:       r,
		conns:     r.Counter(obs.MBConnectionsTotal, obs.Help(obs.MBConnectionsTotal)),
		connErrs:  r.Counter(obs.MBConnErrorsTotal, obs.Help(obs.MBConnErrorsTotal)),
		tokens:    r.Counter(obs.MBTokensScannedTotal, obs.Help(obs.MBTokensScannedTotal)),
		bytes:     r.Counter(obs.MBBytesForwarded, obs.Help(obs.MBBytesForwarded)),
		alerts:    r.Counter(obs.MBAlertsTotal, obs.Help(obs.MBAlertsTotal)),
		blocked:   r.Counter(obs.MBBlockedTotal, obs.Help(obs.MBBlockedTotal)),
		keys:      r.Counter(obs.MBKeysRecovered, obs.Help(obs.MBKeysRecovered)),
		degraded:  r.Counter(obs.MBDegradedTotal, obs.Help(obs.MBDegradedTotal)),
		fcDrops:   r.Counter(obs.MBFailClosedDropsTotal, obs.Help(obs.MBFailClosedDropsTotal)),
		unscanned: r.Counter(obs.MBUnscannedBytes, obs.Help(obs.MBUnscannedBytes)),

		alertsBySID: r.CounterVec(obs.MBAlertsBySID, obs.Help(obs.MBAlertsBySID), "sid"),
		shardDepth:  r.GaugeVec(obs.MBShardQueueDepth, obs.Help(obs.MBShardQueueDepth), "shard"),
		timeouts:    r.CounterVec(obs.MBTimeoutsTotal, obs.Help(obs.MBTimeoutsTotal), "step"),
		retries:     r.CounterVec(obs.MBRetriesTotal, obs.Help(obs.MBRetriesTotal), "op"),

		scan:      r.Histogram(obs.MBScanSeconds, obs.Help(obs.MBScanSeconds), obs.LatencyBuckets),
		barrier:   r.Histogram(obs.MBBarrierWaitSeconds, obs.Help(obs.MBBarrierWaitSeconds), obs.LatencyBuckets),
		handshake: r.Histogram(obs.MBHandshakeSeconds, obs.Help(obs.MBHandshakeSeconds), obs.LatencyBuckets),
		prep:      r.Histogram(obs.MBPrepSeconds, obs.Help(obs.MBPrepSeconds), obs.LatencyBuckets),
	}
}

// ruleAlert counts one rule-match alert under its SID label.
func (m *mbMetrics) ruleAlert(sid int) {
	m.alertsBySID.With(strconv.Itoa(sid)).Inc()
}

// timeout counts one deadline expiry under its step label.
func (m *mbMetrics) timeout(step string) {
	m.timeouts.With(step).Inc()
}

// retried counts one backoff retry under its operation label.
func (m *mbMetrics) retried(op string) {
	m.retries.With(op).Inc()
}

// Metrics returns the registry backing the middlebox's counters — the one
// from Config.Metrics, or the private registry created when that was nil.
// Serving obs.AdminMux over it exposes the full middlebox catalog.
func (mb *Middlebox) Metrics() *obs.Registry {
	return mb.met.reg
}
