package middlebox

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/transport"
)

// TestResizeShardsUnderLiveFlows aims the race detector at the resizable
// shard pool: one goroutine cycles SetDetectShards across the whole range
// while sessions (clean and attack) run concurrently. Every session must
// still echo its payload exactly, every attack must still raise its alert
// exactly once (per-flow pinning survives resizes), and the final shard
// count must be what the last resize asked for.
func TestResizeShardsUnderLiveFlows(t *testing.T) {
	h := newHarnessConfigured(t,
		`alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`,
		func(cfg *Config) { cfg.DetectShards = 2; cfg.ShardQueue = 8 })
	if h.mb.DetectShards() != 2 {
		t.Fatalf("DetectShards() = %d before resizing, want 2", h.mb.DetectShards())
	}

	clean := []byte("GET /home.html HTTP/1.1\r\nHost: innocent.example\r\n\r\n")
	attack := []byte("POST /x HTTP/1.1\r\n\r\npayload with attackkw inside it")
	runSession := func(msg []byte) error {
		conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
			Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey},
		})
		if err != nil {
			return fmt.Errorf("dial: %w", err)
		}
		defer conn.Close()
		if _, err := conn.Write(msg); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		if err := conn.CloseWrite(); err != nil {
			return fmt.Errorf("close write: %w", err)
		}
		echoed, err := io.ReadAll(conn)
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		if !bytes.Equal(echoed, msg) {
			return fmt.Errorf("echo mismatch: got %d bytes, want %d", len(echoed), len(msg))
		}
		return nil
	}

	workers, sessionsPerGoro := 4, 2
	if testing.Short() {
		workers, sessionsPerGoro = 2, 1
	}

	// Resizer: cycle 1..5 shards as fast as the pool lets us, for the
	// whole lifetime of the session workload.
	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
				if err := h.mb.SetDetectShards(1 + n%5); err != nil {
					t.Error(err)
					return
				}
				n++
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	var attacks atomic.Int64
	errs := make(chan error, workers*sessionsPerGoro)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < sessionsPerGoro; s++ {
				msg := clean
				if (w+s)%2 == 0 {
					msg = attack
					attacks.Add(1)
				}
				if err := runSession(msg); err != nil {
					errs <- fmt.Errorf("worker %d session %d: %w", w, s, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	resizer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Each attack session matches twice: once on the client→server flow
	// and once on the echoed server→client flow (separate engines).
	want := 2 * int(attacks.Load())
	waitFor(t, func() bool { return countRuleAlerts(h, 7) >= want })
	if got := countRuleAlerts(h, 7); got != want {
		t.Fatalf("got %d rule alerts, want exactly %d (duplicates or losses across resizes)", got, want)
	}

	if err := h.mb.SetDetectShards(3); err != nil {
		t.Fatal(err)
	}
	if got := h.mb.DetectShards(); got != 3 {
		t.Fatalf("DetectShards() = %d after final resize, want 3", got)
	}
}

// countRuleAlerts counts RuleMatch alerts for one SID in the harness log.
func countRuleAlerts(h *harness, sid int) int {
	n := 0
	for _, a := range h.snapshot() {
		if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == sid {
			n++
		}
	}
	return n
}

// TestSetDetectShardsInlineErrors pins the error contract: middleboxes
// running inline detection have no pool to resize.
func TestSetDetectShardsInlineErrors(t *testing.T) {
	h := newHarnessSequential(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`)
	if h.mb.DetectShards() != 0 {
		t.Fatalf("sequential middlebox reports %d shards, want 0", h.mb.DetectShards())
	}
	if err := h.mb.SetDetectShards(4); err == nil {
		t.Fatal("SetDetectShards on an inline middlebox did not fail")
	}
}
