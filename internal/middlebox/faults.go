// Degradation policy and deadlines for the middlebox — the middlebox half
// of the fault-tolerance layer (DESIGN.md §9).
//
// The paper's prototype assumes the detection element never stalls and
// both endpoints stay live. In operation either can fail, and the
// middlebox must then choose between the two classic IDS stances: fail
// closed (sever the connection; no traffic escapes inspection, matching
// the paper's threat model where the middlebox is trusted to enforce
// policy) or fail open (keep forwarding unscanned, preserving
// availability at the cost of coverage). The policy applies at the
// forwarding path, where the detection barrier is the only step that can
// stall on an unhealthy detection element.

package middlebox

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Policy selects what the middlebox does with traffic when detection
// becomes unavailable (a detection barrier exceeding Timeouts.Barrier).
type Policy int

// The degradation policies. The zero value is FailClosed — the paper's
// stance (§2.2: the middlebox enforces inspection), and the safe default.
const (
	// FailClosed severs a connection whose traffic can no longer be
	// scanned. No payload byte is ever forwarded without detection.
	FailClosed Policy = iota
	// FailOpen forwards traffic unscanned when detection is unavailable,
	// counting every unscanned byte (Stats.UnscannedBytes) and logging the
	// degradation. Availability over coverage.
	FailOpen
)

// String names the policy for flags, logs and experiment output.
func (p Policy) String() string {
	switch p {
	case FailClosed:
		return "fail-closed"
	case FailOpen:
		return "fail-open"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a policy name as accepted by the bbmb -policy flag
// ("fail-closed" or "fail-open", case-insensitive).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "fail-closed", "failclosed", "closed":
		return FailClosed, nil
	case "fail-open", "failopen", "open":
		return FailOpen, nil
	}
	return FailClosed, fmt.Errorf("middlebox: unknown policy %q (want fail-closed or fail-open)", s)
}

// NoTimeout disables one Timeouts knob explicitly, mirroring
// transport.NoTimeout (zero knobs select their defaults instead).
const NoTimeout = transport.NoTimeout

// Timeouts bounds the middlebox's blocking steps. Zero fields select the
// documented defaults; NoTimeout disables that knob. Like
// transport.Timeouts it is a plain value, normalized once per middlebox.
type Timeouts struct {
	// Handshake bounds the hello interposition (client hello in, server
	// hello back). Default 10 s.
	Handshake time.Duration
	// Prep bounds one attempt of the rule-preparation protocol per leg —
	// the garbled-circuit transfer plus the OT rounds, the longest setup
	// step. Each retry attempt gets a fresh Prep budget. Default 60 s.
	Prep time.Duration
	// Idle bounds each blocking record read during forwarding. Default
	// NoTimeout: proxied connections legitimately idle between requests.
	Idle time.Duration
	// Write bounds each record write during forwarding. Default 1 m.
	Write time.Duration
	// Barrier bounds the detection barrier — the wait for queued token
	// batches to be scanned before a data or close record may be
	// forwarded. Exceeding it triggers the degradation Policy. Default 30 s.
	Barrier time.Duration
}

// DefaultTimeouts returns the defaults a zero Timeouts resolves to.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		Handshake: 10 * time.Second,
		Prep:      60 * time.Second,
		Idle:      NoTimeout,
		Write:     time.Minute,
		Barrier:   30 * time.Second,
	}
}

// withDefaults resolves zero knobs to their defaults.
func (t Timeouts) withDefaults() Timeouts {
	d := DefaultTimeouts()
	if t.Handshake == 0 {
		t.Handshake = d.Handshake
	}
	if t.Prep == 0 {
		t.Prep = d.Prep
	}
	if t.Idle == 0 {
		t.Idle = d.Idle
	}
	if t.Write == 0 {
		t.Write = d.Write
	}
	if t.Barrier == 0 {
		t.Barrier = d.Barrier
	}
	return t
}

// deadlineFor turns a resolved knob into an absolute deadline, or the
// zero time (no deadline) when the knob is disabled.
func deadlineFor(d time.Duration) time.Time {
	if d > 0 {
		return time.Now().Add(d)
	}
	return time.Time{}
}

// stepTimeout counts and logs a deadline expiry at the named step, then
// returns err wrapped with the step. Non-timeout errors pass through so
// io.EOF and protocol violations keep their identity.
func (mb *Middlebox) stepTimeout(id uint64, step string, err error) error {
	if err == nil || !transport.IsTimeout(err) {
		return err
	}
	mb.met.timeout(step)
	mb.log.Warn("step deadline exceeded", "conn", id, "step", step)
	return fmt.Errorf("middlebox: %s deadline exceeded: %w", step, err)
}

// setDeadline applies an absolute deadline to both legs, ignoring
// transports that do not support deadlines (none of ours; net.Pipe does).
func setDeadline(t time.Time, conns ...net.Conn) {
	for _, c := range conns {
		_ = c.SetDeadline(t)
	}
}

// errString renders a connection's terminal error for the flight recorder:
// "" for nil and io.EOF (ordinary teardown), the message otherwise.
func errString(err error) string {
	if err == nil || errors.Is(err, io.EOF) {
		return ""
	}
	return err.Error()
}

// faultReporter is the transcript interface of netem.FaultConn: legs
// wrapped by the chaos harness report the faults that fired on them.
type faultReporter interface {
	Fired() []netem.Fault
}

// harvestFaults records the injected-fault transcript of either leg as
// flight-recorder events, so a netem-faulted flow always flushes with the
// faults that hit it attached (the chaos suite asserts exactly that).
// Legs that are not FaultConns — every production leg — are skipped.
func (mb *Middlebox) harvestFaults(fr *obs.FlowRecorder, client, server net.Conn) {
	for i, leg := range [...]net.Conn{client, server} {
		rep, ok := leg.(faultReporter)
		if !ok {
			continue
		}
		legName := "client"
		if i == 1 {
			legName = "server"
		}
		for _, f := range rep.Fired() {
			fr.Event(obs.SpanEventFault, legName, f.String())
		}
	}
}
