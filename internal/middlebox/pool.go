// Sharded detection worker pool: the concurrency architecture of the
// middlebox hot path.
//
// The paper's middlebox runs one "detection thread" per connection
// direction (§6); at scale that means thousands of CPU-heavy goroutines
// thrashing schedulers and caches. Instead, forwarding goroutines stay
// I/O-bound and hand token *batches* to a small set of detection shards
// (sized by the internal/tuning calibration by default, resizable at
// runtime via Middlebox.SetDetectShards). Correctness hinges on two
// invariants:
//
//  1. Per-flow pinning. Every flow (connection direction) is pinned to one
//     shard for its lifetime, so its engine — whose §3.2 fragment counters
//     must see tokens in stream order for the implicit counter salts to
//     stay in sync with the sender — is only ever touched by that shard's
//     single worker goroutine. No locks exist on the hot path; engines are
//     confined, not shared. Counter-table resets (RecSalt) travel through
//     the same shard queue, keeping them ordered with the token stream.
//
//  2. Detection barrier. The forwarding goroutine waits for the flow's
//     queued batches to finish before it forwards a data or close record
//     (flow.wait). Rule actions (block) and probable-cause decisions
//     therefore observe every token that preceded the payload, exactly as
//     in the sequential pipeline; token records themselves are forwarded
//     without waiting, which is what lets detection of one record overlap
//     the network read of the next.
//
// Back-pressure: shard queues are bounded channels. A flow whose shard is
// saturated blocks in submit, which stops it from reading more records —
// the TCP receive window then pushes back on the sender, exactly like a
// slow sequential middlebox would.
package middlebox

import (
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
)

// defaultShardQueue is the default per-shard queue bound, in batches. One
// batch is one RecTokens record (≤ maxDataRecord bytes of traffic), so the
// default bounds in-flight detection work per shard to a few MB.
const defaultShardQueue = 64

// detectJob is one unit of shard work: either a token batch or a
// counter-table reset, always for a single flow.
type detectJob struct {
	fl   *flow
	toks []dpienc.EncryptedToken // nil for resets
	salt uint64
	// reset distinguishes a salt reset from an empty token batch.
	reset bool
}

// shardSet is one immutable snapshot of the pool's shards. Resizes
// publish a fresh snapshot via detectPool.set instead of mutating slices
// under live submitters; the channels themselves are shared between
// snapshots, never re-created.
type shardSet struct {
	chans []chan detectJob
	// depth[i] gauges the queue occupancy of shard i (batches enqueued and
	// not yet dequeued), resolved from the registry once at shard start.
	depth []*obs.Gauge
	// ids[i] is the interned Span.Shard pointer for shard i, so the
	// per-batch scan-span path never allocates one.
	ids []*int
}

// detectPool fans detection jobs across shard workers. The shard count is
// resizable at runtime (SetDetectShards): growing starts new workers,
// shrinking only lowers `active` — flows already pinned to a higher shard
// keep it for their lifetime (the §3.2 pinning invariant), so drained
// high shards idle until a grow reuses or close stops them.
type detectPool struct {
	mb         *Middlebox
	queueDepth int

	// set is the current shard snapshot; submit and shardLabel load it
	// lock-free. It only ever grows.
	set atomic.Pointer[shardSet]
	// active is how many shards new flows are pinned across
	// (active <= len(set.chans) always).
	active atomic.Int64

	// mu serializes resize and close (never taken on the hot path).
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// newDetectPool starts `shards` single-goroutine workers (<= 0 means
// GOMAXPROCS) with queue depth `depth` (<= 0 means defaultShardQueue).
func newDetectPool(mb *Middlebox, shards, depth int) *detectPool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = defaultShardQueue
	}
	p := &detectPool{mb: mb, queueDepth: depth}
	p.set.Store(&shardSet{})
	p.grow(shards)
	p.active.Store(int64(shards))
	return p
}

// grow publishes a snapshot with at least n shards, starting workers for
// the new ones. Callers hold p.mu (or are the constructor).
func (p *detectPool) grow(n int) {
	old := p.set.Load()
	if n <= len(old.chans) {
		return
	}
	ns := &shardSet{
		chans: append([]chan detectJob(nil), old.chans...),
		depth: append([]*obs.Gauge(nil), old.depth...),
		ids:   append([]*int(nil), old.ids...),
	}
	for i := len(old.chans); i < n; i++ {
		ch := make(chan detectJob, p.queueDepth)
		ns.chans = append(ns.chans, ch)
		ns.depth = append(ns.depth, p.mb.met.shardDepth.With(strconv.Itoa(i)))
		ns.ids = append(ns.ids, obs.ShardID(i))
		p.wg.Add(1)
		go p.worker(p.mb, i, ns.depth[i], ch)
	}
	p.set.Store(ns)
}

// errPoolClosed reports a resize attempted after Close began.
var errPoolClosed = errors.New("middlebox: detection pool closed")

// resize changes the number of shards new flows are pinned across.
// Existing flows keep their shard — moving a flow would let two workers
// touch its engine and break the §3.2 counter-ordering invariant — so a
// shrink takes effect as pinned flows finish.
func (p *detectPool) resize(n int) error {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPoolClosed
	}
	p.grow(n)
	p.active.Store(int64(n))
	return nil
}

// shardIndex pins a flow to a shard among the currently active ones. Both
// directions of one connection land on different shards when possible, so
// a single busy connection can use two cores.
func (p *detectPool) shardIndex(connID uint64, dir Direction) int {
	i := connID * 2
	if dir == ServerToClient {
		i++
	}
	return int(i % uint64(p.active.Load()))
}

// shardLabel resolves a shard to its interned Span.Shard pointer.
func (p *detectPool) shardLabel(shard int) *int {
	return p.set.Load().ids[shard]
}

// submit enqueues a job on the flow's shard. It blocks when the shard queue
// is full — that is the back-pressure policy. The flow's pending count must
// already be incremented (flow.enqueue does both). The loaded snapshot
// always covers fl.shard: snapshots only grow, and the flow was pinned
// against a snapshot at least as old.
func (p *detectPool) submit(job detectJob) {
	set := p.set.Load()
	set.depth[job.fl.shard].Add(1)
	set.chans[job.fl.shard] <- job
}

// worker drains one shard. The events scratch buffer is reused across
// batches, so steady-state detection allocates only on matches that grow
// it.
func (p *detectPool) worker(mb *Middlebox, shard int, depth *obs.Gauge, ch chan detectJob) {
	defer p.wg.Done()
	var scratch []detect.Event
	for job := range ch {
		depth.Add(-1)
		fl := job.fl
		if job.reset {
			fl.engine.Reset(job.salt)
		} else {
			start := time.Now()
			scratch = fl.engine.ScanBatch(job.toks, scratch[:0])
			mb.observeScan(fl, start, shard, len(job.toks))
			for _, ev := range scratch {
				mb.dispatchEvent(fl, ev)
			}
		}
		// Done before the inflight decrement: a zero inflight load must
		// imply the pending counter already drained (flow.waitTimeout's
		// fast path relies on that order).
		fl.pending.Done()
		fl.inflight.Add(-1)
	}
}

// close shuts the shard queues and waits for the workers to drain every
// queued job — the graceful-drain half of Middlebox.Close.
func (p *detectPool) close() {
	p.mu.Lock()
	p.closed = true
	set := p.set.Load()
	p.mu.Unlock()
	for _, ch := range set.chans {
		close(ch)
	}
	p.wg.Wait()
}
