// Sharded detection worker pool: the concurrency architecture of the
// middlebox hot path.
//
// The paper's middlebox runs one "detection thread" per connection
// direction (§6); at scale that means thousands of CPU-heavy goroutines
// thrashing schedulers and caches. Instead, forwarding goroutines stay
// I/O-bound and hand token *batches* to a fixed set of detection shards
// (default GOMAXPROCS). Correctness hinges on two invariants:
//
//  1. Per-flow pinning. Every flow (connection direction) is pinned to one
//     shard for its lifetime, so its engine — whose §3.2 fragment counters
//     must see tokens in stream order for the implicit counter salts to
//     stay in sync with the sender — is only ever touched by that shard's
//     single worker goroutine. No locks exist on the hot path; engines are
//     confined, not shared. Counter-table resets (RecSalt) travel through
//     the same shard queue, keeping them ordered with the token stream.
//
//  2. Detection barrier. The forwarding goroutine waits for the flow's
//     queued batches to finish before it forwards a data or close record
//     (flow.wait). Rule actions (block) and probable-cause decisions
//     therefore observe every token that preceded the payload, exactly as
//     in the sequential pipeline; token records themselves are forwarded
//     without waiting, which is what lets detection of one record overlap
//     the network read of the next.
//
// Back-pressure: shard queues are bounded channels. A flow whose shard is
// saturated blocks in submit, which stops it from reading more records —
// the TCP receive window then pushes back on the sender, exactly like a
// slow sequential middlebox would.
package middlebox

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
)

// defaultShardQueue is the default per-shard queue bound, in batches. One
// batch is one RecTokens record (≤ maxDataRecord bytes of traffic), so the
// default bounds in-flight detection work per shard to a few MB.
const defaultShardQueue = 64

// detectJob is one unit of shard work: either a token batch or a
// counter-table reset, always for a single flow.
type detectJob struct {
	fl   *flow
	toks []dpienc.EncryptedToken // nil for resets
	salt uint64
	// reset distinguishes a salt reset from an empty token batch.
	reset bool
}

// detectPool fans detection jobs across shard workers.
type detectPool struct {
	shards []chan detectJob
	// depth[i] gauges the queue occupancy of shard i (batches enqueued and
	// not yet dequeued), resolved from the registry once at pool start.
	depth []*obs.Gauge
	// shardIDs[i] is the interned Span.Shard pointer for shard i, so the
	// per-batch scan-span path never allocates one.
	shardIDs []*int
	wg       sync.WaitGroup
}

// newDetectPool starts `shards` single-goroutine workers (0 means
// GOMAXPROCS) with queue depth `depth` (0 means defaultShardQueue).
func newDetectPool(mb *Middlebox, shards, depth int) *detectPool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = defaultShardQueue
	}
	p := &detectPool{
		shards:   make([]chan detectJob, shards),
		depth:    make([]*obs.Gauge, shards),
		shardIDs: make([]*int, shards),
	}
	for i := range p.shards {
		ch := make(chan detectJob, depth)
		p.shards[i] = ch
		p.depth[i] = mb.met.shardDepth.With(strconv.Itoa(i))
		p.shardIDs[i] = obs.ShardID(i)
		p.wg.Add(1)
		go p.worker(mb, i, ch)
	}
	return p
}

// shardIndex pins a flow to a shard. Both directions of one connection land
// on different shards when possible, so a single busy connection can use
// two cores.
func (p *detectPool) shardIndex(connID uint64, dir Direction) int {
	i := connID * 2
	if dir == ServerToClient {
		i++
	}
	return int(i % uint64(len(p.shards)))
}

// submit enqueues a job on the flow's shard. It blocks when the shard queue
// is full — that is the back-pressure policy. The flow's pending count must
// already be incremented (flow.enqueue does both).
func (p *detectPool) submit(job detectJob) {
	p.depth[job.fl.shard].Add(1)
	p.shards[job.fl.shard] <- job
}

// worker drains one shard. The events scratch buffer is reused across
// batches, so steady-state detection allocates only on matches that grow
// it.
func (p *detectPool) worker(mb *Middlebox, shard int, ch chan detectJob) {
	defer p.wg.Done()
	var scratch []detect.Event
	for job := range ch {
		p.depth[shard].Add(-1)
		fl := job.fl
		if job.reset {
			fl.engine.Reset(job.salt)
		} else {
			start := time.Now()
			scratch = fl.engine.ScanBatch(job.toks, scratch[:0])
			mb.observeScan(fl, start, shard, len(job.toks))
			for _, ev := range scratch {
				mb.dispatchEvent(fl, ev)
			}
		}
		// Done before the inflight decrement: a zero inflight load must
		// imply the pending counter already drained (flow.waitTimeout's
		// fast path relies on that order).
		fl.pending.Done()
		fl.inflight.Add(-1)
	}
}

// close shuts the shard queues and waits for the workers to drain every
// queued job — the graceful-drain half of Middlebox.Close.
func (p *detectPool) close() {
	for _, ch := range p.shards {
		close(ch)
	}
	p.wg.Wait()
}
