// Package middlebox implements the BlindBox middlebox (§6): a proxy that
// interposes on BlindBox HTTPS connections, conducts obfuscated rule
// encryption with both endpoints ("garble threads"), runs BlindBox Detect
// over the encrypted token stream ("detection threads"), enforces rule
// actions, and — under Protocol III — feeds decrypted flows to a secondary
// inspection element (the paper's ssldump-wrapper plus Snort/Bro stage).
package middlebox

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/garble"
	"repro/internal/obs"
	"repro/internal/ot"
	"repro/internal/retry"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/transport"
	"repro/internal/tuning"
)

// Direction labels one half of a proxied connection.
type Direction string

// Directions of traffic through the middlebox.
const (
	ClientToServer Direction = "c2s"
	ServerToClient Direction = "s2c"
)

// Alert is one detection report.
type Alert struct {
	// ConnID identifies the proxied connection.
	ConnID uint64
	// Direction is the traffic direction the event occurred on.
	Direction Direction
	// Event is the primary detection event (zero for secondary alerts).
	Event detect.Event
	// Secondary marks alerts produced by the decrypted-flow inspection
	// element (Protocol III only).
	Secondary bool
	// SecondarySIDs lists rules matched by the secondary inspection.
	SecondarySIDs []int
}

// Config configures a Middlebox.
type Config struct {
	// Ruleset is the signed ruleset received from RG.
	Ruleset *rules.SignedRuleset
	// RGPublicKey verifies the ruleset's provenance.
	RGPublicKey ed25519.PublicKey
	// OnAlert receives detection reports; may be nil. It is called from
	// detection goroutines and MUST be safe for concurrent use: with the
	// parallel pipeline, alerts of different connections (and of the two
	// directions of one connection) may be delivered concurrently and in
	// any relative order. Within one connection direction, alerts are
	// always delivered in stream order — the flow is pinned to a single
	// detection shard. A slow OnAlert stalls its shard (back-pressure),
	// never loses alerts.
	OnAlert func(Alert)
	// NewIndex supplies the detection search structure per engine; nil
	// uses the paper's tree.
	NewIndex func() detect.Index
	// Secondary enables the Protocol III decryption element and
	// secondary full-rules inspection of flows with probable cause.
	Secondary bool
	// Sequential disables the sharded detection pool and runs detection
	// inline on the forwarding goroutines, as the seed implementation
	// did. Used by the conformance suite to compare pipelines; production
	// configurations should leave it false.
	Sequential bool
	// DetectShards sets the number of detection worker shards, each one
	// goroutine owning the engines of the flows pinned to it. 0 (the
	// default) self-tunes: the internal/tuning calibration sizes the pool
	// to the effective parallelism, and on hosts where fan-out cannot pay
	// (a single effective proc) detection runs inline on the forwarding
	// goroutines — the sequential fallback, so parallel is never slower
	// than sequential. > 0 forces that shard count; negative forces the
	// legacy GOMAXPROCS sizing. The count is adjustable at runtime with
	// SetDetectShards.
	DetectShards int
	// ShardQueue overrides the per-shard bounded queue depth in token
	// batches (default 64). Smaller values tighten back-pressure.
	ShardQueue int
	// Policy selects the degradation stance when detection becomes
	// unavailable (the detection barrier exceeds Timeouts.Barrier). The
	// zero value is FailClosed — the paper's stance and the safe default.
	Policy Policy
	// Timeouts bounds the middlebox's blocking steps; zero fields select
	// DefaultTimeouts. See the Timeouts type for the step catalog.
	Timeouts Timeouts
	// DialRetry bounds HandleConn's upstream dial with jittered backoff.
	// The zero value retries retry.DefaultAttempts times; set Attempts
	// to 1 to disable retrying.
	DialRetry retry.Policy
	// PrepRetry bounds rule-preparation attempts per endpoint leg. Each
	// attempt restarts the preparation protocol from SubPrepStart (the
	// endpoint's preparation loop is restartable) under a fresh
	// Timeouts.Prep budget. The zero value retries retry.DefaultAttempts
	// times.
	PrepRetry retry.Policy
	// Metrics is the registry the middlebox registers its counters,
	// gauges and histograms in (see the obs.MB* catalog entries). When
	// nil, a private registry backs the counters so Stats keeps working;
	// pass a shared registry to expose them on an admin endpoint.
	Metrics *obs.Registry
	// Trace receives per-flow spans (handshake, prep, scan, forward).
	// Nil disables tracing; Emit must be safe for concurrent use.
	Trace obs.Sink
	// Recorder, when set, interposes a per-flow flight recorder between
	// the span producers and Trace: head-sampled flows (the decision is
	// adopted from the client's hello, or taken here and injected into
	// the forwarded hello) stream their spans; flows ending in an
	// interesting state — alert, block, timeout, degradation, prep-retry
	// exhaustion, injected fault, connection error — flush their whole
	// ring; the rest are dropped. Nil preserves the legacy
	// stream-everything behavior of Trace.
	Recorder *obs.Recorder
	// Logger receives structured connection-lifecycle and error logs.
	// Nil discards them.
	Logger *slog.Logger
}

// Stats aggregates middlebox counters. Every field is monotonic over the
// process lifetime — counters only ever increase, are never reset by
// Close or by connection teardown, and aggregate across all connections
// the middlebox has handled. The fields are snapshots of the same
// obs.Registry counters a /metrics scrape reads (obs.MB*Total), so the
// two views can never disagree beyond the skew of two concurrent loads.
type Stats struct {
	// Connections is the number of connections admitted (obs.MBConnectionsTotal).
	Connections uint64
	// ConnErrors counts connections that ended with a non-EOF error:
	// upstream dial failures, handshake-interposition or rule-preparation
	// failures (obs.MBConnErrorsTotal). Forwarding-phase teardown is not
	// counted — after the handshake, a severed leg is ordinary shutdown.
	ConnErrors uint64
	// TokensScanned counts encrypted tokens received for detection
	// (obs.MBTokensScannedTotal).
	TokensScanned uint64
	// BytesForwarded counts data-record payload bytes relayed
	// (obs.MBBytesForwarded).
	BytesForwarded uint64
	// Alerts counts detection events dispatched, secondary inspection
	// included (obs.MBAlertsTotal).
	Alerts uint64
	// Blocked counts connections severed by a block-action match
	// (obs.MBBlockedTotal).
	Blocked uint64
	// KeysRecovered counts Protocol III SSL keys recovered
	// (obs.MBKeysRecovered).
	KeysRecovered uint64
	// Degraded counts flows switched to fail-open unscanned forwarding
	// after a detection-barrier timeout (obs.MBDegradedTotal). Always zero
	// under FailClosed.
	Degraded uint64
	// FailClosedDrops counts connections severed by the fail-closed policy
	// after a detection-barrier timeout (obs.MBFailClosedDropsTotal).
	FailClosedDrops uint64
	// UnscannedBytes counts data-record payload bytes forwarded without
	// detection by degraded fail-open flows (obs.MBUnscannedBytes). The
	// fail-closed invariant is exactly UnscannedBytes == 0.
	UnscannedBytes uint64
}

// Middlebox proxies BlindBox HTTPS connections and inspects them.
type Middlebox struct {
	cfg       Config
	tmo       Timeouts
	secondary *baseline.IDS
	pool      *detectPool
	connSeq   atomic.Uint64
	met       *mbMetrics
	trace     obs.Sink
	recorder  *obs.Recorder
	log       *slog.Logger

	// lifecycle: Close waits for active connections, then drains the
	// detection pool. setup tracks connections still in their setup phase
	// (handshake interposition or rule preparation) so Close can sever
	// them promptly instead of waiting on a stalled peer; forwarding-phase
	// connections are unregistered and drain gracefully.
	mu     sync.Mutex
	closed bool
	setup  map[uint64][2]net.Conn
	connWG sync.WaitGroup
}

// ErrClosed is returned for connections arriving after Close.
var ErrClosed = errors.New("middlebox: closed")

// New validates the ruleset signature and builds the middlebox.
func New(cfg Config) (*Middlebox, error) {
	if cfg.Ruleset == nil {
		return nil, errors.New("middlebox: nil ruleset")
	}
	if cfg.RGPublicKey != nil && !rules.Verify(cfg.RGPublicKey, cfg.Ruleset) {
		return nil, errors.New("middlebox: ruleset signature invalid")
	}
	mb := &Middlebox{
		cfg:      cfg,
		tmo:      cfg.Timeouts.withDefaults(),
		met:      newMBMetrics(cfg.Metrics),
		trace:    cfg.Trace,
		recorder: cfg.Recorder,
		log:      obs.OrNop(cfg.Logger),
		setup:    make(map[uint64][2]net.Conn),
	}
	if cfg.Secondary {
		mb.secondary = baseline.New(cfg.Ruleset.Ruleset)
	}
	if !cfg.Sequential {
		shards := cfg.DetectShards
		if shards == 0 {
			shards = tuning.Auto().DetectShards
		}
		// A tuned decision of <= 1 shard means fan-out cannot pay here:
		// run detection inline (pool == nil), exactly like Sequential
		// mode, rather than paying queue handoffs to a single worker.
		if shards != 0 {
			mb.pool = newDetectPool(mb, shards, cfg.ShardQueue)
		}
	}
	return mb, nil
}

// SetDetectShards resizes the detection pool at runtime to n shards
// (values below 1 are clamped to 1). Only new flows are re-balanced:
// existing flows keep their pinned shard so the §3.2 per-flow ordering
// invariant holds across the resize. It fails on middleboxes running
// inline detection (Sequential mode or a self-tuned sequential fallback),
// which have no pool to resize, and after Close.
func (mb *Middlebox) SetDetectShards(n int) error {
	if mb.pool == nil {
		return errors.New("middlebox: inline detection (no shard pool) cannot be resized")
	}
	return mb.pool.resize(n)
}

// DetectShards reports how many detection shards new flows are currently
// pinned across; 0 means detection runs inline on the forwarding
// goroutines.
func (mb *Middlebox) DetectShards() int {
	if mb.pool == nil {
		return 0
	}
	return int(mb.pool.active.Load())
}

// beginConn registers one active connection, failing after Close. The
// legs are tracked as setup-phase conns (under the same lock, so Close
// can never miss a just-admitted connection) until endSetup.
func (mb *Middlebox) beginConn(id uint64, client, server net.Conn) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.connWG.Add(1)
	mb.setup[id] = [2]net.Conn{client, server}
	return nil
}

// endSetup unregisters a connection's setup-phase legs: from here on,
// Close waits for the connection to drain instead of severing it.
func (mb *Middlebox) endSetup(id uint64) {
	mb.mu.Lock()
	delete(mb.setup, id)
	mb.mu.Unlock()
}

// Close drains the middlebox: it stops admitting connections, severs
// connections still in their setup phase (a stalled handshake or rule
// preparation must not wedge shutdown), waits for forwarding-phase
// connections to finish (callers should close their listeners first, or
// kill connections, so this terminates), then drains the detection shards
// so every queued batch is scanned and every alert delivered. Close is
// idempotent.
func (mb *Middlebox) Close() error {
	mb.mu.Lock()
	wasClosed := mb.closed
	mb.closed = true
	severed := make([][2]net.Conn, 0, len(mb.setup))
	for _, legs := range mb.setup {
		severed = append(severed, legs)
	}
	mb.mu.Unlock()
	if wasClosed {
		return nil
	}
	for _, legs := range severed {
		_ = legs[0].Close()
		_ = legs[1].Close()
	}
	mb.connWG.Wait()
	if mb.pool != nil {
		mb.pool.close()
	}
	return nil
}

// Stats returns a snapshot of the counters (see the Stats type for the
// semantics). It reads the same registry handles /metrics exposes.
func (mb *Middlebox) Stats() Stats {
	return Stats{
		Connections:     mb.met.conns.Value(),
		ConnErrors:      mb.met.connErrs.Value(),
		TokensScanned:   mb.met.tokens.Value(),
		BytesForwarded:  mb.met.bytes.Value(),
		Alerts:          mb.met.alerts.Value(),
		Blocked:         mb.met.blocked.Value(),
		KeysRecovered:   mb.met.keys.Value(),
		Degraded:        mb.met.degraded.Value(),
		FailClosedDrops: mb.met.fcDrops.Value(),
		UnscannedBytes:  mb.met.unscanned.Value(),
	}
}

// Serve accepts connections on ln and proxies each to forwardAddr until
// ln is closed. Connection-level failures are not fatal to the middlebox:
// they are logged (Config.Logger) and counted (Stats.ConnErrors) by the
// handling goroutine, never returned from Serve.
func (mb *Middlebox) Serve(ln net.Listener, forwardAddr string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			// HandleConn has already counted and logged real failures with
			// the connection ID attached; EOF and post-Close arrivals are
			// ordinary shutdown.
			if err := mb.HandleConn(conn, forwardAddr); err != nil &&
				!errors.Is(err, io.EOF) && !errors.Is(err, ErrClosed) {
				mb.log.Debug("connection closed with error",
					"remote", conn.RemoteAddr().String(), "err", err)
			}
		}()
	}
}

// HandleConn proxies one client connection to forwardAddr, performing the
// full BlindBox lifecycle: handshake interposition, rule preparation,
// detection and forwarding.
func (mb *Middlebox) HandleConn(client net.Conn, forwardAddr string) error {
	defer client.Close()
	var server net.Conn
	pol := mb.cfg.DialRetry
	if pol.Notify == nil {
		pol.Notify = func(attempt int, err error, backoff time.Duration) {
			if backoff > 0 {
				mb.met.retried("dial")
				mb.log.Warn("upstream dial failed, retrying",
					"addr", forwardAddr, "attempt", attempt, "backoff", backoff, "err", err)
			}
		}
	}
	err := pol.Do(nil, func(int) error {
		var derr error
		server, derr = net.DialTimeout("tcp", forwardAddr, mb.dialTimeout())
		return derr
	})
	if err != nil {
		mb.met.connErrs.Inc()
		mb.log.Error("upstream dial failed", "addr", forwardAddr, "err", err)
		return fmt.Errorf("middlebox: dialing server: %w", err)
	}
	defer server.Close()
	return mb.Interpose(client, server)
}

// dialTimeout bounds one upstream connect attempt with the handshake
// knob (a disabled knob means an OS-default connect timeout).
func (mb *Middlebox) dialTimeout() time.Duration {
	if mb.tmo.Handshake > 0 {
		return mb.tmo.Handshake
	}
	return 0
}

// Interpose runs the middlebox over two established transports. A non-EOF
// failure before the forwarding phase is counted in Stats.ConnErrors and
// logged with the connection ID.
func (mb *Middlebox) Interpose(client, server net.Conn) error {
	id := mb.connSeq.Add(1)
	if err := mb.beginConn(id, client, server); err != nil {
		return err
	}
	defer mb.connWG.Done()
	defer mb.endSetup(id)
	mb.met.conns.Inc()
	mb.log.Debug("connection admitted", "conn", id)
	err := mb.interpose(id, client, server)
	if err != nil && !errors.Is(err, io.EOF) {
		mb.met.connErrs.Inc()
		mb.log.Error("connection failed", "conn", id, "err", err)
	}
	return err
}

func (mb *Middlebox) interpose(id uint64, client, server net.Conn) (retErr error) {
	// 1. Handshake interposition: mark MBPresent both ways, bounded by the
	// handshake deadline on both legs. When tracing, the client's trace
	// context is adopted from its hello (so middlebox spans become children
	// of the client's connection root); when only the middlebox traces, it
	// roots the trace itself and injects the context into the forwarded
	// hello so the server can still join (DESIGN.md §8).
	hsStart := time.Now()
	setDeadline(deadlineFor(mb.tmo.Handshake), client, server)
	hello, flowCtx, ownRoot, head, err := mb.interposeHello(client, server)
	setDeadline(time.Time{}, client, server)
	if err != nil {
		return mb.stepTimeout(id, "handshake", err)
	}
	fr := mb.recorder.BeginFlowSampled(id, obs.PartyMB, flowCtx, head)
	sink := mb.trace
	if fr != nil {
		sink = fr
	}
	if fr != nil {
		// Registered before the conn-span defer so it runs after it
		// (LIFO): the connection span and any harvested injected faults
		// land in the ring before End flushes or drops it.
		defer func() {
			mb.harvestFaults(fr, client, server)
			fr.End(errString(retErr))
		}()
	}
	if sink != nil && ownRoot {
		// The middlebox owns the trace root: emit the conn span covering
		// the whole interposition when it ends.
		defer func() {
			sp := obs.Span{
				Flow: id, Party: obs.PartyMB, Name: obs.SpanConn,
				Start: hsStart.UnixNano(), Dur: int64(time.Since(hsStart)),
				Err: errString(retErr),
			}
			flowCtx.Stamp(&sp)
			sink.Emit(sp)
		}()
	}
	hsSp := obs.Span{Flow: id, Party: obs.PartyMB, Name: obs.SpanHandshake}
	flowCtx.Child().Stamp(&hsSp)
	mb.observeSpan(sink, hsSp, hsStart, mb.met.handshake)

	cfg := core.Config{
		Protocol: hello.Protocol,
		Mode:     tokenize.Mode(hello.Mode),
		Salt0:    hello.Salt0,
	}

	// 2. Rule preparation with both endpoints (the "garble threads").
	prepStart := time.Now()
	prepCtx := flowCtx.Child()
	req := core.BuildRequest(mb.cfg.Ruleset, cfg.Mode)
	prep, err := ruleprep.NewMiddlebox(req)
	if err != nil {
		return err
	}
	prep.SetTrace(sink, prepCtx, id)
	if sink != nil {
		// Building the rule-encryption circuit F dominates NewMiddlebox and
		// is part of the §3.3 rule-encryption step; without this span the
		// head of the preparation window would be unattributed.
		sp := obs.Span{
			Flow: id, Party: obs.PartyMB, Name: obs.SpanPrepRuleEnc,
			Start: prepStart.UnixNano(), Dur: int64(time.Since(prepStart)),
			Gates: prep.CircuitANDs(), Rows: len(req.Fragments),
		}
		prepCtx.Child().Stamp(&sp)
		sink.Emit(sp)
	}
	var (
		jobsC, jobsS     []*ruleprep.FragmentJob
		labelsC, labelsS [][]bbcrypto.Block
		prepErr          [2]error
		wg               sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		jobsC, labelsC, prepErr[0] = mb.runPrepRetry(id, client, prep, prepCtx, "client", sink, fr)
	}()
	go func() {
		defer wg.Done()
		jobsS, labelsS, prepErr[1] = mb.runPrepRetry(id, server, prep, prepCtx, "server", sink, fr)
	}()
	wg.Wait()
	for _, e := range prepErr {
		if e != nil {
			return fmt.Errorf("middlebox: rule preparation: %w", mb.stepTimeout(id, "prep", e))
		}
	}

	keys := make(detect.TokenKeys)
	for i := range jobsC {
		key, err := prep.VerifyAndEvaluate(i, jobsC[i], jobsS[i], labelsC[i], labelsS[i])
		if err == ruleprep.ErrUnauthorized {
			continue
		}
		if err != nil {
			return err
		}
		keys[req.Fragments[i]] = key
	}

	for _, leg := range []net.Conn{client, server} {
		if err := mb.writeRecordT(leg, transport.RecGarble, []byte{transport.SubPrepDone}); err != nil {
			return mb.stepTimeout(id, "write", err)
		}
	}
	prepSp := obs.Span{Flow: id, Party: obs.PartyMB, Name: obs.SpanPrep}
	prepCtx.Stamp(&prepSp)
	mb.observeSpan(sink, prepSp, prepStart, mb.met.prep)

	// Setup is done: from here on Close drains instead of severing.
	mb.endSetup(id)

	// 3. Detection: one forwarding goroutine per direction. With the
	// parallel pipeline the forwarding goroutines stay I/O-bound and the
	// scanning happens on the flows' detection shards (see pool.go).
	var idx1, idx2 detect.Index
	if mb.cfg.NewIndex != nil {
		idx1, idx2 = mb.cfg.NewIndex(), mb.cfg.NewIndex()
	}
	var fwdWG sync.WaitGroup
	fwdWG.Add(2)
	var stopOnce sync.Once
	kill := func() {
		stopOnce.Do(func() {
			_ = client.Close()
			_ = server.Close()
		})
	}
	flC := mb.newFlow(id, ClientToServer, cfg, keys, idx1, kill)
	flS := mb.newFlow(id, ServerToClient, cfg, keys, idx2, kill)
	// Forward-span contexts are fixed before the goroutines start; scan
	// spans on the detection shards parent to their direction's forward
	// span, so per-batch detection shows up under the right direction.
	flC.tctx = flowCtx.Child()
	flS.tctx = flowCtx.Child()
	flC.sink, flC.fr = sink, fr
	flS.sink, flS.fr = sink, fr
	go func() {
		defer fwdWG.Done()
		mb.forward(client, server, flC)
	}()
	go func() {
		defer fwdWG.Done()
		mb.forward(server, client, flS)
	}()
	fwdWG.Wait()
	return nil
}

// interposeHello relays the hello exchange, marking MBPresent both ways,
// and returns the parsed client hello plus the flow's trace context.
// Deadlines are the caller's job.
//
// The returned SpanCtx is the parent context middlebox spans hang off:
// the client's connection root when the client sent trace context, or a
// fresh root owned by the middlebox (ownRoot true) when only the
// middlebox traces — in which case the context is injected into the
// forwarded hello so the server joins the same trace. head is the flow's
// head-sampling decision: adopted from the client's hello when present,
// otherwise taken by the middlebox's recorder and injected into the
// forwarded hello so the server agrees.
func (mb *Middlebox) interposeHello(client, server net.Conn) (transport.Hello, obs.SpanCtx, bool, bool, error) {
	var (
		flowCtx obs.SpanCtx
		ownRoot bool
		head    bool
	)
	fail := func(err error) (transport.Hello, obs.SpanCtx, bool, bool, error) {
		return transport.Hello{}, obs.SpanCtx{}, false, false, err
	}
	typ, body, err := transport.ReadRecord(client)
	if err != nil {
		return fail(err)
	}
	if typ != transport.RecHello {
		return fail(fmt.Errorf("middlebox: expected client hello, got %d", typ))
	}
	hello, err := transport.UnmarshalHello(body)
	if err != nil {
		return fail(err)
	}
	if mb.trace != nil || mb.recorder != nil {
		if hello.HasTrace {
			flowCtx = obs.JoinSpanCtx(obs.TraceID(hello.TraceID), hello.TraceSpan)
		} else {
			flowCtx = obs.NewSpanCtx()
			ownRoot = true
			if body, err = transport.AppendHelloTrace(body, flowCtx.Trace, flowCtx.Span); err != nil {
				return fail(err)
			}
		}
		if mb.recorder != nil {
			if hello.HasSample {
				head = hello.Sampled
			} else {
				head = mb.recorder.Decide(flowCtx.Trace)
				if body, err = transport.AppendHelloSampled(body, head); err != nil {
					return fail(err)
				}
			}
		}
	}
	if err := transport.SetMBPresent(body); err != nil {
		return fail(err)
	}
	if err := transport.WriteRecord(server, transport.RecHello, body); err != nil {
		return fail(err)
	}
	typ, body, err = transport.ReadRecord(server)
	if err != nil {
		return fail(err)
	}
	if typ != transport.RecHelloReply {
		return fail(fmt.Errorf("middlebox: expected server hello, got %d", typ))
	}
	if err := transport.SetMBPresent(body); err != nil {
		return fail(err)
	}
	if err := transport.WriteRecord(client, transport.RecHelloReply, body); err != nil {
		return fail(err)
	}
	return hello, flowCtx, ownRoot, head, nil
}

// runPrepRetry runs the preparation protocol over one leg under
// Config.PrepRetry: each attempt restarts from SubPrepStart (the
// endpoint's preparation loop is restartable) with a fresh Timeouts.Prep
// deadline. Retries are counted (obs.MBRetriesTotal, op=prep) and logged.
func (mb *Middlebox) runPrepRetry(id uint64, leg net.Conn, prep *ruleprep.Middlebox, prepCtx obs.SpanCtx, legName string, sink obs.Sink, fr *obs.FlowRecorder) ([]*ruleprep.FragmentJob, [][]bbcrypto.Block, error) {
	var (
		jobs   []*ruleprep.FragmentJob
		labels [][]bbcrypto.Block
	)
	pol := mb.cfg.PrepRetry
	if pol.Notify == nil {
		pol.Notify = func(attempt int, err error, backoff time.Duration) {
			if backoff > 0 {
				mb.met.retried("prep")
				fr.Event(obs.SpanEventRetry, legName, "prep")
				mb.log.Warn("rule preparation failed, retrying",
					"conn", id, "attempt", attempt, "backoff", backoff, "err", err)
			}
		}
	}
	err := pol.Do(nil, func(int) error {
		setDeadline(deadlineFor(mb.tmo.Prep), leg)
		defer setDeadline(time.Time{}, leg)
		var aerr error
		jobs, labels, aerr = mb.runPrep(id, leg, prep, prepCtx, legName, sink)
		return aerr
	})
	return jobs, labels, err
}

// writeRecordT writes one record under the Write deadline.
func (mb *Middlebox) writeRecordT(c net.Conn, typ transport.RecordType, body []byte) error {
	_ = c.SetWriteDeadline(deadlineFor(mb.tmo.Write))
	err := transport.WriteRecord(c, typ, body)
	_ = c.SetWriteDeadline(time.Time{})
	return err
}

// runPrep executes the MB side of the preparation protocol over one leg.
// When tracing, it breaks the leg into the §3.3 setup sub-spans — labels
// (garbled rows + endpoint-label transfer, which includes the wait for the
// endpoint's garbling), ot_base (base-OT round) and ot_ext (IKNP extension
// + unmask) — all children of the flow's prep span, Dir marking the leg.
func (mb *Middlebox) runPrep(id uint64, leg net.Conn, prep *ruleprep.Middlebox, prepCtx obs.SpanCtx, legName string, sink obs.Sink) ([]*ruleprep.FragmentJob, [][]bbcrypto.Block, error) {
	emit := func(name string, start time.Time, fill func(*obs.Span)) {
		if sink == nil {
			return
		}
		sp := obs.Span{
			Flow: id, Dir: legName, Party: obs.PartyMB, Name: name,
			Start: start.UnixNano(), Dur: int64(time.Since(start)),
		}
		if fill != nil {
			fill(&sp)
		}
		prepCtx.Child().Stamp(&sp)
		sink.Emit(sp)
	}
	n := prep.NumFragments()
	start := make([]byte, 5)
	start[0] = transport.SubPrepStart
	binary.BigEndian.PutUint32(start[1:], uint32(n))
	if err := transport.WriteRecord(leg, transport.RecGarble, start); err != nil {
		return nil, nil, err
	}
	labStart := time.Now()
	var labBytes, labGates, labRows int

	readSub := func(want byte) ([]byte, error) {
		typ, body, err := transport.ReadRecord(leg)
		if err != nil {
			return nil, err
		}
		if typ != transport.RecGarble || len(body) < 1 || body[0] != want {
			return nil, fmt.Errorf("middlebox: expected prep message %d", want)
		}
		return body[1:], nil
	}

	jobs := make([]*ruleprep.FragmentJob, n)
	for i := 0; i < n; i++ {
		payload, err := readSub(transport.SubCircuit)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) < 8 {
			return nil, nil, errors.New("middlebox: short circuit message")
		}
		idx := int(binary.BigEndian.Uint32(payload))
		blobLen := int(binary.BigEndian.Uint32(payload[4:]))
		payload = payload[8:]
		if len(payload) < blobLen {
			return nil, nil, errors.New("middlebox: truncated circuit blob")
		}
		g, err := garble.Unmarshal(payload[:blobLen])
		if err != nil {
			return nil, nil, err
		}
		epLabels, err := transport.UnmarshalBlocks(payload[blobLen:])
		if err != nil {
			return nil, nil, err
		}
		if idx < 0 || idx >= n || jobs[idx] != nil {
			return nil, nil, errors.New("middlebox: bad circuit index")
		}
		st := g.Stats()
		labBytes += 8 + len(payload)
		labGates += st.Gates
		labRows += st.TableRows
		jobs[idx] = ruleprep.NewFragmentJob(idx, g, epLabels)
	}
	emit(obs.SpanPrepLabels, labStart, func(sp *obs.Span) {
		sp.Bytes, sp.Gates, sp.Rows = labBytes, labGates, labRows
	})

	// OT batch over all fragments' choice bits.
	obStart := time.Now()
	recv, msgAs, err := ot.NewExtReceiver()
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WriteRecord(leg, transport.RecGarble,
		append([]byte{transport.SubOTMsgA}, transport.MarshalByteSlices(msgAs)...)); err != nil {
		return nil, nil, err
	}
	payload, err := readSub(transport.SubOTMsgB)
	if err != nil {
		return nil, nil, err
	}
	msgBs, err := transport.UnmarshalByteSlices(payload)
	if err != nil {
		return nil, nil, err
	}
	emit(obs.SpanPrepOTBase, obStart, func(sp *obs.Span) { sp.Bytes = len(payload) })
	oeStart := time.Now()
	var choices []bool
	for i := 0; i < n; i++ {
		choices = append(choices, prep.Choices(i)...)
	}
	u, err := recv.Extend(msgBs, choices)
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WriteRecord(leg, transport.RecGarble,
		append([]byte{transport.SubOTU}, transport.MarshalByteSlices(u)...)); err != nil {
		return nil, nil, err
	}
	payload, err = readSub(transport.SubOTMasked)
	if err != nil {
		return nil, nil, err
	}
	flat, err := transport.UnmarshalBlocks(payload)
	if err != nil {
		return nil, nil, err
	}
	if len(flat) != 2*len(choices) {
		return nil, nil, errors.New("middlebox: masked pair count mismatch")
	}
	pairs := make([][2]bbcrypto.Block, len(choices))
	for j := range pairs {
		pairs[j][0], pairs[j][1] = flat[2*j], flat[2*j+1]
	}
	labels, err := recv.Receive(pairs, choices)
	if err != nil {
		return nil, nil, err
	}
	emit(obs.SpanPrepOTExt, oeStart, func(sp *obs.Span) {
		st := recv.Stats()
		sp.Bytes = st.CorrectionBytes + st.MaskedBytes
		sp.Rows = st.Wires
	})
	perFrag := make([][]bbcrypto.Block, n)
	for i := 0; i < n; i++ {
		perFrag[i] = labels[i*256 : (i+1)*256]
	}
	return jobs, perFrag, nil
}

// flow is per-direction detection state. With the parallel pipeline its
// mutable fields are confined: the engine and the probable-cause state are
// touched either by the flow's single detection shard (during jobs) or by
// the forwarding goroutine strictly after a detection barrier (flow.wait),
// never concurrently.
type flow struct {
	id     uint64
	dir    Direction
	cfg    core.Config
	engine *detect.Engine
	// kill severs both legs of the connection (idempotent).
	kill func()
	// tctx is the trace context of this direction's forward span; scan
	// spans stamp children of it. Written once before the forwarding
	// goroutine starts, then read-only (shards read it concurrently).
	tctx obs.SpanCtx
	// sink receives this flow's spans: the connection's flight recorder
	// when one exists, else the middlebox-wide trace sink, else nil.
	// Written once with tctx, then read-only.
	sink obs.Sink
	// fr is the connection's flight recorder (nil without one); events —
	// alerts, blocks, timeouts, degradation — are recorded through it so
	// the flow's terminal state drives tail sampling. All FlowRecorder
	// methods are nil-safe.
	fr *obs.FlowRecorder
	// shard is the detection shard this flow is pinned to (parallel mode).
	shard int
	// pending counts queued detection jobs; wait() is the barrier.
	pending sync.WaitGroup
	// inflight mirrors pending as a readable count: incremented before
	// pending.Add, decremented after pending.Done. A zero load means the
	// barrier is already clear, so waitTimeout can skip its waiter
	// goroutine on the (common) idle-barrier fast path.
	inflight atomic.Int64
	// degraded marks a fail-open flow whose detection barrier timed out:
	// it stops enqueueing and forwards unscanned. Only the forwarding
	// goroutine touches it.
	degraded bool
	// blocked is set (once) when a block-action rule matched.
	blocked atomic.Bool
	// scratch is the sequential-mode event buffer, reused across batches.
	scratch []detect.Event

	// Protocol III decryption element state.
	recovered  bool
	sslKey     bbcrypto.Block
	ciphertext [][]byte // buffered data records awaiting a key
	plaintext  []byte   // decrypted stream for secondary inspection
	seq        uint64
	dirByte    byte
}

// maxBuffered bounds probable-cause buffering per direction.
const (
	maxBufferedRecords = 4096
	maxPlaintextBytes  = 4 << 20
)

func (mb *Middlebox) newFlow(id uint64, dir Direction, cfg core.Config, keys detect.TokenKeys, idx detect.Index, kill func()) *flow {
	fl := &flow{
		id:   id,
		dir:  dir,
		cfg:  cfg,
		kill: kill,
		engine: detect.NewEngine(mb.cfg.Ruleset.Ruleset, keys, detect.Config{
			Mode:     cfg.Mode,
			Protocol: cfg.Protocol,
			Salt0:    cfg.Salt0,
			Index:    idx,
		}),
	}
	if dir == ServerToClient {
		fl.dirByte = 1
	}
	if mb.pool != nil {
		fl.shard = mb.pool.shardIndex(id, dir)
	}
	return fl
}

// enqueue hands a detection job for this flow to its shard.
func (fl *flow) enqueue(p *detectPool, job detectJob) {
	// The submitting goroutine is the only one calling wait(), so the
	// Add-before-Wait ordering WaitGroup requires holds by program order.
	fl.inflight.Add(1)
	fl.pending.Add(1)
	p.submit(job)
}

// wait is the detection barrier: it returns once every queued batch of this
// flow has been scanned and its events dispatched.
func (fl *flow) wait() {
	fl.pending.Wait()
}

// waitTimeout is the bounded barrier: it returns true once the flow's
// queued batches drain, false if d elapses first. d <= 0 waits forever.
// A timed-out flow must stop enqueueing (degrade or die) — the abandoned
// waiter goroutine still holds a pending.Wait and a later Add from zero
// would race it.
func (fl *flow) waitTimeout(d time.Duration) bool {
	if fl.inflight.Load() == 0 {
		return true
	}
	if d <= 0 {
		fl.wait()
		return true
	}
	done := make(chan struct{})
	go func() {
		fl.pending.Wait()
		close(done)
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

// forward relays records from src to dst while feeding the token channel to
// detection. In parallel mode token batches are queued on the flow's shard
// and only data/close records wait for detection (the barrier); in
// sequential mode scanning happens inline, as in the paper's per-connection
// detection threads. Read/write errors here are ordinary teardown (one
// severed leg kills the other), so they are logged at debug level and not
// counted as connection errors.
func (mb *Middlebox) forward(src, dst net.Conn, fl *flow) {
	fwdStart := time.Now()
	fwdBytes := 0
	if fl.sink != nil {
		defer func() {
			sp := obs.Span{
				Flow: fl.id, Dir: string(fl.dir), Party: obs.PartyMB, Name: obs.SpanForward,
				Start: fwdStart.UnixNano(), Dur: int64(time.Since(fwdStart)),
				Bytes: fwdBytes,
			}
			fl.tctx.Stamp(&sp)
			fl.sink.Emit(sp)
		}()
	}
	for {
		_ = src.SetReadDeadline(deadlineFor(mb.tmo.Idle))
		typ, body, err := transport.ReadRecord(src)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				if transport.IsTimeout(err) {
					mb.met.timeout("idle")
					fl.fr.Event(obs.SpanEventTimeout, string(fl.dir), "idle")
					mb.log.Warn("idle deadline exceeded", "conn", fl.id, "dir", fl.dir)
				}
				mb.log.Debug("forward read ended", "conn", fl.id, "dir", fl.dir, "err", err)
			}
			fl.kill()
			return
		}
		switch typ {
		case transport.RecSalt:
			if len(body) == 8 && !fl.degraded {
				salt := binary.BigEndian.Uint64(body)
				if mb.pool != nil {
					// Resets ride the shard queue so they stay ordered
					// with the surrounding token batches.
					fl.enqueue(mb.pool, detectJob{fl: fl, salt: salt, reset: true})
				} else {
					fl.engine.Reset(salt)
				}
			}
		case transport.RecTokens:
			toks, err := transport.UnmarshalTokens(body, fl.cfg.Protocol == dpienc.ProtocolIII)
			if err != nil {
				mb.log.Debug("forward read ended", "conn", fl.id, "dir", fl.dir, "err", err)
				fl.kill()
				return
			}
			if fl.degraded {
				// Detection is unavailable and the engine's counters are
				// out of sync; the record is forwarded unscanned below.
				break
			}
			mb.met.tokens.Add(uint64(len(toks)))
			if mb.pool != nil {
				fl.enqueue(mb.pool, detectJob{fl: fl, toks: toks})
			} else {
				// Inline scan: Shard -1 marks sequential-mode scan spans.
				scanStart := time.Now()
				fl.scratch = fl.engine.ScanBatch(toks, fl.scratch[:0])
				mb.observeScan(fl, scanStart, -1, len(toks))
				for _, ev := range fl.scratch {
					mb.dispatchEvent(fl, ev)
				}
			}
		case transport.RecData:
			// Detection barrier: the block policy and the probable-cause
			// element must have seen every token preceding this payload.
			if !mb.barrierWait(fl) {
				return
			}
			mb.met.bytes.Add(uint64(len(body)))
			fwdBytes += len(body)
			if fl.degraded {
				mb.met.unscanned.Add(uint64(len(body)))
			} else if mb.cfg.Secondary && fl.cfg.Protocol == dpienc.ProtocolIII {
				mb.captureData(fl, body)
			}
		case transport.RecClose:
			if !mb.barrierWait(fl) {
				return
			}
			if !fl.degraded && fl.recovered && len(fl.plaintext) > 0 {
				mb.secondaryInspect(fl)
			}
		}
		if fl.blocked.Load() {
			// dispatchEvent already severed the connection and counted the
			// block; do not forward the record that completed the match.
			return
		}
		_ = dst.SetWriteDeadline(deadlineFor(mb.tmo.Write))
		err = transport.WriteRecord(dst, typ, body)
		_ = dst.SetWriteDeadline(time.Time{})
		if err != nil {
			if transport.IsTimeout(err) {
				mb.met.timeout("write")
				fl.fr.Event(obs.SpanEventTimeout, string(fl.dir), "write")
				mb.log.Warn("write deadline exceeded", "conn", fl.id, "dir", fl.dir)
			}
			mb.log.Debug("forward write ended", "conn", fl.id, "dir", fl.dir, "err", err)
			fl.kill()
			return
		}
	}
}

// barrierWait runs the detection barrier, bounded by Timeouts.Barrier, and
// reports whether forwarding may continue. On a barrier timeout it applies
// the degradation policy: FailOpen marks the flow degraded (the record is
// then forwarded unscanned and counted) and returns true; FailClosed
// severs the connection and returns false. The stall is timed in parallel
// mode only (sequential mode has no queued work; the histogram would only
// record the clock's noise floor).
func (mb *Middlebox) barrierWait(fl *flow) bool {
	if fl.degraded {
		// A degraded flow stopped enqueueing; nothing to wait for.
		return true
	}
	if mb.pool == nil {
		fl.wait()
		return true
	}
	start := time.Now()
	if fl.waitTimeout(mb.tmo.Barrier) {
		mb.met.barrier.Observe(time.Since(start).Seconds())
		return true
	}
	mb.met.timeout("barrier")
	fl.fr.Event(obs.SpanEventTimeout, string(fl.dir), "barrier")
	if mb.cfg.Policy == FailOpen {
		fl.degraded = true
		mb.met.degraded.Inc()
		fl.fr.Event(obs.SpanEventDegraded, string(fl.dir), "fail-open")
		mb.log.Warn("detection unavailable, degrading to fail-open forwarding",
			"conn", fl.id, "dir", fl.dir, "barrier", mb.tmo.Barrier)
		return true
	}
	mb.met.fcDrops.Inc()
	fl.fr.Event(obs.SpanEventDegraded, string(fl.dir), "fail-closed-drop")
	mb.log.Warn("detection unavailable, severing connection (fail-closed)",
		"conn", fl.id, "dir", fl.dir, "barrier", mb.tmo.Barrier)
	fl.kill()
	return false
}

// seqShardID is the interned Span.Shard value of inline (sequential-mode)
// scans, so the per-batch span path never allocates a fresh *int.
var seqShardID = obs.ShardID(-1)

// shardID resolves a shard number to its interned Span.Shard pointer.
//
//bb:hotpath
func (mb *Middlebox) shardID(shard int) *int {
	if shard < 0 || mb.pool == nil {
		return seqShardID
	}
	return mb.pool.shardLabel(shard)
}

// observeScan records one ScanBatch in the scan histogram and, when tracing,
// as a scan span. shard is -1 for inline (sequential-mode) scans. This runs
// once per token batch on the detection shards — the hottest span-producing
// path in the process — so it must not allocate.
//
//bb:hotpath
func (mb *Middlebox) observeScan(fl *flow, start time.Time, shard, tokens int) {
	dur := time.Since(start)
	mb.met.scan.Observe(dur.Seconds())
	if fl.sink != nil {
		sp := obs.Span{
			Flow: fl.id, Dir: string(fl.dir), Party: obs.PartyMB,
			Name: obs.SpanScan, Shard: mb.shardID(shard),
			Start: start.UnixNano(), Dur: int64(dur), Tokens: tokens,
		}
		fl.tctx.Child().Stamp(&sp)
		fl.sink.Emit(sp)
	}
}

// observeSpan records dur-since-start in h and, when sink is non-nil,
// emits sp with the timing filled in.
func (mb *Middlebox) observeSpan(sink obs.Sink, sp obs.Span, start time.Time, h *obs.Histogram) {
	dur := time.Since(start)
	h.Observe(dur.Seconds())
	if sink != nil {
		sp.Start = start.UnixNano()
		sp.Dur = int64(dur)
		sink.Emit(sp)
	}
}

// dispatchEvent reports one detection event and enforces the rule action.
// It runs on the flow's detection shard (parallel mode) or the forwarding
// goroutine (sequential mode) — never both concurrently.
func (mb *Middlebox) dispatchEvent(fl *flow, ev detect.Event) {
	mb.met.alerts.Inc()
	if ev.Kind == detect.RuleMatch {
		mb.met.ruleAlert(ev.Rule.SID)
		fl.fr.Event(obs.SpanEventAlert, string(fl.dir), "sid "+strconv.Itoa(ev.Rule.SID))
	} else {
		fl.fr.Event(obs.SpanEventAlert, string(fl.dir), "keyword")
	}
	if ev.HasSSLKey && !fl.recovered {
		fl.recovered = true
		fl.sslKey = ev.SSLKey
		mb.met.keys.Inc()
		mb.log.Info("probable cause: SSL key recovered", "conn", fl.id, "dir", fl.dir)
		if mb.cfg.Secondary {
			mb.drainBuffered(fl)
		}
	}
	if mb.cfg.OnAlert != nil {
		mb.cfg.OnAlert(Alert{ConnID: fl.id, Direction: fl.dir, Event: ev})
	}
	if ev.Kind == detect.RuleMatch && ev.Rule.Action == rules.Block {
		if fl.blocked.CompareAndSwap(false, true) {
			mb.met.blocked.Inc()
			fl.fr.Event(obs.SpanEventBlocked, string(fl.dir), "sid "+strconv.Itoa(ev.Rule.SID))
			mb.log.Info("block rule matched, severing connection",
				"conn", fl.id, "dir", fl.dir, "sid", ev.Rule.SID)
			fl.kill()
		}
	}
}

// captureData buffers or decrypts one data record for the probable-cause
// element.
func (mb *Middlebox) captureData(fl *flow, body []byte) {
	if !fl.recovered {
		if len(fl.ciphertext) < maxBufferedRecords {
			fl.ciphertext = append(fl.ciphertext, append([]byte(nil), body...))
		}
		return
	}
	mb.decryptRecord(fl, body)
}

// drainBuffered decrypts records buffered before key recovery.
func (mb *Middlebox) drainBuffered(fl *flow) {
	for _, rec := range fl.ciphertext {
		mb.decryptRecord(fl, rec)
	}
	fl.ciphertext = nil
}

// decryptRecord opens one SSL record with the recovered kSSL — the
// ssldump-equivalent step of §6.
func (mb *Middlebox) decryptRecord(fl *flow, body []byte) {
	aead := bbcrypto.NewGCM(fl.sslKey)
	nonce := make([]byte, 12)
	nonce[0] = fl.dirByte
	binary.BigEndian.PutUint64(nonce[4:], fl.seq)
	fl.seq++
	pt, err := aead.Open(nil, nonce, body, []byte{byte(transport.RecData)})
	if err != nil || len(pt) < 1 {
		return
	}
	if len(fl.plaintext) < maxPlaintextBytes {
		fl.plaintext = append(fl.plaintext, pt[1:]...)
	}
}

// secondaryInspect runs the full plaintext IDS (regexps included) over the
// decrypted flow — the paper's "forwarded to any other system (Snort, Bro)
// for more complex processing".
func (mb *Middlebox) secondaryInspect(fl *flow) {
	res := mb.secondary.Inspect(fl.plaintext)
	if len(res.RuleSIDs) == 0 || mb.cfg.OnAlert == nil {
		return
	}
	mb.met.alerts.Add(uint64(len(res.RuleSIDs)))
	for _, sid := range res.RuleSIDs {
		mb.met.ruleAlert(sid)
		fl.fr.Event(obs.SpanEventAlert, string(fl.dir), "secondary sid "+strconv.Itoa(sid))
	}
	mb.cfg.OnAlert(Alert{ConnID: fl.id, Direction: fl.dir, Secondary: true, SecondarySIDs: res.RuleSIDs})
}
