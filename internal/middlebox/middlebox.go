// Package middlebox implements the BlindBox middlebox (§6): a proxy that
// interposes on BlindBox HTTPS connections, conducts obfuscated rule
// encryption with both endpoints ("garble threads"), runs BlindBox Detect
// over the encrypted token stream ("detection threads"), enforces rule
// actions, and — under Protocol III — feeds decrypted flows to a secondary
// inspection element (the paper's ssldump-wrapper plus Snort/Bro stage).
package middlebox

import (
	"crypto/ed25519"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/garble"
	"repro/internal/ot"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/transport"
)

// Direction labels one half of a proxied connection.
type Direction string

// Directions of traffic through the middlebox.
const (
	ClientToServer Direction = "c2s"
	ServerToClient Direction = "s2c"
)

// Alert is one detection report.
type Alert struct {
	// ConnID identifies the proxied connection.
	ConnID uint64
	// Direction is the traffic direction the event occurred on.
	Direction Direction
	// Event is the primary detection event (zero for secondary alerts).
	Event detect.Event
	// Secondary marks alerts produced by the decrypted-flow inspection
	// element (Protocol III only).
	Secondary bool
	// SecondarySIDs lists rules matched by the secondary inspection.
	SecondarySIDs []int
}

// Config configures a Middlebox.
type Config struct {
	// Ruleset is the signed ruleset received from RG.
	Ruleset *rules.SignedRuleset
	// RGPublicKey verifies the ruleset's provenance.
	RGPublicKey ed25519.PublicKey
	// OnAlert receives detection reports; may be nil. Called from
	// detection goroutines.
	OnAlert func(Alert)
	// NewIndex supplies the detection search structure per engine; nil
	// uses the paper's tree.
	NewIndex func() detect.Index
	// Secondary enables the Protocol III decryption element and
	// secondary full-rules inspection of flows with probable cause.
	Secondary bool
}

// Stats aggregates middlebox counters.
type Stats struct {
	Connections    uint64
	TokensScanned  uint64
	BytesForwarded uint64
	Alerts         uint64
	Blocked        uint64
	KeysRecovered  uint64
}

// Middlebox proxies BlindBox HTTPS connections and inspects them.
type Middlebox struct {
	cfg       Config
	secondary *baseline.IDS
	connSeq   atomic.Uint64
	stats     struct {
		tokens, bytes, alerts, blocked, conns, keys atomic.Uint64
	}
}

// New validates the ruleset signature and builds the middlebox.
func New(cfg Config) (*Middlebox, error) {
	if cfg.Ruleset == nil {
		return nil, errors.New("middlebox: nil ruleset")
	}
	if cfg.RGPublicKey != nil && !rules.Verify(cfg.RGPublicKey, cfg.Ruleset) {
		return nil, errors.New("middlebox: ruleset signature invalid")
	}
	mb := &Middlebox{cfg: cfg}
	if cfg.Secondary {
		mb.secondary = baseline.New(cfg.Ruleset.Ruleset)
	}
	return mb, nil
}

// Stats returns a snapshot of the counters.
func (mb *Middlebox) Stats() Stats {
	return Stats{
		Connections:    mb.stats.conns.Load(),
		TokensScanned:  mb.stats.tokens.Load(),
		BytesForwarded: mb.stats.bytes.Load(),
		Alerts:         mb.stats.alerts.Load(),
		Blocked:        mb.stats.blocked.Load(),
		KeysRecovered:  mb.stats.keys.Load(),
	}
}

// Serve accepts connections on ln and proxies each to forwardAddr until
// ln is closed.
func (mb *Middlebox) Serve(ln net.Listener, forwardAddr string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := mb.HandleConn(conn, forwardAddr); err != nil && !errors.Is(err, io.EOF) {
				// Connection-level errors are not fatal to the middlebox.
				_ = err
			}
		}()
	}
}

// HandleConn proxies one client connection to forwardAddr, performing the
// full BlindBox lifecycle: handshake interposition, rule preparation,
// detection and forwarding.
func (mb *Middlebox) HandleConn(client net.Conn, forwardAddr string) error {
	defer client.Close()
	server, err := net.Dial("tcp", forwardAddr)
	if err != nil {
		return fmt.Errorf("middlebox: dialing server: %w", err)
	}
	defer server.Close()
	return mb.Interpose(client, server)
}

// Interpose runs the middlebox over two established transports.
func (mb *Middlebox) Interpose(client, server net.Conn) error {
	id := mb.connSeq.Add(1)
	mb.stats.conns.Add(1)

	// 1. Handshake interposition: mark MBPresent both ways.
	typ, body, err := transport.ReadRecord(client)
	if err != nil {
		return err
	}
	if typ != transport.RecHello {
		return fmt.Errorf("middlebox: expected client hello, got %d", typ)
	}
	hello, err := transport.UnmarshalHello(body)
	if err != nil {
		return err
	}
	if err := transport.SetMBPresent(body); err != nil {
		return err
	}
	if err := transport.WriteRecord(server, transport.RecHello, body); err != nil {
		return err
	}
	typ, body, err = transport.ReadRecord(server)
	if err != nil {
		return err
	}
	if typ != transport.RecHelloReply {
		return fmt.Errorf("middlebox: expected server hello, got %d", typ)
	}
	if err := transport.SetMBPresent(body); err != nil {
		return err
	}
	if err := transport.WriteRecord(client, transport.RecHelloReply, body); err != nil {
		return err
	}

	cfg := core.Config{
		Protocol: hello.Protocol,
		Mode:     tokenize.Mode(hello.Mode),
		Salt0:    hello.Salt0,
	}

	// 2. Rule preparation with both endpoints (the "garble threads").
	req := core.BuildRequest(mb.cfg.Ruleset, cfg.Mode)
	prep, err := ruleprep.NewMiddlebox(req)
	if err != nil {
		return err
	}
	var (
		jobsC, jobsS     []*ruleprep.FragmentJob
		labelsC, labelsS [][]bbcrypto.Block
		prepErr          [2]error
		wg               sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		jobsC, labelsC, prepErr[0] = mb.runPrep(client, prep)
	}()
	go func() {
		defer wg.Done()
		jobsS, labelsS, prepErr[1] = mb.runPrep(server, prep)
	}()
	wg.Wait()
	for _, e := range prepErr {
		if e != nil {
			return fmt.Errorf("middlebox: rule preparation: %w", e)
		}
	}

	keys := make(detect.TokenKeys)
	for i := range jobsC {
		if err := prep.Verify(jobsC[i], jobsS[i]); err != nil {
			return err
		}
		for b := range labelsC[i] {
			if subtle.ConstantTimeCompare(labelsC[i][b][:], labelsS[i][b][:]) != 1 {
				return errors.New("middlebox: endpoints disagree on OT labels")
			}
		}
		key, err := prep.Evaluate(i, jobsC[i], labelsC[i])
		if err == ruleprep.ErrUnauthorized {
			continue
		}
		if err != nil {
			return err
		}
		keys[req.Fragments[i]] = key
	}

	for _, leg := range []net.Conn{client, server} {
		if err := transport.WriteRecord(leg, transport.RecGarble, []byte{transport.SubPrepDone}); err != nil {
			return err
		}
	}

	// 3. Detection threads: one per direction.
	var idx1, idx2 detect.Index
	if mb.cfg.NewIndex != nil {
		idx1, idx2 = mb.cfg.NewIndex(), mb.cfg.NewIndex()
	}
	var fwdWG sync.WaitGroup
	fwdWG.Add(2)
	stop := make(chan struct{})
	var stopOnce sync.Once
	kill := func() {
		stopOnce.Do(func() {
			close(stop)
			_ = client.Close()
			_ = server.Close()
		})
	}
	go func() {
		defer fwdWG.Done()
		mb.forward(id, ClientToServer, client, server, mb.newFlow(cfg, keys, idx1), kill)
	}()
	go func() {
		defer fwdWG.Done()
		mb.forward(id, ServerToClient, server, client, mb.newFlow(cfg, keys, idx2), kill)
	}()
	fwdWG.Wait()
	return nil
}

// runPrep executes the MB side of the preparation protocol over one leg.
func (mb *Middlebox) runPrep(leg net.Conn, prep *ruleprep.Middlebox) ([]*ruleprep.FragmentJob, [][]bbcrypto.Block, error) {
	n := prep.NumFragments()
	start := make([]byte, 5)
	start[0] = transport.SubPrepStart
	binary.BigEndian.PutUint32(start[1:], uint32(n))
	if err := transport.WriteRecord(leg, transport.RecGarble, start); err != nil {
		return nil, nil, err
	}

	readSub := func(want byte) ([]byte, error) {
		typ, body, err := transport.ReadRecord(leg)
		if err != nil {
			return nil, err
		}
		if typ != transport.RecGarble || len(body) < 1 || body[0] != want {
			return nil, fmt.Errorf("middlebox: expected prep message %d", want)
		}
		return body[1:], nil
	}

	jobs := make([]*ruleprep.FragmentJob, n)
	for i := 0; i < n; i++ {
		payload, err := readSub(transport.SubCircuit)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) < 8 {
			return nil, nil, errors.New("middlebox: short circuit message")
		}
		idx := int(binary.BigEndian.Uint32(payload))
		blobLen := int(binary.BigEndian.Uint32(payload[4:]))
		payload = payload[8:]
		if len(payload) < blobLen {
			return nil, nil, errors.New("middlebox: truncated circuit blob")
		}
		g, err := garble.Unmarshal(payload[:blobLen])
		if err != nil {
			return nil, nil, err
		}
		epLabels, err := transport.UnmarshalBlocks(payload[blobLen:])
		if err != nil {
			return nil, nil, err
		}
		if idx < 0 || idx >= n || jobs[idx] != nil {
			return nil, nil, errors.New("middlebox: bad circuit index")
		}
		jobs[idx] = ruleprep.NewFragmentJob(idx, g, epLabels)
	}

	// OT batch over all fragments' choice bits.
	recv, msgAs, err := ot.NewExtReceiver()
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WriteRecord(leg, transport.RecGarble,
		append([]byte{transport.SubOTMsgA}, transport.MarshalByteSlices(msgAs)...)); err != nil {
		return nil, nil, err
	}
	payload, err := readSub(transport.SubOTMsgB)
	if err != nil {
		return nil, nil, err
	}
	msgBs, err := transport.UnmarshalByteSlices(payload)
	if err != nil {
		return nil, nil, err
	}
	var choices []bool
	for i := 0; i < n; i++ {
		choices = append(choices, prep.Choices(i)...)
	}
	u, err := recv.Extend(msgBs, choices)
	if err != nil {
		return nil, nil, err
	}
	if err := transport.WriteRecord(leg, transport.RecGarble,
		append([]byte{transport.SubOTU}, transport.MarshalByteSlices(u)...)); err != nil {
		return nil, nil, err
	}
	payload, err = readSub(transport.SubOTMasked)
	if err != nil {
		return nil, nil, err
	}
	flat, err := transport.UnmarshalBlocks(payload)
	if err != nil {
		return nil, nil, err
	}
	if len(flat) != 2*len(choices) {
		return nil, nil, errors.New("middlebox: masked pair count mismatch")
	}
	pairs := make([][2]bbcrypto.Block, len(choices))
	for j := range pairs {
		pairs[j][0], pairs[j][1] = flat[2*j], flat[2*j+1]
	}
	labels, err := recv.Receive(pairs, choices)
	if err != nil {
		return nil, nil, err
	}
	perFrag := make([][]bbcrypto.Block, n)
	for i := 0; i < n; i++ {
		perFrag[i] = labels[i*256 : (i+1)*256]
	}
	return jobs, perFrag, nil
}

// flow is per-direction detection state.
type flow struct {
	cfg    core.Config
	engine *detect.Engine
	// Protocol III decryption element state.
	recovered  bool
	sslKey     bbcrypto.Block
	ciphertext [][]byte // buffered data records awaiting a key
	plaintext  []byte   // decrypted stream for secondary inspection
	seq        uint64
	dirByte    byte
}

// maxBuffered bounds probable-cause buffering per direction.
const (
	maxBufferedRecords = 4096
	maxPlaintextBytes  = 4 << 20
)

func (mb *Middlebox) newFlow(cfg core.Config, keys detect.TokenKeys, idx detect.Index) *flow {
	return &flow{
		cfg: cfg,
		engine: detect.NewEngine(mb.cfg.Ruleset.Ruleset, keys, detect.Config{
			Mode:     cfg.Mode,
			Protocol: cfg.Protocol,
			Salt0:    cfg.Salt0,
			Index:    idx,
		}),
	}
}

// forward is one detection thread: it relays records from src to dst,
// inspecting the token channel and enforcing rule actions.
func (mb *Middlebox) forward(id uint64, dir Direction, src, dst net.Conn, fl *flow, kill func()) {
	if dir == ServerToClient {
		fl.dirByte = 1
	}
	for {
		typ, body, err := transport.ReadRecord(src)
		if err != nil {
			kill()
			return
		}
		block := false
		switch typ {
		case transport.RecSalt:
			if len(body) == 8 {
				fl.engine.Reset(binary.BigEndian.Uint64(body))
			}
		case transport.RecTokens:
			toks, err := transport.UnmarshalTokens(body, fl.cfg.Protocol == dpienc.ProtocolIII)
			if err != nil {
				kill()
				return
			}
			mb.stats.tokens.Add(uint64(len(toks)))
			for _, et := range toks {
				for _, ev := range fl.engine.ProcessToken(et) {
					if mb.handleEvent(id, dir, fl, ev) {
						block = true
					}
				}
			}
		case transport.RecData:
			mb.stats.bytes.Add(uint64(len(body)))
			if mb.cfg.Secondary && fl.cfg.Protocol == dpienc.ProtocolIII {
				mb.captureData(id, dir, fl, body)
			}
		case transport.RecClose:
			if fl.recovered && len(fl.plaintext) > 0 {
				mb.secondaryInspect(id, dir, fl)
			}
		}
		if err := transport.WriteRecord(dst, typ, body); err != nil {
			kill()
			return
		}
		if block {
			mb.stats.blocked.Add(1)
			kill()
			return
		}
	}
}

// handleEvent reports an event and returns whether the connection must be
// blocked.
func (mb *Middlebox) handleEvent(id uint64, dir Direction, fl *flow, ev detect.Event) bool {
	mb.stats.alerts.Add(1)
	if ev.HasSSLKey && !fl.recovered {
		fl.recovered = true
		fl.sslKey = ev.SSLKey
		mb.stats.keys.Add(1)
		if mb.cfg.Secondary {
			mb.drainBuffered(fl)
		}
	}
	if mb.cfg.OnAlert != nil {
		mb.cfg.OnAlert(Alert{ConnID: id, Direction: dir, Event: ev})
	}
	return ev.Kind == detect.RuleMatch && ev.Rule.Action == rules.Block
}

// captureData buffers or decrypts one data record for the probable-cause
// element.
func (mb *Middlebox) captureData(id uint64, dir Direction, fl *flow, body []byte) {
	if !fl.recovered {
		if len(fl.ciphertext) < maxBufferedRecords {
			fl.ciphertext = append(fl.ciphertext, append([]byte(nil), body...))
		}
		return
	}
	mb.decryptRecord(fl, body)
}

// drainBuffered decrypts records buffered before key recovery.
func (mb *Middlebox) drainBuffered(fl *flow) {
	for _, rec := range fl.ciphertext {
		mb.decryptRecord(fl, rec)
	}
	fl.ciphertext = nil
}

// decryptRecord opens one SSL record with the recovered kSSL — the
// ssldump-equivalent step of §6.
func (mb *Middlebox) decryptRecord(fl *flow, body []byte) {
	aead := bbcrypto.NewGCM(fl.sslKey)
	nonce := make([]byte, 12)
	nonce[0] = fl.dirByte
	binary.BigEndian.PutUint64(nonce[4:], fl.seq)
	fl.seq++
	pt, err := aead.Open(nil, nonce, body, []byte{byte(transport.RecData)})
	if err != nil || len(pt) < 1 {
		return
	}
	if len(fl.plaintext) < maxPlaintextBytes {
		fl.plaintext = append(fl.plaintext, pt[1:]...)
	}
}

// secondaryInspect runs the full plaintext IDS (regexps included) over the
// decrypted flow — the paper's "forwarded to any other system (Snort, Bro)
// for more complex processing".
func (mb *Middlebox) secondaryInspect(id uint64, dir Direction, fl *flow) {
	res := mb.secondary.Inspect(fl.plaintext)
	if len(res.RuleSIDs) == 0 || mb.cfg.OnAlert == nil {
		return
	}
	mb.stats.alerts.Add(uint64(len(res.RuleSIDs)))
	mb.cfg.OnAlert(Alert{ConnID: id, Direction: dir, Secondary: true, SecondarySIDs: res.RuleSIDs})
}
