package middlebox

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/transport"
)

// harness wires client <-> middlebox <-> server over loopback TCP.
type harness struct {
	mb      *Middlebox
	mbAddr  string
	tagKey  bbcrypto.Block
	cleanup []func()
	alerts  []Alert
	mu      sync.Mutex
}

func newHarness(t *testing.T, rulesText string, secondary bool) *harness {
	t.Helper()
	return newHarnessConfigured(t, rulesText, func(cfg *Config) { cfg.Secondary = secondary })
}

// newHarnessConfigured builds the harness with an arbitrary Config tweak
// applied after the defaults (which record alerts into h.alerts).
func newHarnessConfigured(t *testing.T, rulesText string, mutate func(*Config)) *harness {
	t.Helper()
	g, err := rules.NewGenerator("TestRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Parse("test", rulesText)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{}
	cfg := Config{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		OnAlert: func(a Alert) {
			h.mu.Lock()
			h.alerts = append(h.alerts, a)
			h.mu.Unlock()
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	mb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.mb = mb

	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.mbAddr = mbLn.Addr().String()
	h.cleanup = append(h.cleanup, func() { serverLn.Close(); mbLn.Close() })
	t.Cleanup(func() {
		for _, f := range h.cleanup {
			f()
		}
	})

	// BlindBox HTTPS echo server: reads the request, echoes it back.
	epCfg := transport.ConnConfig{Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: g.TagKey()}}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := transport.Server(raw, epCfg)
				if err != nil {
					raw.Close()
					return
				}
				data, err := io.ReadAll(conn)
				if err != nil {
					conn.Close()
					return
				}
				conn.Write(data)
				conn.CloseWrite()
				conn.Close()
			}()
		}
	}()
	go h.mb.Serve(mbLn, serverLn.Addr().String())
	h.tagKey = g.TagKey()
	return h
}

func (h *harness) snapshot() []Alert {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Alert(nil), h.alerts...)
}

func (h *harness) dial(t *testing.T, cfg core.Config) *transport.Conn {
	t.Helper()
	conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
		Core: cfg, RG: transport.RGMaterial{TagKey: h.tagKey},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestEndToEndCleanTraffic(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`, false)
	conn := h.dial(t, core.DefaultConfig())
	if !conn.MBPresent() {
		t.Fatal("client did not detect the middlebox")
	}
	msg := []byte("GET /home.html HTTP/1.1\r\nHost: innocent.example\r\n\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, msg) {
		t.Fatalf("echo mismatch: %q", echoed)
	}
	if got := h.snapshot(); len(got) != 0 {
		t.Fatalf("alerts on clean traffic: %+v", got)
	}
	if h.mb.Stats().TokensScanned == 0 {
		t.Fatal("middlebox scanned no tokens")
	}
}

func TestEndToEndAlertOnAttack(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"attackkw"; sid:7;)`, false)
	conn := h.dial(t, core.DefaultConfig())
	msg := []byte("POST /x HTTP/1.1\r\n\r\npayload with attackkw inside it")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 7 {
				return true
			}
		}
		return false
	})
	// The echo direction (server->client) re-sends the keyword; both
	// directions may alert. At least c2s must be present.
	foundC2S := false
	for _, a := range h.snapshot() {
		if a.Direction == ClientToServer {
			foundC2S = true
		}
	}
	if !foundC2S {
		t.Fatal("no client-to-server alert")
	}
}

func TestEndToEndBlockAction(t *testing.T) {
	h := newHarness(t, `drop tcp any any -> any any (msg:"blocked"; content:"forbidden1"; sid:9;)`, false)
	conn := h.dial(t, core.DefaultConfig())
	if _, err := conn.Write([]byte("request containing forbidden1 keyword")); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	// The middlebox must sever the connection: the read eventually fails
	// (either an error or an abrupt EOF without the echo completing).
	buf, _ := io.ReadAll(conn)
	if len(buf) > 0 && bytes.Contains(buf, []byte("forbidden1")) {
		t.Fatal("blocked payload was fully delivered")
	}
	waitFor(t, func() bool { return h.mb.Stats().Blocked > 0 })
}

func TestEndToEndProtocolIIIProbableCause(t *testing.T) {
	h := newHarness(t,
		`alert tcp any any -> any any (msg:"pc"; content:"attackkw"; pcre:"/attackkw=[0-9]+/"; sid:11;)`,
		true)
	cfg := core.Config{Protocol: dpienc.ProtocolIII, Mode: tokenize.Window}
	conn := h.dial(t, cfg)
	msg := []byte("query attackkw=12345 triggers probable cause decryption here")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return h.mb.Stats().KeysRecovered > 0 })
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Secondary {
				for _, sid := range a.SecondarySIDs {
					if sid == 11 {
						return true
					}
				}
			}
		}
		return false
	})
	// Verify the recovered key actually matches the session key.
	for _, a := range h.snapshot() {
		if a.Event.HasSSLKey && a.Event.SSLKey != conn.SessionKeys().KSSL {
			t.Fatal("middlebox recovered a wrong kSSL")
		}
	}
}

func TestEndToEndNoProbableCauseNoDecryption(t *testing.T) {
	h := newHarness(t,
		`alert tcp any any -> any any (content:"attackkw"; pcre:"/attackkw=[0-9]+/"; sid:11;)`,
		true)
	cfg := core.Config{Protocol: dpienc.ProtocolIII, Mode: tokenize.Window}
	conn := h.dial(t, cfg)
	if _, err := conn.Write([]byte("entirely benign request with ordinary words")); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	if h.mb.Stats().KeysRecovered != 0 {
		t.Fatal("key recovered without probable cause")
	}
	if len(h.snapshot()) != 0 {
		t.Fatalf("alerts without cause: %+v", h.snapshot())
	}
}

func TestMiddleboxRejectsBadSignature(t *testing.T) {
	g1, _ := rules.NewGenerator("RG1")
	g2, _ := rules.NewGenerator("RG2")
	rs, err := rules.Parse("t", `alert tcp any any -> any any (content:"x1234567"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Ruleset: g1.Sign(rs), RGPublicKey: g2.PublicKey()}); err == nil {
		t.Fatal("wrong RG key accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil ruleset accepted")
	}
}

func TestMultiKeywordRuleThroughMiddlebox(t *testing.T) {
	h := newHarness(t, strings.Join([]string{
		`alert tcp any any -> any any (content:"Server: nginx/0."; content:"Content-Type: text/html"; sid:21;)`,
	}, "\n"), false)
	conn := h.dial(t, core.Config{Protocol: dpienc.ProtocolII, Mode: tokenize.Delimiter})
	msg := []byte("HTTP/1.1 200 OK\r\nServer: nginx/0.6.2\r\nContent-Type: text/html\r\n\r\nbody")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 21 {
				return true
			}
		}
		return false
	})
}

func TestMultiplexedStreamsThroughMiddlebox(t *testing.T) {
	// The paper's persistent-connection setting: one handshake + one rule
	// preparation, many logical requests — detection still works on every
	// stream.
	h := newHarness(t, `alert tcp any any -> any any (msg:"kw"; content:"streamattack7"; sid:31;)`, false)

	// Replace the default echo server with a mux-aware one.
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	epCfg := transport.ConnConfig{Core: core.DefaultConfig(), RG: transport.RGMaterial{TagKey: h.tagKey}}
	go func() {
		raw, err := serverLn.Accept()
		if err != nil {
			return
		}
		conn, err := transport.Server(raw, epCfg)
		if err != nil {
			raw.Close()
			return
		}
		mux := transport.NewMux(conn, false)
		for {
			st, err := mux.Accept()
			if err != nil {
				return
			}
			go func() {
				data, err := io.ReadAll(st)
				if err != nil {
					return
				}
				st.Write(data)
				st.Close()
			}()
		}
	}()
	go h.mb.Serve(mbLn, serverLn.Addr().String())

	conn, err := transport.Dial(mbLn.Addr().String(), epCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mux := transport.NewMux(conn, true)

	// Several innocent streams, then one attack stream.
	for i := 0; i < 5; i++ {
		st, err := mux.Open()
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte(strings.Repeat("innocent request body ", 4))
		st.Write(msg)
		st.Close()
		echo, err := io.ReadAll(st)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(echo, msg) {
			t.Fatalf("stream %d echo mismatch", i)
		}
	}
	if got := len(h.snapshot()); got != 0 {
		t.Fatalf("alerts on innocent streams: %d", got)
	}

	st, err := mux.Open()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("payload carrying streamattack7 keyword"))
	st.Close()
	if _, err := io.ReadAll(st); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 31 {
				return true
			}
		}
		return false
	})
	// All streams shared ONE middlebox connection (one rule preparation).
	if h.mb.Stats().Connections != 1 {
		t.Fatalf("connections = %d, want 1", h.mb.Stats().Connections)
	}
}

func TestMismatchedRGConfigRejectedAtPreparation(t *testing.T) {
	// A client configured with a different RG than the server: the two
	// endpoints embed different kRG values, so their deterministically
	// garbled circuits differ and the middlebox's §3.3 equality check
	// rejects the connection during rule preparation — the client's
	// handshake fails rather than proceeding uninspectable.
	h := newHarness(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`, false)
	otherRG, err := rules.NewGenerator("ImposterRG")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.Dial(h.mbAddr, transport.ConnConfig{
		Core: core.DefaultConfig(),
		RG:   transport.RGMaterial{TagKey: otherRG.TagKey()}, // wrong kRG
	})
	if err == nil {
		conn.Close()
		t.Fatal("handshake with mismatched RG configuration succeeded")
	}
	if len(h.snapshot()) != 0 {
		t.Fatal("alerts fired on a rejected connection")
	}
	// The middlebox keeps serving honest connections afterwards.
	good := h.dial(t, core.DefaultConfig())
	good.Write([]byte("attackkw present"))
	good.CloseWrite()
	if _, err := io.ReadAll(good); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch {
				return true
			}
		}
		return false
	})
}

func TestMismatchedKrandKillsConnection(t *testing.T) {
	// A man-in-the-middle (or buggy endpoint) that breaks the shared
	// handshake yields different garbling randomness; the middlebox's §3.3
	// equality check must reject the connection during preparation. We
	// simulate by connecting a client whose raw bytes are tampered
	// post-hello, which breaks GCM anyway — so instead check the documented
	// internal: two endpoints with different session keys cannot complete
	// preparation (covered in ruleprep tests); here we check that a
	// mid-preparation disconnect does not wedge the middlebox.
	h := newHarness(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`, false)
	raw, err := net.Dial("tcp", h.mbAddr)
	if err != nil {
		t.Fatal(err)
	}
	// Send a valid client hello, then vanish mid-preparation.
	hello := transport.Hello{
		PublicKey: make([]byte, 32),
		Protocol:  dpienc.ProtocolII,
		Mode:      byte(tokenize.Delimiter),
	}
	if err := transport.WriteRecord(raw, transport.RecHello, transport.MarshalHello(hello)); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	// The middlebox must survive and keep serving new, honest connections.
	conn := h.dial(t, core.DefaultConfig())
	conn.Write([]byte("attackkw present"))
	conn.CloseWrite()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch {
				return true
			}
		}
		return false
	})
}

func TestStatsProgress(t *testing.T) {
	h := newHarness(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`, false)
	conn := h.dial(t, core.DefaultConfig())
	conn.Write([]byte("plain words travelling through"))
	conn.CloseWrite()
	io.ReadAll(conn)
	st := h.mb.Stats()
	if st.Connections != 1 || st.TokensScanned == 0 || st.BytesForwarded == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSoakLargeFlowWithResetsAndProtocolIII(t *testing.T) {
	// A multi-megabyte Protocol III flow through the full path: exercises
	// counter-table resets (> 1 MiB default interval), probable-cause
	// buffering bounds, bidirectional echo and receiver validation at
	// scale.
	if testing.Short() {
		t.Skip("soak test")
	}
	h := newHarness(t,
		`alert tcp any any -> any any (msg:"needle"; content:"needle-a3f9c2d1"; sid:41;)`,
		true)
	cfg := core.Config{Protocol: dpienc.ProtocolIII, Mode: tokenize.Delimiter}
	conn := h.dial(t, cfg)

	chunk := []byte(strings.Repeat("benign words flowing through the tunnel at volume ", 40)) // ~2 KB
	var sent int
	writer := make(chan error, 1)
	go func() {
		for i := 0; i < 800; i++ { // ~1.6 MB, crosses the reset interval
			payload := chunk
			if i == 700 {
				payload = append([]byte("the needle-a3f9c2d1 appears late "), chunk...)
			}
			if _, err := conn.Write(payload); err != nil {
				writer <- err
				return
			}
			sent += len(payload)
		}
		writer <- conn.CloseWrite()
	}()
	received, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	if len(received) < 1<<20 {
		t.Fatalf("echo truncated: %d bytes", len(received))
	}
	waitFor(t, func() bool {
		for _, a := range h.snapshot() {
			if a.Event.Kind == detect.RuleMatch && a.Event.Rule.SID == 41 {
				return true
			}
		}
		return false
	})
	if h.mb.Stats().KeysRecovered == 0 {
		t.Fatal("probable cause did not recover the key on the late match")
	}
}

func TestStreamsWithProtocolIIIProbableCause(t *testing.T) {
	// Stream multiplexing composes with Protocol III: a keyword inside one
	// stream's frames still triggers key recovery and secondary inspection
	// (tokens are computed over the tunnel's byte stream, which contains
	// the frame bodies).
	h := newHarness(t,
		`alert tcp any any -> any any (msg:"pc"; content:"tunnelkw9"; pcre:"/tunnelkw9=[0-9]+/"; sid:51;)`,
		true)
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mbLn.Close()
	cfg := core.Config{Protocol: dpienc.ProtocolIII, Mode: tokenize.Window}
	epCfg := transport.ConnConfig{Core: cfg, RG: transport.RGMaterial{TagKey: h.tagKey}}
	go func() {
		raw, err := serverLn.Accept()
		if err != nil {
			return
		}
		conn, err := transport.Server(raw, epCfg)
		if err != nil {
			raw.Close()
			return
		}
		mux := transport.NewMux(conn, false)
		for {
			st, err := mux.Accept()
			if err != nil {
				conn.Close()
				return
			}
			go func() {
				io.Copy(io.Discard, st)
				st.Write([]byte("ok"))
				st.Close()
			}()
		}
	}()
	go h.mb.Serve(mbLn, serverLn.Addr().String())

	conn, err := transport.Dial(mbLn.Addr().String(), epCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mux := transport.NewMux(conn, true)
	for i := 0; i < 3; i++ {
		st, err := mux.Open()
		if err != nil {
			t.Fatal(err)
		}
		body := "benign stream body with ordinary words"
		if i == 2 {
			body = "stream carrying tunnelkw9=4242 the probable cause"
		}
		st.Write([]byte(body))
		st.Close()
		if _, err := io.ReadAll(st); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return h.mb.Stats().KeysRecovered > 0 })
	// The recovered key must be the tunnel's kSSL.
	for _, a := range h.snapshot() {
		if a.Event.HasSSLKey && a.Event.SSLKey != conn.SessionKeys().KSSL {
			t.Fatal("wrong kSSL recovered from a multiplexed tunnel")
		}
	}
}
