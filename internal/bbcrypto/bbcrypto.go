// Package bbcrypto provides the low-level cryptographic primitives shared by
// the rest of the BlindBox implementation: HKDF key derivation, an AES-CTR
// pseudorandom generator (used to derive the common randomness seeded by
// krand, §2.3 of the paper), the fixed-key AES hash used by the garbling
// scheme (JustGarble-style), and small helpers for AES block operations.
//
// Everything in this package is built on the Go standard library only.
package bbcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// BlockSize is the AES block size in bytes. All BlindBox token keys and
// garbled-circuit wire labels are one AES block long.
const BlockSize = aes.BlockSize

// Block is a single 16-byte AES block. Wire labels, token keys and DPIEnc
// intermediate values are all Blocks.
type Block [BlockSize]byte

// XOR returns the bitwise XOR of b and o.
func (b Block) XOR(o Block) Block {
	var r Block
	for i := range b {
		r[i] = b[i] ^ o[i]
	}
	return r
}

// Double multiplies the block by x in GF(2^128) with the canonical
// polynomial x^128 + x^7 + x^2 + x + 1. It is used for the 2A ⊕ 4B tweakable
// hash of the garbling scheme.
func (b Block) Double() Block {
	var r Block
	carry := b[0] >> 7
	for i := 0; i < BlockSize-1; i++ {
		r[i] = b[i]<<1 | b[i+1]>>7
	}
	r[BlockSize-1] = b[BlockSize-1] << 1
	if carry == 1 {
		r[BlockSize-1] ^= 0x87
	}
	return r
}

// LSB reports the least significant bit of the block (the last bit of the
// last byte), used as the point-and-permute colour bit.
func (b Block) LSB() int { return int(b[BlockSize-1] & 1) }

// must unwraps a constructor result, panicking on error. The constructors
// it wraps (aes.NewCipher, cipher.NewGCM with fixed 16-byte keys) fail only
// on programmer error, never on input data.
func must[T any](v T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("bbcrypto: %v", err))
	}
	return v
}

// mustRead fills p from r, panicking on failure. Only used with
// crypto/rand.Reader, whose failure means the platform entropy pool is
// broken — unrecoverable for a cryptographic protocol.
func mustRead(r io.Reader, p []byte) {
	if _, err := io.ReadFull(r, p); err != nil {
		panic(fmt.Sprintf("bbcrypto: crypto/rand failed: %v", err))
	}
}

// RandomBlock returns a uniformly random block from crypto/rand.
func RandomBlock() Block {
	var b Block
	mustRead(rand.Reader, b[:])
	return b
}

// NewAES returns an AES cipher for the given 16-byte key. It panics on
// failure, which can only happen for invalid key sizes (a programming error).
func NewAES(key Block) cipher.Block {
	return must(aes.NewCipher(key[:]))
}

// EncryptBlock encrypts one block under key and returns the result.
func EncryptBlock(key, pt Block) Block {
	var ct Block
	NewAES(key).Encrypt(ct[:], pt[:])
	return ct
}

// FixedKeyHash is the JustGarble-style hash built from a single fixed-key
// AES permutation π: H(A, B, T) = π(K) ⊕ K where K = 2A ⊕ 4B ⊕ T.
// Because the key never changes, the AES key schedule is computed once and
// each hash costs exactly one AES block encryption.
type FixedKeyHash struct {
	pi cipher.Block
}

// NewFixedKeyHash creates a hash with the given fixed key. All parties in a
// garbling session must use the same fixed key; it need not be secret.
func NewFixedKeyHash(key Block) *FixedKeyHash {
	return &FixedKeyHash{pi: NewAES(key)}
}

// Hash computes H(a, b, tweak).
func (h *FixedKeyHash) Hash(a, b Block, tweak uint64) Block {
	k := a.Double().XOR(b.Double().Double())
	binary.BigEndian.PutUint64(k[8:], binary.BigEndian.Uint64(k[8:])^tweak)
	var out Block
	h.pi.Encrypt(out[:], k[:])
	return out.XOR(k)
}

// Hash1 computes the single-input variant H(a, T) = π(K) ⊕ K with K = 2a ⊕ T,
// used for garbling unary gates and output decoding.
func (h *FixedKeyHash) Hash1(a Block, tweak uint64) Block {
	k := a.Double()
	binary.BigEndian.PutUint64(k[8:], binary.BigEndian.Uint64(k[8:])^tweak)
	var out Block
	h.pi.Encrypt(out[:], k[:])
	return out.XOR(k)
}

// PRG is a deterministic pseudorandom generator implemented as AES-CTR with
// a zero IV. Both BlindBox endpoints seed a PRG with krand so they produce
// identical garbled circuits (§3.3: "use randomness based on krand").
type PRG struct {
	stream cipher.Stream
}

// NewPRG creates a PRG seeded with the 16-byte seed.
func NewPRG(seed Block) *PRG {
	var iv [BlockSize]byte
	return &PRG{stream: cipher.NewCTR(NewAES(seed), iv[:])}
}

// Read fills p with pseudorandom bytes. It never fails; the error is part of
// the io.Reader contract.
func (g *PRG) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	g.stream.XORKeyStream(p, p)
	return len(p), nil
}

// Block returns the next pseudorandom block from the generator.
func (g *PRG) Block() Block {
	var b Block
	g.stream.XORKeyStream(b[:], b[:])
	return b
}

var _ io.Reader = (*PRG)(nil)

// HKDF derives n bytes of key material from the input secret, salt and
// info label using HKDF-SHA256 (RFC 5869). It is used by the BlindBox HTTPS
// handshake to derive kSSL, k and krand from the master secret k0 (§2.3).
func HKDF(secret, salt, info []byte, n int) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	var (
		out  []byte
		prev []byte
	)
	for counter := byte(1); len(out) < n; counter++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{counter})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:n]
}

// DeriveBlock derives a single named 16-byte key from a secret via HKDF.
func DeriveBlock(secret []byte, label string) Block {
	var b Block
	copy(b[:], HKDF(secret, nil, []byte(label), BlockSize))
	return b
}

// SessionKeys holds the three keys every BlindBox HTTPS connection derives
// from the handshake master secret k0 (§2.3):
//
//   - KSSL encrypts the primary SSL stream,
//   - K keys the DPIEnc detection scheme, and
//   - KRand seeds the common randomness used for garbling.
type SessionKeys struct {
	KSSL  Block
	K     Block
	KRand Block
}

// DeriveSessionKeys expands the master secret k0 into the three session keys.
func DeriveSessionKeys(k0 []byte) SessionKeys {
	return SessionKeys{
		KSSL:  DeriveBlock(k0, "blindbox kssl"),
		K:     DeriveBlock(k0, "blindbox k"),
		KRand: DeriveBlock(k0, "blindbox krand"),
	}
}

// NewGCM returns an AES-GCM AEAD under the given key, used by the record
// layer of the primary SSL channel.
func NewGCM(key Block) cipher.AEAD {
	return must(cipher.NewGCM(NewAES(key)))
}

// MAC computes the single-block AES MAC used by the obfuscated rule
// encryption check: tag = AES_k(pad(m)) for messages of at most one block.
// For the fixed-length 16-byte inputs BlindBox feeds it (padded rule
// keywords), a single AES call is a secure PRF and hence a secure MAC.
func MAC(key Block, m Block) Block { return EncryptBlock(key, m) }
