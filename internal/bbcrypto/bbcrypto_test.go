package bbcrypto

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestBlockXOR(t *testing.T) {
	a := Block{1, 2, 3}
	b := Block{255, 2, 1}
	got := a.XOR(b)
	want := Block{254, 0, 2}
	if got != want {
		t.Fatalf("XOR = %v, want %v", got, want)
	}
	if a.XOR(a) != (Block{}) {
		t.Fatal("a XOR a must be zero")
	}
}

func TestBlockXORProperties(t *testing.T) {
	f := func(a, b Block) bool {
		if a.XOR(b) != b.XOR(a) {
			return false
		}
		return a.XOR(b).XOR(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleLinear(t *testing.T) {
	// Doubling is linear over GF(2): 2(a ⊕ b) == 2a ⊕ 2b.
	f := func(a, b Block) bool {
		return a.XOR(b).Double() == a.Double().XOR(b.Double())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleKnownValues(t *testing.T) {
	// 2·1 = x (shift left by one within the 128-bit value).
	var one Block
	one[BlockSize-1] = 1
	two := one.Double()
	var wantTwo Block
	wantTwo[BlockSize-1] = 2
	if two != wantTwo {
		t.Fatalf("2*1 = %v, want %v", two, wantTwo)
	}
	// Doubling a block with the top bit set must fold in the reduction
	// polynomial 0x87.
	var top Block
	top[0] = 0x80
	got := top.Double()
	var want Block
	want[BlockSize-1] = 0x87
	if got != want {
		t.Fatalf("2*x^127 = %v, want %v", got, want)
	}
}

func TestRandomBlockDistinct(t *testing.T) {
	seen := make(map[Block]bool)
	for i := 0; i < 64; i++ {
		b := RandomBlock()
		if seen[b] {
			t.Fatal("RandomBlock returned a repeated value")
		}
		seen[b] = true
	}
}

func TestEncryptBlockMatchesStdlib(t *testing.T) {
	key := Block{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	pt := Block{16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	var want Block
	NewAES(key).Encrypt(want[:], pt[:])
	if got := EncryptBlock(key, pt); got != want {
		t.Fatalf("EncryptBlock = %v, want %v", got, want)
	}
}

func TestFixedKeyHashDeterministic(t *testing.T) {
	h1 := NewFixedKeyHash(Block{42})
	h2 := NewFixedKeyHash(Block{42})
	a, b := RandomBlock(), RandomBlock()
	if h1.Hash(a, b, 7) != h2.Hash(a, b, 7) {
		t.Fatal("same fixed key must give same hash")
	}
	if h1.Hash(a, b, 7) == h1.Hash(a, b, 8) {
		t.Fatal("different tweaks must give different hashes")
	}
	if h1.Hash(a, b, 7) == h1.Hash(b, a, 7) {
		t.Fatal("hash must not be symmetric in its inputs")
	}
	if h1.Hash1(a, 3) == h1.Hash1(a, 4) {
		t.Fatal("Hash1 tweak must matter")
	}
}

func TestFixedKeyHashKeyMatters(t *testing.T) {
	a, b := RandomBlock(), RandomBlock()
	if NewFixedKeyHash(Block{1}).Hash(a, b, 0) == NewFixedKeyHash(Block{2}).Hash(a, b, 0) {
		t.Fatal("different fixed keys must give different hashes")
	}
}

func TestPRGDeterministic(t *testing.T) {
	g1 := NewPRG(Block{9})
	g2 := NewPRG(Block{9})
	b1 := make([]byte, 1024)
	b2 := make([]byte, 1024)
	if _, err := g1.Read(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Read(b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed must give same stream")
	}
	g3 := NewPRG(Block{10})
	b3 := make([]byte, 1024)
	g3.Read(b3)
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds must give different streams")
	}
}

func TestPRGReadOverwritesInput(t *testing.T) {
	// Read must produce the keystream regardless of prior buffer contents.
	g1 := NewPRG(Block{5})
	g2 := NewPRG(Block{5})
	b1 := make([]byte, 64)
	b2 := make([]byte, 64)
	for i := range b2 {
		b2[i] = 0xFF
	}
	g1.Read(b1)
	g2.Read(b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("PRG output must not depend on buffer contents")
	}
}

func TestPRGBlockAdvances(t *testing.T) {
	g := NewPRG(Block{1})
	if g.Block() == g.Block() {
		t.Fatal("consecutive PRG blocks must differ")
	}
}

func TestHKDFRFC5869Vector(t *testing.T) {
	// RFC 5869 test case 1.
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}
	info := []byte{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9}
	want := []byte{
		0x3c, 0xb2, 0x5f, 0x25, 0xfa, 0xac, 0xd5, 0x7a, 0x90, 0x43, 0x4f,
		0x64, 0xd0, 0x36, 0x2f, 0x2a, 0x2d, 0x2d, 0x0a, 0x90, 0xcf, 0x1a,
		0x5a, 0x4c, 0x5d, 0xb0, 0x2d, 0x56, 0xec, 0xc4, 0xc5, 0xbf, 0x34,
		0x00, 0x72, 0x08, 0xd5, 0xb8, 0x87, 0x18, 0x58, 0x65,
	}
	got := HKDF(ikm, salt, info, 42)
	if !bytes.Equal(got, want) {
		t.Fatalf("HKDF = %x, want %x", got, want)
	}
}

func TestHKDFNilSaltEqualsZeroSalt(t *testing.T) {
	secret := []byte("secret")
	info := []byte("info")
	zero := make([]byte, sha256.Size)
	if !bytes.Equal(HKDF(secret, nil, info, 32), HKDF(secret, zero, info, 32)) {
		t.Fatal("nil salt must equal an all-zero hash-length salt")
	}
}

func TestDeriveSessionKeysDistinct(t *testing.T) {
	ks := DeriveSessionKeys([]byte("master secret"))
	if ks.KSSL == ks.K || ks.K == ks.KRand || ks.KSSL == ks.KRand {
		t.Fatal("session keys must be pairwise distinct")
	}
	ks2 := DeriveSessionKeys([]byte("master secret"))
	if ks != ks2 {
		t.Fatal("derivation must be deterministic")
	}
	ks3 := DeriveSessionKeys([]byte("other secret"))
	if ks.KSSL == ks3.KSSL {
		t.Fatal("different secrets must give different keys")
	}
}

func TestGCMRoundTrip(t *testing.T) {
	aead := NewGCM(Block{7})
	nonce := make([]byte, aead.NonceSize())
	pt := []byte("hello, middlebox")
	ct := aead.Seal(nil, nonce, pt, []byte("aad"))
	got, err := aead.Open(nil, nonce, ct, []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
	if _, err := aead.Open(nil, nonce, ct, []byte("bad aad")); err == nil {
		t.Fatal("tampered AAD must fail to open")
	}
}

func TestMACDistinguishesMessages(t *testing.T) {
	k := Block{3}
	if MAC(k, Block{1}) == MAC(k, Block{2}) {
		t.Fatal("MAC must distinguish messages")
	}
	if MAC(Block{1}, Block{9}) == MAC(Block{2}, Block{9}) {
		t.Fatal("MAC must depend on the key")
	}
}

func TestLSB(t *testing.T) {
	var b Block
	if b.LSB() != 0 {
		t.Fatal("zero block LSB != 0")
	}
	b[BlockSize-1] = 1
	if b.LSB() != 1 {
		t.Fatal("LSB not read from the last byte's low bit")
	}
	b[BlockSize-1] = 0xFE
	if b.LSB() != 0 {
		t.Fatal("LSB must be the lowest bit only")
	}
}
