package ahocorasick

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// naive finds all matches by brute force.
func naive(patterns [][]byte, data []byte) []Match {
	var out []Match
	for end := 1; end <= len(data); end++ {
		for pi, p := range patterns {
			if len(p) > 0 && end >= len(p) && bytes.Equal(data[end-len(p):end], p) {
				out = append(out, Match{Pattern: pi, End: end})
			}
		}
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

func TestBasicMatching(t *testing.T) {
	a := New(pats("he", "she", "his", "hers"))
	got := a.FindAll([]byte("ushers"))
	sortMatches(got)
	want := []Match{{Pattern: 1, End: 4}, {Pattern: 0, End: 4}, {Pattern: 3, End: 6}}
	sortMatches(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMatchStart(t *testing.T) {
	a := New(pats("hers"))
	m := a.FindAll([]byte("ushers"))
	if len(m) != 1 || m[0].Start(a) != 2 {
		t.Fatalf("matches = %v", m)
	}
}

func TestOverlappingAndNested(t *testing.T) {
	a := New(pats("aa", "aaa"))
	got := a.FindAll([]byte("aaaa"))
	// "aa" at ends 2,3,4; "aaa" at ends 3,4.
	if len(got) != 5 {
		t.Fatalf("got %d matches: %v", len(got), got)
	}
}

func TestAgainstNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []byte("abc")
		np := 1 + rng.Intn(5)
		patterns := make([][]byte, np)
		for i := range patterns {
			p := make([]byte, 1+rng.Intn(4))
			for j := range p {
				p[j] = alphabet[rng.Intn(len(alphabet))]
			}
			patterns[i] = p
		}
		data := make([]byte, rng.Intn(64))
		for j := range data {
			data[j] = alphabet[rng.Intn(len(alphabet))]
		}
		a := New(patterns)
		got := a.FindAll(data)
		want := naive(patterns, data)
		sortMatches(got)
		sortMatches(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingEqualsOneShot(t *testing.T) {
	a := New(pats("needle", "edl", "haystack"))
	data := []byte("haystack with a needle inside another needle haystack")
	want := a.FindAll(data)
	for _, chunk := range []int{1, 2, 3, 7} {
		s := a.NewScanner()
		var got []Match
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			got = append(got, s.Scan(data[i:end])...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: %v != %v", chunk, got, want)
		}
		if s.Offset() != len(data) {
			t.Fatalf("offset = %d", s.Offset())
		}
	}
}

func TestEmptyAndDuplicatePatterns(t *testing.T) {
	a := New(pats("", "dup", "dup"))
	got := a.FindAll([]byte("a dup b"))
	if len(got) != 2 {
		t.Fatalf("duplicate patterns must both report: %v", got)
	}
	if a.NumPatterns() != 3 {
		t.Fatalf("NumPatterns = %d", a.NumPatterns())
	}
}

func TestContains(t *testing.T) {
	a := New(pats("evil"))
	if !a.Contains([]byte("some evil here")) {
		t.Fatal("Contains missed a match")
	}
	if a.Contains([]byte("all good")) {
		t.Fatal("Contains false positive")
	}
}

func TestBinaryPatterns(t *testing.T) {
	a := New([][]byte{{0x00, 0xFF, 0x80}})
	data := []byte{1, 2, 0x00, 0xFF, 0x80, 3}
	got := a.FindAll(data)
	if len(got) != 1 || got[0].End != 5 {
		t.Fatalf("binary match failed: %v", got)
	}
}

func TestLargePatternSetStates(t *testing.T) {
	var patterns [][]byte
	for i := 0; i < 500; i++ {
		patterns = append(patterns, []byte(strings.Repeat(string(rune('a'+i%26)), 3+i%5)+"x"))
	}
	a := New(patterns)
	if a.NumStates() < 100 {
		t.Fatalf("suspiciously few states: %d", a.NumStates())
	}
	// Smoke: scanning random data does not panic and finds planted needle.
	data := append([]byte("junk "), patterns[123]...)
	found := false
	for _, m := range a.FindAll(data) {
		if m.Pattern == 123 {
			found = true
		}
	}
	if !found {
		t.Fatal("planted pattern missed")
	}
}
