// Package ahocorasick implements the Aho–Corasick multi-pattern string
// matching automaton. It is the engine of the plaintext Snort-like IDS
// baseline that the paper compares BlindBox's middlebox throughput against
// (§7.2.3), and the ground truth for detection-accuracy experiments (§7.1).
package ahocorasick

// Match is one pattern occurrence.
type Match struct {
	// Pattern is the index of the matched pattern in the builder order.
	Pattern int
	// End is the byte offset just past the match in the logical stream.
	End int
}

// Start returns the match's starting offset given the pattern lengths held
// by the automaton that produced it.
func (m Match) Start(a *Automaton) int { return m.End - len(a.patterns[m.Pattern]) }

type node struct {
	next [256]int32 // goto function, -1 if absent (pre-failure resolution)
	fail int32
	out  []int32 // pattern indices terminating here
}

// Automaton is an immutable matching automaton over byte strings.
type Automaton struct {
	nodes    []node
	patterns [][]byte
}

// New builds an automaton for the given patterns. Empty patterns are
// ignored. Duplicate patterns each report their own index.
func New(patterns [][]byte) *Automaton {
	a := &Automaton{patterns: patterns}
	a.nodes = make([]node, 1, 64)
	for i := range a.nodes[0].next {
		a.nodes[0].next[i] = -1
	}
	for pi, p := range patterns {
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for _, c := range p {
			nxt := a.nodes[cur].next[c]
			if nxt == -1 {
				nxt = int32(len(a.nodes))
				var n node
				for i := range n.next {
					n.next[i] = -1
				}
				n.fail = 0
				a.nodes = append(a.nodes, n)
				a.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		a.nodes[cur].out = append(a.nodes[cur].out, int32(pi))
	}

	// BFS to assign failure links and convert to a complete DFA.
	queue := make([]int32, 0, len(a.nodes))
	for c := 0; c < 256; c++ {
		if nxt := a.nodes[0].next[c]; nxt == -1 {
			a.nodes[0].next[c] = 0
		} else {
			a.nodes[nxt].fail = 0
			queue = append(queue, nxt)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		fail := a.nodes[u].fail
		a.nodes[u].out = append(a.nodes[u].out, a.nodes[fail].out...)
		for c := 0; c < 256; c++ {
			v := a.nodes[u].next[c]
			if v == -1 {
				a.nodes[u].next[c] = a.nodes[fail].next[c]
				continue
			}
			a.nodes[v].fail = a.nodes[fail].next[c]
			queue = append(queue, v)
		}
	}
	return a
}

// NumPatterns returns how many patterns the automaton was built from.
func (a *Automaton) NumPatterns() int { return len(a.patterns) }

// NumStates returns the automaton's state count.
func (a *Automaton) NumStates() int { return len(a.nodes) }

// Scanner is streaming matching state over one logical bytestream.
type Scanner struct {
	a      *Automaton
	state  int32
	offset int
}

// NewScanner returns a scanner positioned at stream offset 0.
func (a *Automaton) NewScanner() *Scanner { return &Scanner{a: a} }

// Scan consumes data and returns all matches that end within it. Matches
// spanning Scan calls are found, since the automaton state carries over.
func (s *Scanner) Scan(data []byte) []Match {
	var out []Match
	nodes := s.a.nodes
	st := s.state
	for i, c := range data {
		st = nodes[st].next[c]
		if len(nodes[st].out) > 0 {
			for _, pi := range nodes[st].out {
				out = append(out, Match{Pattern: int(pi), End: s.offset + i + 1})
			}
		}
	}
	s.state = st
	s.offset += len(data)
	return out
}

// Offset returns the number of bytes consumed so far.
func (s *Scanner) Offset() int { return s.offset }

// FindAll is a one-shot convenience over a complete buffer.
func (a *Automaton) FindAll(data []byte) []Match {
	return a.NewScanner().Scan(data)
}

// Contains reports whether any pattern occurs in data, stopping early.
func (a *Automaton) Contains(data []byte) bool {
	st := int32(0)
	for _, c := range data {
		st = a.nodes[st].next[c]
		if len(a.nodes[st].out) > 0 {
			return true
		}
	}
	return false
}
