package pcapio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/packet"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{TimestampSec: 1, TimestampMicro: 500, Data: []byte{1, 2, 3}},
		{TimestampSec: 2, TimestampMicro: 0, Data: bytes.Repeat([]byte{9}, 1500)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d packets", len(got))
	}
	for i := range got {
		if got[i].TimestampSec != pkts[i].TimestampSec || !bytes.Equal(got[i].Data, pkts[i].Data) {
			t.Fatalf("packet %d diverged", i)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(Packet{Data: []byte{1, 2, 3, 4}})
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	NewWriter(&buf)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("empty capture: %v", err)
	}
}

func TestOversizePacketRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WritePacket(Packet{Data: make([]byte, maxSnapLen+1)}); err == nil {
		t.Fatal("oversize packet accepted")
	}
}

func TestEndToEndWithPacketLayer(t *testing.T) {
	// Segments -> frames -> pcap -> frames -> reassembled stream.
	key := packet.FlowKey{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1234, DstPort: 80}
	payload := bytes.Repeat([]byte("pcap round trip payload "), 100)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, seg := range packet.Segmentize(key, payload, 700) {
		if err := w.WritePacket(Packet{TimestampSec: uint32(i), Data: seg.Marshal()}); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	asm := packet.NewAssembler()
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := packet.Unmarshal(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		asm.Add(seg)
	}
	_, payloads := asm.Flows()
	if len(payloads) != 1 || !bytes.Equal(payloads[0], payload) {
		t.Fatal("pcap round trip corrupted the stream")
	}
}
