// Generator for p2p_golden.pcap: the BitTorrent/P2P scenario corpus
// (corpus.BitTorrentFlows, seed 1) segmentized and written as a classic
// libpcap capture. The fixture is checked in; regenerate only when the
// corpus or the capture format intentionally changes:
//
//	go run ./internal/pcapio/testdata [out.pcap]
//
// The testdata directory is ignored by the go tool, so this file does not
// enter the library build.
package main

import (
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/packet"
	"repro/internal/pcapio"
)

func main() {
	out := "internal/pcapio/testdata/p2p_golden.pcap"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	f, err := os.Create(out)
	if err != nil {
		die(err)
	}
	w, err := pcapio.NewWriter(f)
	if err != nil {
		die(err)
	}
	ts := uint32(0)
	for i, flow := range corpus.BitTorrentFlows(1) {
		key := packet.FlowKey{
			SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
			SrcPort: uint16(50000 + i), DstPort: 6881,
		}
		for _, seg := range packet.Segmentize(key, flow.Payload, 1460) {
			if err := w.WritePacket(pcapio.Packet{TimestampSec: ts, Data: seg.Marshal()}); err != nil {
				die(err)
			}
			ts++
		}
	}
	if err := f.Close(); err != nil {
		die(err)
	}
	fmt.Printf("wrote %s\n", out)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
