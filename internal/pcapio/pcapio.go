// Package pcapio reads and writes classic libpcap capture files
// (the tcpdump format), so synthetic BlindBox traces can be exchanged with
// standard tooling — the paper's accuracy experiment replays exactly such
// a capture (the ICTF 2010 trace).
package pcapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// magicLE is the little-endian pcap magic with microsecond timestamps.
const magicLE = 0xa1b2c3d4

// LinkTypeEthernet is the pcap link type for Ethernet frames.
const LinkTypeEthernet = 1

// maxSnapLen caps packet records.
const maxSnapLen = 1 << 18

// Packet is one captured record.
type Packet struct {
	// TimestampSec/TimestampMicro hold the capture time.
	TimestampSec   uint32
	TimestampMicro uint32
	// Data is the link-layer frame.
	Data []byte
}

// Writer emits a pcap stream.
type Writer struct {
	w io.Writer
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(p Packet) error {
	if len(p.Data) > maxSnapLen {
		return fmt.Errorf("pcapio: packet of %d bytes exceeds snap length", len(p.Data))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], p.TimestampSec)
	binary.LittleEndian.PutUint32(hdr[4:8], p.TimestampMicro)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(p.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(p.Data)
	return err
}

// Reader parses a pcap stream.
type Reader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	// LinkType is the capture's link type from the global header.
	LinkType uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading global header: %w", err)
	}
	rd := &Reader{r: r}
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicLE:
		rd.byteOrder = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(hdr[0:4]) == magicLE {
			rd.byteOrder = binary.BigEndian
		} else {
			return nil, errors.New("pcapio: bad magic")
		}
	}
	rd.LinkType = rd.byteOrder.Uint32(hdr[20:24])
	return rd, nil
}

// ReadPacket returns the next record, or io.EOF at end of capture.
func (r *Reader) ReadPacket() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, err
	}
	caplen := r.byteOrder.Uint32(hdr[8:12])
	if caplen > maxSnapLen {
		return Packet{}, fmt.Errorf("pcapio: record of %d bytes exceeds snap length", caplen)
	}
	p := Packet{
		TimestampSec:   r.byteOrder.Uint32(hdr[0:4]),
		TimestampMicro: r.byteOrder.Uint32(hdr[4:8]),
		Data:           make([]byte, caplen),
	}
	if _, err := io.ReadFull(r.r, p.Data); err != nil {
		return Packet{}, fmt.Errorf("pcapio: truncated record: %w", err)
	}
	return p, nil
}

// ReadAll drains the capture.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
}
