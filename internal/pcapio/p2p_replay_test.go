package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/packet"
)

const goldenP2P = "testdata/p2p_golden.pcap"

// readGolden opens the checked-in P2P capture.
func readGolden(t *testing.T) []byte {
	t.Helper()
	blob, err := os.ReadFile(goldenP2P)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with go run ./internal/pcapio/testdata): %v", err)
	}
	return blob
}

// TestGoldenP2PReplayMatchesCorpus replays the checked-in capture through
// the full parse/reassembly path and requires the reassembled flows to be
// byte-identical, flow for flow, to the deterministic BitTorrent corpus it
// was generated from — pinning both the corpus generator and the capture
// format against drift.
func TestGoldenP2PReplayMatchesCorpus(t *testing.T) {
	r, err := NewReader(bytes.NewReader(readGolden(t)))
	if err != nil {
		t.Fatal(err)
	}
	asm := packet.NewAssembler()
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := packet.Unmarshal(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		asm.Add(seg)
	}
	_, payloads := asm.Flows()

	flows := corpus.BitTorrentFlows(1)
	if len(payloads) != len(flows) {
		t.Fatalf("replayed %d flows, corpus has %d", len(payloads), len(flows))
	}
	for i, f := range flows {
		if !bytes.Equal(payloads[i], f.Payload) {
			t.Errorf("flow %d (%s): replayed payload diverges from corpus (%d vs %d bytes)",
				i, f.Name, len(payloads[i]), len(f.Payload))
		}
	}
}

// TestGoldenP2PRoundTrip reads every record of the golden capture and
// rewrites it; the result must be byte-identical to the fixture (the
// writer emits the same canonical little-endian form the fixture uses).
func TestGoldenP2PRoundTrip(t *testing.T) {
	blob := readGolden(t)
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("golden capture is empty")
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), blob) {
		t.Fatalf("rewritten capture diverges from fixture (%d vs %d bytes)", buf.Len(), len(blob))
	}
}

// TestMalformedRecordHeader exercises the record-header error paths on a
// mutated copy of the golden capture: an absurd capture length must be
// rejected before any allocation, and a record header cut mid-way must
// surface EOF cleanly.
func TestMalformedRecordHeader(t *testing.T) {
	blob := readGolden(t)

	// Corrupt the first record header's caplen field (offset 24 global
	// header + 8 into the record header) to exceed the snap length.
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[24+8:24+12], maxSnapLen+1)
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Fatal("oversize caplen accepted")
	}

	// A record header truncated mid-way reads as end of capture.
	r, err = NewReader(bytes.NewReader(blob[:24+7]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("truncated record header: got %v, want io.EOF", err)
	}

	// Declared caplen larger than the remaining bytes must error, not
	// return a short packet.
	cut := append([]byte(nil), blob[:len(blob)-10]...)
	r, err = NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = r.ReadPacket()
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("capture truncated mid-record read as clean EOF")
	}
}

// TestGoldenP2PFixtureTracked guards against the fixture silently
// vanishing from version control: it must exist and be non-trivial.
func TestGoldenP2PFixtureTracked(t *testing.T) {
	fi, err := os.Stat(filepath.FromSlash(goldenP2P))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 1024 {
		t.Fatalf("golden fixture suspiciously small: %d bytes", fi.Size())
	}
}
