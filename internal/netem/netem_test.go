package netem

import (
	"net"
	"testing"
	"time"
)

func TestModelLinkBound(t *testing.T) {
	m := Typical20Mbps()
	// 2.5 MB over 20 Mbps = 1 s, plus one RTT.
	d := m.TransferTime(2_500_000, 0, 1)
	want := time.Second + 10*time.Millisecond
	if d < want*95/100 || d > want*105/100 {
		t.Fatalf("transfer time %v, want ~%v", d, want)
	}
}

func TestModelCPUBound(t *testing.T) {
	m := Fast1Gbps()
	m.CPUBytesPerSec = 10e6 // sender can only produce 10 MB/s
	// 10 MB at 125 MB/s link = 80 ms, but CPU needs 1 s: CPU wins.
	d := m.TransferTime(10_000_000, 10_000_000, 0)
	if d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("transfer time %v, want ~1s (CPU-bound)", d)
	}
	// Without the CPU cap the link dominates.
	m.CPUBytesPerSec = 0
	d = m.TransferTime(10_000_000, 10_000_000, 0)
	if d > 200*time.Millisecond {
		t.Fatalf("transfer time %v, want link-bound ~80ms", d)
	}
}

func TestModelRounds(t *testing.T) {
	m := Model{RateBytesPerSec: Mbps(100), RTT: 20 * time.Millisecond}
	base := m.TransferTime(1000, 0, 0)
	with5 := m.TransferTime(1000, 0, 5)
	if with5-base < 99*time.Millisecond || with5-base > 101*time.Millisecond {
		t.Fatalf("5 rounds added %v, want 100ms", with5-base)
	}
}

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Fatalf("Mbps(8) = %v", Mbps(8))
	}
}

func TestThrottleShapesRate(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	// 1 MB/s, zero RTT: 100 KB should take ~100 ms.
	th := NewThrottle(client, 1e6, 0)
	done := make(chan time.Duration, 1)
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	chunk := make([]byte, 10<<10)
	for sent := 0; sent < 100<<10; sent += len(chunk) {
		if _, err := th.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	done <- time.Since(start)
	d := <-done
	if d < 80*time.Millisecond || d > 400*time.Millisecond {
		t.Fatalf("100KB at 1MB/s took %v, want ~100ms", d)
	}
	th.Close()
}

func TestThrottleAddsPropagationDelay(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	th := NewThrottle(client, 1e9, 100*time.Millisecond) // fast link, 50ms one-way
	go func() {
		buf := make([]byte, 64)
		server.Read(buf)
	}()
	start := time.Now()
	if _, err := th.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("write returned in %v, want >= ~50ms propagation", d)
	}
	th.Close()
}
