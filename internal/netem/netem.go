// Package netem emulates network links for the page-load experiments of
// Figs. 3 and 4: the paper measures at 20 Mbps × 10 ms RTT ("typical end
// user") and 1 Gbps × 10 ms (where the sender becomes CPU-bound).
//
// Two emulation styles are provided:
//
//   - Model: an analytic transfer-time model (bytes, link rate, RTT, and a
//     measured CPU encryption rate), used by the benchmark harness so a
//     page-load sweep does not take wall-clock minutes; and
//
//   - Throttle: a real-time rate/latency-shaped net.Conn wrapper for
//     examples and integration tests that want live traffic.
package netem

import (
	"net"
	"sync"
	"time"
)

// Mbps converts megabits/second to bytes/second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

// Model analytically predicts transfer times over a shaped link.
type Model struct {
	// RateBytesPerSec is the link rate.
	RateBytesPerSec float64
	// RTT is the round-trip time.
	RTT time.Duration
	// CPUBytesPerSec caps the sender's effective producing rate (the
	// BlindBox tokenize+encrypt pipeline rate, or the plain TLS rate);
	// zero means unconstrained.
	CPUBytesPerSec float64
}

// TransferTime returns the time to move wireBytes of payload requiring
// cpuBytes of sender-side processing, over rounds request/response
// round trips.
//
// The sender pipelines: the effective rate is the minimum of the link rate
// and the CPU production rate — exactly the regime change the paper
// observes between 20 Mbps (link-bound, overhead ≤ 2x) and 1 Gbps
// (CPU-bound, overhead up to 16x).
func (m Model) TransferTime(wireBytes, cpuBytes int, rounds int) time.Duration {
	link := time.Duration(float64(wireBytes) / m.RateBytesPerSec * float64(time.Second))
	var cpu time.Duration
	if m.CPUBytesPerSec > 0 {
		cpu = time.Duration(float64(cpuBytes) / m.CPUBytesPerSec * float64(time.Second))
	}
	bottleneck := link
	if cpu > bottleneck {
		bottleneck = cpu
	}
	return bottleneck + time.Duration(rounds)*m.RTT
}

// Typical20Mbps is the paper's broadband-home link.
func Typical20Mbps() Model {
	return Model{RateBytesPerSec: Mbps(20), RTT: 10 * time.Millisecond}
}

// Fast1Gbps is the paper's fast-link configuration.
func Fast1Gbps() Model {
	return Model{RateBytesPerSec: Mbps(1000), RTT: 10 * time.Millisecond}
}

// Throttle wraps a net.Conn, shaping writes to the given rate and adding
// one-way latency of RTT/2 per chunk batch. Reads are unshaped (the peer's
// Throttle shapes them).
type Throttle struct {
	net.Conn
	rate  float64 // bytes/sec
	delay time.Duration

	mu sync.Mutex
	// nextFree is when the link is next available.
	nextFree time.Time
}

// NewThrottle shapes conn at rateBytesPerSec with the given RTT.
func NewThrottle(conn net.Conn, rateBytesPerSec float64, rtt time.Duration) *Throttle {
	return &Throttle{Conn: conn, rate: rateBytesPerSec, delay: rtt / 2}
}

// Write transmits p at the shaped rate: the call blocks for the
// serialization time of p plus (once per quiet period) the propagation
// delay.
func (t *Throttle) Write(p []byte) (int, error) {
	t.mu.Lock()
	now := time.Now()
	if t.nextFree.Before(now) {
		// Link idle: pay propagation delay.
		t.nextFree = now.Add(t.delay)
	}
	serialize := time.Duration(float64(len(p)) / t.rate * float64(time.Second))
	t.nextFree = t.nextFree.Add(serialize)
	wake := t.nextFree
	t.mu.Unlock()

	if d := time.Until(wake); d > 0 {
		time.Sleep(d)
	}
	return t.Conn.Write(p)
}
