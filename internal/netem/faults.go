// Deterministic fault injection: the chaos half of the link emulator.
//
// The Model/Throttle half of this package reproduces the paper's
// well-behaved links (Figs. 3–4); this half produces the misbehaving ones
// a production middlebox must survive — added latency, indefinite stalls,
// connection resets, truncated writes and corrupted bytes. Faults trigger
// at byte offsets of the wrapped connection's read or write stream, not at
// wall-clock times, so a seeded schedule replays identically run-to-run:
// the chaos suite (chaos_e2e_test.go) and `blindbench -experiment faults`
// both rely on that determinism.

package netem

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

// The fault classes, roughly ordered from benign to destructive.
const (
	// FaultLatency delays the triggering operation by Dur, once.
	FaultLatency FaultKind = iota
	// FaultStall blocks the triggering operation for Dur (or until the
	// connection is closed) — a peer that stops draining its socket.
	FaultStall
	// FaultCorrupt XOR-flips the low bit of up to Span bytes of the
	// triggering operation's data — line noise below the TCP checksum.
	FaultCorrupt
	// FaultTruncate delivers only part of the triggering write, then
	// closes the connection — a peer crashing mid-record.
	FaultTruncate
	// FaultReset closes the connection and fails the triggering
	// operation with ErrInjectedReset — an RST on the wire.
	FaultReset
)

// String names the fault kind for logs and experiment output.
func (k FaultKind) String() string {
	switch k {
	case FaultLatency:
		return "latency"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultReset:
		return "reset"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ErrInjectedReset is the error surfaced by FaultReset and FaultTruncate:
// callers of the chaos suite match it to distinguish injected teardown
// from real bugs.
var ErrInjectedReset = errors.New("netem: injected connection reset")

// Fault is one scheduled fault. It fires at most once, on the first read
// (OnRead) or write (!OnRead) that begins at or past After bytes of that
// direction's cumulative stream.
type Fault struct {
	// Kind selects the fault class.
	Kind FaultKind
	// After is the cumulative byte offset (per direction) that arms the
	// fault; 0 fires on the first operation.
	After int64
	// OnRead applies the fault to the read side; false applies it to the
	// write side.
	OnRead bool
	// Dur is the delay (FaultLatency) or stall length (FaultStall).
	Dur time.Duration
	// Span bounds the corrupted bytes (FaultCorrupt) or the delivered
	// prefix of a truncated write (FaultTruncate). Zero means 1 byte for
	// corruption and an empty prefix for truncation.
	Span int
}

// String renders the fault compactly for logs and test failure messages.
func (f Fault) String() string {
	dir := "write"
	if f.OnRead {
		dir = "read"
	}
	return fmt.Sprintf("%s@%s+%d(dur=%s,span=%d)", f.Kind, dir, f.After, f.Dur, f.Span)
}

// FaultConn wraps a net.Conn with a deterministic fault schedule. It is
// safe for the usual net.Conn usage: one reader goroutine and one writer
// goroutine concurrently, plus Close from any goroutine. Close (local or
// injected) interrupts in-progress stalls.
type FaultConn struct {
	net.Conn

	mu         sync.Mutex
	faults     []Fault
	readBytes  int64
	writeBytes int64
	fired      []Fault
	closeOnce  sync.Once
	closed     chan struct{}
}

// NewFaultConn wraps conn with the given schedule. Faults fire in slice
// order as their byte offsets are reached; schedules from Schedule are
// already ordered per direction.
func NewFaultConn(conn net.Conn, faults ...Fault) *FaultConn {
	return &FaultConn{Conn: conn, faults: faults, closed: make(chan struct{})}
}

// Fired returns the faults that have triggered so far, in firing order —
// the chaos suite's injection transcript.
func (c *FaultConn) Fired() []Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Fault(nil), c.fired...)
}

// Close closes the wrapped connection and releases any in-progress stall.
// It is idempotent.
func (c *FaultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}

// next pops the first armed fault for the given direction, or nil.
func (c *FaultConn) next(onRead bool, pos int64) *Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, f := range c.faults {
		if f.OnRead == onRead && pos >= f.After {
			c.faults = append(c.faults[:i], c.faults[i+1:]...)
			c.fired = append(c.fired, f)
			return &f
		}
	}
	return nil
}

// sleep waits for d or until the connection closes.
func (c *FaultConn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// corrupt flips the low bit of up to span bytes of p.
func corrupt(p []byte, span int) {
	if span <= 0 {
		span = 1
	}
	for i := 0; i < len(p) && i < span; i++ {
		p[i] ^= 0x01
	}
}

// Read applies due read-side faults, then reads from the wrapped
// connection. Corruption mutates the bytes after a successful read, so the
// wrapped stream itself stays intact for the peer.
func (c *FaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	pos := c.readBytes
	c.mu.Unlock()
	if f := c.next(true, pos); f != nil {
		switch f.Kind {
		case FaultLatency, FaultStall:
			c.sleep(f.Dur)
		case FaultReset, FaultTruncate:
			_ = c.Close()
			return 0, ErrInjectedReset
		}
		if f.Kind == FaultCorrupt {
			n, err := c.countRead(p)
			if n > 0 {
				corrupt(p[:n], f.Span)
			}
			return n, err
		}
	}
	return c.countRead(p)
}

// countRead reads and advances the read-side byte counter.
func (c *FaultConn) countRead(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readBytes += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write applies due write-side faults, then writes to the wrapped
// connection. A truncating fault delivers Span bytes and closes the
// connection; corruption copies p so the caller's buffer is untouched.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	pos := c.writeBytes
	c.mu.Unlock()
	if f := c.next(false, pos); f != nil {
		switch f.Kind {
		case FaultLatency, FaultStall:
			c.sleep(f.Dur)
		case FaultReset:
			_ = c.Close()
			return 0, ErrInjectedReset
		case FaultTruncate:
			span := f.Span
			if span > len(p) {
				span = len(p)
			}
			n := 0
			if span > 0 {
				n, _ = c.countWrite(p[:span])
			}
			_ = c.Close()
			return n, ErrInjectedReset
		case FaultCorrupt:
			q := append([]byte(nil), p...)
			corrupt(q, f.Span)
			return c.countWrite(q)
		}
	}
	return c.countWrite(p)
}

// countWrite writes and advances the write-side byte counter.
func (c *FaultConn) countWrite(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.writeBytes += int64(n)
	c.mu.Unlock()
	return n, err
}

// splitmix64 steps a SplitMix64 generator — the package's only randomness
// source, so schedules never depend on math/rand's global state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ScheduleProfile bounds the fault mix Schedule draws from.
type ScheduleProfile struct {
	// Faults is how many faults to draw.
	Faults int
	// MaxOffset bounds the byte offsets faults trigger at.
	MaxOffset int64
	// MaxDelay bounds latency and stall durations.
	MaxDelay time.Duration
	// Kinds is the drawable fault mix; empty draws from all kinds.
	Kinds []FaultKind
}

// DefaultProfile is a mixed schedule sized for one chaos session: a
// handful of faults inside the first 64 KiB with sub-100ms delays (long
// enough to perturb, short enough that deadline tests stay fast).
func DefaultProfile() ScheduleProfile {
	return ScheduleProfile{Faults: 3, MaxOffset: 64 << 10, MaxDelay: 80 * time.Millisecond}
}

// Schedule draws a deterministic fault schedule from seed: the same seed
// and profile always produce the same faults, independent of prior calls.
func Schedule(seed uint64, p ScheduleProfile) []Fault {
	state := seed ^ 0xb10db0c5 // decorrelate small consecutive seeds
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultLatency, FaultStall, FaultCorrupt, FaultTruncate, FaultReset}
	}
	if p.MaxOffset <= 0 {
		p.MaxOffset = 1
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Millisecond
	}
	out := make([]Fault, 0, p.Faults)
	for i := 0; i < p.Faults; i++ {
		f := Fault{
			Kind:   kinds[splitmix64(&state)%uint64(len(kinds))],
			After:  int64(splitmix64(&state) % uint64(p.MaxOffset)),
			OnRead: splitmix64(&state)%2 == 0,
			Dur:    time.Duration(splitmix64(&state) % uint64(p.MaxDelay)),
			Span:   int(splitmix64(&state) % 64),
		}
		out = append(out, f)
	}
	return out
}
