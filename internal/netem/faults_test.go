package netem

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, DefaultProfile())
	b := Schedule(42, DefaultProfile())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := Schedule(43, DefaultProfile())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != DefaultProfile().Faults {
		t.Fatalf("schedule length %d, want %d", len(a), DefaultProfile().Faults)
	}
}

func TestFaultReset(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := NewFaultConn(c1, Fault{Kind: FaultReset, After: 4})
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := c2.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write before trigger: %v", err)
	}
	if _, err := fc.Write([]byte("more")); err != nil {
		t.Fatalf("write below offset: %v", err)
	}
	_, err := fc.Write([]byte("boom"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if _, err := fc.Write([]byte("after")); err == nil {
		t.Fatal("write succeeded on reset connection")
	}
	if fired := fc.Fired(); len(fired) != 1 || fired[0].Kind != FaultReset {
		t.Fatalf("fired transcript: %v", fired)
	}
}

func TestFaultCorruptAndTruncate(t *testing.T) {
	c1, c2 := net.Pipe()
	fc := NewFaultConn(c1,
		Fault{Kind: FaultCorrupt, After: 0, Span: 2},
		Fault{Kind: FaultTruncate, After: 4, Span: 3},
	)
	got := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		tmp := make([]byte, 16)
		for {
			n, err := c2.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				got <- buf.Bytes()
				return
			}
		}
	}()
	orig := []byte("abcd")
	if _, err := fc.Write(orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, []byte("abcd")) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	n, err := fc.Write([]byte("efghij"))
	if n != 3 || !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("truncated write: n=%d err=%v, want 3, ErrInjectedReset", n, err)
	}
	data := <-got
	want := append([]byte{'a' ^ 1, 'b' ^ 1}, []byte("cdefg")...)
	if !bytes.Equal(data, want) {
		t.Fatalf("peer saw %q, want %q", data, want)
	}
}

func TestFaultStallInterruptedByClose(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := NewFaultConn(c1, Fault{Kind: FaultStall, OnRead: true, Dur: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 8))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read arm the stall
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled read returned nil error after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the stall")
	}
}

func TestFaultLatencyDelaysButDelivers(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	fc := NewFaultConn(c1, Fault{Kind: FaultLatency, Dur: 30 * time.Millisecond})
	go func() {
		buf := make([]byte, 8)
		c2.Read(buf)
	}()
	start := time.Now()
	if _, err := fc.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault did not delay (took %v)", d)
	}
}
