// §7.1 detection-accuracy experiment: run an ICTF-like attack trace
// through the encrypted BlindBox pipeline and through the plaintext
// Snort-like baseline, and report what fraction of the baseline's keyword
// and rule detections the encrypted path reproduces (paper: 97.1% of
// keywords, 99% of rules under delimiter tokenization).

package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// AccuracyResult compares encrypted detection to plaintext ground truth.
type AccuracyResult struct {
	Mode tokenize.Mode
	// BaselineKeywords / BaselineRules: plaintext detections (ground truth).
	BaselineKeywords, BaselineRules int
	// BlindBoxKeywords / BlindBoxRules: of those, how many the encrypted
	// path also detected.
	BlindBoxKeywords, BlindBoxRules int
}

// KeywordRate is the fraction of ground-truth keyword detections found.
func (r AccuracyResult) KeywordRate() float64 {
	if r.BaselineKeywords == 0 {
		return 1
	}
	return float64(r.BlindBoxKeywords) / float64(r.BaselineKeywords)
}

// RuleRate is the fraction of ground-truth rule detections found.
func (r AccuracyResult) RuleRate() float64 {
	if r.BaselineRules == 0 {
		return 1
	}
	return float64(r.BlindBoxRules) / float64(r.BaselineRules)
}

// AccuracyOptions sizes the experiment.
type AccuracyOptions struct {
	Rules int
	Trace corpus.TraceConfig
}

// DefaultAccuracyOptions mirrors the paper's setting: the Emerging
// Threats model with regexp rules removed (the paper strips pcre rules
// before the ICTF run), 3% of injections misaligned with delimiters.
func DefaultAccuracyOptions() AccuracyOptions {
	return AccuracyOptions{Rules: 300, Trace: corpus.DefaultTraceConfig()}
}

// Accuracy runs the experiment for both tokenization modes.
func Accuracy(opt AccuracyOptions) ([]AccuracyResult, error) {
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = opt.Rules
	// Remove regexp rules, as the paper does for this experiment, and
	// suppress sub-window keywords (window tokenization cannot carry them
	// and the paper's window mode "does not affect detection accuracy").
	spec.P2Frac = 1.0
	spec.MinKeywordLen = 8
	rs, err := spec.Generate(Seed)
	if err != nil {
		return nil, err
	}
	flows := corpus.AttackTrace(Seed+1, rs, opt.Trace)
	ids := baseline.New(rs)

	var out []AccuracyResult
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		res := AccuracyResult{Mode: mode}
		for _, flow := range flows {
			truth := ids.Inspect(flow.Payload)
			kws, sids := detectEncrypted(rs, mode, flow.Payload)
			// Score the exact intersection: of the (rule, keyword) pairs
			// and rules the plaintext IDS detects, how many did the
			// encrypted path also detect?
			for ruleIdx, perContent := range truth.KeywordOffsets {
				sid := rs.Rules[ruleIdx].SID
				for contentIdx := range perContent {
					res.BaselineKeywords++
					if kws[[2]int{sid, contentIdx}] {
						res.BlindBoxKeywords++
					}
				}
			}
			for _, sid := range truth.RuleSIDs {
				res.BaselineRules++
				if sids[sid] {
					res.BlindBoxRules++
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// detectEncrypted runs one flow through tokenize→encrypt→detect and
// returns the set of matched (rule SID, keyword index) pairs and the set
// of matched rule SIDs.
func detectEncrypted(rs *rules.Ruleset, mode tokenize.Mode, payload []byte) (map[[2]int]bool, map[int]bool) {
	k := bbcrypto.DeriveBlock([]byte("accuracy"), "k")
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	eng := detect.NewEngine(rs, core.DirectTokenKeys(k, rs, mode), detect.Config{
		Mode: mode, Protocol: dpienc.ProtocolII,
	})
	kwSeen := make(map[[2]int]bool)
	sids := make(map[int]bool)
	for _, tok := range tokenize.TokenizeAll(mode, payload) {
		for _, ev := range eng.ProcessToken(sender.EncryptToken(tok)) {
			switch ev.Kind {
			case detect.KeywordMatch:
				kwSeen[[2]int{ev.Rule.SID, ev.KeywordIndex}] = true
			case detect.RuleMatch:
				sids[ev.Rule.SID] = true
			}
		}
	}
	return kwSeen, sids
}

// PrintAccuracy renders the results against the paper's numbers.
func PrintAccuracy(w io.Writer, results []AccuracyResult) {
	fmt.Fprintln(w, "§7.1 detection accuracy vs plaintext Snort-like ground truth (ICTF-like trace)")
	t := newTable(w)
	t.row("Tokenization", "keywords found", "keyword rate", "rules found", "rule rate", "paper")
	for _, r := range results {
		paper := "100% / 100% (window covers all offsets)"
		if r.Mode == tokenize.Delimiter {
			paper = "97.1% keywords, 99% rules"
		}
		t.row(r.Mode.String(),
			fmt.Sprintf("%d/%d", r.BlindBoxKeywords, r.BaselineKeywords),
			fmt.Sprintf("%.1f%%", r.KeywordRate()*100),
			fmt.Sprintf("%d/%d", r.BlindBoxRules, r.BaselineRules),
			fmt.Sprintf("%.1f%%", r.RuleRate()*100),
			paper)
	}
	t.flush()
}
