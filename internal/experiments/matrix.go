// GOMAXPROCS scaling matrix for the pipeline experiment: one row per
// requested GOMAXPROCS value, each self-tuned by internal/tuning and
// timed best-of-N. The matrix is what makes BENCH_pipeline.json honest
// about parallelism — a single flat result at whatever GOMAXPROCS the
// bench happened to run under (historically "cores": 1 and nothing else)
// cannot show whether fan-out pays, and the gate cannot hold speedup
// floors per core count without per-core rows.

package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/tuning"
)

// MatrixRow is one GOMAXPROCS point of the scaling matrix. Speedups
// compare the self-tuned paths against their sequential counterparts
// under the same GOMAXPROCS; allocs are steady-state per token.
type MatrixRow struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// Cores is runtime.NumCPU — rows with GoMaxProcs > Cores are
	// oversubscribed, and the tuner is expected to fall back to
	// sequential there (speedups ≈ 1.0).
	Cores int `json:"cores"`

	// EncryptWorkers/EncryptMinBatch/DetectShards are the tuned decision
	// for this row (EncryptMinBatch 0 means "never parallel").
	EncryptWorkers  int `json:"encrypt_workers"`
	EncryptMinBatch int `json:"encrypt_min_batch"`
	DetectShards    int `json:"detect_shards"`
	// HandoffNs/EncryptNsPerToken echo the calibration the decision came
	// from.
	HandoffNs         float64 `json:"handoff_ns"`
	EncryptNsPerToken float64 `json:"encrypt_ns_per_token"`

	EncryptSeqTokensPerSec   float64 `json:"encrypt_seq_tokens_per_sec"`
	EncryptTunedTokensPerSec float64 `json:"encrypt_tuned_tokens_per_sec"`
	// EncryptSpeedup is tuned/sequential over the stateless AES stage.
	EncryptSpeedup float64 `json:"encrypt_speedup"`

	DetectSeqTokensPerSec float64 `json:"detect_seq_tokens_per_sec"`
	// DetectParTokensPerSec is the aggregate rate of Conns engines
	// drained by the tuned shard count.
	DetectParTokensPerSec float64 `json:"detect_par_tokens_per_sec"`
	// DetectParSpeedup is the aggregate parallel rate over the
	// single-engine sequential rate.
	DetectParSpeedup float64 `json:"detect_par_speedup"`

	EncryptAllocsPerToken float64 `json:"encrypt_allocs_per_token"`
	DetectAllocsPerToken  float64 `json:"detect_allocs_per_token"`
}

// matrixReps is how many times each matrix measurement repeats; the best
// (minimum-time) rep is recorded, discarding scheduler and GC noise.
const matrixReps = 3

// bestOf runs f reps times and returns the minimum wall-clock nanoseconds.
func bestOf(reps int, f func()) int64 {
	best := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best
}

// measureAllocsPerToken reports the heap allocations of one call to f,
// normalized per token.
func measureAllocsPerToken(tokens int, f func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	if tokens == 0 {
		return 0
	}
	return float64(after.Mallocs-before.Mallocs) / float64(tokens)
}

// runMatrix measures one MatrixRow per requested GOMAXPROCS value.
// assigned/seqOut are the main run's counter-table assignments and their
// sequential ciphertexts (the conformance reference); engines are reused
// across rows via Reset, which replays identical matches.
func runMatrix(opt PipelineOptions, sender *dpienc.Sender, assigned []dpienc.TokenAssignment,
	seqOut []dpienc.EncryptedToken, mkEngine func() *detect.Engine) ([]MatrixRow, error) {

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	engines := make([]*detect.Engine, opt.Conns)
	for i := range engines {
		engines[i] = mkEngine()
	}
	scanAll := func(eng *detect.Engine, dst []detect.Event) []detect.Event {
		for off := 0; off < len(seqOut); off += opt.Batch {
			end := off + opt.Batch
			if end > len(seqOut) {
				end = len(seqOut)
			}
			dst = eng.ScanBatch(seqOut[off:end], dst[:0])
		}
		return dst
	}

	tokens := len(assigned)
	tunedOut := make([]dpienc.EncryptedToken, tokens)
	rows := make([]MatrixRow, 0, len(opt.Matrix))
	for _, gmp := range opt.Matrix {
		if gmp < 1 {
			continue
		}
		runtime.GOMAXPROCS(gmp)
		tn := tuning.Auto()
		row := MatrixRow{
			GoMaxProcs:        gmp,
			Cores:             runtime.NumCPU(),
			EncryptWorkers:    tn.EncryptWorkers,
			DetectShards:      tn.DetectShards,
			HandoffNs:         tn.Cal.HandoffNs,
			EncryptNsPerToken: tn.Cal.EncryptNsPerToken,
		}
		if tn.EncryptMinBatch != math.MaxInt {
			row.EncryptMinBatch = tn.EncryptMinBatch
		}

		// Encrypt: the stateless AES stage, sequential vs tuned, over the
		// same assignments. The tuned output must be byte-identical.
		seqNs := bestOf(matrixReps, func() { sender.EncryptAssigned(assigned, tunedOut) })
		sender.SetFanOut(tn.EncryptWorkers, tn.EncryptMinBatch)
		tunedNs := bestOf(matrixReps, func() { sender.EncryptAssignedAuto(assigned, tunedOut) })
		sender.SetFanOut(1, 0)
		for i := range seqOut {
			//lint:ignore ct-compare conformance check between two locally computed ciphertexts of the same benchmark corpus; neither side is an attacker-observable secret
			if seqOut[i] != tunedOut[i] {
				return rows, fmt.Errorf("matrix gomaxprocs=%d: tuned ciphertext differs from sequential at token %d", gmp, i)
			}
		}
		row.EncryptSeqTokensPerSec = tokensPerSec(tokens, seqNs)
		row.EncryptTunedTokensPerSec = tokensPerSec(tokens, tunedNs)
		if row.EncryptSeqTokensPerSec > 0 {
			row.EncryptSpeedup = row.EncryptTunedTokensPerSec / row.EncryptSeqTokensPerSec
		}

		// Detect: one engine sequentially vs Conns engines drained by the
		// tuned shard count (1 when the tuner chose inline detection).
		var scratch []detect.Event
		detSeqNs := bestOf(matrixReps, func() {
			engines[0].Reset(0)
			scratch = scanAll(engines[0], scratch)
		})
		workers := tn.DetectShards
		if workers < 1 {
			workers = 1
		}
		if workers > opt.Conns {
			workers = opt.Conns
		}
		detParNs := bestOf(matrixReps, func() {
			ch := make(chan *detect.Engine, opt.Conns)
			for _, e := range engines {
				e.Reset(0)
				ch <- e
			}
			close(ch)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst []detect.Event
					for e := range ch {
						dst = scanAll(e, dst)
					}
				}()
			}
			wg.Wait()
		})
		row.DetectSeqTokensPerSec = tokensPerSec(tokens, detSeqNs)
		row.DetectParTokensPerSec = tokensPerSec(tokens*opt.Conns, detParNs)
		if row.DetectSeqTokensPerSec > 0 {
			row.DetectParSpeedup = row.DetectParTokensPerSec / row.DetectSeqTokensPerSec
		}

		// Steady-state allocation audit under this row's tuning.
		sender.SetFanOut(tn.EncryptWorkers, tn.EncryptMinBatch)
		row.EncryptAllocsPerToken = measureAllocsPerToken(tokens, func() {
			sender.EncryptAssignedAuto(assigned, tunedOut)
		})
		sender.SetFanOut(1, 0)
		engines[0].Reset(0)
		scratch = scanAll(engines[0], scratch)
		engines[0].Reset(0)
		row.DetectAllocsPerToken = measureAllocsPerToken(tokens, func() {
			scratch = scanAll(engines[0], scratch)
		})

		rows = append(rows, row)
	}
	return rows, nil
}

// PrintMatrix renders the scaling matrix as an aligned text table.
func PrintMatrix(w io.Writer, rows []MatrixRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "GOMAXPROCS scaling matrix (%d cores, self-tuned fan-out, best of %d):\n",
		rows[0].Cores, matrixReps)
	t := newTable(w)
	t.row("gomaxprocs", "workers", "minbatch", "shards", "enc seq", "enc tuned", "enc x", "det seq", "det par", "det x")
	for _, r := range rows {
		minBatch := fmt.Sprintf("%d", r.EncryptMinBatch)
		if r.EncryptMinBatch == 0 {
			minBatch = "-"
		}
		t.row(
			fmt.Sprintf("%d", r.GoMaxProcs),
			fmt.Sprintf("%d", r.EncryptWorkers),
			minBatch,
			fmt.Sprintf("%d", r.DetectShards),
			fmt.Sprintf("%.2fM", r.EncryptSeqTokensPerSec/1e6),
			fmt.Sprintf("%.2fM", r.EncryptTunedTokensPerSec/1e6),
			fmt.Sprintf("%.2fx", r.EncryptSpeedup),
			fmt.Sprintf("%.2fM", r.DetectSeqTokensPerSec/1e6),
			fmt.Sprintf("%.2fM", r.DetectParTokensPerSec/1e6),
			fmt.Sprintf("%.2fx", r.DetectParSpeedup),
		)
	}
	t.flush()
}

// MatrixMarkdown renders the scaling matrix as a GitHub-flavored markdown
// table — the artifact CI uploads and PERFORMANCE.md embeds.
func MatrixMarkdown(res PipelineResult) string {
	out := fmt.Sprintf("GOMAXPROCS scaling matrix — %d rules, %d tokens, %d cores (tokens/sec; speedups are tuned vs sequential at the same GOMAXPROCS).\n\n",
		res.Rules, res.Tokens, res.Cores)
	out += "| GOMAXPROCS | tuned workers | min batch | shards | encrypt seq | encrypt tuned | encrypt speedup | detect seq | detect par (aggregate) | detect speedup | enc allocs/tok | det allocs/tok |\n"
	out += "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n"
	for _, r := range res.Matrix {
		minBatch := fmt.Sprintf("%d", r.EncryptMinBatch)
		if r.EncryptMinBatch == 0 {
			minBatch = "— (seq)"
		}
		out += fmt.Sprintf("| %d | %d | %s | %d | %.2fM | %.2fM | %.2fx | %.2fM | %.2fM | %.2fx | %.4f | %.4f |\n",
			r.GoMaxProcs, r.EncryptWorkers, minBatch, r.DetectShards,
			r.EncryptSeqTokensPerSec/1e6, r.EncryptTunedTokensPerSec/1e6, r.EncryptSpeedup,
			r.DetectSeqTokensPerSec/1e6, r.DetectParTokensPerSec/1e6, r.DetectParSpeedup,
			r.EncryptAllocsPerToken, r.DetectAllocsPerToken)
	}
	return out
}

// WriteMatrixMarkdown writes MatrixMarkdown to path.
func WriteMatrixMarkdown(path string, res PipelineResult) error {
	return os.WriteFile(path, []byte(MatrixMarkdown(res)), 0o644)
}
