package experiments

import (
	"path/filepath"
	"testing"
)

// TestScenariosConformance runs the full adversarial-scenario experiment
// and asserts the issue's acceptance criteria: at least two packs and six
// named transforms, zero undeclared misses, zero false alerts, every
// MustDetect caught, and every case conforming.
func TestScenariosConformance(t *testing.T) {
	res, err := Scenarios(DefaultScenariosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Packs) < 2 {
		t.Fatalf("%d packs, want >= 2", len(res.Packs))
	}
	if len(res.Transforms) < 6 {
		t.Fatalf("%d named transforms, want >= 6: %v", len(res.Transforms), res.Transforms)
	}
	packNames := map[string]bool{}
	for _, p := range res.Packs {
		packNames[p.Pack] = true
		if p.UndeclaredMisses != 0 {
			t.Errorf("%s: %d undeclared misses", p.Pack, p.UndeclaredMisses)
		}
		if p.FalseAlerts != 0 {
			t.Errorf("%s: %d false alerts", p.Pack, p.FalseAlerts)
		}
		if p.Detected != p.MustDetect {
			t.Errorf("%s: detection %d/%d", p.Pack, p.Detected, p.MustDetect)
		}
		if p.Cases == 0 || p.Tokens == 0 {
			t.Errorf("%s: empty pack (%d cases, %d tokens)", p.Pack, p.Cases, p.Tokens)
		}
	}
	for _, want := range []string{"evasion", "bittorrent"} {
		if !packNames[want] {
			t.Errorf("pack %q missing (have %v)", want, packNames)
		}
	}
	for _, c := range res.Cases {
		if !c.OK {
			t.Errorf("%s/%s [%s]: %s", c.Pack, c.Label, c.Outcome, c.Reason)
		}
	}
	if len(res.MissClasses) == 0 {
		t.Error("no documented miss classes exercised — the miss taxonomy is untested")
	}
}

// TestScenariosJSONRoundTrip pins the machine-readable contract benchgate
// consumes.
func TestScenariosJSONRoundTrip(t *testing.T) {
	res, err := Scenarios(DefaultScenariosOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_scenarios.json")
	if err := WriteScenariosJSON(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenariosJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packs) != len(res.Packs) || len(got.Cases) != len(res.Cases) ||
		len(got.Transforms) != len(res.Transforms) {
		t.Fatal("round trip lost packs, cases or transforms")
	}
	for i := range got.Packs {
		if got.Packs[i].Pack != res.Packs[i].Pack ||
			got.Packs[i].UndeclaredMisses != res.Packs[i].UndeclaredMisses ||
			got.Packs[i].DetectionRate != res.Packs[i].DetectionRate {
			t.Fatalf("pack %d diverged after round trip", i)
		}
	}
}
