package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/netem"
	"repro/internal/tokenize"
)

func TestTable1MatchesPaperFractions(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if diff := r.P1 - r.PaperP1; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: P1 %.3f vs paper %.3f", r.Dataset, r.P1, r.PaperP1)
		}
		if diff := r.P2 - r.PaperP2; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: P2 %.3f vs paper %.3f", r.Dataset, r.P2, r.PaperP2)
		}
		if r.P3 != 1.0 {
			t.Errorf("%s: P3 = %.3f", r.Dataset, r.P3)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Lastline") {
		t.Fatal("print output missing dataset")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 micro-benchmarks are slow")
	}
	rows, err := Table2(Table2Options{SetupKeywords: 1, MinSample: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Table2Row {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return Table2Row{}
	}
	enc := get("Encrypt (128 bits)")
	// Order-of-magnitude ordering of the paper: FE >> searchable > BB.
	if enc.FE.Value < 1000*enc.BlindBox.Value {
		t.Errorf("FE encrypt (%v) not ~orders slower than BlindBox (%v)", enc.FE.Value, enc.BlindBox.Value)
	}
	if enc.Searchable.Value < 2*enc.BlindBox.Value {
		t.Errorf("searchable encrypt (%v) not slower than BlindBox (%v)", enc.Searchable.Value, enc.BlindBox.Value)
	}
	det := get("Detect: 3K rules, 1 token")
	// BlindBox detection is logarithmic; the searchable strawman is linear
	// in rules: at 9900 keywords the gap must be large.
	if det.Searchable.Value < 100*det.BlindBox.Value {
		t.Errorf("searchable detect (%v) not ~orders slower than BlindBox (%v)", det.Searchable.Value, det.BlindBox.Value)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Detect: 3K rules, 1 packet") {
		t.Fatal("print output incomplete")
	}
}

func TestPageLoadShapes(t *testing.T) {
	rows20 := PageLoad(netem.Typical20Mbps(), tokenize.Delimiter)
	if len(rows20) != len(corpus.Sites) {
		t.Fatalf("got %d rows", len(rows20))
	}
	for _, r := range rows20 {
		whole, text := r.Overhead()
		if whole < 1.0 || text < 1.0 {
			t.Errorf("%s: BlindBox faster than TLS (%.2f/%.2f)?", r.Site, whole, text)
		}
		if whole > 6 {
			t.Errorf("%s: 20Mbps whole-page overhead %.1fx implausibly high", r.Site, whole)
		}
	}
	// Video-heavy pages must have lower whole-page overhead than the
	// text-heavy Gutenberg page (paper: 10-13% vs ~2x).
	var youtube, gutenberg float64
	for _, r := range rows20 {
		w, _ := r.Overhead()
		switch r.Site {
		case "YouTube":
			youtube = w
		case "Gutenberg":
			gutenberg = w
		}
	}
	if youtube >= gutenberg {
		t.Errorf("YouTube overhead (%.2f) not below Gutenberg (%.2f)", youtube, gutenberg)
	}

	// At 1 Gbps the text-heavy page becomes CPU-bound: its overhead must
	// exceed its 20 Mbps overhead ratio relative... simply: Gutenberg at
	// 1 Gbps shows a larger BB/TLS ratio than YouTube at 1 Gbps.
	rows1g := PageLoad(netem.Fast1Gbps(), tokenize.Delimiter)
	var yt1g, gb1g float64
	for _, r := range rows1g {
		w, _ := r.Overhead()
		switch r.Site {
		case "YouTube":
			yt1g = w
		case "Gutenberg":
			gb1g = w
		}
	}
	if gb1g < 2 {
		t.Errorf("Gutenberg at 1Gbps overhead %.1fx — CPU-bound regime not visible", gb1g)
	}
	if yt1g >= gb1g {
		t.Errorf("1Gbps: YouTube overhead (%.2f) not below Gutenberg (%.2f)", yt1g, gb1g)
	}
}

func TestBandwidthShapes(t *testing.T) {
	rows := Bandwidth()
	if len(rows) != 50 {
		t.Fatalf("got %d rows", len(rows))
	}
	s := Summarize(rows)
	// Fig. 5 directional claims: delimiter < window, overheads in sane
	// ranges around the paper's medians (4x window, 2.5x delimiter).
	if s.DelimMedian >= s.WindowMedian {
		t.Fatalf("delimiter median %.2f not below window median %.2f", s.DelimMedian, s.WindowMedian)
	}
	if s.WindowMedian < 2 || s.WindowMedian > 6 {
		t.Errorf("window median %.2f far from paper's 4x", s.WindowMedian)
	}
	if s.DelimMedian < 1.5 || s.DelimMedian > 4 {
		t.Errorf("delimiter median %.2f far from paper's 2.5x", s.DelimMedian)
	}
	if s.DelimMin > 1.3 {
		t.Errorf("best-case delimiter overhead %.2f, paper sees 1.1x", s.DelimMin)
	}
	for _, r := range rows {
		if r.DelimTokenBytes > r.WindowTokenBytes {
			t.Errorf("%s: delimiter tokens exceed window tokens", r.Page)
		}
	}
	var buf bytes.Buffer
	PrintBandwidth(&buf, rows)
	PrintFig6(&buf, rows)
	if !strings.Contains(buf.String(), "window vs gzip") {
		t.Fatal("fig6 output incomplete")
	}
}

func TestCDFMonotone(t *testing.T) {
	rows := Bandwidth()
	pts := CDF(rows, BandwidthRow.DelimOverhead)
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio < pts[i-1].Ratio || pts[i].Frac <= pts[i-1].Frac {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[len(pts)-1].Frac != 1.0 {
		t.Fatal("CDF does not reach 1")
	}
}

func TestAccuracyShapes(t *testing.T) {
	opt := DefaultAccuracyOptions()
	opt.Rules = 120
	opt.Trace.Flows = 60
	results, err := Accuracy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.BaselineKeywords == 0 || r.BaselineRules == 0 {
			t.Fatalf("%v: empty ground truth", r.Mode)
		}
		switch r.Mode {
		case tokenize.Window:
			if r.KeywordRate() < 0.99 || r.RuleRate() < 0.99 {
				t.Errorf("window accuracy %.3f/%.3f, want ~100%%", r.KeywordRate(), r.RuleRate())
			}
		case tokenize.Delimiter:
			if r.KeywordRate() < 0.90 || r.KeywordRate() > 1.0 {
				t.Errorf("delimiter keyword rate %.3f outside plausible band", r.KeywordRate())
			}
			if r.RuleRate() < 0.88 {
				t.Errorf("delimiter rule rate %.3f too low", r.RuleRate())
			}
		}
	}
	var buf bytes.Buffer
	PrintAccuracy(&buf, results)
	if !strings.Contains(buf.String(), "97.1%") {
		t.Fatal("accuracy print missing paper reference")
	}
}

func TestThroughputShapes(t *testing.T) {
	res, err := Throughput(ThroughputOptions{Rules: 400, TrafficBytes: 1 << 20, Mode: tokenize.Delimiter})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlindBoxMbps <= 0 || res.BaselineMbps <= 0 || res.SenderMbps <= 0 {
		t.Fatalf("non-positive rates: %+v", res)
	}
	var buf bytes.Buffer
	PrintThroughput(&buf, res)
	if !strings.Contains(buf.String(), "Mbps") {
		t.Fatal("throughput print malformed")
	}
}

func TestSetupLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("setup involves real garbling")
	}
	res, err := Setup(SetupOptions{MeasuredKeywords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CircuitANDs <= 0 || res.CircuitBytes <= 0 || res.GarbleOnly <= 0 {
		t.Fatalf("degenerate setup result: %+v", res)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Linearity: the 10k point is 1000x the 10 point (both extrapolated
	// from the same per-keyword cost here).
	p10, p10k := res.Points[0], res.Points[3]
	ratio := float64(p10k.Total) / float64(p10.Total)
	if ratio < 990 || ratio > 1010 {
		t.Fatalf("setup not linear: %f", ratio)
	}
	var buf bytes.Buffer
	PrintSetup(&buf, res)
	if !strings.Contains(buf.String(), "per keyword") {
		t.Fatal("setup print malformed")
	}
}

func TestMeasureCPURatesOrdering(t *testing.T) {
	tlsRate, bbRate := MeasureCPURates(tokenize.Delimiter)
	if tlsRate <= bbRate {
		t.Fatalf("plain GCM (%.0f B/s) must outpace the BlindBox pipeline (%.0f B/s)", tlsRate, bbRate)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("garbling ablation is slow")
	}
	var buf bytes.Buffer
	if err := AblationGarbleSBox(&buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationUnauthorized(&buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationGarbleRows(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gf") || !strings.Contains(out, "mux") {
		t.Fatal("sbox ablation output incomplete")
	}
	if !strings.Contains(out, "half gates") || !strings.Contains(out, "GRR3") {
		t.Fatal("rows ablation output incomplete")
	}
	if !strings.Contains(out, "key=true") || !strings.Contains(out, "key=false") {
		t.Fatalf("authorization ablation wrong: %s", out)
	}
}

func TestThroughputScalingPositive(t *testing.T) {
	agg, err := ThroughputScaling(ThroughputOptions{Rules: 100, TrafficBytes: 256 << 10, Mode: tokenize.Delimiter}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg <= 0 {
		t.Fatalf("aggregate rate %f", agg)
	}
}

func TestTimeOpSane(t *testing.T) {
	// A busy loop (sleep granularity is too coarse to calibrate against).
	var sink int
	work := func() {
		for i := 0; i < 10000; i++ {
			sink += i * i
		}
	}
	single := timeOp(5*time.Millisecond, work)
	if single <= 0 {
		t.Fatal("non-positive measurement")
	}
	// Doubling the work should roughly double the per-op time.
	double := timeOp(5*time.Millisecond, func() { work(); work() })
	ratio := float64(double) / float64(single)
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("timeOp not proportional: %v vs %v (ratio %.2f)", single, double, ratio)
	}
	_ = sink
}

func TestFormattingHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond: "500ns",
		2 * time.Microsecond:  "2.0µs",
		3 * time.Millisecond:  "3.0ms",
		2 * time.Second:       "2.00s",
		3 * time.Minute:       "3.0min",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
	if fmtBytes(512) != "512B" || fmtBytes(2048) != "2.0KB" || fmtBytes(3<<20) != "3.0MB" {
		t.Error("fmtBytes wrong")
	}
	if median([]float64{3, 1, 2}) != 2 || median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("median wrong")
	}
	lo, hi := minMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Error("minMax wrong")
	}
}
