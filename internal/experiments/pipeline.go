// Parallel pipeline experiment: per-stage timings of the batched and
// parallel sender/detection paths against their sequential forms, plus the
// machine-readable BENCH_pipeline.json consumed by scripts/bench.sh's
// regression gate. The paper evaluates single-core rates (§7.2.3) and notes
// the middlebox parallelizes across connections (§6); this experiment
// quantifies that: counter-table assignment is the only sequential step, so
// AES encryption fans out across workers and detection across
// per-connection engines.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/tokenize"
	"repro/internal/tuning"
)

// PipelineSchema identifies the JSON layout of PipelineResult. v2 added
// the per-GOMAXPROCS scaling matrix; v1 files (no matrix) are still
// readable.
const PipelineSchema = "blindbox-bench-pipeline/v2"

// pipelineSchemaV1 is the pre-matrix layout, accepted on read so old
// baselines keep gating the flat fields.
const pipelineSchemaV1 = "blindbox-bench-pipeline/v1"

// PipelineOptions sizes the pipeline experiment.
type PipelineOptions struct {
	Rules        int
	TrafficBytes int
	Mode         tokenize.Mode
	// Workers is the AES fan-out and the detection worker count; <= 0
	// means self-tuned (the internal/tuning calibration, which falls back
	// to 1 when fan-out cannot pay on this host).
	Workers int
	// Matrix lists GOMAXPROCS values to additionally measure as
	// self-tuned scaling-matrix rows (e.g. 1,2,4,8). Empty skips the
	// matrix.
	Matrix []int
	// Conns is how many independent connections the parallel detection
	// stage simulates (one engine each, pinned like middlebox shards).
	Conns int
	// Batch is the token batch size, modeling one RecTokens record.
	Batch int
	// Metrics, when non-nil, backs the instrumented detection stage and is
	// snapshotted into PipelineResult.Metrics. When nil, the stage still
	// runs against a private registry (enabled but unscraped — the metrics
	// overhead measurement), but no snapshot is embedded.
	Metrics *obs.Registry
}

// DefaultPipelineOptions mirrors the throughput experiment's sizing.
func DefaultPipelineOptions() PipelineOptions {
	return PipelineOptions{Rules: 3000, TrafficBytes: 4 << 20, Mode: tokenize.Delimiter, Conns: 8, Batch: 512}
}

// StageTimings breaks one pipeline run into its stages, in nanoseconds.
type StageTimings struct {
	TokenizeNs    int64 `json:"tokenize_ns"`
	AssignNs      int64 `json:"assign_ns"`
	EncryptSeqNs  int64 `json:"encrypt_seq_ns"`
	EncryptParNs  int64 `json:"encrypt_par_ns"`
	DetectSeqNs   int64 `json:"detect_seq_ns"`
	DetectBatchNs int64 `json:"detect_batch_ns"`
	DetectParNs   int64 `json:"detect_par_ns"`
	// DetectObsNs is the batched path with an enabled obs registry —
	// the cost of metrics collection. Zero in baselines recorded before
	// the field existed.
	DetectObsNs int64 `json:"detect_obs_ns,omitempty"`
	// DetectTraceNs is the batched path emitting one scan span per batch
	// to an enabled JSONL sink — the cost of distributed tracing (what
	// bbmb -trace adds per batch). Zero in baselines recorded before the
	// field existed.
	DetectTraceNs int64 `json:"detect_trace_ns,omitempty"`
}

// PipelineResult is the machine-readable outcome written to
// BENCH_pipeline.json.
type PipelineResult struct {
	Schema       string       `json:"schema"`
	Cores        int          `json:"cores"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	Workers      int          `json:"workers"`
	Conns        int          `json:"conns"`
	Rules        int          `json:"rules"`
	Mode         string       `json:"mode"`
	TrafficBytes int          `json:"traffic_bytes"`
	Tokens       int          `json:"tokens"`
	Stages       StageTimings `json:"stages"`

	// Tokens/sec per path. Parallel detection is aggregate across Conns.
	EncryptSeqTokensPerSec  float64 `json:"encrypt_seq_tokens_per_sec"`
	EncryptParTokensPerSec  float64 `json:"encrypt_par_tokens_per_sec"`
	DetectSeqTokensPerSec   float64 `json:"detect_seq_tokens_per_sec"`
	DetectBatchTokensPerSec float64 `json:"detect_batch_tokens_per_sec"`
	DetectParTokensPerSec   float64 `json:"detect_par_tokens_per_sec"`

	EncryptSpeedup     float64 `json:"encrypt_speedup"`
	DetectBatchSpeedup float64 `json:"detect_batch_speedup"`
	DetectParSpeedup   float64 `json:"detect_par_speedup"`

	// DetectObsTokensPerSec is the instrumented batched path's rate;
	// DetectObsSpeedup is its ratio to the uninstrumented batched path
	// (≈ 1.0 — metrics collection must be noise). Zero when read from a
	// baseline that predates the instrumented stage.
	DetectObsTokensPerSec float64 `json:"detect_obs_tokens_per_sec,omitempty"`
	DetectObsSpeedup      float64 `json:"detect_obs_speedup,omitempty"`

	// DetectTraceTokensPerSec is the span-emitting batched path's rate;
	// DetectTraceSpeedup is its ratio to the uninstrumented batched path
	// (≈ 1.0 — one span per batch must be noise). Zero when read from a
	// baseline that predates the traced stage.
	DetectTraceTokensPerSec float64 `json:"detect_trace_tokens_per_sec,omitempty"`
	DetectTraceSpeedup      float64 `json:"detect_trace_speedup,omitempty"`

	// EncryptAllocsPerToken and DetectAllocsPerToken are steady-state heap
	// allocations per token on the batch encrypt and batched detect hot
	// paths (mallocs delta across a second, warmed-up pass). The zero-alloc
	// work on these paths is what //bb:hotpath pins statically; this is the
	// dynamic counterpart the bench gate enforces.
	EncryptAllocsPerToken float64 `json:"encrypt_allocs_per_token,omitempty"`
	DetectAllocsPerToken  float64 `json:"detect_allocs_per_token,omitempty"`
	// AllocsMeasured distinguishes a measured 0.0 from a baseline recorded
	// before the allocation audit existed.
	AllocsMeasured bool `json:"allocs_measured,omitempty"`

	// Metrics is the registry snapshot taken after the instrumented stage,
	// present only when PipelineOptions.Metrics was set (blindbench
	// -metrics-out).
	Metrics map[string]any `json:"metrics,omitempty"`

	// Matrix is the per-GOMAXPROCS scaling matrix (schema v2); one row
	// per PipelineOptions.Matrix value. Empty in v1 baselines and runs
	// without -matrix.
	Matrix []MatrixRow `json:"matrix,omitempty"`
}

func tokensPerSec(tokens int, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(tokens) / (float64(ns) / 1e9)
}

// Pipeline runs every stage over one synthetic traffic sample. The
// sequential and parallel encrypt stages run over the same counter-table
// assignments, and their ciphertexts are compared — a conformance check,
// not just a timing.
func Pipeline(opt PipelineOptions) (PipelineResult, error) {
	if opt.Workers <= 0 {
		opt.Workers = tuning.Auto().EncryptWorkers
	}
	if opt.Conns <= 0 {
		opt.Conns = 8
	}
	if opt.Batch <= 0 {
		opt.Batch = 512
	}
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = opt.Rules
	spec.P2Frac = 1.0
	rs, err := spec.Generate(Seed)
	if err != nil {
		return PipelineResult{}, err
	}
	traffic := corpus.SynthesizeText(newRand(), opt.TrafficBytes)

	res := PipelineResult{
		Schema:       PipelineSchema,
		Cores:        runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workers:      opt.Workers,
		Conns:        opt.Conns,
		Rules:        len(rs.Rules),
		Mode:         opt.Mode.String(),
		TrafficBytes: len(traffic),
	}

	start := time.Now()
	toks := tokenize.TokenizeAll(opt.Mode, traffic)
	res.Stages.TokenizeNs = time.Since(start).Nanoseconds()
	res.Tokens = len(toks)

	k := bbcrypto.DeriveBlock([]byte("pipeline"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("pipeline"), "kssl")
	sender := dpienc.NewSender(k, kSSL, dpienc.ProtocolII, 0)

	start = time.Now()
	assigned := sender.AssignTokens(toks, nil)
	res.Stages.AssignNs = time.Since(start).Nanoseconds()

	seqOut := make([]dpienc.EncryptedToken, len(assigned))
	start = time.Now()
	sender.EncryptAssigned(assigned, seqOut)
	res.Stages.EncryptSeqNs = time.Since(start).Nanoseconds()

	parOut := make([]dpienc.EncryptedToken, len(assigned))
	start = time.Now()
	sender.EncryptAssignedParallel(assigned, parOut, opt.Workers)
	res.Stages.EncryptParNs = time.Since(start).Nanoseconds()
	for i := range seqOut {
		//lint:ignore ct-compare conformance check between two locally computed ciphertexts of the same benchmark corpus; neither side is an attacker-observable secret
		if seqOut[i] != parOut[i] {
			return res, fmt.Errorf("pipeline: parallel ciphertext differs from sequential at token %d", i)
		}
	}

	// Steady-state allocation audit, encrypt side: one warm pass grows the
	// sender's scratch buffer and the pooled output to capacity, then a
	// second full pass over the same tokens is measured. In steady state the
	// batch path must not allocate per token.
	measureAllocs := func(f func()) float64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		if res.Tokens == 0 {
			return 0
		}
		return float64(after.Mallocs-before.Mallocs) / float64(res.Tokens)
	}
	encBuf := dpienc.GetTokenBuf()
	encBuf = sender.EncryptTokensInto(encBuf, toks)
	res.EncryptAllocsPerToken = measureAllocs(func() {
		encBuf = sender.EncryptTokensInto(encBuf, toks)
	})
	dpienc.PutTokenBuf(encBuf)
	res.AllocsMeasured = true

	keys := core.DirectTokenKeys(k, rs, opt.Mode)
	mkEngine := func() *detect.Engine {
		return detect.NewEngine(rs, keys, detect.Config{Mode: opt.Mode, Protocol: dpienc.ProtocolII})
	}
	scanAll := func(eng *detect.Engine, dst []detect.Event) []detect.Event {
		for off := 0; off < len(seqOut); off += opt.Batch {
			end := off + opt.Batch
			if end > len(seqOut) {
				end = len(seqOut)
			}
			dst = eng.ScanBatch(seqOut[off:end], dst[:0])
		}
		return dst
	}

	eng := mkEngine()
	start = time.Now()
	for i := range seqOut {
		eng.ProcessToken(seqOut[i])
	}
	res.Stages.DetectSeqNs = time.Since(start).Nanoseconds()

	var scratch []detect.Event
	engBatch := mkEngine()
	start = time.Now()
	scratch = scanAll(engBatch, scratch)
	res.Stages.DetectBatchNs = time.Since(start).Nanoseconds()

	// Steady-state allocation audit, detect side: the batched engine has
	// seen the whole stream once (candidate maps and index buckets at
	// capacity); resetting the counter table replays the same matches
	// without the warm-up allocations.
	engBatch.Reset(0)
	res.DetectAllocsPerToken = measureAllocs(func() {
		scratch = scanAll(engBatch, scratch)
	})

	// Instrumented detection: the batched path again, with an enabled (but
	// unscraped) obs registry — what a production middlebox with an admin
	// endpoint pays per batch.
	reg := opt.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	engObs := mkEngine()
	engObs.Instrument(reg)
	start = time.Now()
	scratch = scanAll(engObs, scratch)
	res.Stages.DetectObsNs = time.Since(start).Nanoseconds()
	if opt.Metrics != nil {
		res.Metrics = opt.Metrics.Snapshot()
	}

	// Traced detection: the batched path again, emitting one scan span per
	// batch into an enabled JSONL sink — what a middlebox run with -trace
	// pays. The sink writes to io.Discard so only encode+buffer cost is
	// measured, not the disk.
	tsink := obs.NewJSONLSink(io.Discard)
	tctx := obs.NewSpanCtx()
	engTrace := mkEngine()
	start = time.Now()
	for off := 0; off < len(seqOut); off += opt.Batch {
		end := off + opt.Batch
		if end > len(seqOut) {
			end = len(seqOut)
		}
		bstart := time.Now()
		scratch = engTrace.ScanBatch(seqOut[off:end], scratch[:0])
		sp := obs.Span{
			Flow: 1, Party: obs.PartyMB, Name: obs.SpanScan, Dir: "c2s",
			Start: bstart.UnixNano(), Dur: time.Since(bstart).Nanoseconds(),
			Tokens: end - off, Shard: obs.ShardID(0),
		}
		tctx.Child().Stamp(&sp)
		tsink.Emit(sp)
	}
	res.Stages.DetectTraceNs = time.Since(start).Nanoseconds()
	if err := tsink.Flush(); err != nil {
		return res, err
	}
	_ = scratch

	// Parallel detection: Conns per-connection engines drained by Workers
	// goroutines, each engine owned by exactly one worker at a time —
	// the middlebox pool's confinement, without the network.
	engines := make(chan *detect.Engine, opt.Conns)
	for i := 0; i < opt.Conns; i++ {
		engines <- mkEngine()
	}
	close(engines)
	workers := opt.Workers
	if workers > opt.Conns {
		workers = opt.Conns
	}
	var wg sync.WaitGroup
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []detect.Event
			for e := range engines {
				dst = scanAll(e, dst)
			}
		}()
	}
	wg.Wait()
	res.Stages.DetectParNs = time.Since(start).Nanoseconds()

	res.EncryptSeqTokensPerSec = tokensPerSec(res.Tokens, res.Stages.AssignNs+res.Stages.EncryptSeqNs)
	res.EncryptParTokensPerSec = tokensPerSec(res.Tokens, res.Stages.AssignNs+res.Stages.EncryptParNs)
	res.DetectSeqTokensPerSec = tokensPerSec(res.Tokens, res.Stages.DetectSeqNs)
	res.DetectBatchTokensPerSec = tokensPerSec(res.Tokens, res.Stages.DetectBatchNs)
	res.DetectParTokensPerSec = tokensPerSec(res.Tokens*opt.Conns, res.Stages.DetectParNs)
	if res.EncryptSeqTokensPerSec > 0 {
		res.EncryptSpeedup = res.EncryptParTokensPerSec / res.EncryptSeqTokensPerSec
	}
	if res.DetectSeqTokensPerSec > 0 {
		res.DetectBatchSpeedup = res.DetectBatchTokensPerSec / res.DetectSeqTokensPerSec
		res.DetectParSpeedup = res.DetectParTokensPerSec / res.DetectSeqTokensPerSec
	}
	res.DetectObsTokensPerSec = tokensPerSec(res.Tokens, res.Stages.DetectObsNs)
	res.DetectTraceTokensPerSec = tokensPerSec(res.Tokens, res.Stages.DetectTraceNs)
	if res.DetectBatchTokensPerSec > 0 {
		res.DetectObsSpeedup = res.DetectObsTokensPerSec / res.DetectBatchTokensPerSec
		res.DetectTraceSpeedup = res.DetectTraceTokensPerSec / res.DetectBatchTokensPerSec
	}

	if len(opt.Matrix) > 0 {
		res.Matrix, err = runMatrix(opt, sender, assigned, seqOut, mkEngine)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// WritePipelineJSON writes the result to path, pretty-printed for diffs.
func WritePipelineJSON(path string, res PipelineResult) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadPipelineJSON loads a previously written result (the bench gate's
// baseline).
func ReadPipelineJSON(path string) (PipelineResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return PipelineResult{}, err
	}
	var res PipelineResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return PipelineResult{}, err
	}
	if res.Schema != PipelineSchema && res.Schema != pipelineSchemaV1 {
		return PipelineResult{}, fmt.Errorf("pipeline: %s has schema %q, want %q (or legacy %q)",
			path, res.Schema, PipelineSchema, pipelineSchemaV1)
	}
	return res, nil
}

// PrintPipeline renders the stage breakdown.
func PrintPipeline(w io.Writer, r PipelineResult) {
	fmt.Fprintf(w, "parallel pipeline, %d rules, %s tokens, %d workers, %d conns (%d cores)\n",
		r.Rules, r.Mode, r.Workers, r.Conns, r.Cores)
	t := newTable(w)
	t.row("Stage", "time", "tokens/sec")
	t.row("tokenize", fmt.Sprintf("%.1f ms", float64(r.Stages.TokenizeNs)/1e6),
		fmt.Sprintf("%.2fM", tokensPerSec(r.Tokens, r.Stages.TokenizeNs)/1e6))
	t.row("assign (counter table)", fmt.Sprintf("%.1f ms", float64(r.Stages.AssignNs)/1e6),
		fmt.Sprintf("%.2fM", tokensPerSec(r.Tokens, r.Stages.AssignNs)/1e6))
	t.row("encrypt sequential", fmt.Sprintf("%.1f ms", float64(r.Stages.EncryptSeqNs)/1e6),
		fmt.Sprintf("%.2fM", r.EncryptSeqTokensPerSec/1e6))
	t.row(fmt.Sprintf("encrypt parallel (%d workers)", r.Workers),
		fmt.Sprintf("%.1f ms", float64(r.Stages.EncryptParNs)/1e6),
		fmt.Sprintf("%.2fM", r.EncryptParTokensPerSec/1e6))
	t.row("detect per-token", fmt.Sprintf("%.1f ms", float64(r.Stages.DetectSeqNs)/1e6),
		fmt.Sprintf("%.2fM", r.DetectSeqTokensPerSec/1e6))
	t.row("detect batched", fmt.Sprintf("%.1f ms", float64(r.Stages.DetectBatchNs)/1e6),
		fmt.Sprintf("%.2fM", r.DetectBatchTokensPerSec/1e6))
	t.row("detect batched + metrics", fmt.Sprintf("%.1f ms", float64(r.Stages.DetectObsNs)/1e6),
		fmt.Sprintf("%.2fM", r.DetectObsTokensPerSec/1e6))
	t.row("detect batched + tracing", fmt.Sprintf("%.1f ms", float64(r.Stages.DetectTraceNs)/1e6),
		fmt.Sprintf("%.2fM", r.DetectTraceTokensPerSec/1e6))
	t.row(fmt.Sprintf("detect parallel (%d conns)", r.Conns),
		fmt.Sprintf("%.1f ms", float64(r.Stages.DetectParNs)/1e6),
		fmt.Sprintf("%.2fM aggregate", r.DetectParTokensPerSec/1e6))
	t.flush()
	fmt.Fprintf(w, "speedups vs sequential: encrypt %.2fx, detect batched %.2fx, detect parallel %.2fx (aggregate over %d engines)\n",
		r.EncryptSpeedup, r.DetectBatchSpeedup, r.DetectParSpeedup, r.Conns)
	fmt.Fprintf(w, "metrics overhead: instrumented batched detection at %.2fx the uninstrumented rate\n",
		r.DetectObsSpeedup)
	fmt.Fprintf(w, "tracing overhead: span-emitting batched detection at %.2fx the uninstrumented rate\n",
		r.DetectTraceSpeedup)
	if r.AllocsMeasured {
		fmt.Fprintf(w, "steady-state allocations: encrypt %.4f allocs/token, detect batched %.4f allocs/token\n",
			r.EncryptAllocsPerToken, r.DetectAllocsPerToken)
	}
	if len(r.Matrix) > 0 {
		PrintMatrix(w, r.Matrix)
	}
	fmt.Fprintln(w, "shape: assignment is the only sequential step; AES and per-connection detection scale with cores (§6)")
}
