// Figures 3 and 4: page download time for TLS vs BlindBox HTTPS (BB+TLS)
// at 20 Mbps × 10 ms and 1 Gbps × 10 ms, for whole pages and for the
// text/code subset.

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dpienc"
	"repro/internal/httpsim"
	"repro/internal/netem"
	"repro/internal/tokenize"
)

// PageLoadRow is the measured load time of one page under both transports.
type PageLoadRow struct {
	Site string
	// WholeTLS/WholeBB: full-page load times.
	WholeTLS, WholeBB time.Duration
	// TextTLS/TextBB: text/code-only load times (what gates first render).
	TextTLS, TextBB time.Duration
}

// Overhead returns BB/TLS ratios.
func (r PageLoadRow) Overhead() (whole, text float64) {
	return float64(r.WholeBB) / float64(r.WholeTLS), float64(r.TextBB) / float64(r.TextTLS)
}

// PageLoad evaluates the five paper sites over the given link model. CPU
// rates for the two transports are measured on this machine, so the
// CPU-vs-link bottleneck crossover (the paper's Fig. 3 vs Fig. 4 story)
// emerges from real costs.
func PageLoad(link netem.Model, mode tokenize.Mode) []PageLoadRow {
	tlsRate, bbRate := MeasureCPURates(mode)
	var rows []PageLoadRow
	for i, sp := range corpus.Sites {
		page := sp.Generate(Seed + int64(i))
		rows = append(rows, PageLoadRow{
			Site:     sp.Name,
			WholeTLS: loadTime(page, link, mode, false, tlsRate),
			WholeBB:  loadTime(page, link, mode, true, bbRate),
			TextTLS:  loadTime(page.TextCodeOnly(), link, mode, false, tlsRate),
			TextBB:   loadTime(page.TextCodeOnly(), link, mode, true, bbRate),
		})
	}
	return rows
}

// loadTime computes the page load time: per resource one request RTT, and
// the response bytes (plus encrypted tokens under BlindBox) through the
// link, with the sender's CPU production rate as a second bottleneck.
func loadTime(page *httpsim.Page, link netem.Model, mode tokenize.Mode, blindbox bool, cpuTextRate float64) time.Duration {
	wire := page.TotalBytes()
	cpuBytes := 0
	if blindbox {
		tokens := countPageTokens(page, mode)
		wire += tokens * dpienc.CiphertextSize
		// The expensive CPU path is tokenize+encrypt over text bytes.
		cpuBytes = page.TextBytes()
	}
	m := link
	if blindbox {
		m.CPUBytesPerSec = cpuTextRate
	} else {
		m.CPUBytesPerSec = cpuTextRate // plain GCM rate for TLS
		cpuBytes = page.TotalBytes()
	}
	// Browsers fetch ~6 resources concurrently over a persistent
	// connection pool, so the serial round-trip count is resources/6.
	rounds := 1 + (len(page.Resources)-1)/6
	return m.TransferTime(wire, cpuBytes, rounds)
}

// countPageTokens tokenizes the page's text segments as the sender would.
func countPageTokens(page *httpsim.Page, mode tokenize.Mode) int {
	tk := tokenize.New(mode)
	n := 0
	for _, seg := range page.Flow() {
		if seg.Binary {
			n += len(tk.Skip(len(seg.Data)))
		} else {
			n += len(tk.Append(seg.Data))
		}
	}
	return n + len(tk.Flush())
}

// MeasureCPURates measures this machine's sender-side production rates in
// bytes/second: plain AES-GCM (the TLS bound) and the full BlindBox
// pipeline (tokenize + DPIEnc) for the given mode.
func MeasureCPURates(mode tokenize.Mode) (tlsRate, bbRate float64) {
	const sample = 256 << 10
	text := corpus.SynthesizeText(newRand(), sample)

	gcm := bbcrypto.NewGCM(bbcrypto.Block{1})
	nonce := make([]byte, gcm.NonceSize())
	buf := make([]byte, 0, sample+64)
	perOp := timeOp(30*time.Millisecond, func() {
		buf = gcm.Seal(buf[:0], nonce, text, nil)
	})
	tlsRate = float64(sample) / perOp.Seconds()

	keys := bbcrypto.DeriveSessionKeys([]byte("cpu rate probe"))
	pipe := core.NewSenderPipeline(keys, core.Config{Protocol: dpienc.ProtocolII, Mode: mode})
	perOp = timeOp(50*time.Millisecond, func() {
		toks, _ := pipe.ProcessText(text)
		_ = toks
	})
	bbRate = float64(sample) / perOp.Seconds()
	return tlsRate, bbRate
}

// PrintPageLoad renders a Fig. 3/4-style table.
func PrintPageLoad(w io.Writer, label string, rows []PageLoadRow) {
	fmt.Fprintf(w, "Figure %s: page load time, TLS vs BlindBox(BB)+TLS\n", label)
	t := newTable(w)
	t.row("Site", "Whole:TLS", "Whole:BB", "x", "Text:TLS", "Text:BB", "x")
	for _, r := range rows {
		ow, ot := r.Overhead()
		t.row(r.Site,
			fmtDuration(r.WholeTLS), fmtDuration(r.WholeBB), fmt.Sprintf("%.1fx", ow),
			fmtDuration(r.TextTLS), fmtDuration(r.TextBB), fmt.Sprintf("%.1fx", ot))
	}
	t.flush()
}
