// §3.3 setup breakdown over a live three-party loopback session: client,
// middlebox and server each trace into their own sink, the assembler
// (internal/obs) merges the three streams into one distributed trace, and
// the experiment attributes the middlebox's rule-preparation window to the
// named §3.3 sub-steps — endpoint garbling, base OT, OT extension, label
// transfer, obfuscated rule encryption. The headline number is coverage:
// the fraction of the preparation window the named sub-spans explain
// (overlap counted once). Results land in BENCH_setup_breakdown.json via
// blindbench -experiment setupbreakdown.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/middlebox"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/transport"
)

// SetupBreakdownSchema identifies the JSON layout of SetupBreakdownResult.
const SetupBreakdownSchema = "blindbox-bench-setupbreakdown/v1"

// SetupBreakdownOptions sizes the traced three-party experiment.
type SetupBreakdownOptions struct {
	// Sessions is how many traced loopback sessions to run (one trace each).
	Sessions int
	// PayloadBytes sizes each session's echo payload.
	PayloadBytes int
	// Keywords is the ruleset size; preparation cost is linear in it (§3.3).
	Keywords int
	// TraceDir, when non-empty, receives the three parties' raw span files
	// (client.jsonl, mb.jsonl, server.jsonl) for bbtrace -assemble.
	TraceDir string
	// MinCoverage is the fraction of the middlebox preparation window the
	// named sub-spans must explain; <= 0 selects the 0.9 acceptance floor.
	MinCoverage float64
}

// DefaultSetupBreakdownOptions runs 2 sessions over a 4-keyword ruleset.
func DefaultSetupBreakdownOptions() SetupBreakdownOptions {
	return SetupBreakdownOptions{Sessions: 2, PayloadBytes: 4 << 10, Keywords: 4}
}

// SetupBreakdownResult is the machine-readable outcome written to
// BENCH_setup_breakdown.json.
type SetupBreakdownResult struct {
	Schema       string `json:"schema"`
	Sessions     int    `json:"sessions"`
	Keywords     int    `json:"keywords"`
	PayloadBytes int    `json:"payload_bytes"`

	// Traces/Orphans/Untraced describe assembly health: every session must
	// yield exactly one single-rooted trace with no orphaned or untraced
	// spans.
	Traces   int `json:"traces"`
	Orphans  int `json:"orphans"`
	Untraced int `json:"untraced_spans"`

	// WallNs/CritNs sum the per-trace wall-clock and critical path;
	// critical ≤ wall per trace is the assembler's invariant.
	WallNs int64 `json:"wall_ns"`
	CritNs int64 `json:"crit_ns"`

	// PrepNs sums the middlebox preparation windows; PrepCoveredNs is the
	// union of the §3.3 sub-span intervals clipped to those windows, and
	// PrepCoverage their ratio — the acceptance target is ≥ 0.9.
	PrepNs        int64   `json:"prep_ns"`
	PrepCoveredNs int64   `json:"prep_covered_ns"`
	PrepCoverage  float64 `json:"prep_coverage"`

	// Stages aggregates the assembled spans by name across all traces.
	Stages []obs.StageStat `json:"stages"`
}

// setupSubSpan reports whether name is one of the §3.3 preparation
// sub-steps that count toward coverage.
func setupSubSpan(name string) bool {
	switch name {
	case obs.SpanPrepGarble, obs.SpanPrepOTBase, obs.SpanPrepOTExt,
		obs.SpanPrepLabels, obs.SpanPrepRuleEnc:
		return true
	}
	return false
}

// setupBreakdownRuleset builds a Keywords-sized ruleset of distinct
// token-sized contents, so every keyword costs one real garbled-circuit
// preparation.
func setupBreakdownRuleset(keywords int) (*rules.Ruleset, error) {
	text := ""
	for i := 0; i < keywords; i++ {
		text += fmt.Sprintf("alert tcp any any -> any any (msg:\"kw%d\"; content:\"attack%02d\"; sid:%d;)\n", i, i%100, i+1)
	}
	return rules.Parse("setupbreakdown", text)
}

// SetupBreakdown runs traced loopback sessions and attributes the
// middlebox preparation window to the §3.3 sub-spans. It fails when a
// session's trace does not assemble cleanly (orphans, missing root,
// critical > wall) or when coverage falls below MinCoverage.
func SetupBreakdown(opt SetupBreakdownOptions) (SetupBreakdownResult, error) {
	def := DefaultSetupBreakdownOptions()
	if opt.Sessions <= 0 {
		opt.Sessions = def.Sessions
	}
	if opt.PayloadBytes <= 0 {
		opt.PayloadBytes = def.PayloadBytes
	}
	if opt.Keywords <= 0 {
		opt.Keywords = def.Keywords
	}
	minCov := opt.MinCoverage
	if minCov <= 0 {
		minCov = 0.9
	}
	res := SetupBreakdownResult{
		Schema:       SetupBreakdownSchema,
		Sessions:     opt.Sessions,
		Keywords:     opt.Keywords,
		PayloadBytes: opt.PayloadBytes,
	}

	g, err := rules.NewGenerator("SetupBreakdownRG")
	if err != nil {
		return res, err
	}
	rs, err := setupBreakdownRuleset(opt.Keywords)
	if err != nil {
		return res, err
	}

	var clientSink, mbSink, serverSink obs.CollectSink
	mb, err := middlebox.New(middlebox.Config{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Trace:       &mbSink,
	})
	if err != nil {
		return res, err
	}
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer serverLn.Close()
	mbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer mbLn.Close()
	defer mb.Close()

	serverCfg := transport.ConnConfig{
		Core:  core.DefaultConfig(),
		RG:    transport.RGMaterial{TagKey: g.TagKey()},
		Trace: &serverSink,
	}
	go func() {
		for {
			raw, err := serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := transport.Server(raw, serverCfg)
				if err != nil {
					_ = raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				_, _ = conn.Write(data)
				_ = conn.CloseWrite()
			}()
		}
	}()
	go mb.Serve(mbLn, serverLn.Addr().String())

	payload := append([]byte("attack00 "), corpus.SynthesizeText(newRand(), opt.PayloadBytes)...)
	for i := 0; i < opt.Sessions; i++ {
		clientCfg := transport.ConnConfig{
			Core:  core.DefaultConfig(),
			RG:    transport.RGMaterial{TagKey: g.TagKey()},
			Trace: &clientSink,
		}
		conn, err := transport.Dial(mbLn.Addr().String(), clientCfg)
		if err != nil {
			return res, fmt.Errorf("setupbreakdown: session %d dial: %w", i, err)
		}
		if _, err := conn.Write(payload); err != nil {
			_ = conn.Close()
			return res, fmt.Errorf("setupbreakdown: session %d write: %w", i, err)
		}
		if err := conn.CloseWrite(); err != nil {
			_ = conn.Close()
			return res, fmt.Errorf("setupbreakdown: session %d close-write: %w", i, err)
		}
		if _, err := io.ReadAll(conn); err != nil {
			_ = conn.Close()
			return res, fmt.Errorf("setupbreakdown: session %d read: %w", i, err)
		}
		_ = conn.Close()
	}

	// The middlebox emits its forward spans when the relay goroutines
	// drain, shortly after the client closes; wait for both directions of
	// every session before assembling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		forwards := 0
		for _, sp := range mbSink.Spans() {
			if sp.Name == obs.SpanForward {
				forwards++
			}
		}
		if forwards >= 2*opt.Sessions {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("setupbreakdown: middlebox emitted %d forward spans, want %d", forwards, 2*opt.Sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if opt.TraceDir != "" {
		if err := os.MkdirAll(opt.TraceDir, 0o755); err != nil {
			return res, err
		}
		for _, party := range []struct {
			name string
			sink *obs.CollectSink
		}{
			{"client", &clientSink}, {"mb", &mbSink}, {"server", &serverSink},
		} {
			if err := writeSpanFile(filepath.Join(opt.TraceDir, party.name+".jsonl"), party.sink.Spans()); err != nil {
				return res, err
			}
		}
	}

	all := append(append(clientSink.Spans(), mbSink.Spans()...), serverSink.Spans()...)
	flows, untraced, err := obs.AssembleSpans(all)
	if err != nil {
		return res, err
	}
	res.Traces = len(flows)
	res.Untraced = len(untraced)
	if len(flows) != opt.Sessions {
		return res, fmt.Errorf("setupbreakdown: %d sessions assembled into %d traces", opt.Sessions, len(flows))
	}

	stages := map[string]*obs.StageStat{}
	for _, ft := range flows {
		res.Orphans += len(ft.Orphans)
		if ft.Root == nil {
			return res, fmt.Errorf("setupbreakdown: trace %s has no root span", ft.Trace)
		}
		if ft.CritNs > ft.WallNs {
			return res, fmt.Errorf("setupbreakdown: trace %s critical path %dns exceeds wall %dns", ft.Trace, ft.CritNs, ft.WallNs)
		}
		res.WallNs += ft.WallNs
		res.CritNs += ft.CritNs
		for _, st := range ft.Stages() {
			agg := stages[st.Name]
			if agg == nil {
				c := st
				stages[st.Name] = &c
				continue
			}
			agg.Count += st.Count
			agg.TotalNs += st.TotalNs
			agg.CritNs += st.CritNs
			if st.MaxConc > agg.MaxConc {
				agg.MaxConc = st.MaxConc
			}
			agg.Tokens += st.Tokens
			agg.Bytes += st.Bytes
			agg.Gates += st.Gates
			agg.Rows += st.Rows
		}

		// Coverage: union of the §3.3 sub-span intervals clipped to the
		// middlebox preparation window. Endpoint garbling overlaps the
		// label transfer that waits on it; UnionNs counts the overlap once.
		nodes := ft.Nodes()
		for _, prep := range nodes {
			if prep.Span.Name != obs.SpanPrep || prep.Span.Party != obs.PartyMB {
				continue
			}
			res.PrepNs += prep.End - prep.Start
			var iv []obs.Interval
			for _, n := range nodes {
				if !setupSubSpan(n.Span.Name) {
					continue
				}
				s, e := n.Start, n.End
				if s < prep.Start {
					s = prep.Start
				}
				if e > prep.End {
					e = prep.End
				}
				if e > s {
					iv = append(iv, obs.Interval{Start: s, End: e})
				}
			}
			res.PrepCoveredNs += obs.UnionNs(iv)
		}
	}
	for _, st := range stages {
		res.Stages = append(res.Stages, *st)
	}
	sortStages(res.Stages)

	if res.Orphans > 0 {
		return res, fmt.Errorf("setupbreakdown: %d orphan span(s) — a parent link is missing", res.Orphans)
	}
	if res.Untraced > 0 {
		return res, fmt.Errorf("setupbreakdown: %d span(s) carried no trace context", res.Untraced)
	}
	if res.PrepNs <= 0 {
		return res, fmt.Errorf("setupbreakdown: no middlebox preparation span in any trace")
	}
	res.PrepCoverage = float64(res.PrepCoveredNs) / float64(res.PrepNs)
	if res.PrepCoverage < minCov {
		return res, fmt.Errorf("setupbreakdown: §3.3 sub-spans cover %.1f%% of the preparation window, want ≥ %.0f%%",
			100*res.PrepCoverage, 100*minCov)
	}
	return res, nil
}

// sortStages orders stage aggregates by critical time descending, then
// name — the same order FlowTrace.Stages uses.
func sortStages(stages []obs.StageStat) {
	for i := 1; i < len(stages); i++ {
		for j := i; j > 0; j-- {
			a, b := &stages[j-1], &stages[j]
			if a.CritNs > b.CritNs || (a.CritNs == b.CritNs && a.Name < b.Name) {
				break
			}
			*a, *b = *b, *a
		}
	}
}

// writeSpanFile writes spans to path in the JSONL format bbmb -trace uses,
// so bbtrace -assemble consumes the files unchanged.
func writeSpanFile(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sink := obs.NewJSONLSink(f)
	for _, sp := range spans {
		sink.Emit(sp)
	}
	if err := sink.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// WriteSetupBreakdownJSON writes the result to path, pretty-printed for
// diffs.
func WriteSetupBreakdownJSON(path string, res SetupBreakdownResult) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// PrintSetupBreakdown renders the §3.3 attribution.
func PrintSetupBreakdown(w io.Writer, r SetupBreakdownResult) {
	fmt.Fprintf(w, "§3.3 setup breakdown: %d traced session(s), %d keyword(s)\n", r.Sessions, r.Keywords)
	fmt.Fprintf(w, "assembled %d trace(s): wall %s, critical %s; %d orphan(s), %d untraced\n",
		r.Traces, fmtDuration(time.Duration(r.WallNs)), fmtDuration(time.Duration(r.CritNs)), r.Orphans, r.Untraced)
	t := newTable(w)
	t.row("Stage", "count", "total", "critical", "gates", "bytes")
	for _, st := range r.Stages {
		t.row(st.Name, fmt.Sprintf("%d", st.Count),
			fmtDuration(time.Duration(st.TotalNs)), fmtDuration(time.Duration(st.CritNs)),
			fmt.Sprintf("%d", st.Gates), fmtBytes(st.Bytes))
	}
	t.flush()
	fmt.Fprintf(w, "preparation window %s, named §3.3 sub-spans cover %s (%.1f%%, floor 90%%)\n",
		fmtDuration(time.Duration(r.PrepNs)), fmtDuration(time.Duration(r.PrepCoveredNs)), 100*r.PrepCoverage)
}
