// Table 1: fraction of rules in each dataset addressable by Protocols I,
// II and III.

package experiments

import (
	"fmt"
	"io"

	"repro/internal/corpus"
)

// Table1Row is one dataset's classification result.
type Table1Row struct {
	Dataset    string
	Rules      int
	P1, P2, P3 float64
	// Paper columns for side-by-side comparison.
	PaperP1, PaperP2, PaperP3 float64
}

// paperTable1 holds the published numbers.
var paperTable1 = map[string][3]float64{
	"Document watermarking":         {1.00, 1.00, 1.00},
	"Parental filtering":            {1.00, 1.00, 1.00},
	"Snort Community (HTTP)":        {0.03, 0.67, 1.00},
	"Snort Emerging Threats (HTTP)": {0.016, 0.42, 1.00},
	"McAfee Stonesoft IDS":          {0.05, 0.40, 1.00},
	"Lastline":                      {0.00, 0.291, 1.00},
}

// Table1 generates each dataset model, parses it with the real rule parser
// and classifies every rule into its minimum supporting protocol.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range corpus.Datasets {
		rs, err := spec.Generate(Seed)
		if err != nil {
			return nil, fmt.Errorf("generating %s: %w", spec.Name, err)
		}
		p1, p2, p3 := rs.ProtocolBreakdown()
		paper := paperTable1[spec.Name]
		rows = append(rows, Table1Row{
			Dataset: spec.Name, Rules: len(rs.Rules),
			P1: p1, P2: p2, P3: p3,
			PaperP1: paper[0], PaperP2: paper[1], PaperP3: paper[2],
		})
	}
	return rows, nil
}

// PrintTable1 renders the rows like the paper's Table 1, with the paper's
// numbers alongside.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: fraction of rules addressable with Protocols I, II, III")
	t := newTable(w)
	t.row("Dataset", "Rules", "I.", "II.", "III.", "paper I.", "paper II.", "paper III.")
	for _, r := range rows {
		t.row(r.Dataset, fmt.Sprintf("%d", r.Rules),
			pct(r.P1), pct(r.P2), pct(r.P3),
			pct(r.PaperP1), pct(r.PaperP2), pct(r.PaperP3))
	}
	t.flush()
}

func pct(f float64) string {
	if f == 1 {
		return "100%"
	}
	return fmt.Sprintf("%.1f%%", f*100)
}
