// Adversarial-scenario experiment: run the evasion transform suite and
// the BitTorrent/P2P scenario pack through the offline encrypted path and
// report per-scenario detection rate, false-alert rate and tokens/sec.
// Unlike the §7.1 accuracy experiment (aggregate rates on random
// injections), every case here carries pinned per-case ground truth with
// an expected outcome, so a single undeclared miss or false alert is a
// hard failure rather than a rate shift.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/evasion"
	"repro/internal/packet"
	"repro/internal/tokenize"
)

// ScenarioCase records one adversarial case's outcome in the report.
type ScenarioCase struct {
	// Pack and Transform locate the case; Label is unique within the pack.
	Pack, Transform, Label string
	// Outcome is the declared expectation (must-detect, documented-miss,
	// must-not-false-alert).
	Outcome string
	// SIDs are the targeted rule SIDs (one for evasion cases, the pinned
	// ground-truth set for flow scenarios).
	SIDs []int
	// DetectedSIDs are the rules the encrypted path fully matched.
	DetectedSIDs []int
	// MissClass names the declared miss taxonomy entry, if any.
	MissClass string `json:",omitempty"`
	// OK reports conformance; Reason explains a non-conforming case.
	OK     bool
	Reason string `json:",omitempty"`
}

// ScenarioPack aggregates one scenario pack's counters.
type ScenarioPack struct {
	// Pack names the scenario pack; Mode is the tokenization mode it ran
	// under.
	Pack, Mode string
	// Cases counts all cases; MustDetect/Detected give the detection rate
	// numerator and denominator; Benign counts must-not-false-alert cases.
	Cases, MustDetect, Detected, Benign int
	// DocumentedMisses counts conforming declared misses;
	// UndeclaredMisses counts target SIDs the encrypted path missed
	// without a valid declaration; FalseAlerts counts benign cases that
	// produced any rule alert.
	DocumentedMisses, UndeclaredMisses, FalseAlerts int
	// DetectionRate is Detected/MustDetect; FalseAlertRate is
	// FalseAlerts/Benign (both 1-safe when the denominator is zero).
	DetectionRate, FalseAlertRate float64
	// Tokens and TokensPerSec measure the encrypted-path work.
	Tokens       int
	TokensPerSec float64
	// MissClasses lists the miss taxonomy entries this pack exercised.
	MissClasses []string `json:",omitempty"`
}

// ScenariosResult is the machine-readable BENCH_scenarios.json payload.
type ScenariosResult struct {
	// Seed pins the corpora.
	Seed int64
	// Transforms lists every named evasion transform the suite ran.
	Transforms []string
	// MissClasses is the union of exercised miss classes; the gate checks
	// each against the DESIGN.md enumeration.
	MissClasses []string
	// Packs and Cases hold the per-pack aggregates and per-case records.
	Packs []ScenarioPack
	Cases []ScenarioCase
}

// ScenariosOptions sizes the experiment.
type ScenariosOptions struct {
	// Seed pins the corpora.
	Seed int64
}

// DefaultScenariosOptions uses the repo-wide experiment seed.
func DefaultScenariosOptions() ScenariosOptions { return ScenariosOptions{Seed: Seed} }

// Scenarios runs the evasion suite (both tokenization modes) and the
// BitTorrent pack (delimiter mode, replayed through the capture path).
func Scenarios(opt ScenariosOptions) (*ScenariosResult, error) {
	res := &ScenariosResult{Seed: opt.Seed}
	for _, tr := range evasion.Transforms() {
		res.Transforms = append(res.Transforms, tr.Name)
	}
	for _, pc := range evasion.PacketCases(opt.Seed) {
		res.Transforms = append(res.Transforms, pc.Transform)
	}
	res.Transforms = dedupSorted(res.Transforms)

	for _, mode := range []tokenize.Mode{tokenize.Delimiter, tokenize.Window} {
		pack, cases, err := runEvasionPack(opt.Seed, mode)
		if err != nil {
			return nil, err
		}
		res.Packs = append(res.Packs, pack)
		res.Cases = append(res.Cases, cases...)
	}
	pack, cases, err := runBitTorrentPack(opt.Seed)
	if err != nil {
		return nil, err
	}
	res.Packs = append(res.Packs, pack)
	res.Cases = append(res.Cases, cases...)

	var all []string
	for _, p := range res.Packs {
		all = append(all, p.MissClasses...)
	}
	res.MissClasses = dedupSorted(all)
	return res, nil
}

// runEvasionPack runs every stream and packet evasion case under mode.
func runEvasionPack(seed int64, mode tokenize.Mode) (ScenarioPack, []ScenarioCase, error) {
	rs, err := evasion.Rules()
	if err != nil {
		return ScenarioPack{}, nil, err
	}
	pack := ScenarioPack{Pack: "evasion", Mode: mode.String()}
	if mode == tokenize.Window {
		pack.Pack = "evasion-window"
	}
	r := evasion.NewRunner(rs, mode)

	var verdicts []evasion.Verdict
	start := time.Now()
	for _, c := range evasion.StreamCases(mode) {
		verdicts = append(verdicts, r.Run(c))
	}
	for _, pc := range evasion.PacketCases(seed) {
		v, err := r.RunPacket(pc)
		if err != nil {
			return ScenarioPack{}, nil, err
		}
		verdicts = append(verdicts, v)
	}
	elapsed := time.Since(start)

	var cases []ScenarioCase
	missClasses := map[string]bool{}
	for _, v := range verdicts {
		c := v.Case
		sc := ScenarioCase{
			Pack:         pack.Pack,
			Transform:    c.Transform,
			Label:        c.Label,
			Outcome:      c.Expect.String(),
			SIDs:         []int{c.SID},
			DetectedSIDs: v.DetectedSIDs,
			MissClass:    c.MissClass,
			OK:           v.OK,
			Reason:       v.Reason,
		}
		cases = append(cases, sc)
		pack.Cases++
		pack.Tokens += v.Tokens
		switch c.Expect {
		case evasion.MustDetect:
			pack.MustDetect++
			if containsSID(v.DetectedSIDs, c.SID) {
				pack.Detected++
			} else {
				pack.UndeclaredMisses++
			}
		case evasion.DocumentedMiss:
			if v.OK {
				pack.DocumentedMisses++
				missClasses[c.MissClass] = true
			} else {
				pack.UndeclaredMisses++
			}
		case evasion.MustNotFalseAlert:
			pack.Benign++
			if len(v.DetectedSIDs) != 0 {
				pack.FalseAlerts++
			}
		}
	}
	finishPack(&pack, elapsed, missClasses)
	return pack, cases, nil
}

// runBitTorrentPack replays every P2P flow through the capture path
// (segmentize → pcap → reassemble) and scans the reassembled view.
func runBitTorrentPack(seed int64) (ScenarioPack, []ScenarioCase, error) {
	rs, err := corpus.BitTorrentRules()
	if err != nil {
		return ScenarioPack{}, nil, err
	}
	pack := ScenarioPack{Pack: "bittorrent", Mode: tokenize.Delimiter.String()}
	r := evasion.NewRunner(rs, tokenize.Delimiter)
	key := packet.FlowKey{
		SrcIP: [4]byte{10, 0, 0, 3}, DstIP: [4]byte{10, 0, 0, 4},
		SrcPort: 51413, DstPort: 6881,
	}

	var cases []ScenarioCase
	start := time.Now()
	for _, f := range corpus.BitTorrentFlows(seed) {
		view, err := evasion.ReplayThroughCapture(packet.Segmentize(key, f.Payload, 1460))
		if err != nil {
			return ScenarioPack{}, nil, err
		}
		sids, tokens := r.Detect(view)
		pack.Tokens += tokens
		pack.Cases++

		sc := ScenarioCase{
			Pack:         pack.Pack,
			Transform:    "p2p-flow",
			Label:        f.Name,
			SIDs:         f.MustSIDs,
			DetectedSIDs: sids,
		}
		if len(f.MustSIDs) == 0 {
			sc.Outcome = evasion.MustNotFalseAlert.String()
			pack.Benign++
			if len(sids) != 0 {
				pack.FalseAlerts++
				sc.Reason = fmt.Sprintf("benign flow alerted on %v", sids)
			} else {
				sc.OK = true
			}
		} else {
			sc.Outcome = evasion.MustDetect.String()
			pack.MustDetect++
			missing, extra := diffSIDs(f.MustSIDs, sids)
			switch {
			case len(missing) != 0:
				pack.UndeclaredMisses++
				sc.Reason = fmt.Sprintf("ground-truth sids %v not detected (got %v)", missing, sids)
			case len(extra) != 0:
				pack.FalseAlerts++
				sc.Reason = fmt.Sprintf("unexpected rule alerts %v beyond ground truth %v", extra, f.MustSIDs)
			default:
				pack.Detected++
				sc.OK = true
			}
		}
		cases = append(cases, sc)
	}
	finishPack(&pack, time.Since(start), nil)
	return pack, cases, nil
}

// finishPack computes the pack's derived rates.
func finishPack(p *ScenarioPack, elapsed time.Duration, missClasses map[string]bool) {
	p.DetectionRate, p.FalseAlertRate = 1, 0
	if p.MustDetect > 0 {
		p.DetectionRate = float64(p.Detected) / float64(p.MustDetect)
	}
	if p.Benign > 0 {
		p.FalseAlertRate = float64(p.FalseAlerts) / float64(p.Benign)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		p.TokensPerSec = float64(p.Tokens) / secs
	}
	for mc := range missClasses {
		p.MissClasses = append(p.MissClasses, mc)
	}
	sort.Strings(p.MissClasses)
}

// diffSIDs returns ground-truth SIDs absent from got and detected SIDs
// absent from the ground truth.
func diffSIDs(want, got []int) (missing, extra []int) {
	wantSet := map[int]bool{}
	for _, sid := range want {
		wantSet[sid] = true
	}
	gotSet := map[int]bool{}
	for _, sid := range got {
		gotSet[sid] = true
		if !wantSet[sid] {
			extra = append(extra, sid)
		}
	}
	for _, sid := range want {
		if !gotSet[sid] {
			missing = append(missing, sid)
		}
	}
	return missing, extra
}

func containsSID(sids []int, want int) bool {
	for _, sid := range sids {
		if sid == want {
			return true
		}
	}
	return false
}

func dedupSorted(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// WriteScenariosJSON writes the result to path, pretty-printed for diffs.
func WriteScenariosJSON(path string, res *ScenariosResult) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadScenariosJSON loads a result written by WriteScenariosJSON.
func ReadScenariosJSON(path string) (*ScenariosResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res ScenariosResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

// PrintScenarios renders the per-pack summary and any non-conforming
// cases.
func PrintScenarios(w io.Writer, res *ScenariosResult) {
	fmt.Fprintf(w, "adversarial scenarios: %d packs, %d transforms (%s)\n",
		len(res.Packs), len(res.Transforms), strings.Join(res.Transforms, ", "))
	t := newTable(w)
	t.row("Pack", "mode", "cases", "detection", "false alerts", "documented misses", "undeclared", "tokens/sec")
	for _, p := range res.Packs {
		t.row(p.Pack, p.Mode,
			fmt.Sprintf("%d", p.Cases),
			fmt.Sprintf("%d/%d (%.0f%%)", p.Detected, p.MustDetect, p.DetectionRate*100),
			fmt.Sprintf("%d/%d benign", p.FalseAlerts, p.Benign),
			fmt.Sprintf("%d [%s]", p.DocumentedMisses, strings.Join(p.MissClasses, " ")),
			fmt.Sprintf("%d", p.UndeclaredMisses),
			fmt.Sprintf("%.0f", p.TokensPerSec))
	}
	t.flush()
	for _, c := range res.Cases {
		if !c.OK {
			fmt.Fprintf(w, "NONCONFORMING %s/%s [%s]: %s\n", c.Pack, c.Label, c.Outcome, c.Reason)
		}
	}
}
