// Figure 5 (a/b): bandwidth overhead of token transmission over the
// top-50 page dataset, under window-based and delimiter-based
// tokenization. Figure 6: CDF of the transmitted-bytes ratio relative to
// plaintext and to gzip-compressed baselines.

package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/corpus"
	"repro/internal/dpienc"
	"repro/internal/httpsim"
	"repro/internal/tokenize"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(Seed)) }

// BandwidthRow is one page's token-overhead measurement.
type BandwidthRow struct {
	Page       string
	TotalBytes int
	TextBytes  int
	BinBytes   int
	// WindowTokenBytes / DelimTokenBytes are the encrypted-token bytes
	// added under each tokenization (5 bytes per token).
	WindowTokenBytes int
	DelimTokenBytes  int
	// GzipBytes is the gzip baseline for Fig. 6.
	GzipBytes int
}

// Overhead ratios vs. the plaintext page.
func (r BandwidthRow) WindowOverhead() float64 {
	return float64(r.TotalBytes+r.WindowTokenBytes) / float64(r.TotalBytes)
}

// DelimOverhead is the delimiter-tokenization ratio.
func (r BandwidthRow) DelimOverhead() float64 {
	return float64(r.TotalBytes+r.DelimTokenBytes) / float64(r.TotalBytes)
}

// WindowVsGzip and DelimVsGzip are Fig. 6's compressed-baseline ratios:
// transmitted bytes with BlindBox over transmitted bytes with SSL+gzip.
func (r BandwidthRow) WindowVsGzip() float64 {
	return float64(r.GzipBytes+r.WindowTokenBytes) / float64(r.GzipBytes)
}

// DelimVsGzip is the delimiter-mode gzip-relative ratio.
func (r BandwidthRow) DelimVsGzip() float64 {
	return float64(r.GzipBytes+r.DelimTokenBytes) / float64(r.GzipBytes)
}

// Bandwidth measures every top-50 page under both tokenizations.
func Bandwidth() []BandwidthRow {
	pages := corpus.Top50(Seed)
	rows := make([]BandwidthRow, 0, len(pages))
	for _, p := range pages {
		rows = append(rows, measurePage(p))
	}
	// The paper's Fig. 5 x-axis orders pages; order by total size.
	sort.Slice(rows, func(i, j int) bool { return rows[i].TotalBytes < rows[j].TotalBytes })
	return rows
}

func measurePage(p *httpsim.Page) BandwidthRow {
	st := p.Stats()
	row := BandwidthRow{
		Page:       p.Name,
		TotalBytes: st.TotalBytes,
		TextBytes:  st.TextBytes,
		BinBytes:   st.BinBytes,
		GzipBytes:  p.GzipTextBytes(),
	}
	row.WindowTokenBytes = countPageTokens(p, tokenize.Window) * dpienc.CiphertextSize
	row.DelimTokenBytes = countPageTokens(p, tokenize.Delimiter) * dpienc.CiphertextSize
	return row
}

// BandwidthSummary aggregates Fig. 5's headline statistics.
type BandwidthSummary struct {
	WindowMedian, WindowMin, WindowMax float64
	DelimMedian, DelimMin, DelimMax    float64
}

// Summarize computes medians and extremes over the rows.
func Summarize(rows []BandwidthRow) BandwidthSummary {
	var win, del []float64
	for _, r := range rows {
		win = append(win, r.WindowOverhead())
		del = append(del, r.DelimOverhead())
	}
	var s BandwidthSummary
	s.WindowMedian = median(append([]float64(nil), win...))
	s.DelimMedian = median(append([]float64(nil), del...))
	s.WindowMin, s.WindowMax = minMax(win)
	s.DelimMin, s.DelimMax = minMax(del)
	return s
}

// PrintBandwidth renders Fig. 5 as per-page rows plus the summary the
// paper quotes (window: median 4x worst 24x; delimiter: median 2.5x,
// best 1.1x, worst 14x).
func PrintBandwidth(w io.Writer, rows []BandwidthRow) {
	fmt.Fprintln(w, "Figure 5: bandwidth overhead over the top-50 page dataset")
	t := newTable(w)
	t.row("Page", "Total", "Text", "Binary", "WindowTokens", "ratio", "DelimTokens", "ratio")
	for _, r := range rows {
		t.row(r.Page, fmtBytes(r.TotalBytes), fmtBytes(r.TextBytes), fmtBytes(r.BinBytes),
			fmtBytes(r.WindowTokenBytes), fmt.Sprintf("%.1fx", r.WindowOverhead()),
			fmtBytes(r.DelimTokenBytes), fmt.Sprintf("%.1fx", r.DelimOverhead()))
	}
	t.flush()
	s := Summarize(rows)
	fmt.Fprintf(w, "window:    median %.1fx  min %.1fx  max %.1fx   (paper: median 4x, max 24x)\n",
		s.WindowMedian, s.WindowMin, s.WindowMax)
	fmt.Fprintf(w, "delimiter: median %.1fx  min %.1fx  max %.1fx   (paper: median 2.5x, min 1.1x, max 14x)\n",
		s.DelimMedian, s.DelimMin, s.DelimMax)
}

// CDFPoint is one point of a Fig. 6 curve.
type CDFPoint struct {
	Ratio float64
	Frac  float64
}

// CDF builds the cumulative distribution of a ratio extractor over rows.
func CDF(rows []BandwidthRow, f func(BandwidthRow) float64) []CDFPoint {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = f(r)
	}
	sort.Float64s(vals)
	pts := make([]CDFPoint, len(vals))
	for i, v := range vals {
		pts[i] = CDFPoint{Ratio: v, Frac: float64(i+1) / float64(len(vals))}
	}
	return pts
}

// PrintFig6 renders the four Fig. 6 CDFs at decile resolution.
func PrintFig6(w io.Writer, rows []BandwidthRow) {
	fmt.Fprintln(w, "Figure 6: CDF of transmitted-bytes ratio (BlindBox / baseline)")
	curves := []struct {
		name string
		f    func(BandwidthRow) float64
	}{
		{"delim vs plaintext", BandwidthRow.DelimOverhead},
		{"window vs plaintext", BandwidthRow.WindowOverhead},
		{"delim vs gzip", BandwidthRow.DelimVsGzip},
		{"window vs gzip", BandwidthRow.WindowVsGzip},
	}
	t := newTable(w)
	header := []string{"CDF"}
	for p := 10; p <= 100; p += 10 {
		header = append(header, fmt.Sprintf("p%d", p))
	}
	t.row(header...)
	for _, c := range curves {
		pts := CDF(rows, c.f)
		cells := []string{c.name}
		for p := 10; p <= 100; p += 10 {
			idx := p*len(pts)/100 - 1
			if idx < 0 {
				idx = 0
			}
			cells = append(cells, fmt.Sprintf("%.1fx", pts[idx].Ratio))
		}
		t.row(cells...)
	}
	t.flush()
}
