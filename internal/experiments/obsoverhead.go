// Observability overhead experiment: the cost of the always-on flight
// recorder (DESIGN.md §8). Four passes run the batched detection path over
// the same encrypted token stream, split into simulated flows:
//
//   - off: no recorder, no span construction — the tracing-off baseline.
//   - unsampled: every flow records into its flight-recorder ring (one scan
//     span per batch) but none is head-sampled and none ends interesting,
//     so every ring is dropped. This is the steady-state cost the ≤5%
//     overhead budget covers: at 1% sampling, 99% of flows pay exactly this.
//   - head: every flow is head-sampled and streams its spans through a
//     JSONL sink to io.Discard — the fully-traced ceiling.
//   - scraped: the unsampled configuration again, but with the pass
//     registry served on a loopback admin endpoint and a fleet scraper
//     (internal/obs/agg, what bbfleet runs) polling it at 10 Hz. Serving
//     /metrics walks every registry cell, so this prices the contention
//     between scrape reads and the hot path's atomic writes — being
//     monitored must cost at most 5% of the unscraped rate.
//
// A separate tight loop over the record path measures allocations and
// nanoseconds per recorded span; the bench gate pins the former to zero at
// steady state. The result is written to BENCH_obs.json and enforced by
// `go run ./scripts/benchgate -obs BENCH_obs.json`.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/obs/agg"
	"repro/internal/tokenize"
)

// ObsOverheadSchema identifies the JSON layout of ObsOverheadResult.
const ObsOverheadSchema = "blindbox-bench-obs/v1"

// ObsOverheadOptions sizes the observability overhead experiment.
type ObsOverheadOptions struct {
	Rules        int
	TrafficBytes int
	Mode         tokenize.Mode
	// Flows is how many simulated flows the token stream is split into;
	// each gets its own flight recorder and trace context.
	Flows int
	// Batch is the token batch size; one scan span is recorded per batch.
	Batch int
	// Events is the per-flow ring capacity (<= 0 means the recorder
	// default).
	Events int
	// Reps is how many measured repetitions each pass runs; the minimum is
	// kept, discounting scheduler noise.
	Reps int
}

// DefaultObsOverheadOptions mirrors the pipeline experiment's sizing at a
// flow granularity that exercises ring reuse.
func DefaultObsOverheadOptions() ObsOverheadOptions {
	return ObsOverheadOptions{Rules: 1000, TrafficBytes: 2 << 20, Mode: tokenize.Delimiter, Flows: 64, Batch: 512, Reps: 3}
}

// ObsOverheadResult is the machine-readable outcome written to
// BENCH_obs.json.
type ObsOverheadResult struct {
	Schema       string `json:"schema"`
	Cores        int    `json:"cores"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	Rules        int    `json:"rules"`
	Mode         string `json:"mode"`
	TrafficBytes int    `json:"traffic_bytes"`
	Tokens       int    `json:"tokens"`
	Flows        int    `json:"flows"`
	Batch        int    `json:"batch"`
	Events       int    `json:"events"`

	// Minimum wall time per pass over Reps repetitions.
	OffNs       int64 `json:"off_ns"`
	UnsampledNs int64 `json:"unsampled_ns"`
	HeadNs      int64 `json:"head_ns"`
	// ScrapedNs is the unsampled pass re-run while a fleet scraper polls
	// the registry at 10 Hz (0 in results predating the fleet plane).
	ScrapedNs int64 `json:"scraped_ns,omitempty"`

	OffTokensPerSec       float64 `json:"off_tokens_per_sec"`
	UnsampledTokensPerSec float64 `json:"unsampled_tokens_per_sec"`
	HeadTokensPerSec      float64 `json:"head_tokens_per_sec"`
	ScrapedTokensPerSec   float64 `json:"scraped_tokens_per_sec,omitempty"`

	// UnsampledOverheadRatio is unsampled/off tokens-per-sec — the gated
	// quantity: a traced-but-unsampled flow must keep >= 95% of the
	// tracing-off rate. HeadOverheadRatio is the fully-streamed analogue
	// (informational; head flows are the sampled few).
	UnsampledOverheadRatio float64 `json:"unsampled_overhead_ratio"`
	HeadOverheadRatio      float64 `json:"head_overhead_ratio"`
	// ScrapedOverheadRatio is scraped/unsampled tokens-per-sec — the
	// second gated quantity: a worker being scraped at 10 Hz must keep
	// >= 95% of its unscraped rate. Scrapes counts the successful polls
	// during the measured pass (proof the scraper actually ran).
	ScrapedOverheadRatio float64 `json:"scraped_overhead_ratio,omitempty"`
	Scrapes              uint64  `json:"scrapes,omitempty"`

	// RecordAllocsPerSpan and RecordNsPerSpan measure the bare record path
	// (ring append, no streaming) in isolation; the gate pins allocations
	// to zero at steady state.
	RecordAllocsPerSpan float64 `json:"record_allocs_per_span"`
	RecordNsPerSpan     float64 `json:"record_ns_per_span"`
	// AllocsMeasured distinguishes a measured 0.0 from an absent audit.
	AllocsMeasured bool `json:"allocs_measured,omitempty"`

	// Recorder self-metrics from the measured passes — sanity that both
	// dispositions were exercised: the unsampled pass must drop, the head
	// pass must flush.
	SpansFlushed  uint64 `json:"spans_flushed"`
	SpansDropped  uint64 `json:"spans_dropped"`
	RingEvictions uint64 `json:"ring_evictions"`
	FlowsHead     uint64 `json:"flows_head"`
	FlowsDrop     uint64 `json:"flows_drop"`
}

// ObsOverhead runs the three passes and the record-path audit.
func ObsOverhead(opt ObsOverheadOptions) (ObsOverheadResult, error) {
	if opt.Flows <= 0 {
		opt.Flows = 64
	}
	if opt.Batch <= 0 {
		opt.Batch = 512
	}
	if opt.Events <= 0 {
		opt.Events = obs.DefaultRecorderEvents
	}
	if opt.Reps <= 0 {
		opt.Reps = 3
	}
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = opt.Rules
	spec.P2Frac = 1.0
	rs, err := spec.Generate(Seed)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	traffic := corpus.SynthesizeText(newRand(), opt.TrafficBytes)
	toks := tokenize.TokenizeAll(opt.Mode, traffic)

	k := bbcrypto.DeriveBlock([]byte("obsoverhead"), "k")
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	enc := make([]dpienc.EncryptedToken, len(toks))
	sender.EncryptAssigned(sender.AssignTokens(toks, nil), enc)

	keys := core.DirectTokenKeys(k, rs, opt.Mode)
	eng := detect.NewEngine(rs, keys, detect.Config{Mode: opt.Mode, Protocol: dpienc.ProtocolII})

	res := ObsOverheadResult{
		Schema:       ObsOverheadSchema,
		Cores:        runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Rules:        len(rs.Rules),
		Mode:         opt.Mode.String(),
		TrafficBytes: len(traffic),
		Tokens:       len(enc),
		Flows:        opt.Flows,
		Batch:        opt.Batch,
		Events:       opt.Events,
	}

	// One pass: the token stream split into Flows contiguous chunks, each
	// scanned in batches. With a recorder, each chunk is one flow — begin,
	// one scan span per batch, end clean (disposition decided by sampling).
	var scratch []detect.Event
	runPass := func(rec *obs.Recorder) int64 {
		eng.Reset(0)
		chunk := (len(enc) + opt.Flows - 1) / opt.Flows
		start := time.Now()
		for fi := 0; fi < opt.Flows; fi++ {
			lo := fi * chunk
			hi := lo + chunk
			if lo >= len(enc) {
				break
			}
			if hi > len(enc) {
				hi = len(enc)
			}
			var fr *obs.FlowRecorder
			if rec != nil {
				fr = rec.BeginFlow(uint64(fi+1), obs.PartyMB, obs.NewSpanCtx())
			}
			for off := lo; off < hi; off += opt.Batch {
				end := off + opt.Batch
				if end > hi {
					end = hi
				}
				bstart := time.Now()
				scratch = eng.ScanBatch(enc[off:end], scratch[:0])
				if fr != nil {
					sp := obs.Span{
						Flow: uint64(fi + 1), Party: obs.PartyMB, Name: obs.SpanScan, Dir: "c2s",
						Start: bstart.UnixNano(), Dur: time.Since(bstart).Nanoseconds(),
						Tokens: end - off,
					}
					fr.Context().Child().Stamp(&sp)
					fr.Emit(sp)
				}
			}
			if fr != nil {
				fr.End("")
			}
		}
		return time.Since(start).Nanoseconds()
	}
	// Warm pass: engine candidate maps and scratch at capacity before any
	// measurement, so the three passes compare steady states.
	runPass(nil)
	minOver := func(rec *obs.Recorder) int64 {
		best := int64(0)
		for i := 0; i < opt.Reps; i++ {
			if ns := runPass(rec); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	regUnsampled := obs.NewRegistry()
	recUnsampled := obs.NewRecorder(obs.RecorderConfig{
		Events: opt.Events, Sample: 0,
		Sink: obs.NewJSONLSink(io.Discard), Metrics: regUnsampled,
	})
	regHead := obs.NewRegistry()
	recHead := obs.NewRecorder(obs.RecorderConfig{
		Events: opt.Events, Sample: 1,
		Sink: obs.NewJSONLSink(io.Discard), Metrics: regHead,
	})

	res.OffNs = minOver(nil)
	res.UnsampledNs = minOver(recUnsampled)
	res.HeadNs = minOver(recHead)

	// Scraped pass: same recording config as unsampled, but the pass
	// registry is live on a loopback admin endpoint with a fleet scraper
	// polling it every 100ms while the detection loop runs. A listener
	// failure skips the pass (fields stay zero; benchgate then skips its
	// scrape check) rather than failing the whole experiment.
	regScraped := obs.NewRegistry()
	recScraped := obs.NewRecorder(obs.RecorderConfig{
		Events: opt.Events, Sample: 0,
		Sink: obs.NewJSONLSink(io.Discard), Metrics: regScraped,
	})
	if ln, lerr := net.Listen("tcp", "127.0.0.1:0"); lerr == nil {
		srv := &http.Server{Handler: obs.AdminMux(regScraped)}
		go func() {
			//lint:ignore unchecked-err Serve returns ErrServerClosed on the Close below
			srv.Serve(ln)
		}()
		scraper, serr := agg.New(agg.Config{
			Targets:  []agg.Target{{Name: "bench", URL: "http://" + ln.Addr().String()}},
			Interval: 100 * time.Millisecond,
			Metrics:  obs.NewRegistry(),
		})
		if serr == nil {
			stopScrape := make(chan struct{})
			scrapeDone := make(chan struct{})
			go func() {
				scraper.Run(stopScrape)
				close(scrapeDone)
			}()
			res.ScrapedNs = minOver(recScraped)
			close(stopScrape)
			<-scrapeDone
			if ws := scraper.Workers(); len(ws) == 1 {
				res.Scrapes = ws[0].Scrapes
			}
		}
		_ = srv.Close()
	}
	_ = scratch

	res.OffTokensPerSec = tokensPerSec(res.Tokens, res.OffNs)
	res.UnsampledTokensPerSec = tokensPerSec(res.Tokens, res.UnsampledNs)
	res.HeadTokensPerSec = tokensPerSec(res.Tokens, res.HeadNs)
	res.ScrapedTokensPerSec = tokensPerSec(res.Tokens, res.ScrapedNs)
	if res.OffTokensPerSec > 0 {
		res.UnsampledOverheadRatio = res.UnsampledTokensPerSec / res.OffTokensPerSec
		res.HeadOverheadRatio = res.HeadTokensPerSec / res.OffTokensPerSec
	}
	if res.UnsampledTokensPerSec > 0 && res.ScrapedTokensPerSec > 0 {
		res.ScrapedOverheadRatio = res.ScrapedTokensPerSec / res.UnsampledTokensPerSec
	}

	counter := func(reg *obs.Registry, name string) uint64 {
		return reg.Counter(name, obs.Help(name)).Value()
	}
	flows := func(reg *obs.Registry, disp obs.Disposition) uint64 {
		vec := reg.CounterVec(obs.ObsFlowsTotal, obs.Help(obs.ObsFlowsTotal), "disposition")
		return vec.With(string(disp)).Value()
	}
	res.SpansFlushed = counter(regHead, obs.ObsSpansFlushedTotal)
	res.SpansDropped = counter(regUnsampled, obs.ObsSpansDroppedTotal)
	res.RingEvictions = counter(regUnsampled, obs.ObsRingEvictionsTotal) + counter(regHead, obs.ObsRingEvictionsTotal)
	res.FlowsHead = flows(regHead, obs.DispositionHead)
	res.FlowsDrop = flows(regUnsampled, obs.DispositionDrop)

	// Record-path audit: a warmed, unsampled flow recorder appending one
	// span at a time — the //bb:hotpath the lint pins statically, measured
	// dynamically. Steady state (ring wrapped, strings interned in the
	// reused Span) must allocate nothing per span.
	auditRec := obs.NewRecorder(obs.RecorderConfig{Events: opt.Events, Metrics: obs.NewRegistry()})
	fr := auditRec.BeginFlowSampled(1, obs.PartyMB, obs.NewSpanCtx(), false)
	sp := obs.Span{Flow: 1, Party: obs.PartyMB, Name: obs.SpanScan, Dir: "c2s", Tokens: opt.Batch}
	fr.Context().Child().Stamp(&sp)
	for i := 0; i < 2*opt.Events; i++ {
		fr.Emit(sp) // warm: wrap the ring at least once
	}
	const spanIters = 200000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < spanIters; i++ {
		fr.Emit(sp)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	fr.End("")
	res.RecordAllocsPerSpan = float64(after.Mallocs-before.Mallocs) / spanIters
	res.RecordNsPerSpan = float64(elapsed.Nanoseconds()) / spanIters
	res.AllocsMeasured = true
	return res, nil
}

// WriteObsOverheadJSON writes the result to path, pretty-printed for diffs.
func WriteObsOverheadJSON(path string, res ObsOverheadResult) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadObsOverheadJSON loads a previously written result (the bench gate's
// input).
func ReadObsOverheadJSON(path string) (ObsOverheadResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return ObsOverheadResult{}, err
	}
	var res ObsOverheadResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return ObsOverheadResult{}, err
	}
	if res.Schema != ObsOverheadSchema {
		return ObsOverheadResult{}, fmt.Errorf("obsoverhead: %s has schema %q, want %q", path, res.Schema, ObsOverheadSchema)
	}
	return res, nil
}

// PrintObsOverhead renders the pass comparison.
func PrintObsOverhead(w io.Writer, r ObsOverheadResult) {
	fmt.Fprintf(w, "flight-recorder overhead, %d rules, %s tokens, %d flows x %d-token batches, ring %d (%d cores)\n",
		r.Rules, r.Mode, r.Flows, r.Batch, r.Events, r.Cores)
	t := newTable(w)
	t.row("Pass", "time", "tokens/sec", "vs off")
	t.row("tracing off", fmt.Sprintf("%.1f ms", float64(r.OffNs)/1e6),
		fmt.Sprintf("%.2fM", r.OffTokensPerSec/1e6), "1.00x")
	t.row("recorded, unsampled", fmt.Sprintf("%.1f ms", float64(r.UnsampledNs)/1e6),
		fmt.Sprintf("%.2fM", r.UnsampledTokensPerSec/1e6), fmt.Sprintf("%.2fx", r.UnsampledOverheadRatio))
	t.row("head-sampled (streamed)", fmt.Sprintf("%.1f ms", float64(r.HeadNs)/1e6),
		fmt.Sprintf("%.2fM", r.HeadTokensPerSec/1e6), fmt.Sprintf("%.2fx", r.HeadOverheadRatio))
	if r.ScrapedNs > 0 {
		vsOff := 0.0
		if r.OffTokensPerSec > 0 {
			vsOff = r.ScrapedTokensPerSec / r.OffTokensPerSec
		}
		t.row("scraped at 10 Hz", fmt.Sprintf("%.1f ms", float64(r.ScrapedNs)/1e6),
			fmt.Sprintf("%.2fM", r.ScrapedTokensPerSec/1e6), fmt.Sprintf("%.2fx", vsOff))
	}
	t.flush()
	fmt.Fprintf(w, "record path: %.4f allocs/span, %.0f ns/span (ring append, no streaming)\n",
		r.RecordAllocsPerSpan, r.RecordNsPerSpan)
	fmt.Fprintf(w, "dispositions: %d head flows flushed %d spans; %d unsampled flows dropped %d spans (%d evictions)\n",
		r.FlowsHead, r.SpansFlushed, r.FlowsDrop, r.SpansDropped, r.RingEvictions)
	if r.ScrapedNs > 0 {
		fmt.Fprintf(w, "scrape cost: %d scrape(s) at 10 Hz kept %.1f%% of the unscraped rate\n",
			r.Scrapes, 100*r.ScrapedOverheadRatio)
	}
	fmt.Fprintln(w, "budget: traced-but-unsampled flows must keep >= 95% of the tracing-off rate, and a scraped worker >= 95% of its unscraped rate (benchgate -obs)")
}
