package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestSetupBreakdownCoverage runs a small traced three-party session and
// checks the acceptance contract: one clean trace per session and ≥ 90%
// of the middlebox preparation window attributed to named §3.3
// sub-spans. It also checks the optional raw span files parse back.
func TestSetupBreakdownCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback session")
	}
	dir := t.TempDir()
	opt := SetupBreakdownOptions{Sessions: 1, PayloadBytes: 1 << 10, Keywords: 2, TraceDir: dir}
	res, err := SetupBreakdown(opt)
	if err != nil {
		t.Fatalf("SetupBreakdown: %v", err)
	}
	if res.Traces != opt.Sessions {
		t.Errorf("Traces = %d, want %d", res.Traces, opt.Sessions)
	}
	if res.Orphans != 0 || res.Untraced != 0 {
		t.Errorf("orphans=%d untraced=%d, want 0/0", res.Orphans, res.Untraced)
	}
	if res.CritNs <= 0 || res.CritNs > res.WallNs {
		t.Errorf("critical %dns outside (0, wall=%dns]", res.CritNs, res.WallNs)
	}
	if res.PrepCoverage < 0.9 {
		t.Errorf("§3.3 sub-span coverage %.3f, want >= 0.9", res.PrepCoverage)
	}
	seen := map[string]bool{}
	for _, st := range res.Stages {
		seen[st.Name] = true
	}
	for _, name := range []string{obs.SpanPrep, obs.SpanPrepGarble, obs.SpanPrepOTBase,
		obs.SpanPrepOTExt, obs.SpanPrepLabels, obs.SpanPrepRuleEnc} {
		if !seen[name] {
			t.Errorf("stage %q missing from the aggregated report", name)
		}
	}
	for _, name := range []string{"client.jsonl", "mb.jsonl", "server.jsonl"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("trace dir missing %s: %v", name, err)
		}
		spans, err := obs.ReadSpans(f)
		_ = f.Close()
		if err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
		if len(spans) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
