// §7.2.2 connection setup: obfuscated rule encryption time as a function
// of ruleset size (paper: 650 ms at 10 keywords, 1.6 s at 100, 9.5 s at
// 1000, 97 s at 10k; 1042 µs to garble one circuit; 599 KB per circuit).

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/circuit"
	"repro/internal/garble"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// SetupResult measures rule preparation.
type SetupResult struct {
	// PerKeyword is the full per-keyword setup cost (both endpoints
	// garbling, verification, OT, evaluation).
	PerKeyword time.Duration
	// GarbleOnly is the cost of garbling one circuit once.
	GarbleOnly time.Duration
	// CircuitBytes is the wire size of one garbled circuit.
	CircuitBytes int
	// CircuitANDs is the circuit's AND-gate count.
	CircuitANDs int
	// Points holds (keywords, total time) — measured for small counts,
	// extrapolated for large ones.
	Points []SetupPoint
}

// SetupPoint is one ruleset size.
type SetupPoint struct {
	Keywords     int
	Total        time.Duration
	Extrapolated bool
	Paper        string
}

// SetupOptions controls the measured sizes.
type SetupOptions struct {
	// MeasuredKeywords is the largest ruleset size run for real.
	MeasuredKeywords int
}

// DefaultSetupOptions measures up to 8 keywords and extrapolates beyond.
func DefaultSetupOptions() SetupOptions { return SetupOptions{MeasuredKeywords: 8} }

// Setup measures rule-preparation costs.
func Setup(opt SetupOptions) (SetupResult, error) {
	if opt.MeasuredKeywords <= 0 {
		opt.MeasuredKeywords = 8
	}
	var res SetupResult

	f := ruleprep.F()
	res.CircuitANDs = f.NumAND()
	g, _, err := garble.Garble(f, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		return res, err
	}
	res.CircuitBytes = g.Size()
	start := time.Now()
	const garbleReps = 3
	for i := 0; i < garbleReps; i++ {
		if _, _, err := garble.Garble(f, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{byte(i)})); err != nil {
			return res, err
		}
	}
	res.GarbleOnly = time.Since(start) / garbleReps

	perKeyword, err := measureSetupPerKeyword(opt.MeasuredKeywords)
	if err != nil {
		return res, err
	}
	res.PerKeyword = perKeyword

	paper := map[int]string{10: "650ms", 100: "1.6s", 1000: "9.5s", 10000: "97s"}
	for _, n := range []int{10, 100, 1000, 10000} {
		pt := SetupPoint{Keywords: n, Paper: paper[n]}
		if n <= opt.MeasuredKeywords {
			d, err := measureSetupPerKeyword(n)
			if err != nil {
				return res, err
			}
			pt.Total = d * time.Duration(n)
		} else {
			pt.Total = perKeyword * time.Duration(n)
			pt.Extrapolated = true
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// PrintSetup renders the setup-cost report.
func PrintSetup(w io.Writer, r SetupResult) {
	fmt.Fprintln(w, "§7.2.2 connection setup (obfuscated rule encryption)")
	fmt.Fprintf(w, "rule-encryption circuit: %d AND gates, %s per garbled circuit (paper: 599KB for a 6.8K-gate AES)\n",
		r.CircuitANDs, fmtBytes(r.CircuitBytes))
	fmt.Fprintf(w, "garble one circuit: %s (paper: 1042µs with JustGarble's hand-optimized AES)\n", fmtDuration(r.GarbleOnly))
	fmt.Fprintf(w, "full setup per keyword (2 garblings + verify + OT + eval): %s\n", fmtDuration(r.PerKeyword))
	t := newTable(w)
	t.row("Keywords", "setup time", "paper")
	for _, p := range r.Points {
		v := fmtDuration(p.Total)
		if p.Extrapolated {
			v += "*"
		}
		t.row(fmt.Sprintf("%d", p.Keywords), v, p.Paper)
	}
	t.flush()
	fmt.Fprintln(w, "(* extrapolated: setup is strictly linear in keyword count, §3.3)")
}

// AblationGarbleSBox compares garbling cost of the two S-box circuit
// constructions (DESIGN.md ablation): the GF(2^8)-inverse circuit vs the
// multiplexer-tree circuit.
func AblationGarbleSBox(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: AES S-box circuit construction (per garbled AES-128)")
	t := newTable(w)
	t.row("S-box", "AND gates", "garble time", "wire size")
	for _, impl := range []circuit.SBoxImpl{circuit.SBoxGF, circuit.SBoxMux} {
		c := circuit.BuildAES128(impl)
		start := time.Now()
		g, _, err := garble.Garble(c, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{9}))
		if err != nil {
			return err
		}
		t.row(impl.String(), fmt.Sprintf("%d", c.NumAND()), fmtDuration(time.Since(start)), fmtBytes(g.Size()))
	}
	t.flush()
	return nil
}

// AblationGarbleRows compares the three AND-gate table constructions —
// classic four-row point-and-permute, GRR3 row reduction (the default),
// and ZRE15 half gates — on the rule-encryption circuit F. Wire size is
// the per-keyword setup traffic of §7.2.2.
func AblationGarbleRows(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: garbled-table construction (per rule-encryption circuit F)")
	f := ruleprep.F()
	t := newTable(w)
	t.row("Scheme", "rows/AND", "garble time", "wire size")
	for _, v := range []struct {
		name string
		opts garble.Options
	}{
		{"point-and-permute", garble.Options{FullRows: true}},
		{"GRR3 (default)", garble.Options{}},
		{"half gates", garble.Options{HalfGates: true}},
	} {
		start := time.Now()
		g, _, err := garble.GarbleWith(f, ruleprep.FixedGarblingKey, bbcrypto.NewPRG(bbcrypto.Block{7}), v.opts)
		if err != nil {
			return err
		}
		t.row(v.name, fmt.Sprintf("%d", g.Rows), fmtDuration(time.Since(start)), fmtBytes(g.Size()))
	}
	t.flush()
	return nil
}

// AblationUnauthorized verifies the RG-authorization property end to end:
// setup with a bad tag must yield no token key.
func AblationUnauthorized(w io.Writer) error {
	k := bbcrypto.RandomBlock()
	kRG := bbcrypto.RandomBlock()
	krand := bbcrypto.RandomBlock()
	var frag [tokenize.TokenSize]byte
	copy(frag[:], "badfrag!")
	blk := rules.FragmentBlock(frag)
	req := ruleprep.Request{
		Fragments: []bbcrypto.Block{blk, blk},
		Tags:      []bbcrypto.Block{bbcrypto.MAC(kRG, blk), bbcrypto.RandomBlock()},
	}
	mb, err := ruleprep.NewMiddlebox(req)
	if err != nil {
		return err
	}
	keys, _, err := ruleprep.RunLocal(
		ruleprep.NewEndpoint(k, kRG, krand), ruleprep.NewEndpoint(k, kRG, krand), mb)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "authorization check: tagged fragment key=%v, forged-tag fragment key=%v (want true,false)\n",
		keys[0] != nil, keys[1] != nil)
	return nil
}
