// §7.2.3 middlebox throughput: BlindBox Detect over encrypted tokens vs a
// Snort-like plaintext IDS over the same traffic (paper: 166 Mbps vs
// 85 Mbps on one core — BlindBox wins because everything is exact-match
// against a precomputed structure).

package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// ThroughputResult compares single-core detection rates in Mbps of
// traffic inspected.
type ThroughputResult struct {
	Rules int
	Mode  tokenize.Mode
	// BlindBoxMbps is the middlebox detection rate over encrypted tokens.
	BlindBoxMbps float64
	// BaselineMbps is the Snort-like plaintext inspection rate.
	BaselineMbps float64
	// SenderMbps is the client-side tokenize+encrypt rate (the Fig. 4
	// bottleneck).
	SenderMbps float64
}

// ThroughputOptions sizes the experiment.
type ThroughputOptions struct {
	Rules        int
	TrafficBytes int
	Mode         tokenize.Mode
}

// DefaultThroughputOptions mirrors the paper's 3K-rule synthetic-traffic
// run at benchmark-friendly size.
func DefaultThroughputOptions() ThroughputOptions {
	return ThroughputOptions{Rules: 3000, TrafficBytes: 4 << 20, Mode: tokenize.Delimiter}
}

// Throughput measures both engines over the same synthetic traffic.
func Throughput(opt ThroughputOptions) (ThroughputResult, error) {
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = opt.Rules
	spec.P2Frac = 1.0 // pure exact-match set, as in the paper's run
	rs, err := spec.Generate(Seed)
	if err != nil {
		return ThroughputResult{}, err
	}
	traffic := corpus.SynthesizeText(newRand(), opt.TrafficBytes)

	res := ThroughputResult{Rules: len(rs.Rules), Mode: opt.Mode}
	res.BaselineMbps = baselineRate(rs, traffic)
	res.SenderMbps, res.BlindBoxMbps = blindboxRates(rs, opt.Mode, traffic)
	return res, nil
}

func baselineRate(rs *rules.Ruleset, traffic []byte) float64 {
	ids := baseline.New(rs)
	pipe := ids.NewPipeline()
	var header [40]byte
	process := func() {
		for off := 0; off < len(traffic); off += baseline.PacketSize {
			end := off + baseline.PacketSize
			if end > len(traffic) {
				end = len(traffic)
			}
			pipe.ProcessPacket(header, uint64(off%64), traffic[off:end])
		}
	}
	process() // warm up
	start := time.Now()
	process()
	return mbps(len(traffic), time.Since(start))
}

func blindboxRates(rs *rules.Ruleset, mode tokenize.Mode, traffic []byte) (senderMbps, mbMbps float64) {
	k := bbcrypto.DeriveBlock([]byte("throughput"), "k")
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	// Sender rate: tokenize + encrypt.
	tk := tokenize.New(mode)
	start := time.Now()
	toks := tk.Append(traffic)
	toks = append(toks, tk.Flush()...)
	ets := sender.EncryptTokens(toks)
	senderMbps = mbps(len(traffic), time.Since(start))

	// Middlebox rate: batched detection over the encrypted tokens, as the
	// middlebox scans one RecTokens record at a time. The rate is reported
	// against the traffic bytes those tokens represent, matching the
	// paper's Mbps-of-traffic metric.
	eng := detect.NewEngine(rs, core.DirectTokenKeys(k, rs, mode), detect.Config{
		Mode: mode, Protocol: dpienc.ProtocolII,
	})
	const batch = 512
	var scratch []detect.Event
	start = time.Now()
	for off := 0; off < len(ets); off += batch {
		end := off + batch
		if end > len(ets) {
			end = len(ets)
		}
		scratch = eng.ScanBatch(ets[off:end], scratch[:0])
	}
	mbMbps = mbps(len(traffic), time.Since(start))
	return senderMbps, mbMbps
}

func mbps(bytes int, d time.Duration) float64 {
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// ThroughputScaling measures aggregate BlindBox detection over n parallel
// connections (one engine per connection, as in the middlebox's
// per-connection detection threads, §6). The paper reports per-core rates;
// this shows the rate scales with cores since connections share nothing.
func ThroughputScaling(opt ThroughputOptions, conns int) (float64, error) {
	spec, _ := corpus.DatasetByName("Snort Emerging Threats (HTTP)")
	spec.NumRules = opt.Rules
	spec.P2Frac = 1.0
	rs, err := spec.Generate(Seed)
	if err != nil {
		return 0, err
	}
	traffic := corpus.SynthesizeText(newRand(), opt.TrafficBytes)
	k := bbcrypto.DeriveBlock([]byte("throughput"), "k")
	sender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	toks := tokenize.TokenizeAll(opt.Mode, traffic)
	ets := sender.EncryptTokens(toks)
	keys := core.DirectTokenKeys(k, rs, opt.Mode)

	engines := make([]*detect.Engine, conns)
	for i := range engines {
		engines[i] = detect.NewEngine(rs, keys, detect.Config{Mode: opt.Mode, Protocol: dpienc.ProtocolII})
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, eng := range engines {
		wg.Add(1)
		go func(eng *detect.Engine) {
			defer wg.Done()
			for i := range ets {
				eng.ProcessToken(ets[i])
			}
		}(eng)
	}
	wg.Wait()
	return mbps(len(traffic)*conns, time.Since(start)), nil
}

// PrintThroughput renders the comparison.
func PrintThroughput(w io.Writer, r ThroughputResult) {
	fmt.Fprintf(w, "§7.2.3 middlebox throughput, %d rules, %s tokens (single core)\n", r.Rules, r.Mode)
	t := newTable(w)
	t.row("Engine", "rate", "paper")
	t.row("BlindBox Detect (encrypted)", fmt.Sprintf("%.0f Mbps", r.BlindBoxMbps), "166-186 Mbps")
	t.row("Snort-like baseline (plaintext)", fmt.Sprintf("%.0f Mbps", r.BaselineMbps), "85 Mbps")
	t.row("Sender tokenize+encrypt", fmt.Sprintf("%.0f Mbps", r.SenderMbps), "(Fig. 4 CPU bound)")
	t.flush()
	if r.BlindBoxMbps >= 100 {
		fmt.Fprintln(w, "shape: BlindBox detection clears the paper's bar (competitive with deployed IDS, which peak under 100 Mbps)")
	} else {
		fmt.Fprintln(w, "shape: WARNING — BlindBox detection below the paper's 100 Mbps deployment bar")
	}
	fmt.Fprintln(w, "note: the plaintext baseline omits Snort's preprocessors/reassembly/eventing, so its absolute")
	fmt.Fprintln(w, "      rate exceeds real Snort deployments (see EXPERIMENTS.md); per-engine costs match Table 2.")
}
