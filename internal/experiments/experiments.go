// Package experiments implements the paper's evaluation (§7): one function
// per table or figure, each returning structured results and able to print
// the same rows/series the paper reports. cmd/blindbench is the CLI front
// end; the repository-root benchmarks reuse the same code under testing.B.
//
// Absolute numbers differ from the paper's testbed (DPDK/Click on Xeon
// cores vs a Go process); the reproduced quantities are the comparisons:
// who wins, by roughly what factor, and where the regime changes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Seed fixes all synthetic workload generation, making every experiment
// reproducible run-to-run.
const Seed = 20150817 // SIGCOMM'15 opening day

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}

func fmtBytes(n int) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	}
}

// median returns the median of a slice (which it sorts).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// timeOp measures the per-op latency of f by running it in a loop sized to
// take at least minDuration.
func timeOp(minDuration time.Duration, f func()) time.Duration {
	// Warm up and estimate.
	f()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= minDuration || n >= 1<<24 {
			return elapsed / time.Duration(n)
		}
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		scale := int(minDuration/elapsed) + 1
		if scale > 100 {
			scale = 100
		}
		n *= scale
	}
}

// table writes aligned rows.
type table struct {
	w    io.Writer
	rows [][]string
}

func newTable(w io.Writer) *table { return &table{w: w} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			pad := widths[i] - len(c)
			if i == 0 {
				fmt.Fprintf(t.w, "%s%*s", c, pad, "")
			} else {
				fmt.Fprintf(t.w, "  %*s", widths[i], c)
			}
		}
		fmt.Fprintln(t.w)
	}
	t.rows = nil
}
