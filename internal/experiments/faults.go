// Resilience experiment: seeded fault schedules against live loopback
// sessions, measuring what the fault-tolerance layer (DESIGN.md §9) costs
// and guarantees — recovery latency (how fast a faulted session reaches a
// clean outcome), goodput of the surviving sessions, and the fail-closed
// invariant (zero unscanned bytes). The paper evaluates BlindBox on
// well-behaved links only; this experiment quantifies behavior on
// misbehaving ones. Results land in BENCH_faults.json via blindbench
// -experiment faults.

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dpienc"
	"repro/internal/middlebox"
	"repro/internal/netem"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/transport"
)

// FaultsSchema identifies the JSON layout of FaultsResult.
const FaultsSchema = "blindbox-bench-faults/v1"

// FaultsOptions sizes the resilience experiment.
type FaultsOptions struct {
	// Sessions is how many seeded fault schedules to replay (seeds 0..n-1).
	Sessions int
	// PayloadBytes sizes each session's echo payload.
	PayloadBytes int
	// Profile is the fault mix drawn per seed; the zero value selects
	// netem.DefaultProfile with offsets scaled to PayloadBytes.
	Profile netem.ScheduleProfile
	// Policy is the middlebox degradation policy under test.
	Policy middlebox.Policy
}

// DefaultFaultsOptions replays 24 schedules of 3 mixed faults each over
// 6 KiB sessions under the fail-closed policy.
func DefaultFaultsOptions() FaultsOptions {
	return FaultsOptions{Sessions: 24, PayloadBytes: 6 << 10}
}

// FaultsResult is the machine-readable outcome written to BENCH_faults.json.
type FaultsResult struct {
	Schema       string `json:"schema"`
	Sessions     int    `json:"sessions"`
	PayloadBytes int    `json:"payload_bytes"`
	Policy       string `json:"policy"`

	// Outcome counts: every session lands in exactly one bucket. Hung is
	// the contract violation — sessions with no outcome inside the
	// watchdog — and must be zero.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed_clean"`
	Hung      int `json:"hung"`

	FaultsFired int `json:"faults_fired"`

	// BaselineMs is the mean fault-free session wall time; RecoveryMs is
	// the mean wall time of faulted sessions that failed — the time the
	// layer needs to turn an injected fault into a clean outcome.
	BaselineMs float64 `json:"baseline_ms"`
	SessionMs  float64 `json:"session_ms"`
	RecoveryMs float64 `json:"recovery_ms"`

	// GoodputMBps is payload delivered by successful sessions over the
	// whole run's wall time — what an operator keeps under fault load.
	GoodputMBps float64 `json:"goodput_mbps"`

	// Middlebox accounting after the run. Under fail-closed,
	// UnscannedBytes must be zero.
	UnscannedBytes  uint64 `json:"unscanned_bytes"`
	Degraded        uint64 `json:"degraded"`
	FailClosedDrops uint64 `json:"fail_closed_drops"`
}

// faultsTimeouts are the short deadlines the experiment runs under, so a
// wedged step converts to a clean timeout in seconds.
func faultsTimeouts() middlebox.Timeouts {
	return middlebox.Timeouts{
		Handshake: 2 * time.Second,
		Prep:      3 * time.Second,
		Idle:      3 * time.Second,
		Write:     2 * time.Second,
		Barrier:   2 * time.Second,
	}
}

// faultsHarness is the live loopback middlebox + echo server.
type faultsHarness struct {
	mb       *middlebox.Middlebox
	g        *rules.Generator
	mbLn     net.Listener
	serverLn net.Listener
}

func newFaultsHarness(opt FaultsOptions) (*faultsHarness, error) {
	g, err := rules.NewGenerator("FaultsRG")
	if err != nil {
		return nil, err
	}
	rs, err := rules.Parse("faults",
		`alert tcp any any -> any any (msg:"kw"; content:"attack01"; sid:1;)`)
	if err != nil {
		return nil, err
	}
	mb, err := middlebox.New(middlebox.Config{
		Ruleset:     g.Sign(rs),
		RGPublicKey: g.PublicKey(),
		Policy:      opt.Policy,
		Timeouts:    faultsTimeouts(),
	})
	if err != nil {
		return nil, err
	}
	h := &faultsHarness{mb: mb, g: g}
	if h.serverLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		return nil, err
	}
	if h.mbLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
		_ = h.serverLn.Close()
		return nil, err
	}
	epCfg := transport.ConnConfig{
		Core: core.DefaultConfig(),
		RG:   transport.RGMaterial{TagKey: g.TagKey()},
		Timeouts: transport.Timeouts{
			Handshake: 3 * time.Second, Read: 3 * time.Second, Write: 3 * time.Second,
		},
	}
	go func() {
		for {
			raw, err := h.serverLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := transport.Server(raw, epCfg)
				if err != nil {
					_ = raw.Close()
					return
				}
				defer conn.Close()
				data, err := io.ReadAll(conn)
				if err != nil {
					return
				}
				_, _ = conn.Write(data)
				_ = conn.CloseWrite()
			}()
		}
	}()
	go h.mb.Serve(h.mbLn, h.serverLn.Addr().String())
	return h, nil
}

func (h *faultsHarness) close() {
	_ = h.mbLn.Close()
	_ = h.serverLn.Close()
	_ = h.mb.Close()
}

// runSession drives one echo session through conn and reports whether the
// payload came back intact, how long the session took, and whether it
// reached any outcome inside the watchdog.
func (h *faultsHarness) runSession(conn net.Conn, payload []byte, watchdog time.Duration) (ok, hung bool, dur time.Duration) {
	type outcome struct {
		ok  bool
		dur time.Duration
	}
	outC := make(chan outcome, 1)
	start := time.Now()
	go func() {
		cfg := transport.ConnConfig{
			Core: core.Config{Protocol: dpienc.ProtocolI, Mode: tokenize.Delimiter},
			RG:   transport.RGMaterial{TagKey: h.g.TagKey()},
			Timeouts: transport.Timeouts{
				Handshake: 3 * time.Second, Read: 3 * time.Second, Write: 3 * time.Second,
			},
		}
		c, err := transport.Client(conn, cfg)
		if err != nil {
			outC <- outcome{dur: time.Since(start)}
			return
		}
		defer c.Close()
		if _, err := c.Write(payload); err != nil {
			outC <- outcome{dur: time.Since(start)}
			return
		}
		if err := c.CloseWrite(); err != nil {
			outC <- outcome{dur: time.Since(start)}
			return
		}
		echoed, err := io.ReadAll(c)
		outC <- outcome{ok: err == nil && bytes.Equal(echoed, payload), dur: time.Since(start)}
	}()
	select {
	case o := <-outC:
		return o.ok, false, o.dur
	case <-time.After(watchdog):
		return false, true, time.Since(start)
	}
}

// Faults replays Sessions seeded fault schedules and measures recovery
// latency and goodput. Two fault-free warm-up sessions establish the
// baseline before the faulted runs.
func Faults(opt FaultsOptions) (FaultsResult, error) {
	if opt.Sessions <= 0 {
		opt.Sessions = DefaultFaultsOptions().Sessions
	}
	if opt.PayloadBytes <= 0 {
		opt.PayloadBytes = DefaultFaultsOptions().PayloadBytes
	}
	prof := opt.Profile
	if prof.Faults == 0 {
		prof = netem.DefaultProfile()
		prof.MaxOffset = 2 * int64(opt.PayloadBytes)
	}
	h, err := newFaultsHarness(opt)
	if err != nil {
		return FaultsResult{}, err
	}
	defer h.close()

	res := FaultsResult{
		Schema:       FaultsSchema,
		Sessions:     opt.Sessions,
		PayloadBytes: opt.PayloadBytes,
		Policy:       opt.Policy.String(),
	}
	payload := append([]byte("attack01 "), corpus.SynthesizeText(newRand(), opt.PayloadBytes)...)
	const watchdog = 15 * time.Second

	// Baseline: fault-free sessions.
	var baseline time.Duration
	const baselineRuns = 2
	for i := 0; i < baselineRuns; i++ {
		raw, err := net.Dial("tcp", h.mbLn.Addr().String())
		if err != nil {
			return res, err
		}
		ok, hung, dur := h.runSession(raw, payload, watchdog)
		_ = raw.Close()
		if !ok || hung {
			return res, fmt.Errorf("faults: fault-free baseline session failed")
		}
		baseline += dur
	}
	res.BaselineMs = float64(baseline.Milliseconds()) / baselineRuns

	var (
		totalDur, failDur time.Duration
		runStart          = time.Now()
	)
	for seed := 0; seed < opt.Sessions; seed++ {
		raw, err := net.Dial("tcp", h.mbLn.Addr().String())
		if err != nil {
			return res, err
		}
		fc := netem.NewFaultConn(raw, netem.Schedule(uint64(seed), prof)...)
		ok, hung, dur := h.runSession(fc, payload, watchdog)
		_ = fc.Close()
		res.FaultsFired += len(fc.Fired())
		totalDur += dur
		switch {
		case hung:
			res.Hung++
		case ok:
			res.Succeeded++
		default:
			res.Failed++
			failDur += dur
		}
	}
	wall := time.Since(runStart)

	if opt.Sessions > 0 {
		res.SessionMs = float64(totalDur.Milliseconds()) / float64(opt.Sessions)
	}
	if res.Failed > 0 {
		res.RecoveryMs = float64(failDur.Milliseconds()) / float64(res.Failed)
	}
	if wall > 0 {
		delivered := float64(res.Succeeded * len(payload))
		res.GoodputMBps = delivered / wall.Seconds() / (1 << 20)
	}

	h.close()
	st := h.mb.Stats()
	res.UnscannedBytes = st.UnscannedBytes
	res.Degraded = st.Degraded
	res.FailClosedDrops = st.FailClosedDrops
	if res.Hung > 0 {
		return res, fmt.Errorf("faults: %d session(s) hung past the watchdog", res.Hung)
	}
	if opt.Policy == middlebox.FailClosed && res.UnscannedBytes != 0 {
		return res, fmt.Errorf("faults: fail-closed run forwarded %d unscanned bytes", res.UnscannedBytes)
	}
	return res, nil
}

// WriteFaultsJSON writes the result to path, pretty-printed for diffs.
func WriteFaultsJSON(path string, res FaultsResult) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// PrintFaults renders the resilience summary.
func PrintFaults(w io.Writer, r FaultsResult) {
	fmt.Fprintf(w, "resilience under %s, %d faulted sessions of %d bytes\n",
		r.Policy, r.Sessions, r.PayloadBytes)
	t := newTable(w)
	t.row("Measure", "value")
	t.row("sessions succeeded", fmt.Sprintf("%d/%d", r.Succeeded, r.Sessions))
	t.row("sessions failed clean", fmt.Sprintf("%d", r.Failed))
	t.row("sessions hung", fmt.Sprintf("%d (must be 0)", r.Hung))
	t.row("faults fired", fmt.Sprintf("%d", r.FaultsFired))
	t.row("baseline session", fmt.Sprintf("%.0f ms", r.BaselineMs))
	t.row("mean session under faults", fmt.Sprintf("%.0f ms", r.SessionMs))
	t.row("mean recovery (time to clean failure)", fmt.Sprintf("%.0f ms", r.RecoveryMs))
	t.row("goodput", fmt.Sprintf("%.1f KB/s", r.GoodputMBps*1024))
	t.row("unscanned bytes", fmt.Sprintf("%d", r.UnscannedBytes))
	t.row("degraded / fail-closed drops", fmt.Sprintf("%d / %d", r.Degraded, r.FailClosedDrops))
	t.flush()
	fmt.Fprintln(w, "contract: every fault ends in success or a typed failure before the deadline budget; fail-closed forwards nothing unscanned")
}
