// Table 2: connection and detection micro-benchmarks comparing vanilla
// HTTPS, the functional-encryption strawman, the searchable strawman and
// BlindBox HTTPS.

package experiments

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/strawman"
	"repro/internal/tokenize"
)

// packetBytes is the packet size of the paper's per-packet rows.
const packetBytes = 1500

// packetTokens is the token count of one packet under window tokenization
// (one token per byte offset).
const packetTokens = packetBytes - tokenize.TokenSize + 1

// table2Keywords3K is the keyword count of a "3K rules" IDS: the paper's
// typical 3000-rule set carries 9–10k keywords.
const table2Keywords3K = 9900

// Table2Cell is one measurement; Extrapolated marks values computed as
// per-op × count rather than run at full scale (the full-scale FE runs
// would take days, exactly as the paper notes).
type Table2Cell struct {
	Value        time.Duration
	NotPossible  bool
	Extrapolated bool
}

// String renders the cell as the paper prints it: a duration, "NP" for
// not-possible, with a trailing * on extrapolated values.
func (c Table2Cell) String() string {
	if c.NotPossible {
		return "NP"
	}
	s := fmtDuration(c.Value)
	if c.Extrapolated {
		s += "*"
	}
	return s
}

// Table2Row is one benchmark line across the four systems.
type Table2Row struct {
	Name                              string
	Vanilla, FE, Searchable, BlindBox Table2Cell
	Paper                             string // the paper's row for comparison
}

// Table2Options tunes runtime; the defaults complete in roughly a minute.
type Table2Options struct {
	// SetupKeywords is how many keywords the real setup measurement runs;
	// larger rows are extrapolated from the per-keyword cost.
	SetupKeywords int
	// MinSample is the minimum wall time per measured op.
	MinSample time.Duration
}

// DefaultTable2Options returns the standard configuration.
func DefaultTable2Options() Table2Options {
	return Table2Options{SetupKeywords: 4, MinSample: 20 * time.Millisecond}
}

// Table2 runs all micro-benchmarks.
func Table2(opt Table2Options) ([]Table2Row, error) {
	if opt.SetupKeywords <= 0 {
		opt.SetupKeywords = 4
	}
	if opt.MinSample <= 0 {
		opt.MinSample = 20 * time.Millisecond
	}
	var rows []Table2Row

	k := bbcrypto.RandomBlock()
	kSSL := bbcrypto.RandomBlock()
	var token tokenize.Token
	copy(token.Text[:], "benigntk")

	// --- Client: encrypt 128 bits ------------------------------------
	gcm := bbcrypto.NewGCM(k)
	nonce := make([]byte, gcm.NonceSize())
	block16 := make([]byte, 16)
	sealBuf := make([]byte, 0, 64)
	vanilla128 := timeOp(opt.MinSample, func() {
		sealBuf = gcm.Seal(sealBuf[:0], nonce, block16, nil)
	})

	fe := strawman.NewFEScheme()
	fe128 := timeOp(opt.MinSample/2, func() { _ = fe.Encrypt(token) })

	searchSender := strawman.NewSearchableSender(k)
	search128 := timeOp(opt.MinSample, func() { _ = searchSender.EncryptToken(token) })

	bbSender := dpienc.NewSender(k, kSSL, dpienc.ProtocolII, 0)
	i := 0
	bb128 := timeOp(opt.MinSample, func() {
		// Vary the offset but reuse token text, as real traffic does; the
		// token-key cache mirrors the paper's AES-NI hot path.
		token.Offset = i
		i++
		_ = bbSender.EncryptToken(token)
	})
	rows = append(rows, Table2Row{
		Name: "Encrypt (128 bits)", Paper: "13ns / 70ms / 2.7µs / 69ns",
		Vanilla:    Table2Cell{Value: vanilla128},
		FE:         Table2Cell{Value: fe128},
		Searchable: Table2Cell{Value: search128},
		BlindBox:   Table2Cell{Value: bb128},
	})

	// --- Client: encrypt a 1500-byte packet --------------------------
	packet := make([]byte, packetBytes)
	// A failed entropy read leaves zeros; the text-like rewrite below makes
	// the benchmark payload equally valid either way.
	_, _ = rand.Read(packet)
	for j := range packet {
		packet[j] = 'a' + packet[j]%26 // text-like
	}
	vanillaPkt := timeOp(opt.MinSample, func() {
		sealBuf = gcm.Seal(sealBuf[:0], nonce, packet, nil)
	})
	keys := bbcrypto.SessionKeys{K: k, KSSL: kSSL}
	pipe := core.NewSenderPipeline(keys, core.Config{Protocol: dpienc.ProtocolII, Mode: tokenize.Window})
	bbPkt := timeOp(opt.MinSample, func() {
		toks, _ := pipe.ProcessText(packet)
		_ = toks
	})
	rows = append(rows, Table2Row{
		Name: "Encrypt (1500 bytes)", Paper: "3µs / 15s / 257µs / 90µs",
		Vanilla:    Table2Cell{Value: vanillaPkt},
		FE:         Table2Cell{Value: fe128 * packetTokens, Extrapolated: true},
		Searchable: Table2Cell{Value: search128 * packetTokens, Extrapolated: true},
		BlindBox:   Table2Cell{Value: bbPkt},
	})

	// --- Client: setup ------------------------------------------------
	perKeyword, err := measureSetupPerKeyword(opt.SetupKeywords)
	if err != nil {
		return nil, err
	}
	vanillaHS := timeOp(opt.MinSample, vanillaHandshakeOp())
	rows = append(rows, Table2Row{
		Name: "Setup (1 keyword)", Paper: "73ms / N/A / N/A / 588ms",
		Vanilla:    Table2Cell{Value: vanillaHS},
		FE:         Table2Cell{NotPossible: true},
		Searchable: Table2Cell{NotPossible: true},
		BlindBox:   Table2Cell{Value: perKeyword},
	})
	rows = append(rows, Table2Row{
		Name: "Setup (3K rules)", Paper: "73ms / N/A / N/A / 97s",
		Vanilla:    Table2Cell{Value: vanillaHS},
		FE:         Table2Cell{NotPossible: true},
		Searchable: Table2Cell{NotPossible: true},
		BlindBox:   Table2Cell{Value: perKeyword * table2Keywords3K, Extrapolated: true},
	})

	// --- Middlebox: detection ----------------------------------------
	det1 := detectionCosts(k, 1, opt.MinSample)
	det3k := detectionCosts(k, table2Keywords3K, opt.MinSample)
	feKey := fe.KeyGen(token.Text)
	feCt := fe.Encrypt(token)
	feDetect := timeOp(opt.MinSample/2, func() { _ = fe.Test(feCt, feKey) })

	rows = append(rows,
		Table2Row{
			Name: "Detect: 1 rule, 1 token", Paper: "NP / 170ms / 1.9µs / 20ns",
			Vanilla:    Table2Cell{NotPossible: true},
			FE:         Table2Cell{Value: feDetect},
			Searchable: Table2Cell{Value: det1.searchable},
			BlindBox:   Table2Cell{Value: det1.blindbox},
		},
		Table2Row{
			Name: "Detect: 1 rule, 1 packet", Paper: "NP / 36s / 52µs / 5µs",
			Vanilla:    Table2Cell{NotPossible: true},
			FE:         Table2Cell{Value: feDetect * packetTokens, Extrapolated: true},
			Searchable: Table2Cell{Value: det1.searchable * packetTokens, Extrapolated: true},
			BlindBox:   Table2Cell{Value: det1.blindbox * packetTokens, Extrapolated: true},
		},
		Table2Row{
			Name: "Detect: 3K rules, 1 token", Paper: "NP / 8.3min / 5.6ms / 137ns",
			Vanilla:    Table2Cell{NotPossible: true},
			FE:         Table2Cell{Value: feDetect * table2Keywords3K, Extrapolated: true},
			Searchable: Table2Cell{Value: det3k.searchable},
			BlindBox:   Table2Cell{Value: det3k.blindbox},
		},
		Table2Row{
			Name: "Detect: 3K rules, 1 packet", Paper: "NP / 5.7 days / 157ms / 33µs",
			Vanilla:    Table2Cell{NotPossible: true},
			FE:         Table2Cell{Value: feDetect * table2Keywords3K * packetTokens, Extrapolated: true},
			Searchable: Table2Cell{Value: det3k.searchable * packetTokens, Extrapolated: true},
			BlindBox:   Table2Cell{Value: det3k.blindbox * packetTokens, Extrapolated: true},
		},
	)
	return rows, nil
}

// vanillaHandshakeOp approximates a TLS handshake's asymmetric cost: an
// ephemeral X25519 key generation plus one shared-secret computation per
// side (certificate signatures excluded, as in our BlindBox HTTPS).
func vanillaHandshakeOp() func() {
	peer, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		//lint:ignore todo-panic benchmark harness; a failed setup must abort the experiment, not skew the numbers
		panic(err)
	}
	return func() {
		priv, err := ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			//lint:ignore todo-panic benchmark harness; a failed setup must abort the experiment, not skew the numbers
			panic(err)
		}
		if _, err := priv.ECDH(peer.PublicKey()); err != nil {
			//lint:ignore todo-panic benchmark harness; a failed setup must abort the experiment, not skew the numbers
			panic(err)
		}
	}
}

type detCosts struct {
	searchable time.Duration
	blindbox   time.Duration
}

// detectionCosts measures per-token detection against a ruleset with the
// given keyword count, for the searchable strawman (linear scan) and
// BlindBox Detect (tree lookup).
func detectionCosts(k bbcrypto.Block, numKeywords int, minSample time.Duration) detCosts {
	// Build keyword fragments and token keys.
	ruleKeys := make([]dpienc.TokenKey, numKeywords)
	tkeys := make(detect.TokenKeys, numKeywords)
	lines := make([]byte, 0, numKeywords*64)
	for i := 0; i < numKeywords; i++ {
		var frag [tokenize.TokenSize]byte
		copy(frag[:], fmt.Sprintf("kw%06x", i))
		ruleKeys[i] = dpienc.ComputeTokenKey(k, frag)
		tkeys[rules.FragmentBlock(frag)] = ruleKeys[i]
		lines = append(lines, []byte(fmt.Sprintf(
			"alert tcp any any -> any any (content:\"kw%06x\"; sid:%d;)\n", i, i+1))...)
	}
	rs, err := rules.Parse("bench", string(lines))
	if err != nil {
		//lint:ignore todo-panic benchmark harness; a failed setup must abort the experiment, not skew the numbers
		panic(err)
	}

	searchMB := strawman.NewSearchableMB(ruleKeys)
	searchSender := strawman.NewSearchableSender(k)
	var benign tokenize.Token
	copy(benign.Text[:], "no-match")
	ct := searchSender.EncryptToken(benign)
	searchable := timeOp(minSample, func() { _ = searchMB.Detect(ct) })

	eng := detect.NewEngine(rs, tkeys, detect.Config{
		Mode: tokenize.Window, Protocol: dpienc.ProtocolII, Salt0: 0,
	})
	bbSender := dpienc.NewSender(k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	et := bbSender.EncryptToken(benign)
	blindbox := timeOp(minSample, func() { _ = eng.ProcessToken(et) })
	return detCosts{searchable: searchable, blindbox: blindbox}
}

// measureSetupPerKeyword runs a real obfuscated rule encryption for n
// keywords (two endpoint garblings, circuit verification, OT and
// evaluation) and returns the per-keyword cost.
func measureSetupPerKeyword(n int) (time.Duration, error) {
	k := bbcrypto.RandomBlock()
	kRG := bbcrypto.RandomBlock()
	krand := bbcrypto.RandomBlock()
	req := ruleprep.Request{}
	for i := 0; i < n; i++ {
		var frag [tokenize.TokenSize]byte
		copy(frag[:], fmt.Sprintf("setup%03d", i))
		blk := rules.FragmentBlock(frag)
		req.Fragments = append(req.Fragments, blk)
		req.Tags = append(req.Tags, bbcrypto.MAC(kRG, blk))
	}
	mb, err := ruleprep.NewMiddlebox(req)
	if err != nil {
		return 0, err
	}
	epS := ruleprep.NewEndpoint(k, kRG, krand)
	epR := ruleprep.NewEndpoint(k, kRG, krand)
	start := time.Now()
	if _, _, err := ruleprep.RunLocal(epS, epR, mb); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(n), nil
}

// PrintTable2 renders the measurements alongside the paper's Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: micro-benchmarks (* = extrapolated from per-op cost, as full runs would take days)")
	t := newTable(w)
	t.row("Benchmark", "Vanilla HTTPS", "FE strawman", "Searchable", "BlindBox", "paper (V/FE/S/BB)")
	for _, r := range rows {
		t.row(r.Name, r.Vanilla.String(), r.FE.String(), r.Searchable.String(), r.BlindBox.String(), r.Paper)
	}
	t.flush()
}
