package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

func sessionKeys() bbcrypto.SessionKeys {
	return bbcrypto.DeriveSessionKeys([]byte("core test master secret"))
}

func mustRules(t *testing.T, lines ...string) *rules.Ruleset {
	t.Helper()
	rs, err := rules.Parse("test", strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestSenderToDetectEndToEnd(t *testing.T) {
	keys := sessionKeys()
	rs := mustRules(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`)
	for _, cfg := range []Config{
		{Protocol: dpienc.ProtocolI, Mode: tokenize.Window},
		{Protocol: dpienc.ProtocolII, Mode: tokenize.Delimiter},
		{Protocol: dpienc.ProtocolIII, Mode: tokenize.Window},
	} {
		sp := NewSenderPipeline(keys, cfg)
		eng := NewDetectEngine(rs, DirectTokenKeys(keys.K, rs, cfg.Mode), cfg, nil)
		var fired bool
		feed := func(toks []dpienc.EncryptedToken) {
			for _, et := range toks {
				for _, ev := range eng.ProcessToken(et) {
					if ev.Kind == detect.RuleMatch {
						fired = true
						if cfg.Protocol == dpienc.ProtocolIII && ev.SSLKey != keys.KSSL {
							t.Fatalf("cfg %+v: recovered wrong kSSL", cfg)
						}
					}
				}
			}
		}
		toks, _ := sp.ProcessText([]byte("benign prefix attackkw benign suffix"))
		feed(toks)
		feed(sp.Flush())
		if !fired {
			t.Fatalf("cfg %+v: rule did not fire", cfg)
		}
	}
}

func TestBinarySkipKeepsSync(t *testing.T) {
	keys := sessionKeys()
	rs := mustRules(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`)
	cfg := DefaultConfig()
	sp := NewSenderPipeline(keys, cfg)
	eng := NewDetectEngine(rs, DirectTokenKeys(keys.K, rs, cfg.Mode), cfg, nil)
	fired := false
	run := func(toks []dpienc.EncryptedToken) {
		for _, et := range toks {
			for _, ev := range eng.ProcessToken(et) {
				if ev.Kind == detect.RuleMatch {
					fired = true
				}
			}
		}
	}
	toks, _ := sp.ProcessText([]byte("header text "))
	run(toks)
	toks, _ = sp.ProcessBinary(1 << 16) // a big image
	run(toks)
	toks, _ = sp.ProcessText([]byte("trailer with attackkw inside"))
	run(toks)
	run(sp.Flush())
	if !fired {
		t.Fatal("rule did not fire after binary skip")
	}
}

func TestValidatorAcceptsHonestSender(t *testing.T) {
	keys := sessionKeys()
	cfg := DefaultConfig()
	sp := NewSenderPipeline(keys, cfg)
	v := NewValidator(keys, cfg)

	chunks := [][]byte{
		[]byte("GET /index.html HTTP/1.1\r\n"),
		[]byte("Host: example.com\r\n\r\n"),
		[]byte("hello body with words"),
	}
	for _, c := range chunks {
		toks, _ := sp.ProcessText(c)
		v.ReceiveTokens(toks)
		if err := v.ValidateText(c); err != nil {
			t.Fatal(err)
		}
	}
	v.ReceiveTokens(sp.Flush())
	if err := v.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestValidatorCatchesOmittedTokens(t *testing.T) {
	keys := sessionKeys()
	cfg := DefaultConfig()
	sp := NewSenderPipeline(keys, cfg)
	v := NewValidator(keys, cfg)
	payload := []byte("a sender hiding attackkw by omitting tokens")
	toks, _ := sp.ProcessText(payload)
	if len(toks) < 2 {
		t.Fatal("test payload produced too few tokens")
	}
	v.ReceiveTokens(toks[:len(toks)-3]) // cheat: drop the tail
	err := v.ValidateText(payload)
	if err == nil {
		err = v.Finish()
	}
	if !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("omission not caught: %v", err)
	}
}

func TestValidatorCatchesForgedTokens(t *testing.T) {
	keys := sessionKeys()
	cfg := DefaultConfig()
	sp := NewSenderPipeline(keys, cfg)
	v := NewValidator(keys, cfg)
	payload := []byte("payload with several words to tokenize properly")
	toks, _ := sp.ProcessText(payload)
	toks[0].C1[0] ^= 0xFF // forge
	v.ReceiveTokens(toks)
	if err := v.ValidateText(payload); !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("forgery not caught: %v", err)
	}
}

func TestValidatorCatchesSurplusTokens(t *testing.T) {
	keys := sessionKeys()
	cfg := DefaultConfig()
	sp := NewSenderPipeline(keys, cfg)
	v := NewValidator(keys, cfg)
	payload := []byte("plain words here")
	toks, _ := sp.ProcessText(payload)
	v.ReceiveTokens(toks)
	v.ReceiveTokens([]dpienc.EncryptedToken{{Offset: 9999}}) // junk extra
	if err := v.ValidateText(payload); err != nil {
		// surplus may also surface here depending on chunking; accept.
		if !errors.Is(err, ErrTokenMismatch) {
			t.Fatal(err)
		}
		return
	}
	v.ReceiveTokens(sp.Flush())
	if err := v.Finish(); !errors.Is(err, ErrTokenMismatch) {
		t.Fatalf("surplus not caught: %v", err)
	}
}

func TestSaltResetAnnouncedAndApplied(t *testing.T) {
	keys := sessionKeys()
	cfg := Config{Protocol: dpienc.ProtocolII, Mode: tokenize.Window}
	sp := NewSenderPipeline(keys, cfg)
	sp.SetResetInterval(64)
	rs := mustRules(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`)
	eng := NewDetectEngine(rs, DirectTokenKeys(keys.K, rs, cfg.Mode), cfg, nil)

	matches := 0
	feed := func(toks []dpienc.EncryptedToken, reset *SaltReset) {
		if reset != nil {
			eng.Reset(reset.Salt0)
		}
		for _, et := range toks {
			for _, ev := range eng.ProcessToken(et) {
				if ev.Kind == detect.KeywordMatch {
					matches++
				}
			}
		}
	}
	for i := 0; i < 10; i++ {
		toks, reset := sp.ProcessText([]byte("some filler text then attackkw and padding padding"))
		feed(toks, reset)
	}
	feed(sp.Flush(), nil)
	if matches != 10 {
		t.Fatalf("matches across salt resets = %d, want 10", matches)
	}
}

func TestBuildRequestAndPrepGlue(t *testing.T) {
	g, err := rules.NewGenerator("RG")
	if err != nil {
		t.Fatal(err)
	}
	rs := mustRules(t, `alert tcp any any -> any any (content:"attackkw"; sid:1;)`)
	sr := g.Sign(rs)
	req := BuildRequest(sr, tokenize.Window)
	if len(req.Fragments) != 1 {
		t.Fatalf("fragments = %d", len(req.Fragments))
	}

	keys := sessionKeys()
	epS := ruleprep.NewEndpoint(keys.K, g.TagKey(), keys.KRand)
	epR := ruleprep.NewEndpoint(keys.K, g.TagKey(), keys.KRand)
	mb, err := ruleprep.NewMiddlebox(req)
	if err != nil {
		t.Fatal(err)
	}
	prepped, _, err := ruleprep.RunLocal(epS, epR, mb)
	if err != nil {
		t.Fatal(err)
	}
	tkeys := TokenKeysFromPrep(req, prepped)
	direct := DirectTokenKeys(keys.K, rs, tokenize.Window)
	if len(tkeys) != len(direct) {
		t.Fatalf("prep keys = %d, direct keys = %d", len(tkeys), len(direct))
	}
	for frag, k := range direct {
		if tkeys[frag] != k {
			t.Fatalf("prep key for %x differs from direct computation", frag)
		}
	}
}
