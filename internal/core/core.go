// Package core is the BlindBox protocol engine: it composes tokenization
// (§3), DPIEnc encryption (§3.1), the receiver-side token validation
// (§3.4) and the glue between signed rulesets, obfuscated rule encryption
// and the detection engine. The transport package runs these pipelines over
// real connections; examples and benchmarks can also drive them directly.
package core

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/obs"
	"repro/internal/ruleprep"
	"repro/internal/rules"
	"repro/internal/tokenize"
	"repro/internal/tuning"
)

// Config fixes the per-connection protocol parameters both endpoints and
// the middlebox must agree on.
type Config struct {
	// Protocol selects BlindBox Protocol I, II or III.
	Protocol dpienc.Protocol
	// Mode selects window- or delimiter-based tokenization.
	Mode tokenize.Mode
	// Salt0 is the initial DPIEnc salt.
	Salt0 uint64
}

// DefaultConfig matches the paper's primary evaluation configuration:
// Protocol II with delimiter tokenization.
func DefaultConfig() Config {
	return Config{Protocol: dpienc.ProtocolII, Mode: tokenize.Delimiter}
}

// SaltReset is emitted by the sender pipeline when its counter table
// resets; the new Salt0 must reach the middlebox before later tokens.
type SaltReset struct {
	Salt0 uint64
}

// SenderPipeline turns outgoing plaintext into the encrypted token stream.
// It owns a tokenizer and a DPIEnc sender whose state must see the traffic
// in transmission order.
type SenderPipeline struct {
	cfg Config
	tk  *tokenize.Tokenizer
	enc *dpienc.Sender
	// workers is the fan-out of the stateless AES step; <=1 keeps it on
	// the calling goroutine.
	workers int
	// obs is nil until Instrument: the uninstrumented hot path pays one
	// pointer check per chunk and takes no timestamps.
	obs *pipelineObs
}

// pipelineObs is the optional stage instrumentation of a SenderPipeline:
// tokenize and encrypt latency histograms, plus spans when a trace sink is
// set.
type pipelineObs struct {
	tokenize *obs.Histogram
	encrypt  *obs.Histogram
	trace    obs.Sink
	flow     uint64
	dir      string
	// ctx parents per-batch tokenize/encrypt spans under the owning
	// connection span; party labels the emitting endpoint. Both are
	// zero/empty when distributed tracing is not negotiated, leaving the
	// spans flat (schema v1).
	ctx   obs.SpanCtx
	party string
}

// NewSenderPipeline creates the sender side of one connection direction.
func NewSenderPipeline(keys bbcrypto.SessionKeys, cfg Config) *SenderPipeline {
	return &SenderPipeline{
		cfg: cfg,
		tk:  tokenize.New(cfg.Mode),
		enc: dpienc.NewSender(keys.K, keys.KSSL, cfg.Protocol, cfg.Salt0),
	}
}

// SetParallelism sets the number of goroutines used for the stateless AES
// step of token encryption: n of 1 (the default) keeps encryption on the
// calling goroutine, n > 1 fans each batch out over up to n goroutines, and
// n <= 0 means GOMAXPROCS. The §3.2 counter-table assignment is always
// sequential, so parallelism never changes the produced token stream —
// only how fast it is computed. Prefer AutoTune, which also learns the
// batch size below which fan-out cannot pay.
func (p *SenderPipeline) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.workers = n
	p.enc.SetFanOut(n, 0)
}

// AutoTune applies the measured fan-out decision of internal/tuning to
// this pipeline: batches past the calibrated break-even size fan their
// AES step across the calibrated worker count, everything else — and
// everything on hosts where handoffs cost more than they save — runs
// sequentially, so the tuned pipeline is never slower than the sequential
// one. The calibration is cached process-wide; per-connection callers pay
// only a map lookup.
func (p *SenderPipeline) AutoTune() {
	t := tuning.Auto()
	p.workers = t.EncryptWorkers
	p.enc.SetFanOut(t.EncryptWorkers, t.EncryptMinBatch)
}

// Parallelism reports the configured AES fan-out.
func (p *SenderPipeline) Parallelism() int {
	if p.workers <= 1 {
		return 1
	}
	return p.workers
}

// Instrument enables per-chunk stage timing on this pipeline: tokenize and
// encrypt latency histograms in r (obs.SenderTokenizeSeconds,
// obs.SenderEncryptSeconds), DPIEnc counters on the underlying sender, and
// — when trace is non-nil — tokenize/encrypt spans labeled with flow and
// dir. A valid ctx additionally parents each batch span under the owning
// connection span and stamps party, joining the distributed trace.
// Passing a nil registry and nil sink leaves the pipeline uninstrumented
// (the default, zero-overhead state).
func (p *SenderPipeline) Instrument(r *obs.Registry, trace obs.Sink, flow uint64, dir string, ctx obs.SpanCtx, party string) {
	if r == nil && trace == nil {
		p.obs = nil
		return
	}
	p.obs = &pipelineObs{
		tokenize: r.Histogram(obs.SenderTokenizeSeconds, obs.Help(obs.SenderTokenizeSeconds), obs.LatencyBuckets),
		encrypt:  r.Histogram(obs.SenderEncryptSeconds, obs.Help(obs.SenderEncryptSeconds), obs.LatencyBuckets),
		trace:    trace,
		flow:     flow,
		dir:      dir,
		ctx:      ctx,
		party:    party,
	}
	p.enc.Instrument(r)
}

// timedEncrypt is the instrumented tail of a Process*Into call: toks were
// tokenized starting at t0 from `bytes` input bytes; the encrypt step is
// timed here.
func (p *SenderPipeline) timedEncrypt(dst []dpienc.EncryptedToken, toks []tokenize.Token, t0 time.Time, bytes int) []dpienc.EncryptedToken {
	t1 := time.Now()
	out := p.encryptInto(dst, toks)
	t2 := time.Now()
	o := p.obs
	o.tokenize.Observe(t1.Sub(t0).Seconds())
	o.encrypt.Observe(t2.Sub(t1).Seconds())
	if o.trace != nil {
		tok := obs.Span{
			Flow: o.flow, Dir: o.dir, Party: o.party, Name: obs.SpanTokenize,
			Start: t0.UnixNano(), Dur: int64(t1.Sub(t0)), Tokens: len(toks), Bytes: bytes,
		}
		o.ctx.Child().Stamp(&tok)
		o.trace.Emit(tok)
		enc := obs.Span{
			Flow: o.flow, Dir: o.dir, Party: o.party, Name: obs.SpanEncrypt,
			Start: t1.UnixNano(), Dur: int64(t2.Sub(t1)), Tokens: len(toks),
		}
		o.ctx.Child().Stamp(&enc)
		o.trace.Emit(enc)
	}
	return out
}

// encryptInto encrypts a token batch, reusing dst's backing array when
// large enough. The sequential-vs-parallel decision lives on the sender
// (SetFanOut via SetParallelism/AutoTune), so every caller gets the same
// routing.
func (p *SenderPipeline) encryptInto(dst []dpienc.EncryptedToken, toks []tokenize.Token) []dpienc.EncryptedToken {
	return p.enc.EncryptTokensInto(dst, toks)
}

// ProcessText tokenizes and encrypts a chunk of inspectable (text) payload,
// returning the encrypted tokens and, if the counter table reset, the salt
// announcement. The reset is checked before encrypting, so an announced
// salt always precedes the tokens that use it.
func (p *SenderPipeline) ProcessText(data []byte) ([]dpienc.EncryptedToken, *SaltReset) {
	return p.ProcessTextInto(nil, data)
}

// ProcessTextInto is ProcessText writing the encrypted tokens into dst's
// backing array when it has capacity — the allocation-free form the
// transport hot path pairs with dpienc.GetTokenBuf/PutTokenBuf.
func (p *SenderPipeline) ProcessTextInto(dst []dpienc.EncryptedToken, data []byte) ([]dpienc.EncryptedToken, *SaltReset) {
	reset := p.accountAndMaybeReset(len(data))
	if p.obs == nil {
		return p.encryptInto(dst, p.tk.Append(data)), reset
	}
	t0 := time.Now()
	return p.timedEncrypt(dst, p.tk.Append(data), t0, len(data)), reset
}

// ProcessBinary accounts for payload the IDS does not inspect (images,
// video): no new tokens are formed, but stream offsets advance and
// buffered text is finalized (possibly emitting its trailing tokens).
func (p *SenderPipeline) ProcessBinary(n int) ([]dpienc.EncryptedToken, *SaltReset) {
	return p.ProcessBinaryInto(nil, n)
}

// ProcessBinaryInto is ProcessBinary reusing dst's backing array.
func (p *SenderPipeline) ProcessBinaryInto(dst []dpienc.EncryptedToken, n int) ([]dpienc.EncryptedToken, *SaltReset) {
	reset := p.accountAndMaybeReset(n)
	if p.obs == nil {
		return p.encryptInto(dst, p.tk.Skip(n)), reset
	}
	t0 := time.Now()
	return p.timedEncrypt(dst, p.tk.Skip(n), t0, n), reset
}

// Flush finalizes the stream, returning the trailing tokens.
func (p *SenderPipeline) Flush() []dpienc.EncryptedToken {
	return p.FlushInto(nil)
}

// FlushInto is Flush reusing dst's backing array.
func (p *SenderPipeline) FlushInto(dst []dpienc.EncryptedToken) []dpienc.EncryptedToken {
	if p.obs == nil {
		return p.encryptInto(dst, p.tk.Flush())
	}
	t0 := time.Now()
	return p.timedEncrypt(dst, p.tk.Flush(), t0, 0)
}

func (p *SenderPipeline) accountAndMaybeReset(n int) *SaltReset {
	if salt0, reset := p.enc.AccountBytes(n); reset {
		return &SaltReset{Salt0: salt0}
	}
	return nil
}

// Salt0 returns the current initial salt.
func (p *SenderPipeline) Salt0() uint64 { return p.enc.Salt0() }

// SetResetInterval overrides the counter-reset interval P.
func (p *SenderPipeline) SetResetInterval(n int) { p.enc.SetResetInterval(n) }

// ErrTokenMismatch is returned by the validator when the received token
// stream differs from what an honest sender would have produced — evidence
// that the sending endpoint tried to evade detection (§3.4).
var ErrTokenMismatch = errors.New("core: encrypted token stream does not match payload")

// Validator is the receiver-side check of §3.4: it re-tokenizes and
// re-encrypts the decrypted SSL payload and compares the result against the
// encrypted tokens forwarded by the middlebox.
type Validator struct {
	pipe *SenderPipeline
	// pending holds received tokens not yet consumed by recomputation.
	pending []dpienc.EncryptedToken
}

// NewValidator creates a validator; it must be given the same session keys
// and config as the sender it checks.
func NewValidator(keys bbcrypto.SessionKeys, cfg Config) *Validator {
	return &Validator{pipe: NewSenderPipeline(keys, cfg)}
}

// ReceiveTokens buffers tokens forwarded by the middlebox.
func (v *Validator) ReceiveTokens(toks []dpienc.EncryptedToken) {
	v.pending = append(v.pending, toks...)
}

// ValidateText recomputes the tokens for a decrypted text chunk and checks
// them against the buffered received tokens.
func (v *Validator) ValidateText(data []byte) error {
	toks, _ := v.pipe.ProcessText(data)
	return v.consume(toks)
}

// ValidateBinary accounts for uninspected payload.
func (v *Validator) ValidateBinary(n int) error {
	toks, _ := v.pipe.ProcessBinary(n)
	return v.consume(toks)
}

// Finish checks the trailing tokens and that no received tokens remain
// unexplained.
func (v *Validator) Finish() error {
	if err := v.consume(v.pipe.Flush()); err != nil {
		return err
	}
	if len(v.pending) != 0 {
		return fmt.Errorf("%w: %d surplus tokens", ErrTokenMismatch, len(v.pending))
	}
	return nil
}

func (v *Validator) consume(want []dpienc.EncryptedToken) error {
	if len(v.pending) < len(want) {
		return fmt.Errorf("%w: missing %d tokens", ErrTokenMismatch, len(want)-len(v.pending))
	}
	for i, w := range want {
		got := v.pending[i]
		if subtle.ConstantTimeCompare(got.C1[:], w.C1[:]) != 1 ||
			got.Offset != w.Offset ||
			subtle.ConstantTimeCompare(got.C2[:], w.C2[:]) != 1 {
			return fmt.Errorf("%w: token at stream offset %d", ErrTokenMismatch, w.Offset)
		}
	}
	v.pending = v.pending[len(want):]
	return nil
}

// BuildRequest converts a signed ruleset into the obfuscated-rule-
// encryption request the middlebox runs against the endpoints: the
// distinct fragments for the tokenization mode, paired with RG's tags.
// Fragments without a tag (never issued by RG) are omitted — the circuit
// would reject them anyway.
func BuildRequest(sr *rules.SignedRuleset, mode tokenize.Mode) ruleprep.Request {
	var req ruleprep.Request
	for _, f := range sr.Ruleset.Fragments(mode) {
		blk := rules.FragmentBlock(f)
		tag, ok := sr.Tags[blk]
		if !ok {
			continue
		}
		req.Fragments = append(req.Fragments, blk)
		req.Tags = append(req.Tags, tag)
	}
	return req
}

// TokenKeysFromPrep assembles the detection key map from a rule-preparation
// result (nil entries — unauthorized fragments — are skipped).
func TokenKeysFromPrep(req ruleprep.Request, keys []*dpienc.TokenKey) detect.TokenKeys {
	out := make(detect.TokenKeys, len(keys))
	for i, k := range keys {
		if k != nil {
			out[req.Fragments[i]] = *k
		}
	}
	return out
}

// DirectTokenKeys computes the token keys directly from the session key —
// the trusted-setup shortcut used by benchmarks and tests that exercise
// detection without paying for garbling. Real connections use the
// rule-preparation exchange instead.
func DirectTokenKeys(k bbcrypto.Block, rs *rules.Ruleset, mode tokenize.Mode) detect.TokenKeys {
	keys := make(detect.TokenKeys)
	for _, f := range rs.Fragments(mode) {
		var t [tokenize.TokenSize]byte
		copy(t[:], f[:])
		keys[rules.FragmentBlock(f)] = dpienc.ComputeTokenKey(k, t)
	}
	return keys
}

// NewDetectEngine builds the middlebox detection engine for a connection.
func NewDetectEngine(rs *rules.Ruleset, keys detect.TokenKeys, cfg Config, idx detect.Index) *detect.Engine {
	return detect.NewEngine(rs, keys, detect.Config{
		Mode:     cfg.Mode,
		Protocol: cfg.Protocol,
		Salt0:    cfg.Salt0,
		Index:    idx,
	})
}
