package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleSegment(payload string) *Segment {
	return &Segment{
		SrcMAC: [6]byte{2, 0, 0, 0, 0, 1}, DstMAC: [6]byte{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 43210, DstPort: 80,
		Seq: 1001, Ack: 777, Flags: FlagACK | FlagPSH,
		Payload: []byte(payload),
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	s := sampleSegment("GET / HTTP/1.1\r\n\r\n")
	frame := s.Marshal()
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != s.SrcIP || got.DstIP != s.DstIP ||
		got.SrcPort != s.SrcPort || got.DstPort != s.DstPort ||
		got.Seq != s.Seq || got.Ack != s.Ack || got.Flags != s.Flags {
		t.Fatalf("headers diverged: %+v vs %+v", got, s)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("payload diverged: %q", got.Payload)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sport, dport uint16, seq uint32) bool {
		if len(payload) > 1460 {
			payload = payload[:1460]
		}
		s := sampleSegment("")
		s.Payload = payload
		s.SrcPort, s.DstPort, s.Seq = sport, dport, seq
		got, err := Unmarshal(s.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload) && got.SrcPort == sport &&
			got.DstPort == dport && got.Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumValidation(t *testing.T) {
	frame := sampleSegment("payload bytes here").Marshal()
	// Corrupt one payload byte: the TCP checksum must catch it.
	frame[len(frame)-3] ^= 0xFF
	if _, err := Unmarshal(frame); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Corrupt an IP header byte.
	frame2 := sampleSegment("x").Marshal()
	frame2[EthernetHeaderLen+8] ^= 0xFF // TTL
	if _, err := Unmarshal(frame2); err == nil {
		t.Fatal("corrupted IP header accepted")
	}
}

func TestUnmarshalRejectsShortAndForeign(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	arp := sampleSegment("x").Marshal()
	arp[12], arp[13] = 0x08, 0x06 // ARP ethertype
	if _, err := Unmarshal(arp); err != ErrNotTCP {
		t.Fatalf("ARP frame: %v", err)
	}
}

func TestSegmentizeAndReassemble(t *testing.T) {
	key := FlowKey{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 999, DstPort: 80}
	payload := bytes.Repeat([]byte("stream data with keywords inside "), 200) // > several MSS
	segs := Segmentize(key, payload, 1460)
	if segs[0].Flags&FlagSYN == 0 {
		t.Fatal("first segment not SYN")
	}
	if segs[len(segs)-1].Flags&FlagFIN == 0 {
		t.Fatal("last segment not FIN")
	}
	asm := NewAssembler()
	for _, s := range segs {
		// Round-trip each through the wire format too.
		got, err := Unmarshal(s.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		asm.Add(got)
	}
	keys, payloads := asm.Flows()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("flows = %v", keys)
	}
	if !bytes.Equal(payloads[0], payload) {
		t.Fatalf("reassembly produced %d bytes, want %d", len(payloads[0]), len(payload))
	}
}

func TestAssemblerSkipsDuplicates(t *testing.T) {
	key := FlowKey{SrcPort: 1, DstPort: 2}
	segs := Segmentize(key, []byte("abcdef"), 3)
	asm := NewAssembler()
	for _, s := range segs {
		asm.Add(s)
		asm.Add(s) // duplicate delivery
	}
	_, payloads := asm.Flows()
	if string(payloads[0]) != "abcdef" {
		t.Fatalf("duplicates corrupted stream: %q", payloads[0])
	}
}

func TestFlowKeyString(t *testing.T) {
	key := FlowKey{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 9, 8, 7}, SrcPort: 5, DstPort: 80}
	if key.String() != "10.0.0.1:5->10.9.8.7:80" {
		t.Fatalf("String = %q", key.String())
	}
}

func TestMultipleFlowsKeptSeparate(t *testing.T) {
	asm := NewAssembler()
	k1 := FlowKey{SrcPort: 1, DstPort: 80}
	k2 := FlowKey{SrcPort: 2, DstPort: 80}
	for _, s := range Segmentize(k1, []byte("flow-one"), 4) {
		asm.Add(s)
	}
	for _, s := range Segmentize(k2, []byte("flow-two"), 4) {
		asm.Add(s)
	}
	keys, payloads := asm.Flows()
	if len(keys) != 2 || string(payloads[0]) != "flow-one" || string(payloads[1]) != "flow-two" {
		t.Fatalf("flows mixed: %v %q", keys, payloads)
	}
}
