// Package packet provides minimal Ethernet/IPv4/TCP serialization and
// parsing — enough to materialize the synthetic traces as real packets
// (and standard pcap files via internal/pcapio) and to reassemble flows
// from them. The paper's middlebox operates on exactly this layering:
// TCP bytestreams reassembled from packets captured off a link.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EthernetHeaderLen is the length of an Ethernet II header.
const EthernetHeaderLen = 14

// IPv4HeaderLen is the length of an options-free IPv4 header.
const IPv4HeaderLen = 20

// TCPHeaderLen is the length of an options-free TCP header.
const TCPHeaderLen = 20

// EtherTypeIPv4 is the Ethernet II type for IPv4.
const EtherTypeIPv4 = 0x0800

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Segment is one TCP segment with its addressing.
type Segment struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   [4]byte
	SrcPort        uint16
	DstPort        uint16
	Seq, Ack       uint32
	Flags          byte
	Payload        []byte
}

// FlowKey identifies one direction of a TCP connection.
type FlowKey struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
}

// Key returns the segment's directional flow key.
func (s *Segment) Key() FlowKey {
	return FlowKey{SrcIP: s.SrcIP, DstIP: s.DstIP, SrcPort: s.SrcPort, DstPort: s.DstPort}
}

// String renders the key like "10.0.0.1:1234->10.0.0.2:80".
func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d",
		k.SrcIP[0], k.SrcIP[1], k.SrcIP[2], k.SrcIP[3], k.SrcPort,
		k.DstIP[0], k.DstIP[1], k.DstIP[2], k.DstIP[3], k.DstPort)
}

// Marshal serializes the segment as an Ethernet frame with correct IPv4
// and TCP checksums.
func (s *Segment) Marshal() []byte {
	total := EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen + len(s.Payload)
	out := make([]byte, total)

	// Ethernet.
	copy(out[0:6], s.DstMAC[:])
	copy(out[6:12], s.SrcMAC[:])
	binary.BigEndian.PutUint16(out[12:14], EtherTypeIPv4)

	// IPv4.
	ip := out[EthernetHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+TCPHeaderLen+len(s.Payload)))
	ip[8] = 64 // TTL
	ip[9] = ProtoTCP
	copy(ip[12:16], s.SrcIP[:])
	copy(ip[16:20], s.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPv4HeaderLen]))

	// TCP.
	tcp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], s.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], s.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], s.Ack)
	tcp[12] = (TCPHeaderLen / 4) << 4 // data offset
	tcp[13] = s.Flags
	binary.BigEndian.PutUint16(tcp[14:16], 65535) // window
	copy(tcp[TCPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(tcp[16:18], tcpChecksum(s.SrcIP, s.DstIP, tcp))
	return out
}

// Unmarshal parses an Ethernet/IPv4/TCP frame, validating lengths and both
// checksums. Non-IPv4 or non-TCP frames return ErrNotTCP.
func Unmarshal(frame []byte) (*Segment, error) {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		return nil, errors.New("packet: frame too short")
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return nil, ErrNotTCP
	}
	var s Segment
	copy(s.DstMAC[:], frame[0:6])
	copy(s.SrcMAC[:], frame[6:12])

	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return nil, ErrNotTCP
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return nil, errors.New("packet: bad IHL")
	}
	if ip[9] != ProtoTCP {
		return nil, ErrNotTCP
	}
	if checksum(ip[:ihl]) != 0 {
		return nil, errors.New("packet: IPv4 checksum mismatch")
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < ihl+TCPHeaderLen || len(ip) < totalLen {
		return nil, errors.New("packet: truncated IPv4 payload")
	}
	copy(s.SrcIP[:], ip[12:16])
	copy(s.DstIP[:], ip[16:20])

	tcp := ip[ihl:totalLen]
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < TCPHeaderLen || len(tcp) < dataOff {
		return nil, errors.New("packet: bad TCP data offset")
	}
	if tcpChecksum(s.SrcIP, s.DstIP, tcp) != 0 {
		return nil, errors.New("packet: TCP checksum mismatch")
	}
	s.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	s.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	s.Seq = binary.BigEndian.Uint32(tcp[4:8])
	s.Ack = binary.BigEndian.Uint32(tcp[8:12])
	s.Flags = tcp[13]
	s.Payload = append([]byte(nil), tcp[dataOff:]...)
	return &s, nil
}

// ErrNotTCP marks frames that are valid but not IPv4/TCP.
var ErrNotTCP = errors.New("packet: not an IPv4/TCP frame")

// checksum is the Internet checksum (RFC 1071) over data; a correct
// checksum field makes the sum over the whole header equal zero.
func checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum including the IPv4 pseudo-header.
// The checksum field inside tcp must be zeroed by the caller (Marshal) or
// contain the transmitted value (Unmarshal verification: result 0).
func tcpChecksum(src, dst [4]byte, tcp []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(tcp)))

	var sum uint32
	add := func(data []byte) {
		for i := 0; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
		}
		if len(data)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
		}
	}
	add(pseudo[:])
	add(tcp)
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Assembler reassembles in-order TCP payload bytes per directional flow —
// the minimal stream reassembly an HTTP DPI middlebox needs for replayed
// traces (out-of-order and retransmitted segments are dropped; synthetic
// traces are in order).
type Assembler struct {
	flows map[FlowKey]*flowAsm
	order []FlowKey
}

type flowAsm struct {
	nextSeq uint32
	started bool
	data    []byte
	closed  bool
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{flows: make(map[FlowKey]*flowAsm)}
}

// Add folds one segment into its flow.
func (a *Assembler) Add(s *Segment) {
	key := s.Key()
	f := a.flows[key]
	if f == nil {
		f = &flowAsm{}
		a.flows[key] = f
		a.order = append(a.order, key)
	}
	if s.Flags&FlagSYN != 0 {
		f.nextSeq = s.Seq + 1
		f.started = true
		return
	}
	if !f.started {
		f.nextSeq = s.Seq
		f.started = true
	}
	if s.Seq == f.nextSeq && len(s.Payload) > 0 {
		f.data = append(f.data, s.Payload...)
		f.nextSeq += uint32(len(s.Payload))
	}
	if s.Flags&FlagFIN != 0 {
		f.closed = true
	}
}

// Flows returns, in first-seen order, each flow's key and reassembled
// payload.
func (a *Assembler) Flows() ([]FlowKey, [][]byte) {
	payloads := make([][]byte, len(a.order))
	for i, key := range a.order {
		payloads[i] = a.flows[key].data
	}
	return a.order, payloads
}

// Segmentize splits one flow payload into MSS-sized TCP segments with
// SYN/FIN framing, suitable for writing to a pcap.
func Segmentize(key FlowKey, payload []byte, mss int) []*Segment {
	if mss <= 0 {
		mss = 1460
	}
	base := &Segment{
		SrcMAC: [6]byte{2, 0, 0, 0, 0, 1}, DstMAC: [6]byte{2, 0, 0, 0, 0, 2},
		SrcIP: key.SrcIP, DstIP: key.DstIP, SrcPort: key.SrcPort, DstPort: key.DstPort,
	}
	var segs []*Segment
	seq := uint32(1000)
	syn := *base
	syn.Seq = seq
	syn.Flags = FlagSYN
	segs = append(segs, &syn)
	seq++
	for off := 0; off < len(payload); off += mss {
		end := off + mss
		if end > len(payload) {
			end = len(payload)
		}
		seg := *base
		seg.Seq = seq
		seg.Flags = FlagACK | FlagPSH
		seg.Payload = payload[off:end]
		segs = append(segs, &seg)
		seq += uint32(end - off)
	}
	fin := *base
	fin.Seq = seq
	fin.Flags = FlagFIN | FlagACK
	segs = append(segs, &fin)
	return segs
}
