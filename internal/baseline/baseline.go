// Package baseline implements a plaintext Snort-like IDS: Aho–Corasick
// multi-pattern search over cleartext payloads plus full rule evaluation
// (offsets, relative constraints and pcre). The paper benchmarks BlindBox's
// middlebox against exactly such a system (§7.2.3, "when running Snort over
// the same traffic...") and uses it as ground truth for the §7.1
// detection-accuracy experiment.
package baseline

import (
	"sort"

	"repro/internal/ahocorasick"
	"repro/internal/rules"
)

// IDS is a compiled plaintext intrusion detection engine.
type IDS struct {
	rs *rules.Ruleset
	ac *ahocorasick.Automaton
	// patRefs maps automaton pattern index -> (rule index, content index).
	patRefs []patRef
}

type patRef struct {
	rule    int
	content int
}

// New compiles the ruleset into a plaintext IDS.
func New(rs *rules.Ruleset) *IDS {
	ids := &IDS{rs: rs}
	var patterns [][]byte
	for ri, r := range rs.Rules {
		for ci := range r.Contents {
			patterns = append(patterns, r.Contents[ci].Pattern)
			ids.patRefs = append(ids.patRefs, patRef{rule: ri, content: ci})
		}
	}
	ids.ac = ahocorasick.New(patterns)
	return ids
}

// Result reports which rules and keywords matched a payload.
type Result struct {
	// RuleSIDs lists the SIDs of fully matched rules.
	RuleSIDs []int
	// KeywordMatches counts (rule, content) pairs with at least one match.
	KeywordMatches int
	// KeywordOffsets records, per rule index, per content index, the match
	// start offsets (bounded).
	KeywordOffsets map[int]map[int][]int
}

const maxOffsetsPerKeyword = 64

// Inspect evaluates the full payload against all rules.
func (ids *IDS) Inspect(payload []byte) Result {
	res := Result{KeywordOffsets: make(map[int]map[int][]int)}
	for _, m := range ids.ac.FindAll(payload) {
		ref := ids.patRefs[m.Pattern]
		perRule := res.KeywordOffsets[ref.rule]
		if perRule == nil {
			perRule = make(map[int][]int)
			res.KeywordOffsets[ref.rule] = perRule
		}
		if len(perRule[ref.content]) < maxOffsetsPerKeyword {
			start := m.End - len(ids.rs.Rules[ref.rule].Contents[ref.content].Pattern)
			perRule[ref.content] = append(perRule[ref.content], start)
		}
	}
	for ri, perRule := range res.KeywordOffsets {
		res.KeywordMatches += len(perRule)
		rule := ids.rs.Rules[ri]
		if len(perRule) != len(rule.Contents) {
			continue
		}
		if !satisfies(rule, perRule) {
			continue
		}
		if rule.Pcre != "" {
			re := rule.Regexp()
			// Rules whose pcre does not compile under RE2 fall back to
			// content-only evaluation (documented approximation).
			if re != nil && !re.Match(payload) {
				continue
			}
		}
		res.RuleSIDs = append(res.RuleSIDs, rule.SID)
	}
	// Pure-pcre rules (no contents) are evaluated directly.
	for _, rule := range ids.rs.Rules {
		if len(rule.Contents) == 0 && rule.Regexp() != nil && rule.Regexp().Match(payload) {
			res.RuleSIDs = append(res.RuleSIDs, rule.SID)
		}
	}
	// The keyword-offset pass above iterates a map; sort so Inspect is
	// deterministic for a given payload (alert conformance depends on it).
	sort.Ints(res.RuleSIDs)
	return res
}

// satisfies checks the rule's positional constraints with a backtracking
// assignment over recorded match offsets, mirroring detect.assign so the
// encrypted and plaintext engines agree on semantics.
func satisfies(rule *rules.Rule, perRule map[int][]int) bool {
	return assign(rule, perRule, 0, -1)
}

func assign(rule *rules.Rule, perRule map[int][]int, i, prevEnd int) bool {
	if i == len(rule.Contents) {
		return true
	}
	c := &rule.Contents[i]
	for _, start := range perRule[i] {
		if start < c.Offset {
			continue
		}
		if c.Depth >= 0 && start+len(c.Pattern) > c.Offset+c.Depth {
			continue
		}
		if prevEnd >= 0 && (c.Distance >= 0 || c.Within >= 0) {
			gap := start - prevEnd
			if gap < 0 {
				continue
			}
			if c.Distance >= 0 && gap < c.Distance {
				continue
			}
			if c.Within >= 0 && gap+len(c.Pattern) > c.Within {
				continue
			}
		}
		if assign(rule, perRule, i+1, start+len(c.Pattern)) {
			return true
		}
	}
	return false
}

// Throughput helpers: a streaming scanner with rule evaluation deferred,
// used by throughput benchmarks where only the search cost matters.
type Scanner struct {
	ids *IDS
	sc  *ahocorasick.Scanner
	// Hits counts raw pattern hits.
	Hits int
}

// NewScanner returns a streaming scanner over one flow.
func (ids *IDS) NewScanner() *Scanner {
	return &Scanner{ids: ids, sc: ids.ac.NewScanner()}
}

// Scan consumes a chunk, counting pattern hits.
func (s *Scanner) Scan(data []byte) {
	s.Hits += len(s.sc.Scan(data))
}
