package baseline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rules"
)

func mustParse(t *testing.T, lines ...string) *rules.Ruleset {
	t.Helper()
	rs, err := rules.Parse("test", strings.Join(lines, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestSingleKeywordRule(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"evil"; sid:1;)`))
	res := ids.Inspect([]byte("some evil content"))
	if len(res.RuleSIDs) != 1 || res.RuleSIDs[0] != 1 {
		t.Fatalf("RuleSIDs = %v", res.RuleSIDs)
	}
	if res.KeywordMatches != 1 {
		t.Fatalf("KeywordMatches = %d", res.KeywordMatches)
	}
	res = ids.Inspect([]byte("all benign"))
	if len(res.RuleSIDs) != 0 || res.KeywordMatches != 0 {
		t.Fatalf("false positive: %+v", res)
	}
}

func TestMultiKeywordWithConstraints(t *testing.T) {
	ids := New(mustParse(t,
		`alert tcp any any -> any any (content:"AAA"; content:"BBB"; distance:2; within:10; sid:5;)`))
	if got := ids.Inspect([]byte("AAAxxBBB")).RuleSIDs; len(got) != 1 {
		t.Fatalf("valid spacing: %v", got)
	}
	if got := ids.Inspect([]byte("AAABBB")).RuleSIDs; len(got) != 0 {
		t.Fatalf("distance violation fired: %v", got)
	}
	if got := ids.Inspect([]byte("AAA" + strings.Repeat("x", 30) + "BBB")).RuleSIDs; len(got) != 0 {
		t.Fatalf("within violation fired: %v", got)
	}
}

func TestOffsetDepth(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"GET"; offset:0; depth:3; sid:2;)`))
	if got := ids.Inspect([]byte("GET /index")).RuleSIDs; len(got) != 1 {
		t.Fatalf("anchored GET missed: %v", got)
	}
	if got := ids.Inspect([]byte("xGET /index")).RuleSIDs; len(got) != 0 {
		t.Fatalf("shifted GET fired: %v", got)
	}
}

func TestPcreRule(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"cmd="; pcre:"/cmd=[a-f0-9]{8}/"; sid:3;)`))
	if got := ids.Inspect([]byte("q?cmd=deadbeef!")).RuleSIDs; len(got) != 1 {
		t.Fatalf("pcre rule missed: %v", got)
	}
	if got := ids.Inspect([]byte("q?cmd=nothexy!")).RuleSIDs; len(got) != 0 {
		t.Fatalf("pcre rule fired wrongly: %v", got)
	}
}

func TestPurePcreRule(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (pcre:"/evil[0-9]+/"; sid:4;)`))
	if got := ids.Inspect([]byte("contains evil42 here")).RuleSIDs; len(got) != 1 {
		t.Fatalf("pure pcre missed: %v", got)
	}
}

func TestScannerCountsHits(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"hit"; sid:1;)`))
	sc := ids.NewScanner()
	sc.Scan([]byte("hit and h"))
	sc.Scan([]byte("it across chunks"))
	if sc.Hits != 2 {
		t.Fatalf("Hits = %d, want 2", sc.Hits)
	}
}

func TestManyRules(t *testing.T) {
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, strings.ReplaceAll(
			`alert tcp any any -> any any (content:"kwNNN-attack"; sid:NNN;)`,
			"NNN", itoa(i)))
	}
	ids := New(mustParse(t, lines...))
	res := ids.Inspect([]byte("padding kw137-attack padding"))
	if len(res.RuleSIDs) != 1 || res.RuleSIDs[0] != 137 {
		t.Fatalf("RuleSIDs = %v", res.RuleSIDs)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestPipelineDetectsAcrossPackets(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"SplitKeyWord"; sid:1;)`))
	pipe := ids.NewPipeline()
	var header [40]byte
	// The keyword straddles two packets of one flow; the per-flow scanner
	// must carry state across.
	a := []byte("leading data SplitKey")
	b := []byte("Word trailing data")
	pipe.ProcessPacket(header, 1, a)
	pipe.ProcessPacket(header, 1, b)
	if pipe.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", pipe.Hits)
	}
	if pipe.Flows() != 1 {
		t.Fatalf("Flows = %d", pipe.Flows())
	}
}

func TestPipelineCaseInsensitive(t *testing.T) {
	// Snort's multi-pattern matcher is case-insensitive.
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"EvilWord"; sid:1;)`))
	pipe := ids.NewPipeline()
	var header [40]byte
	pipe.ProcessPacket(header, 7, []byte("payload with EVILWORD shouting"))
	if pipe.Hits != 1 {
		t.Fatalf("case-folded hit missed: %d", pipe.Hits)
	}
}

func TestPipelineSeparateFlows(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"crossflow"; sid:1;)`))
	pipe := ids.NewPipeline()
	var header [40]byte
	// Halves on different flows must NOT match.
	pipe.ProcessPacket(header, 1, []byte("cross"))
	pipe.ProcessPacket(header, 2, []byte("flow"))
	if pipe.Hits != 0 {
		t.Fatalf("keyword matched across distinct flows: %d", pipe.Hits)
	}
	if pipe.Flows() != 2 {
		t.Fatalf("Flows = %d", pipe.Flows())
	}
}

func TestPipelineRuleEvalCounts(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"needle"; offset:100; sid:1;)`))
	pipe := ids.NewPipeline()
	var header [40]byte
	pipe.ProcessPacket(header, 3, []byte("needle at offset zero"))
	if pipe.RuleEvals != 1 {
		t.Fatalf("RuleEvals = %d", pipe.RuleEvals)
	}
}

func TestPipelineLargePayloadGrowsFoldBuf(t *testing.T) {
	ids := New(mustParse(t, `alert tcp any any -> any any (content:"bigbuf"; sid:1;)`))
	pipe := ids.NewPipeline()
	var header [40]byte
	big := append(bytes.Repeat([]byte{'x'}, 8000), []byte("BIGBUF")...)
	pipe.ProcessPacket(header, 1, big)
	if pipe.Hits != 1 {
		t.Fatalf("oversized packet missed: %d", pipe.Hits)
	}
}
