// PacketPipeline models how an inline Snort-like IDS actually processes
// traffic, rather than a bare multi-pattern scan: per-packet header decode,
// flow-table lookup, a case-folded payload copy (Snort's multi-pattern
// matcher is case-insensitive), the Aho–Corasick scan, and rule-option
// evaluation on every pattern hit.
//
// Even so, this baseline omits Snort's preprocessors, reassembly and event
// subsystem, so its absolute throughput exceeds real Snort deployments
// (the paper measures 85 Mbps); EXPERIMENTS.md discusses the comparison.

package baseline

import (
	"encoding/binary"

	"repro/internal/ahocorasick"
	"repro/internal/obs"
)

// PacketSize is the MTU-sized packet unit of the pipeline.
const PacketSize = 1500

// flowState is per-flow scanning state, carrying matches across packets.
type flowState struct {
	scanner *ahocorasick.Scanner
	hits    int
}

// PacketPipeline is a reusable per-packet inspection engine.
type PacketPipeline struct {
	ids      *IDS
	acFolded *ahocorasick.Automaton
	flows    map[uint64]*flowState
	foldBuf  []byte
	// Hits counts pattern hits; RuleEvals counts per-hit option checks.
	Hits      int
	RuleEvals int

	// packetsC/hitsC are nil until Instrument; uninstrumented pipelines pay
	// only a nil check per packet.
	packetsC *obs.Counter
	hitsC    *obs.Counter
}

// Instrument registers the pipeline's packet and hit counters in r (see
// obs.BaselinePacketsTotal, obs.BaselineHitsTotal). A nil registry leaves
// the pipeline uninstrumented.
func (p *PacketPipeline) Instrument(r *obs.Registry) {
	p.packetsC = r.Counter(obs.BaselinePacketsTotal, obs.Help(obs.BaselinePacketsTotal))
	p.hitsC = r.Counter(obs.BaselineHitsTotal, obs.Help(obs.BaselineHitsTotal))
}

// NewPipeline compiles the case-folded automaton and empty flow table.
func (ids *IDS) NewPipeline() *PacketPipeline {
	var patterns [][]byte
	for _, ref := range ids.patRefs {
		p := ids.rs.Rules[ref.rule].Contents[ref.content].Pattern
		patterns = append(patterns, foldBytes(p))
	}
	return &PacketPipeline{
		ids:      ids,
		acFolded: ahocorasick.New(patterns),
		flows:    make(map[uint64]*flowState),
		foldBuf:  make([]byte, PacketSize),
	}
}

// ProcessPacket inspects one packet of a flow: header decode, flow lookup,
// case-folded scan, and rule-option evaluation per hit.
func (p *PacketPipeline) ProcessPacket(header [40]byte, flowID uint64, payload []byte) {
	p.packetsC.Inc()
	// Decode: read the fields an IDS consults (addresses, ports, flags).
	_ = binary.BigEndian.Uint32(header[12:]) // src
	_ = binary.BigEndian.Uint32(header[16:]) // dst
	_ = binary.BigEndian.Uint16(header[20:]) // sport
	_ = binary.BigEndian.Uint16(header[22:]) // dport

	fs := p.flows[flowID]
	if fs == nil {
		fs = &flowState{scanner: p.acFolded.NewScanner()}
		p.flows[flowID] = fs
	}
	if len(payload) > len(p.foldBuf) {
		p.foldBuf = make([]byte, len(payload))
	}
	buf := p.foldBuf[:len(payload)]
	for i, b := range payload {
		buf[i] = foldByte(b)
	}
	for _, m := range fs.scanner.Scan(buf) {
		p.Hits++
		p.hitsC.Inc()
		fs.hits++
		// Rule-option evaluation: check the hit content's positional
		// constraints against the match offset, as Snort's detection
		// engine does per fast-pattern hit.
		ref := p.ids.patRefs[m.Pattern]
		c := &p.ids.rs.Rules[ref.rule].Contents[ref.content]
		start := m.End - len(c.Pattern)
		p.RuleEvals++
		if start < c.Offset {
			continue
		}
		if c.Depth >= 0 && start+len(c.Pattern) > c.Offset+c.Depth {
			continue
		}
	}
}

// Flows returns the number of tracked flows.
func (p *PacketPipeline) Flows() int { return len(p.flows) }

func foldByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

func foldBytes(p []byte) []byte {
	out := make([]byte, len(p))
	for i, b := range p {
		out[i] = foldByte(b)
	}
	return out
}
