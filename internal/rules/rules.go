// Package rules implements the BlindBox rule model: a parser for a
// Snort-compatible subset of the rule language, classification of rules
// into the three BlindBox protocols (Table 1 of the paper), compilation of
// rule keywords into the token fragments the middlebox searches for, and
// the rule-generator (RG) role that signs rulesets and issues the
// authorization tags consumed by obfuscated rule encryption (§3.3).
package rules

import (
	"crypto/ed25519"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// Action is what the middlebox does when a rule matches.
type Action int

const (
	// Alert notifies an administrator but lets traffic pass.
	Alert Action = iota
	// Block drops the connection.
	Block
)

// String names the rule action for logs and experiment output.
func (a Action) String() string {
	if a == Block {
		return "block"
	}
	return "alert"
}

// Content is one exact-match pattern within a rule, with the Snort position
// modifiers BlindBox Protocol II supports (§4).
type Content struct {
	// Pattern is the decoded keyword bytes (|xx| hex escapes resolved).
	Pattern []byte
	// Offset is the earliest payload offset at which the pattern may begin
	// (Snort `offset`); 0 if unconstrained.
	Offset int
	// Depth bounds how far into the payload the pattern may begin
	// (Snort `depth`, counted from Offset); -1 if unconstrained.
	Depth int
	// Distance is the minimum gap from the end of the previous content
	// match (Snort `distance`); -1 if unconstrained.
	Distance int
	// Within bounds the gap from the end of the previous content match
	// (Snort `within`); -1 if unconstrained.
	Within int
	// Nocase records the Snort `nocase` modifier. BlindBox exact-match
	// detection is case-sensitive; the flag is parsed and surfaced so
	// callers can count affected rules, and matching proceeds
	// case-sensitively (a documented approximation).
	Nocase bool
}

// Rule is one parsed IDS rule.
type Rule struct {
	// SID is the rule's signature ID (Snort `sid`), unique in a ruleset.
	SID int
	// Action is the response on match.
	Action Action
	// Msg is the human-readable description (Snort `msg`).
	Msg string
	// Contents are the exact-match keywords, in rule order.
	Contents []Content
	// Pcre holds the Snort `pcre` pattern (without delimiters) if the rule
	// has one; such rules require Protocol III.
	Pcre string
	// pcreRe is the compiled regular expression, if Pcre is non-empty and
	// compilable.
	pcreRe *regexp.Regexp
	// Raw is the original rule text.
	Raw string
}

// Protocol classifies which BlindBox protocol a rule needs (Table 1):
// Protocol I handles a single keyword matched at any offset, Protocol II
// handles multiple keywords with offset information, and Protocol III
// (probable cause) handles everything including pcre.
func (r *Rule) Protocol() int {
	if r.Pcre != "" {
		return 3
	}
	if len(r.Contents) == 1 && unpositioned(r.Contents[0]) {
		return 1
	}
	if len(r.Contents) >= 1 {
		return 2
	}
	return 3 // no exact-match content at all: needs full inspection
}

func unpositioned(c Content) bool {
	return c.Offset == 0 && c.Depth < 0 && c.Distance < 0 && c.Within < 0
}

// Regexp returns the rule's compiled pcre, or nil.
func (r *Rule) Regexp() *regexp.Regexp { return r.pcreRe }

// Ruleset is an ordered collection of rules with RG provenance.
type Ruleset struct {
	Name  string
	Rules []*Rule
}

// ProtocolBreakdown returns, for each protocol p in {1,2,3}, the fraction
// of rules supported by protocol p or lower — the quantity Table 1 reports.
// (Protocol II supports everything Protocol I does, and III everything.)
func (rs *Ruleset) ProtocolBreakdown() (p1, p2, p3 float64) {
	if len(rs.Rules) == 0 {
		return 0, 0, 0
	}
	var c1, c2 int
	for _, r := range rs.Rules {
		switch r.Protocol() {
		case 1:
			c1++
			c2++
		case 2:
			c2++
		}
	}
	n := float64(len(rs.Rules))
	return float64(c1) / n, float64(c2) / n, 1.0
}

// Keywords returns every distinct content pattern in the ruleset, in first
// appearance order. Rule preparation cost is linear in this count (§3.3).
func (rs *Ruleset) Keywords() [][]byte {
	seen := make(map[string]bool)
	var out [][]byte
	for _, r := range rs.Rules {
		for _, c := range r.Contents {
			if !seen[string(c.Pattern)] {
				seen[string(c.Pattern)] = true
				out = append(out, c.Pattern)
			}
		}
	}
	return out
}

// Fragments returns every distinct TokenSize fragment the middlebox must be
// able to match for the given tokenization mode, across all keywords.
func (rs *Ruleset) Fragments(mode tokenize.Mode) [][tokenize.TokenSize]byte {
	seen := make(map[[tokenize.TokenSize]byte]bool)
	var out [][tokenize.TokenSize]byte
	for _, kw := range rs.Keywords() {
		frags, _ := tokenize.SplitKeyword(mode, kw)
		for _, f := range frags {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Parsing

// Parse parses a ruleset in the Snort-compatible subset: one rule per line,
// '#' comments and blank lines ignored.
func Parse(name, text string) (*Ruleset, error) {
	rs := &Ruleset{Name: name}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", i+1, err)
		}
		rs.Rules = append(rs.Rules, r)
	}
	return rs, nil
}

// ParseRule parses a single rule line such as
//
//	alert tcp $EXTERNAL_NET $HTTP_PORTS -> $HOME_NET 1025:5000 (
//	    msg:"nginx probe"; content:"Server|3a| nginx/0."; offset:17; depth:19;
//	    content:"Content-Type|3a| text/html"; sid:2003296;)
//
// The header (action, protocol, addresses, ports, direction) is validated
// for shape; BlindBox operates on HTTP payloads so address/port constraints
// are parsed but not evaluated (almost all rules in the paper's datasets
// are HTTP application-layer rules, §2.3).
func ParseRule(line string) (*Rule, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(line), ")") {
		return nil, fmt.Errorf("missing option block in %q", line)
	}
	header := strings.Fields(line[:open])
	if len(header) != 7 {
		return nil, fmt.Errorf("header must have 7 fields (action proto src sport dir dst dport), got %d", len(header))
	}
	r := &Rule{Raw: line}
	switch header[0] {
	case "alert":
		r.Action = Alert
	case "drop", "block", "reject":
		r.Action = Block
	default:
		return nil, fmt.Errorf("unknown action %q", header[0])
	}
	if dir := header[4]; dir != "->" && dir != "<>" {
		return nil, fmt.Errorf("bad direction %q", dir)
	}

	body := strings.TrimSpace(line[open+1:])
	body = strings.TrimSuffix(body, ")")
	opts, err := splitOptions(body)
	if err != nil {
		return nil, err
	}
	var cur *Content
	flushContent := func() {
		if cur != nil {
			r.Contents = append(r.Contents, *cur)
			cur = nil
		}
	}
	for _, opt := range opts {
		key, val, _ := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "content":
			flushContent()
			pat, err := decodePattern(unquote(val))
			if err != nil {
				return nil, err
			}
			cur = &Content{Pattern: pat, Depth: -1, Distance: -1, Within: -1}
		case "offset", "depth", "distance", "within":
			if cur == nil {
				return nil, fmt.Errorf("%s before any content", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "offset":
				cur.Offset = n
			case "depth":
				cur.Depth = n
			case "distance":
				cur.Distance = n
			case "within":
				cur.Within = n
			}
		case "nocase":
			if cur == nil {
				return nil, fmt.Errorf("nocase before any content")
			}
			cur.Nocase = true
		case "pcre":
			pat, err := stripPcreDelims(unquote(val))
			if err != nil {
				return nil, err
			}
			r.Pcre = pat
			r.pcreRe, err = regexp.Compile(pat)
			if err != nil {
				// Snort PCRE features outside RE2 (backrefs, lookaround)
				// still classify the rule as Protocol III; the secondary
				// inspection falls back to substring evaluation of the
				// rule's contents.
				r.pcreRe = nil
			}
		case "msg":
			r.Msg = unquote(val)
		case "sid":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad sid %q", val)
			}
			r.SID = n
		case "flow", "classtype", "rev", "reference", "metadata", "http_uri",
			"http_header", "http_method", "fast_pattern", "threshold", "gid":
			// Parsed-and-ignored modifiers: they gate when a rule applies,
			// not what BlindBox must match.
		case "":
			// trailing semicolon
		default:
			return nil, fmt.Errorf("unsupported option %q", key)
		}
	}
	flushContent()
	if len(r.Contents) == 0 && r.Pcre == "" {
		return nil, fmt.Errorf("rule has neither content nor pcre")
	}
	return r, nil
}

// splitOptions splits "a:1; b:\"x;y\"; c" on semicolons outside quotes.
func splitOptions(body string) ([]string, error) {
	var (
		out      []string
		start    int
		inQuote  bool
		escaped  bool
		finished = func(end int) {
			s := strings.TrimSpace(body[start:end])
			if s != "" {
				out = append(out, s)
			}
			start = end + 1
		}
	)
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ';' && !inQuote:
			finished(i)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in options")
	}
	finished(len(body))
	return out, nil
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	return s
}

// decodePattern resolves Snort |xx yy| hex escapes: `Server|3a| nginx`
// becomes "Server: nginx".
func decodePattern(s string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(s); {
		if s[i] != '|' {
			if s[i] == '\\' && i+1 < len(s) {
				i++ // \" and \; and \\ escapes
			}
			out = append(out, s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i+1:], '|')
		if end < 0 {
			return nil, fmt.Errorf("unterminated hex escape in %q", s)
		}
		hexPart := strings.ReplaceAll(s[i+1:i+1+end], " ", "")
		if len(hexPart)%2 != 0 {
			return nil, fmt.Errorf("odd hex escape in %q", s)
		}
		for j := 0; j < len(hexPart); j += 2 {
			b, err := strconv.ParseUint(hexPart[j:j+2], 16, 8)
			if err != nil {
				return nil, fmt.Errorf("bad hex escape in %q: %v", s, err)
			}
			out = append(out, byte(b))
		}
		i += end + 2
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty content pattern")
	}
	return out, nil
}

// stripPcreDelims turns Snort's "/regex/flags" form into a Go regexp
// pattern, translating the i, s and m flags.
func stripPcreDelims(s string) (string, error) {
	if len(s) < 2 || s[0] != '/' {
		return "", fmt.Errorf("pcre %q must be /…/flags", s)
	}
	end := strings.LastIndexByte(s, '/')
	if end == 0 {
		return "", fmt.Errorf("pcre %q missing closing slash", s)
	}
	pat, flags := s[1:end], s[end+1:]
	var goFlags strings.Builder
	for _, f := range flags {
		switch f {
		case 'i', 's', 'm':
			goFlags.WriteRune(f)
		case 'U', 'R', 'B', 'P', 'H', 'D', 'M', 'C', 'K', 'S', 'Y', 'O', 'x', 'A', 'E', 'G':
			// Snort-specific or rarely-relevant flags: ignored.
		default:
			return "", fmt.Errorf("unknown pcre flag %q", f)
		}
	}
	if goFlags.Len() > 0 {
		pat = "(?" + goFlags.String() + ")" + pat
	}
	return pat, nil
}

// ---------------------------------------------------------------------------
// Rule generator (RG)

// Generator is the rule-generator role: it owns an Ed25519 signing key for
// ruleset provenance and the symmetric tag key used inside the garbled
// circuit to verify that a keyword fragment was authorized by RG (§3.3 and
// DESIGN.md substitution #3).
type Generator struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	// tagKey is the AES-MAC key embedded in the obfuscated-rule-encryption
	// circuit. Endpoints receive it in the RG configuration they install
	// (they trust RG, §2.1); the middlebox never learns it.
	tagKey bbcrypto.Block
}

// NewGenerator creates an RG with fresh keys.
func NewGenerator(name string) (*Generator, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	return &Generator{Name: name, priv: priv, pub: pub, tagKey: bbcrypto.RandomBlock()}, nil
}

// PublicKey returns RG's Ed25519 public key, installed at endpoints.
func (g *Generator) PublicKey() ed25519.PublicKey { return g.pub }

// TagKey returns the circuit MAC key, part of the endpoint configuration.
func (g *Generator) TagKey() bbcrypto.Block { return g.tagKey }

// SignedRuleset is what RG ships to its middlebox customer: the ruleset,
// a signature binding it to RG, and one authorization tag per fragment that
// the middlebox presents to the garbled circuit during rule preparation.
type SignedRuleset struct {
	Ruleset   *Ruleset
	Signature []byte
	// Tags maps each padded keyword fragment block to AES_{tagKey}(block).
	Tags map[bbcrypto.Block]bbcrypto.Block
}

// Sign signs rs and issues fragment tags for both tokenization modes.
func (g *Generator) Sign(rs *Ruleset) *SignedRuleset {
	sr := &SignedRuleset{
		Ruleset: rs,
		Tags:    make(map[bbcrypto.Block]bbcrypto.Block),
	}
	var digest []byte
	for _, r := range rs.Rules {
		digest = append(digest, r.Raw...)
		digest = append(digest, '\n')
	}
	sr.Signature = ed25519.Sign(g.priv, digest)
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		for _, f := range rs.Fragments(mode) {
			blk := FragmentBlock(f)
			if _, ok := sr.Tags[blk]; !ok {
				sr.Tags[blk] = bbcrypto.MAC(g.tagKey, blk)
			}
		}
	}
	return sr
}

// Verify checks a signed ruleset against RG's public key; endpoints call
// this with the pinned key from their BlindBox HTTPS configuration before
// taking part in rule preparation.
func Verify(pub ed25519.PublicKey, sr *SignedRuleset) bool {
	var digest []byte
	for _, r := range sr.Ruleset.Rules {
		digest = append(digest, r.Raw...)
		digest = append(digest, '\n')
	}
	return ed25519.Verify(pub, digest, sr.Signature)
}

// FragmentBlock right-pads an 8-byte token fragment into the 16-byte AES
// block form used by DPIEnc token keys, circuit inputs and MAC tags.
func FragmentBlock(f [tokenize.TokenSize]byte) bbcrypto.Block {
	var b bbcrypto.Block
	copy(b[:], f[:])
	return b
}
