package rules

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

const nginxRule = `alert tcp $EXTERNAL_NET $HTTP_PORTS -> $HOME_NET 1025:5000 (msg:"ET nginx probe"; flow: established,from_server; content:"Server|3a| nginx/0."; offset:17; depth:19; content:"Content-Type|3a| text/html"; content:"|3a|80|3b|255.255.255.255"; sid:2003296;)`

func TestParsePaperExampleRule(t *testing.T) {
	r, err := ParseRule(nginxRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.SID != 2003296 {
		t.Fatalf("sid = %d", r.SID)
	}
	if r.Action != Alert {
		t.Fatalf("action = %v", r.Action)
	}
	if len(r.Contents) != 3 {
		t.Fatalf("got %d contents, want 3", len(r.Contents))
	}
	if got := string(r.Contents[0].Pattern); got != "Server: nginx/0." {
		t.Fatalf("content 0 = %q", got)
	}
	if r.Contents[0].Offset != 17 || r.Contents[0].Depth != 19 {
		t.Fatalf("offset/depth = %d/%d", r.Contents[0].Offset, r.Contents[0].Depth)
	}
	if got := string(r.Contents[1].Pattern); got != "Content-Type: text/html" {
		t.Fatalf("content 1 = %q", got)
	}
	if got := string(r.Contents[2].Pattern); got != ":80;255.255.255.255" {
		t.Fatalf("content 2 = %q", got)
	}
	if r.Protocol() != 2 {
		t.Fatalf("protocol = %d, want 2", r.Protocol())
	}
}

func TestProtocolClassification(t *testing.T) {
	cases := []struct {
		rule string
		want int
	}{
		{`alert tcp any any -> any any (msg:"watermark"; content:"CONF-DOC-MARK-0042"; sid:1;)`, 1},
		{`alert tcp any any -> any any (msg:"two kw"; content:"abc"; content:"def"; sid:2;)`, 2},
		{`alert tcp any any -> any any (msg:"positioned"; content:"abc"; offset:4; sid:3;)`, 2},
		{`alert tcp any any -> any any (msg:"regex"; content:"abc"; pcre:"/ab+c/i"; sid:4;)`, 3},
		{`alert tcp any any -> any any (msg:"pure regex"; pcre:"/evil[0-9]+/"; sid:5;)`, 3},
	}
	for _, c := range cases {
		r, err := ParseRule(c.rule)
		if err != nil {
			t.Fatalf("%q: %v", c.rule, err)
		}
		if got := r.Protocol(); got != c.want {
			t.Errorf("%q: protocol %d, want %d", c.rule, got, c.want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		``,
		`alert tcp any any -> any any`, // no options
		`alert tcp any -> any any (content:"x"; sid:1;)`,              // short header
		`frobnicate tcp any any -> any any (content:"x"; sid:1;)`,     // bad action
		`alert tcp any any >> any any (content:"x"; sid:1;)`,          // bad direction
		`alert tcp any any -> any any (content:"x|zz|"; sid:1;)`,      // bad hex
		`alert tcp any any -> any any (content:"x|3|"; sid:1;)`,       // odd hex
		`alert tcp any any -> any any (offset:3; sid:1;)`,             // offset before content
		`alert tcp any any -> any any (msg:"no match stuff"; sid:1;)`, // no content/pcre
		`alert tcp any any -> any any (content:"x"; offset:y; sid:1;)`,
		`alert tcp any any -> any any (wibble:"x"; sid:1;)`,
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("%q: expected parse error", line)
		}
	}
}

func TestParseQuotedSemicolonAndEscapes(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> any any (msg:"semi;colon"; content:"a\"b;c"; sid:9;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Msg != "semi;colon" {
		t.Fatalf("msg = %q", r.Msg)
	}
	if got := string(r.Contents[0].Pattern); got != `a"b;c` {
		t.Fatalf("content = %q", got)
	}
}

func TestParseNocase(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> any any (content:"Evil"; nocase; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contents[0].Nocase {
		t.Fatal("nocase not recorded")
	}
}

func TestPcreTranslation(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> any any (content:"cmd"; pcre:"/cmd=[a-z]{4,}/i"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	re := r.Regexp()
	if re == nil {
		t.Fatal("pcre did not compile")
	}
	if !re.MatchString("CMD=evilcommand") {
		t.Fatal("case-insensitive flag lost")
	}
	if re.MatchString("cmd=ab") {
		t.Fatal("quantifier lost")
	}
}

func TestPcreUnsupportedStillProtocolIII(t *testing.T) {
	// Backreferences are outside RE2: the rule must still parse and
	// classify as Protocol III, with a nil compiled regexp.
	r, err := ParseRule(`alert tcp any any -> any any (content:"x"; pcre:"/(a)\1/"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Protocol() != 3 {
		t.Fatalf("protocol = %d", r.Protocol())
	}
	if r.Regexp() != nil {
		t.Fatal("backreference pattern should not compile under RE2")
	}
}

func TestParseRulesetSkipsCommentsAndBlanks(t *testing.T) {
	text := "# a comment\n\n" + nginxRule + "\n  \n" +
		`alert tcp any any -> any any (content:"watermark"; sid:7;)` + "\n"
	rs, err := Parse("test", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 2 {
		t.Fatalf("got %d rules", len(rs.Rules))
	}
}

func TestProtocolBreakdown(t *testing.T) {
	text := strings.Join([]string{
		`alert tcp any any -> any any (content:"onlyone1"; sid:1;)`,
		`alert tcp any any -> any any (content:"multi"; content:"kw"; sid:2;)`,
		`alert tcp any any -> any any (content:"re"; pcre:"/x+/"; sid:3;)`,
		`alert tcp any any -> any any (content:"another1"; sid:4;)`,
	}, "\n")
	rs, err := Parse("test", text)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, p3 := rs.ProtocolBreakdown()
	if p1 != 0.5 || p2 != 0.75 || p3 != 1.0 {
		t.Fatalf("breakdown = %v/%v/%v", p1, p2, p3)
	}
}

func TestKeywordsDeduplicated(t *testing.T) {
	text := strings.Join([]string{
		`alert tcp any any -> any any (content:"dupkw"; sid:1;)`,
		`alert tcp any any -> any any (content:"dupkw"; content:"other"; sid:2;)`,
	}, "\n")
	rs, err := Parse("test", text)
	if err != nil {
		t.Fatal(err)
	}
	kws := rs.Keywords()
	if len(kws) != 2 {
		t.Fatalf("got %d keywords, want 2", len(kws))
	}
	if !bytes.Equal(kws[0], []byte("dupkw")) {
		t.Fatalf("keyword order not preserved: %q", kws[0])
	}
}

func TestFragments(t *testing.T) {
	rs, err := Parse("test", `alert tcp any any -> any any (content:"maliciously"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	wf := rs.Fragments(tokenize.Window)
	if len(wf) != 2 {
		t.Fatalf("window fragments = %d, want 2", len(wf))
	}
	df := rs.Fragments(tokenize.Delimiter)
	if len(df) != 1 || string(df[0][:]) != "maliciou" {
		t.Fatalf("delimiter fragments = %q", df)
	}
}

func TestGeneratorSignAndVerify(t *testing.T) {
	g, err := NewGenerator("TestRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Parse("test", nginxRule)
	if err != nil {
		t.Fatal(err)
	}
	sr := g.Sign(rs)
	if !Verify(g.PublicKey(), sr) {
		t.Fatal("signature did not verify")
	}
	// Tamper: add a rule RG never signed.
	extra, _ := ParseRule(`alert tcp any any -> any any (content:"injected"; sid:999;)`)
	sr.Ruleset.Rules = append(sr.Ruleset.Rules, extra)
	if Verify(g.PublicKey(), sr) {
		t.Fatal("tampered ruleset verified")
	}
}

func TestGeneratorTagsCoverAllFragments(t *testing.T) {
	g, err := NewGenerator("TestRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Parse("test", nginxRule+"\n"+
		`alert tcp any any -> any any (content:"login"; sid:11;)`)
	if err != nil {
		t.Fatal(err)
	}
	sr := g.Sign(rs)
	for _, mode := range []tokenize.Mode{tokenize.Window, tokenize.Delimiter} {
		for _, f := range rs.Fragments(mode) {
			tag, ok := sr.Tags[FragmentBlock(f)]
			if !ok {
				t.Fatalf("mode %v: fragment %q has no tag", mode, f)
			}
			// The tag must be the AES-MAC under RG's tag key.
			if tag != bbcrypto.MAC(g.TagKey(), FragmentBlock(f)) {
				t.Fatalf("mode %v: wrong tag for %q", mode, f)
			}
		}
	}
}
