package rules

import (
	"strings"
	"testing"
)

// FuzzParseRule checks the rule parser never panics and that accepted
// rules re-parse to the same structure (parse is a projection).
func FuzzParseRule(f *testing.F) {
	f.Add(`alert tcp any any -> any any (content:"abc"; sid:1;)`)
	f.Add(`alert tcp $EXTERNAL_NET $HTTP_PORTS -> $HOME_NET 1025:5000 (msg:"x"; content:"Server|3a| nginx/0."; offset:17; depth:19; sid:2;)`)
	f.Add(`drop tcp any any -> any any (content:"a\"b;c"; pcre:"/x+/i"; nocase; sid:3;)`)
	f.Add(`alert tcp any any -> any any (pcre:"/(a)\1/"; sid:4;)`)
	f.Add(`alert tcp any any -> any any (content:"|00 ff 80|"; within:5; distance:1; sid:5;)`)
	f.Add(`alert tcp any any (content:"broken)`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRule(line)
		if err != nil {
			return
		}
		// Accepted rules must re-parse from their recorded raw form.
		again, err := ParseRule(r.Raw)
		if err != nil {
			t.Fatalf("accepted rule failed to re-parse: %v", err)
		}
		if again.SID != r.SID || len(again.Contents) != len(r.Contents) || again.Pcre != r.Pcre {
			t.Fatalf("re-parse diverged: %+v vs %+v", again, r)
		}
		if r.Protocol() < 1 || r.Protocol() > 3 {
			t.Fatalf("protocol out of range: %d", r.Protocol())
		}
	})
}

// FuzzParse checks whole-ruleset parsing on arbitrary text.
func FuzzParse(f *testing.F) {
	f.Add("# comment\n\nalert tcp any any -> any any (content:\"x\"; sid:1;)\n")
	f.Add(strings.Repeat(`alert tcp any any -> any any (content:"y"; sid:2;)`+"\n", 3))
	f.Fuzz(func(t *testing.T, text string) {
		rs, err := Parse("fuzz", text)
		if err != nil {
			return
		}
		// Accepted rulesets support the derived operations without panics.
		rs.ProtocolBreakdown()
		rs.Keywords()
	})
}
