package corpus

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

func TestSynthesizeTextProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := SynthesizeText(rng, 50<<10)
	if len(text) != 50<<10 {
		t.Fatalf("length = %d", len(text))
	}
	delims := 0
	for _, b := range text {
		if tokenize.IsDelimiter(b) {
			delims++
		}
	}
	frac := float64(delims) / float64(len(text))
	if frac < 0.10 || frac > 0.40 {
		t.Fatalf("delimiter density %.2f outside web-typical range", frac)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := SynthesizeText(rand.New(rand.NewSource(5)), 1024)
	b := SynthesizeText(rand.New(rand.NewSource(5)), 1024)
	if string(a) != string(b) {
		t.Fatal("same seed produced different text")
	}
}

func TestSiteProfilesGenerate(t *testing.T) {
	for _, sp := range Sites {
		page := sp.Generate(42)
		st := page.Stats()
		if st.TotalBytes < sp.TotalBytes*9/10 || st.TotalBytes > sp.TotalBytes*11/10+4096 {
			t.Errorf("%s: total %d, want ~%d", sp.Name, st.TotalBytes, sp.TotalBytes)
		}
		gotFrac := float64(st.TextBytes) / float64(st.TotalBytes)
		if math.Abs(gotFrac-sp.TextFraction) > 0.10 {
			t.Errorf("%s: text fraction %.2f, want ~%.2f", sp.Name, gotFrac, sp.TextFraction)
		}
		if len(page.Resources) == 0 || page.Resources[0].ContentType != "text/html" {
			t.Errorf("%s: missing primary document", sp.Name)
		}
	}
}

func TestTop50Shape(t *testing.T) {
	pages := Top50(7)
	if len(pages) != 50 {
		t.Fatalf("got %d pages", len(pages))
	}
	lowText, highText := 0, 0
	for _, p := range pages {
		st := p.Stats()
		frac := float64(st.TextBytes) / float64(st.TotalBytes)
		if frac < 0.15 {
			lowText++
		}
		if frac > 0.85 {
			highText++
		}
	}
	if lowText == 0 || highText == 0 {
		t.Fatalf("top-50 lacks extremes: %d video-like, %d text-like", lowText, highText)
	}
}

func TestDatasetRulesetsMatchTable1Fractions(t *testing.T) {
	for _, spec := range Datasets {
		rs, err := spec.Generate(11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(rs.Rules) < spec.NumRules*95/100 {
			t.Fatalf("%s: only %d rules generated", spec.Name, len(rs.Rules))
		}
		p1, p2, p3 := rs.ProtocolBreakdown()
		if math.Abs(p1-spec.P1Frac) > 0.02 {
			t.Errorf("%s: P1 = %.3f, want %.3f", spec.Name, p1, spec.P1Frac)
		}
		if math.Abs(p2-spec.P2Frac) > 0.02 {
			t.Errorf("%s: P2 = %.3f, want %.3f", spec.Name, p2, spec.P2Frac)
		}
		if p3 != 1.0 {
			t.Errorf("%s: P3 = %.3f", spec.Name, p3)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, ok := DatasetByName("Lastline"); !ok {
		t.Fatal("Lastline not found")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Fatal("bogus dataset found")
	}
}

func TestGeneratedKeywordsAreUnique(t *testing.T) {
	spec := Datasets[3] // ET, the largest
	rs, err := spec.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, kw := range rs.Keywords() {
		if seen[string(kw)] {
			t.Fatalf("duplicate keyword %q", kw)
		}
		seen[string(kw)] = true
	}
}

func TestAttackTraceDetectableByBaseline(t *testing.T) {
	spec := RulesetSpec{Name: "trace-test", NumRules: 60, P1Frac: 0.3, P2Frac: 0.8, AvgKeywords: 3}
	rs, err := spec.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTraceConfig()
	cfg.Flows = 40
	cfg.MisalignFraction = 0
	flows := AttackTrace(21, rs, cfg)
	ids := baseline.New(rs)
	detected, injected := 0, 0
	for _, f := range flows {
		injected += len(f.InjectedSIDs)
		res := ids.Inspect(f.Payload)
		detected += len(res.RuleSIDs)
	}
	if injected == 0 {
		t.Fatal("no attacks injected")
	}
	// The plaintext baseline should confirm the majority of injections
	// (some rules carry offset constraints the injector only satisfies by
	// luck; those are excluded from accuracy scoring by construction).
	if float64(detected) < 0.6*float64(injected) {
		t.Fatalf("baseline confirmed %d of %d injections", detected, injected)
	}
}

func TestAttackTraceCleanWithoutAttacks(t *testing.T) {
	spec := RulesetSpec{Name: "clean", NumRules: 40, P1Frac: 1, P2Frac: 1, AvgKeywords: 1}
	rs, err := spec.Generate(13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TraceConfig{Flows: 20, FlowBytes: 4 << 10, AttacksPerFlow: 0}
	flows := AttackTrace(5, rs, cfg)
	ids := baseline.New(rs)
	for i, f := range flows {
		if len(f.InjectedSIDs) != 0 {
			t.Fatalf("flow %d has injections", i)
		}
		if res := ids.Inspect(f.Payload); len(res.RuleSIDs) != 0 {
			t.Fatalf("flow %d: benign payload matched rules %v", i, res.RuleSIDs)
		}
	}
}

func TestGeneratedRulesRoundTripThroughParser(t *testing.T) {
	// Every generated rule must parse and re-classify consistently.
	for _, spec := range Datasets[:3] {
		rs, err := spec.Generate(17)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs.Rules {
			if _, err := rules.ParseRule(r.Raw); err != nil {
				t.Fatalf("%s: generated rule does not reparse: %v", spec.Name, err)
			}
		}
	}
}
