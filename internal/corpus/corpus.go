// Package corpus generates the synthetic datasets that stand in for the
// paper's proprietary or unavailable inputs (DESIGN.md substitutions #4–#6):
//
//   - site profiles modeling the five Fig. 3/4 pages (YouTube, AirBnB,
//     CNN, NYTimes, Project Gutenberg) and an Alexa-top-50-like page set
//     for Figs. 5 and 6, with realistic text/binary ratios and delimiter
//     densities;
//
//   - rulesets whose protocol-class mix matches each Table 1 dataset
//     (document watermarking, parental filtering, Snort Community, Snort
//     Emerging Threats, McAfee Stonesoft, Lastline);
//
//   - an ICTF-like attack trace: benign HTTP flows with rule keywords
//     injected, including a controlled fraction of boundary-misaligned
//     injections that delimiter tokenization legitimately misses (§7.1).
//
// All generation is deterministic given a seed.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/httpsim"
)

// words is a vocabulary for synthetic text/code; mixing identifiers, HTML
// and prose approximates web-page delimiter density.
var words = strings.Fields(`
the quick brown fox jumps over lazy dog while reading network protocol
middlebox inspection encrypted traffic tokens payload keyword detection
div span class style script function return const var document window
content article section header footer title index login user password
query search result page home about contact profile settings account
video image media player stream render layout margin padding border
`)

var attrs = []string{"id", "class", "href", "src", "style", "data-v", "lang", "rel"}

// TextOption post-processes a synthesized payload in place. Options let
// callers pin content at exact offsets instead of deriving placement from
// rng draws, which keeps ground-truth bookkeeping exact (the evasion
// corpora depend on knowing precisely where a rule hit sits).
type TextOption func(payload []byte)

// WithHit pins a rule-hit placement: the payload bytes [at, at+len(data))
// are overwritten with data. Overwriting (rather than splicing) preserves
// the payload length, so every pinned offset — including other WithHit
// placements — stays exact. Placements must lie fully inside the payload.
func WithHit(at int, data []byte) TextOption {
	return func(payload []byte) {
		if at < 0 || at+len(data) > len(payload) {
			//lint:ignore todo-panic an out-of-range pinned placement is a caller programming error in corpus construction, never reachable from wire data
			panic(fmt.Sprintf("corpus: pinned hit [%d:%d) outside payload of %d bytes",
				at, at+len(data), len(payload)))
		}
		copy(payload[at:], data)
	}
}

// SynthesizeTextSeeded is SynthesizeText with a self-contained
// deterministic source, so callers outside the workload packages do not
// need to import math/rand themselves. Options run after synthesis, in
// order; see WithHit for pinning rule-hit placements exactly.
func SynthesizeTextSeeded(seed int64, n int, opts ...TextOption) []byte {
	payload := SynthesizeText(rand.New(rand.NewSource(seed)), n)
	for _, opt := range opts {
		opt(payload)
	}
	return payload
}

// SynthesizeText produces n bytes of HTML/JS-like text with web-typical
// delimiter density.
func SynthesizeText(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.Grow(n + 64)
	for b.Len() < n {
		switch rng.Intn(10) {
		case 0: // tag with attribute
			fmt.Fprintf(&b, "<%s %s=\"%s-%d\">", words[rng.Intn(len(words))],
				attrs[rng.Intn(len(attrs))], words[rng.Intn(len(words))], rng.Intn(1000))
		case 1: // URL-ish
			fmt.Fprintf(&b, " /%s/%s.html?%s=%s&n=%d ", words[rng.Intn(len(words))],
				words[rng.Intn(len(words))], words[rng.Intn(len(words))],
				words[rng.Intn(len(words))], rng.Intn(100))
		case 2: // code-ish
			fmt.Fprintf(&b, "var %s=%s(%d);", words[rng.Intn(len(words))],
				words[rng.Intn(len(words))], rng.Intn(10000))
		default: // prose
			b.WriteString(words[rng.Intn(len(words))])
			if rng.Intn(12) == 0 {
				b.WriteString(". ")
			} else {
				b.WriteByte(' ')
			}
		}
	}
	return []byte(b.String())[:n]
}

// SynthesizeBinary produces n bytes of incompressible binary content.
func SynthesizeBinary(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// SiteProfile describes one synthetic site class.
type SiteProfile struct {
	// Name matches the paper's Fig. 3/4 label.
	Name string
	// TotalBytes is the whole-page payload size.
	TotalBytes int
	// TextFraction is the tokenizable share of TotalBytes.
	TextFraction float64
	// Resources is the number of fetched resources.
	Resources int
}

// Sites are the five Fig. 3/4 pages. Sizes and text fractions follow the
// paper's characterization: YouTube and AirBnB are dominated by video and
// images, CNN and NYTimes are mixed, Gutenberg is almost entirely text.
var Sites = []SiteProfile{
	{Name: "YouTube", TotalBytes: 6 << 20, TextFraction: 0.08, Resources: 30},
	{Name: "AirBnB", TotalBytes: 4 << 20, TextFraction: 0.15, Resources: 40},
	{Name: "CNN", TotalBytes: 2 << 20, TextFraction: 0.45, Resources: 60},
	{Name: "NYTimes", TotalBytes: 2500 << 10, TextFraction: 0.40, Resources: 70},
	// Project Gutenberg pages are nearly pure text and large (whole
	// books); this is the page class where BlindBox pays the most, both
	// in bandwidth (every byte is tokenized) and in CPU (Fig. 4).
	{Name: "Gutenberg", TotalBytes: 8 << 20, TextFraction: 0.97, Resources: 4},
}

// Generate builds the site's page deterministically from the seed.
func (sp SiteProfile) Generate(seed int64) *httpsim.Page {
	rng := rand.New(rand.NewSource(seed))
	page := &httpsim.Page{Name: sp.Name, Host: strings.ToLower(sp.Name) + ".example"}
	textBudget := int(float64(sp.TotalBytes) * sp.TextFraction)
	binBudget := sp.TotalBytes - textBudget

	// Resource 0 is the primary HTML document (~30% of the text budget).
	primary := textBudget * 3 / 10
	if primary < 1024 {
		primary = textBudget
	}
	page.Resources = append(page.Resources, httpsim.Resource{
		Path:        "/index.html",
		ContentType: "text/html",
		Segments:    []httpsim.Segment{{Data: SynthesizeText(rng, primary)}},
	})
	textBudget -= primary

	rest := sp.Resources - 1
	if rest < 1 {
		rest = 1
	}
	for i := 0; i < rest; i++ {
		last := i == rest-1
		if i%2 == 0 && binBudget > 0 { // binary resource
			sz := binBudget / ((rest+1)/2 - i/2)
			if last {
				sz = binBudget
			}
			if sz <= 0 {
				continue
			}
			binBudget -= sz
			page.Resources = append(page.Resources, httpsim.Resource{
				Path:        fmt.Sprintf("/media/asset%d.bin", i),
				ContentType: "image/jpeg",
				Segments:    []httpsim.Segment{{Binary: true, Data: SynthesizeBinary(rng, sz)}},
			})
		} else if textBudget > 0 { // script/style resource
			sz := textBudget / (rest - i)
			if last {
				sz = textBudget
			}
			if sz <= 0 {
				continue
			}
			textBudget -= sz
			page.Resources = append(page.Resources, httpsim.Resource{
				Path:        fmt.Sprintf("/static/app%d.js", i),
				ContentType: "application/javascript",
				Segments:    []httpsim.Segment{{Data: SynthesizeText(rng, sz)}},
			})
		}
	}
	// Flush any budget the alternation left over, so generated pages hit
	// their size and text-fraction targets.
	if textBudget > 0 {
		page.Resources = append(page.Resources, httpsim.Resource{
			Path:        "/static/tail.js",
			ContentType: "application/javascript",
			Segments:    []httpsim.Segment{{Data: SynthesizeText(rng, textBudget)}},
		})
	}
	if binBudget > 0 {
		page.Resources = append(page.Resources, httpsim.Resource{
			Path:        "/media/tail.bin",
			ContentType: "image/jpeg",
			Segments:    []httpsim.Segment{{Binary: true, Data: SynthesizeBinary(rng, binBudget)}},
		})
	}
	return page
}

// Top50 generates an Alexa-top-50-like page set for the Fig. 5/6
// bandwidth-overhead experiments: a spread of sizes (200 KB–8 MB) and text
// fractions (5%–98%), the two axes the paper identifies as driving token
// overhead.
func Top50(seed int64) []*httpsim.Page {
	rng := rand.New(rand.NewSource(seed))
	pages := make([]*httpsim.Page, 0, 50)
	for i := 0; i < 50; i++ {
		// Text fraction sweeps the range; a few video-dominated and a few
		// text-dominated outliers, most pages mixed.
		var textFrac float64
		switch {
		case i < 6:
			textFrac = 0.04 + 0.02*rng.Float64() // video sites
		case i >= 44:
			textFrac = 0.90 + 0.08*rng.Float64() // text sites
		default:
			textFrac = 0.15 + 0.55*rng.Float64()
		}
		total := 200<<10 + rng.Intn(8<<20-200<<10)
		sp := SiteProfile{
			Name:         fmt.Sprintf("site%02d", i+1),
			TotalBytes:   total,
			TextFraction: textFrac,
			Resources:    5 + rng.Intn(60),
		}
		pages = append(pages, sp.Generate(seed+int64(i)+1))
	}
	return pages
}
