// BitTorrent/P2P scenario pack: a ruleset of peer-to-peer protocol
// signatures (handshake magic, DHT bencode query prefixes, tracker
// announce patterns, extension-protocol identifiers) plus a deterministic
// flow corpus carrying pinned ground truth. P2P detection is a classic DPI
// workload the paper's middlebox model targets; the pack exercises the
// encrypted path on traffic whose structure (binary framing, bencoding,
// URL query strings) differs sharply from the HTML/JS corpus.

package corpus

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/rules"
)

// BitTorrent rule SIDs, exported so scenario harnesses can pin ground
// truth per flow without re-parsing rule text.
const (
	// SIDBTHandshake fires on the BitTorrent wire-protocol handshake magic.
	SIDBTHandshake = 201
	// SIDBTDHTQuery fires on the bencoded DHT query prefix.
	SIDBTDHTQuery = 202
	// SIDBTTrackerAnnounce fires on an HTTP tracker announce request.
	SIDBTTrackerAnnounce = 203
	// SIDBTExtMetadata fires on the ut_metadata extension identifier.
	SIDBTExtMetadata = 204
	// SIDBTTrackerStarted fires on an announce carrying event=started
	// (multi-keyword, Protocol II).
	SIDBTTrackerStarted = 205
)

// BitTorrentRuleText is the P2P signature ruleset in Snort syntax. The
// patterns follow the real protocols: the 0x13-prefixed handshake string
// (BEP 3), the bencoded "d1:ad2:id20:" DHT query prefix (BEP 5), the
// tracker announce GET (BEP 3) and the ut_metadata extension id (BEP 9).
const BitTorrentRuleText = `alert tcp any any -> any any (msg:"P2P BitTorrent handshake"; content:"|13|BitTorrent protocol"; sid:201;)
alert tcp any any -> any any (msg:"P2P DHT query"; content:"d1:ad2:id20:"; sid:202;)
alert tcp any any -> any any (msg:"P2P tracker announce"; content:"GET /announce?info_hash="; sid:203;)
alert tcp any any -> any any (msg:"P2P extension metadata"; content:"ut_metadata"; sid:204;)
alert tcp any any -> any any (msg:"P2P tracker started"; content:"GET /announce"; content:"&event=started"; sid:205;)`

// BitTorrentRules parses the P2P signature ruleset.
func BitTorrentRules() (*rules.Ruleset, error) {
	return rules.Parse("bittorrent", BitTorrentRuleText)
}

// BitTorrentFlow is one flow of the P2P scenario corpus with pinned
// ground truth.
type BitTorrentFlow struct {
	// Name labels the flow's protocol role.
	Name string
	// Payload is the flow's application bytestream.
	Payload []byte
	// MustSIDs lists the rules that must fire on this flow; an empty list
	// means the flow is benign and must produce no rule alert.
	MustSIDs []int
}

// BitTorrentFlows generates the deterministic P2P scenario corpus: one
// flow per protocol role (wire handshake + piece traffic, DHT query,
// tracker announce, extension handshake) plus benign HTTP flows including
// a near-miss announce URL that shares a keyword prefix with the tracker
// rules but must not produce a rule alert.
func BitTorrentFlows(seed int64) []BitTorrentFlow {
	rng := rand.New(rand.NewSource(seed))
	infohash := randBytes(rng, 20)
	peerID := append([]byte("-GO0001-"), randBytes(rng, 12)...)

	var handshake bytes.Buffer
	handshake.WriteByte(0x13)
	handshake.WriteString("BitTorrent protocol")
	handshake.Write(make([]byte, 8)) // reserved
	handshake.Write(infohash)
	handshake.Write(peerID)
	// A few length-prefixed piece messages of incompressible payload.
	for i := 0; i < 3; i++ {
		block := randBytes(rng, 256)
		handshake.Write([]byte{0, 0, byte((len(block) + 9) >> 8), byte(len(block) + 9), 7})
		fmt.Fprintf(&handshake, "%04d%04d", i, i*16384)
		handshake.Write(block)
	}

	var dht bytes.Buffer
	dht.WriteString("d1:ad2:id20:")
	dht.Write(randBytes(rng, 20))
	dht.WriteString("e1:q4:ping1:t2:aa1:y1:qe")

	var tracker bytes.Buffer
	tracker.WriteString("GET /announce?info_hash=")
	for _, b := range infohash {
		fmt.Fprintf(&tracker, "%%%02X", b)
	}
	tracker.WriteString("&peer_id=")
	tracker.Write(peerID[:8])
	fmt.Fprintf(&tracker, "&port=6881&uploaded=0&downloaded=0&left=%d&event=started HTTP/1.1\r\n", 1<<30)
	tracker.WriteString("Host: tracker.example:6969\r\nUser-Agent: Transmission/3.0\r\n\r\n")

	var ext bytes.Buffer
	ext.Write([]byte{0, 0, 0, 0x1a, 20, 0}) // extended-message framing
	ext.WriteString("d1:md11:ut_metadatai1e6:ut_pexi2ee13:metadata_sizei31235ee")

	return []BitTorrentFlow{
		{Name: "wire-handshake", Payload: handshake.Bytes(), MustSIDs: []int{SIDBTHandshake}},
		{Name: "dht-ping", Payload: dht.Bytes(), MustSIDs: []int{SIDBTDHTQuery}},
		{Name: "tracker-announce", Payload: tracker.Bytes(),
			MustSIDs: []int{SIDBTTrackerAnnounce, SIDBTTrackerStarted}},
		{Name: "extension-handshake", Payload: ext.Bytes(), MustSIDs: []int{SIDBTExtMetadata}},
		{Name: "benign-http", Payload: SynthesizeText(rng, 4<<10)},
		// Near miss: shares the "GET /announce" keyword prefix (a keyword
		// match is expected and privacy-permitted) but satisfies no rule.
		{Name: "benign-near-announce",
			Payload: []byte("GET /announce2?x=status HTTP/1.1\r\nHost: web.example\r\n\r\n" +
				string(SynthesizeText(rng, 2<<10)))},
	}
}

// randBytes draws n bytes from the seeded workload rng.
func randBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}
