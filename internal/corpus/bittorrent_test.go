package corpus

import (
	"bytes"
	"testing"

	"repro/internal/baseline"
)

func TestWithHitPinsPlacementExactly(t *testing.T) {
	hit := []byte(" attack01 ")
	p := SynthesizeTextSeeded(7, 4096, WithHit(2048, hit))
	if len(p) != 4096 {
		t.Fatalf("pinned hit changed payload length: %d", len(p))
	}
	if !bytes.Equal(p[2048:2048+len(hit)], hit) {
		t.Fatalf("hit not at pinned offset: %q", p[2040:2070])
	}
	// Without the option the payload is the plain synthesis — the option
	// must be a pure overlay, not a reseed.
	plain := SynthesizeTextSeeded(7, 4096)
	if !bytes.Equal(p[:2048], plain[:2048]) || !bytes.Equal(p[2048+len(hit):], plain[2048+len(hit):]) {
		t.Fatal("WithHit disturbed bytes outside the pinned placement")
	}
}

func TestWithHitMultiplePlacementsStayExact(t *testing.T) {
	a, b := []byte("<first/>"), []byte("<second/>")
	p := SynthesizeTextSeeded(9, 1024, WithHit(100, a), WithHit(500, b))
	if !bytes.Equal(p[100:108], a) || !bytes.Equal(p[500:509], b) {
		t.Fatal("multiple pinned placements drifted")
	}
}

func TestWithHitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pinned placement did not panic")
		}
	}()
	SynthesizeTextSeeded(1, 64, WithHit(60, []byte("toolarge")))
}

func TestBitTorrentFlowsMatchPinnedGroundTruth(t *testing.T) {
	rs, err := BitTorrentRules()
	if err != nil {
		t.Fatalf("BitTorrentRules: %v", err)
	}
	ids := baseline.New(rs)
	for _, f := range BitTorrentFlows(1) {
		got := map[int]bool{}
		for _, sid := range ids.Inspect(f.Payload).RuleSIDs {
			got[sid] = true
		}
		for _, sid := range f.MustSIDs {
			if !got[sid] {
				t.Errorf("%s: ground-truth sid %d not matched by baseline", f.Name, sid)
			}
		}
		if len(got) != len(f.MustSIDs) {
			t.Errorf("%s: baseline matched %v, ground truth pins %v", f.Name, got, f.MustSIDs)
		}
	}
}

func TestBitTorrentFlowsDeterministic(t *testing.T) {
	a, b := BitTorrentFlows(5), BitTorrentFlows(5)
	if len(a) != len(b) {
		t.Fatalf("flow count varies")
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Errorf("flow %s not deterministic", a[i].Name)
		}
	}
	c := BitTorrentFlows(6)
	if bytes.Equal(a[0].Payload, c[0].Payload) {
		t.Error("distinct seeds produced identical handshake flows")
	}
}
