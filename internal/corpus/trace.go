// ICTF-like attack trace generation for the §7.1 detection-accuracy
// experiment: benign HTTP-like flows with rule keywords injected, a
// controlled fraction of them misaligned with delimiter boundaries.

package corpus

import (
	"bytes"
	"math/rand"

	"repro/internal/rules"
)

// TraceFlow is one flow of the synthetic attack trace.
type TraceFlow struct {
	// Payload is the flow's application bytes.
	Payload []byte
	// InjectedSIDs lists rules whose keywords were injected (ground truth
	// for debugging; scoring uses the plaintext baseline instead, since
	// positioned rules may legitimately not fire where injected).
	InjectedSIDs []int
}

// TraceConfig parameterizes AttackTrace.
type TraceConfig struct {
	// Flows is the number of flows.
	Flows int
	// FlowBytes is the benign size of each flow.
	FlowBytes int
	// AttacksPerFlow is the mean number of injected rules per flow.
	AttacksPerFlow float64
	// MisalignFraction is the fraction of keyword injections embedded
	// mid-word (not delimiter-bounded) — attacks that delimiter-based
	// tokenization legitimately misses (§7.1 measures 97.1% keyword
	// coverage on ICTF).
	MisalignFraction float64
}

// DefaultTraceConfig mirrors the scale of the ICTF experiment at
// benchmark-friendly size.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Flows: 200, FlowBytes: 8 << 10, AttacksPerFlow: 1.5, MisalignFraction: 0.03}
}

// AttackTrace generates flows with keywords of randomly chosen rules
// injected into benign HTTP-like payloads.
func AttackTrace(seed int64, rs *rules.Ruleset, cfg TraceConfig) []TraceFlow {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]TraceFlow, cfg.Flows)
	for i := range flows {
		payload := SynthesizeText(rng, cfg.FlowBytes)
		var injected []int
		nAttacks := poissonish(rng, cfg.AttacksPerFlow)
		for a := 0; a < nAttacks && len(rs.Rules) > 0; a++ {
			rule := rs.Rules[rng.Intn(len(rs.Rules))]
			misalign := rng.Float64() < cfg.MisalignFraction
			payload = injectRule(rng, payload, rule, misalign)
			injected = append(injected, rule.SID)
		}
		flows[i] = TraceFlow{Payload: payload, InjectedSIDs: injected}
	}
	return flows
}

// injectRule plants every keyword of the rule into the payload, in order,
// at increasing offsets, so multi-keyword and distance-constrained rules
// have a chance to fire.
func injectRule(rng *rand.Rand, payload []byte, rule *rules.Rule, misalign bool) []byte {
	at := rng.Intn(len(payload) / 2)
	var out bytes.Buffer
	out.Write(payload[:at])
	for _, c := range rule.Contents {
		if misalign {
			// Embed mid-word: glue alphanumerics on both sides.
			out.WriteString("zq")
			out.Write(c.Pattern)
			out.WriteString("qz ")
		} else {
			out.WriteByte(' ')
			out.Write(c.Pattern)
			out.WriteByte(' ')
		}
		// Benign gap between keywords.
		gap := 4 + rng.Intn(40)
		end := at + gap
		if end > len(payload) {
			end = len(payload)
		}
		out.Write(payload[at:end])
		at = end
	}
	// Satisfy pure-pcre tails of Protocol III rules ("kw" + hex run).
	if rule.Pcre != "" && len(rule.Contents) > 0 {
		out.WriteByte(' ')
		out.Write(rule.Contents[0].Pattern)
		out.WriteString("deadbeef ")
	}
	out.Write(payload[at:])
	return out.Bytes()
}

func poissonish(rng *rand.Rand, mean float64) int {
	n := int(mean)
	if rng.Float64() < mean-float64(n) {
		n++
	}
	return n
}
