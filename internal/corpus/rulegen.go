// Synthetic ruleset generation modeled on the Table 1 datasets.

package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rules"
)

// RulesetSpec statistically describes one Table 1 dataset: the fraction of
// rules implementable by Protocol I (single keyword, no positions) and by
// Protocol II (multiple keywords/positions); the remainder requires
// Protocol III (regexps or scripting).
type RulesetSpec struct {
	Name string
	// NumRules is the generated ruleset size.
	NumRules int
	// P1Frac and P2Frac are the Table 1 cumulative fractions.
	P1Frac, P2Frac float64
	// AvgKeywords is the mean keyword count of multi-keyword rules (the
	// paper's industrial dataset averages three).
	AvgKeywords float64
	// MinKeywordLen, when positive, suppresses keywords shorter than this
	// many bytes (the §7.1 accuracy experiment uses 8 so window-mode
	// detection is not limited by sub-window keywords).
	MinKeywordLen int
}

// Datasets mirrors Table 1 of the paper. NumRules approximates each
// dataset's scale while staying benchmark-friendly; the *fractions* are
// what the experiment reproduces.
var Datasets = []RulesetSpec{
	{Name: "Document watermarking", NumRules: 50, P1Frac: 1.00, P2Frac: 1.00, AvgKeywords: 1},
	{Name: "Parental filtering", NumRules: 400, P1Frac: 1.00, P2Frac: 1.00, AvgKeywords: 1},
	{Name: "Snort Community (HTTP)", NumRules: 600, P1Frac: 0.03, P2Frac: 0.67, AvgKeywords: 3},
	{Name: "Snort Emerging Threats (HTTP)", NumRules: 1000, P1Frac: 0.016, P2Frac: 0.42, AvgKeywords: 3},
	{Name: "McAfee Stonesoft IDS", NumRules: 500, P1Frac: 0.05, P2Frac: 0.40, AvgKeywords: 3},
	{Name: "Lastline", NumRules: 400, P1Frac: 0.00, P2Frac: 0.291, AvgKeywords: 3},
}

// DatasetByName returns the named spec.
func DatasetByName(name string) (RulesetSpec, bool) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return RulesetSpec{}, false
}

// keywordShapes produce realistic rule keywords. Each keyword's unique id
// sits inside its *first delimiter-mode fragment* (the first TokenSize
// bytes after a word start): under delimiter tokenization a long keyword
// with no internal word starts is matched only by its leading fragment, so
// a dictionary-word prefix would make thousands of rules fire on benign
// prose — the prefix-matching caveat tokenize.SplitKeyword documents.
var keywordShapes = []func(rng *rand.Rand, id string) string{
	func(rng *rand.Rand, id string) string { // plain long word
		return words[rng.Intn(len(words))][:3] + id + "xploit"
	},
	func(rng *rand.Rand, id string) string { // path
		// The id is fused into every word-start fragment: a rule keyword
		// containing a bare dictionary word as its own delimiter-bounded
		// fragment would fire on all benign prose.
		return "/cgi-bin/x" + id + words[rng.Intn(len(words))] + ".php"
	},
	func(rng *rand.Rand, id string) string { // query fragment
		return "?cmd=" + id + words[rng.Intn(len(words))]
	},
	func(rng *rand.Rand, id string) string { // header
		return "X-" + strings.Title(words[rng.Intn(len(words))]) + ": ev" + id
	},
	func(rng *rand.Rand, id string) string { // user agent fragment
		return "Agent/" + id + "." + "v" + id + words[rng.Intn(len(words))]
	},
	func(rng *rand.Rand, id string) string { // short word (padded-token class)
		return "w" + id
	},
}

// keyword generates the n-th keyword of a ruleset. Keywords shorter than
// minLen bytes use only the longer shapes (window-mode tokenization cannot
// match sub-window keywords at all).
func keyword(rng *rand.Rand, n, minLen int) string {
	id := fmt.Sprintf("%05x", n)
	for {
		kw := keywordShapes[rng.Intn(len(keywordShapes))](rng, id)
		if len(kw) >= minLen {
			return kw
		}
	}
}

func escapePattern(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, `;`, `\;`)
	return s
}

// Generate synthesizes a ruleset with the spec's protocol mix. Rule SIDs
// start at 1000.
func (spec RulesetSpec) Generate(seed int64) (*rules.Ruleset, error) {
	rng := rand.New(rand.NewSource(seed))
	var (
		lines []string
		kwSeq int
	)
	nextKw := func() string {
		kwSeq++
		return keyword(rng, kwSeq, spec.MinKeywordLen)
	}
	n1 := int(spec.P1Frac * float64(spec.NumRules))
	n2 := int(spec.P2Frac*float64(spec.NumRules)) - n1
	if n2 < 0 {
		n2 = 0
	}
	n3 := spec.NumRules - n1 - n2
	sid := 1000

	for i := 0; i < n1; i++ {
		sid++
		lines = append(lines, fmt.Sprintf(
			`alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"%s P1 rule %d"; content:"%s"; sid:%d;)`,
			spec.Name, i, escapePattern(nextKw()), sid))
	}
	for i := 0; i < n2; i++ {
		sid++
		nk := keywordCount(rng, spec.AvgKeywords)
		var opts []string
		opts = append(opts, fmt.Sprintf(`msg:"%s P2 rule %d"`, spec.Name, i))
		for j := 0; j < nk; j++ {
			opts = append(opts, fmt.Sprintf(`content:"%s"`, escapePattern(nextKw())))
			if j == 0 && rng.Intn(3) == 0 {
				opts = append(opts, fmt.Sprintf("offset:%d", rng.Intn(32)), fmt.Sprintf("depth:%d", 64+rng.Intn(512)))
			}
		}
		opts = append(opts, fmt.Sprintf("sid:%d", sid))
		lines = append(lines, fmt.Sprintf(
			`alert tcp $EXTERNAL_NET any -> $HOME_NET any (%s;)`, strings.Join(opts, "; ")))
	}
	for i := 0; i < n3; i++ {
		sid++
		kw := nextKw()
		lines = append(lines, fmt.Sprintf(
			`alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"%s P3 rule %d"; content:"%s"; pcre:"/%s[0-9a-f]{2,8}/"; sid:%d;)`,
			spec.Name, i, escapePattern(kw), pcreEscape(kw), sid))
	}
	return rules.Parse(spec.Name, strings.Join(lines, "\n"))
}

// keywordCount draws the keyword count of one multi-keyword rule with the
// requested mean (at least 2).
func keywordCount(rng *rand.Rand, avg float64) int {
	n := 2 + rng.Intn(int(2*avg)-2)
	return n
}

var pcreMeta = "\\.+*?()|[]{}^$/"

func pcreEscape(s string) string {
	var b strings.Builder
	for _, c := range s {
		if strings.ContainsRune(pcreMeta, c) {
			b.WriteByte('\\')
		}
		b.WriteRune(c)
	}
	return b.String()
}
