package tokenize

import (
	"reflect"
	"testing"
)

// FuzzStreamingEquivalence feeds arbitrary bytes in arbitrary chunkings
// and checks the core tokenizer invariant: streaming equals one-shot.
func FuzzStreamingEquivalence(f *testing.F) {
	f.Add([]byte("GET /a?b=c HTTP/1.1\r\n\r\n"), uint8(3), uint8(0))
	f.Add([]byte("x"), uint8(1), uint8(1))
	f.Add([]byte("?user=alice&pass=x maliciously formed..!!"), uint8(7), uint8(1))
	f.Add([]byte{0, 1, 2, 255, 254, 'a', 'b', ' '}, uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, modeByte uint8) {
		if len(data) > 4096 {
			return
		}
		mode := Window
		if modeByte%2 == 1 {
			mode = Delimiter
		}
		c := int(chunk%16) + 1
		want := TokenizeAll(mode, data)
		tk := New(mode)
		var got []Token
		for i := 0; i < len(data); i += c {
			end := i + c
			if end > len(data) {
				end = len(data)
			}
			got = append(got, tk.Append(data[i:end])...)
		}
		got = append(got, tk.Flush()...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunked tokenization diverged (mode %v, chunk %d)", mode, c)
		}
		// Offsets are within bounds and non-decreasing.
		last := -1
		for _, tok := range want {
			if tok.Offset < 0 || tok.Offset >= len(data) {
				t.Fatalf("token offset %d out of range", tok.Offset)
			}
			if tok.Offset < last {
				t.Fatal("token offsets not monotone")
			}
			last = tok.Offset
		}
	})
}

// FuzzSplitKeywordConsistency checks fragment/offset invariants on
// arbitrary keywords.
func FuzzSplitKeywordConsistency(f *testing.F) {
	f.Add([]byte("maliciously"), uint8(0))
	f.Add([]byte("?user="), uint8(1))
	f.Add([]byte("Content-Type: text/html"), uint8(1))
	f.Fuzz(func(t *testing.T, kw []byte, modeByte uint8) {
		if len(kw) > 512 {
			return
		}
		mode := Window
		if modeByte%2 == 1 {
			mode = Delimiter
		}
		frags, rel := SplitKeyword(mode, kw)
		if len(frags) != len(rel) {
			t.Fatal("fragments and offsets misaligned")
		}
		for i, at := range rel {
			if at < 0 || at >= len(kw) {
				t.Fatalf("fragment offset %d out of keyword range", at)
			}
			n := TokenSize
			if at+n > len(kw) {
				n = len(kw) - at
			}
			for j := 0; j < n; j++ {
				if frags[i][j] != kw[at+j] {
					t.Fatal("fragment bytes diverge from keyword")
				}
			}
		}
	})
}
