// Fuzz target for the adversarial tokenize→detect round trip. It lives in
// the external test package: the detection engine imports tokenize, so the
// in-package fuzz files cannot reach it.

package tokenize_test

import (
	"reflect"
	"testing"

	"repro/internal/evasion"
	"repro/internal/tokenize"
)

// FuzzEvasionTokenizeDetect mutates boundary-split payloads through the
// full offline encrypted path (tokenize → dpienc → detect) and checks the
// adversarial invariants: no panic on arbitrary bytes and chunkings; the
// chunked stream detects exactly what the one-shot stream detects (same
// rule SIDs, byte-identical alert transcript); and a delimiter-bounded
// planted keyword is detected no matter what attacker-chosen bytes
// precede it or where the write boundaries fall.
func FuzzEvasionTokenizeDetect(f *testing.F) {
	rs, err := evasion.Rules()
	if err != nil {
		f.Fatal(err)
	}
	runners := map[tokenize.Mode]*evasion.Runner{
		tokenize.Window:    evasion.NewRunner(rs, tokenize.Window),
		tokenize.Delimiter: evasion.NewRunner(rs, tokenize.Delimiter),
	}

	f.Add([]byte("GET /index.html?q=attack01 HTTP/1.1\r\n\r\n"), uint8(3), uint8(1))
	f.Add([]byte("zqevilpayload9qz plus ?cmd=evil trailing"), uint8(1), uint8(1))
	f.Add([]byte{0x13, 'B', 'i', 't', 0, 255, ' ', 'b', 'a', 'd', 'k', 'w', ' '}, uint8(2), uint8(0))
	f.Add([]byte("evilpayl\x00tail with evil.payload9 stuffing"), uint8(5), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, modeByte uint8) {
		if len(data) > 4096 {
			return
		}
		mode := tokenize.Window
		if modeByte%2 == 1 {
			mode = tokenize.Delimiter
		}
		r := runners[mode]

		// The planted keyword is delimiter-bounded after arbitrary attacker
		// bytes; SIDExact ("attack01", exactly one token) must always fire.
		payload := append(append([]byte(nil), data...), []byte(" attack01 ")...)
		c := int(chunk%16) + 1
		var cuts []int
		for at := c; at < len(payload); at += c {
			cuts = append(cuts, at)
		}

		oneShot := r.Run(evasion.Case{Label: "fuzz/one-shot", Payload: payload, SID: evasion.SIDExact, Expect: evasion.MustDetect})
		chunked := r.Run(evasion.Case{Label: "fuzz/chunked", Payload: payload, Chunks: cuts, SID: evasion.SIDExact, Expect: evasion.MustDetect})

		if !reflect.DeepEqual(oneShot.DetectedSIDs, chunked.DetectedSIDs) {
			t.Fatalf("chunked detection diverged (mode %v, chunk %d): one-shot %v, chunked %v",
				mode, c, oneShot.DetectedSIDs, chunked.DetectedSIDs)
		}
		if oneShot.EncTranscript != chunked.EncTranscript {
			t.Fatalf("chunked transcript diverged (mode %v, chunk %d):\none-shot:\n%s\nchunked:\n%s",
				mode, c, oneShot.EncTranscript, chunked.EncTranscript)
		}
		found := false
		for _, sid := range chunked.DetectedSIDs {
			if sid == evasion.SIDExact {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted delimiter-bounded keyword escaped detection (mode %v, chunk %d, detected %v)",
				mode, c, chunked.DetectedSIDs)
		}
	})
}
