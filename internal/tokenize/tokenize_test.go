package tokenize

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = string(bytes.TrimRight(t.Text[:], "\x00"))
	}
	return out
}

func tokenSet(toks []Token) map[Token]bool {
	m := make(map[Token]bool, len(toks))
	for _, t := range toks {
		m[t] = true
	}
	return m
}

func TestWindowTokenizesEveryOffset(t *testing.T) {
	// Paper example: "alice apple" -> "alice ap", "lice app", "ice appl", ...
	toks := TokenizeAll(Window, []byte("alice apple"))
	if len(toks) != len("alice apple")-TokenSize+1 {
		t.Fatalf("got %d tokens, want %d", len(toks), len("alice apple")-TokenSize+1)
	}
	if string(toks[0].Text[:]) != "alice ap" {
		t.Fatalf("first token = %q", toks[0].Text)
	}
	if string(toks[1].Text[:]) != "lice app" {
		t.Fatalf("second token = %q", toks[1].Text)
	}
	for i, tok := range toks {
		if tok.Offset != i {
			t.Fatalf("token %d has offset %d", i, tok.Offset)
		}
	}
}

func TestWindowShortInput(t *testing.T) {
	if toks := TokenizeAll(Window, []byte("short")); len(toks) != 0 {
		t.Fatalf("sub-window input produced %d tokens", len(toks))
	}
	if toks := TokenizeAll(Window, []byte("12345678")); len(toks) != 1 {
		t.Fatalf("exactly one window expected, got %d", len(toks))
	}
}

func TestWindowStreamingEqualsOneShot(t *testing.T) {
	data := []byte("GET /login.php?user=alice HTTP/1.1\r\nHost: example.com\r\n\r\n")
	want := TokenizeAll(Window, data)
	for _, chunk := range []int{1, 2, 3, 7, 13} {
		tk := New(Window)
		var got []Token
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			got = append(got, tk.Append(data[i:end])...)
		}
		got = append(got, tk.Flush()...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk size %d: streaming tokens differ from one-shot", chunk)
		}
	}
}

func TestDelimiterEmitsAnchoredWindows(t *testing.T) {
	data := []byte("login.php?user=alice&pass=sesame99 HTTP")
	toks := tokenSet(TokenizeAll(Delimiter, data))
	// Full window anchored at the word start at stream offset 0.
	if !toks[Token{Text: [8]byte{'l', 'o', 'g', 'i', 'n', '.', 'p', 'h'}, Offset: 0}] {
		t.Error("missing word-start window 'login.ph'")
	}
	// Padded short word "login" (ends before the '.').
	if !toks[paddedToken([]byte("login"), 0)] {
		t.Error("missing padded token 'login'")
	}
	// Padded "?user=" starting at the '?' delimiter-run start (offset 9).
	if !toks[paddedToken([]byte("?user="), 9)] {
		t.Error("missing padded token '?user='")
	}
	// Window "user=ali" at the word start just after the '?'.
	var ua Token
	copy(ua.Text[:], "user=ali")
	ua.Offset = 10
	if !toks[ua] {
		t.Error("missing word-start window 'user=ali'")
	}
}

func TestDelimiterSkipsUnanchoredSubstrings(t *testing.T) {
	// Paper: "logi" and mid-word substrings like "ogin.php" are not
	// candidate keywords and must not be emitted.
	data := []byte("xlogin.php hello")
	toks := TokenizeAll(Delimiter, data)
	for _, tok := range toks {
		if tok.Offset == 1 {
			t.Errorf("mid-word position emitted a token: %q@%d", tok.Text, tok.Offset)
		}
	}
}

func TestDelimiterLongKeywordPrefixFragment(t *testing.T) {
	// "maliciously" bounded by spaces: delimiter mode covers the keyword by
	// its word-start window "maliciou" (prefix matching for undelimited
	// tails; the full interior is only verified under window mode).
	data := []byte(" maliciously ")
	toks := tokenSet(TokenizeAll(Delimiter, data))
	var first Token
	copy(first.Text[:], "maliciou")
	first.Offset = 1
	if !toks[first] {
		t.Fatalf("missing word-start window 'maliciou'; got %v", texts(TokenizeAll(Delimiter, data)))
	}
	frags, rel := SplitKeyword(Delimiter, []byte("maliciously"))
	if len(frags) != 1 || rel[0] != 0 || string(frags[0][:]) != "maliciou" {
		t.Fatalf("SplitKeyword(Delimiter, maliciously) = %q@%v", frags, rel)
	}
}

func TestDelimiterStreamingEqualsOneShot(t *testing.T) {
	data := []byte("GET /login.php?user=alice HTTP/1.1\r\nHost: ex.com\r\nX: maliciously-formed!!\r\n\r\n")
	want := TokenizeAll(Delimiter, data)
	for _, chunk := range []int{1, 2, 3, 5, 11, 31} {
		tk := New(Delimiter)
		var got []Token
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			got = append(got, tk.Append(data[i:end])...)
		}
		got = append(got, tk.Flush()...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk size %d: streaming tokens differ from one-shot\n got %v\nwant %v", chunk, got, want)
		}
	}
}

func TestStreamingEqualsOneShotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("abcdefgh ./?=&:\r\n0123XYZ")
	for _, mode := range []Mode{Window, Delimiter} {
		f := func(seed int64, n uint8) bool {
			r := rand.New(rand.NewSource(seed))
			data := make([]byte, int(n)+1)
			for i := range data {
				data[i] = alphabet[r.Intn(len(alphabet))]
			}
			want := TokenizeAll(mode, data)
			tk := New(mode)
			var got []Token
			for i := 0; i < len(data); {
				c := 1 + rng.Intn(9)
				end := i + c
				if end > len(data) {
					end = len(data)
				}
				got = append(got, tk.Append(data[i:end])...)
				i = end
			}
			got = append(got, tk.Flush()...)
			return reflect.DeepEqual(got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestWindowCoversAllKeywordFragments(t *testing.T) {
	// Invariant: every fragment SplitKeyword(Window, kw) produces is present
	// as a traffic token whenever kw (len >= TokenSize) occurs in the stream.
	stream := []byte("junkprefix maliciouslylongkeyword junksuffix")
	kw := []byte("maliciouslylongkeyword")
	at := bytes.Index(stream, kw)
	toks := tokenSet(TokenizeAll(Window, stream))
	frags, rel := SplitKeyword(Window, kw)
	for i, f := range frags {
		want := Token{Text: f, Offset: at + rel[i]}
		if !toks[want] {
			t.Fatalf("fragment %q at rel %d missing from window tokens", f, rel[i])
		}
	}
}

func TestDelimiterCoversDelimiterBoundedKeywords(t *testing.T) {
	// Every fragment of a delimiter-bounded keyword must appear as a
	// delimiter-mode traffic token.
	cases := []string{
		"login",
		"login.php",
		"?user=",
		"user=alice",
		"Server: nginx/0.",
		"Content-Type: text/html",
		"maliciously",
	}
	for _, kw := range cases {
		// Delimiter-initial keywords such as "?user=" occur directly after
		// a word in real traffic (e.g. "login.php?user="); keywords
		// starting mid-delimiter-run are part of the documented miss rate.
		prefix := "padpad "
		if IsDelimiter(kw[0]) {
			prefix = "padpad"
		}
		stream := []byte(prefix + kw + " trailer")
		at := bytes.Index(stream, []byte(kw))
		toks := tokenSet(TokenizeAll(Delimiter, stream))
		frags, rel := SplitKeyword(Delimiter, []byte(kw))
		if len(frags) == 0 {
			t.Fatalf("keyword %q produced no fragments", kw)
		}
		for i, f := range frags {
			want := Token{Text: f, Offset: at + rel[i]}
			if !toks[want] {
				t.Errorf("keyword %q: fragment %q at rel %d missing (tokens: %v)",
					kw, f, rel[i], texts(TokenizeAll(Delimiter, stream)))
			}
		}
	}
}

func TestDelimiterMissesMidWordKeyword(t *testing.T) {
	// A keyword embedded mid-word is NOT delimiter-bounded in the traffic and
	// must be missed -- this is the documented coverage loss (§7.1).
	kw := []byte("evilpayloadxx") // 13 bytes, no internal delimiters
	stream := []byte("prefix zzz" + string(kw) + "zzz suffix")
	at := bytes.Index(stream, kw)
	toks := tokenSet(TokenizeAll(Delimiter, stream))
	frags, rel := SplitKeyword(Delimiter, kw)
	found := 0
	for i, f := range frags {
		if toks[Token{Text: f, Offset: at + rel[i]}] {
			found++
		}
	}
	if len(frags) == 0 {
		t.Fatal("expected at least one fragment for a plain-word keyword")
	}
	if found == len(frags) {
		t.Fatal("mid-word keyword unexpectedly fully covered")
	}
}

func TestSplitKeywordWindow(t *testing.T) {
	frags, rel := SplitKeyword(Window, []byte("maliciously"))
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2", len(frags))
	}
	if string(frags[0][:]) != "maliciou" || rel[0] != 0 {
		t.Fatalf("frag 0 = %q@%d", frags[0], rel[0])
	}
	if string(frags[1][:]) != "iciously" || rel[1] != 3 {
		t.Fatalf("frag 1 = %q@%d", frags[1], rel[1])
	}
	frags, rel = SplitKeyword(Window, []byte("0123456789abcdef"))
	if len(frags) != 2 || rel[0] != 0 || rel[1] != 8 {
		t.Fatalf("exact multiple: frags=%d rel=%v", len(frags), rel)
	}
	// Sub-window keywords are unmatchable under window tokenization.
	if frags, _ := SplitKeyword(Window, []byte("short")); frags != nil {
		t.Fatal("short window keyword must yield nil")
	}
}

func TestSplitKeywordDelimiterInternalWordStarts(t *testing.T) {
	frags, rel := SplitKeyword(Delimiter, []byte("Content-Type: text/html"))
	want := map[string]int{"Content-": 0, "text/htm": 14}
	if len(frags) != len(want) {
		t.Fatalf("got %d fragments %v, want %d", len(frags), frags, len(want))
	}
	for i, f := range frags {
		name := string(f[:])
		at, ok := want[name]
		if !ok || at != rel[i] {
			t.Fatalf("unexpected fragment %q@%d", name, rel[i])
		}
	}
}

func TestSplitKeywordEmpty(t *testing.T) {
	for _, mode := range []Mode{Window, Delimiter} {
		frags, rel := SplitKeyword(mode, nil)
		if frags != nil || rel != nil {
			t.Fatalf("mode %v: empty keyword must produce nothing", mode)
		}
	}
}

func TestSplitKeywordUncoverable(t *testing.T) {
	// A long keyword of pure delimiters has no word start: nil in
	// delimiter mode (contributes to detection loss).
	if frags, _ := SplitKeyword(Delimiter, []byte("??????????")); frags != nil {
		t.Fatalf("pure-delimiter keyword yielded fragments %q", frags)
	}
}

func TestSplitKeywordFragmentsReconstruct(t *testing.T) {
	// Property: fragments laid at their relative offsets reproduce the
	// keyword bytes they cover, for both modes.
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		for _, mode := range []Mode{Window, Delimiter} {
			frags, rel := SplitKeyword(mode, raw)
			for i, fr := range frags {
				n := TokenSize
				if rel[i]+n > len(raw) {
					n = len(raw) - rel[i]
				}
				if !bytes.Equal(fr[:n], raw[rel[i]:rel[i]+n]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDelimiterBandwidthBelowWindow(t *testing.T) {
	// Delimiter tokenization must emit substantially fewer tokens than
	// window tokenization on typical text (paper Fig. 5: 2.5x vs 4x median
	// total overhead).
	text := bytes.Repeat([]byte(
		"GET /index.html?q=hello&lang=en HTTP/1.1\r\nHost: www.example.com\r\n"+
			"<div class=\"story\">The quick brown fox jumps over the lazy dog near the riverbank</div>\n"), 20)
	w := len(TokenizeAll(Window, text))
	d := len(TokenizeAll(Delimiter, text))
	if d >= w {
		t.Fatalf("delimiter tokens (%d) not fewer than window tokens (%d)", d, w)
	}
	if float64(d) > 0.8*float64(w) {
		t.Fatalf("delimiter tokens (%d) not substantially fewer than window (%d)", d, w)
	}
}

func TestIsDelimiter(t *testing.T) {
	for _, b := range []byte("abcXYZ019_-") {
		if IsDelimiter(b) {
			t.Errorf("%q wrongly classified as delimiter", b)
		}
	}
	for _, b := range []byte(" .?&=/:;\r\n\t!\"'<>") {
		if !IsDelimiter(b) {
			t.Errorf("%q wrongly classified as non-delimiter", b)
		}
	}
}

func TestAppendAfterFlushPanics(t *testing.T) {
	tk := New(Window)
	tk.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("Append after Flush must panic")
		}
	}()
	tk.Append([]byte("x"))
}

func TestFlushTwicePanics(t *testing.T) {
	tk := New(Delimiter)
	tk.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("double Flush must panic")
		}
	}()
	tk.Flush()
}

func TestSkipBinaryContent(t *testing.T) {
	// text | 1000 bytes binary | text: offsets after the gap must account
	// for the skipped bytes, the boundary must not form tokens, and the
	// first word after the gap must be anchored.
	for _, mode := range []Mode{Window, Delimiter} {
		tk := New(mode)
		var toks []Token
		toks = append(toks, tk.Append([]byte("evilword1 before"))...)
		toks = append(toks, tk.Skip(1000)...)
		toks = append(toks, tk.Append([]byte("evilword2 after"))...)
		toks = append(toks, tk.Flush()...)

		set := tokenSet(toks)
		var w1, w2 Token
		copy(w1.Text[:], "evilword")
		w1.Offset = 0
		copy(w2.Text[:], "evilword")
		w2.Offset = len("evilword1 before") + 1000
		if !set[w1] {
			t.Errorf("mode %v: missing pre-gap token", mode)
		}
		if !set[w2] {
			t.Errorf("mode %v: missing post-gap token at adjusted offset (got %v)", mode, toks)
		}
		for _, tok := range toks {
			if tok.Offset > 10 && tok.Offset < len("evilword1 before")+1000 {
				t.Errorf("mode %v: token emitted inside the binary gap: %+v", mode, tok)
			}
		}
	}
}

func TestSkipZeroActsAsSegmentBreak(t *testing.T) {
	tk := New(Delimiter)
	var toks []Token
	toks = append(toks, tk.Append([]byte("abcdefgh"))...)
	toks = append(toks, tk.Skip(0)...)
	toks = append(toks, tk.Append([]byte("ijklmnop"))...)
	toks = append(toks, tk.Flush()...)
	set := tokenSet(toks)
	var second Token
	copy(second.Text[:], "ijklmnop")
	second.Offset = 8
	if !set[second] {
		t.Fatalf("post-break word not anchored: %v", toks)
	}
	// No token may span the break.
	for _, tok := range toks {
		if tok.Offset < 8 && tok.Offset+TokenSize > 8 && tok.Text[7] != Pad {
			for i := tok.Offset; i < 8; i++ {
				if tok.Text[i-tok.Offset] != "abcdefgh"[i] {
					t.Fatalf("token spans the segment break: %+v", tok)
				}
			}
		}
	}
}
