// Package tokenize implements the two BlindBox traffic tokenization schemes
// of §3 of the paper:
//
//   - Window-based tokenization emits one fixed-length token per byte offset
//     of the stream (a sliding window), so any keyword of at least TokenSize
//     bytes is detectable at any offset.
//
//   - Delimiter-based tokenization exploits the structure of HTTP rule
//     keywords: keywords start and end adjacent to delimiters (punctuation,
//     spacing, special symbols), so only substrings anchored on
//     delimiter-derived offsets need to be transmitted. This reduces
//     bandwidth (paper Fig. 5: median 2.5x vs 4x total overhead) at the cost
//     of missing keywords that do not align with delimiter boundaries in the
//     traffic (paper §7.1: 97.1% of attack keywords still detected).
//
// The delimiter tokenizer emits two kinds of tokens:
//
//  1. a full TokenSize window at every word start (stream start or a
//     non-delimiter byte preceded by a delimiter), covering keywords of at
//     least TokenSize bytes, and
//
//  2. right-padded short words [o:e) at every word or delimiter-run start o,
//     for the first few delimiter-transition boundaries e within the window,
//     covering keywords shorter than TokenSize such as "login" and "?user="
//     (which window tokenization cannot match at all).
//
// SplitKeyword mirrors this emission on the rule-compilation side so that a
// fragment is searched for only if the tokenizer would emit it.
//
// Both tokenizers operate on a logical bytestream: feeding a stream in
// several Append calls produces exactly the same tokens as feeding it in one
// call, which is required because keywords may straddle packet boundaries.
package tokenize

// TokenSize is the fixed token length in bytes. The paper uses 8-byte
// tokens: keywords shorter than 8 bytes are right-padded, longer keywords
// are split into TokenSize-byte fragments.
const TokenSize = 8

// Pad is the padding byte used to right-pad short delimiter-bounded words up
// to TokenSize.
const Pad = 0x00

// maxShortBoundaries caps how many padded short-word candidates are emitted
// per anchor. Three transitions suffice for the keyword shapes that occur in
// rulesets (word, word+delimiter-run, delimiter-run+word+delimiter-run, e.g.
// "?user=") while keeping bandwidth overhead near the paper's 2.5x median.
const maxShortBoundaries = 3

// Token is one fixed-size plaintext token together with the absolute offset
// in the bytestream at which it begins. Protocol II rules constrain offsets,
// so the offset travels with the token all the way to detection.
type Token struct {
	// Text is the token contents, always TokenSize bytes; padded short
	// words use Pad bytes on the right.
	//bb:secret
	Text [TokenSize]byte
	// Offset is the byte offset in the logical stream where Text begins.
	Offset int
}

// Mode selects the tokenization algorithm.
type Mode int

const (
	// Window emits one token per byte offset (§3, "window-based").
	Window Mode = iota
	// Delimiter emits only tokens anchored at delimiter boundaries
	// (§3, "delimiter-based").
	Delimiter
)

// String names the tokenization mode for flags and benchmark output.
func (m Mode) String() string {
	switch m {
	case Window:
		return "window"
	case Delimiter:
		return "delimiter"
	default:
		return "unknown"
	}
}

// IsDelimiter reports whether b is a delimiter byte: punctuation, spacing or
// a special symbol. Keywords in HTTP rules start and end before or after
// such bytes (§3). Alphanumerics plus '-' and '_' (word-internal in URLs and
// identifiers) are non-delimiters.
func IsDelimiter(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return false
	case b == '_', b == '-':
		return false
	default:
		return true
	}
}

// Tokenizer turns a bytestream into Tokens under one of the two modes.
// The zero value is not usable; call New.
type Tokenizer struct {
	mode Mode

	// buf holds bytes not yet trimmed: up to TokenSize bytes of processed
	// history (needed for word-start checks) followed by unprocessed bytes.
	buf []byte
	// base is the absolute stream offset of buf[0].
	base int
	// proc is the index into buf of the first unprocessed position.
	proc int
	// segStart is the absolute offset at which the current text segment
	// began (the stream start, or the first text byte after skipped binary
	// content); segment starts anchor words like delimiters do.
	segStart int
	closed   bool
}

// New returns a Tokenizer for the given mode.
func New(mode Mode) *Tokenizer {
	return &Tokenizer{mode: mode}
}

// Mode returns the tokenizer's mode.
func (t *Tokenizer) Mode() Mode { return t.mode }

// Append feeds data into the tokenizer and returns the tokens that became
// complete, in stream order.
func (t *Tokenizer) Append(data []byte) []Token {
	if t.closed {
		//lint:ignore todo-panic use-after-Flush is a caller programming error, never reachable from wire data
		panic("tokenize: Append after Flush")
	}
	t.buf = append(t.buf, data...)
	toks := t.drain(false)
	t.trim()
	return toks
}

// Flush signals end-of-stream and returns the remaining tokens. The
// tokenizer cannot be used after Flush.
func (t *Tokenizer) Flush() []Token {
	if t.closed {
		//lint:ignore todo-panic use-after-Flush is a caller programming error, never reachable from wire data
		panic("tokenize: double Flush")
	}
	t.closed = true
	toks := t.drain(true)
	t.buf = nil
	return toks
}

// Skip advances the stream past n bytes of content that is not tokenized
// (binary data such as images and video, which the paper's HTTP IDS does
// not inspect, §3). Buffered text is finalized first — keywords cannot
// straddle a text/binary boundary — and the byte after the gap starts a
// fresh anchored segment. It returns the tokens completed by finalizing
// the buffered text.
func (t *Tokenizer) Skip(n int) []Token {
	if t.closed {
		//lint:ignore todo-panic use-after-Flush is a caller programming error, never reachable from wire data
		panic("tokenize: Skip after Flush")
	}
	if n < 0 {
		//lint:ignore todo-panic negative length is a caller programming error; stream lengths are validated at the transport layer
		panic("tokenize: negative Skip")
	}
	toks := t.drain(true)
	t.base += len(t.buf) + n
	t.buf = t.buf[:0]
	t.proc = 0
	t.segStart = t.base
	return toks
}

// trim discards fully processed bytes, retaining one byte of history so
// word-start checks at the resume position can look backwards.
func (t *Tokenizer) trim() {
	keep := t.proc - 1
	if keep <= 0 {
		return
	}
	t.buf = append(t.buf[:0], t.buf[keep:]...)
	t.base += keep
	t.proc -= keep
}

func (t *Tokenizer) drain(final bool) []Token {
	switch t.mode {
	case Window:
		return t.drainWindow(final)
	case Delimiter:
		return t.drainDelimiter(final)
	default:
		//lint:ignore todo-panic exhaustive switch over the Mode enum; a new mode without a case is a programming error
		panic("tokenize: unknown mode")
	}
}

func (t *Tokenizer) drainWindow(final bool) []Token {
	var toks []Token
	for ; t.proc+TokenSize <= len(t.buf); t.proc++ {
		var tok Token
		copy(tok.Text[:], t.buf[t.proc:t.proc+TokenSize])
		tok.Offset = t.base + t.proc
		toks = append(toks, tok)
	}
	if final {
		// Trailing sub-window bytes form no tokens: the rule compiler
		// splits keywords so every fragment fits a full window, and the
		// final full window of the stream covers the stream tail.
		t.proc = len(t.buf)
	}
	return toks
}

// wordStart reports whether buffer index o begins a word: a non-delimiter
// byte at the stream start or preceded by a delimiter.
func (t *Tokenizer) wordStart(o int) bool {
	if IsDelimiter(t.buf[o]) {
		return false
	}
	return t.base+o == t.segStart || IsDelimiter(t.buf[o-1])
}

// IsKeywordDelimiter reports whether b is a delimiter that plausibly begins
// a rule keyword (URL and header syntax such as the paper's "?user="
// example). Whitespace, quotes and markup brackets begin no known keyword
// shapes, and emitting padded candidates at them would roughly double token
// volume on text-heavy pages.
func IsKeywordDelimiter(b byte) bool {
	switch b {
	case '?', '=', '&', '/', ':', '.', ';', '|', '@', '%', '+', '$', '\\':
		return true
	default:
		return false
	}
}

// runStart reports whether buffer index o begins a delimiter run whose
// first byte can start a keyword.
func (t *Tokenizer) runStart(o int) bool {
	if !IsKeywordDelimiter(t.buf[o]) {
		return false
	}
	return t.base+o == t.segStart || !IsDelimiter(t.buf[o-1])
}

// boundary reports whether buffer index e can end a keyword: a
// word/delimiter transition, or a position right after a keyword delimiter
// (so "?user=" ends there even when followed by further delimiters).
func (t *Tokenizer) boundary(e int) bool {
	if t.base+e == t.segStart {
		return false
	}
	if IsDelimiter(t.buf[e]) != IsDelimiter(t.buf[e-1]) {
		return true
	}
	return IsDelimiter(t.buf[e]) && IsKeywordDelimiter(t.buf[e-1])
}

func (t *Tokenizer) drainDelimiter(final bool) []Token {
	var toks []Token
	n := len(t.buf)
	for ; t.proc < n; t.proc++ {
		o := t.proc
		if !final && o+TokenSize > n {
			break // need TokenSize bytes of lookahead to decide emissions
		}
		abs := t.base + o
		ws, rs := t.wordStart(o), t.runStart(o)
		if !ws && !rs {
			continue
		}
		if ws && o+TokenSize <= n {
			var tok Token
			copy(tok.Text[:], t.buf[o:o+TokenSize])
			tok.Offset = abs
			toks = append(toks, tok)
		}
		// Padded short-word candidates at keyword-end boundaries. Word
		// starts rarely begin keywords needing more than two boundaries
		// (word, word+delimiter); delimiter-run starts need three for
		// shapes like "?user=".
		limit := 2
		if rs {
			limit = maxShortBoundaries
		}
		hi := o + TokenSize
		if hi > n {
			hi = n
		}
		emitted := 0
		for e := o + 2; e < hi && emitted < limit; e++ {
			// e starts at o+2: single-byte keywords do not occur in rules.
			if t.boundary(e) {
				toks = append(toks, paddedToken(t.buf[o:e], abs))
				emitted++
			}
		}
		if final && n < o+TokenSize && emitted < limit {
			// Word or delimiter run truncated by end-of-stream.
			toks = append(toks, paddedToken(t.buf[o:n], abs))
		}
	}
	return toks
}

func paddedToken(word []byte, offset int) Token {
	var tok Token
	copy(tok.Text[:], word) // remainder stays Pad
	tok.Offset = offset
	return tok
}

// TokenizeAll is a convenience that tokenizes a complete buffer in one shot.
func TokenizeAll(mode Mode, data []byte) []Token {
	tk := New(mode)
	toks := tk.Append(data)
	return append(toks, tk.Flush()...)
}

// SplitKeyword splits a rule keyword into the TokenSize-byte fragments the
// middlebox searches for, for the given tokenization mode, returning the
// fragments and their offsets relative to the keyword start. A nil result
// for a non-empty keyword means the keyword cannot be covered under that
// mode (it contributes to the documented detection loss of §7.1).
//
// In Window mode fragments are taken at stride TokenSize plus an overlapping
// fragment anchored at the keyword end (§3: "maliciously" -> "maliciou" +
// "iciously"); every fragment is guaranteed present in traffic because
// window tokenization covers every offset. Keywords shorter than TokenSize
// are not matchable under window tokenization and yield nil.
//
// In Delimiter mode, keywords of at most TokenSize bytes become a single
// padded fragment (matching the tokenizer's padded short-word form), and
// longer keywords use a window at every word start within the keyword —
// exactly the offsets at which the delimiter tokenizer emits traffic tokens
// when the keyword occurs delimiter-bounded. A long keyword's undelimited
// tail beyond the last fragment is not verified (prefix matching), and a
// long keyword with no coverable word start yields nil.
func SplitKeyword(mode Mode, kw []byte) (frags [][TokenSize]byte, rel []int) {
	if len(kw) == 0 {
		return nil, nil
	}
	add := func(at int) {
		var f [TokenSize]byte
		copy(f[:], kw[at:at+TokenSize])
		frags = append(frags, f)
		rel = append(rel, at)
	}
	switch mode {
	case Window:
		if len(kw) < TokenSize {
			return nil, nil
		}
		i := 0
		for ; i+TokenSize <= len(kw); i += TokenSize {
			add(i)
		}
		if i < len(kw) {
			add(len(kw) - TokenSize)
		}
		return frags, rel
	case Delimiter:
		if len(kw) <= TokenSize {
			var f [TokenSize]byte
			copy(f[:], kw)
			return [][TokenSize]byte{f}, []int{0}
		}
		for at := 0; at+TokenSize <= len(kw); at++ {
			// A word start inside the keyword: position 0 (the keyword is
			// delimiter-bounded in matching traffic) or a non-delimiter
			// preceded by a delimiter.
			if IsDelimiter(kw[at]) {
				continue
			}
			if at == 0 || IsDelimiter(kw[at-1]) {
				add(at)
			}
		}
		return frags, rel
	default:
		//lint:ignore todo-panic exhaustive switch over the Mode enum; a new mode without a case is a programming error
		panic("tokenize: unknown mode")
	}
}
