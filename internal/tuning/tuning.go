// Package tuning replaces the pipeline's fixed fan-out knobs with a
// measured cost model. BENCH_pipeline.json showed why fixed knobs fail:
// on a single-core host the "parallel" encrypt path was a 0.77x slowdown
// because goroutine/channel handoffs cost more than the AES work they
// distribute. Fan-out only pays when the work moved across a handoff
// exceeds the handoff itself (~1µs); that threshold depends on the host,
// so it has to be measured, not hardcoded.
//
// The package runs a short calibration pass (two micro-probes, a few
// milliseconds total) and derives a Tuning: how many workers the
// stateless AES step of token encryption should fan out across, the
// batch size below which fan-out must fall back to the sequential path,
// and how many detection shards the middlebox pool should run. The
// derivation is conservative by construction — whenever the measured
// per-batch work is within 2x of the fan-out overhead, the decision is
// sequential, so the tuned pipeline is never slower than the sequential
// one by more than measurement noise.
//
// Calibration timestamps come from an injectable Clock, so tests pin the
// derivation deterministically with a scripted fake clock; production
// callers use Auto, which caches one calibration per effective
// parallelism level.
package tuning

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/tokenize"
)

// Clock supplies the timestamps of calibration measurements. The
// production clock is SystemClock; tests inject a scripted fake to make
// the derived Tuning deterministic.
type Clock interface {
	// Now returns the current time. Calibrate calls it exactly twice per
	// probe rep (start and end), in the documented probe order.
	Now() time.Time
}

// SystemClock is the production Clock backed by time.Now.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// Options sizes a calibration pass. The zero value selects the
// production defaults.
type Options struct {
	// Clock supplies timestamps; nil means SystemClock.
	Clock Clock
	// Procs is the parallelism level to tune for; 0 means the effective
	// level, min(GOMAXPROCS, NumCPU) — oversubscribing GOMAXPROCS past
	// the physical cores cannot make CPU-bound fan-out pay.
	Procs int
	// HandoffRounds is how many channel round-trips the handoff probe
	// times; 0 means 512.
	HandoffRounds int
	// SampleTokens is how many synthetic tokens the encrypt probe times;
	// 0 means 4096.
	SampleTokens int
	// Reps is how many times each probe repeats (the minimum interval
	// wins, discarding scheduler noise); 0 means 3.
	Reps int
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
	if o.Procs == 0 {
		o.Procs = EffectiveProcs()
	}
	if o.HandoffRounds == 0 {
		o.HandoffRounds = 512
	}
	if o.SampleTokens == 0 {
		o.SampleTokens = 4096
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	return o
}

// EffectiveProcs is the parallelism level fan-out decisions should
// assume: min(GOMAXPROCS, NumCPU). GOMAXPROCS above the physical core
// count only adds scheduler churn to CPU-bound stages.
func EffectiveProcs() int {
	p := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < p {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Calibration is the measured cost model of one host at one parallelism
// level. All costs are nanoseconds.
type Calibration struct {
	// HandoffNs is the cost of moving one unit of work across a
	// goroutine boundary: half a bounded-channel round-trip, including
	// the receiving goroutine's wake-up. This is the overhead every
	// fanned-out batch pays per worker.
	HandoffNs float64 `json:"handoff_ns"`
	// EncryptNsPerToken is the sequential cost of the stateless AES step
	// for one assigned token (dpienc.Sender.EncryptAssigned).
	EncryptNsPerToken float64 `json:"encrypt_ns_per_token"`
	// Procs is the parallelism level the calibration was taken at.
	Procs int `json:"procs"`
}

// Tuning is the fan-out decision derived from a Calibration.
type Tuning struct {
	// EncryptWorkers is the goroutine count for the stateless AES step of
	// token encryption. 1 means the sequential fallback: fan-out cannot
	// pay on this host at this parallelism level.
	EncryptWorkers int `json:"encrypt_workers"`
	// EncryptMinBatch is the token-batch size below which encryption must
	// stay sequential even when EncryptWorkers > 1: smaller batches carry
	// less AES work than the handoffs needed to distribute it.
	// math.MaxInt when EncryptWorkers is 1.
	EncryptMinBatch int `json:"encrypt_min_batch"`
	// DetectShards is the detection worker-pool size for the middlebox.
	// 0 means the sequential fallback — run detection inline on the
	// forwarding goroutine, because a pool cannot pay (single-proc host).
	DetectShards int `json:"detect_shards"`
	// Cal is the calibration the decision was derived from.
	Cal Calibration `json:"cal"`
}

// Sequential reports whether the tuning selected the fully sequential
// pipeline (no encrypt fan-out, no detection pool).
func (t Tuning) Sequential() bool {
	return t.EncryptWorkers <= 1 && t.DetectShards == 0
}

// maxEncryptWorkers bounds the AES fan-out: beyond 8 workers the split
// chunks shrink toward the handoff floor and memory bandwidth dominates.
const maxEncryptWorkers = 8

// safetyFactor is how much the projected fan-out saving must exceed the
// projected fan-out overhead before parallel is chosen. 2x keeps the
// decision robust against calibration noise — the cost of wrongly
// choosing sequential is bounded (stay at 1x), the cost of wrongly
// choosing parallel is not.
const safetyFactor = 2

// Derive turns a measured cost model into a fan-out decision. It is a
// pure function of cal, separated from Calibrate so tests can pin the
// decision rule without a clock.
//
// The rule: fanning a batch of n tokens across w workers saves
// n·perToken·(1−1/w) of wall-clock AES time and costs about w handoffs
// (spawn, wake, join each worker). Parallel is chosen only for batches
// whose projected saving is at least safetyFactor times the projected
// overhead; EncryptMinBatch is the break-even n. On a single effective
// proc no saving exists at any n, so everything falls back to
// sequential.
func Derive(cal Calibration) Tuning {
	t := Tuning{
		EncryptWorkers:  1,
		EncryptMinBatch: math.MaxInt,
		DetectShards:    0,
		Cal:             cal,
	}
	if cal.Procs <= 1 {
		return t
	}
	w := cal.Procs
	if w > maxEncryptWorkers {
		w = maxEncryptWorkers
	}
	if cal.EncryptNsPerToken > 0 {
		saving := cal.EncryptNsPerToken * (1 - 1/float64(w))
		overhead := safetyFactor * float64(w) * cal.HandoffNs
		minBatch := int(math.Ceil(overhead / saving))
		if minBatch < 64 {
			minBatch = 64
		}
		t.EncryptWorkers = w
		t.EncryptMinBatch = minBatch
	}
	// Detection batches are whole token records (hundreds of tokens ×
	// tens of ns ≫ one handoff), so with real parallelism available a
	// shard per proc always pays; the pool's win is per-flow engine
	// confinement, which scales with procs, not with the batch size.
	t.DetectShards = cal.Procs
	return t
}

// Calibrate runs the measurement pass and returns the cost model. Probe
// order (each probe runs opts.Reps times, two Clock.Now calls per rep,
// minimum interval wins):
//
//  1. handoff: opts.HandoffRounds bounded-channel round-trips against a
//     live echo goroutine — 2 handoffs per round.
//  2. encrypt: one sequential EncryptAssigned pass over
//     opts.SampleTokens pre-assigned synthetic tokens (after one
//     unmeasured warm-up pass).
//
// A fake Clock therefore sees exactly 2·Reps calls for the handoff probe
// followed by 2·Reps calls for the encrypt probe.
func Calibrate(opts Options) Calibration {
	opts = opts.withDefaults()
	return Calibration{
		HandoffNs:         measureHandoff(opts.Clock, opts.HandoffRounds, opts.Reps),
		EncryptNsPerToken: measureEncrypt(opts.Clock, opts.SampleTokens, opts.Reps),
		Procs:             opts.Procs,
	}
}

// measureHandoff times bounded-channel round-trips against an echo
// goroutine: each round is two handoffs (request and acknowledgement),
// each including the peer goroutine's wake-up — the same costs a shard
// queue or a fan-out worker pays per unit of work.
func measureHandoff(clock Clock, rounds, reps int) float64 {
	req := make(chan struct{}, 1)
	ack := make(chan struct{}, 1)
	go func() {
		for range req {
			ack <- struct{}{}
		}
		close(ack)
	}()
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		start := clock.Now()
		for i := 0; i < rounds; i++ {
			req <- struct{}{}
			<-ack
		}
		ns := float64(clock.Now().Sub(start).Nanoseconds()) / float64(2*rounds)
		if ns < best {
			best = ns
		}
	}
	close(req)
	for range ack {
	}
	if best <= 0 || best == math.MaxFloat64 {
		// A clock too coarse to see the probe (or a scripted fake that
		// returned a non-positive interval): assume the canonical ~1µs.
		best = 1000
	}
	return best
}

// measureEncrypt times the sequential stateless AES step over a
// pre-assigned synthetic token batch, the exact work EncryptAssigned
// fan-out would distribute.
func measureEncrypt(clock Clock, tokens, reps int) float64 {
	k := bbcrypto.DeriveBlock([]byte("tuning-calibration"), "k")
	s := dpienc.NewSender(k, k, dpienc.ProtocolII, 0)
	toks := make([]tokenize.Token, tokens)
	for i := range toks {
		binary.BigEndian.PutUint64(toks[i].Text[:], uint64(i))
		toks[i].Offset = i * tokenize.TokenSize
	}
	assigned := s.AssignTokens(toks, nil)
	out := make([]dpienc.EncryptedToken, len(assigned))
	s.EncryptAssigned(assigned, out) // warm-up: key schedules, page faults
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		start := clock.Now()
		s.EncryptAssigned(assigned, out)
		ns := float64(clock.Now().Sub(start).Nanoseconds()) / float64(tokens)
		if ns < best {
			best = ns
		}
	}
	if best <= 0 || best == math.MaxFloat64 {
		// Fallback matching AES-NI-class hardware; only reachable with a
		// degenerate clock.
		best = 50
	}
	return best
}

// autoCache holds one derived Tuning per effective parallelism level.
// The pipeline bench flips GOMAXPROCS per matrix row, so the cache is
// keyed rather than a singleton.
var (
	autoMu    sync.Mutex
	autoCache = map[int]Tuning{}
)

// Auto returns the tuning for the current effective parallelism level,
// calibrating on first use and caching the result (one calibration costs
// a few milliseconds; per-connection callers must not re-pay it).
func Auto() Tuning {
	procs := EffectiveProcs()
	autoMu.Lock()
	defer autoMu.Unlock()
	if t, ok := autoCache[procs]; ok {
		return t
	}
	t := Derive(Calibrate(Options{Procs: procs}))
	autoCache[procs] = t
	return t
}

// ResetAutoCache discards cached calibrations, forcing the next Auto to
// re-measure. Benchmarks call it around environment changes a cached
// tuning would mask (tests and the bench matrix).
func ResetAutoCache() {
	autoMu.Lock()
	defer autoMu.Unlock()
	autoCache = map[int]Tuning{}
}
