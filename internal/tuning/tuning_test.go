package tuning

import (
	"math"
	"testing"
	"time"
)

// fakeClock replays a script of instants; Calibrate's documented call
// pattern (2 Now calls per probe rep, handoff probe first) makes the
// derived Calibration a pure function of the script.
type fakeClock struct {
	t     *testing.T
	times []time.Time
	i     int
}

func (c *fakeClock) Now() time.Time {
	if c.i >= len(c.times) {
		c.t.Fatalf("fake clock exhausted after %d calls", len(c.times))
	}
	t := c.times[c.i]
	c.i++
	return t
}

// script builds the instant sequence from consecutive intervals: each
// interval d contributes the pair (cursor, cursor+d).
func script(t *testing.T, intervals ...time.Duration) *fakeClock {
	base := time.Unix(0, 0)
	c := &fakeClock{t: t}
	for _, d := range intervals {
		c.times = append(c.times, base, base.Add(d))
		base = base.Add(d + time.Second)
	}
	return c
}

func TestCalibrateDeterministicUnderFakeClock(t *testing.T) {
	// Handoff probe: 512 rounds = 1024 handoffs per rep. Rep intervals
	// 2.048ms and 1.024ms → best 1000ns/handoff. Encrypt probe: 4096
	// tokens per rep. Rep intervals 819.2µs and 409.6µs → best
	// 100ns/token.
	clock := script(t,
		2048*time.Microsecond, 1024*time.Microsecond,
		8192*100*time.Nanosecond, 4096*100*time.Nanosecond,
	)
	cal := Calibrate(Options{
		Clock:         clock,
		Procs:         4,
		HandoffRounds: 512,
		SampleTokens:  4096,
		Reps:          2,
	})
	if cal.HandoffNs != 1000 {
		t.Fatalf("HandoffNs = %v, want 1000", cal.HandoffNs)
	}
	if cal.EncryptNsPerToken != 100 {
		t.Fatalf("EncryptNsPerToken = %v, want 100", cal.EncryptNsPerToken)
	}
	if cal.Procs != 4 {
		t.Fatalf("Procs = %d, want 4", cal.Procs)
	}
	if clock.i != len(clock.times) {
		t.Fatalf("clock saw %d calls, want %d", clock.i, len(clock.times))
	}

	// Same script → same calibration → same tuning, every time.
	for rep := 0; rep < 3; rep++ {
		clock2 := script(t,
			2048*time.Microsecond, 1024*time.Microsecond,
			8192*100*time.Nanosecond, 4096*100*time.Nanosecond,
		)
		cal2 := Calibrate(Options{Clock: clock2, Procs: 4, HandoffRounds: 512, SampleTokens: 4096, Reps: 2})
		if cal2 != cal {
			t.Fatalf("rep %d: calibration not deterministic: %+v vs %+v", rep, cal2, cal)
		}
	}
}

func TestDeriveBreakEven(t *testing.T) {
	// w=4: saving 100·(1−1/4)=75 ns/token, overhead 2·4·1000=8000 ns
	// → break-even batch ceil(8000/75) = 107.
	tn := Derive(Calibration{HandoffNs: 1000, EncryptNsPerToken: 100, Procs: 4})
	if tn.EncryptWorkers != 4 {
		t.Fatalf("EncryptWorkers = %d, want 4", tn.EncryptWorkers)
	}
	if tn.EncryptMinBatch != 107 {
		t.Fatalf("EncryptMinBatch = %d, want 107", tn.EncryptMinBatch)
	}
	if tn.DetectShards != 4 {
		t.Fatalf("DetectShards = %d, want 4", tn.DetectShards)
	}
	if tn.Sequential() {
		t.Fatal("4-proc tuning must not be sequential")
	}
}

func TestDeriveSequentialOnSingleProc(t *testing.T) {
	tn := Derive(Calibration{HandoffNs: 1000, EncryptNsPerToken: 100, Procs: 1})
	if !tn.Sequential() {
		t.Fatalf("single-proc tuning must be sequential, got %+v", tn)
	}
	if tn.EncryptWorkers != 1 || tn.EncryptMinBatch != math.MaxInt || tn.DetectShards != 0 {
		t.Fatalf("unexpected sequential tuning: %+v", tn)
	}
}

func TestDeriveMinBatchFloor(t *testing.T) {
	// Expensive per-token work and cheap handoffs: break-even would be
	// tiny, but tiny batches still shouldn't spawn goroutines.
	tn := Derive(Calibration{HandoffNs: 10, EncryptNsPerToken: 10000, Procs: 2})
	if tn.EncryptMinBatch != 64 {
		t.Fatalf("EncryptMinBatch = %d, want floor 64", tn.EncryptMinBatch)
	}
}

func TestDeriveCapsEncryptWorkers(t *testing.T) {
	tn := Derive(Calibration{HandoffNs: 1000, EncryptNsPerToken: 100, Procs: 32})
	if tn.EncryptWorkers != maxEncryptWorkers {
		t.Fatalf("EncryptWorkers = %d, want cap %d", tn.EncryptWorkers, maxEncryptWorkers)
	}
	if tn.DetectShards != 32 {
		t.Fatalf("DetectShards = %d, want 32 (uncapped)", tn.DetectShards)
	}
}

func TestCalibrateSystemClockSane(t *testing.T) {
	// Small real probe: only sanity bounds, never exact values.
	cal := Calibrate(Options{Procs: 2, HandoffRounds: 64, SampleTokens: 256, Reps: 2})
	if cal.HandoffNs <= 0 || cal.HandoffNs > 1e7 {
		t.Fatalf("implausible HandoffNs %v", cal.HandoffNs)
	}
	if cal.EncryptNsPerToken <= 0 || cal.EncryptNsPerToken > 1e7 {
		t.Fatalf("implausible EncryptNsPerToken %v", cal.EncryptNsPerToken)
	}
	tn := Derive(cal)
	if tn.EncryptWorkers < 1 || tn.EncryptMinBatch < 64 {
		t.Fatalf("implausible tuning %+v", tn)
	}
}

func TestAutoCachesPerProcs(t *testing.T) {
	ResetAutoCache()
	defer ResetAutoCache()
	a := Auto()
	b := Auto()
	if a != b {
		t.Fatalf("Auto not cached: %+v vs %+v", a, b)
	}
	if a.Cal.Procs != EffectiveProcs() {
		t.Fatalf("Auto tuned for %d procs, effective is %d", a.Cal.Procs, EffectiveProcs())
	}
}

func TestDegenerateClockFallsBackToDefaults(t *testing.T) {
	// A frozen clock yields zero-length intervals; calibration must fall
	// back to its canonical defaults instead of dividing to zero.
	frozen := &fakeClock{t: t}
	for i := 0; i < 8; i++ {
		frozen.times = append(frozen.times, time.Unix(0, 0))
	}
	cal := Calibrate(Options{Clock: frozen, Procs: 2, HandoffRounds: 8, SampleTokens: 64, Reps: 2})
	if cal.HandoffNs != 1000 || cal.EncryptNsPerToken != 50 {
		t.Fatalf("degenerate-clock fallback = %+v, want HandoffNs 1000 / EncryptNsPerToken 50", cal)
	}
}
