package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved recursively from source; standard-library imports go
// through the stdlib source importer (binary Go distributions no longer
// ship export data, so "source" is the only compiler-independent mode).
// External imports are impossible by construction: the module has none.
//
// The loader is safe for concurrent use: LoadAll type-checks independent
// packages on parallel worker goroutines. Each package is built exactly
// once (singleflight entries under mu); the stdlib source importer is not
// concurrency-safe and is serialized behind stdMu. Workers that need a
// package another worker is building wait on its entry; a cross-worker
// wait cycle (only possible with a genuine import cycle) is detected by
// walking the waits map and reported as an error instead of deadlocking.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModulePath is the module path from go.mod (e.g. "repro").
	ModulePath string
	// RootDir is the directory containing go.mod.
	RootDir string
	// GoMinor is the minor version of the go.mod "go" directive (22 for
	// "go 1.22"); 0 when absent.
	GoMinor int

	std   types.Importer
	stdMu sync.Mutex

	mu         sync.Mutex
	entries    map[string]*loadEntry
	waits      map[int]string // worker id -> import path it is blocked on
	nextWorker int
}

// loadEntry is the singleflight slot of one package build.
type loadEntry struct {
	done  chan struct{}
	pkg   *Package
	err   error
	owner int // worker id building the package
}

// loadCtx is the per-worker load context: a worker id for deadlock
// detection and the import stack for cycle diagnostics.
type loadCtx struct {
	l     *Loader
	id    int
	stack []string
}

// Import implements types.Importer for one worker: module-internal imports
// resolve through the loader (recursively, possibly waiting on another
// worker), everything else through the serialized stdlib source importer.
func (ctx *loadCtx) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := ctx.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.loadPath(ctx, path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// NewLoader locates go.mod at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module, minor := parseModFile(string(data))
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	// The stdlib source importer consults go/build.Default; cgo-variant
	// files would drag the cgo tool into type-checking, so disable them for
	// a hermetic, pure-Go view of std.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: module,
		RootDir:    root,
		GoMinor:    minor,
		std:        importer.ForCompiler(fset, "source", nil),
		entries:    make(map[string]*loadEntry),
		waits:      make(map[int]string),
	}, nil
}

// parseModFile extracts the module path and go-directive minor version.
func parseModFile(src string) (module string, goMinor int) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.Trim(strings.TrimSpace(rest), `"`)
		} else if rest, ok := strings.CutPrefix(line, "go "); ok {
			parts := strings.SplitN(strings.TrimSpace(rest), ".", 3)
			if len(parts) >= 2 {
				if n, err := strconv.Atoi(parts[1]); err == nil {
					goMinor = n
				}
			}
		}
	}
	return module, goMinor
}

// Expand resolves package patterns to import paths. Supported forms:
// "./...", "dir/...", "./x/y", "x/y", and full import paths within the
// module. Directories named "testdata", hidden directories, and directories
// without non-test Go files are skipped.
func (l *Loader) Expand(patterns ...string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		if rest, ok := strings.CutPrefix(pat, l.ModulePath); ok && (rest == "" || rest[0] == '/') {
			pat = "." + rest
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := filepath.Join(l.RootDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if ip, ok := l.dirImportPath(dir); ok {
				add(ip)
				continue
			}
			return nil, fmt.Errorf("lint: no Go package in %s", dir)
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if ip, ok := l.dirImportPath(path); ok {
				add(ip)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps a directory inside the module to its import path,
// requiring at least one non-test Go file.
func (l *Loader) dirImportPath(dir string) (string, bool) {
	if len(l.goFiles(dir)) == 0 {
		return "", false
	}
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}

// goFiles lists the non-test .go files of dir in lexical order.
func (l *Loader) goFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files
}

// Load parses and type-checks the package with the given module import
// path, reusing prior work.
func (l *Loader) Load(importPath string) (*Package, error) {
	return l.loadPath(l.newCtx(), importPath)
}

// LoadAll loads every listed package, fanning independent packages out to
// up to `workers` goroutines (capped at the core count; <= 0 means the
// cap). Results keep the input order. Shared dependencies are built exactly
// once regardless of which worker gets there first.
func (l *Loader) LoadAll(paths []string, workers int) ([]*Package, error) {
	if max := runtime.NumCPU(); workers <= 0 || workers > max {
		workers = max
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	pkgs := make([]*Package, len(paths))
	errs := make([]error, len(paths))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p string) {
			defer func() { <-sem; wg.Done() }()
			pkgs[i], errs[i] = l.Load(p)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", paths[i], err)
		}
	}
	return pkgs, nil
}

// newCtx allocates a load context with a fresh worker id.
func (l *Loader) newCtx() *loadCtx {
	l.mu.Lock()
	l.nextWorker++
	id := l.nextWorker
	l.mu.Unlock()
	return &loadCtx{l: l, id: id}
}

// loadPath resolves an import path to its directory and builds it.
func (l *Loader) loadPath(ctx *loadCtx, importPath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return l.loadDir(ctx, filepath.Join(l.RootDir, filepath.FromSlash(rel)), importPath)
}

// LoadDir loads the package in dir under the given import path. It also
// serves testdata fixture packages, which Expand deliberately skips.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(l.newCtx(), dir, importPath)
}

// loadDir is the singleflight core: the first worker to ask for a package
// builds it, everyone else waits on its entry. Before blocking, the waiter
// walks the owner chain through the waits map; finding itself there means
// a genuine import cycle spans workers, which is reported instead of
// deadlocking.
func (l *Loader) loadDir(ctx *loadCtx, dir, importPath string) (*Package, error) {
	l.mu.Lock()
	if e, ok := l.entries[importPath]; ok {
		select {
		case <-e.done: // already built
			l.mu.Unlock()
			return e.pkg, e.err
		default:
		}
		if e.owner == ctx.id {
			l.mu.Unlock()
			return nil, fmt.Errorf("lint: import cycle through %s (via %s)",
				importPath, strings.Join(ctx.stack, " -> "))
		}
		cur := e.owner
		for i := 0; i < len(l.entries)+1; i++ {
			next, waiting := l.waits[cur]
			if !waiting {
				break
			}
			ne, ok := l.entries[next]
			if !ok {
				break
			}
			if ne.owner == ctx.id {
				l.mu.Unlock()
				return nil, fmt.Errorf("lint: import cycle through %s (across concurrent loads)", importPath)
			}
			cur = ne.owner
		}
		l.waits[ctx.id] = importPath
		l.mu.Unlock()
		<-e.done
		l.mu.Lock()
		delete(l.waits, ctx.id)
		l.mu.Unlock()
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{}), owner: ctx.id}
	l.entries[importPath] = e
	l.mu.Unlock()

	ctx.stack = append(ctx.stack, importPath)
	e.pkg, e.err = l.build(ctx, dir, importPath)
	ctx.stack = ctx.stack[:len(ctx.stack)-1]
	close(e.done)
	return e.pkg, e.err
}

// build parses and type-checks one package (exactly once per import path).
func (l *Loader) build(ctx *loadCtx, dir, importPath string) (*Package, error) {
	files := l.goFiles(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var asts []*ast.File
	for _, f := range files {
		a, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, a)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      asts,
		Info:       info,
	}
	conf := types.Config{
		Importer: ctx,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Pkg = tpkg
	return pkg, nil
}
