package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsStats forbids hand-rolled statistics counters — struct fields of the
// sync/atomic integer types whose names read like pipeline statistics —
// outside internal/obs. Such fields inevitably drift from the /metrics
// exposition: the middlebox once kept a private atomic stats struct that a
// scrape could never see. Stats belong in an obs.Counter or obs.Gauge
// registered against the catalog, so Stats()-style snapshots and the admin
// endpoint read the same cells. Atomic fields that are not statistics
// (sequence generators, state flags) are exempt by name.
type ObsStats struct {
	allow []string
}

// NewObsStats builds the rule with the given allowlisted import paths
// (exact match or path prefix); internal/obs itself is the expected entry.
func NewObsStats(allow []string) *ObsStats { return &ObsStats{allow: allow} }

// ID implements Rule.
func (r *ObsStats) ID() string { return "obs-stats" }

// Doc implements Rule.
func (r *ObsStats) Doc() string {
	return "atomic struct fields named like pipeline statistics belong in internal/obs (Counter/Gauge)"
}

// statWords are identifier words that mark an atomic field as a statistic.
// "connSeq" passes (neither word is a statistic); "tokensScanned" fires.
var statWords = map[string]bool{
	"alert": true, "alerts": true,
	"blocked": true,
	"bytes":   true,
	"conns":   true, "connections": true,
	"count": true, "counts": true,
	"drops": true, "dropped": true,
	"errs": true, "errors": true,
	"events":  true,
	"hits":    true,
	"keys":    true,
	"matches": true,
	"packets": true,
	"records": true,
	"scanned": true,
	"tokens":  true,
	"total":   true, "totals": true,
}

// Check implements Rule.
func (r *ObsStats) Check(pkg *Package, report Reporter) {
	for _, a := range r.allow {
		if pkg.ImportPath == a || strings.HasPrefix(pkg.ImportPath, a+"/") {
			return
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !isAtomicInt(typeOf(pkg.Info, field.Type)) {
					continue
				}
				for _, name := range field.Names {
					if w := statWord(name.Name); w != "" {
						report(name, "atomic stat field %q (%q): register an obs.Counter or obs.Gauge so /metrics sees it", name.Name, w)
					}
				}
			}
			return true
		})
	}
}

// isAtomicInt reports whether t is one of sync/atomic's integer types.
func isAtomicInt(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr":
		return true
	}
	return false
}

// statWord returns the first statistic-word in ident, or "".
func statWord(ident string) string {
	for _, w := range splitWords(ident) {
		if statWords[w] {
			return w
		}
	}
	return ""
}

var _ Rule = (*ObsStats)(nil)
