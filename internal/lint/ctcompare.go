package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CTCompare flags variable-time comparisons (==, !=, bytes.Equal,
// bytes.Compare) on values that BlindBox treats as secret: wire labels,
// token keys, MACs and session keys. A timing side channel on any of these
// breaks the §3.1/§3.3 security argument, so comparisons must go through
// crypto/subtle.ConstantTimeCompare or hmac.Equal.
//
// A value counts as secret when
//   - its type is a named byte-array/slice type (or a struct containing
//     one) declared in one of the crypto packages (internal/bbcrypto,
//     internal/dpienc, internal/detect, internal/garble, internal/ot), or
//   - its type is byte-sequence-like and its identifier contains a secret
//     word (key, secret, mac, tag, label, kssl, krand, seed).
//
// Comparisons of public values (e.g. DPIEnc ciphertexts in the detection
// index, garbled tables in transcript equality checks) are intentionally
// variable-time; suppress them with a //lint:ignore ct-compare <why>.
type CTCompare struct {
	secretPkgs map[string]bool
}

// secretWords are identifier words that mark byte material as secret.
var secretWords = map[string]bool{
	"key": true, "keys": true, "secret": true, "secrets": true,
	"mac": true, "macs": true, "tag": true, "tags": true,
	"label": true, "labels": true, "kssl": true, "krand": true,
	"seed": true, "seeds": true,
}

// NewCTCompare builds the rule for a module. modulePath anchors the
// crypto-package set (modulePath + "/internal/bbcrypto", ...).
func NewCTCompare(modulePath string) *CTCompare {
	r := &CTCompare{secretPkgs: make(map[string]bool)}
	for _, p := range []string{"bbcrypto", "dpienc", "detect", "garble", "ot"} {
		r.secretPkgs[modulePath+"/internal/"+p] = true
	}
	return r
}

// ID implements Rule.
func (r *CTCompare) ID() string { return "ct-compare" }

// Doc implements Rule.
func (r *CTCompare) Doc() string {
	return "secret byte material must be compared in constant time (crypto/subtle, hmac.Equal)"
}

// Check implements Rule.
func (r *CTCompare) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				// x != nil is a presence check, not a content comparison.
				if isNilExpr(pkg.Info, v.X) || isNilExpr(pkg.Info, v.Y) {
					return true
				}
				if why, hit := r.secretOperand(pkg, v.X, v.Y); hit {
					report(v, "variable-time %s on %s; use crypto/subtle.ConstantTimeCompare or hmac.Equal", v.Op, why)
				}
			case *ast.CallExpr:
				obj := calleeObj(pkg.Info, v)
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "bytes" {
					return true
				}
				if fn.Name() != "Equal" && fn.Name() != "Compare" {
					return true
				}
				if why, hit := r.secretOperand(pkg, v.Args...); hit {
					report(v, "bytes.%s on %s is variable-time; use crypto/subtle.ConstantTimeCompare or hmac.Equal", fn.Name(), why)
				}
			}
			return true
		})
	}
}

// secretOperand reports whether any operand is secret material, and why.
func (r *CTCompare) secretOperand(pkg *Package, ops ...ast.Expr) (string, bool) {
	for _, op := range ops {
		t := typeOf(pkg.Info, op)
		if t == nil || isUntypedNil(t) {
			continue
		}
		if named := r.secretType(t, nil); named != "" {
			return "value of secret type " + named, true
		}
		if isByteSeq(t) || containsByteArray(t, nil) {
			name := exprName(op)
			for _, w := range splitWords(name) {
				if secretWords[w] {
					return "secret-named value " + name, true
				}
			}
		}
	}
	return "", false
}

// secretType returns the name of the first named byte-carrying type from a
// crypto package found in t, or "".
func (r *CTCompare) secretType(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && r.secretPkgs[obj.Pkg().Path()] && containsByteArray(t, nil) {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := r.secretType(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return r.secretType(u.Elem(), seen)
	}
	return ""
}

// containsByteArray reports whether t transitively contains a byte array or
// byte slice by value.
func containsByteArray(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if isByteSeq(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsByteArray(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsByteArray(u.Elem(), seen)
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || info.Uses[id] == nil
}
