package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexCopy flags locks passed by value: function parameters, results and
// method receivers whose type is (or transitively contains, by value) a
// sync.Mutex, RWMutex, WaitGroup, Once, Cond or Map. A copied lock guards
// nothing; in the middlebox's per-connection state that turns into silent
// data races under load.
type MutexCopy struct{}

// ID implements Rule.
func (r *MutexCopy) ID() string { return "mutex-copy" }

// Doc implements Rule.
func (r *MutexCopy) Doc() string {
	return "sync primitives must be passed by pointer, never copied by value"
}

// Check implements Rule.
func (r *MutexCopy) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			if fd.Type.Results != nil {
				fields = append(fields, fd.Type.Results.List...)
			}
			for _, field := range fields {
				t := typeOf(pkg.Info, field.Type)
				if t == nil {
					continue
				}
				if lock := lockIn(t, nil); lock != "" {
					report(field, "%s is passed by value and carries %s; pass a pointer", fieldDisplay(field), lock)
				}
			}
		}
	}
}

// lockIn returns the name of a sync primitive held by value inside t, or "".
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if l := lockIn(u.Field(i).Type(), seen); l != "" {
				return l
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

func fieldDisplay(field *ast.Field) string {
	if len(field.Names) > 0 {
		return "parameter " + field.Names[0].Name
	}
	return "parameter"
}

// LoopCapture flags `go func(){...}()` inside a loop when the function
// literal captures the loop variable without rebinding it or passing it as
// an argument. Before Go 1.22 every iteration shares one variable, so all
// goroutines observe the final value. The rule disables itself when the
// module's go directive is >= 1.22 (per-iteration variables), but stays in
// the catalog for fixtures and for modules pinned to older semantics.
type LoopCapture struct {
	// GoMinor is the go.mod directive's minor version; >= 22 disables the
	// rule.
	GoMinor int
}

// ID implements Rule.
func (r *LoopCapture) ID() string { return "loop-capture" }

// Doc implements Rule.
func (r *LoopCapture) Doc() string {
	return "goroutines in loops must not capture the loop variable (pre-1.22 semantics)"
}

// Check implements Rule.
func (r *LoopCapture) Check(pkg *Package, report Reporter) {
	if r.GoMinor >= 22 {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loopVars := make(map[types.Object]string)
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pkg.Info.Defs[id]; obj != nil {
							loopVars[obj] = id.Name
						}
					}
				}
				body = loop.Body
			case *ast.ForStmt:
				if init, ok := loop.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pkg.Info.Defs[id]; obj != nil {
								loopVars[obj] = id.Name
							}
						}
					}
				}
				body = loop.Body
			default:
				return true
			}
			if len(loopVars) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				g, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(lit.Body, func(u ast.Node) bool {
					id, ok := u.(*ast.Ident)
					if !ok {
						return true
					}
					if name, captured := loopVars[pkg.Info.Uses[id]]; captured {
						report(id, "goroutine captures loop variable %s; pass it as an argument or rebind it (pre-1.22 loops share one variable)", name)
						return false
					}
					return true
				})
				return true
			})
			return true
		})
	}
}

// ChanLeak flags sends on an unbuffered channel that is local to one
// function and has no receiver anywhere in that function: the sending
// goroutine blocks forever. The check is deliberately conservative — any
// use that lets the channel escape (call argument, return, assignment,
// struct field, select send) disables it.
type ChanLeak struct{}

// ID implements Rule.
func (r *ChanLeak) ID() string { return "chan-leak" }

// Doc implements Rule.
func (r *ChanLeak) Doc() string {
	return "sends on a function-local unbuffered channel need a receiver in scope"
}

// Check implements Rule.
func (r *ChanLeak) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkFunc(pkg, fd.Body, report)
		}
	}
}

// chanUse tallies how one local channel is used within its function.
type chanUse struct {
	firstSend ast.Node
	sends     int
	receives  int
	escapes   bool
}

func (r *ChanLeak) checkFunc(pkg *Package, body *ast.BlockStmt, report Reporter) {
	// 1. Collect unbuffered channels created with ch := make(chan T).
	local := make(map[types.Object]*chanUse)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fn.Name != "make" {
				continue
			}
			if _, builtin := pkg.Info.Uses[fn].(*types.Builtin); !builtin {
				continue
			}
			if _, isChan := typeOf(pkg.Info, call).(*types.Chan); !isChan {
				continue
			}
			if len(call.Args) >= 2 && !isZeroConst(pkg.Info, call.Args[1]) {
				continue // buffered channel: sends may legitimately complete
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pkg.Info.Defs[id]; obj != nil {
					local[obj] = &chanUse{}
				}
			}
		}
		return true
	})
	if len(local) == 0 {
		return
	}

	// 2. Classify every use with a parent/ancestor stack.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if use, tracked := local[pkg.Info.Uses[id]]; tracked {
				r.classify(id, stack, use, n)
			}
		}
		stack = append(stack, n)
		return true
	})

	for _, use := range local {
		if use.sends > 0 && use.receives == 0 && !use.escapes {
			report(use.firstSend, "send on unbuffered channel with no receiver in this function; the goroutine blocks forever")
		}
	}
}

// classify folds one identifier use into the channel's tally. stack holds
// the ancestors of id (nearest last).
func (r *ChanLeak) classify(id *ast.Ident, stack []ast.Node, use *chanUse, n ast.Node) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	inSelect := func() bool {
		for i := len(stack) - 1; i >= 0; i-- {
			if _, ok := stack[i].(*ast.CommClause); ok {
				return true
			}
		}
		return false
	}
	switch p := parent.(type) {
	case *ast.SendStmt:
		if p.Chan != ast.Expr(id) {
			use.escapes = true // the channel is the sent value
			return
		}
		if inSelect() {
			// A select send may have a default or other ready case; not a
			// guaranteed block.
			use.escapes = true
			return
		}
		use.sends++
		if use.firstSend == nil {
			use.firstSend = p
		}
	case *ast.UnaryExpr:
		if p.Op == token.ARROW {
			use.receives++
		} else {
			use.escapes = true
		}
	case *ast.RangeStmt:
		if p.X == ast.Expr(id) {
			use.receives++
		} else {
			use.escapes = true
		}
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			switch fn.Name {
			case "close", "len", "cap":
				return // neutral
			}
		}
		use.escapes = true
	case *ast.BinaryExpr:
		// Comparisons (ch == nil) are neutral.
	default:
		use.escapes = true
	}
}

// isZeroConst reports whether e is the constant 0.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

var (
	_ Rule = (*MutexCopy)(nil)
	_ Rule = (*LoopCapture)(nil)
	_ Rule = (*ChanLeak)(nil)
	_ Rule = (*TodoPanic)(nil)
)
