package lint

import (
	"go/ast"
	"strings"
)

// ExportedDoc requires a doc comment on every exported top-level
// identifier: functions, methods of exported types, types, constants and
// variables. The repository's API contracts — which goroutine may call
// what, which errors are typed, what a zero value means — live in godoc,
// not in the type system; an undocumented export is a contract the next
// caller has to reverse-engineer. Methods of unexported types are skipped
// (they are not part of the importable API), as is package main (no
// importable API at all). A const or var group is satisfied by a doc
// comment on the group, a doc comment on the spec, or a trailing comment
// on the spec's line.
type ExportedDoc struct {
	include []string
}

// NewExportedDoc builds the rule scoped to the given import paths (exact
// match or path prefix); pass the module path to cover the whole tree.
func NewExportedDoc(include []string) *ExportedDoc { return &ExportedDoc{include: include} }

// ID implements Rule.
func (r *ExportedDoc) ID() string { return "exported-doc" }

// Doc implements Rule.
func (r *ExportedDoc) Doc() string {
	return "exported identifiers need doc comments stating their contract"
}

// Check implements Rule.
func (r *ExportedDoc) Check(pkg *Package, report Reporter) {
	if pkg.Pkg != nil && pkg.Pkg.Name() == "main" {
		return
	}
	included := false
	for _, in := range r.include {
		if pkg.ImportPath == in || strings.HasPrefix(pkg.ImportPath, in+"/") {
			included = true
			break
		}
	}
	if !included {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				r.checkFunc(d, report)
			case *ast.GenDecl:
				r.checkGen(d, report)
			}
		}
	}
}

// checkFunc reports an exported function or method without a doc comment.
func (r *ExportedDoc) checkFunc(fd *ast.FuncDecl, report Reporter) {
	if !fd.Name.IsExported() || hasDoc(fd.Doc) {
		return
	}
	if fd.Recv != nil {
		base, ok := receiverBase(fd.Recv)
		if !ok || !ast.IsExported(base) {
			return
		}
		report(fd.Name, "exported method %s.%s has no doc comment", base, fd.Name.Name)
		return
	}
	report(fd.Name, "exported function %s has no doc comment", fd.Name.Name)
}

// checkGen reports exported type, const and var specs that have neither a
// group doc, a spec doc, nor a trailing spec comment.
func (r *ExportedDoc) checkGen(d *ast.GenDecl, report Reporter) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) {
				report(s.Name, "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name, "exported %s has no doc comment", name.Name)
				}
			}
		}
	}
}

// receiverBase extracts the receiver's base type name.
func receiverBase(recv *ast.FieldList) (string, bool) {
	if recv == nil || len(recv.List) != 1 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, true
		default:
			return "", false
		}
	}
}

// hasDoc reports whether cg carries any comment text.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

var _ Rule = (*ExportedDoc)(nil)
