// Package secretflow exercises the secret-flow taint rule: every finding in
// this file is a declared secret reaching a log, error, or transport sink,
// including flows that pass through appends, Sprintf/Errorf chains, and
// same-package helpers.
package secretflow

import (
	"fmt"
	"log"
	"log/slog"
	"net"

	"repro/internal/bbcrypto"
)

// Session holds the per-connection detection state.
type Session struct {
	// Key is the DPIEnc session key.
	Key []byte //bb:secret
	// Peer is the public remote address.
	Peer string
}

// badDirectLog logs an annotated secret field directly.
func badDirectLog(s *Session) {
	slog.Info("session up", "key", s.Key)
}

// badSprintfChain pushes the key through fmt.Errorf and two assignments
// before it reaches slog: the taint follows the wrapping.
func badSprintfChain(s *Session) {
	err := fmt.Errorf("bad key %x", s.Key)
	wrapped := fmt.Errorf("handshake setup: %w", err)
	slog.Error("handshake failed", "err", wrapped)
}

// badSprintf formats the key into a string and logs it.
func badSprintf(s *Session) {
	line := fmt.Sprintf("key=%x", s.Key)
	slog.Warn("debug", "line", line)
}

// badAppend smuggles the key into a log line through append.
func badAppend(s *Session) {
	buf := append([]byte("key="), s.Key...)
	log.Printf("debug: %s", buf)
}

// badConnWrite writes raw key material to the network instead of the
// DPIEnc ciphertext path.
func badConnWrite(s *Session, c net.Conn) {
	_, _ = c.Write(s.Key)
}

// badErrorEscape returns an error carrying the key; errors end up in logs.
func badErrorEscape(s *Session) error {
	return fmt.Errorf("rejected key %x", s.Key)
}

// badHelper leaks through a same-package helper: logBytes's summary says
// its parameter reaches a log sink, so passing the key is reported here.
func badHelper(s *Session) {
	logBytes(s.Key)
}

// logBytes logs whatever it is handed; harmless until a secret arrives.
func logBytes(b []byte) {
	slog.Debug("bytes", "b", b)
}

// badBuiltinType leaks a field of the built-in secret type: every
// bbcrypto.SessionKeys value is secret without any annotation.
func badBuiltinType(keys bbcrypto.SessionKeys) {
	slog.Info("derived", "k", keys.K)
}
