// Clean counterparts: public values may be logged, and Encrypt* (or
// //bb:sanitizer) results are the designated ciphertexts — taint stops there.
package secretflow

import (
	"fmt"
	"log/slog"
	"net"
)

// goodPublicLog logs only public session fields.
func goodPublicLog(s *Session) {
	slog.Info("session up", "peer", s.Peer)
}

// goodSanitized sends and logs ciphertext: EncryptToken's name marks it a
// sanitizer, so its result is untainted even though the key went in.
func goodSanitized(s *Session, c net.Conn) {
	ct := EncryptToken(s.Key)
	_, _ = c.Write(ct)
	slog.Debug("sent", "ct_len", len(ct))
}

// goodAnnotatedSanitizer uses an explicitly annotated sanitizer instead of
// the Encrypt* name rule.
func goodAnnotatedSanitizer(s *Session) {
	slog.Info("key loaded", "fingerprint", fingerprint(s.Key))
}

// goodErrNoSecret returns an error built from public data only.
func goodErrNoSecret(s *Session) error {
	return fmt.Errorf("session with %s failed", s.Peer)
}

// EncryptToken stands in for the DPIEnc encryption path; the Encrypt name
// prefix marks its result as sanctioned ciphertext.
func EncryptToken(key []byte) []byte {
	out := make([]byte, len(key))
	for i, b := range key {
		out[i] = b ^ 0x5a
	}
	return out
}

// fingerprint folds key material down to a loggable byte.
//
//bb:sanitizer
func fingerprint(key []byte) byte {
	var f byte
	for _, b := range key {
		f ^= b
	}
	return f
}
