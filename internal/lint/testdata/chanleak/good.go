package chanleak

func goodReceived() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{}
	}()
	<-done
}

func goodBuffered() error {
	errs := make(chan error, 1)
	errs <- nil
	return <-errs
}

func goodEscapes(hand func(chan<- int)) {
	ch := make(chan int)
	hand(ch)
	ch <- 1
}
