// Package chanleak exercises the chan-leak rule: the receiver-less send in
// bad.go must fire; the received, buffered and escaping forms in good.go
// must not.
package chanleak

func bad() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{}
	}()
}
