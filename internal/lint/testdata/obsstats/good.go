package obsstats

import "sync/atomic"

// Non-statistic atomics are exempt: sequence generators, state flags, and
// plain (non-atomic) integers a mutex already guards.
type connTable struct {
	connSeq  atomic.Uint64 // flow ID generator, not a count
	shutdown atomic.Bool
	epoch    atomic.Int64
}

// A suppressed statistic with a reason also passes.
type legacy struct {
	//lint:ignore obs-stats pre-obs snapshot format kept for on-disk compatibility
	tokens atomic.Uint64
}

func goodTouch(c *connTable, l *legacy) uint64 {
	c.shutdown.Store(true)
	return c.connSeq.Add(1) + uint64(c.epoch.Load()) + l.tokens.Load()
}
