// Package obsstats exercises the obs-stats rule: every atomic field below
// is a hand-rolled statistic and must fire; good.go holds the exempt forms.
package obsstats

import "sync/atomic"

type middleboxStats struct {
	tokens  atomic.Uint64
	bytes   atomic.Uint64
	alerts  atomic.Uint64
	blocked atomic.Uint32
}

type flowState struct {
	errCount   atomic.Int64
	bytesTotal atomic.Uint64
}

func touch(s *middleboxStats, f *flowState) uint64 {
	s.tokens.Add(1)
	f.errCount.Add(1)
	return s.bytes.Load() + f.bytesTotal.Load() + uint64(s.alerts.Load()) + uint64(s.blocked.Load())
}
