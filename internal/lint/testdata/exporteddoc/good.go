package exporteddoc

// Gadget is documented, as is its exported method.
type Gadget struct{}

// Twirl is documented.
func (g Gadget) Twirl() int { return widgetSpin }

// Spin bounds, documented as a group.
const (
	MaxSpin = 1
	MinSpin = 0
)

// TrailingDoc is documented by this spec doc comment.
var TrailingDoc = 1

const widgetSpin = 2 // unexported: no doc required

type hidden struct{}

// Exported methods of unexported types are outside the importable API.
func (hidden) Exported() int { return widgetSpin }

func helper() int { return widgetSpin }

var _ = helper
