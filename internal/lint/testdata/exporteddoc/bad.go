// Package exporteddoc exercises the exported-doc rule: every exported
// top-level identifier must carry a doc comment.
package exporteddoc

type Widget struct{}

func (w Widget) Spin() int { return widgetSpin }

func Run() int { return widgetSpin }

const Limit = 3

var Registry = map[string]int{}

const (
	ModeA = iota
	ModeB
)
