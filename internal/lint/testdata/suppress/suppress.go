// Package suppress exercises the //lint:ignore machinery: justified
// directives silence their finding, while unused and malformed directives
// are themselves reported under the lint-directive pseudo-rule.
package suppress

import "log/slog"

func lineAbove() {
	//lint:ignore todo-panic fixture demonstrating a justified suppression
	panic("suppressed by the directive on the previous line")
}

func sameLine() {
	panic("suppressed") //lint:ignore todo-panic fixture demonstrating same-line suppression
}

//lint:ignore weak-rand this directive matches no finding and must be reported
var unused = 0

//lint:ignore
var malformed = 0

// token is pre-encryption plaintext used by the secret-flow cases below.
var token = []byte("keyword") //bb:secret

// secretSuppressed demonstrates a justified secret-flow suppression: the
// directive names the rule and gives a reason, so the flow is silent.
func secretSuppressed() {
	//lint:ignore secret-flow fixture demonstrating a reviewed, accepted flow
	slog.Info("rule token", "t", token)
}

//lint:ignore secret-flow this directive matches no finding and must be reported
var unusedSecret = 0

// hotSuppressed demonstrates a justified hotpath-alloc suppression on an
// amortized append.
//
//bb:hotpath
func hotSuppressed(in []byte, out []int) []int {
	for i := range in {
		//lint:ignore hotpath-alloc fixture: growth amortizes to steady-state capacity
		out = append(out, i)
	}
	return out
}

//lint:ignore hotpath-alloc this directive matches no finding and must be reported
var unusedHotpath = 0
