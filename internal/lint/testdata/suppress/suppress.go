// Package suppress exercises the //lint:ignore machinery: justified
// directives silence their finding, while unused and malformed directives
// are themselves reported under the lint-directive pseudo-rule.
package suppress

func lineAbove() {
	//lint:ignore todo-panic fixture demonstrating a justified suppression
	panic("suppressed by the directive on the previous line")
}

func sameLine() {
	panic("suppressed") //lint:ignore todo-panic fixture demonstrating same-line suppression
}

//lint:ignore weak-rand this directive matches no finding and must be reported
var unused = 0

//lint:ignore
var malformed = 0
