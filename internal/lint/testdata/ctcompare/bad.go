// Package ctcompare exercises the ct-compare rule: bad.go must fire on
// every comparison, good.go must stay silent.
package ctcompare

import (
	"bytes"

	"repro/internal/bbcrypto"
)

// badTyped compares a named secret type from a crypto package.
func badTyped(a, b bbcrypto.Block) bool {
	return a == b
}

// badEqual uses bytes.Equal on secret-named byte slices.
func badEqual(macA, macB []byte) bool {
	return bytes.Equal(macA, macB)
}

// badCompare uses bytes.Compare on secret-named byte slices.
func badCompare(tagA, tagB []byte) int {
	return bytes.Compare(tagA, tagB)
}

// badNamed compares secret-named byte arrays with !=.
func badNamed(sessionKey, candidate [16]byte) bool {
	return sessionKey != candidate
}
