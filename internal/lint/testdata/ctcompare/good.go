package ctcompare

import (
	"crypto/hmac"
	"crypto/subtle"

	"repro/internal/bbcrypto"
)

// goodSubtle is the required constant-time idiom for secret types.
func goodSubtle(a, b bbcrypto.Block) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// goodHMAC is the other accepted constant-time idiom.
func goodHMAC(macA, macB []byte) bool {
	return hmac.Equal(macA, macB)
}

// goodPublic compares byte material that is neither secret-typed nor
// secret-named.
func goodPublic(bufA, bufB [4]byte) bool {
	return bufA == bufB
}

// goodNil is a presence check, not a content comparison.
func goodNil(key []byte) bool {
	return key != nil
}
