// Package hotpathalloc exercises the hotpath-alloc rule: functions
// annotated //bb:hotpath must not contain per-call heap allocation
// constructs.
package hotpathalloc

// badAppend is the per-token scan loop growing its result slice per call.
//
//bb:hotpath
func badAppend(in []byte) []int {
	var hits []int
	for i, b := range in {
		if b == 0 {
			hits = append(hits, i)
		}
	}
	return hits
}

// badMake allocates a fresh scratch buffer on every call.
//
//bb:hotpath
func badMake(in []byte) int {
	buf := make([]byte, 64)
	return len(buf) + len(in)
}

// badLiterals builds a slice literal and a map literal per call.
//
//bb:hotpath
func badLiterals(b byte) int {
	lut := []int{1, 2, 4}
	seen := map[byte]bool{b: true}
	return lut[0] + len(seen)
}

// badClosure allocates a closure per call.
//
//bb:hotpath
func badClosure(n int) int {
	f := func(x int) int { return x + 1 }
	return f(n)
}

// badConvert copies the token bytes into a fresh string per call.
//
//bb:hotpath
func badConvert(tok []byte) string {
	return string(tok)
}

// badBox boxes an int into an interface argument per call.
//
//bb:hotpath
func badBox(n int) {
	record(n)
}

// record is a cold-path helper taking an interface.
func record(v any) { _ = v }

// badRing is a flight-recorder ring append that reallocates the ring and
// re-stamps the trace string per recorded span — the constructs the real
// recorder's record path must avoid.
//
//bb:hotpath
func badRing(ring []span, next int, sp span, id [16]byte) []span {
	ring = append(ring, sp)
	ring[next].trace = string(id[:])
	return ring
}

// span is a sample record for the ring fixtures.
type span struct {
	trace string
	n     int
}
