// Clean counterparts: pooled/preallocated buffers, pointer-shaped interface
// arguments, and unannotated cold paths are all fine.
package hotpathalloc

// goodPooled is the pooled-buffer variant of badAppend: the caller owns a
// preallocated hit buffer reused across calls, so the scan writes by index
// and never allocates.
//
//bb:hotpath
func goodPooled(in []byte, dst []int) int {
	n := 0
	for i, b := range in {
		if b == 0 && n < len(dst) {
			dst[n] = i
			n++
		}
	}
	return n
}

// goodPointer passes a pointer through an interface parameter:
// pointer-shaped values do not box.
//
//bb:hotpath
func goodPointer(ev *event) {
	record(ev)
}

// event is a sample payload for goodPointer.
type event struct{ n int }

// coldAppend allocates freely: it is not annotated, so the rule ignores it.
func coldAppend(in []byte) []string {
	out := make([]string, 0, len(in))
	for range in {
		out = append(out, "hit")
	}
	return out
}

// goodRing is the real recorder's shape: a fixed-capacity ring written by
// index (a struct copy into a preallocated slot) with the trace string
// cached once outside the hot path.
//
//bb:hotpath
func goodRing(ring []span, next int, sp span, cached string) int {
	sp.trace = cached
	ring[next] = sp
	next++
	if next == len(ring) {
		next = 0
	}
	return next
}
