package loopcapture

func goodRebind(items []int, out chan<- int) {
	for _, v := range items {
		v := v
		go func() {
			out <- v
		}()
	}
}

func goodArg(items []int, out chan<- int) {
	for _, v := range items {
		go func(v int) {
			out <- v
		}(v)
	}
}
