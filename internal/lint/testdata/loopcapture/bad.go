// Package loopcapture exercises the loop-capture rule (forced on in the
// fixture test with GoMinor < 22): the shared-variable capture in bad.go
// must fire, the rebinding and argument-passing forms in good.go must not.
package loopcapture

func bad(items []int, out chan<- int) {
	for _, v := range items {
		go func() {
			out <- v
		}()
	}
}
