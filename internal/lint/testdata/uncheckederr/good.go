package uncheckederr

import (
	"fmt"
	"io"
	"strings"
)

func good(w io.Writer, c io.Closer) error {
	if _, err := w.Write([]byte("checked")); err != nil {
		return err
	}
	_, _ = w.Write([]byte("explicitly discarded"))
	defer c.Close()
	var b strings.Builder
	b.WriteString("strings.Builder is documented never to fail")
	fmt.Fprintf(w, "the fmt print family is exempt: %s", b.String())
	return nil
}
