// Package uncheckederr exercises the unchecked-err rule: both dropped
// errors in bad.go must fire, none of the forms in good.go may.
package uncheckederr

import "io"

func bad(w io.Writer, c io.Closer) {
	w.Write([]byte("dropped"))
	c.Close()
}
