package todopanic

func mustPositive(n int) int {
	if n <= 0 {
		panic("mustPositive: non-positive input")
	}
	return n
}

func Checked(n int) (int, error) {
	return mustPositive(n), nil
}
