// Package todopanic exercises the todo-panic rule: the bare library panic
// in bad.go must fire, the must* helper in good.go must not.
package todopanic

func Bad(n int) int {
	if n < 0 {
		panic("todo: negative input")
	}
	return n
}
