package mutexcopy

import "sync"

func good(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func goodStruct(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
