// Package mutexcopy exercises the mutex-copy rule: both by-value lock
// parameters in bad.go must fire, the pointer forms in good.go must not.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func bad(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func badStruct(g guarded) int {
	return g.n
}
