package weakrand

import "crypto/rand"

func good(p []byte) error {
	_, err := rand.Read(p)
	return err
}
