// Package weakrand exercises the weak-rand rule: the math/rand import in
// bad.go must fire, the crypto/rand import in good.go must not.
package weakrand

import "math/rand"

func bad() int {
	return rand.Int()
}
