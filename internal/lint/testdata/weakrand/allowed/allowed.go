// Package allowed is on the weak-rand allowlist in the fixture test, the
// way internal/corpus and internal/experiments are in the default rule
// set: workload synthesis legitimately wants fast seeded randomness.
package allowed

import "math/rand"

func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
