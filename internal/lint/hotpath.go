package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathAnnotation marks a function as a zero-allocation hot path.
const hotpathAnnotation = "//bb:hotpath"

// HotPathAlloc rejects per-call heap allocation constructs in functions
// annotated //bb:hotpath — the per-token detect/encrypt loops whose
// allocation churn the ROADMAP's zero-alloc item targets (BENCH_pipeline
// showed parallel encrypt losing to sequential purely on buffer churn).
//
// Flagged constructs, each of which forces (or in append's case, risks)
// a heap allocation on every call:
//
//   - append — growth reallocates; hot paths must use pooled or
//     preallocated buffers sized up front,
//   - make and map/slice literals — fresh backing store per call,
//   - func literals — closures capture by reference and escape,
//   - string(byteslice) / []byte(string) conversions — always copy,
//   - interface boxing of non-pointer-shaped values (passing or assigning
//     an int, struct, slice or string into an interface allocates the
//     boxed copy; pointers, maps, chans and funcs are exempt because they
//     are already pointer-shaped).
//
// Amortized allocations that a human has reasoned about (e.g. an append
// into a reused scratch buffer that reaches steady-state capacity) are
// suppressed in source with //lint:ignore hotpath-alloc <reason>.
type HotPathAlloc struct{}

// ID implements Rule.
func (r *HotPathAlloc) ID() string { return "hotpath-alloc" }

// Doc implements Rule.
func (r *HotPathAlloc) Doc() string {
	return "//bb:hotpath functions must not contain per-call heap allocation constructs"
}

// Check implements Rule.
func (r *HotPathAlloc) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			r.checkBody(pkg, fd.Body, report)
		}
	}
}

// isHotPath reports whether the function carries a //bb:hotpath annotation.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathAnnotation) {
			return true
		}
	}
	return false
}

// checkBody walks one hot-path body reporting allocation constructs.
func (r *HotPathAlloc) checkBody(pkg *Package, body *ast.BlockStmt, report Reporter) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			r.checkCall(info, v, report)
		case *ast.CompositeLit:
			switch typeOf(info, v).Underlying().(type) {
			case *types.Map:
				report(v, "map literal allocates on the hot path; hoist it out of the per-token loop")
			case *types.Slice:
				report(v, "slice literal allocates on the hot path; use a pooled or preallocated buffer")
			}
		case *ast.FuncLit:
			report(v, "closure literal allocates on the hot path; hoist it to a method or package function")
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i < len(v.Rhs) {
					r.checkBoxing(info, lhsType(info, lhs), v.Rhs[i], report)
				}
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if i < len(v.Values) {
					if obj := info.Defs[name]; obj != nil {
						r.checkBoxing(info, obj.Type(), v.Values[i], report)
					}
				}
			}
		}
		return true
	})
}

// checkCall flags allocating calls: append, make, alloc-forcing string
// conversions, and interface boxing at argument positions.
func (r *HotPathAlloc) checkCall(info *types.Info, call *ast.CallExpr, report Reporter) {
	fun := ast.Unparen(call.Fun)

	// Conversions: string(byteslice) and []byte(string) copy their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, typeOf(info, call.Args[0])
		if src == nil {
			return
		}
		if isString(dst) && isByteOrRuneSlice(src) {
			report(call, "string(%s) conversion copies and allocates on the hot path", src)
		} else if isByteOrRuneSlice(dst) && isString(src) {
			report(call, "%s(string) conversion copies and allocates on the hot path", dst)
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				report(call, "append may grow a heap-allocated slice on the hot path; use a pooled or preallocated buffer")
			case "make":
				report(call, "make allocates on the hot path; hoist the buffer or take it from a pool")
			}
			return
		}
	}

	// Interface boxing at call-argument positions.
	sigType := typeOf(info, call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			if last, okS := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); okS {
				param = last.Elem()
			}
		}
		if param != nil {
			r.checkBoxing(info, param, arg, report)
		}
	}
}

// lhsType resolves the static type of an assignment's left-hand side.
// Plain identifiers on the LHS are declaration/use sites recorded in
// Defs/Uses rather than the Types map, so they need object resolution.
func lhsType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		return nil
	}
	return typeOf(info, e)
}

// checkBoxing reports a non-pointer-shaped concrete value converted into an
// interface (which heap-allocates the boxed copy).
func (r *HotPathAlloc) checkBoxing(info *types.Info, dst types.Type, src ast.Expr, report Reporter) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := typeOf(info, src)
	if st == nil || isUntypedNil(st) {
		return
	}
	if _, ok := st.(*types.Tuple); ok {
		return // comma-ok / multi-value RHS: no conversion at this node
	}
	if tv, ok := info.Types[src]; ok && tv.IsNil() {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: interface conversion does not allocate
	}
	report(src, "interface boxing of %s allocates on the hot path", st)
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is a []byte or []rune variant.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
