package lint

import (
	"sort"
	"sync"
	"testing"
)

// TestLoadAllDeterministic pins the concurrency contract of the parallel
// loader: loading the same package set on many workers (run under -race in
// CI) yields one Package per input path in input order, and the diagnostics
// produced over them are identical — and sorted — no matter how the load
// was scheduled. The package set deliberately shares deep dependencies
// (core pulls bbcrypto, dpienc, tokenize...) so the singleflight paths get
// real contention.
func TestLoadAllDeterministic(t *testing.T) {
	paths := []string{
		"repro/internal/bbcrypto",
		"repro/internal/tokenize",
		"repro/internal/dpienc",
		"repro/internal/detect",
		"repro/internal/core",
		"repro/internal/rules",
	}
	var base []Finding
	for round := 0; round < 3; round++ {
		loader, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadAll(paths, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkgs) != len(paths) {
			t.Fatalf("got %d packages, want %d", len(pkgs), len(paths))
		}
		for i, pkg := range pkgs {
			if pkg.ImportPath != paths[i] {
				t.Fatalf("package %d: got %s, want %s (input order must be kept)", i, pkg.ImportPath, paths[i])
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("%s: type errors: %v", pkg.ImportPath, pkg.TypeErrors)
			}
		}
		findings := Run(pkgs, DefaultRules(loader.ModulePath, loader.GoMinor))
		if !sort.SliceIsSorted(findings, func(i, j int) bool {
			a, b := findings[i], findings[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		}) {
			t.Error("findings are not sorted by position")
		}
		if round == 0 {
			base = findings
			continue
		}
		if len(findings) != len(base) {
			t.Fatalf("round %d: %d findings, round 0 had %d", round, len(findings), len(base))
		}
		for i := range findings {
			if findings[i] != base[i] {
				t.Errorf("round %d finding %d differs: got %+v, want %+v", round, i, findings[i], base[i])
			}
		}
	}
}

// TestLoadAllSharedDependency hammers one loader from many goroutines
// requesting overlapping packages; the singleflight layer must hand every
// caller the same *Package instance rather than rebuilding.
func TestLoadAllSharedDependency(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*Package, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pkgs, err := loader.LoadAll([]string{"repro/internal/dpienc", "repro/internal/detect"}, 2)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = pkgs[0]
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a distinct Package instance for the same path", g)
		}
	}
}
