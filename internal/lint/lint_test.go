package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden expect.txt files")

// fixtureRules is the rule set the fixtures are written against. It mirrors
// DefaultRules for module path "repro" with two fixture-specific twists:
// the weak-rand allowlist points at the testdata/weakrand/allowed package,
// and loop-capture is forced on with a pre-1.22 go directive so its fixture
// stays meaningful under the module's actual (>= 1.22) toolchain.
func fixtureRules() []Rule {
	return []Rule{
		NewCTCompare("repro"),
		NewWeakRand([]string{"repro/internal/lint/testdata/weakrand/allowed"}),
		&UncheckedErr{NeverFail: []string{"bbcrypto.PRG"}},
		&MutexCopy{},
		&LoopCapture{GoMinor: 21},
		&ChanLeak{},
		&TodoPanic{},
		NewObsStats([]string{"repro/internal/obs"}),
		NewExportedDoc([]string{"repro/internal/lint/testdata/exporteddoc"}),
		NewSecretFlow("repro"),
		&HotPathAlloc{},
	}
}

// fixtureRuleID maps a fixture directory to the one rule it exercises;
// every finding the full rule set produces there must carry that ID, which
// is what makes the fixtures "trigger exactly one rule".
var fixtureRuleID = map[string]string{
	"ctcompare":        "ct-compare",
	"weakrand":         "weak-rand",
	"weakrand/allowed": "", // allowlisted: must be perfectly clean
	"uncheckederr":     "unchecked-err",
	"mutexcopy":        "mutex-copy",
	"loopcapture":      "loop-capture",
	"chanleak":         "chan-leak",
	"todopanic":        "todo-panic",
	"obsstats":         "obs-stats",
	"exporteddoc":      "exported-doc",
	"secretflow":       "secret-flow",
	"hotpathalloc":     "hotpath-alloc",
	"suppress":         directiveRule,
}

func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	rules := fixtureRules()
	for _, dir := range fixtureDirs(t) {
		t.Run(dir, func(t *testing.T) {
			wantRule, known := fixtureRuleID[dir]
			if !known {
				t.Fatalf("fixture %s has no entry in fixtureRuleID", dir)
			}
			abs := filepath.Join("testdata", filepath.FromSlash(dir))
			pkg, err := loader.LoadDir(abs, "repro/internal/lint/testdata/"+dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not type-check: %v", pkg.TypeErrors)
			}
			findings := Run([]*Package{pkg}, rules)

			var b strings.Builder
			for _, f := range findings {
				if f.RuleID != wantRule {
					t.Errorf("fixture for %q produced a foreign finding: %s", wantRule, f)
				}
				if base := filepath.Base(f.File); base != "bad.go" && base != "suppress.go" {
					t.Errorf("finding outside bad.go: %s", f)
				}
				fmt.Fprintf(&b, "%s:%d:%d: %s [%s]\n",
					filepath.Base(f.File), f.Line, f.Col, f.Message, f.RuleID)
			}
			if wantRule != "" && len(findings) == 0 {
				t.Errorf("fixture for %q produced no findings", wantRule)
			}

			golden := filepath.Join(abs, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// fixtureDirs lists every directory under testdata that holds Go files,
// as slash paths relative to testdata.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir("testdata", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() || path == "testdata" {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".go") {
				rel, _ := filepath.Rel("testdata", path)
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestExpandSkipsTestdata pins the contract the fixtures rely on: the
// driver's ./... expansion never descends into testdata, so deliberately
// broken fixture packages cannot fail a bblint run over the real tree.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand leaked a testdata package: %s", p)
		}
	}
}

// TestDefaultRulesCatalog keeps rule IDs stable: suppressions in the tree
// reference them by name.
func TestDefaultRulesCatalog(t *testing.T) {
	want := []string{
		"ct-compare", "weak-rand", "unchecked-err",
		"mutex-copy", "loop-capture", "chan-leak", "todo-panic",
		"obs-stats", "exported-doc", "secret-flow", "hotpath-alloc",
	}
	rules := DefaultRules("repro", 22)
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.ID() != want[i] {
			t.Errorf("rule %d: got ID %q, want %q", i, r.ID(), want[i])
		}
		if r.Doc() == "" {
			t.Errorf("rule %s has no Doc", r.ID())
		}
	}
}
