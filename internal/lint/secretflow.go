package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SecretFlow is the secret-taint dataflow rule. BlindBox's §2/§5 threat
// model requires that the middlebox inspects traffic without ever seeing
// plaintext or endpoint keys; this rule enforces the code-level half of
// that argument: declared secret material (session keys, pre-encryption
// token plaintext, garbled wire labels — anything carrying a //bb:secret
// annotation, plus the built-in secret types) must never flow into
//
//   - log / log/slog calls (including methods of a stored *slog.Logger),
//   - fmt.Print*/Fprint* output,
//   - internal/obs metric or span attributes (calls into the obs package
//     and assignments to obs struct fields),
//   - transport writes that are not the designated ciphertext path
//     (net.Conn / internal/transport Write* and Marshal* calls), or
//   - errors returned from a function (fmt.Errorf'd secrets end up in logs
//     eventually; the taint follows %v/%w wrapping).
//
// Taint is propagated by the engine in taint.go: through assignments,
// composites, slices, appends, string conversions, stdlib string plumbing,
// and same-package helper calls via summaries. Encrypt* (and
// //bb:sanitizer-annotated) call results clear taint — ciphertext is what
// the protocol is allowed to emit. Legitimate flows (the OT label transfer,
// public values that merely share a secret's type) are annotated in source
// with //lint:ignore secret-flow <reason>.
type SecretFlow struct {
	modulePath   string
	obsPkg       string
	transportPkg string
	// builtinTypes are "pkgpath.TypeName" entries treated as secret without
	// a source annotation.
	builtinTypes map[string]bool
	idx          *secretIndex
}

// NewSecretFlow builds the rule for a module. The built-in source set seeds
// taint at the module's session-key container even before annotations are
// read.
func NewSecretFlow(modulePath string) *SecretFlow {
	return &SecretFlow{
		modulePath:   modulePath,
		obsPkg:       modulePath + "/internal/obs",
		transportPkg: modulePath + "/internal/transport",
		builtinTypes: map[string]bool{
			modulePath + "/internal/bbcrypto.SessionKeys": true,
		},
	}
}

// ID implements Rule.
func (r *SecretFlow) ID() string { return "secret-flow" }

// Doc implements Rule.
func (r *SecretFlow) Doc() string {
	return "//bb:secret material must not flow into logs, errors, metrics, spans, or non-ciphertext writes"
}

// Prepare implements the preparer hook: the annotation index is built over
// every package of the run so cross-package field/type annotations resolve.
func (r *SecretFlow) Prepare(pkgs []*Package) {
	r.idx = buildSecretIndex(pkgs)
}

// Check implements Rule.
func (r *SecretFlow) Check(pkg *Package, report Reporter) {
	idx := r.idx
	if idx == nil {
		idx = buildSecretIndex([]*Package{pkg})
	}
	c := newTaintChecker(pkg, idx, r)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := c.newFuncState(fd)
			st.report = report
			st.fixpoint(fd.Body)
			st.reportPass(fd)
		}
	}
}

// sinkKind classifies a call as a taint sink; "" means not a sink.
func (c *taintChecker) sinkKind(call *ast.CallExpr) string {
	info := c.pkg.Info
	fn, _ := calleeObj(info, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "log" || path == "log/slog":
		return "log"
	case path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		return "printed output"
	case c.rule != nil && path == c.rule.obsPkg:
		return "observability (metric/span)"
	case c.rule != nil && path == c.rule.transportPkg &&
		(strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Marshal")):
		return "transport write"
	}
	// Write-like methods on net types (net.Conn and friends).
	if strings.HasPrefix(name, "Write") {
		if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel, isSel := info.Selections[se]; isSel && sel.Kind() == types.MethodVal {
				if recvPkgPath(sel.Recv()) == "net" {
					return "transport write"
				}
			}
		}
	}
	return ""
}

// recvPkgPath returns the package path of a (possibly pointer-wrapped)
// named receiver type, or "".
func recvPkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// reportPass walks the analyzed body once after the fixpoint, reporting
// every tainted value that reaches a sink (when report is set) and
// accumulating the summary's sink and result masks.
func (st *funcState) reportPass(decl *ast.FuncDecl) {
	info := st.c.pkg.Info
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			st.checkCallSinks(v)
		case *ast.AssignStmt:
			st.checkObsFieldAssign(v)
		case *ast.ReturnStmt:
			st.checkReturn(v, info)
		}
		return true
	})
	st.collectResults(decl)
}

// checkCallSinks reports tainted arguments of sink calls and applies callee
// summaries' internal-sink knowledge.
func (st *funcState) checkCallSinks(call *ast.CallExpr) {
	info := st.c.pkg.Info
	if kind := st.c.sinkKind(call); kind != "" {
		for _, arg := range call.Args {
			m := st.eval(arg)
			if m == 0 {
				continue
			}
			st.sink |= m & paramMask
			if st.report != nil && m&taintSource != 0 {
				st.report(arg, "secret-tainted value reaches %s sink %s", kind, callName(call))
			}
		}
		return
	}
	// Same-package callee whose summary says a parameter reaches a sink.
	fn, _ := calleeObj(info, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil || st.c.pkg.Pkg == nil || fn.Pkg() != st.c.pkg.Pkg {
		return
	}
	sum := st.c.summaryFor(fn)
	if sum == nil || sum.sink == 0 {
		return
	}
	slots := st.callSlots(call)
	var hit taintMask
	for i, m := range slots {
		if sum.sink&paramBit(i) != 0 {
			hit |= m
		}
	}
	if hit == 0 {
		return
	}
	st.sink |= hit & paramMask
	if st.report != nil && hit&taintSource != 0 {
		st.report(call, "secret-tainted argument reaches a sink inside %s", fn.Name())
	}
}

// checkObsFieldAssign reports tainted values assigned into observability
// struct fields (span attributes travel as plain struct fields).
func (st *funcState) checkObsFieldAssign(v *ast.AssignStmt) {
	if st.c.rule == nil {
		return
	}
	info := st.c.pkg.Info
	for i, lhs := range v.Lhs {
		if i >= len(v.Rhs) && len(v.Rhs) != 1 {
			break
		}
		se, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		sel, isSel := info.Selections[se]
		if !isSel || sel.Kind() != types.FieldVal {
			continue
		}
		if recvPkgPath(sel.Recv()) != st.c.rule.obsPkg {
			continue
		}
		rhs := v.Rhs[min(i, len(v.Rhs)-1)]
		m := st.eval(rhs)
		if m == 0 {
			continue
		}
		st.sink |= m & paramMask
		if st.report != nil && m&taintSource != 0 {
			st.report(rhs, "secret-tainted value assigned to observability field %s", sel.Obj().Name())
		}
	}
}

// checkReturn reports secrets escaping through returned errors.
func (st *funcState) checkReturn(v *ast.ReturnStmt, info *types.Info) {
	for _, res := range v.Results {
		t := typeOf(info, res)
		if t == nil || !isErrorType(t) {
			continue
		}
		m := st.eval(res)
		if m == 0 {
			continue
		}
		st.sink |= m & paramMask
		if st.report != nil && m&taintSource != 0 {
			st.report(res, "secret-tainted error escapes the function (secrets in errors end up in logs)")
		}
	}
}

// collectResults joins return-statement taint into the summary's per-result
// masks. Returns inside function literals belong to the literal, not the
// enclosing function, and are skipped.
func (st *funcState) collectResults(decl *ast.FuncDecl) {
	if len(st.results) == 0 {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(v.Results) == 0 {
				// Bare return: named results carry their current taint.
				for i, obj := range st.resultObjs {
					if i < len(st.results) {
						st.results[i] |= st.vars[obj]
					}
				}
				return true
			}
			if len(v.Results) == len(st.results) {
				for i, res := range v.Results {
					st.results[i] |= st.eval(res)
				}
			} else if len(v.Results) == 1 {
				// return f() with multi-value f: join into everything.
				m := st.eval(v.Results[0])
				for i := range st.results {
					st.results[i] |= m
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callName renders a call's callee for diagnostics: pkg.F or recv.M.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
