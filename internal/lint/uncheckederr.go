package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErr flags call statements that drop an error return on the
// floor. In a middlebox, an ignored transport or crypto error usually means
// traffic silently bypasses inspection. Deliberately discarded errors must
// be spelled `_ = f()` (visible in review) or carry a //lint:ignore.
//
// `defer f()` and `go f()` are not flagged (the deferred-Close idiom), and
// neither are fmt's print family (output-only by convention, the errcheck
// default) or writers documented never to fail (strings.Builder,
// bytes.Buffer, hash.Hash, math/rand.Rand — see NeverFail).
type UncheckedErr struct {
	// NeverFail lists additional receiver types whose methods' errors are
	// always nil (e.g. "bbcrypto.PRG"); matched against the receiver
	// expression's type with any leading * and package-path prefix
	// stripped.
	NeverFail []string
}

// ID implements Rule.
func (r *UncheckedErr) ID() string { return "unchecked-err" }

// Doc implements Rule.
func (r *UncheckedErr) Doc() string {
	return "error returns must be handled or explicitly discarded with _ ="
}

// Check implements Rule.
func (r *UncheckedErr) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := typeOf(pkg.Info, call)
			if t == nil || !returnsError(t) || r.exemptCallee(pkg.Info, call) {
				return true
			}
			report(es, "result of %s includes an error that is dropped; handle it or assign to _", callDisplay(call))
			return true
		})
	}
}

// returnsError reports whether a call result type includes error.
func returnsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// neverFailDefaults are receiver types whose Write/Read/print methods are
// documented to always return a nil error.
var neverFailDefaults = []string{
	"strings.Builder", "bytes.Buffer", "hash.Hash",
	"math/rand.Rand", "math/rand/v2.Rand",
}

// exemptCallee reports whether the callee's error is conventionally
// ignorable.
func (r *UncheckedErr) exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := typeOf(info, sel.X); t != nil {
			name := strings.TrimPrefix(t.String(), "*")
			for _, never := range append(neverFailDefaults, r.NeverFail...) {
				if name == never || strings.HasSuffix(name, "/"+never) {
					return true
				}
			}
		}
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		// Formatted printing is output-only by convention (the errcheck
		// default most projects adopt); a failing report writer surfaces on
		// its Close.
		return true
	}
	return false
}

// callDisplay renders a compact callee name for the report message.
func callDisplay(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

var _ Rule = (*UncheckedErr)(nil)
