package lint

import (
	"strconv"
	"strings"
)

// WeakRand forbids math/rand (and math/rand/v2) outside an explicit
// allowlist. BlindBox derives garbling randomness and salts from
// cryptographic sources (crypto/rand, or the krand-seeded AES-CTR PRG of
// internal/bbcrypto); math/rand anywhere near those paths silently voids
// the security proof. Synthetic-workload packages (internal/corpus,
// internal/experiments) legitimately want fast seeded randomness and are
// allowlisted by default.
type WeakRand struct {
	allow []string
}

// NewWeakRand builds the rule with the given allowlisted import paths
// (exact match or path prefix).
func NewWeakRand(allow []string) *WeakRand { return &WeakRand{allow: allow} }

// ID implements Rule.
func (r *WeakRand) ID() string { return "weak-rand" }

// Doc implements Rule.
func (r *WeakRand) Doc() string {
	return "math/rand is forbidden outside synthetic-workload packages; use crypto/rand or bbcrypto.PRG"
}

// Check implements Rule.
func (r *WeakRand) Check(pkg *Package, report Reporter) {
	for _, a := range r.allow {
		if pkg.ImportPath == a || strings.HasPrefix(pkg.ImportPath, a+"/") {
			return
		}
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp, "import of %s in a non-workload package; use crypto/rand or a krand-seeded bbcrypto.PRG", path)
			}
		}
	}
}

var _ Rule = (*WeakRand)(nil)
var _ Rule = (*CTCompare)(nil)
