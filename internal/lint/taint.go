// Function-level taint dataflow engine. This is the machinery behind the
// secret-flow rule: a bitmask taint lattice propagated intra-procedurally to
// a fixpoint, with memoized per-function call summaries so taint survives
// calls into helpers of the same package (the "one-hop" summary of the
// design doc — in practice the memoization follows helper chains until a
// cycle cuts them off).
//
// Lattice. A taint mask is a uint64. Bit 63 (taintSource) means "derived
// from declared secret material"; bits 0..62 mean "derived from parameter
// i of the function under analysis" (the receiver, when present, is
// parameter 0). Join is bitwise OR; the analysis is monotone, so iterating
// each function body until the variable map stops changing terminates.
//
// Sources. A value is secret when it reads a //bb:secret-annotated field,
// parameter, package variable, or a value of a //bb:secret-annotated (or
// built-in) named type. Annotations are indexed module-wide by
// buildSecretIndex so a field declared secret in internal/bbcrypto taints
// reads from every package analyzed in the same run.
//
// Sanitizers. Calls to functions whose name starts with "Encrypt", or that
// carry a //bb:sanitizer annotation, return untainted values regardless of
// argument taint: post-encryption bytes are exactly what BlindBox is allowed
// to emit.
//
// Propagation through calls:
//   - string-manipulating stdlib packages (fmt, strings, bytes, strconv,
//     errors, encoding/hex, encoding/base64) propagate the join of their
//     arguments (and receiver) to their results;
//   - same-package callees use their computed summary (per-result parameter
//     dependence plus internal sink reachability);
//   - any other call returns the receiver's taint (err.Error(), buf.Bytes()
//     stay tainted) and, as a side effect, taints the receiver's root when
//     tainted arguments are passed (buffers accumulate what is written).
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// taintMask is the lattice element: parameter-dependence bits plus the
// constitutive-secret bit.
type taintMask uint64

// taintSource marks taint derived from declared secret material (as opposed
// to mere parameter dependence, which only matters for summaries).
const taintSource taintMask = 1 << 63

// paramMask selects the parameter-dependence bits.
const paramMask taintMask = taintSource - 1

// paramBit returns the lattice bit for parameter i; parameters past 62 share
// the last bit (join stays sound, merely less precise).
func paramBit(i int) taintMask {
	if i > 62 {
		i = 62
	}
	return 1 << uint(i)
}

// secretAnnotation is the comment directive marking declared secrets.
const secretAnnotation = "//bb:secret"

// sanitizerAnnotation marks functions whose results are safe regardless of
// argument taint (beyond the built-in Encrypt* name rule).
const sanitizerAnnotation = "//bb:sanitizer"

// secretIndex is the module-wide annotation index.
type secretIndex struct {
	// objs holds annotated fields, parameters and package variables.
	objs map[types.Object]bool
	// typs holds annotated named types: every value of the type is secret.
	typs map[types.Object]bool
	// resultFns holds functions annotated "//bb:secret return": their
	// call results are secret at every call site, across packages.
	resultFns map[types.Object]bool
	// sanitizers holds //bb:sanitizer-annotated functions.
	sanitizers map[types.Object]bool
}

// annLines extracts the annotation directives of a comment group.
func annLines(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, secretAnnotation) || strings.HasPrefix(c.Text, sanitizerAnnotation) {
				out = append(out, c.Text)
			}
		}
	}
	return out
}

// buildSecretIndex scans every package's declarations for //bb:secret and
// //bb:sanitizer annotations and resolves them to type-checker objects.
func buildSecretIndex(pkgs []*Package) *secretIndex {
	idx := &secretIndex{
		objs:       make(map[types.Object]bool),
		typs:       make(map[types.Object]bool),
		resultFns:  make(map[types.Object]bool),
		sanitizers: make(map[types.Object]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					idx.indexGenDecl(pkg, d)
				case *ast.FuncDecl:
					idx.indexFuncDecl(pkg, d)
				}
			}
		}
	}
	return idx
}

// indexGenDecl indexes type and package-var annotations.
func (idx *secretIndex) indexGenDecl(pkg *Package, d *ast.GenDecl) {
	declAnn := len(annLines(d.Doc)) > 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if declAnn || len(annLines(s.Doc, s.Comment)) > 0 {
				if obj := pkg.Info.Defs[s.Name]; obj != nil {
					idx.typs[obj] = true
				}
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				idx.indexFields(pkg, st)
			}
		case *ast.ValueSpec:
			if declAnn || len(annLines(s.Doc, s.Comment)) > 0 {
				for _, name := range s.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						idx.objs[obj] = true
					}
				}
			}
		}
	}
}

// indexFields indexes //bb:secret annotations on struct fields.
func (idx *secretIndex) indexFields(pkg *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(annLines(field.Doc, field.Comment)) == 0 {
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				idx.objs[obj] = true
			}
		}
	}
}

// indexFuncDecl indexes function-doc annotations: "//bb:secret a b" marks
// the named parameters secret, "//bb:secret return" marks the results
// secret at call sites, and "//bb:sanitizer" marks the function a
// sanitizer.
func (idx *secretIndex) indexFuncDecl(pkg *Package, d *ast.FuncDecl) {
	fnObj := pkg.Info.Defs[d.Name]
	for _, line := range annLines(d.Doc) {
		if strings.HasPrefix(line, sanitizerAnnotation) {
			if fnObj != nil {
				idx.sanitizers[fnObj] = true
			}
			continue
		}
		names := strings.Fields(strings.TrimPrefix(line, secretAnnotation))
		for _, name := range names {
			if name == "return" {
				if fnObj != nil {
					idx.resultFns[fnObj] = true
				}
				continue
			}
			for _, obj := range paramObjs(pkg, d) {
				if obj != nil && obj.Name() == name {
					idx.objs[obj] = true
				}
			}
		}
	}
}

// paramObjs lists a function's receiver and parameter objects in lattice
// order (receiver first).
func paramObjs(pkg *Package, d *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				out = append(out, pkg.Info.Defs[name])
			}
		}
	}
	collect(d.Recv)
	collect(d.Type.Params)
	return out
}

// fnSummary is the computed call summary of one function.
type fnSummary struct {
	// results[j] is the taint of result j expressed over the callee's
	// parameter bits (plus taintSource for constitutive secrets).
	results []taintMask
	// sink has bit i set when parameter i reaches a sink inside the
	// function (directly or through deeper same-package calls).
	sink taintMask
	// computing guards against recursion: cyclic call chains see an empty
	// summary.
	computing bool
}

// joinedResults is the union of all result masks (used when a call is
// evaluated in single-value context).
func (s *fnSummary) joinedResults() taintMask {
	var m taintMask
	for _, r := range s.results {
		m |= r
	}
	return m
}

// propagatorPkgs are stdlib packages whose functions and methods propagate
// argument taint to their results (string/byte plumbing).
var propagatorPkgs = map[string]bool{
	"fmt": true, "strings": true, "bytes": true, "strconv": true,
	"errors": true, "encoding/hex": true, "encoding/base64": true,
	"unicode/utf8": true,
}

// taintChecker runs the analysis over one package for the secret-flow rule.
type taintChecker struct {
	pkg       *Package
	idx       *secretIndex
	rule      *SecretFlow
	summaries map[types.Object]*fnSummary
	decls     map[types.Object]*ast.FuncDecl
}

// newTaintChecker indexes the package's function declarations.
func newTaintChecker(pkg *Package, idx *secretIndex, rule *SecretFlow) *taintChecker {
	c := &taintChecker{
		pkg:       pkg,
		idx:       idx,
		rule:      rule,
		summaries: make(map[types.Object]*fnSummary),
		decls:     make(map[types.Object]*ast.FuncDecl),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	return c
}

// funcState is the per-function analysis state.
type funcState struct {
	c *taintChecker
	// paramIdx maps receiver/parameter objects to their lattice bit index.
	paramIdx map[types.Object]int
	// resultObjs are named result variables (for bare returns).
	resultObjs []types.Object
	// vars is the variable/field taint map.
	vars    map[types.Object]taintMask
	changed bool
	// report is nil during summary computation.
	report Reporter
	// sink accumulates parameter bits that reached a sink.
	sink taintMask
	// results accumulates per-result return taint.
	results []taintMask
}

// newFuncState seeds the state for decl: parameter i gets bit i (annotation
// and type-based source bits are added lazily by eval).
func (c *taintChecker) newFuncState(decl *ast.FuncDecl) *funcState {
	st := &funcState{
		c:        c,
		paramIdx: make(map[types.Object]int),
		vars:     make(map[types.Object]taintMask),
	}
	for i, obj := range paramObjs(c.pkg, decl) {
		if obj != nil {
			st.paramIdx[obj] = i
			st.vars[obj] = paramBit(i)
		}
	}
	if res := decl.Type.Results; res != nil {
		n := 0
		for _, f := range res.List {
			if len(f.Names) == 0 {
				n++
				continue
			}
			for _, name := range f.Names {
				st.resultObjs = append(st.resultObjs, c.pkg.Info.Defs[name])
				n++
			}
		}
		st.results = make([]taintMask, n)
	}
	return st
}

// set joins mask into obj's taint.
func (st *funcState) set(obj types.Object, mask taintMask) {
	if obj == nil || mask == 0 {
		return
	}
	if old := st.vars[obj]; old|mask != old {
		st.vars[obj] = old | mask
		st.changed = true
	}
}

// eval computes the taint of an expression.
func (st *funcState) eval(e ast.Expr) taintMask {
	m := st.evalInner(e)
	if st.c.isSecretType(typeOf(st.c.pkg.Info, e)) {
		m |= taintSource
	}
	return m
}

// isSecretType reports whether t (or its pointee) is an annotated or
// built-in secret named type.
func (c *taintChecker) isSecretType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if c.idx.typs[obj] {
		return true
	}
	if obj.Pkg() != nil && c.rule != nil && c.rule.builtinTypes[obj.Pkg().Path()+"."+obj.Name()] {
		return true
	}
	return false
}

func (st *funcState) evalInner(e ast.Expr) taintMask {
	info := st.c.pkg.Info
	switch v := e.(type) {
	case *ast.Ident:
		obj := info.Uses[v]
		if obj == nil {
			obj = info.Defs[v]
		}
		m := st.vars[obj]
		if st.c.idx.objs[obj] {
			m |= taintSource
		}
		return m
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok {
			m := st.eval(v.X)
			if st.c.idx.objs[sel.Obj()] {
				m |= taintSource
			}
			return m | st.vars[sel.Obj()]
		}
		// Qualified identifier pkg.X.
		obj := info.Uses[v.Sel]
		var m taintMask
		if st.c.idx.objs[obj] {
			m |= taintSource
		}
		return m
	case *ast.CallExpr:
		return st.evalCall(v)
	case *ast.CompositeLit:
		var m taintMask
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= st.eval(kv.Value)
				continue
			}
			m |= st.eval(el)
		}
		return m
	case *ast.IndexExpr:
		return st.eval(v.X)
	case *ast.SliceExpr:
		return st.eval(v.X)
	case *ast.StarExpr:
		return st.eval(v.X)
	case *ast.ParenExpr:
		return st.eval(v.X)
	case *ast.UnaryExpr:
		return st.eval(v.X)
	case *ast.BinaryExpr:
		return st.eval(v.X) | st.eval(v.Y)
	case *ast.TypeAssertExpr:
		return st.eval(v.X)
	}
	return 0
}

// evalCall computes the taint of a call result and applies call side
// effects (copy into destination, receiver accumulation).
func (st *funcState) evalCall(call *ast.CallExpr) taintMask {
	info := st.c.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Type conversion: string(b), []byte(s), Named(x) keep taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return st.eval(call.Args[0])
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "min", "max":
				var m taintMask
				for _, a := range call.Args {
					m |= st.eval(a)
				}
				return m
			case "copy":
				if len(call.Args) == 2 {
					st.set(rootObj(info, call.Args[0]), st.eval(call.Args[1]))
				}
				return 0
			default:
				return 0
			}
		}
	}

	var argMasks []taintMask
	for _, a := range call.Args {
		argMasks = append(argMasks, st.eval(a))
	}
	argJoin := taintMask(0)
	for _, m := range argMasks {
		argJoin |= m
	}
	var recvMask taintMask
	var recvExpr ast.Expr
	if se, ok := fun.(*ast.SelectorExpr); ok {
		if sel, isSel := info.Selections[se]; isSel && sel.Kind() == types.MethodVal {
			recvExpr = se.X
			recvMask = st.eval(se.X)
		}
	}
	// Side effect: writing tainted data into a receiver (buffers, builders)
	// taints the receiver's root.
	if recvExpr != nil && argJoin != 0 {
		st.set(rootObj(info, recvExpr), argJoin)
	}

	obj := calleeObj(info, call)
	fn, _ := obj.(*types.Func)
	if fn != nil {
		// Sanitizers: Encrypt* results are the designated ciphertexts.
		if strings.HasPrefix(fn.Name(), "Encrypt") || st.c.idx.sanitizers[fn] {
			return 0
		}
		if st.c.idx.resultFns[fn] {
			return taintSource
		}
		if pkg := fn.Pkg(); pkg != nil {
			if propagatorPkgs[pkg.Path()] {
				return argJoin | recvMask
			}
			if st.c.pkg.Pkg != nil && pkg == st.c.pkg.Pkg {
				if sum := st.c.summaryFor(fn); sum != nil {
					slots := st.paramSlots(fn, argMasks, recvExpr != nil, recvMask)
					return applySummary(sum.joinedResults(), slots)
				}
			}
		}
	}
	// Unknown call: taint survives through the receiver only.
	return recvMask
}

// paramSlots aligns call-site argument masks with the callee's lattice
// parameter slots (receiver first, variadic tail joined into one slot).
func (st *funcState) paramSlots(fn *types.Func, argMasks []taintMask, hasRecv bool, recvMask taintMask) []taintMask {
	var slots []taintMask
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if hasRecv {
			slots = append(slots, recvMask)
		} else {
			slots = append(slots, 0) // method expression: receiver unknown
		}
		nParams := sig.Params().Len()
		for i, m := range argMasks {
			if i < nParams {
				slots = append(slots, m)
			} else if len(slots) > 0 {
				slots[len(slots)-1] |= m
			}
		}
		return slots
	}
	return argMasks
}

// applySummary translates a summary mask (over callee parameters) into the
// caller's lattice given the argument masks.
func applySummary(sum taintMask, slots []taintMask) taintMask {
	out := sum & taintSource
	for i, m := range slots {
		if sum&paramBit(i) != 0 {
			out |= m
		}
	}
	return out
}

// rootObj returns the local object at the root of an lvalue-ish expression:
// x -> x, x.f.g -> g's field object is NOT returned — the root is x's
// innermost selector field when present, else the base identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			// Prefer the field object for field sensitivity; fall back to
			// the base for method values.
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// summaryFor returns fn's memoized summary, computing it on demand. Cycles
// and body-less functions yield the empty summary.
func (c *taintChecker) summaryFor(fn *types.Func) *fnSummary {
	if s, ok := c.summaries[fn]; ok {
		if s.computing {
			return &fnSummary{}
		}
		return s
	}
	decl, ok := c.decls[fn]
	if !ok {
		s := &fnSummary{}
		c.summaries[fn] = s
		return s
	}
	s := &fnSummary{computing: true}
	c.summaries[fn] = s
	st := c.newFuncState(decl)
	st.fixpoint(decl.Body)
	st.reportPass(decl)
	s.results = st.results
	s.sink = st.sink & paramMask
	s.computing = false
	return s
}

// maxFixpointIters bounds the per-function fixpoint; the lattice height
// (63 bits per variable) makes far fewer iterations sufficient in practice.
const maxFixpointIters = 24

// fixpoint iterates propagation over the body until the variable map is
// stable.
func (st *funcState) fixpoint(body *ast.BlockStmt) {
	for i := 0; i < maxFixpointIters; i++ {
		st.changed = false
		ast.Inspect(body, st.transfer)
		if !st.changed {
			return
		}
	}
}

// transfer applies one node's taint-propagation effect.
func (st *funcState) transfer(n ast.Node) bool {
	info := st.c.pkg.Info
	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) > 1 && len(v.Rhs) == 1 {
			st.multiAssign(v)
			return true
		}
		for i, lhs := range v.Lhs {
			if i < len(v.Rhs) {
				st.assign(lhs, st.eval(v.Rhs[i]))
			}
		}
	case *ast.ValueSpec:
		for i, name := range v.Names {
			if i < len(v.Values) {
				st.set(info.Defs[name], st.eval(v.Values[i]))
			}
		}
	case *ast.RangeStmt:
		m := st.eval(v.X)
		if m != 0 {
			if v.Key != nil {
				st.assign(v.Key, m)
			}
			if v.Value != nil {
				st.assign(v.Value, m)
			}
		}
	case *ast.SendStmt:
		st.set(rootObj(info, v.Chan), st.eval(v.Value))
	case *ast.CallExpr:
		// Evaluated for side effects (copy, receiver accumulation); calls
		// reached through assignments are evaluated twice, which is
		// harmless — joins are idempotent.
		st.eval(v)
	}
	return true
}

// assign records taint flowing into an lvalue: identifiers get it directly,
// selector targets get field-sensitive taint, everything else taints the
// root object.
func (st *funcState) assign(lhs ast.Expr, mask taintMask) {
	if mask == 0 {
		return
	}
	info := st.c.pkg.Info
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		obj := info.Defs[v]
		if obj == nil {
			obj = info.Uses[v]
		}
		st.set(obj, mask)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			st.set(sel.Obj(), mask)
			return
		}
		st.set(rootObj(info, v), mask)
	default:
		st.set(rootObj(info, lhs), mask)
	}
}

// multiAssign handles x, y := f() / v, ok := m[k] forms.
func (st *funcState) multiAssign(v *ast.AssignStmt) {
	rhs := v.Rhs[0]
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if fn, okF := calleeObj(st.c.pkg.Info, call).(*types.Func); okF &&
			fn.Pkg() != nil && st.c.pkg.Pkg != nil && fn.Pkg() == st.c.pkg.Pkg {
			if sum := st.c.summaryFor(fn); sum != nil && len(sum.results) == len(v.Lhs) {
				slots := st.callSlots(call)
				for i, lhs := range v.Lhs {
					st.assign(lhs, applySummary(sum.results[i], slots))
				}
				return
			}
		}
	}
	m := st.eval(rhs)
	for _, lhs := range v.Lhs {
		st.assign(lhs, m)
	}
}

// callSlots computes the parameter-slot masks of a call for summary
// application.
func (st *funcState) callSlots(call *ast.CallExpr) []taintMask {
	info := st.c.pkg.Info
	var argMasks []taintMask
	for _, a := range call.Args {
		argMasks = append(argMasks, st.eval(a))
	}
	var recvMask taintMask
	hasRecv := false
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel, isSel := info.Selections[se]; isSel && sel.Kind() == types.MethodVal {
			hasRecv = true
			recvMask = st.eval(se.X)
		}
	}
	fn, _ := calleeObj(info, call).(*types.Func)
	if fn == nil {
		return argMasks
	}
	return st.paramSlots(fn, argMasks, hasRecv, recvMask)
}
