package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TodoPanic flags bare panic calls in library packages. A production
// middlebox must degrade, not crash: panics are reserved for must*
// helpers (whose name announces the contract) and for package main, where
// top-level exits are the caller's business. Re-panics inside recover
// handlers are allowed.
type TodoPanic struct{}

// ID implements Rule.
func (r *TodoPanic) ID() string { return "todo-panic" }

// Doc implements Rule.
func (r *TodoPanic) Doc() string {
	return "library code must not panic outside must* helpers; return an error"
}

// Check implements Rule.
func (r *TodoPanic) Check(pkg *Package, report Reporter) {
	if pkg.Pkg != nil && pkg.Pkg.Name() == "main" {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj := pkg.Info.Uses[id]; obj != nil {
					if _, builtin := obj.(*types.Builtin); !builtin {
						return true // a shadowing local named panic
					}
				}
				report(call, "panic in library function %s; return an error or move it into a must* helper", name)
				return true
			})
		}
	}
}

var _ Rule = (*TodoPanic)(nil)
