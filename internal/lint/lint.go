// Package lint is bblint's analyzer framework: a self-contained static
// analysis suite for the BlindBox repository built entirely on the standard
// library (go/ast, go/parser, go/types — no x/tools, so the module stays
// dependency-free).
//
// The BlindBox security argument (§3 of the paper) rests on implementation
// invariants the Go type system cannot express: secret material must be
// compared in constant time, randomness on cryptographic paths must come
// from crypto/rand, and the multi-threaded middlebox must not leak
// goroutines or copy locks. Each invariant is a Rule; cmd/bblint runs every
// rule over every package and fails CI on violations.
//
// Findings can be suppressed with an explanation:
//
//	//lint:ignore <rule-id> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory: a suppression without one is itself reported (rule
// "lint-directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	RuleID  string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.RuleID)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset maps AST positions to file positions (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package (never nil, but may be incomplete
	// when TypeErrors is non-empty).
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
	// TypeErrors collects type-checking problems; rules still run, using
	// whatever type information survived.
	TypeErrors []error
}

// Reporter records one finding at the position of node.
type Reporter func(node ast.Node, format string, args ...any)

// Rule is a single bblint check.
type Rule interface {
	// ID is the stable rule identifier used in reports and suppressions.
	ID() string
	// Doc is a one-line description for -rules output and DESIGN.md.
	Doc() string
	// Check inspects one package and reports findings.
	Check(pkg *Package, report Reporter)
}

// DefaultRules returns the standard bblint rule set for a module.
// modulePath qualifies the packages whose types mark values as secret;
// goMinor is the module's go directive minor version (loop-capture is a
// no-op from 1.22 on, where loop variables are per-iteration).
func DefaultRules(modulePath string, goMinor int) []Rule {
	return []Rule{
		NewCTCompare(modulePath),
		NewWeakRand([]string{
			modulePath + "/internal/corpus",
			modulePath + "/internal/experiments",
		}),
		&UncheckedErr{NeverFail: []string{"bbcrypto.PRG"}},
		&MutexCopy{},
		&LoopCapture{GoMinor: goMinor},
		&ChanLeak{},
		&TodoPanic{},
		NewObsStats([]string{modulePath + "/internal/obs"}),
		NewExportedDoc([]string{modulePath}),
		NewSecretFlow(modulePath),
		&HotPathAlloc{},
	}
}

// preparer is an optional Rule extension: rules that need a module-wide
// view (e.g. secret-flow's cross-package annotation index) implement it and
// are handed every package of the run before per-package checks start.
type preparer interface {
	Prepare(pkgs []*Package)
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	line   int
	rules  map[string]bool // nil after a parse error
	reason string
	pos    token.Position
	used   bool
}

// directiveRule is the pseudo-rule under which malformed or unused
// //lint:ignore directives are reported.
const directiveRule = "lint-directive"

// parseSuppressions extracts //lint:ignore directives from one file.
func parseSuppressions(fset *token.FileSet, file *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			s := &suppression{line: pos.Line, pos: pos}
			fields := strings.Fields(text)
			if len(fields) >= 2 {
				s.rules = make(map[string]bool)
				for _, r := range strings.Split(fields[0], ",") {
					s.rules[r] = true
				}
				s.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, s)
		}
	}
	return out
}

// Run executes every rule over every package, applies suppressions, and
// returns findings sorted by position with duplicates (same position and
// rule, e.g. one tainted value reaching a sink along two dataflow paths)
// removed.
func Run(pkgs []*Package, rules []Rule) []Finding {
	for _, rule := range rules {
		if p, ok := rule.(preparer); ok {
			p.Prepare(pkgs)
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var sups []*suppression
		for _, f := range pkg.Files {
			sups = append(sups, parseSuppressions(pkg.Fset, f)...)
		}
		for _, rule := range rules {
			id := rule.ID()
			rule.Check(pkg, func(node ast.Node, format string, args ...any) {
				pos := pkg.Fset.Position(node.Pos())
				if suppressed(sups, pos, id) {
					return
				}
				findings = append(findings, Finding{
					RuleID:  id,
					File:    pos.Filename,
					Line:    pos.Line,
					Col:     pos.Column,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
		for _, s := range sups {
			switch {
			case s.rules == nil:
				findings = append(findings, Finding{
					RuleID: directiveRule, File: s.pos.Filename, Line: s.line, Col: s.pos.Column,
					Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\"",
				})
			case !s.used:
				findings = append(findings, Finding{
					RuleID: directiveRule, File: s.pos.Filename, Line: s.line, Col: s.pos.Column,
					Message: "//lint:ignore suppresses nothing (no matching finding on this or the next line)",
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.RuleID < b.RuleID
	})
	return dedupe(findings)
}

// dedupe drops findings that share position and rule with a predecessor
// (the first message wins; the slice must be sorted).
func dedupe(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == f.File && p.Line == f.Line && p.Col == f.Col && p.RuleID == f.RuleID {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// suppressed reports whether a finding of rule id at pos is covered by a
// directive on the same line or the line directly above.
func suppressed(sups []*suppression, pos token.Position, id string) bool {
	for _, s := range sups {
		if s.rules == nil || s.pos.Filename != pos.Filename {
			continue
		}
		if (s.line == pos.Line || s.line == pos.Line-1) && (s.rules[id] || s.rules["*"]) {
			s.used = true
			return true
		}
	}
	return false
}

// --- shared helpers used by several rules ---

// exprName returns the rightmost meaningful identifier of an expression:
// x -> "x", a.b -> "b", m[i] -> "m", f(x) -> "f", *p -> "p".
func exprName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return exprName(v.X)
	case *ast.CallExpr:
		return exprName(v.Fun)
	case *ast.StarExpr:
		return exprName(v.X)
	case *ast.ParenExpr:
		return exprName(v.X)
	case *ast.UnaryExpr:
		return exprName(v.X)
	}
	return ""
}

// splitWords splits an identifier into lower-cased words at underscores and
// camelCase boundaries: "tagKey" -> [tag key], "SSLKey" -> [ssl key].
func splitWords(ident string) []string {
	var words []string
	var cur []rune
	runes := []rune(ident)
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	for i, r := range runes {
		switch {
		case r == '_' || r == '$':
			flush()
			continue
		case i > 0 && isUpper(r) && !isUpper(runes[i-1]):
			// aB -> a|B
			flush()
		case i > 0 && i+1 < len(runes) && isUpper(r) && isUpper(runes[i-1]) && !isUpper(runes[i+1]):
			// ABc -> A|Bc
			flush()
		}
		cur = append(cur, r)
	}
	flush()
	return words
}

func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }

// typeOf returns the type of e, or nil when type information is missing.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if info == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeObj resolves the called function or method object of a call, or nil
// for indirect calls, conversions and missing type information.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// isByteSeq reports whether t's underlying type is a byte array or slice.
func isByteSeq(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}
