// Package evasion is a deterministic adversary framework for the BlindBox
// detection path. It takes ground-truth corpora (payloads with pinned rule
// hits) and applies named evasion transforms — keyword splitting across
// tokenization and write boundaries, overlapping and ambiguous segment
// reassembly, padding/case/encoding mutations, fragmentation at
// parser-ambiguous offsets — each tagged with an expected outcome:
//
//   - MustDetect: the encrypted path must fully match the targeted rule;
//   - DocumentedMiss: the plaintext baseline detects the rule but the
//     encrypted path legitimately misses it, and the miss class is
//     enumerated in DESIGN.md §10 (the gate fails on any undeclared miss);
//   - MustNotFalseAlert: neither engine may produce a rule alert.
//
// The transforms follow the evasion classes of "Fingerprinting Deep Packet
// Inspection Devices by Their Ambiguities": an attacker who controls byte
// placement, segmentation and encoding probes exactly these seams between
// the tokenizer, the reassembler and the matcher.
package evasion

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bbcrypto"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dpienc"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// Outcome classifies what the detection path must do with one adversarial
// case.
type Outcome int

const (
	// MustDetect requires a full RuleMatch for the targeted SID.
	MustDetect Outcome = iota
	// DocumentedMiss requires that the plaintext baseline detects the
	// targeted SID while the encrypted path does not, and that the case's
	// MissClass appears in the DESIGN.md §10 enumeration.
	DocumentedMiss
	// MustNotFalseAlert requires zero rule alerts from both engines.
	MustNotFalseAlert
)

// String names the outcome for reports and JSON.
func (o Outcome) String() string {
	switch o {
	case MustDetect:
		return "must-detect"
	case DocumentedMiss:
		return "documented-miss"
	case MustNotFalseAlert:
		return "must-not-false-alert"
	default:
		return "unknown"
	}
}

// Documented miss classes: every DocumentedMiss case carries one of these
// identifiers, and DESIGN.md §10 must enumerate each. A miss tagged with a
// class not listed here (or a class absent from DESIGN.md) is undeclared
// and fails the gate.
const (
	// MissShortKeywordWindow: keywords shorter than tokenize.TokenSize are
	// not expressible under window tokenization (SplitKeyword yields nil).
	MissShortKeywordWindow = "short-keyword-window"
	// MissMidwordDelimiter: a keyword embedded mid-word is not anchored on
	// any delimiter boundary, so delimiter tokenization never emits its
	// fragments (the §7.1 detection loss).
	MissMidwordDelimiter = "midword-glue-delimiter"
	// MissOutOfOrderReassembly: the replay assembler delivers only in-order
	// segments, so a keyword arriving out of order is invisible to the
	// middlebox view although a buffering endpoint receives it.
	MissOutOfOrderReassembly = "out-of-order-reassembly"
)

// DocumentedMissClasses lists every declared miss class; tests cross-check
// membership and the DESIGN.md enumeration against this registry.
var DocumentedMissClasses = []string{
	MissShortKeywordWindow,
	MissMidwordDelimiter,
	MissOutOfOrderReassembly,
}

// Case is one adversarial payload with pinned ground truth.
type Case struct {
	// Transform names the evasion class that produced the case.
	Transform string
	// Label uniquely identifies the case within its transform.
	Label string
	// Payload is the application bytestream the attacker sends.
	Payload []byte
	// Chunks are payload offsets at which the stream is split into
	// separate writes (token-stream Appends or transport Writes), modeling
	// the packetization boundaries an attacker controls. Offsets are
	// ascending and exclusive of 0 and len(Payload); empty means one write.
	Chunks []int
	// SID is the targeted rule.
	SID int
	// Expect is the required outcome.
	Expect Outcome
	// MissClass identifies the declared miss taxonomy entry; set exactly
	// when Expect is DocumentedMiss.
	MissClass string
	// BaselineDiverges marks cases where the encrypted path intentionally
	// over-alerts relative to the plaintext baseline (delimiter-mode prefix
	// matching of long undelimited keywords); the differential transcript
	// check asserts the divergence instead of equality.
	BaselineDiverges bool
}

// Transform names one evasion class and derives its cases for a
// tokenization mode.
type Transform struct {
	// Name is the transform's stable identifier.
	Name string
	// Desc is a one-line description for reports.
	Desc string
	// Cases derives the transform's adversarial cases for the mode.
	Cases func(mode tokenize.Mode) []Case
}

// Verdict is one case's observed result against both engines.
type Verdict struct {
	// Case is the case that ran.
	Case Case
	// DetectedSIDs are rules the encrypted path fully matched (sorted).
	DetectedSIDs []int
	// BaselineSIDs are rules the plaintext baseline matched (sorted).
	BaselineSIDs []int
	// EncTranscript and BaseTranscript are the canonical alert transcripts
	// of the encrypted path and the plaintext baseline.
	EncTranscript, BaseTranscript string
	// Tokens counts tokens pushed through the encrypted path.
	Tokens int
	// OK reports whether the observed result conforms to Case.Expect.
	OK bool
	// Reason explains a non-conforming verdict.
	Reason string
}

// Runner drives cases through the offline encrypted path
// (tokenize → dpienc → detect) and the plaintext baseline, with one fresh
// detection engine per case so no state leaks across cases.
type Runner struct {
	rs   *rules.Ruleset
	ids  *baseline.IDS
	mode tokenize.Mode
	//bb:secret
	k    bbcrypto.Block
	keys detect.TokenKeys
}

// NewRunner compiles the ruleset for both engines under one mode.
func NewRunner(rs *rules.Ruleset, mode tokenize.Mode) *Runner {
	k := bbcrypto.DeriveBlock([]byte("evasion-adversary"), "k")
	return &Runner{
		rs:   rs,
		ids:  baseline.New(rs),
		mode: mode,
		k:    k,
		keys: core.DirectTokenKeys(k, rs, mode),
	}
}

// Mode returns the runner's tokenization mode.
func (r *Runner) Mode() tokenize.Mode { return r.mode }

// scan drives one bytestream through the offline encrypted path: the
// payload is tokenized chunk by chunk at the given write boundaries,
// encrypted, and fed to a fresh detection engine. It returns the fully
// matched rule SIDs (sorted), the keyword-match offsets per (SID, keyword
// index), and the token count.
func (r *Runner) scan(payload []byte, chunks []int) (sids []int, kwSeen map[[2]int][]int, tokens int) {
	sender := dpienc.NewSender(r.k, bbcrypto.Block{}, dpienc.ProtocolII, 0)
	eng := detect.NewEngine(r.rs, r.keys, detect.Config{Mode: r.mode, Protocol: dpienc.ProtocolII})
	tk := tokenize.New(r.mode)

	kwSeen = map[[2]int][]int{}
	ruleSeen := map[int]bool{}
	record := func(evs []detect.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case detect.KeywordMatch:
				key := [2]int{ev.Rule.SID, ev.KeywordIndex}
				kwSeen[key] = append(kwSeen[key], ev.Offset)
			case detect.RuleMatch:
				ruleSeen[ev.Rule.SID] = true
			}
		}
	}
	feed := func(toks []tokenize.Token) {
		for _, tok := range toks {
			record(eng.ProcessToken(sender.EncryptToken(tok)))
			tokens++
		}
	}
	prev := 0
	for _, cut := range chunks {
		feed(tk.Append(payload[prev:cut]))
		prev = cut
	}
	feed(tk.Append(payload[prev:]))
	feed(tk.Flush())

	for sid := range ruleSeen {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	return sids, kwSeen, tokens
}

// Detect runs one payload through the offline encrypted path in a single
// write and returns the fully matched rule SIDs (sorted) and the token
// count — the scenario harness's flow-level entry point.
func (r *Runner) Detect(payload []byte) (sids []int, tokens int) {
	sids, _, tokens = r.scan(payload, nil)
	return sids, tokens
}

// Run executes one case: the payload is tokenized chunk by chunk (the
// case's write boundaries), encrypted, scanned by a fresh detection
// engine, and independently inspected by the plaintext baseline. The
// verdict records both transcripts and whether the outcome conforms.
func (r *Runner) Run(c Case) Verdict {
	v := Verdict{Case: c}

	var kwSeen map[[2]int][]int
	v.DetectedSIDs, kwSeen, v.Tokens = r.scan(c.Payload, c.Chunks)
	v.EncTranscript = transcript(kwSeen, v.DetectedSIDs)

	truth := r.ids.Inspect(c.Payload)
	v.BaselineSIDs = append([]int(nil), truth.RuleSIDs...)
	v.BaseTranscript = baselineTranscript(r.rs, truth)

	v.evaluate()
	return v
}

// evaluate checks the observed result against the case's expectation.
func (v *Verdict) evaluate() {
	det := containsInt(v.DetectedSIDs, v.Case.SID)
	base := containsInt(v.BaselineSIDs, v.Case.SID)
	switch v.Case.Expect {
	case MustDetect:
		if !det {
			v.Reason = fmt.Sprintf("encrypted path missed sid %d (detected %v)", v.Case.SID, v.DetectedSIDs)
			return
		}
		if v.Case.BaselineDiverges && base {
			v.Reason = fmt.Sprintf("baseline unexpectedly matched sid %d: the documented prefix-match divergence did not occur", v.Case.SID)
			return
		}
	case DocumentedMiss:
		if det {
			v.Reason = fmt.Sprintf("declared miss for sid %d actually detected — stale DocumentedMiss declaration", v.Case.SID)
			return
		}
		if !base {
			v.Reason = fmt.Sprintf("plaintext baseline did not detect sid %d — the case is not a real miss", v.Case.SID)
			return
		}
		if !containsString(DocumentedMissClasses, v.Case.MissClass) {
			v.Reason = fmt.Sprintf("miss class %q is not in the declared registry", v.Case.MissClass)
			return
		}
	case MustNotFalseAlert:
		if len(v.DetectedSIDs) != 0 {
			v.Reason = fmt.Sprintf("encrypted path false-alerted on %v", v.DetectedSIDs)
			return
		}
		if len(v.BaselineSIDs) != 0 {
			v.Reason = fmt.Sprintf("plaintext baseline alerted on %v — the case is a miss, not a non-alert", v.BaselineSIDs)
			return
		}
	}
	v.OK = true
}

// transcript renders the encrypted path's alerts in the canonical form the
// differential test compares byte-for-byte: one sorted line per keyword
// match (with its match offsets) and per rule match.
func transcript(kwSeen map[[2]int][]int, ruleSIDs []int) string {
	var lines []string
	for key, offs := range kwSeen {
		lines = append(lines, keywordLine(key[0], key[1], offs))
	}
	for _, sid := range ruleSIDs {
		lines = append(lines, fmt.Sprintf("rule sid=%d", sid))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// baselineTranscript renders a plaintext baseline result in the same
// canonical form as transcript.
func baselineTranscript(rs *rules.Ruleset, res baseline.Result) string {
	var lines []string
	for ruleIdx, perContent := range res.KeywordOffsets {
		sid := rs.Rules[ruleIdx].SID
		for contentIdx, offs := range perContent {
			lines = append(lines, keywordLine(sid, contentIdx, offs))
		}
	}
	for _, sid := range res.RuleSIDs {
		lines = append(lines, fmt.Sprintf("rule sid=%d", sid))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func keywordLine(sid, idx int, offs []int) string {
	sorted := append([]int(nil), offs...)
	sort.Ints(sorted)
	// Deduplicate: the delimiter tokenizer can emit distinct token forms
	// (full window, padded short word) completing the same keyword at the
	// same offset.
	uniq := sorted[:0]
	for i, o := range sorted {
		if i == 0 || o != sorted[i-1] {
			uniq = append(uniq, o)
		}
	}
	return fmt.Sprintf("keyword sid=%d idx=%d at=%v", sid, idx, uniq)
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
