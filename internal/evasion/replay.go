// Packet-level evasion transforms: reassembly-ambiguity cases replayed
// through the real capture path (segments → pcap bytes → pcap read →
// packet parse → stream reassembly → encrypted detect). The attacker here
// controls segment ordering, duplication and overlap — the ambiguities a
// middlebox's reassembler and a buffering endpoint can resolve
// differently, which "Fingerprinting Deep Packet Inspection Devices by
// Their Ambiguities" identifies as the core DPI evasion surface.

package evasion

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/packet"
	"repro/internal/pcapio"
)

// PacketCase is one adversarial segment sequence with pinned ground truth.
// Unlike a stream Case, the middlebox view (what reassembly yields) and
// the endpoint view (what a standards-compliant buffering receiver
// delivers to the application) can differ — that gap is the evasion.
type PacketCase struct {
	// Transform names the reassembly-ambiguity class.
	Transform string
	// Label uniquely identifies the case within its transform.
	Label string
	// Segments is the on-the-wire segment sequence, in arrival order.
	Segments []*packet.Segment
	// Endpoint is the bytestream the receiving endpoint's application sees;
	// the plaintext baseline (ground truth) inspects this view.
	Endpoint []byte
	// SID is the targeted rule.
	SID int
	// Expect is the required outcome.
	Expect Outcome
	// MissClass identifies the declared miss taxonomy entry; set exactly
	// when Expect is DocumentedMiss.
	MissClass string
}

// packetMSS keeps several data segments per case so ordering transforms
// have room to operate.
const packetMSS = 700

// packetHitAt pins the keyword region inside the third data segment.
const packetHitAt = 2048

// packetFlowKey addresses every replay case's single flow.
func packetFlowKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 80,
	}
}

// PacketCases derives the deterministic reassembly-ambiguity cases. The
// targeted keyword is SIDExact's "attack01" (detectable under both
// tokenization modes), planted delimiter-bounded at a pinned offset.
func PacketCases(seed int64) []PacketCase {
	key := packetFlowKey()
	hit := []byte(" attack01 ")

	evil := corpus.SynthesizeTextSeeded(seed, payloadBytes, corpus.WithHit(packetHitAt, hit))
	benign := corpus.SynthesizeTextSeeded(seed+1, payloadBytes)

	// retransmit-dup: every data segment is transmitted twice back to back.
	// Both the reassembler and the endpoint discard the duplicates, so
	// detection must survive.
	dupSegs := func() []*packet.Segment {
		var out []*packet.Segment
		for _, s := range packet.Segmentize(key, evil, packetMSS) {
			out = append(out, s)
			if len(s.Payload) > 0 {
				dup := *s
				out = append(out, &dup)
			}
		}
		return out
	}()

	// overlap-phantom: the benign stream is sent in order, then a phantom
	// segment re-covers the keyword region's sequence space with keyword
	// bytes. First-wins resolution (both our assembler and the endpoint)
	// discards the phantom, so neither engine may alert; a middlebox with
	// last-wins resolution would false-alert here.
	phantomSegs := func() []*packet.Segment {
		segs := packet.Segmentize(key, benign, packetMSS)
		var out []*packet.Segment
		for _, s := range segs {
			out = append(out, s)
			if covers(s, benign, packetHitAt) {
				phantom := *s
				phantom.Payload = append([]byte(nil), s.Payload...)
				copy(phantom.Payload[packetHitAt-int(s.Seq-1001):], hit)
				out = append(out, &phantom)
			}
		}
		return out
	}()

	// out-of-order: the keyword-bearing segment is swapped with its
	// predecessor. A buffering endpoint reorders and receives the full
	// stream; the replay assembler is in-order-only and drops the keyword
	// segment (and the tail) — a documented miss.
	oooSegs := func() []*packet.Segment {
		segs := packet.Segmentize(key, evil, packetMSS)
		for i := 1; i < len(segs); i++ {
			if covers(segs[i], evil, packetHitAt) {
				segs[i-1], segs[i] = segs[i], segs[i-1]
				break
			}
		}
		return segs
	}()

	return []PacketCase{
		{
			Transform: "retransmit-dup",
			Label:     "retransmit-dup/sid102",
			Segments:  dupSegs,
			Endpoint:  evil,
			SID:       SIDExact,
			Expect:    MustDetect,
		},
		{
			Transform: "overlap-phantom",
			Label:     "overlap-phantom/sid102",
			Segments:  phantomSegs,
			Endpoint:  benign,
			SID:       SIDExact,
			Expect:    MustNotFalseAlert,
		},
		{
			Transform: "out-of-order",
			Label:     "out-of-order/sid102",
			Segments:  oooSegs,
			Endpoint:  evil,
			SID:       SIDExact,
			Expect:    DocumentedMiss,
			MissClass: MissOutOfOrderReassembly,
		},
	}
}

// covers reports whether the data segment's sequence range includes the
// stream offset at (Segmentize starts payload sequence numbers at 1001).
func covers(s *packet.Segment, payload []byte, at int) bool {
	if len(s.Payload) == 0 {
		return false
	}
	start := int(s.Seq - 1001)
	return start <= at && at < start+len(s.Payload)
}

// ReplayThroughCapture pushes a single-flow segment sequence through the
// real capture path — written to an in-memory pcap, read back, parsed and
// checksum-verified, stream-reassembled — and returns the middlebox's
// reassembled view of the flow. Scenario harnesses replay their corpora
// through this path so pcap serialization and reassembly stay in the loop.
func ReplayThroughCapture(segs []*packet.Segment) ([]byte, error) {
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		if err := w.WritePacket(pcapio.Packet{TimestampSec: uint32(i), Data: seg.Marshal()}); err != nil {
			return nil, err
		}
	}

	rd, err := pcapio.NewReader(&buf)
	if err != nil {
		return nil, err
	}
	asm := packet.NewAssembler()
	for {
		p, err := rd.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		seg, err := packet.Unmarshal(p.Data)
		if err != nil {
			return nil, err
		}
		asm.Add(seg)
	}
	keys, payloads := asm.Flows()
	if len(keys) != 1 {
		return nil, fmt.Errorf("evasion: replay produced %d flows, want 1", len(keys))
	}
	return payloads[0], nil
}

// RunPacket replays one packet case through the capture path — the
// segments are written to an in-memory pcap, read back, parsed and
// reassembled — then scans the middlebox's reassembled view through the
// encrypted path while the plaintext baseline inspects the endpoint view.
func (r *Runner) RunPacket(pc PacketCase) (Verdict, error) {
	view, err := ReplayThroughCapture(pc.Segments)
	if err != nil {
		return Verdict{}, err
	}

	v := Verdict{Case: Case{
		Transform: pc.Transform,
		Label:     pc.Label,
		Payload:   view,
		SID:       pc.SID,
		Expect:    pc.Expect,
		MissClass: pc.MissClass,
	}}
	var kwSeen map[[2]int][]int
	v.DetectedSIDs, kwSeen, v.Tokens = r.scan(view, nil)
	v.EncTranscript = transcript(kwSeen, v.DetectedSIDs)

	truth := r.ids.Inspect(pc.Endpoint)
	v.BaselineSIDs = append([]int(nil), truth.RuleSIDs...)
	v.BaseTranscript = baselineTranscript(r.rs, truth)

	v.evaluate()
	return v, nil
}
