package evasion_test

import (
	"strings"
	"testing"

	"repro/internal/evasion"
	"repro/internal/tokenize"
)

func modes() map[string]tokenize.Mode {
	return map[string]tokenize.Mode{
		"window":    tokenize.Window,
		"delimiter": tokenize.Delimiter,
	}
}

// TestStreamTransformsConform drives every stream-level case through the
// offline encrypted path under both tokenization modes and requires each
// verdict to conform to its declared outcome.
func TestStreamTransformsConform(t *testing.T) {
	rs, err := evasion.Rules()
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			r := evasion.NewRunner(rs, mode)
			for _, c := range evasion.StreamCases(mode) {
				v := r.Run(c)
				if !v.OK {
					t.Errorf("%s [%s]: %s", c.Label, c.Expect, v.Reason)
				}
				if v.Tokens == 0 {
					t.Errorf("%s: no tokens flowed through the encrypted path", c.Label)
				}
			}
		})
	}
}

// TestPacketCasesConform replays the reassembly-ambiguity cases through
// the pcap capture path under both modes.
func TestPacketCasesConform(t *testing.T) {
	rs, err := evasion.Rules()
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			r := evasion.NewRunner(rs, mode)
			for _, pc := range evasion.PacketCases(4242) {
				v, err := r.RunPacket(pc)
				if err != nil {
					t.Fatalf("%s: RunPacket: %v", pc.Label, err)
				}
				if !v.OK {
					t.Errorf("%s [%s]: %s", pc.Label, pc.Expect, v.Reason)
				}
			}
		})
	}
}

// TestDifferentialTranscripts is the plaintext-vs-encrypted differential:
// wherever neither engine is expected to miss, the two alert transcripts
// must be byte-identical; for declared misses and the documented
// prefix-match divergence, the transcripts must differ in exactly the
// declared direction.
func TestDifferentialTranscripts(t *testing.T) {
	rs, err := evasion.Rules()
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	for name, mode := range modes() {
		t.Run(name, func(t *testing.T) {
			r := evasion.NewRunner(rs, mode)
			for _, c := range evasion.StreamCases(mode) {
				v := r.Run(c)
				if !v.OK {
					t.Fatalf("%s: non-conforming verdict taints differential: %s", c.Label, v.Reason)
				}
				switch {
				case c.Expect == evasion.MustDetect && !c.BaselineDiverges,
					c.Expect == evasion.MustNotFalseAlert:
					if v.EncTranscript != v.BaseTranscript {
						t.Errorf("%s: transcript divergence\nencrypted:\n%s\nbaseline:\n%s",
							c.Label, v.EncTranscript, v.BaseTranscript)
					}
				case c.BaselineDiverges:
					if v.EncTranscript == v.BaseTranscript {
						t.Errorf("%s: expected documented prefix-match divergence, transcripts identical", c.Label)
					}
				case c.Expect == evasion.DocumentedMiss:
					if strings.Contains(v.EncTranscript, "rule sid=") {
						t.Errorf("%s: declared miss but encrypted transcript has rule alerts:\n%s",
							c.Label, v.EncTranscript)
					}
					if !strings.Contains(v.BaseTranscript, "rule sid=") {
						t.Errorf("%s: declared miss but baseline transcript has no rule alert:\n%s",
							c.Label, v.BaseTranscript)
					}
				}
			}
		})
	}
}

// TestTransformInventory pins the suite's shape: at least six named
// transforms across the stream and packet layers, unique names, and every
// declared miss class drawn from the registry.
func TestTransformInventory(t *testing.T) {
	names := map[string]bool{}
	for _, tr := range evasion.Transforms() {
		if tr.Name == "" || tr.Desc == "" {
			t.Errorf("transform %+v missing name or description", tr)
		}
		if names[tr.Name] {
			t.Errorf("duplicate transform name %q", tr.Name)
		}
		names[tr.Name] = true
	}
	for _, pc := range evasion.PacketCases(1) {
		names[pc.Transform] = true
	}
	if len(names) < 6 {
		t.Fatalf("suite names %d transforms, issue requires >= 6: %v", len(names), names)
	}

	registered := map[string]bool{}
	for _, mc := range evasion.DocumentedMissClasses {
		registered[mc] = true
	}
	for _, mode := range modes() {
		for _, c := range evasion.StreamCases(mode) {
			if (c.Expect == evasion.DocumentedMiss) != (c.MissClass != "") {
				t.Errorf("%s: MissClass %q inconsistent with outcome %s", c.Label, c.MissClass, c.Expect)
			}
			if c.MissClass != "" && !registered[c.MissClass] {
				t.Errorf("%s: miss class %q not in registry", c.Label, c.MissClass)
			}
		}
	}
	for _, pc := range evasion.PacketCases(1) {
		if pc.MissClass != "" && !registered[pc.MissClass] {
			t.Errorf("%s: miss class %q not in registry", pc.Label, pc.MissClass)
		}
	}
}

// TestOutcomeString pins the JSON/report names.
func TestOutcomeString(t *testing.T) {
	want := map[evasion.Outcome]string{
		evasion.MustDetect:        "must-detect",
		evasion.DocumentedMiss:    "documented-miss",
		evasion.MustNotFalseAlert: "must-not-false-alert",
		evasion.Outcome(99):       "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), s)
		}
	}
}

// TestCasesDeterministic requires byte-identical payloads across
// derivations: the adversary corpus is part of the reproducibility
// contract.
func TestCasesDeterministic(t *testing.T) {
	a := evasion.StreamCases(tokenize.Delimiter)
	b := evasion.StreamCases(tokenize.Delimiter)
	if len(a) != len(b) {
		t.Fatalf("case count varies: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || string(a[i].Payload) != string(b[i].Payload) {
			t.Errorf("case %d (%s) not deterministic", i, a[i].Label)
		}
	}
}
