// The named stream-level evasion transforms. Each transform derives
// deterministic adversarial cases from the pack ruleset: a ground-truth
// corpus payload (seeded benign text) with keyword material pinned at
// exact offsets via corpus.WithHit, mutated and chunked per the evasion
// class, and tagged with the expected outcome for the tokenization mode.

package evasion

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/rules"
	"repro/internal/tokenize"
)

// RuleText is the evasion pack's ruleset: one rule per keyword shape the
// tokenizer treats differently (long undelimited, exact-window, short,
// internally-delimited, multi-keyword).
const RuleText = `alert tcp any any -> any any (msg:"EV long keyword"; content:"evilpayload9"; sid:101;)
alert tcp any any -> any any (msg:"EV exact-window keyword"; content:"attack01"; sid:102;)
alert tcp any any -> any any (msg:"EV short keyword"; content:"badkw"; sid:103;)
alert tcp any any -> any any (msg:"EV query keyword"; content:"?cmd=evil"; sid:104;)
alert tcp any any -> any any (msg:"EV multi keyword"; content:"evilhdrX"; content:"attack01"; sid:105;)`

// Evasion pack rule SIDs.
const (
	// SIDLong is a 12-byte keyword with no internal delimiters.
	SIDLong = 101
	// SIDExact is an exactly-TokenSize keyword.
	SIDExact = 102
	// SIDShort is a sub-TokenSize keyword (padded-token class).
	SIDShort = 103
	// SIDQuery is a keyword anchored on an internal keyword delimiter.
	SIDQuery = 104
	// SIDMulti is a two-keyword Protocol II rule.
	SIDMulti = 105
)

// Rules parses the evasion pack ruleset.
func Rules() (*rules.Ruleset, error) { return rules.Parse("evasion", RuleText) }

// packRule pins one rule's keyword material for case construction.
type packRule struct {
	sid int
	kws []string
}

var packRules = []packRule{
	{SIDLong, []string{"evilpayload9"}},
	{SIDExact, []string{"attack01"}},
	{SIDShort, []string{"badkw"}},
	{SIDQuery, []string{"?cmd=evil"}},
	{SIDMulti, []string{"evilhdrX", "attack01"}},
}

// payloadBytes is the benign-carrier size of every stream case.
const payloadBytes = 4 << 10

// hitOffsets places the i-th keyword of a rule; spacing leaves room for
// benign bytes between multi-keyword hits (Protocol II distance
// semantics are not under test here).
func hitOffset(i int) int { return 1024 + i*1024 }

// baseSeed separates evasion payload seeds from the other corpora.
const baseSeed = 7700

// caseSeed derives a distinct benign carrier per (transform, sid).
func caseSeed(transform int, sid int) int64 {
	return baseSeed + int64(transform)*1000 + int64(sid)
}

// shortUnderWindow reports whether the rule carries a sub-window keyword,
// which window tokenization cannot express at all.
func shortUnderWindow(pr packRule, mode tokenize.Mode) bool {
	if mode != tokenize.Window {
		return false
	}
	for _, kw := range pr.kws {
		if len(kw) < tokenize.TokenSize {
			return true
		}
	}
	return false
}

// carrier builds the benign payload with each rule keyword (possibly
// mutated by mutate) planted via the glue function at its pinned offset.
func carrier(seed int64, pr packRule, glue func(string) string, mutate func(string) string) []byte {
	opts := make([]corpus.TextOption, 0, len(pr.kws))
	for i, kw := range pr.kws {
		if mutate != nil {
			kw = mutate(kw)
		}
		opts = append(opts, corpus.WithHit(hitOffset(i), []byte(glue(kw))))
	}
	return corpus.SynthesizeTextSeeded(seed, payloadBytes, opts...)
}

// alignedGlue plants a keyword delimiter-bounded.
func alignedGlue(kw string) string { return " " + kw + " " }

// midwordGlue embeds a keyword mid-word: alphanumerics on both sides, so
// no delimiter boundary anchors it.
func midwordGlue(kw string) string { return "zq" + kw + "qz" }

// flipCase swaps the case of every ASCII letter.
func flipCase(kw string) string {
	out := []byte(kw)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z':
			out[i] = c - 'a' + 'A'
		case c >= 'A' && c <= 'Z':
			out[i] = c - 'A' + 'a'
		}
	}
	return string(out)
}

// stuffDelimiter inserts a delimiter inside the keyword's leading
// fragment, breaking every fragment the rule compiles to.
func stuffDelimiter(kw string) string { return kw[:4] + "." + kw[4:] }

// nearMiss substitutes one byte inside the keyword's leading fragment.
func nearMiss(kw string) string {
	out := []byte(kw)
	if out[2] == 'X' {
		out[2] = 'Y'
	} else {
		out[2] = 'X'
	}
	return string(out)
}

// kwCuts returns write-boundary offsets inside each planted keyword:
// directly after the first keyword byte, mid-keyword, and directly before
// the last byte — the splits a keyword-aware attacker aims at token and
// window boundaries.
func kwCuts(pr packRule) []int {
	var cuts []int
	for i, kw := range pr.kws {
		start := hitOffset(i) + 1 // glue is " kw ", keyword starts one past
		cuts = append(cuts, start+1, start+len(kw)/2, start+len(kw)-1)
	}
	return cuts
}

// tinyCuts fragments the regions around every planted keyword into 1–3
// byte writes (cycling), with single cuts at the region edges; the rest of
// the payload flows in large writes.
func tinyCuts(pr packRule) []int {
	var cuts []int
	for i, kw := range pr.kws {
		lo := hitOffset(i) - 8
		hi := hitOffset(i) + len(kw) + 10
		cuts = append(cuts, lo)
		at, step := lo, 1
		for at < hi {
			at += step
			cuts = append(cuts, at)
			step = step%3 + 1
		}
	}
	return cuts
}

// detectOutcome is the default expectation for a delimiter-bounded planted
// keyword: detected everywhere except the short-keyword window gap.
func detectOutcome(pr packRule, mode tokenize.Mode) (Outcome, string) {
	if shortUnderWindow(pr, mode) {
		return DocumentedMiss, MissShortKeywordWindow
	}
	return MustDetect, ""
}

// Transforms returns the named stream-level evasion transforms, in
// deterministic order.
func Transforms() []Transform {
	return []Transform{
		{
			Name: "aligned",
			Desc: "keyword planted delimiter-bounded in one write (ground-truth control)",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					exp, miss := detectOutcome(pr, mode)
					out = append(out, Case{
						Transform: "aligned",
						Label:     fmt.Sprintf("aligned/sid%d", pr.sid),
						Payload:   carrier(caseSeed(0, pr.sid), pr, alignedGlue, nil),
						SID:       pr.sid,
						Expect:    exp,
						MissClass: miss,
					})
				}
				return out
			},
		},
		{
			Name: "boundary-split",
			Desc: "keyword split across writes directly after its first byte, mid-keyword, and before its last byte",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					exp, miss := detectOutcome(pr, mode)
					out = append(out, Case{
						Transform: "boundary-split",
						Label:     fmt.Sprintf("boundary-split/sid%d", pr.sid),
						Payload:   carrier(caseSeed(1, pr.sid), pr, alignedGlue, nil),
						Chunks:    kwCuts(pr),
						SID:       pr.sid,
						Expect:    exp,
						MissClass: miss,
					})
				}
				return out
			},
		},
		{
			Name: "tiny-fragments",
			Desc: "stream fragmented into 1-3 byte writes around every keyword (parser-ambiguous offsets)",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					exp, miss := detectOutcome(pr, mode)
					out = append(out, Case{
						Transform: "tiny-fragments",
						Label:     fmt.Sprintf("tiny-fragments/sid%d", pr.sid),
						Payload:   carrier(caseSeed(2, pr.sid), pr, alignedGlue, nil),
						Chunks:    tinyCuts(pr),
						SID:       pr.sid,
						Expect:    exp,
						MissClass: miss,
					})
				}
				return out
			},
		},
		{
			Name: "midword-glue",
			Desc: "keyword embedded mid-word (no delimiter boundary) — the §7.1 delimiter-mode loss",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					var (
						exp  Outcome
						miss string
					)
					switch {
					case shortUnderWindow(pr, mode):
						exp, miss = DocumentedMiss, MissShortKeywordWindow
					case mode == tokenize.Window:
						// Window tokenization covers every offset; glue
						// cannot hide a full-size keyword.
						exp = MustDetect
					case pr.sid == SIDQuery:
						// The keyword's internal '?'/'=' delimiters anchor
						// word starts even when glued: gluing does not evade
						// internally-delimited keywords.
						exp = MustDetect
					default:
						exp, miss = DocumentedMiss, MissMidwordDelimiter
					}
					out = append(out, Case{
						Transform: "midword-glue",
						Label:     fmt.Sprintf("midword-glue/sid%d", pr.sid),
						Payload:   carrier(caseSeed(3, pr.sid), pr, midwordGlue, nil),
						SID:       pr.sid,
						Expect:    exp,
						MissClass: miss,
					})
				}
				return out
			},
		},
		{
			Name: "case-flip",
			Desc: "keyword case-mutated; exact-match detection is case-sensitive on both engines",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					out = append(out, Case{
						Transform: "case-flip",
						Label:     fmt.Sprintf("case-flip/sid%d", pr.sid),
						Payload:   carrier(caseSeed(4, pr.sid), pr, alignedGlue, flipCase),
						SID:       pr.sid,
						Expect:    MustNotFalseAlert,
					})
				}
				return out
			},
		},
		{
			Name: "delimiter-stuff",
			Desc: "delimiter inserted inside the keyword's leading fragment, breaking every compiled fragment",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					out = append(out, Case{
						Transform: "delimiter-stuff",
						Label:     fmt.Sprintf("delimiter-stuff/sid%d", pr.sid),
						Payload:   carrier(caseSeed(5, pr.sid), pr, alignedGlue, stuffDelimiter),
						SID:       pr.sid,
						Expect:    MustNotFalseAlert,
					})
				}
				return out
			},
		},
		{
			Name: "near-miss",
			Desc: "one byte substituted inside the keyword's leading fragment",
			Cases: func(mode tokenize.Mode) []Case {
				var out []Case
				for _, pr := range packRules {
					out = append(out, Case{
						Transform: "near-miss",
						Label:     fmt.Sprintf("near-miss/sid%d", pr.sid),
						Payload:   carrier(caseSeed(6, pr.sid), pr, alignedGlue, nearMiss),
						SID:       pr.sid,
						Expect:    MustNotFalseAlert,
					})
				}
				return out
			},
		},
		{
			Name: "pad-adjacent",
			Desc: "short keyword followed by literal pad bytes (0x00) — padded-token forgery attempt",
			Cases: func(mode tokenize.Mode) []Case {
				pr := packRules[2] // SIDShort
				exp, miss := detectOutcome(pr, mode)
				return []Case{{
					Transform: "pad-adjacent",
					Label:     "pad-adjacent/sid103",
					Payload: carrier(caseSeed(7, pr.sid), pr,
						func(kw string) string { return " " + kw + "\x00\x00\x00 " }, nil),
					SID:       pr.sid,
					Expect:    exp,
					MissClass: miss,
				}}
			},
		},
		{
			Name: "prefix-tail-alert",
			Desc: "long undelimited keyword with a mutated tail: delimiter-mode prefix matching over-alerts (documented), window mode stays silent",
			Cases: func(mode tokenize.Mode) []Case {
				pr := packRules[0] // SIDLong
				mutTail := func(kw string) string {
					return kw[:tokenize.TokenSize] + strings.Repeat("Z", len(kw)-tokenize.TokenSize)
				}
				c := Case{
					Transform: "prefix-tail-alert",
					Label:     "prefix-tail-alert/sid101",
					Payload:   carrier(caseSeed(8, pr.sid), pr, alignedGlue, mutTail),
					SID:       pr.sid,
				}
				if mode == tokenize.Delimiter {
					// The leading fragment is the keyword's only delimiter-
					// mode fragment, so the mutated tail still alerts — a
					// documented over-alert relative to the baseline.
					c.Expect = MustDetect
					c.BaselineDiverges = true
				} else {
					c.Expect = MustNotFalseAlert
				}
				return []Case{c}
			},
		},
	}
}

// StreamCases flattens every transform's cases for the mode.
func StreamCases(mode tokenize.Mode) []Case {
	var out []Case
	for _, tr := range Transforms() {
		out = append(out, tr.Cases(mode)...)
	}
	return out
}
