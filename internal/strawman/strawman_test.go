package strawman

import (
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/tokenize"
)

func tok(s string) tokenize.Token {
	var t tokenize.Token
	copy(t.Text[:], s)
	return t
}

func TestSearchableDetectsMatch(t *testing.T) {
	k := bbcrypto.RandomBlock()
	sender := NewSearchableSender(k)
	rules := []string{"ruleone1", "ruletwo2", "attackkw"}
	keys := make([]dpienc.TokenKey, len(rules))
	for i, r := range rules {
		keys[i] = dpienc.ComputeTokenKey(k, tok(r).Text)
	}
	mb := NewSearchableMB(keys)
	if mb.NumRules() != 3 {
		t.Fatalf("NumRules = %d", mb.NumRules())
	}
	ct := sender.EncryptToken(tok("attackkw"))
	got := mb.Detect(ct)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Detect = %v, want [2]", got)
	}
	if got := mb.Detect(sender.EncryptToken(tok("innocent"))); len(got) != 0 {
		t.Fatalf("false positive: %v", got)
	}
}

func TestSearchableRandomizedCiphertexts(t *testing.T) {
	// Same token twice must yield different salts and ciphertext bytes
	// (randomized encryption), unlike a deterministic scheme.
	sender := NewSearchableSender(bbcrypto.RandomBlock())
	a := sender.EncryptToken(tok("sametokn"))
	b := sender.EncryptToken(tok("sametokn"))
	if a.Salt == b.Salt {
		t.Fatal("salts repeated")
	}
	if a.C == b.C {
		t.Fatal("ciphertexts repeated despite fresh salts")
	}
}

func TestSearchableRepeatedDetection(t *testing.T) {
	// Unlike BlindBox's counter discipline, the searchable strawman has no
	// state: repeated occurrences must each be detected.
	k := bbcrypto.RandomBlock()
	sender := NewSearchableSender(k)
	mb := NewSearchableMB([]dpienc.TokenKey{dpienc.ComputeTokenKey(k, tok("attackkw").Text)})
	for i := 0; i < 5; i++ {
		if got := mb.Detect(sender.EncryptToken(tok("attackkw"))); len(got) != 1 {
			t.Fatalf("occurrence %d missed: %v", i, got)
		}
	}
}

func TestFEEqualityPredicate(t *testing.T) {
	s := NewFEScheme()
	key := s.KeyGen(tok("attackkw").Text)
	if !s.Test(s.Encrypt(tok("attackkw")), key) {
		t.Fatal("FE equality test missed a match")
	}
	if s.Test(s.Encrypt(tok("innocent")), key) {
		t.Fatal("FE equality test false positive")
	}
}

func TestFEDistinctKeysDistinctPredicates(t *testing.T) {
	s := NewFEScheme()
	k1 := s.KeyGen(tok("keyword1").Text)
	k2 := s.KeyGen(tok("keyword2").Text)
	ct := s.Encrypt(tok("keyword1"))
	if !s.Test(ct, k1) || s.Test(ct, k2) {
		t.Fatal("FE keys not keyword-specific")
	}
}

func TestFECiphertextRandomized(t *testing.T) {
	s := NewFEScheme()
	a := s.Encrypt(tok("sametokn"))
	b := s.Encrypt(tok("sametokn"))
	same := true
	for i := range a.C {
		if a.C[i].Cmp(b.C[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("FE ciphertexts deterministic")
	}
	// But both still match the keyword's key.
	key := s.KeyGen(tok("sametokn").Text)
	if !s.Test(a, key) || !s.Test(b, key) {
		t.Fatal("randomization broke the predicate")
	}
}

func TestFEVectorLength(t *testing.T) {
	s := NewFEScheme()
	ct := s.Encrypt(tok("whatever"))
	if len(ct.C) != feVectorLen {
		t.Fatalf("ciphertext has %d components, want %d", len(ct.C), feVectorLen)
	}
	key := s.KeyGen(tok("whatever").Text)
	if len(key.V) != feVectorLen {
		t.Fatalf("key has %d components, want %d", len(key.V), feVectorLen)
	}
}
