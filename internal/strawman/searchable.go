// Package strawman implements the two comparison schemes of §7.2.1:
//
//   - A randomized symmetric searchable encryption in the style of Song,
//     Wagner and Perrig ("the searchable strawman"), with SHA replaced by
//     AES exactly as the paper's adapted implementation does. Its
//     per-token encryption draws a fresh random salt from the system
//     entropy pool (the cost the paper identifies) and, because the salt
//     travels with every ciphertext, detection must combine every token
//     with every rule — linear in the ruleset.
//
//   - A functional-encryption scheme shaped after Katz–Sahai–Waters
//     inner-product predicate encryption ("the FE strawman"). KSW needs
//     composite-order pairings, which have no stdlib implementation; we
//     build a *cost-faithful, functionally correct* inner-product predicate
//     test over Z_p* using big-integer exponentiations, with vector length
//     matching a bit-decomposed token (DESIGN.md: the paper itself treats
//     its Katz et al. numbers as "a generous lower bound on the
//     performance of the generic protocols"). It is a performance
//     strawman, not a secure construction.
package strawman

import (
	"crypto/rand"
	"encoding/binary"

	"repro/internal/bbcrypto"
	"repro/internal/dpienc"
	"repro/internal/tokenize"
)

// SearchableCiphertext is one searchable-strawman encrypted token: unlike
// DPIEnc, the salt is transmitted explicitly with every token.
type SearchableCiphertext struct {
	Salt uint64
	C    dpienc.Ciphertext
}

// SearchableSender encrypts tokens under the Song-style scheme.
type SearchableSender struct {
	k bbcrypto.Block
}

// NewSearchableSender creates a sender with session key k.
func NewSearchableSender(k bbcrypto.Block) *SearchableSender {
	return &SearchableSender{k: k}
}

// EncryptToken encrypts one token: a fresh random salt is read from the
// system entropy pool per token (the dominant cost the paper measures:
// 2.7 µs per token vs DPIEnc's 69 ns), then the same AES construction as
// DPIEnc is applied.
func (s *SearchableSender) EncryptToken(t tokenize.Token) SearchableCiphertext {
	salt := mustSalt()
	tk := dpienc.ComputeTokenKey(s.k, t.Text)
	return SearchableCiphertext{Salt: salt, C: dpienc.Encrypt(tk, salt)}
}

// mustSalt reads a fresh 8-byte salt from the system entropy pool,
// panicking when the pool fails (unrecoverable).
func mustSalt() uint64 {
	var saltBytes [8]byte
	if _, err := rand.Read(saltBytes[:]); err != nil {
		panic("strawman: entropy pool read failed: " + err.Error())
	}
	return binary.BigEndian.Uint64(saltBytes[:])
}

// SearchableMB is the middlebox for the searchable strawman. Because every
// ciphertext carries its own salt, no precomputed search structure is
// possible: each token is tested against each rule keyword.
type SearchableMB struct {
	ruleKeys []dpienc.TokenKey
}

// NewSearchableMB creates the middlebox with the rule token keys (obtained
// the same way as BlindBox's, e.g. via obfuscated rule encryption).
func NewSearchableMB(ruleKeys []dpienc.TokenKey) *SearchableMB {
	return &SearchableMB{ruleKeys: ruleKeys}
}

// NumRules returns the number of rule keywords.
func (m *SearchableMB) NumRules() int { return len(m.ruleKeys) }

// Detect tests one encrypted token against every rule, returning the
// indices of matching rules. This is the Θ(#rules) per-token scan that
// makes the strawman three orders of magnitude slower than BlindBox
// Detect (§7.2.3).
func (m *SearchableMB) Detect(ct SearchableCiphertext) []int {
	var matches []int
	for i, tk := range m.ruleKeys {
		//lint:ignore ct-compare both sides are wire-public ciphertexts; the variable-time linear scan is the strawman cost being measured
		if dpienc.Encrypt(tk, ct.Salt) == ct.C {
			matches = append(matches, i)
		}
	}
	return matches
}
