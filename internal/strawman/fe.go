// The functional-encryption strawman: an inner-product predicate equality
// test over Z_p* with bit-decomposition-length vectors, matching the cost
// profile of Katz–Sahai–Waters predicate encryption (per-component group
// exponentiations at both encryption and test time).

package strawman

import (
	"crypto/rand"
	"encoding/binary"
	"math/big"

	"repro/internal/tokenize"
)

// feVectorLen is the predicate vector length: one component per token bit
// (64) plus one constant component, doubled to account for KSW's paired
// subgroup components. Each component costs one exponentiation at
// encryption and one at test time.
const feVectorLen = 130

// feModulusHex is a fixed 1024-bit safe prime (RFC 2409 Oakley Group 2),
// giving realistic exponentiation costs without per-process setup.
const feModulusHex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381" +
	"FFFFFFFFFFFFFFFF"

// FEScheme is the shared group context.
type FEScheme struct {
	p *big.Int // modulus
	q *big.Int // group exponent modulus (p-1)
	g *big.Int // generator
}

// NewFEScheme initializes the group.
func NewFEScheme() *FEScheme {
	p, _ := new(big.Int).SetString(feModulusHex, 16)
	return &FEScheme{
		p: p,
		q: new(big.Int).Sub(p, big.NewInt(1)),
		g: big.NewInt(2),
	}
}

// FECiphertext encrypts one token: per-component group elements whose
// exponents secret-share the token value, plus the blinded base.
type FECiphertext struct {
	// C holds one group element per vector component.
	C []*big.Int
}

// FEKey is the decryption/test key for one keyword (the predicate vector).
type FEKey struct {
	// V holds the predicate exponents, blinded by a per-key random ρ.
	V []*big.Int
}

func tokenValue(t [tokenize.TokenSize]byte) *big.Int {
	return new(big.Int).SetUint64(binary.BigEndian.Uint64(t[:]))
}

// mustInt draws a uniform value below max from crypto/rand, panicking when
// the platform entropy pool fails (unrecoverable).
func mustInt(max *big.Int) *big.Int {
	v, err := rand.Int(rand.Reader, max)
	if err != nil {
		panic("strawman: fe randomness: " + err.Error())
	}
	return v
}

// Encrypt encrypts a token: the token value T is secret-shared as
// a_1+...+a_{n-1} = T (mod q) across the vector, and component i carries
// g^{r·a_i} for a per-ciphertext random r. One exponentiation per
// component, as in KSW.
func (s *FEScheme) Encrypt(t tokenize.Token) *FECiphertext {
	T := tokenValue(t.Text)
	r := mustInt(s.q)
	n := feVectorLen
	ct := &FECiphertext{C: make([]*big.Int, n)}
	// Component 0 encodes the constant 1; components 1..n-1 share T.
	exps := make([]*big.Int, n)
	exps[0] = big.NewInt(1)
	sum := new(big.Int)
	for i := 1; i < n-1; i++ {
		a := mustInt(s.q)
		exps[i] = a
		sum.Add(sum, a)
	}
	last := new(big.Int).Sub(T, sum)
	last.Mod(last, s.q)
	exps[n-1] = last
	for i := 0; i < n; i++ {
		e := new(big.Int).Mul(exps[i], r)
		e.Mod(e, s.q)
		ct.C[i] = new(big.Int).Exp(s.g, e, s.p)
	}
	return ct
}

// KeyGen derives the predicate key for an equality test against keyword
// fragment kw: v = ρ·(-K, 1, 1, ..., 1) so that <x, v> = ρ(T - K), which is
// zero exactly when the token equals the keyword.
func (s *FEScheme) KeyGen(kw [tokenize.TokenSize]byte) *FEKey {
	K := tokenValue(kw)
	rho := mustInt(s.q)
	n := feVectorLen
	key := &FEKey{V: make([]*big.Int, n)}
	negK := new(big.Int).Neg(K)
	negK.Mod(negK, s.q)
	key.V[0] = new(big.Int).Mul(negK, rho)
	key.V[0].Mod(key.V[0], s.q)
	for i := 1; i < n; i++ {
		key.V[i] = rho
	}
	return key
}

// Test evaluates the predicate: it computes prod_i C_i^{v_i} = g^{r·<x,v>}
// and reports whether the inner product is zero (token equals keyword).
// One exponentiation per component — the "pairing per component" cost of
// KSW, which is what makes FE detection take ~10^2 ms per (token, rule)
// pair (Table 2).
func (s *FEScheme) Test(ct *FECiphertext, key *FEKey) bool {
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for i := range key.V {
		tmp.Exp(ct.C[i], key.V[i], s.p)
		acc.Mul(acc, tmp)
		acc.Mod(acc, s.p)
	}
	return acc.Cmp(big.NewInt(1)) == 0
}
