package dpienc

import (
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// FuzzEncryptRecoverRoundTrip checks the §3.2/§5 sender invariants on
// arbitrary tokens: every C1 equals the middlebox-side recomputation
// Enc(tk, salt0+i·stride), Protocol III's C2 always yields kSSL through
// RecoverSSLKey, and the 40-bit wire form round-trips.
func FuzzEncryptRecoverRoundTrip(f *testing.F) {
	f.Add([]byte("maliciou"), uint64(0), uint8(1), uint8(3))
	f.Add([]byte("attack!!"), uint64(1)<<39, uint8(3), uint8(7))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, ^uint64(0)-16, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, text []byte, salt0 uint64, protoByte, reps uint8) {
		protocol := []Protocol{ProtocolI, ProtocolII, ProtocolIII}[int(protoByte)%3]
		k := bbcrypto.DeriveBlock(text, "fuzz detection key")
		kSSL := bbcrypto.DeriveBlock(text, "fuzz ssl key")
		var tok tokenize.Token
		copy(tok.Text[:], text)

		s := NewSender(k, kSSL, protocol, salt0)
		tk := ComputeTokenKey(k, tok.Text)
		stride := uint64(1)
		if protocol == ProtocolIII {
			stride = 2
		}
		n := int(reps%8) + 1
		for i := 0; i < n; i++ {
			et := s.EncryptToken(tok)
			salt := salt0 + uint64(i)*stride
			if want := Encrypt(tk, salt); et.C1 != want {
				t.Fatalf("occurrence %d: C1 = %x, middlebox recomputes %x", i, et.C1, want)
			}
			if got := CiphertextFromUint64(et.C1.Uint64()); got != et.C1 {
				t.Fatalf("ciphertext wire form does not round-trip: %x -> %x", et.C1, got)
			}
			if protocol == ProtocolIII {
				if rec := RecoverSSLKey(tk, salt, et.C2); rec != kSSL {
					t.Fatalf("occurrence %d: RecoverSSLKey = %x, want kSSL = %x", i, rec, kSSL)
				}
			} else if et.C2 != (bbcrypto.Block{}) {
				t.Fatalf("protocol %v emitted a C2", protocol)
			}
		}
	})
}

// FuzzCounterResetSync differentially checks the §3.2 counter-table
// protocol on arbitrary streams with small reset intervals: a model
// middlebox that only follows the documented contract (i-th occurrence
// since the last announced salt0 is encrypted under salt0+i·stride) must
// predict every ciphertext the sender emits.
func FuzzCounterResetSync(f *testing.F) {
	f.Add([]byte("abcdefgh abcdefgh abcdefgh"), uint64(7), uint8(3))
	f.Add([]byte("the same token the same token"), uint64(0), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint64(1)<<30, uint8(60))
	f.Fuzz(func(t *testing.T, data []byte, salt0 uint64, interval uint8) {
		if len(data) > 2048 {
			return
		}
		k := bbcrypto.DeriveBlock(data, "fuzz k")
		s := NewSender(k, bbcrypto.Block{}, ProtocolII, salt0)
		s.SetResetInterval(int(interval%64) + 1)

		counts := make(map[[tokenize.TokenSize]byte]uint64)
		modelSalt0 := salt0
		for _, tok := range tokenize.TokenizeAll(tokenize.Window, data) {
			et := s.EncryptToken(tok)
			want := Encrypt(ComputeTokenKey(k, tok.Text), modelSalt0+counts[tok.Text])
			if et.C1 != want {
				t.Fatalf("sender and model middlebox desynchronized at offset %d", tok.Offset)
			}
			counts[tok.Text]++
			if newSalt0, reset := s.AccountBytes(tokenize.TokenSize); reset {
				if newSalt0 <= modelSalt0 && newSalt0 >= salt0 {
					t.Fatalf("reset reused salt space: new salt0 %d, old %d", newSalt0, modelSalt0)
				}
				modelSalt0 = newSalt0
				clear(counts)
			}
		}
	})
}
