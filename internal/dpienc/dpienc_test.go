package dpienc

import (
	"testing"
	"testing/quick"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

func tok(s string, off int) tokenize.Token {
	var t tokenize.Token
	copy(t.Text[:], s)
	t.Offset = off
	return t
}

func TestCiphertextUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<40 - 1
		return CiphertextFromUint64(v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptMatchesMiddleboxView(t *testing.T) {
	// The core detection equation: the sender computes AES_{AES_k(t)}(salt)
	// and the middlebox, holding only AES_k(r) for r == t, must compute the
	// identical ciphertext.
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolII, 100)
	token := tok("maliciou", 0)
	et := s.EncryptToken(token)

	tk := ComputeTokenKey(k, token.Text) // MB receives this via rule prep
	if Encrypt(tk, 100) != et.C1 {
		t.Fatal("middlebox-side encryption does not match sender ciphertext")
	}
}

func TestEqualTokensGetDistinctCiphertexts(t *testing.T) {
	// §3.2: no two equal tokens may share a salt, so their ciphertexts must
	// differ (randomized encryption property).
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 0)
	a1 := s.EncryptToken(tok("AAAAAAAA", 0))
	b := s.EncryptToken(tok("BBBBBBBB", 8))
	a2 := s.EncryptToken(tok("AAAAAAAA", 16))
	if a1.C1 == a2.C1 {
		t.Fatal("equal tokens produced equal ciphertexts")
	}
	// And the sequence of salts per token is salt0, salt0+1, ...:
	tk := ComputeTokenKey(k, tok("AAAAAAAA", 0).Text)
	if Encrypt(tk, 0) != a1.C1 || Encrypt(tk, 1) != a2.C1 {
		t.Fatal("counter salts not advancing by one per occurrence")
	}
	tkB := ComputeTokenKey(k, tok("BBBBBBBB", 0).Text)
	if Encrypt(tkB, 0) != b.C1 {
		t.Fatal("first occurrence of a different token must reuse salt0")
	}
}

func TestSaltsNeverRepeatPerToken(t *testing.T) {
	// Property: across many encryptions (with resets), the (token, salt)
	// pairs implied by the protocol never repeat.
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 0)
	s.SetResetInterval(64)
	seen := make(map[string]map[uint64]bool)
	words := []string{"AAAAAAAA", "BBBBBBBB", "CCCCCCCC"}
	for i := 0; i < 1000; i++ {
		w := words[i%len(words)]
		before := s.countOf(tok(w, 0).Text) + s.salt0
		s.EncryptToken(tok(w, i))
		m := seen[w]
		if m == nil {
			m = make(map[uint64]bool)
			seen[w] = m
		}
		if m[before] {
			t.Fatalf("salt %d reused for token %q at step %d", before, w, i)
		}
		m[before] = true
		s.AccountBytes(13)
	}
}

func TestProtocolIIISSLKeyRecovery(t *testing.T) {
	k := bbcrypto.RandomBlock()
	kSSL := bbcrypto.RandomBlock()
	s := NewSender(k, kSSL, ProtocolIII, 0)
	token := tok("attackkw", 42)
	et := s.EncryptToken(token)

	tk := ComputeTokenKey(k, token.Text)
	// MB matched C1 under salt 0, so C2 was built under salt 1.
	got := RecoverSSLKey(tk, 0, et.C2)
	if got != kSSL {
		t.Fatalf("recovered key %x, want %x", got, kSSL)
	}
}

func TestProtocolIIIWrongKeywordCannotRecover(t *testing.T) {
	k := bbcrypto.RandomBlock()
	kSSL := bbcrypto.RandomBlock()
	s := NewSender(k, kSSL, ProtocolIII, 0)
	et := s.EncryptToken(tok("attackkw", 0))

	wrong := ComputeTokenKey(k, tok("innocent", 0).Text)
	if RecoverSSLKey(wrong, 0, et.C2) == kSSL {
		t.Fatal("non-matching keyword recovered kSSL")
	}
}

func TestProtocolIIIC1C2SaltsDisjoint(t *testing.T) {
	// §5: c1 uses even salts, c2 odd salts; XOR of c1's full block and c2
	// must never cancel to reveal kSSL.
	k := bbcrypto.RandomBlock()
	kSSL := bbcrypto.RandomBlock()
	s := NewSender(k, kSSL, ProtocolIII, 0)
	token := tok("attackkw", 0)
	tk := ComputeTokenKey(k, token.Text)
	for i := 0; i < 16; i++ {
		et := s.EncryptToken(token)
		c1Full := FullBlock(tk, uint64(2*i)) // salt of C1 occurrence i
		if c1Full.XOR(et.C2) == kSSL {
			t.Fatal("C1 and C2 shared a salt: kSSL leaked")
		}
		if RecoverSSLKey(tk, uint64(2*i), et.C2) != kSSL {
			t.Fatalf("occurrence %d: recovery failed", i)
		}
	}
}

func TestCounterTableReset(t *testing.T) {
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 10)
	s.SetResetInterval(100)
	s.EncryptToken(tok("AAAAAAAA", 0))
	s.EncryptToken(tok("AAAAAAAA", 8))
	if _, reset := s.AccountBytes(50); reset {
		t.Fatal("reset too early")
	}
	newSalt, reset := s.AccountBytes(60)
	if !reset {
		t.Fatal("expected reset after exceeding interval")
	}
	// salt0' = salt0 + max ct + 1 = 10 + 2 + 1 = 13.
	if newSalt != 13 {
		t.Fatalf("new salt0 = %d, want 13", newSalt)
	}
	// After the reset, the first occurrence uses the new salt0.
	et := s.EncryptToken(tok("AAAAAAAA", 16))
	tk := ComputeTokenKey(k, tok("AAAAAAAA", 0).Text)
	if Encrypt(tk, 13) != et.C1 {
		t.Fatal("post-reset encryption did not restart at new salt0")
	}
}

func TestResetNeverReusesSalts(t *testing.T) {
	// The new salt0 jumps past every salt used before the reset, so salts
	// never repeat across resets either.
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolIII, 0)
	s.SetResetInterval(1)
	used := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		base := s.salt0 + s.countOf(tok("AAAAAAAA", 0).Text)
		if used[base] || used[base+1] {
			t.Fatalf("salt reuse at iteration %d", i)
		}
		used[base] = true
		used[base+1] = true
		s.EncryptToken(tok("AAAAAAAA", i))
		s.AccountBytes(10)
	}
}

func TestDifferentSessionKeysDifferentCiphertexts(t *testing.T) {
	t1 := tok("AAAAAAAA", 0)
	s1 := NewSender(bbcrypto.Block{1}, bbcrypto.Block{}, ProtocolI, 0)
	s2 := NewSender(bbcrypto.Block{2}, bbcrypto.Block{}, ProtocolI, 0)
	if s1.EncryptToken(t1).C1 == s2.EncryptToken(t1).C1 {
		t.Fatal("different session keys produced equal ciphertexts")
	}
}

func TestCiphertextDistribution(t *testing.T) {
	// Sanity statistical check: the 40-bit ciphertexts of distinct tokens
	// should not collide in a small sample (2^40 space, 2k samples).
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 0)
	seen := make(map[Ciphertext]bool)
	var text [tokenize.TokenSize]byte
	for i := 0; i < 2000; i++ {
		text[0], text[1] = byte(i), byte(i>>8)
		et := s.EncryptToken(tokenize.Token{Text: text, Offset: i})
		if seen[et.C1] {
			t.Fatal("unexpected 40-bit collision in small sample")
		}
		seen[et.C1] = true
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolI.String() != "I" || ProtocolII.String() != "II" || ProtocolIII.String() != "III" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Fatal("unknown protocol formatting wrong")
	}
}

func TestEncryptTokensBatch(t *testing.T) {
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 0)
	toks := []tokenize.Token{tok("AAAAAAAA", 0), tok("BBBBBBBB", 8), tok("AAAAAAAA", 16)}
	ets := s.EncryptTokens(toks)
	if len(ets) != 3 {
		t.Fatalf("got %d", len(ets))
	}
	// The batch must equal sequential single encryption.
	s2 := NewSender(k, bbcrypto.Block{}, ProtocolI, 0)
	for i, tk := range toks {
		if s2.EncryptToken(tk) != ets[i] {
			t.Fatalf("batch diverges at %d", i)
		}
	}
}

func TestSenderResetMethod(t *testing.T) {
	k := bbcrypto.RandomBlock()
	s := NewSender(k, bbcrypto.Block{}, ProtocolI, 5)
	s.EncryptToken(tok("AAAAAAAA", 0))
	s.Reset(100)
	if s.Salt0() != 100 {
		t.Fatalf("salt0 = %d", s.Salt0())
	}
	et := s.EncryptToken(tok("AAAAAAAA", 8))
	tk := ComputeTokenKey(k, tok("AAAAAAAA", 0).Text)
	if Encrypt(tk, 100) != et.C1 {
		t.Fatal("post-Reset encryption did not restart at announced salt0")
	}
}
