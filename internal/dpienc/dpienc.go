// Package dpienc implements the DPIEnc encryption scheme of §3.1 of the
// BlindBox paper, together with the counter-based salt management that
// BlindBox Detect (§3.2) relies on and the paired-ciphertext extension of
// Protocol III (§5).
//
// The encryption of a token t is
//
//	salt, AES_{AES_k(t)}(salt) mod RS
//
// where RS = 2^40, yielding 5-byte ciphertexts. The "random function" H of
// the scheme is instantiated with AES keyed by AES_k(t), a value the
// middlebox knows only for tokens equal to rule keywords — this makes the
// whole scheme run at AES-NI speed while retaining the security of
// randomized encryption.
//
// Salts are never transmitted per-token: the sender and middlebox both
// maintain counter tables so that the i-th occurrence of a token t is
// implicitly encrypted under salt0+i (Protocol I/II) or salt0+2i / salt0+2i+1
// (Protocol III c1/c2), and the table is reset every ResetInterval bytes by
// announcing a fresh salt0.
package dpienc

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"repro/internal/bbcrypto"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

// CiphertextSize is the size of one DPIEnc ciphertext in bytes: the paper
// reduces ciphertexts mod RS = 2^40 to 5 bytes, so one encrypted token per
// traffic byte costs 5x bandwidth (§3).
const CiphertextSize = 5

// ResetInterval is the default P: the sender resets its counter table every
// P bytes of traffic and announces a fresh salt0 (§3.2).
const ResetInterval = 1 << 20

// Ciphertext is a single DPIEnc ciphertext: AES_{AES_k(t)}(salt) mod RS.
type Ciphertext [CiphertextSize]byte

// Uint64 returns the ciphertext as an integer in [0, RS), convenient as a
// search-tree key.
func (c Ciphertext) Uint64() uint64 {
	return uint64(c[0])<<32 | uint64(c[1])<<24 | uint64(c[2])<<16 |
		uint64(c[3])<<8 | uint64(c[4])
}

// CiphertextFromUint64 is the inverse of Uint64.
func CiphertextFromUint64(v uint64) Ciphertext {
	return Ciphertext{byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// TokenKey is AES_k(t) for a token t: the per-token AES key under which
// salts are encrypted. The middlebox learns TokenKeys only for rule
// keywords (via obfuscated rule encryption), never the session key k.
type TokenKey = bbcrypto.Block

// ComputeTokenKey computes AES_k(t) with the token right-padded to one AES
// block. Only the endpoints, which hold k, can call this.
func ComputeTokenKey(k bbcrypto.Block, t [tokenize.TokenSize]byte) TokenKey {
	var block bbcrypto.Block
	copy(block[:], t[:])
	return bbcrypto.EncryptBlock(k, block)
}

// Encrypt computes Enc(salt, t) = AES_{tk}(salt) mod RS for a precomputed
// token key tk. Both the sender (who derives tk from k) and the middlebox
// (who got tk from rule preparation) call this.
func Encrypt(tk TokenKey, salt uint64) Ciphertext {
	return encryptWith(bbcrypto.NewAES(tk), salt)
}

//bb:hotpath
func encryptWith(c cipher.Block, salt uint64) Ciphertext {
	var pt, ct bbcrypto.Block
	binary.BigEndian.PutUint64(pt[8:], salt)
	c.Encrypt(ct[:], pt[:])
	var out Ciphertext
	copy(out[:], ct[:CiphertextSize])
	return out
}

// FullBlock computes the un-truncated AES_{tk}(salt) block. Protocol III
// embeds kSSL as Enc*(salt, t) ⊕ kSSL using the full block (§5), since the
// SSL key is 16 bytes.
func FullBlock(tk TokenKey, salt uint64) bbcrypto.Block {
	var pt bbcrypto.Block
	binary.BigEndian.PutUint64(pt[8:], salt)
	return bbcrypto.EncryptBlock(tk, pt)
}

// Protocol selects between the exact-match protocols (I and II share an
// encryption format) and Protocol III, which sends ciphertext pairs.
type Protocol int

const (
	// ProtocolI is basic single-keyword detection (§3).
	ProtocolI Protocol = 1
	// ProtocolII adds multi-keyword rules with offset information (§4).
	// Its token encryption is identical to Protocol I.
	ProtocolII Protocol = 2
	// ProtocolIII additionally embeds kSSL in a second ciphertext so the
	// middlebox can decrypt flows with probable cause (§5).
	ProtocolIII Protocol = 3
)

// String renders the protocol's paper numeral (I, II, III).
func (p Protocol) String() string {
	switch p {
	case ProtocolI:
		return "I"
	case ProtocolII:
		return "II"
	case ProtocolIII:
		return "III"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// EncryptedToken is the wire form of one encrypted token.
type EncryptedToken struct {
	// C1 is the detection ciphertext Enc_k(salt, t).
	C1 Ciphertext
	// C2 is Enc*_k(salt+1, t) ⊕ kSSL, present only under Protocol III.
	C2 bbcrypto.Block
	// Offset is the token's byte offset in the stream (carried in the
	// clear; BlindBox reveals token offsets by design, §3.5).
	Offset int
}

// Sender encrypts the token stream of one connection direction. It owns the
// counter table of §3.2: the i-th occurrence of a token is encrypted with
// salt0+i so equal tokens never share a salt, without transmitting salts.
type Sender struct {
	//bb:secret
	k bbcrypto.Block
	//bb:secret
	kSSL     bbcrypto.Block
	protocol Protocol

	salt0 uint64
	maxCt uint64

	// states holds the per-distinct-token hot state — the cached AES_k(t)
	// cipher and the §3.2 occurrence counter — in one map, so the
	// per-token assignment step pays a single lookup instead of the two
	// (counts + keys) it used to. Counter resets zero the ct fields in
	// place; the key-schedule cache survives resets.
	states map[[tokenize.TokenSize]byte]*tokenState

	// scratch is the reusable assignment buffer of the batch path
	// (EncryptTokensInto): batches allocate nothing in steady state.
	scratch []TokenAssignment

	// workers/minParBatch are the fan-out decision applied by
	// EncryptTokensInto and EncryptAssignedAuto: batches of at least
	// minParBatch tokens split their stateless AES step across `workers`
	// goroutines; everything else runs sequentially. Defaults (1,
	// minParallelBatch) mean sequential; SetFanOut installs a measured
	// decision (see internal/tuning).
	workers     int
	minParBatch int

	bytesSinceReset int
	resetInterval   int

	// tokensC/resetsC are nil until Instrument; the nil obs handles make
	// uninstrumented senders pay only a nil check per batch.
	tokensC *obs.Counter
	resetsC *obs.Counter
}

// NewSender creates a Sender for session detection key k. kSSL is required
// only under Protocol III (it is embedded in C2); pass the session SSL key.
func NewSender(k, kSSL bbcrypto.Block, protocol Protocol, salt0 uint64) *Sender {
	return &Sender{
		k:             k,
		kSSL:          kSSL,
		protocol:      protocol,
		salt0:         salt0,
		states:        make(map[[tokenize.TokenSize]byte]*tokenState),
		resetInterval: ResetInterval,
		workers:       1,
		minParBatch:   minParallelBatch,
	}
}

// tokenState is the per-distinct-token state: the cached AES_k(t) cipher
// (immutable once computed) and the §3.2 occurrence counter (reset every
// P bytes).
type tokenState struct {
	blk cipher.Block
	ct  uint64
}

// state returns the token's hot state, creating and caching it (one
// AES_k(t) computation plus one key schedule) on first sight.
//
//bb:hotpath
func (s *Sender) state(text [tokenize.TokenSize]byte) *tokenState {
	st, ok := s.states[text]
	if !ok {
		tk := ComputeTokenKey(s.k, text)
		st = &tokenState{blk: bbcrypto.NewAES(tk)}
		s.states[text] = st
	}
	return st
}

// SetResetInterval overrides the counter-table reset interval P (mainly for
// tests and benchmarks).
func (s *Sender) SetResetInterval(p int) { s.resetInterval = p }

// Instrument registers this sender's token and reset counters in r (see
// obs.DPIEncTokensTotal, obs.DPIEncResetsTotal). A nil registry leaves the
// sender uninstrumented.
func (s *Sender) Instrument(r *obs.Registry) {
	s.tokensC = r.Counter(obs.DPIEncTokensTotal, obs.Help(obs.DPIEncTokensTotal))
	s.resetsC = r.Counter(obs.DPIEncResetsTotal, obs.Help(obs.DPIEncResetsTotal))
}

// Salt0 returns the current initial salt, which the sender announces to the
// middlebox before sending encrypted tokens.
func (s *Sender) Salt0() uint64 { return s.salt0 }

// saltStride is how far apart consecutive salts of one token are: Protocol
// III uses even salts for C1 and odd salts for C2 (§5), so occurrences
// advance by 2.
func (s *Sender) saltStride() uint64 {
	if s.protocol == ProtocolIII {
		return 2
	}
	return 1
}

// EncryptToken encrypts one token. The caller must process tokens in stream
// order for the counter tables at sender and middlebox to stay in sync.
func (s *Sender) EncryptToken(t tokenize.Token) EncryptedToken {
	s.tokensC.Inc()
	st := s.state(t.Text)
	ct := st.ct
	stride := s.saltStride()
	st.ct = ct + stride
	if ct+stride > s.maxCt {
		s.maxCt = ct + stride
	}

	out := EncryptedToken{Offset: t.Offset}
	out.C1 = encryptWith(st.blk, s.salt0+ct)
	if s.protocol == ProtocolIII {
		var pt bbcrypto.Block
		binary.BigEndian.PutUint64(pt[8:], s.salt0+ct+1)
		var full bbcrypto.Block
		st.blk.Encrypt(full[:], pt[:])
		out.C2 = full.XOR(s.kSSL)
	}
	return out
}

// EncryptTokens encrypts a batch of tokens in order. It is the allocating
// convenience form of EncryptTokensInto (see batch.go), which amortizes
// per-token call overhead by splitting counter-table assignment from the
// AES work.
func (s *Sender) EncryptTokens(toks []tokenize.Token) []EncryptedToken {
	return s.EncryptTokensInto(nil, toks)
}

// AccountBytes informs the sender that n bytes of traffic were processed.
// When the total since the last reset exceeds the reset interval P, the
// counter table is cleared and a fresh salt0 is chosen (salt0 + max ct + 1,
// §3.2). It returns the new salt0 and true if a reset occurred; the caller
// must announce the new salt0 to the middlebox before sending more tokens.
func (s *Sender) AccountBytes(n int) (uint64, bool) {
	s.bytesSinceReset += n
	if s.bytesSinceReset < s.resetInterval {
		return 0, false
	}
	s.bytesSinceReset = 0
	s.salt0 += s.maxCt + 1
	s.maxCt = 0
	s.resetCounts()
	s.resetsC.Inc()
	return s.salt0, true
}

// Reset forces a counter-table reset (used when the peer announces one).
func (s *Sender) Reset(newSalt0 uint64) {
	s.salt0 = newSalt0
	s.maxCt = 0
	s.bytesSinceReset = 0
	s.resetCounts()
	s.resetsC.Inc()
}

// countOf reads a token's current occurrence counter (0 if unseen);
// tests use it to pin the salt schedule.
func (s *Sender) countOf(text [tokenize.TokenSize]byte) uint64 {
	if st, ok := s.states[text]; ok {
		return st.ct
	}
	return 0
}

// resetCounts zeroes every occurrence counter in place. The cached key
// schedules survive the reset — re-deriving AES_k(t) for the whole
// working set after every P bytes was pure waste.
func (s *Sender) resetCounts() {
	for _, st := range s.states {
		st.ct = 0
	}
}

// RecoverSSLKey inverts the Protocol III embedding for a matched keyword:
// given the token key of the matched rule keyword and the salt the C1
// ciphertext was produced under, it returns kSSL = Enc*(salt+1, r) ⊕ C2.
// Only a middlebox that holds AES_k(r) for a keyword actually present in
// the traffic can compute this — that is the probable-cause guarantee.
func RecoverSSLKey(tk TokenKey, c1Salt uint64, c2 bbcrypto.Block) bbcrypto.Block {
	return FullBlock(tk, c1Salt+1).XOR(c2)
}
