package dpienc

import (
	"math/rand"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// randomStream builds a seeded token stream with plenty of repeats, so the
// counter table exercises multi-occurrence salts.
func randomStream(rng *rand.Rand, n int) []tokenize.Token {
	vocab := make([][tokenize.TokenSize]byte, 1+rng.Intn(8))
	for i := range vocab {
		rng.Read(vocab[i][:])
	}
	toks := make([]tokenize.Token, n)
	off := 0
	for i := range toks {
		toks[i].Text = vocab[rng.Intn(len(vocab))]
		toks[i].Offset = off
		off += 1 + rng.Intn(4)
	}
	return toks
}

func tokensEqual(a, b EncryptedToken) bool {
	return a.C1 == b.C1 && a.C2 == b.C2 && a.Offset == b.Offset
}

// TestEncryptTokensMatchesEncryptToken is the batch/sequential differential
// property of the issue: for 1k randomized seeded streams, EncryptTokens
// over any partition of the stream yields exactly the per-token
// EncryptToken results, under every protocol.
func TestEncryptTokensMatchesEncryptToken(t *testing.T) {
	k := bbcrypto.DeriveBlock([]byte("batch-test"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("batch-test"), "kssl")
	for iter := 0; iter < 1000; iter++ {
		rng := rand.New(rand.NewSource(int64(iter)))
		proto := Protocol(1 + iter%3)
		salt0 := rng.Uint64() >> 1
		stream := randomStream(rng, 1+rng.Intn(96))

		seq := NewSender(k, kSSL, proto, salt0)
		want := make([]EncryptedToken, len(stream))
		for i, tok := range stream {
			want[i] = seq.EncryptToken(tok)
		}

		batch := NewSender(k, kSSL, proto, salt0)
		var buf []EncryptedToken
		var got []EncryptedToken
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(len(stream)-off)
			buf = batch.EncryptTokensInto(buf, stream[off:off+n])
			got = append(got, buf...)
			off += n
		}

		if len(got) != len(want) {
			t.Fatalf("iter %d: %d batch tokens, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if !tokensEqual(got[i], want[i]) {
				t.Fatalf("iter %d proto %s: token %d differs: %+v vs %+v",
					iter, proto, i, got[i], want[i])
			}
		}
		// Counter tables must have advanced identically.
		if seq.maxCt != batch.maxCt || len(seq.states) != len(batch.states) {
			t.Fatalf("iter %d: counter tables diverged", iter)
		}
	}
}

// TestEncryptAssignedParallelMatchesSequential pins that the parallel AES
// fan-out preserves exact stream order and values.
func TestEncryptAssignedParallelMatchesSequential(t *testing.T) {
	k := bbcrypto.DeriveBlock([]byte("par-test"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("par-test"), "kssl")
	for _, proto := range []Protocol{ProtocolII, ProtocolIII} {
		rng := rand.New(rand.NewSource(42))
		stream := randomStream(rng, 4096)

		a := NewSender(k, kSSL, proto, 7)
		asgA := a.AssignTokens(stream, nil)
		seq := make([]EncryptedToken, len(stream))
		a.EncryptAssigned(asgA, seq)

		b := NewSender(k, kSSL, proto, 7)
		asgB := b.AssignTokens(stream, nil)
		for _, workers := range []int{1, 2, 3, 8, 64} {
			par := make([]EncryptedToken, len(stream))
			b.EncryptAssignedParallel(asgB, par, workers)
			for i := range seq {
				if !tokensEqual(par[i], seq[i]) {
					t.Fatalf("proto %s workers %d: token %d differs", proto, workers, i)
				}
			}
		}
	}
}

// TestTokenBufPool checks the pooled buffers start empty and survive growth.
func TestTokenBufPool(t *testing.T) {
	buf := GetTokenBuf()
	if len(buf) != 0 {
		t.Fatalf("pooled buffer has length %d", len(buf))
	}
	buf = append(buf, EncryptedToken{Offset: 1})
	PutTokenBuf(buf)
	again := GetTokenBuf()
	if len(again) != 0 {
		t.Fatalf("recycled buffer has length %d", len(again))
	}
	PutTokenBuf(again)
}

// TestEncryptTokensIntoReusesBuffer pins the zero-allocation steady state:
// a large-enough dst is reused, not reallocated.
func TestEncryptTokensIntoReusesBuffer(t *testing.T) {
	s := NewSender(bbcrypto.Block{1}, bbcrypto.Block{2}, ProtocolII, 0)
	rng := rand.New(rand.NewSource(9))
	stream := randomStream(rng, 64)
	dst := make([]EncryptedToken, 0, 128)
	out := s.EncryptTokensInto(dst, stream)
	if &out[0] != &dst[:1][0] {
		t.Fatal("EncryptTokensInto reallocated despite sufficient capacity")
	}
}
