package dpienc

import (
	"math/rand"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// TestTunedOutputEqualsSequential is the fan-out conformance property:
// whatever fan-out decision SetFanOut installs, the encrypted token
// stream is byte-for-byte the stream a purely sequential sender produces,
// across all three protocols, random batch sizes, and counter resets.
func TestTunedOutputEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := bbcrypto.DeriveBlock([]byte("fanout-prop"), "k")
	kSSL := bbcrypto.DeriveBlock([]byte("fanout-prop"), "kssl")
	for _, proto := range []Protocol{ProtocolI, ProtocolII, ProtocolIII} {
		for _, fan := range []struct{ workers, minBatch int }{
			{1, 0},  // explicit sequential
			{2, 1},  // always parallel
			{4, 64}, // parallel past a threshold: batches straddle it
			{8, 1},  // more workers than meaningful chunks
		} {
			seq := NewSender(k, kSSL, proto, 7)
			tuned := NewSender(k, kSSL, proto, 7)
			tuned.SetFanOut(fan.workers, fan.minBatch)
			seq.SetResetInterval(4096)
			tuned.SetResetInterval(4096)

			var seqOut, tunedOut []EncryptedToken
			offset := 0
			for batch := 0; batch < 50; batch++ {
				n := 1 + rng.Intn(300)
				toks := make([]tokenize.Token, n)
				for i := range toks {
					// A small alphabet forces repeated tokens, so counter
					// ordering is actually exercised.
					toks[i].Text[0] = byte('a' + rng.Intn(8))
					toks[i].Offset = offset
					offset += tokenize.TokenSize
				}
				seqOut = seq.EncryptTokensInto(seqOut, toks)
				tunedOut = tuned.EncryptTokensInto(tunedOut, toks)
				if len(seqOut) != len(tunedOut) {
					t.Fatalf("proto %s fan %+v: length mismatch", proto, fan)
				}
				for i := range seqOut {
					if seqOut[i] != tunedOut[i] {
						t.Fatalf("proto %s fan %+v batch %d: token %d differs:\nseq   %+v\ntuned %+v",
							proto, fan, batch, i, seqOut[i], tunedOut[i])
					}
				}
				s1, r1 := seq.AccountBytes(n * tokenize.TokenSize)
				s2, r2 := tuned.AccountBytes(n * tokenize.TokenSize)
				if s1 != s2 || r1 != r2 {
					t.Fatalf("proto %s fan %+v: reset behavior diverged (%d,%v) vs (%d,%v)",
						proto, fan, s1, r1, s2, r2)
				}
			}
		}
	}
}

// TestSetFanOutNormalizes pins the defensive normalization of degenerate
// knob values.
func TestSetFanOutNormalizes(t *testing.T) {
	s := NewSender(bbcrypto.Block{}, bbcrypto.Block{}, ProtocolI, 0)
	if w, m := s.FanOut(); w != 1 || m != minParallelBatch {
		t.Fatalf("default fan-out = (%d,%d), want (1,%d)", w, m, minParallelBatch)
	}
	s.SetFanOut(-3, -1)
	if w, m := s.FanOut(); w != 1 || m != minParallelBatch {
		t.Fatalf("normalized fan-out = (%d,%d), want (1,%d)", w, m, minParallelBatch)
	}
	s.SetFanOut(4, 200)
	if w, m := s.FanOut(); w != 4 || m != 200 {
		t.Fatalf("fan-out = (%d,%d), want (4,200)", w, m)
	}
}

// TestKeyScheduleSurvivesReset pins the merged-state optimization: a
// counter reset zeroes counters but keeps the cached per-token ciphers,
// and the post-reset stream still matches a fresh sender started at the
// new salt0.
func TestKeyScheduleSurvivesReset(t *testing.T) {
	k := bbcrypto.DeriveBlock([]byte("reset-cache"), "k")
	s := NewSender(k, bbcrypto.Block{}, ProtocolII, 0)
	toks := []tokenize.Token{tokAt("AAAAAAAA", 0), tokAt("BBBBBBBB", 8), tokAt("AAAAAAAA", 16)}
	s.EncryptTokens(toks)
	statesBefore := len(s.states)
	s.Reset(1000)
	if len(s.states) != statesBefore {
		t.Fatalf("reset dropped cached token states: %d -> %d", statesBefore, len(s.states))
	}
	got := s.EncryptTokens(toks)
	fresh := NewSender(k, bbcrypto.Block{}, ProtocolII, 1000)
	want := fresh.EncryptTokens(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reset token %d differs from fresh sender", i)
		}
	}
}

func tokAt(s string, off int) tokenize.Token {
	var t tokenize.Token
	copy(t.Text[:], s)
	t.Offset = off
	return t
}
