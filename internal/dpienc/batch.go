// Batched and parallel DPIEnc encryption. The §3.2 counter table makes
// token *assignment* (which salt encrypts which occurrence) inherently
// sequential, but once a token's salt is fixed, the AES work is independent
// of every other token. This file splits encryption into those two steps so
// batches amortize per-token call overhead and the AES step can fan out
// across cores while preserving exact stream order.

package dpienc

import (
	"crypto/cipher"
	"encoding/binary"
	"sync"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// TokenAssignment is the counter-table outcome for one token: the cached
// per-token AES cipher and the salt its next occurrence must be encrypted
// under. Assignments are produced in stream order by AssignTokens; after
// that, encrypting them is order-independent.
type TokenAssignment struct {
	blk    cipher.Block
	salt   uint64
	offset int
}

// AssignTokens advances the §3.2 counter table over toks (which must be in
// stream order) and appends one assignment per token to dst, returning the
// extended slice. This is the only stateful step of token encryption; the
// returned assignments may then be encrypted in any order, or concurrently
// on disjoint ranges, via EncryptAssigned.
//
// Allocation contract: 0 allocs/op steady-state. Per call it allocates
// only when dst must grow (amortized to the largest batch seen) or when a
// token is seen for the first time ever (one state per distinct token,
// amortized across all its occurrences).
//
//bb:hotpath
func (s *Sender) AssignTokens(toks []tokenize.Token, dst []TokenAssignment) []TokenAssignment {
	s.tokensC.Add(uint64(len(toks)))
	stride := s.saltStride()
	for _, t := range toks {
		st := s.state(t.Text)
		ct := st.ct
		st.ct = ct + stride
		if ct+stride > s.maxCt {
			s.maxCt = ct + stride
		}
		//lint:ignore hotpath-alloc dst is the Sender's reusable scratch buffer; growth amortizes to steady-state batch capacity
		dst = append(dst, TokenAssignment{blk: st.blk, salt: s.salt0 + ct, offset: t.Offset})
	}
	return dst
}

// EncryptAssigned encrypts assigned[i] into out[i] for every assignment
// (out must be at least as long as assigned). It reads only immutable
// Sender state (protocol, kSSL) and the stateless AES ciphers, so disjoint
// (assigned, out) ranges of one batch may be encrypted concurrently.
// Output order is exactly assignment order regardless of how ranges are
// split.
//
// Allocation contract: 2 allocs/op (the hoisted pt/ct blocks escape
// through the cipher.Block interface once per call), amortizing to well
// under 0.01 allocs per token at any realistic batch size.
//
//bb:hotpath
func (s *Sender) EncryptAssigned(assigned []TokenAssignment, out []EncryptedToken) {
	protoIII := s.protocol == ProtocolIII
	// pt/ct are hoisted out of the loop and sliced once: slices passed
	// through the cipher.Block interface escape, so per-token locals (as in
	// encryptWith) cost two heap allocations per token — the allocation
	// churn behind the parallel-encrypt slowdown in BENCH_pipeline.json.
	// Hoisting amortizes the escape to two allocations per batch.
	var pt, ct bbcrypto.Block
	pts, cts := pt[:], ct[:]
	for i, a := range assigned {
		out[i].Offset = a.offset
		binary.BigEndian.PutUint64(pts[8:], a.salt)
		a.blk.Encrypt(cts, pts)
		copy(out[i].C1[:], cts[:CiphertextSize])
		if protoIII {
			binary.BigEndian.PutUint64(pts[8:], a.salt+1)
			a.blk.Encrypt(cts, pts)
			out[i].C2 = ct.XOR(s.kSSL)
		} else {
			out[i].C2 = bbcrypto.Block{}
		}
	}
}

// minParallelBatch is the default batch size below which fanning
// encryption out to worker goroutines costs more than it saves. SetFanOut
// replaces it with a per-host measured break-even (internal/tuning).
const minParallelBatch = 128

// SetFanOut installs the fan-out decision EncryptTokensInto and
// EncryptAssignedAuto apply: batches of at least minBatch tokens split
// their stateless AES step across `workers` goroutines, smaller batches
// (and everything when workers <= 1) run sequentially. workers <= 0 is
// normalized to 1 and minBatch <= 0 to the built-in default; callers
// normally pass a tuning.Tuning's EncryptWorkers/EncryptMinBatch rather
// than inventing values.
func (s *Sender) SetFanOut(workers, minBatch int) {
	if workers <= 0 {
		workers = 1
	}
	if minBatch <= 0 {
		minBatch = minParallelBatch
	}
	s.workers = workers
	s.minParBatch = minBatch
}

// FanOut reports the sender's current fan-out decision (workers and the
// minimum batch size that engages them).
func (s *Sender) FanOut() (workers, minBatch int) {
	return s.workers, s.minParBatch
}

// EncryptAssignedAuto is EncryptAssigned routed through the SetFanOut
// decision: the AES step fans out only when the configured workers and
// batch size say the goroutine handoffs will pay for themselves. Output
// order and contents are byte-identical to EncryptAssigned either way.
//
// Allocation contract: 0 allocs/op steady-state on the sequential path
// (2 per call, as EncryptAssigned); the parallel path adds one goroutine
// spawn per worker per batch, already priced into the minBatch
// break-even.
func (s *Sender) EncryptAssignedAuto(assigned []TokenAssignment, out []EncryptedToken) {
	if s.workers > 1 && len(assigned) >= s.minParBatch {
		s.EncryptAssignedParallel(assigned, out, s.workers)
		return
	}
	s.EncryptAssigned(assigned, out)
}

// EncryptAssignedParallel is EncryptAssigned with the AES work split across
// up to `workers` goroutines. Each worker owns a contiguous range of the
// batch, so out keeps exact stream order and is byte-identical to the
// sequential path; small batches fall back to it outright.
//
// Allocation contract: one goroutine spawn + closure per worker per call;
// no per-token allocations. Prefer EncryptAssignedAuto, which engages this
// path only past the measured break-even batch size.
func (s *Sender) EncryptAssignedParallel(assigned []TokenAssignment, out []EncryptedToken, workers int) {
	if workers > len(assigned)/minParallelBatch {
		workers = len(assigned) / minParallelBatch
	}
	if workers <= 1 {
		s.EncryptAssigned(assigned, out)
		return
	}
	chunk := (len(assigned) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(assigned); start += chunk {
		end := start + chunk
		if end > len(assigned) {
			end = len(assigned)
		}
		wg.Add(1)
		go func(a []TokenAssignment, o []EncryptedToken) {
			defer wg.Done()
			s.EncryptAssigned(a, o)
		}(assigned[start:end], out[start:end])
	}
	wg.Wait()
}

// EncryptTokensInto encrypts a batch of tokens in order, reusing dst's
// backing array when it is large enough, and applying the SetFanOut
// decision to the stateless AES step (the default decision is fully
// sequential). The counter-table assignment is always sequential, so the
// produced stream is byte-identical whichever way the AES step runs.
//
// Allocation contract: 0 allocs/op steady-state — the assignment scratch
// lives on the Sender and dst reallocates only on growth; first-seen
// tokens and engaged fan-out cost as documented on AssignTokens and
// EncryptAssignedAuto.
func (s *Sender) EncryptTokensInto(dst []EncryptedToken, toks []tokenize.Token) []EncryptedToken {
	s.scratch = s.AssignTokens(toks, s.scratch[:0])
	dst = GrowTokenBuf(dst, len(toks))
	s.EncryptAssignedAuto(s.scratch, dst)
	return dst
}

// EncryptTokensParallelInto is EncryptTokensInto with the stateless AES
// step fanned out across up to `workers` goroutines, ignoring the SetFanOut
// decision. The counter-table assignment stays sequential, so the produced
// stream is byte-identical to the sequential path.
//
// Allocation contract: as EncryptAssignedParallel — one goroutine spawn
// per worker per batch, no per-token allocations.
func (s *Sender) EncryptTokensParallelInto(dst []EncryptedToken, toks []tokenize.Token, workers int) []EncryptedToken {
	s.scratch = s.AssignTokens(toks, s.scratch[:0])
	dst = GrowTokenBuf(dst, len(toks))
	s.EncryptAssignedParallel(s.scratch, dst, workers)
	return dst
}

// GrowTokenBuf resizes buf to n elements, reallocating only when the
// capacity is insufficient.
func GrowTokenBuf(buf []EncryptedToken, n int) []EncryptedToken {
	if cap(buf) < n {
		return make([]EncryptedToken, n)
	}
	return buf[:n]
}

// tokenBufPool recycles encrypted-token batch buffers across connections:
// the sender hot path produces one ciphertext slice per data record, and at
// millions of flows those allocations dominate the encryption cost.
var tokenBufPool = sync.Pool{
	New: func() any { return make([]EncryptedToken, 0, 512) },
}

// GetTokenBuf returns a reusable encrypted-token buffer of length zero.
// Return it with PutTokenBuf once the batch has been marshaled or consumed;
// the contents must not be retained afterwards.
func GetTokenBuf() []EncryptedToken {
	return tokenBufPool.Get().([]EncryptedToken)[:0]
}

// PutTokenBuf recycles a buffer obtained from GetTokenBuf (growing it in
// the meantime is fine — the grown backing array is what gets pooled).
func PutTokenBuf(buf []EncryptedToken) {
	tokenBufPool.Put(buf[:0])
}
