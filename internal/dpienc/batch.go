// Batched and parallel DPIEnc encryption. The §3.2 counter table makes
// token *assignment* (which salt encrypts which occurrence) inherently
// sequential, but once a token's salt is fixed, the AES work is independent
// of every other token. This file splits encryption into those two steps so
// batches amortize per-token call overhead and the AES step can fan out
// across cores while preserving exact stream order.

package dpienc

import (
	"crypto/cipher"
	"encoding/binary"
	"sync"

	"repro/internal/bbcrypto"
	"repro/internal/tokenize"
)

// TokenAssignment is the counter-table outcome for one token: the cached
// per-token AES cipher and the salt its next occurrence must be encrypted
// under. Assignments are produced in stream order by AssignTokens; after
// that, encrypting them is order-independent.
type TokenAssignment struct {
	blk    cipher.Block
	salt   uint64
	offset int
}

// AssignTokens advances the §3.2 counter table over toks (which must be in
// stream order) and appends one assignment per token to dst, returning the
// extended slice. This is the only stateful step of token encryption; the
// returned assignments may then be encrypted in any order, or concurrently
// on disjoint ranges, via EncryptAssigned.
//
//bb:hotpath
func (s *Sender) AssignTokens(toks []tokenize.Token, dst []TokenAssignment) []TokenAssignment {
	s.tokensC.Add(uint64(len(toks)))
	stride := s.saltStride()
	for _, t := range toks {
		blk, ok := s.keys[t.Text]
		if !ok {
			tk := ComputeTokenKey(s.k, t.Text)
			blk = bbcrypto.NewAES(tk)
			s.keys[t.Text] = blk
		}
		ct := s.counts[t.Text]
		s.counts[t.Text] = ct + stride
		if ct+stride > s.maxCt {
			s.maxCt = ct + stride
		}
		//lint:ignore hotpath-alloc dst is the Sender's reusable scratch buffer; growth amortizes to steady-state batch capacity
		dst = append(dst, TokenAssignment{blk: blk, salt: s.salt0 + ct, offset: t.Offset})
	}
	return dst
}

// EncryptAssigned encrypts assigned[i] into out[i] for every assignment
// (out must be at least as long as assigned). It reads only immutable
// Sender state (protocol, kSSL) and the stateless AES ciphers, so disjoint
// (assigned, out) ranges of one batch may be encrypted concurrently.
//
//bb:hotpath
func (s *Sender) EncryptAssigned(assigned []TokenAssignment, out []EncryptedToken) {
	protoIII := s.protocol == ProtocolIII
	// pt/ct are hoisted out of the loop and sliced once: slices passed
	// through the cipher.Block interface escape, so per-token locals (as in
	// encryptWith) cost two heap allocations per token — the allocation
	// churn behind the parallel-encrypt slowdown in BENCH_pipeline.json.
	// Hoisting amortizes the escape to two allocations per batch.
	var pt, ct bbcrypto.Block
	pts, cts := pt[:], ct[:]
	for i, a := range assigned {
		out[i].Offset = a.offset
		binary.BigEndian.PutUint64(pts[8:], a.salt)
		a.blk.Encrypt(cts, pts)
		copy(out[i].C1[:], cts[:CiphertextSize])
		if protoIII {
			binary.BigEndian.PutUint64(pts[8:], a.salt+1)
			a.blk.Encrypt(cts, pts)
			out[i].C2 = ct.XOR(s.kSSL)
		} else {
			out[i].C2 = bbcrypto.Block{}
		}
	}
}

// minParallelBatch is the batch size below which fanning encryption out to
// worker goroutines costs more than it saves.
const minParallelBatch = 128

// EncryptAssignedParallel is EncryptAssigned with the AES work split across
// up to `workers` goroutines. Each worker owns a contiguous range of the
// batch, so out keeps exact stream order; small batches fall back to the
// sequential path.
func (s *Sender) EncryptAssignedParallel(assigned []TokenAssignment, out []EncryptedToken, workers int) {
	if workers > len(assigned)/minParallelBatch {
		workers = len(assigned) / minParallelBatch
	}
	if workers <= 1 {
		s.EncryptAssigned(assigned, out)
		return
	}
	chunk := (len(assigned) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(assigned); start += chunk {
		end := start + chunk
		if end > len(assigned) {
			end = len(assigned)
		}
		wg.Add(1)
		go func(a []TokenAssignment, o []EncryptedToken) {
			defer wg.Done()
			s.EncryptAssigned(a, o)
		}(assigned[start:end], out[start:end])
	}
	wg.Wait()
}

// EncryptTokensInto encrypts a batch of tokens in order, reusing dst's
// backing array when it is large enough. The assignment scratch buffer
// lives on the Sender, so steady-state batch encryption allocates nothing.
func (s *Sender) EncryptTokensInto(dst []EncryptedToken, toks []tokenize.Token) []EncryptedToken {
	s.scratch = s.AssignTokens(toks, s.scratch[:0])
	dst = GrowTokenBuf(dst, len(toks))
	s.EncryptAssigned(s.scratch, dst)
	return dst
}

// EncryptTokensParallelInto is EncryptTokensInto with the stateless AES
// step fanned out across up to `workers` goroutines. The counter-table
// assignment stays sequential, so the produced stream is byte-identical to
// the sequential path.
func (s *Sender) EncryptTokensParallelInto(dst []EncryptedToken, toks []tokenize.Token, workers int) []EncryptedToken {
	s.scratch = s.AssignTokens(toks, s.scratch[:0])
	dst = GrowTokenBuf(dst, len(toks))
	s.EncryptAssignedParallel(s.scratch, dst, workers)
	return dst
}

// GrowTokenBuf resizes buf to n elements, reallocating only when the
// capacity is insufficient.
func GrowTokenBuf(buf []EncryptedToken, n int) []EncryptedToken {
	if cap(buf) < n {
		return make([]EncryptedToken, n)
	}
	return buf[:n]
}

// tokenBufPool recycles encrypted-token batch buffers across connections:
// the sender hot path produces one ciphertext slice per data record, and at
// millions of flows those allocations dominate the encryption cost.
var tokenBufPool = sync.Pool{
	New: func() any { return make([]EncryptedToken, 0, 512) },
}

// GetTokenBuf returns a reusable encrypted-token buffer of length zero.
// Return it with PutTokenBuf once the batch has been marshaled or consumed;
// the contents must not be retained afterwards.
func GetTokenBuf() []EncryptedToken {
	return tokenBufPool.Get().([]EncryptedToken)[:0]
}

// PutTokenBuf recycles a buffer obtained from GetTokenBuf (growing it in
// the meantime is fine — the grown backing array is what gets pooled).
func PutTokenBuf(buf []EncryptedToken) {
	tokenBufPool.Put(buf[:0])
}
