// Package ot implements 1-out-of-2 oblivious transfer: a Chou–Orlandi-style
// base OT over P-256 and the IKNP OT extension, replacing the OTExtension
// library the paper's prototype links against (§6). Rule preparation uses
// OT so the middlebox obtains the wire labels for its rule bits without the
// endpoints learning the rules and without the middlebox learning the other
// labels (§3.3).
//
// The protocols are secure against semi-honest parties, matching the
// paper's threat model (the middlebox "performs the detection honestly, but
// ... tries to learn private data", §2.2.2).
package ot

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"

	"repro/internal/bbcrypto"
)

// Block is the 16-byte message unit transferred by OT (wire labels).
type Block = bbcrypto.Block

var curve = elliptic.P256()

// pointSize is the byte length of an uncompressed P-256 point.
const pointSize = 65

// BaseSender is the sender side of one base OT: it holds two messages and
// lets the receiver learn exactly one.
type BaseSender struct {
	//bb:secret
	a      []byte // secret scalar
	ax, ay *big.Int
}

// NewBaseSender starts a base OT, returning the sender state and the first
// message (A = aG) for the receiver.
func NewBaseSender() (*BaseSender, []byte, error) {
	a, ax, ay, err := elliptic.GenerateKey(curve, rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	return &BaseSender{a: a, ax: ax, ay: ay}, elliptic.Marshal(curve, ax, ay), nil
}

// BaseReceiverRespond consumes the sender's message and the receiver's
// choice bit, returning the response message (B) and the receiver's derived
// key, which equals k0 or k1 according to the choice.
func BaseReceiverRespond(choice bool, msgA []byte) ([]byte, Block, error) {
	ax, ay := elliptic.Unmarshal(curve, msgA)
	if ax == nil {
		return nil, Block{}, errors.New("ot: invalid sender point")
	}
	b, bx, by, err := elliptic.GenerateKey(curve, rand.Reader)
	if err != nil {
		return nil, Block{}, err
	}
	// B = bG (choice 0) or A + bG (choice 1).
	msgBx, msgBy := bx, by
	if choice {
		msgBx, msgBy = curve.Add(ax, ay, bx, by)
	}
	// Shared key: H(bA).
	sx, sy := curve.ScalarMult(ax, ay, b)
	return elliptic.Marshal(curve, msgBx, msgBy), hashPoint(sx, sy), nil
}

// Keys consumes the receiver's response and derives both message keys.
// The sender encrypts its two messages under k0 and k1; the receiver can
// decrypt only the one matching its choice.
func (s *BaseSender) Keys(msgB []byte) (k0, k1 Block, err error) {
	bx, by := elliptic.Unmarshal(curve, msgB)
	if bx == nil {
		return Block{}, Block{}, errors.New("ot: invalid receiver point")
	}
	// k0 = H(aB); k1 = H(a(B - A)).
	x0, y0 := curve.ScalarMult(bx, by, s.a)
	negAy := new(big.Int).Sub(curve.Params().P, s.ay)
	dx, dy := curve.Add(bx, by, s.ax, negAy)
	x1, y1 := curve.ScalarMult(dx, dy, s.a)
	return hashPoint(x0, y0), hashPoint(x1, y1), nil
}

func hashPoint(x, y *big.Int) Block {
	h := sha256.New()
	h.Write(elliptic.Marshal(curve, x, y))
	var out Block
	copy(out[:], h.Sum(nil))
	return out
}

// EncryptMsg one-time-pads a message block under an OT key.
func EncryptMsg(key Block, msg Block) Block { return key.XOR(msg) }

// DecryptMsg inverts EncryptMsg.
func DecryptMsg(key Block, ct Block) Block { return key.XOR(ct) }

// BaseTransfer runs a complete in-process base OT of the message pair
// (m0, m1) for the given choice — a convenience for tests and for callers
// that hold both roles locally.
func BaseTransfer(m0, m1 Block, choice bool) (Block, error) {
	s, msgA, err := NewBaseSender()
	if err != nil {
		return Block{}, err
	}
	msgB, kc, err := BaseReceiverRespond(choice, msgA)
	if err != nil {
		return Block{}, err
	}
	k0, k1, err := s.Keys(msgB)
	if err != nil {
		return Block{}, err
	}
	c0, c1 := EncryptMsg(k0, m0), EncryptMsg(k1, m1)
	if choice {
		return DecryptMsg(kc, c1), nil
	}
	return DecryptMsg(kc, c0), nil
}
