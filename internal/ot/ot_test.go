package ot

import (
	"math/rand"
	"testing"

	"repro/internal/bbcrypto"
)

func TestBaseTransferBothChoices(t *testing.T) {
	m0 := bbcrypto.Block{0: 1, 15: 0xAA}
	m1 := bbcrypto.Block{0: 2, 15: 0xBB}
	for _, choice := range []bool{false, true} {
		got, err := BaseTransfer(m0, m1, choice)
		if err != nil {
			t.Fatal(err)
		}
		want := m0
		if choice {
			want = m1
		}
		if got != want {
			t.Fatalf("choice %v: got %v want %v", choice, got, want)
		}
	}
}

func TestBaseReceiverCannotLearnOther(t *testing.T) {
	// The receiver's derived key must match exactly one sender key.
	s, msgA, err := NewBaseSender()
	if err != nil {
		t.Fatal(err)
	}
	msgB, kc, err := BaseReceiverRespond(true, msgA)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, err := s.Keys(msgB)
	if err != nil {
		t.Fatal(err)
	}
	if kc != k1 {
		t.Fatal("receiver key does not match chosen sender key")
	}
	if kc == k0 {
		t.Fatal("receiver key matches the unchosen sender key")
	}
}

func TestBaseRejectsGarbagePoints(t *testing.T) {
	if _, _, err := BaseReceiverRespond(false, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage sender point accepted")
	}
	s, _, err := NewBaseSender()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Keys([]byte{4, 5, 6}); err == nil {
		t.Fatal("garbage receiver point accepted")
	}
}

func TestEncryptDecryptMsg(t *testing.T) {
	key := bbcrypto.RandomBlock()
	msg := bbcrypto.RandomBlock()
	if DecryptMsg(key, EncryptMsg(key, msg)) != msg {
		t.Fatal("OT message pad round trip failed")
	}
}

func TestExtTransferSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m = 10
	pairs := make([][2]Block, m)
	choices := make([]bool, m)
	for j := range pairs {
		pairs[j][0] = bbcrypto.RandomBlock()
		pairs[j][1] = bbcrypto.RandomBlock()
		choices[j] = rng.Intn(2) == 1
	}
	got, err := ExtTransfer(pairs, choices)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		want := pairs[j][0]
		other := pairs[j][1]
		if choices[j] {
			want, other = other, want
		}
		if got[j] != want {
			t.Fatalf("OT %d: wrong message", j)
		}
		if got[j] == other {
			t.Fatalf("OT %d: received the unchosen message", j)
		}
	}
}

func TestExtTransferLargeAndUnaligned(t *testing.T) {
	// m not a multiple of 8 exercises the bit-packing edges; m > kappa
	// exercises the extension proper.
	for _, m := range []int{1, 7, 129, 1000, 1037} {
		rng := rand.New(rand.NewSource(int64(m)))
		pairs := make([][2]Block, m)
		choices := make([]bool, m)
		for j := range pairs {
			pairs[j][0] = bbcrypto.RandomBlock()
			pairs[j][1] = bbcrypto.RandomBlock()
			choices[j] = rng.Intn(2) == 1
		}
		got, err := ExtTransfer(pairs, choices)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for j := range got {
			want := pairs[j][0]
			if choices[j] {
				want = pairs[j][1]
			}
			if got[j] != want {
				t.Fatalf("m=%d OT %d: wrong message", m, j)
			}
		}
	}
}

func TestExtLengthMismatchErrors(t *testing.T) {
	recv, msgAs, err := NewExtReceiver()
	if err != nil {
		t.Fatal(err)
	}
	send := NewExtSender()
	if _, err := send.BaseRespond(msgAs[:10]); err == nil {
		t.Fatal("short base messages accepted")
	}
	msgBs, err := send.BaseRespond(msgAs)
	if err != nil {
		t.Fatal(err)
	}
	u, err := recv.Extend(msgBs, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := send.Send(u[:5], make([][2]Block, 3)); err == nil {
		t.Fatal("narrow correction matrix accepted")
	}
	masked, err := send.Send(u, make([][2]Block, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Receive(masked, []bool{true}); err == nil {
		t.Fatal("choice-length mismatch accepted")
	}
}

func TestRowOf(t *testing.T) {
	// Build a 2-row matrix column-wise and check row extraction.
	cols := make([][]byte, kappa)
	for i := range cols {
		cols[i] = []byte{0}
		if i%3 == 0 {
			cols[i][0] |= 1 // row 0 bit set for columns divisible by 3
		}
	}
	row := rowOf(cols, 0)
	for i := 0; i < kappa; i++ {
		want := i%3 == 0
		got := row[i/8]&(1<<uint(i%8)) != 0
		if got != want {
			t.Fatalf("row bit %d = %v, want %v", i, got, want)
		}
	}
}
