// IKNP oblivious-transfer extension: a small number (128) of base OTs plus
// symmetric cryptography yields millions of OTs, which is what makes
// per-rule label transfer affordable during BlindBox rule preparation.

package ot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"repro/internal/bbcrypto"
)

// kappa is the computational security parameter: the number of base OTs
// and matrix columns.
const kappa = 128

// ExtSender is the sender of the extended OTs (in BlindBox: the endpoint,
// which holds the label pairs). Internally it plays the *receiver* of the
// base OTs with a random choice vector s.
type ExtSender struct {
	s     [kappa]bool
	seeds [kappa]Block // k_i^{s_i}
}

// ExtReceiver is the receiver of the extended OTs (in BlindBox: the
// middlebox, choosing labels by its rule bits). Internally it plays the
// *sender* of the base OTs.
type ExtReceiver struct {
	base  [kappa]*BaseSender
	seed0 [kappa]Block
	seed1 [kappa]Block
	m     int
	t     [][]byte // kappa columns, m bits each
}

// NewExtReceiver starts the base phase, returning the kappa base-OT first
// messages to send to the ExtSender.
func NewExtReceiver() (*ExtReceiver, [][]byte, error) {
	r := &ExtReceiver{}
	msgAs := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		s, msgA, err := NewBaseSender()
		if err != nil {
			return nil, nil, err
		}
		r.base[i] = s
		msgAs[i] = msgA
	}
	return r, msgAs, nil
}

// NewExtSender creates the sender with a fresh random base-choice vector.
func NewExtSender() *ExtSender {
	s := &ExtSender{}
	rnd := bbcrypto.RandomBlock()
	for i := 0; i < kappa; i++ {
		s.s[i] = rnd[i/8]&(1<<uint(i%8)) != 0
	}
	return s
}

// BaseRespond consumes the receiver's base-OT first messages and returns
// the responses. After this, the ExtSender holds the seeds chosen by s.
func (s *ExtSender) BaseRespond(msgAs [][]byte) ([][]byte, error) {
	if len(msgAs) != kappa {
		return nil, errors.New("ot: wrong number of base messages")
	}
	msgBs := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		msgB, key, err := BaseReceiverRespond(s.s[i], msgAs[i])
		if err != nil {
			return nil, err
		}
		msgBs[i] = msgB
		s.seeds[i] = key
	}
	return msgBs, nil
}

// Extend consumes the base responses and the receiver's m choice bits,
// returning the correction matrix u (kappa columns of m bits) for the
// sender. It also fixes the T matrix used to decrypt the final messages.
func (r *ExtReceiver) Extend(msgBs [][]byte, choices []bool) ([][]byte, error) {
	if len(msgBs) != kappa {
		return nil, errors.New("ot: wrong number of base responses")
	}
	m := len(choices)
	r.m = m
	cols := (m + 7) / 8
	choiceBits := make([]byte, cols)
	for j, c := range choices {
		if c {
			choiceBits[j/8] |= 1 << uint(j%8)
		}
	}
	u := make([][]byte, kappa)
	r.t = make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		k0, k1, err := r.base[i].Keys(msgBs[i])
		if err != nil {
			return nil, err
		}
		r.seed0[i], r.seed1[i] = k0, k1
		ti := make([]byte, cols)
		bbcrypto.NewPRG(k0).Read(ti)
		g1 := make([]byte, cols)
		bbcrypto.NewPRG(k1).Read(g1)
		ui := make([]byte, cols)
		for b := range ui {
			ui[b] = ti[b] ^ g1[b] ^ choiceBits[b]
		}
		r.t[i] = ti
		u[i] = ui
	}
	return u, nil
}

// Send consumes the correction matrix and the m message pairs, producing
// the masked pairs for the receiver.
func (s *ExtSender) Send(u [][]byte, pairs [][2]Block) ([][2]Block, error) {
	if len(u) != kappa {
		return nil, errors.New("ot: wrong correction matrix width")
	}
	m := len(pairs)
	cols := (m + 7) / 8
	// Column i of Q: PRG(seed_i) ⊕ s_i·u_i.
	q := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		if len(u[i]) < cols {
			return nil, errors.New("ot: short correction column")
		}
		qi := make([]byte, cols)
		bbcrypto.NewPRG(s.seeds[i]).Read(qi)
		if s.s[i] {
			for b := range qi {
				qi[b] ^= u[i][b]
			}
		}
		q[i] = qi
	}
	var sBlock Block
	for i := 0; i < kappa; i++ {
		if s.s[i] {
			sBlock[i/8] |= 1 << uint(i%8)
		}
	}
	out := make([][2]Block, m)
	for j := 0; j < m; j++ {
		qj := rowOf(q, j)
		out[j][0] = pairs[j][0].XOR(rowHash(j, qj))
		out[j][1] = pairs[j][1].XOR(rowHash(j, qj.XOR(sBlock)))
	}
	return out, nil
}

// ExtStats sizes one OT extension run for observability: the number of
// extended transfers and the bytes moved in each direction.
type ExtStats struct {
	// Wires is the number of extended OTs (choice bits).
	Wires int
	// CorrectionBytes is the size of the IKNP correction matrix u.
	CorrectionBytes int
	// MaskedBytes is the size of the masked label pairs.
	MaskedBytes int
}

// Stats reports the sizes of the extension run after Extend has fixed the
// transfer width; all fields are zero before then.
func (r *ExtReceiver) Stats() ExtStats {
	cols := (r.m + 7) / 8
	return ExtStats{
		Wires:           r.m,
		CorrectionBytes: kappa * cols,
		MaskedBytes:     r.m * 2 * bbcrypto.BlockSize,
	}
}

// Receive unmasks the chosen message of each pair.
func (r *ExtReceiver) Receive(masked [][2]Block, choices []bool) ([]Block, error) {
	if len(masked) != len(choices) || len(choices) != r.m {
		return nil, errors.New("ot: receive length mismatch")
	}
	out := make([]Block, len(masked))
	for j := range masked {
		tj := rowOf(r.t, j)
		h := rowHash(j, tj)
		if choices[j] {
			out[j] = masked[j][1].XOR(h)
		} else {
			out[j] = masked[j][0].XOR(h)
		}
	}
	return out, nil
}

// rowOf extracts row j (kappa bits packed into a Block) of a column-major
// bit matrix.
func rowOf(cols [][]byte, j int) Block {
	var row Block
	byteIdx, mask := j/8, byte(1)<<uint(j%8)
	for i := 0; i < kappa; i++ {
		if cols[i][byteIdx]&mask != 0 {
			row[i/8] |= 1 << uint(i%8)
		}
	}
	return row
}

// rowHash is the correlation-robust hash H(j, v).
func rowHash(j int, v Block) Block {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(j))
	sum := sha256.Sum256(append(idx[:], v[:]...))
	var out Block
	copy(out[:], sum[:])
	return out
}

// ExtTransfer runs a complete in-process OT extension for tests and
// single-process callers: the receiver learns pairs[j][choices[j]] for
// every j and nothing else.
func ExtTransfer(pairs [][2]Block, choices []bool) ([]Block, error) {
	recv, msgAs, err := NewExtReceiver()
	if err != nil {
		return nil, err
	}
	send := NewExtSender()
	msgBs, err := send.BaseRespond(msgAs)
	if err != nil {
		return nil, err
	}
	u, err := recv.Extend(msgBs, choices)
	if err != nil {
		return nil, err
	}
	masked, err := send.Send(u, pairs)
	if err != nil {
		return nil, err
	}
	return recv.Receive(masked, choices)
}
