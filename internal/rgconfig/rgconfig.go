// Package rgconfig persists rule-generator artifacts so the cmd tools can
// exchange them as files, mirroring how RG material is distributed in
// deployments (§2.3): the signed ruleset goes to the middlebox (RG's
// customer), and the endpoint configuration — RG's identity and tag key —
// is installed at clients and servers.
package rgconfig

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/bbcrypto"
	"repro/internal/rules"
	"repro/internal/transport"
)

// signedRulesetFile is the on-disk form of a signed ruleset.
type signedRulesetFile struct {
	Name      string            `json:"name"`
	Rules     []string          `json:"rules"`
	Signature string            `json:"signature"`
	Tags      map[string]string `json:"tags"`
}

// SaveSignedRuleset writes the middlebox's copy of RG's ruleset.
func SaveSignedRuleset(path string, sr *rules.SignedRuleset) error {
	f := signedRulesetFile{
		Name:      sr.Ruleset.Name,
		Signature: base64.StdEncoding.EncodeToString(sr.Signature),
		Tags:      make(map[string]string, len(sr.Tags)),
	}
	for _, r := range sr.Ruleset.Rules {
		f.Rules = append(f.Rules, r.Raw)
	}
	for frag, tag := range sr.Tags {
		f.Tags[hex.EncodeToString(frag[:])] = hex.EncodeToString(tag[:])
	}
	return writeJSON(path, f)
}

// LoadSignedRuleset reads a signed ruleset file.
func LoadSignedRuleset(path string) (*rules.SignedRuleset, error) {
	var f signedRulesetFile
	if err := readJSON(path, &f); err != nil {
		return nil, err
	}
	rs, err := rules.Parse(f.Name, strings.Join(f.Rules, "\n"))
	if err != nil {
		return nil, fmt.Errorf("rgconfig: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(f.Signature)
	if err != nil {
		return nil, fmt.Errorf("rgconfig: bad signature encoding: %w", err)
	}
	sr := &rules.SignedRuleset{
		Ruleset:   rs,
		Signature: sig,
		Tags:      make(map[bbcrypto.Block]bbcrypto.Block, len(f.Tags)),
	}
	for fragHex, tagHex := range f.Tags {
		var frag, tag bbcrypto.Block
		if err := decodeBlock(fragHex, &frag); err != nil {
			return nil, err
		}
		if err := decodeBlock(tagHex, &tag); err != nil {
			return nil, err
		}
		sr.Tags[frag] = tag
	}
	return sr, nil
}

// publicFile is RG's public identity, for the middlebox.
type publicFile struct {
	Name      string `json:"name"`
	PublicKey string `json:"publicKey"`
}

// SavePublic writes RG's public configuration.
func SavePublic(path, name string, pub ed25519.PublicKey) error {
	return writeJSON(path, publicFile{
		Name:      name,
		PublicKey: base64.StdEncoding.EncodeToString(pub),
	})
}

// LoadPublic reads RG's public configuration.
func LoadPublic(path string) (ed25519.PublicKey, string, error) {
	var f publicFile
	if err := readJSON(path, &f); err != nil {
		return nil, "", err
	}
	pub, err := base64.StdEncoding.DecodeString(f.PublicKey)
	if err != nil {
		return nil, "", fmt.Errorf("rgconfig: bad public key: %w", err)
	}
	if len(pub) != ed25519.PublicKeySize {
		return nil, "", fmt.Errorf("rgconfig: public key has %d bytes", len(pub))
	}
	return ed25519.PublicKey(pub), f.Name, nil
}

// endpointFile is the configuration endpoints install (§2.3: "a BlindBox
// HTTPS configuration which includes RG's public key").
type endpointFile struct {
	Name      string `json:"name"`
	PublicKey string `json:"publicKey"`
	TagKey    string `json:"tagKey"`
}

// SaveEndpoint writes the endpoint installation for RG.
func SaveEndpoint(path, name string, pub ed25519.PublicKey, tagKey bbcrypto.Block) error {
	return writeJSON(path, endpointFile{
		Name:      name,
		PublicKey: base64.StdEncoding.EncodeToString(pub),
		TagKey:    hex.EncodeToString(tagKey[:]),
	})
}

// LoadEndpoint reads an endpoint installation.
func LoadEndpoint(path string) (transport.RGMaterial, error) {
	var f endpointFile
	if err := readJSON(path, &f); err != nil {
		return transport.RGMaterial{}, err
	}
	var m transport.RGMaterial
	if err := decodeBlock(f.TagKey, &m.TagKey); err != nil {
		return transport.RGMaterial{}, err
	}
	return m, nil
}

func decodeBlock(s string, out *bbcrypto.Block) error {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != bbcrypto.BlockSize {
		return fmt.Errorf("rgconfig: bad block %q", s)
	}
	copy(out[:], raw)
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o600)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
