package rgconfig

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rules"
)

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func makeSigned(t *testing.T) (*rules.Generator, *rules.SignedRuleset) {
	t.Helper()
	g, err := rules.NewGenerator("FileRG")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Parse("file-test", `alert tcp any any -> any any (msg:"m"; content:"filekw99"; sid:7;)
alert tcp any any -> any any (content:"other-kw"; content:"Server|3a| nginx"; sid:8;)`)
	if err != nil {
		t.Fatal(err)
	}
	return g, g.Sign(rs)
}

func TestSignedRulesetRoundTrip(t *testing.T) {
	g, sr := makeSigned(t)
	path := tmpPath(t, "rules.json")
	if err := SaveSignedRuleset(path, sr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSignedRuleset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ruleset.Rules) != 2 || got.Ruleset.Rules[0].SID != 7 {
		t.Fatalf("rules lost in round trip: %+v", got.Ruleset.Rules)
	}
	if len(got.Tags) != len(sr.Tags) {
		t.Fatalf("tags: got %d want %d", len(got.Tags), len(sr.Tags))
	}
	for frag, tag := range sr.Tags {
		if got.Tags[frag] != tag {
			t.Fatalf("tag mismatch for %x", frag)
		}
	}
	// The signature must still verify after the round trip.
	if !rules.Verify(g.PublicKey(), got) {
		t.Fatal("signature did not survive the round trip")
	}
}

func TestPublicRoundTrip(t *testing.T) {
	g, _ := makeSigned(t)
	path := tmpPath(t, "rg.json")
	if err := SavePublic(path, "FileRG", g.PublicKey()); err != nil {
		t.Fatal(err)
	}
	pub, name, err := LoadPublic(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "FileRG" {
		t.Fatalf("name = %q", name)
	}
	if string(pub) != string(g.PublicKey()) {
		t.Fatal("public key corrupted")
	}
}

func TestEndpointRoundTrip(t *testing.T) {
	g, _ := makeSigned(t)
	path := tmpPath(t, "ep.json")
	if err := SaveEndpoint(path, "FileRG", g.PublicKey(), g.TagKey()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadEndpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.TagKey != g.TagKey() {
		t.Fatal("tag key corrupted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadSignedRuleset(tmpPath(t, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := tmpPath(t, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o600)
	if _, err := LoadSignedRuleset(bad); err == nil {
		t.Fatal("malformed json accepted")
	}
	if _, _, err := LoadPublic(bad); err == nil {
		t.Fatal("malformed public config accepted")
	}
	if _, err := LoadEndpoint(bad); err == nil {
		t.Fatal("malformed endpoint config accepted")
	}

	// Wrong-size key material must be rejected.
	short := tmpPath(t, "short.json")
	os.WriteFile(short, []byte(`{"name":"x","publicKey":"AAAA"}`), 0o600)
	if _, _, err := LoadPublic(short); err == nil {
		t.Fatal("short public key accepted")
	}
	badTag := tmpPath(t, "tag.json")
	os.WriteFile(badTag, []byte(`{"name":"x","publicKey":"AAAA","tagKey":"zz"}`), 0o600)
	if _, err := LoadEndpoint(badTag); err == nil {
		t.Fatal("bad tag key accepted")
	}
}

func TestTamperedRulesetFailsVerify(t *testing.T) {
	g, sr := makeSigned(t)
	path := tmpPath(t, "rules.json")
	if err := SaveSignedRuleset(path, sr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSignedRuleset(path)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := rules.ParseRule(`alert tcp any any -> any any (content:"injected"; sid:99;)`)
	if err != nil {
		t.Fatal(err)
	}
	got.Ruleset.Rules = append(got.Ruleset.Rules, extra)
	if rules.Verify(g.PublicKey(), got) {
		t.Fatal("tampered loaded ruleset verified")
	}
}
