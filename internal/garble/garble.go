// Package garble implements Yao's garbled circuits in the JustGarble style
// the paper's prototype uses (§3.3, §6): free-XOR (Kolesnikov–Schneider),
// point-and-permute, a fixed-key AES hash so that garbling and evaluation
// cost a small constant number of AES calls per AND gate, and (by default)
// GRR3 garbled row reduction, which makes the first row of every AND-gate
// table implicit and cuts transmitted circuit size by 25%.
//
// BlindBox requires garbling to be *deterministic given a shared seed*:
// both endpoints garble the same function with randomness derived from
// krand and the middlebox checks the two garbled circuits are identical
// (§3.3 rule preparation step 2.2), which protects against one malicious
// endpoint garbling incorrectly.
package garble

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bbcrypto"
	"repro/internal/circuit"
)

// Block is re-exported for convenience.
type Block = bbcrypto.Block

// Options selects garbling variants. Both endpoints and the evaluator must
// agree on them (they are part of the Garbled material).
type Options struct {
	// FullRows disables GRR3 row reduction, transmitting all four rows per
	// AND gate (the classic point-and-permute table). Kept for the
	// DESIGN.md ablation; the default (false) elides the first row.
	FullRows bool
	// HalfGates uses the Zahur–Rosulek–Evans two-halves construction:
	// two ciphertexts and two hashes per AND gate — the best known
	// free-XOR-compatible garbling, halving GRR3's table size again.
	HalfGates bool
}

// Garbled is the material the evaluator (the middlebox) receives: the
// AND-gate tables plus output-decoding information. It reveals nothing
// about wire values beyond what evaluation on one input exposes.
type Garbled struct {
	// FixedKey keys the garbling hash; it is public.
	FixedKey Block
	// Rows is the number of transmitted rows per AND gate: 2 (half
	// gates), 3 (GRR3) or 4 (classic point-and-permute).
	Rows int
	// Tables holds Rows blocks per AND gate, flattened in gate order. With
	// GRR3 the row for input colors (0,0) is implicit (all zeros) and the
	// stored rows are those for colors (0,1), (1,0), (1,1).
	Tables []Block
	// Decode holds one decode entry per circuit output: for wire outputs,
	// the permute bit of the false label; for constant outputs, the value.
	Decode []DecodeEntry
}

// DecodeEntry decodes one output wire.
type DecodeEntry struct {
	// Const marks outputs that folded to a constant at build time.
	Const bool
	// Val is the constant value (Const=true) or the permute bit d such
	// that output = LSB(label) XOR d (Const=false).
	Val bool
}

// Labels is the garbler's secret: the false-label of every input wire and
// the global free-XOR offset R. The true label of wire i is L0[i] XOR R.
//
//bb:secret
type Labels struct {
	L0 []Block
	R  Block
}

// Pair returns (false-label, true-label) for input wire i — the OT sender
// inputs when the evaluator chooses the bit obliviously.
func (l *Labels) Pair(i int) (Block, Block) {
	return l.L0[i], l.L0[i].XOR(l.R)
}

// For returns the label encoding the given bit on input wire i — used for
// the garbler's own inputs, which are handed to the evaluator directly.
func (l *Labels) For(i int, bit bool) Block {
	if bit {
		return l.L0[i].XOR(l.R)
	}
	return l.L0[i]
}

// Garble garbles the circuit with GRR3 row reduction and randomness drawn
// from rng. Given equal circuits, fixed keys and rng streams, the output
// is bit-identical — the property the middlebox's equality check relies on.
func Garble(c *circuit.Circuit, fixedKey Block, rng io.Reader) (*Garbled, *Labels, error) {
	return GarbleWith(c, fixedKey, rng, Options{})
}

// GarbleWith garbles with explicit options.
func GarbleWith(c *circuit.Circuit, fixedKey Block, rng io.Reader, opts Options) (*Garbled, *Labels, error) {
	h := bbcrypto.NewFixedKeyHash(fixedKey)
	readBlock := func() (Block, error) {
		var b Block
		_, err := io.ReadFull(rng, b[:])
		return b, err
	}

	r, err := readBlock()
	if err != nil {
		return nil, nil, fmt.Errorf("garble: reading R: %w", err)
	}
	r[bbcrypto.BlockSize-1] |= 1 // LSB(R)=1 so labels of a pair differ in color

	nWires := c.NInputs + len(c.Gates)
	l0 := make([]Block, nWires)
	for i := 0; i < c.NInputs; i++ {
		if l0[i], err = readBlock(); err != nil {
			return nil, nil, fmt.Errorf("garble: reading input label: %w", err)
		}
	}

	// refLabel0 returns the label that encodes "ref evaluates to false".
	refLabel0 := func(ref circuit.Ref) Block {
		lbl := l0[ref.ID]
		if ref.Neg {
			lbl = lbl.XOR(r)
		}
		return lbl
	}

	rows := 3
	switch {
	case opts.FullRows && opts.HalfGates:
		return nil, nil, errors.New("garble: FullRows and HalfGates are mutually exclusive")
	case opts.FullRows:
		rows = 4
	case opts.HalfGates:
		rows = 2
	}
	g := &Garbled{FixedKey: fixedKey, Rows: rows, Tables: make([]Block, 0, rows*c.NumAND())}
	for gi, gate := range c.Gates {
		out := c.NInputs + gi
		a0 := refLabel0(gate.A)
		b0 := refLabel0(gate.B)
		switch gate.Op {
		case circuit.XOR:
			// Free-XOR: C0 = A0 ⊕ B0, no table.
			l0[out] = a0.XOR(b0)
		case circuit.AND:
			pa, pb := a0.LSB(), b0.LSB()

			// labelFor returns the input label carrying semantic value v.
			labelFor := func(base Block, v int) Block {
				if v == 1 {
					return base.XOR(r)
				}
				return base
			}

			if opts.HalfGates {
				// ZRE15 half gates: a generator half (garbler knows pb)
				// and an evaluator half (evaluator knows its own color),
				// each one ciphertext.
				a1 := a0.XOR(r)
				b1 := b0.XOR(r)
				jG := uint64(2 * gi)
				jE := uint64(2*gi + 1)

				tG := h.Hash1(a0, jG).XOR(h.Hash1(a1, jG))
				if pb == 1 {
					tG = tG.XOR(r)
				}
				wG0 := h.Hash1(a0, jG)
				if pa == 1 {
					wG0 = wG0.XOR(tG)
				}

				tE := h.Hash1(b0, jE).XOR(h.Hash1(b1, jE)).XOR(a0)
				wE0 := h.Hash1(b0, jE)
				if pb == 1 {
					wE0 = wE0.XOR(tE.XOR(a0))
				}

				l0[out] = wG0.XOR(wE0)
				g.Tables = append(g.Tables, tG, tE)
				continue
			}

			tweak := uint64(gi)
			var c0 Block
			if opts.FullRows {
				// Classic P&P: fresh random output label, 4 rows.
				if c0, err = readBlock(); err != nil {
					return nil, nil, fmt.Errorf("garble: reading gate label: %w", err)
				}
			} else {
				// GRR3: pin the colors-(0,0) row to zero. A label with
				// color 0 on wire A carries value pa (va = ca ⊕ pa).
				v00 := (pa & pb)
				cV00 := h.Hash(labelFor(a0, pa), labelFor(b0, pb), tweak)
				c0 = cV00
				if v00 == 1 {
					c0 = c0.XOR(r)
				}
			}
			l0[out] = c0

			for ca := 0; ca < 2; ca++ {
				for cb := 0; cb < 2; cb++ {
					if !opts.FullRows && ca == 0 && cb == 0 {
						continue // implicit zero row
					}
					va := ca ^ pa
					vb := cb ^ pb
					cLbl := c0
					if va&vb == 1 {
						cLbl = cLbl.XOR(r)
					}
					row := h.Hash(labelFor(a0, va), labelFor(b0, vb), tweak).XOR(cLbl)
					g.Tables = append(g.Tables, row)
				}
			}
		}
	}

	for _, ref := range c.Outputs {
		if ref.IsConst {
			g.Decode = append(g.Decode, DecodeEntry{Const: true, Val: ref.Val})
			continue
		}
		g.Decode = append(g.Decode, DecodeEntry{Val: refLabel0(ref).LSB() == 1})
	}

	inputs := make([]Block, c.NInputs)
	copy(inputs, l0[:c.NInputs])
	return g, &Labels{L0: inputs, R: r}, nil
}

// Eval evaluates the garbled circuit on one label per input wire and
// returns the decoded output bits. The evaluator learns nothing about the
// garbler's labels beyond the outputs.
func Eval(c *circuit.Circuit, g *Garbled, inputLabels []Block) ([]bool, error) {
	if len(inputLabels) != c.NInputs {
		return nil, fmt.Errorf("garble: got %d input labels, want %d", len(inputLabels), c.NInputs)
	}
	if len(g.Decode) != len(c.Outputs) {
		return nil, errors.New("garble: decode table does not match circuit outputs")
	}
	if g.Rows < 2 || g.Rows > 4 {
		return nil, fmt.Errorf("garble: unsupported row count %d", g.Rows)
	}
	if c.NumAND()*g.Rows != len(g.Tables) {
		return nil, errors.New("garble: gate table size mismatch")
	}
	h := bbcrypto.NewFixedKeyHash(g.FixedKey)
	labels := make([]Block, c.NInputs+len(c.Gates))
	copy(labels, inputLabels)

	andIdx := 0
	for gi, gate := range c.Gates {
		a := labels[gate.A.ID]
		b := labels[gate.B.ID]
		out := c.NInputs + gi
		switch gate.Op {
		case circuit.XOR:
			labels[out] = a.XOR(b)
		case circuit.AND:
			switch g.Rows {
			case 2:
				// Half-gates evaluation: two single-input hashes.
				tG := g.Tables[andIdx*2]
				tE := g.Tables[andIdx*2+1]
				wg := h.Hash1(a, uint64(2*gi))
				if a.LSB() == 1 {
					wg = wg.XOR(tG)
				}
				we := h.Hash1(b, uint64(2*gi+1))
				if b.LSB() == 1 {
					we = we.XOR(tE.XOR(a))
				}
				labels[out] = wg.XOR(we)
			case 3:
				hv := h.Hash(a, b, uint64(gi))
				rowIdx := a.LSB()*2 + b.LSB()
				if rowIdx == 0 {
					// GRR3 implicit zero row: label = H(a, b, tweak).
					labels[out] = hv
				} else {
					labels[out] = g.Tables[andIdx*3+rowIdx-1].XOR(hv)
				}
			default:
				hv := h.Hash(a, b, uint64(gi))
				labels[out] = g.Tables[andIdx*4+a.LSB()*2+b.LSB()].XOR(hv)
			}
			andIdx++
		}
	}

	out := make([]bool, len(c.Outputs))
	for i, ref := range c.Outputs {
		d := g.Decode[i]
		if d.Const {
			out[i] = d.Val
			continue
		}
		// The decode entry was computed from refLabel0, which already
		// folds in the reference's negation, so no extra flip is needed.
		bit := labels[ref.ID].LSB() == 1
		out[i] = bit != d.Val
	}
	return out, nil
}

// Equal reports whether two garbled circuits are bit-identical — the
// middlebox's §3.3 consistency check between the two endpoints' circuits.
func Equal(a, b *Garbled) bool {
	// The fixed key and garbled tables are the public transcript both
	// endpoints send to the middlebox; comparison timing reveals nothing.
	//lint:ignore ct-compare fixed key and row counts are public transcript values
	if a.FixedKey != b.FixedKey || a.Rows != b.Rows ||
		len(a.Tables) != len(b.Tables) || len(a.Decode) != len(b.Decode) {
		return false
	}
	for i := range a.Tables {
		//lint:ignore ct-compare garbled tables are public transcript values
		if a.Tables[i] != b.Tables[i] {
			return false
		}
	}
	for i := range a.Decode {
		if a.Decode[i] != b.Decode[i] {
			return false
		}
	}
	return true
}

// Size returns the wire size of the garbled circuit in bytes — the
// per-rule transmission cost the paper reports (599 KB per circuit for
// their 6800-gate AES; ours is larger in proportion to its AND count).
func (g *Garbled) Size() int {
	return bbcrypto.BlockSize + 1 + len(g.Tables)*bbcrypto.BlockSize + 8 + len(g.Decode)
}

// Stats sizes the garbled material for observability (DESIGN.md §8): the
// AND-gate count implied by the tables, the transmitted rows, and the
// serialized wire bytes.
type Stats struct {
	// Gates is the number of AND gates the tables cover.
	Gates int
	// TableRows is the total number of transmitted ciphertext rows.
	TableRows int
	// WireBytes is the serialized transmission cost (Size).
	WireBytes int
}

// Stats reports the sizes of this garbled circuit.
func (g *Garbled) Stats() Stats {
	gates := 0
	if g.Rows > 0 {
		gates = len(g.Tables) / g.Rows
	}
	return Stats{Gates: gates, TableRows: len(g.Tables), WireBytes: g.Size()}
}

// Marshal serializes the garbled circuit for transmission.
func (g *Garbled) Marshal() []byte {
	buf := bytes.NewBuffer(make([]byte, 0, g.Size()+16))
	buf.Write(g.FixedKey[:])
	buf.WriteByte(byte(g.Rows))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(g.Tables)))
	buf.Write(n[:])
	for _, row := range g.Tables {
		buf.Write(row[:])
	}
	binary.BigEndian.PutUint32(n[:], uint32(len(g.Decode)))
	buf.Write(n[:])
	for _, d := range g.Decode {
		var b byte
		if d.Const {
			b |= 2
		}
		if d.Val {
			b |= 1
		}
		buf.WriteByte(b)
	}
	return buf.Bytes()
}

// Unmarshal parses a serialized garbled circuit.
func Unmarshal(data []byte) (*Garbled, error) {
	g := &Garbled{}
	if len(data) < bbcrypto.BlockSize+1+4 {
		return nil, errors.New("garble: short buffer")
	}
	copy(g.FixedKey[:], data)
	data = data[bbcrypto.BlockSize:]
	g.Rows = int(data[0])
	data = data[1:]
	if g.Rows < 2 || g.Rows > 4 {
		return nil, fmt.Errorf("garble: bad row count %d", g.Rows)
	}
	nTables := binary.BigEndian.Uint32(data)
	data = data[4:]
	need := int(nTables) * bbcrypto.BlockSize
	if int(nTables) > len(data) || len(data) < need+4 {
		return nil, errors.New("garble: truncated tables")
	}
	g.Tables = make([]Block, nTables)
	for i := range g.Tables {
		copy(g.Tables[i][:], data)
		data = data[bbcrypto.BlockSize:]
	}
	nDecode := binary.BigEndian.Uint32(data)
	data = data[4:]
	if int(nDecode) > len(data) {
		return nil, errors.New("garble: truncated decode table")
	}
	g.Decode = make([]DecodeEntry, nDecode)
	for i := range g.Decode {
		g.Decode[i] = DecodeEntry{Const: data[i]&2 != 0, Val: data[i]&1 != 0}
	}
	return g, nil
}
