package garble

import (
	"bytes"
	"crypto/aes"
	"crypto/rand"
	"testing"

	"repro/internal/bbcrypto"
	"repro/internal/circuit"
)

// evalWith garbles c with the given seed and evaluates it on the given
// plaintext input bits, returning the decoded outputs.
func evalWith(t *testing.T, c *circuit.Circuit, seed bbcrypto.Block, inputs []bool) []bool {
	t.Helper()
	g, labels, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(seed))
	if err != nil {
		t.Fatal(err)
	}
	inLabels := make([]Block, c.NInputs)
	for i, bit := range inputs {
		inLabels[i] = labels.For(i, bit)
	}
	out, err := Eval(c, g, inLabels)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// smallCircuit builds a circuit exercising every gate kind, negated inputs
// and all three output-reference forms (gate, negated, constant).
func smallCircuit() *circuit.Circuit {
	b := circuit.NewBuilder(3)
	x, y, z := b.Input(0), b.Input(1), b.Input(2)
	and := b.AND(x, y)
	mux := b.MUX(z, b.NOT(x), y)
	or := b.OR(and, b.NOT(z))
	return b.Build([]circuit.Ref{
		and, b.NOT(and), mux, or, b.XOR(x, b.NOT(y)),
		circuit.Const(true), circuit.Const(false), x,
	})
}

func TestGarbledEvalMatchesPlainEvalExhaustive(t *testing.T) {
	c := smallCircuit()
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := c.Evaluate(in)
		got := evalWith(t, c, bbcrypto.Block{byte(v)}, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("input %v output %d: garbled=%v plain=%v", in, i, got[i], want[i])
			}
		}
	}
}

func TestDeterministicGarbling(t *testing.T) {
	// Same circuit + same seed => bit-identical garbled circuits. This is
	// what lets the middlebox verify the two endpoints agree (§3.3).
	c := smallCircuit()
	seed := bbcrypto.Block{7}
	g1, l1, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(seed))
	if err != nil {
		t.Fatal(err)
	}
	g2, l2, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g1, g2) {
		t.Fatal("same seed produced different garbled circuits")
	}
	if l1.R != l2.R || l1.L0[0] != l2.L0[0] {
		t.Fatal("same seed produced different labels")
	}
	g3, _, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{8}))
	if err != nil {
		t.Fatal(err)
	}
	if Equal(g1, g3) {
		t.Fatal("different seeds produced equal garbled circuits")
	}
}

func TestLabelPairsDifferByR(t *testing.T) {
	c := smallCircuit()
	_, labels, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NInputs; i++ {
		l0, l1 := labels.Pair(i)
		if l0.XOR(l1) != labels.R {
			t.Fatal("label pair does not differ by R")
		}
		if l0.LSB() == l1.LSB() {
			t.Fatal("label pair has equal colors; point-and-permute broken")
		}
	}
}

func TestGarbledAESMatchesStdlib(t *testing.T) {
	// The real workload: evaluate the garbled AES-128 circuit and compare
	// with crypto/aes.
	c := circuit.BuildAES128(circuit.SBoxGF)
	key := make([]byte, 16)
	pt := make([]byte, 16)
	rand.Read(key)
	rand.Read(pt)

	in := append(circuit.BytesToBits(key), circuit.BytesToBits(pt)...)
	got := circuit.BitsToBytes(evalWith(t, c, bbcrypto.Block{42}, in))

	blk, _ := aes.NewCipher(key)
	want := make([]byte, 16)
	blk.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("garbled AES = %x, want %x", got, want)
	}
}

func TestGarbledRuleEncryptAuthorization(t *testing.T) {
	c := circuit.BuildRuleEncrypt(circuit.SBoxGF)
	key := make([]byte, 16)
	krg := make([]byte, 16)
	x := make([]byte, 16)
	rand.Read(key)
	rand.Read(krg)
	rand.Read(x)
	aesOf := func(k, m []byte) []byte {
		blk, _ := aes.NewCipher(k)
		out := make([]byte, 16)
		blk.Encrypt(out, m)
		return out
	}

	in := make([]bool, circuit.RuleEncryptNInputs)
	copy(in[circuit.RuleEncryptXOff:], circuit.BytesToBits(x))
	copy(in[circuit.RuleEncryptTagOff:], circuit.BytesToBits(aesOf(krg, x)))
	copy(in[circuit.RuleEncryptKOff:], circuit.BytesToBits(key))
	copy(in[circuit.RuleEncryptKRGOff:], circuit.BytesToBits(krg))
	got := circuit.BitsToBytes(evalWith(t, c, bbcrypto.Block{9}, in))
	if !bytes.Equal(got, aesOf(key, x)) {
		t.Fatalf("authorized: got %x want %x", got, aesOf(key, x))
	}

	in[circuit.RuleEncryptTagOff+3] = !in[circuit.RuleEncryptTagOff+3]
	got = circuit.BitsToBytes(evalWith(t, c, bbcrypto.Block{9}, in))
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("unauthorized: got %x want zeros", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := smallCircuit()
	g, _, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{3}))
	if err != nil {
		t.Fatal(err)
	}
	data := g.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, got) {
		t.Fatal("marshal round trip lost data")
	}
	if len(data) > g.Size()+16 {
		t.Fatalf("marshal size %d far exceeds Size() %d", len(data), g.Size())
	}
	// Truncations must error, not panic.
	for _, n := range []int{0, 10, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes did not error", n)
		}
	}
}

func TestEvalRejectsBadInputs(t *testing.T) {
	c := smallCircuit()
	g, labels, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(c, g, []Block{labels.L0[0]}); err == nil {
		t.Fatal("short input labels accepted")
	}
	bad := *g
	bad.Tables = bad.Tables[:len(bad.Tables)-1]
	inLabels := make([]Block, c.NInputs)
	for i := range inLabels {
		inLabels[i] = labels.For(i, false)
	}
	if _, err := Eval(c, &bad, inLabels); err == nil {
		t.Fatal("truncated tables accepted")
	}
}

func TestWrongLabelGivesGarbage(t *testing.T) {
	// Evaluating with a label the garbler never issued must not (except
	// with negligible probability) produce the correct AND output chain;
	// here we check the decoded output differs from the true value for at
	// least one input assignment, i.e. security is not vacuous.
	b := circuit.NewBuilder(2)
	and := b.AND(b.Input(0), b.Input(1))
	c := b.Build([]circuit.Ref{and})
	g, labels, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{5}))
	if err != nil {
		t.Fatal(err)
	}
	forged := bbcrypto.RandomBlock()
	out, err := Eval(c, g, []Block{forged, labels.For(1, true)})
	if err != nil {
		t.Fatal(err)
	}
	// The forged evaluation yields an undefined bit; the point is that it
	// does not crash and does not reveal labels. Nothing to assert beyond
	// successful, garbage-tolerant execution.
	_ = out
}

func TestGarbledSizeScalesWithANDGates(t *testing.T) {
	small := circuit.BuildAES128(circuit.SBoxGF)
	g, _, err := Garble(small, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{6}))
	if err != nil {
		t.Fatal(err)
	}
	wantTables := small.NumAND() * g.Rows
	if len(g.Tables) != wantTables {
		t.Fatalf("table rows = %d, want %d", len(g.Tables), wantTables)
	}
	t.Logf("garbled AES-128: %d AND gates, %d rows/gate, %d bytes on the wire",
		small.NumAND(), g.Rows, g.Size())
}

func TestGRR3AndFullRowsAgree(t *testing.T) {
	// Both variants must decode to the plain evaluation on every input.
	c := smallCircuit()
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := c.Evaluate(in)
		for _, opts := range []Options{{}, {FullRows: true}} {
			g, labels, err := GarbleWith(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{byte(v)}), opts)
			if err != nil {
				t.Fatal(err)
			}
			inLabels := make([]Block, c.NInputs)
			for i, bit := range in {
				inLabels[i] = labels.For(i, bit)
			}
			got, err := Eval(c, g, inLabels)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("opts %+v input %v output %d: garbled=%v plain=%v", opts, in, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGRR3SavesAQuarter(t *testing.T) {
	c := circuit.BuildAES128(circuit.SBoxGF)
	grr, _, err := Garble(c, bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := GarbleWith(c, bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}), Options{FullRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if grr.Rows != 3 || full.Rows != 4 {
		t.Fatalf("rows = %d/%d", grr.Rows, full.Rows)
	}
	if len(grr.Tables)*4 != len(full.Tables)*3 {
		t.Fatalf("GRR3 did not save exactly one row per gate: %d vs %d", len(grr.Tables), len(full.Tables))
	}
	ratio := float64(grr.Size()) / float64(full.Size())
	if ratio < 0.74 || ratio > 0.76 {
		t.Fatalf("GRR3 size ratio = %.3f, want ~0.75", ratio)
	}
}

func TestGarbledGRR3AESMatchesStdlib(t *testing.T) {
	// The reduced-row garbled AES must still compute real AES.
	c := circuit.BuildAES128(circuit.SBoxGF)
	key := make([]byte, 16)
	pt := make([]byte, 16)
	rand.Read(key)
	rand.Read(pt)
	in := append(circuit.BytesToBits(key), circuit.BytesToBits(pt)...)
	got := circuit.BitsToBytes(evalWith(t, c, bbcrypto.Block{77}, in))
	blk, _ := aes.NewCipher(key)
	want := make([]byte, 16)
	blk.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("GRR3 garbled AES = %x, want %x", got, want)
	}
}

func TestUnmarshalRejectsBadRows(t *testing.T) {
	c := smallCircuit()
	g, _, err := Garble(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{3}))
	if err != nil {
		t.Fatal(err)
	}
	data := g.Marshal()
	data[16] = 7 // rows byte
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("bad row count accepted")
	}
}

func TestHalfGatesMatchPlainEval(t *testing.T) {
	c := smallCircuit()
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want := c.Evaluate(in)
		g, labels, err := GarbleWith(c, bbcrypto.Block{0xAA}, bbcrypto.NewPRG(bbcrypto.Block{byte(v)}), Options{HalfGates: true})
		if err != nil {
			t.Fatal(err)
		}
		if g.Rows != 2 {
			t.Fatalf("rows = %d", g.Rows)
		}
		inLabels := make([]Block, c.NInputs)
		for i, bit := range in {
			inLabels[i] = labels.For(i, bit)
		}
		got, err := Eval(c, g, inLabels)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("input %v output %d: half-gates=%v plain=%v", in, i, got[i], want[i])
			}
		}
	}
}

func TestHalfGatesAESMatchesStdlib(t *testing.T) {
	c := circuit.BuildAES128(circuit.SBoxGF)
	key := make([]byte, 16)
	pt := make([]byte, 16)
	rand.Read(key)
	rand.Read(pt)
	g, labels, err := GarbleWith(c, bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{13}), Options{HalfGates: true})
	if err != nil {
		t.Fatal(err)
	}
	in := append(circuit.BytesToBits(key), circuit.BytesToBits(pt)...)
	inLabels := make([]Block, c.NInputs)
	for i, bit := range in {
		inLabels[i] = labels.For(i, bit)
	}
	bits, err := Eval(c, g, inLabels)
	if err != nil {
		t.Fatal(err)
	}
	got := circuit.BitsToBytes(bits)
	blk, _ := aes.NewCipher(key)
	want := make([]byte, 16)
	blk.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("half-gates AES = %x, want %x", got, want)
	}
}

func TestHalfGatesHalveGRR3(t *testing.T) {
	c := circuit.BuildAES128(circuit.SBoxGF)
	hg, _, err := GarbleWith(c, bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}), Options{HalfGates: true})
	if err != nil {
		t.Fatal(err)
	}
	grr, _, err := Garble(c, bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(hg.Tables)*3 != len(grr.Tables)*2 {
		t.Fatalf("half gates = %d rows, GRR3 = %d rows", len(hg.Tables), len(grr.Tables))
	}
}

func TestConflictingOptionsRejected(t *testing.T) {
	if _, _, err := GarbleWith(smallCircuit(), bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}),
		Options{FullRows: true, HalfGates: true}); err == nil {
		t.Fatal("conflicting options accepted")
	}
}
