package garble

import (
	"testing"

	"repro/internal/bbcrypto"
)

// FuzzUnmarshal checks garbled-circuit parsing never panics on arbitrary
// bytes and that accepted inputs round-trip.
func FuzzUnmarshal(f *testing.F) {
	g, _, err := Garble(smallCircuit(), bbcrypto.Block{1}, bbcrypto.NewPRG(bbcrypto.Block{1}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 21))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(got.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !Equal(got, again) {
			t.Fatal("garbled circuit round trip diverged")
		}
	})
}
