package retry

import (
	"errors"
	"testing"
	"time"
)

func TestFirstTrySuccessNoSleep(t *testing.T) {
	start := time.Now()
	calls := 0
	err := Policy{Base: time.Second, Max: time.Second}.Do(nil, func(int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("first-try success slept")
	}
}

func TestRecoversAfterFailures(t *testing.T) {
	calls := 0
	err := Policy{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1}.Do(nil,
		func(attempt int) error {
			calls++
			if attempt != calls {
				t.Fatalf("attempt %d on call %d", attempt, calls)
			}
			if attempt < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestExhaustionReturnsTypedError(t *testing.T) {
	sentinel := errors.New("boom")
	var notified []int
	p := Policy{Attempts: 3, Base: time.Millisecond, Seed: 7,
		Notify: func(attempt int, err error, backoff time.Duration) {
			notified = append(notified, attempt)
			if err != sentinel {
				t.Errorf("notify err = %v", err)
			}
			if attempt == 3 && backoff != 0 {
				t.Errorf("final attempt notified with backoff %v", backoff)
			}
		}}
	err := p.Do(nil, func(int) error { return sentinel })
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not *retry.Error", err)
	}
	if re.Attempts != 3 || !errors.Is(err, sentinel) {
		t.Fatalf("attempts=%d Is(sentinel)=%v", re.Attempts, errors.Is(err, sentinel))
	}
	if len(notified) != 3 {
		t.Fatalf("notify calls = %v, want one per attempt", notified)
	}
}

func TestStopInterruptsBackoff(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	err := Policy{Attempts: 5, Base: time.Hour, Max: time.Hour, Seed: 1}.Do(stop,
		func(int) error { return errors.New("always") })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stop did not interrupt the backoff sleep")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.2}.withDefaults()
	rngA, rngB := uint64(42), uint64(42)
	for i := 0; i < 8; i++ {
		a, b := p.backoff(i, &rngA), p.backoff(i, &rngB)
		if a != b {
			t.Fatalf("attempt %d: same seed gave %v and %v", i, a, b)
		}
		if a > p.Max || a <= 0 {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", i, a, p.Max)
		}
	}
	// Without jitter the curve is the pure doubling sequence.
	p.Jitter = 0
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := p.backoff(i, &rngA); got != w*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestZeroValueDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Attempts != DefaultAttempts || p.Base != 50*time.Millisecond ||
		p.Max != time.Second || p.Jitter != 0.2 {
		t.Fatalf("defaults: %+v", p)
	}
	if q := (Policy{Attempts: -4, Jitter: -1}).withDefaults(); q.Attempts != 1 || q.Jitter != 0 {
		t.Fatalf("negative normalization: %+v", q)
	}
}
