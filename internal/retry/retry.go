// Package retry implements bounded retry with jittered exponential
// backoff for the fault-tolerance layer (DESIGN.md §9). The paper assumes
// a well-behaved middlebox on the path (§6); a production deployment must
// instead survive transient dial failures and flaky rule-preparation
// rounds without either giving up on the first hiccup or retrying
// forever. Every retry loop in the tree goes through this package so the
// attempt bound, the backoff curve, and the observability hooks stay in
// one place.
//
// Jitter is deterministic: the backoff sequence is derived from a
// splitmix64 stream seeded per Do call (from the Policy's Seed when set),
// so the chaos suite and the fault experiments replay identical schedules
// run-to-run. No math/rand, no crypto/rand — backoff timing is not a
// security boundary.
package retry

import (
	"errors"
	"fmt"
	"time"
)

// DefaultAttempts is the attempt bound a zero Attempts field selects.
const DefaultAttempts = 3

// Policy bounds one retryable operation. The zero value retries nothing
// beyond the defaults: DefaultAttempts attempts, 50 ms base delay doubling
// to a 1 s cap, 20% jitter. Policies are plain values — copy them freely;
// Do never mutates its receiver, so one Policy is safe for concurrent use
// by any number of goroutines.
type Policy struct {
	// Attempts is the total number of tries, first included. Zero selects
	// DefaultAttempts; 1 disables retrying; negative values are treated
	// as 1.
	Attempts int
	// Base is the delay before the second attempt. Zero selects 50 ms.
	Base time.Duration
	// Max caps the exponential growth of the delay. Zero selects 1 s.
	Max time.Duration
	// Jitter is the fraction of each delay randomized away (0.2 turns a
	// 100 ms delay into 80–100 ms). Zero selects 0.2; negative disables
	// jitter.
	Jitter float64
	// Seed fixes the jitter stream for reproducible schedules; zero
	// derives a seed from the wall clock (distinct processes then spread
	// their retries instead of thundering together).
	Seed uint64
	// Notify, when non-nil, observes every failed attempt before its
	// backoff sleep: the 1-based attempt number, the error, and the sleep
	// about to happen (zero on the final attempt). It runs on the calling
	// goroutine; keep it cheap.
	Notify func(attempt int, err error, backoff time.Duration)
}

// ErrStopped is wrapped into Do's error when the stop channel closed
// during a backoff sleep.
var ErrStopped = errors.New("retry: stopped")

// Error is the typed failure Do returns when every attempt failed: it
// carries the attempt count and wraps the last error, so callers can both
// errors.Is/As through it and report how hard the operation was tried.
type Error struct {
	// Attempts is how many times the operation ran.
	Attempts int
	// Last is the error of the final attempt.
	Last error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("retry: %d attempts exhausted: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Last }

// withDefaults normalizes the zero value into the documented defaults.
func (p Policy) withDefaults() Policy {
	if p.Attempts == 0 {
		p.Attempts = DefaultAttempts
	}
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base == 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max == 0 {
		p.Max = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// splitmix64 is the SplitMix64 generator step: cheap, seedable, and good
// enough to decorrelate backoff timing — its only job here.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Backoff returns the sleep before attempt+2 (so Backoff(0) follows the
// first failure): Base doubled per attempt, capped at Max, with the top
// Jitter fraction randomized by the rng stream.
func (p Policy) backoff(attempt int, rng *uint64) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		cut := time.Duration(float64(d) * p.Jitter)
		if cut > 0 {
			d -= time.Duration(splitmix64(rng) % uint64(cut))
		}
	}
	return d
}

// Do runs op until it succeeds, the attempt bound is exhausted, or stop
// closes during a backoff sleep. op receives the 1-based attempt number.
// A nil stop channel never interrupts. On exhaustion Do returns a *Error
// wrapping the final attempt's error; on interruption it returns an error
// wrapping ErrStopped. Do sleeps only between attempts — a first-try
// success costs nothing over calling op directly.
func (p Policy) Do(stop <-chan struct{}, op func(attempt int) error) error {
	p = p.withDefaults()
	rng := p.Seed
	if rng == 0 {
		rng = uint64(time.Now().UnixNano())
	}
	var last error
	for attempt := 1; ; attempt++ {
		last = op(attempt)
		if last == nil {
			return nil
		}
		if attempt == p.Attempts {
			if p.Notify != nil {
				p.Notify(attempt, last, 0)
			}
			return &Error{Attempts: attempt, Last: last}
		}
		d := p.backoff(attempt-1, &rng)
		if p.Notify != nil {
			p.Notify(attempt, last, d)
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return fmt.Errorf("%w after %d attempts: %w", ErrStopped, attempt, last)
		}
	}
}
