// Package circuit provides a boolean circuit builder and evaluator, used to
// express the function that obfuscated rule encryption garbles (§3.3 of the
// paper): AES-128 encryption of a rule keyword under the session key k,
// gated on an RG authorization check.
//
// Circuits contain only two gate kinds — XOR (free under the free-XOR
// garbling optimization) and AND (costing one garbled table) — with NOT
// folded into wire references and constants propagated at build time. The
// builder hash-conses gates, so structurally repeated subcircuits (such as
// the S-box multiplexer trees) are shared automatically.
package circuit

import "fmt"

// Op is a gate operation.
type Op uint8

const (
	// XOR gates are free to garble (free-XOR).
	XOR Op = iota
	// AND gates cost one garbled table each.
	AND
)

// Ref is a reference to a wire value: a constant, or a (possibly negated)
// wire. Wires 0..NInputs-1 are circuit inputs; wire NInputs+i is the output
// of gate i.
type Ref struct {
	// IsConst marks a constant reference; Val holds its value.
	IsConst bool
	Val     bool
	// ID is the wire index for non-constant refs.
	ID int32
	// Neg negates the wire's value.
	Neg bool
}

// Const returns a constant reference.
func Const(v bool) Ref { return Ref{IsConst: true, Val: v} }

// Gate is one circuit gate. Its output wire ID is NInputs + its index.
// Input references are always non-constant (the builder folds constants).
type Gate struct {
	Op   Op
	A, B Ref
}

// Circuit is an immutable built circuit.
type Circuit struct {
	// NInputs is the number of input wires.
	NInputs int
	// Gates are in topological order.
	Gates []Gate
	// Outputs reference the circuit's output values.
	Outputs []Ref
}

// NumAND returns the number of AND gates — the garbling cost metric.
func (c *Circuit) NumAND() int {
	n := 0
	for _, g := range c.Gates {
		if g.Op == AND {
			n++
		}
	}
	return n
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{in=%d gates=%d and=%d out=%d}",
		c.NInputs, len(c.Gates), c.NumAND(), len(c.Outputs))
}

// Evaluate computes the circuit's outputs on plaintext inputs, for testing
// and as the specification the garbled evaluation must agree with.
func (c *Circuit) Evaluate(inputs []bool) []bool {
	if len(inputs) != c.NInputs {
		//lint:ignore todo-panic circuit-construction width invariant; a violation is a programming error, never reachable from wire data
		panic(fmt.Sprintf("circuit: got %d inputs, want %d", len(inputs), c.NInputs))
	}
	values := make([]bool, c.NInputs+len(c.Gates))
	copy(values, inputs)
	resolve := func(r Ref) bool {
		if r.IsConst {
			return r.Val
		}
		return values[r.ID] != r.Neg
	}
	for i, g := range c.Gates {
		a, b := resolve(g.A), resolve(g.B)
		switch g.Op {
		case XOR:
			values[c.NInputs+i] = a != b
		case AND:
			values[c.NInputs+i] = a && b
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, r := range c.Outputs {
		out[i] = resolve(r)
	}
	return out
}

// Builder incrementally constructs a Circuit.
type Builder struct {
	nInputs int
	gates   []Gate
	cache   map[gateKey]Ref
}

type gateKey struct {
	op   Op
	aID  int32
	aNeg bool
	bID  int32
	bNeg bool
}

// NewBuilder creates a builder with the given number of input wires.
func NewBuilder(nInputs int) *Builder {
	return &Builder{nInputs: nInputs, cache: make(map[gateKey]Ref)}
}

// Input returns a reference to input wire i.
func (b *Builder) Input(i int) Ref {
	if i < 0 || i >= b.nInputs {
		//lint:ignore todo-panic circuit-construction index invariant; a violation is a programming error, never reachable from wire data
		panic(fmt.Sprintf("circuit: input %d out of range [0,%d)", i, b.nInputs))
	}
	return Ref{ID: int32(i)}
}

// Inputs returns references to a contiguous range of input wires.
func (b *Builder) Inputs(start, n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = b.Input(start + i)
	}
	return out
}

// NOT returns the negation of a (free: no gate is emitted).
func (b *Builder) NOT(a Ref) Ref {
	if a.IsConst {
		return Const(!a.Val)
	}
	a.Neg = !a.Neg
	return a
}

// XOR returns a XOR b, folding constants and duplicate operands.
func (b *Builder) XOR(x, y Ref) Ref {
	switch {
	case x.IsConst && y.IsConst:
		return Const(x.Val != y.Val)
	case x.IsConst:
		if x.Val {
			return b.NOT(y)
		}
		return y
	case y.IsConst:
		if y.Val {
			return b.NOT(x)
		}
		return x
	}
	if x.ID == y.ID {
		return Const(x.Neg != y.Neg)
	}
	// Normalize: negations commute out of XOR (¬a⊕b = ¬(a⊕b)); emit the
	// gate on the positive wires and track the result polarity.
	neg := x.Neg != y.Neg
	x.Neg, y.Neg = false, false
	if x.ID > y.ID {
		x, y = y, x
	}
	out := b.emit(Gate{Op: XOR, A: x, B: y})
	out.Neg = neg
	return out
}

// AND returns x AND y, folding constants and duplicates.
func (b *Builder) AND(x, y Ref) Ref {
	switch {
	case x.IsConst && y.IsConst:
		return Const(x.Val && y.Val)
	case x.IsConst:
		if x.Val {
			return y
		}
		return Const(false)
	case y.IsConst:
		if y.Val {
			return x
		}
		return Const(false)
	}
	if x.ID == y.ID {
		if x.Neg == y.Neg {
			return x
		}
		return Const(false)
	}
	if x.ID > y.ID {
		x, y = y, x
	}
	return b.emit(Gate{Op: AND, A: x, B: y})
}

// OR returns x OR y via De Morgan (one AND gate).
func (b *Builder) OR(x, y Ref) Ref {
	return b.NOT(b.AND(b.NOT(x), b.NOT(y)))
}

// MUX returns s ? hi : lo using a single AND gate:
// lo XOR (s AND (hi XOR lo)).
func (b *Builder) MUX(s, hi, lo Ref) Ref {
	return b.XOR(lo, b.AND(s, b.XOR(hi, lo)))
}

// emit appends a gate, consulting the hash-consing cache first.
func (b *Builder) emit(g Gate) Ref {
	key := gateKey{op: g.Op, aID: g.A.ID, aNeg: g.A.Neg, bID: g.B.ID, bNeg: g.B.Neg}
	if r, ok := b.cache[key]; ok {
		return r
	}
	b.gates = append(b.gates, g)
	r := Ref{ID: int32(b.nInputs + len(b.gates) - 1)}
	b.cache[key] = r
	return r
}

// Build finalizes the circuit with the given outputs.
func (b *Builder) Build(outputs []Ref) *Circuit {
	return &Circuit{NInputs: b.nInputs, Gates: b.gates, Outputs: outputs}
}

// MuxTree selects table[index] where index is formed from the selector bits
// (sel[0] is the least significant). The table length must be 1<<len(sel).
// Constant folding collapses the constant leaves, so an 8-bit tree (an
// S-box output bit) costs far fewer than 255 AND gates.
func (b *Builder) MuxTree(sel []Ref, table []bool) Ref {
	if len(table) != 1<<len(sel) {
		//lint:ignore todo-panic circuit-construction width invariant; a violation is a programming error, never reachable from wire data
		panic("circuit: table size must be 2^len(sel)")
	}
	if len(sel) == 0 {
		return Const(table[0])
	}
	top := sel[len(sel)-1]
	half := len(table) / 2
	lo := b.MuxTree(sel[:len(sel)-1], table[:half])
	hi := b.MuxTree(sel[:len(sel)-1], table[half:])
	return b.MUX(top, hi, lo)
}

// EqualConst returns a reference that is true iff the wires equal the given
// constant bits (used for table lookups and comparisons).
func (b *Builder) EqualConst(wires []Ref, bits []bool) Ref {
	acc := Const(true)
	for i, w := range wires {
		bit := w
		if !bits[i] {
			bit = b.NOT(w)
		}
		acc = b.AND(acc, bit)
	}
	return acc
}

// Equal returns a reference that is true iff xs and ys are bitwise equal.
func (b *Builder) Equal(xs, ys []Ref) Ref {
	if len(xs) != len(ys) {
		//lint:ignore todo-panic circuit-construction width invariant; a violation is a programming error, never reachable from wire data
		panic("circuit: Equal on different widths")
	}
	acc := Const(true)
	for i := range xs {
		acc = b.AND(acc, b.NOT(b.XOR(xs[i], ys[i])))
	}
	return acc
}

// XORWords XORs two equal-width bit vectors.
func (b *Builder) XORWords(xs, ys []Ref) []Ref {
	if len(xs) != len(ys) {
		//lint:ignore todo-panic circuit-construction width invariant; a violation is a programming error, never reachable from wire data
		panic("circuit: XORWords on different widths")
	}
	out := make([]Ref, len(xs))
	for i := range xs {
		out[i] = b.XOR(xs[i], ys[i])
	}
	return out
}
