// AES-128 as a boolean circuit, plus the obfuscated-rule-encryption
// function F of §3.3. Bytes are represented as 8 wire references, least
// significant bit first.

package circuit

import "math/bits"

// SBoxImpl selects the S-box circuit construction — a design ablation
// (DESIGN.md): the GF(2^8)-inverse construction needs ~4x fewer AND gates
// than the multiplexer tree.
type SBoxImpl int

const (
	// SBoxGF computes the S-box as inversion in GF(2^8) via the addition
	// chain x^254 (four multiplications; squarings are linear and free)
	// followed by the free affine transform.
	SBoxGF SBoxImpl = iota
	// SBoxMux computes each S-box output bit as an 8-level multiplexer
	// tree over the 256-entry table (with constant folding).
	SBoxMux
)

// String names the S-box implementation for benchmark output.
func (s SBoxImpl) String() string {
	if s == SBoxMux {
		return "mux"
	}
	return "gf"
}

// sbox is the AES S-box, generated (rather than transcribed) to avoid
// typos: multiplicative inverse in GF(2^8) followed by the affine map.
var sbox = func() [256]byte {
	var sb [256]byte
	// Walk the multiplicative group: p runs over generator-3 powers while q
	// runs over inverse powers, so q = p^-1 throughout.
	p, q := byte(1), byte(1)
	for {
		// p *= 3 (i.e. p = p ^ xtime(p)).
		xt := p << 1
		if p&0x80 != 0 {
			xt ^= 0x1B
		}
		p ^= xt
		// q /= 3.
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		sb[p] = affine(q)
		if p == 1 {
			break
		}
	}
	sb[0] = affine(0)
	return sb
}()

func affine(q byte) byte {
	return q ^ bits.RotateLeft8(q, 1) ^ bits.RotateLeft8(q, 2) ^
		bits.RotateLeft8(q, 3) ^ bits.RotateLeft8(q, 4) ^ 0x63
}

// SBoxTable exposes the generated S-box for tests and the plaintext
// baseline.
func SBoxTable() [256]byte { return sbox }

// cbyte is a circuit byte: 8 refs, LSB first.
type cbyte [8]Ref

// gfSquare squares in GF(2^8): bit spreading followed by linear reduction —
// entirely XOR, hence free to garble.
func gfSquare(b *Builder, x cbyte) cbyte {
	var c [15]Ref
	for i := range c {
		c[i] = Const(false)
	}
	for i := 0; i < 8; i++ {
		c[2*i] = x[i]
	}
	return gfReduce(b, c)
}

// gfMul multiplies in GF(2^8) with 64 AND gates (schoolbook partial
// products) and a free reduction.
func gfMul(b *Builder, x, y cbyte) cbyte {
	var c [15]Ref
	for i := range c {
		c[i] = Const(false)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			c[i+j] = b.XOR(c[i+j], b.AND(x[i], y[j]))
		}
	}
	return gfReduce(b, c)
}

// gfReduce reduces a 15-term polynomial modulo x^8 + x^4 + x^3 + x + 1.
func gfReduce(b *Builder, c [15]Ref) cbyte {
	for k := 14; k >= 8; k-- {
		for _, off := range [4]int{0, 1, 3, 4} {
			c[k-8+off] = b.XOR(c[k-8+off], c[k])
		}
	}
	var out cbyte
	copy(out[:], c[:8])
	return out
}

// gfInverse computes x^254 = x^-1 (with 0 -> 0) using four multiplications.
func gfInverse(b *Builder, x cbyte) cbyte {
	x2 := gfSquare(b, x)                                            // x^2
	x3 := gfMul(b, x2, x)                                           // x^3
	x12 := gfSquare(b, gfSquare(b, x3))                             // x^12
	x15 := gfMul(b, x12, x3)                                        // x^15
	x240 := gfSquare(b, gfSquare(b, gfSquare(b, gfSquare(b, x15)))) // x^240
	x252 := gfMul(b, x240, x12)                                     // x^252
	return gfMul(b, x252, x2)                                       // x^254
}

// sboxGF builds the S-box from the field inverse plus the affine transform.
func sboxGF(b *Builder, x cbyte) cbyte {
	inv := gfInverse(b, x)
	var out cbyte
	for i := 0; i < 8; i++ {
		// out_i = inv_i ^ inv_{(i+4)%8} ^ inv_{(i+5)%8} ^ inv_{(i+6)%8} ^
		//         inv_{(i+7)%8} ^ const_i, the bit form of the affine map.
		acc := inv[i]
		for _, d := range [4]int{4, 5, 6, 7} {
			acc = b.XOR(acc, inv[(i+d)%8])
		}
		if 0x63&(1<<uint(i)) != 0 {
			acc = b.NOT(acc)
		}
		out[i] = acc
	}
	return out
}

// sboxMux builds each S-box output bit as a multiplexer tree.
func sboxMux(b *Builder, x cbyte) cbyte {
	var out cbyte
	for bit := 0; bit < 8; bit++ {
		table := make([]bool, 256)
		for v := 0; v < 256; v++ {
			table[v] = sbox[v]&(1<<uint(bit)) != 0
		}
		out[bit] = b.MuxTree(x[:], table)
	}
	return out
}

func subByte(b *Builder, x cbyte, impl SBoxImpl) cbyte {
	if impl == SBoxMux {
		return sboxMux(b, x)
	}
	return sboxGF(b, x)
}

// xtimeC doubles a circuit byte in GF(2^8) — free.
func xtimeC(b *Builder, x cbyte) cbyte {
	var out cbyte
	out[0] = x[7]
	out[1] = b.XOR(x[0], x[7])
	out[2] = x[1]
	out[3] = b.XOR(x[2], x[7])
	out[4] = b.XOR(x[3], x[7])
	out[5] = x[4]
	out[6] = x[5]
	out[7] = x[6]
	return out
}

func xorBytes(b *Builder, x, y cbyte) cbyte {
	var out cbyte
	for i := range out {
		out[i] = b.XOR(x[i], y[i])
	}
	return out
}

func constByte(v byte) cbyte {
	var out cbyte
	for i := range out {
		out[i] = Const(v&(1<<uint(i)) != 0)
	}
	return out
}

// AESEncrypt appends an AES-128 encryption to the builder: keyBits and
// ptBits are 128 wire references each (byte order as in FIPS-197 input
// blocks, LSB-first within each byte); the returned 128 refs are the
// ciphertext bits.
func AESEncrypt(b *Builder, keyBits, ptBits []Ref, impl SBoxImpl) []Ref {
	if len(keyBits) != 128 || len(ptBits) != 128 {
		//lint:ignore todo-panic circuit-construction width invariant; a violation is a programming error, never reachable from wire data
		panic("circuit: AESEncrypt wants 128+128 input bits")
	}
	toBytes := func(bits []Ref) []cbyte {
		out := make([]cbyte, len(bits)/8)
		for i := range out {
			copy(out[i][:], bits[i*8:i*8+8])
		}
		return out
	}
	key := toBytes(keyBits)
	state := toBytes(ptBits)

	// Key schedule: 44 words of 4 bytes.
	rcon := [10]byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}
	w := make([][4]cbyte, 44)
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		temp := w[i-1]
		if i%4 == 0 {
			// RotWord then SubWord then Rcon.
			temp = [4]cbyte{temp[1], temp[2], temp[3], temp[0]}
			for j := range temp {
				temp[j] = subByte(b, temp[j], impl)
			}
			temp[0] = xorBytes(b, temp[0], constByte(rcon[i/4-1]))
		}
		for j := range temp {
			w[i][j] = xorBytes(b, w[i-4][j], temp[j])
		}
	}
	roundKey := func(r int) []cbyte {
		rk := make([]cbyte, 16)
		for c := 0; c < 4; c++ {
			for rr := 0; rr < 4; rr++ {
				// State byte (row rr, column c) sits at flat index rr+4c
				// and equals byte rr of word 4r+c.
				rk[rr+4*c] = w[4*r+c][rr]
			}
		}
		return rk
	}
	addRoundKey := func(st, rk []cbyte) {
		for i := range st {
			st[i] = xorBytes(b, st[i], rk[i])
		}
	}
	subBytesAll := func(st []cbyte) {
		for i := range st {
			st[i] = subByte(b, st[i], impl)
		}
	}
	shiftRows := func(st []cbyte) {
		old := make([]cbyte, 16)
		copy(old, st)
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				st[r+4*c] = old[r+4*((c+r)%4)]
			}
		}
	}
	mixColumns := func(st []cbyte) {
		for c := 0; c < 4; c++ {
			var a, d [4]cbyte
			for r := 0; r < 4; r++ {
				a[r] = st[r+4*c]
				d[r] = xtimeC(b, a[r])
			}
			for r := 0; r < 4; r++ {
				// 2*a[r] ^ 3*a[r+1] ^ a[r+2] ^ a[r+3]
				out := d[r]
				out = xorBytes(b, out, d[(r+1)%4])
				out = xorBytes(b, out, a[(r+1)%4])
				out = xorBytes(b, out, a[(r+2)%4])
				out = xorBytes(b, out, a[(r+3)%4])
				st[r+4*c] = out
			}
		}
	}

	addRoundKey(state, roundKey(0))
	for round := 1; round <= 9; round++ {
		subBytesAll(state)
		shiftRows(state)
		mixColumns(state)
		addRoundKey(state, roundKey(round))
	}
	subBytesAll(state)
	shiftRows(state)
	addRoundKey(state, roundKey(10))

	out := make([]Ref, 128)
	for i, by := range state {
		copy(out[i*8:], by[:])
	}
	return out
}

// BuildAES128 builds a standalone AES-128 circuit: inputs are 128 key bits
// followed by 128 plaintext bits; outputs are the 128 ciphertext bits.
func BuildAES128(impl SBoxImpl) *Circuit {
	b := NewBuilder(256)
	out := AESEncrypt(b, b.Inputs(0, 128), b.Inputs(128, 128), impl)
	return b.Build(out)
}

// RuleEncryptInputs documents the input layout of BuildRuleEncrypt.
const (
	// RuleEncryptXOff is the offset of the keyword-fragment block x
	// (middlebox input, obtained via oblivious transfer).
	RuleEncryptXOff = 0
	// RuleEncryptTagOff is the offset of RG's authorization tag for x
	// (middlebox input, obtained via oblivious transfer).
	RuleEncryptTagOff = 128
	// RuleEncryptKOff is the offset of the session detection key k
	// (endpoint input, labels handed to MB directly).
	RuleEncryptKOff = 256
	// RuleEncryptKRGOff is the offset of RG's tag key (endpoint input).
	RuleEncryptKRGOff = 384
	// RuleEncryptNInputs is the total input width.
	RuleEncryptNInputs = 512
)

// BuildRuleEncrypt builds the obfuscated-rule-encryption function F of
// §3.3: on input [x, tag] (middlebox) and [k, kRG] (endpoints),
//
//	F = AES_k(x)   if tag == AES_kRG(x)   (x is RG-authorized)
//	F = 0          otherwise
//
// The paper's F verifies RG's signature on x; a public-key verification
// circuit is infeasible to garble, so BlindBox-style deployments use a
// symmetric authorization check (DESIGN.md substitution #3): RG's tag key
// is installed at the endpoints, RG hands tags to the middlebox, and the
// circuit releases AES_k(x) only for tagged inputs.
func BuildRuleEncrypt(impl SBoxImpl) *Circuit {
	b := NewBuilder(RuleEncryptNInputs)
	x := b.Inputs(RuleEncryptXOff, 128)
	tag := b.Inputs(RuleEncryptTagOff, 128)
	k := b.Inputs(RuleEncryptKOff, 128)
	krg := b.Inputs(RuleEncryptKRGOff, 128)

	mac := AESEncrypt(b, krg, x, impl)
	ok := b.Equal(mac, tag)
	enc := AESEncrypt(b, k, x, impl)
	out := make([]Ref, 128)
	for i := range out {
		out[i] = b.AND(ok, enc[i])
	}
	return b.Build(out)
}

// BytesToBits expands bytes to bools, LSB-first within each byte — the bit
// convention of every circuit in this package.
func BytesToBits(data []byte) []bool {
	out := make([]bool, len(data)*8)
	for i, by := range data {
		for j := 0; j < 8; j++ {
			out[i*8+j] = by&(1<<uint(j)) != 0
		}
	}
	return out
}

// BitsToBytes packs bools back into bytes, LSB-first within each byte.
func BitsToBytes(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, v := range bits {
		if v {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}
