package circuit

import (
	"bytes"
	"crypto/aes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestBuilderConstantFolding(t *testing.T) {
	b := NewBuilder(2)
	x, y := b.Input(0), b.Input(1)
	if r := b.XOR(Const(true), Const(true)); !r.IsConst || r.Val {
		t.Fatal("const XOR const not folded")
	}
	if r := b.AND(Const(false), x); !r.IsConst || r.Val {
		t.Fatal("AND with false not folded")
	}
	if r := b.AND(Const(true), x); r != x {
		t.Fatal("AND with true not identity")
	}
	if r := b.XOR(x, x); !r.IsConst || r.Val {
		t.Fatal("x XOR x not false")
	}
	if r := b.AND(x, b.NOT(x)); !r.IsConst || r.Val {
		t.Fatal("x AND NOT x not false")
	}
	if r := b.AND(x, x); r != x {
		t.Fatal("x AND x not x")
	}
	if len(b.gates) != 0 {
		t.Fatalf("folding emitted %d gates", len(b.gates))
	}
	_ = y
}

func TestBuilderHashConsing(t *testing.T) {
	b := NewBuilder(2)
	x, y := b.Input(0), b.Input(1)
	g1 := b.AND(x, y)
	g2 := b.AND(y, x) // commuted: must reuse the same gate
	if g1 != g2 {
		t.Fatal("commuted AND not hash-consed")
	}
	x1 := b.XOR(x, y)
	x2 := b.XOR(b.NOT(x), b.NOT(y)) // ¬x⊕¬y == x⊕y
	if x1 != x2 {
		t.Fatalf("XOR negation normalization failed: %+v vs %+v", x1, x2)
	}
	x3 := b.XOR(b.NOT(x), y) // == ¬(x⊕y)
	if x3.ID != x1.ID || x3.Neg == x1.Neg {
		t.Fatal("half-negated XOR must share the gate with flipped polarity")
	}
}

func TestEvaluateTruthTables(t *testing.T) {
	b := NewBuilder(2)
	x, y := b.Input(0), b.Input(1)
	c := b.Build([]Ref{
		b.XOR(x, y), b.AND(x, y), b.OR(x, y), b.NOT(x),
		b.MUX(x, y, b.NOT(y)),
	})
	for _, tc := range []struct {
		in   [2]bool
		want [5]bool
	}{
		{[2]bool{false, false}, [5]bool{false, false, false, true, true}},
		{[2]bool{false, true}, [5]bool{true, false, true, true, false}},
		{[2]bool{true, false}, [5]bool{true, false, true, false, false}},
		{[2]bool{true, true}, [5]bool{false, true, true, false, true}},
	} {
		got := c.Evaluate(tc.in[:])
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("in=%v out[%d]=%v want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestMuxTreeMatchesTable(t *testing.T) {
	table := make([]bool, 256)
	for i := range table {
		table[i] = (i*37+11)%3 == 0
	}
	b := NewBuilder(8)
	out := b.MuxTree(b.Inputs(0, 8), table)
	c := b.Build([]Ref{out})
	for v := 0; v < 256; v++ {
		in := make([]bool, 8)
		for j := 0; j < 8; j++ {
			in[j] = v&(1<<uint(j)) != 0
		}
		if got := c.Evaluate(in)[0]; got != table[v] {
			t.Fatalf("MuxTree(%d) = %v, want %v", v, got, table[v])
		}
	}
}

func TestEqualConstAndEqual(t *testing.T) {
	b := NewBuilder(8)
	xs := b.Inputs(0, 4)
	ys := b.Inputs(4, 4)
	c := b.Build([]Ref{
		b.EqualConst(xs, []bool{true, false, true, false}),
		b.Equal(xs, ys),
	})
	in := []bool{true, false, true, false, true, false, true, false}
	got := c.Evaluate(in)
	if !got[0] || !got[1] {
		t.Fatalf("expected both equalities true, got %v", got)
	}
	in[0] = false
	got = c.Evaluate(in)
	if got[0] || got[1] {
		t.Fatalf("expected both equalities false, got %v", got)
	}
}

func TestSBoxGeneration(t *testing.T) {
	sb := SBoxTable()
	// Known values from FIPS-197.
	known := map[int]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x10: 0xca}
	for in, want := range known {
		if sb[in] != want {
			t.Fatalf("sbox[%#x] = %#x, want %#x", in, sb[in], want)
		}
	}
	// The S-box must be a permutation.
	var seen [256]bool
	for _, v := range sb {
		if seen[v] {
			t.Fatal("sbox is not a permutation")
		}
		seen[v] = true
	}
}

func TestSBoxCircuitsExhaustive(t *testing.T) {
	sb := SBoxTable()
	for _, impl := range []SBoxImpl{SBoxGF, SBoxMux} {
		b := NewBuilder(8)
		var in cbyte
		copy(in[:], b.Inputs(0, 8))
		out := subByte(b, in, impl)
		c := b.Build(out[:])
		for v := 0; v < 256; v++ {
			bits := make([]bool, 8)
			for j := 0; j < 8; j++ {
				bits[j] = v&(1<<uint(j)) != 0
			}
			got := BitsToBytes(c.Evaluate(bits))[0]
			if got != sb[v] {
				t.Fatalf("impl %v: sbox(%#x) = %#x, want %#x", impl, v, got, sb[v])
			}
		}
	}
}

func TestGFMulMatchesReference(t *testing.T) {
	// Reference GF(2^8) multiply.
	ref := func(a, y byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if y&1 != 0 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1B
			}
			y >>= 1
		}
		return p
	}
	b := NewBuilder(16)
	var x, y cbyte
	copy(x[:], b.Inputs(0, 8))
	copy(y[:], b.Inputs(8, 8))
	out := gfMul(b, x, y)
	c := b.Build(out[:])
	f := func(a, bb byte) bool {
		in := BytesToBits([]byte{a, bb})
		got := BitsToBytes(c.Evaluate(in))[0]
		return got == ref(a, bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAES128CircuitFIPS197Vector(t *testing.T) {
	// FIPS-197 appendix C.1.
	key := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
		0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	for _, impl := range []SBoxImpl{SBoxGF, SBoxMux} {
		c := BuildAES128(impl)
		in := append(BytesToBits(key), BytesToBits(pt)...)
		got := BitsToBytes(c.Evaluate(in))
		if !bytes.Equal(got, want) {
			t.Fatalf("impl %v: AES circuit = %x, want %x", impl, got, want)
		}
	}
}

func TestAES128CircuitMatchesStdlib(t *testing.T) {
	c := BuildAES128(SBoxGF)
	for i := 0; i < 10; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rand.Read(key)
		rand.Read(pt)
		blk, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		blk.Encrypt(want, pt)
		in := append(BytesToBits(key), BytesToBits(pt)...)
		got := BitsToBytes(c.Evaluate(in))
		if !bytes.Equal(got, want) {
			t.Fatalf("key=%x pt=%x: circuit=%x stdlib=%x", key, pt, got, want)
		}
	}
}

func TestAESGateCountAblation(t *testing.T) {
	gf := BuildAES128(SBoxGF)
	mux := BuildAES128(SBoxMux)
	if gf.NumAND() >= mux.NumAND() {
		t.Fatalf("GF S-box (%d ANDs) not smaller than mux S-box (%d ANDs)",
			gf.NumAND(), mux.NumAND())
	}
	// 200 S-boxes x 256 ANDs = 51200 plus nothing else costs ANDs.
	if gf.NumAND() != 200*4*64 {
		t.Fatalf("GF AES AND count = %d, want %d", gf.NumAND(), 200*4*64)
	}
	t.Logf("AES-128 AND gates: gf=%d mux=%d (total gates gf=%d mux=%d)",
		gf.NumAND(), mux.NumAND(), len(gf.Gates), len(mux.Gates))
}

func TestRuleEncryptCircuit(t *testing.T) {
	c := BuildRuleEncrypt(SBoxGF)

	key := make([]byte, 16)
	krg := make([]byte, 16)
	x := make([]byte, 16)
	rand.Read(key)
	rand.Read(krg)
	rand.Read(x)

	aesOf := func(k, m []byte) []byte {
		blk, _ := aes.NewCipher(k)
		out := make([]byte, 16)
		blk.Encrypt(out, m)
		return out
	}
	tag := aesOf(krg, x)

	in := make([]bool, RuleEncryptNInputs)
	copy(in[RuleEncryptXOff:], BytesToBits(x))
	copy(in[RuleEncryptTagOff:], BytesToBits(tag))
	copy(in[RuleEncryptKOff:], BytesToBits(key))
	copy(in[RuleEncryptKRGOff:], BytesToBits(krg))

	got := BitsToBytes(c.Evaluate(in))
	if !bytes.Equal(got, aesOf(key, x)) {
		t.Fatalf("authorized input: F = %x, want AES_k(x) = %x", got, aesOf(key, x))
	}

	// Flip one tag bit: output must be all zeros (unauthorized).
	in[RuleEncryptTagOff] = !in[RuleEncryptTagOff]
	got = BitsToBytes(c.Evaluate(in))
	for _, by := range got {
		if by != 0 {
			t.Fatalf("unauthorized input: F = %x, want zeros", got)
		}
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 64 {
			return true
		}
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateWrongInputCountPanics(t *testing.T) {
	b := NewBuilder(2)
	c := b.Build([]Ref{b.Input(0)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input count")
		}
	}()
	c.Evaluate([]bool{true})
}
