// Trace assembly: merge span streams from the three BlindBox parties,
// align their clocks, reconstruct the per-flow span tree, and attribute
// the flow's wall-clock to a critical path. This is the library behind
// `bbtrace -assemble` and `blindbench -experiment setupbreakdown`.
//
// Clock alignment (DESIGN.md §8): span timestamps come from up to three
// machines. For every cross-party parent→child link, the child is known
// to have *started* inside the parent's true-time interval (the parent
// hands work to the child and outlives its start: the middlebox reads the
// hello only after the client sent it, scans start while the forwarder
// lives, and so on — note span *ends* carry no such guarantee, which is
// why only starts are used). Each link therefore bounds the child party's
// clock offset relative to the parent party's:
//
//	parent.Start ≤ child.Start + off ≤ parent.End
//	⇒ off ∈ [parent.Start − child.Start, parent.End − child.Start]
//
// The bounds intersect over all links between a party pair, and the lower
// bound is the estimate: it is tight up to one network transit (the child
// that starts closest to its parent's start — for the middlebox, its
// handshake span starting one hello-transit after the client's connection
// span), while the upper bound is only as tight as the parent's length.
// Offsets propagate breadth-first from the root span's party (offset 0).
// On one host the estimate is within the hello transit of 0.

package obs

import (
	"fmt"
	"sort"
)

// SpanNode is one span placed in its flow's tree. Start/End are the
// aligned times (root party's clock, nanoseconds, clamped into the
// parent's interval so the tree nests); Span keeps the raw record.
type SpanNode struct {
	// Span is the raw record as emitted.
	Span Span
	// Children are the node's child spans, sorted by aligned start.
	Children []*SpanNode
	// Start and End are the aligned, clamped interval bounds.
	Start, End int64
	// SelfCritNs is the critical-path time attributed to this span
	// itself (its interval minus the parts covered by the child chain
	// the critical walk descended into).
	SelfCritNs int64
}

// FlowTrace is one assembled flow: every span sharing a trace ID, rooted
// at the single parentless span.
type FlowTrace struct {
	// Trace is the 32-hex trace ID.
	Trace string
	// Root is the flow's root span (nil when the trace has no
	// parentless span — then every span is in Orphans).
	Root *SpanNode
	// Orphans are spans of this trace not reachable from Root by parent
	// links: missing parents, duplicate/extra roots, ID collisions, or
	// parent cycles. A well-formed trace has none.
	Orphans []Span
	// Partial marks a sampled trace whose rooting party's spans never
	// reached the sink (head decision false at that party, flow
	// uninteresting there): Root is then a synthesized placeholder
	// standing in for the sampled-out root span, not an emitted span.
	Partial bool
	// Offsets maps each party to the nanoseconds added to its clocks
	// during alignment (root party: 0).
	Offsets map[string]int64
	// WallNs is the root span's duration — the flow's wall-clock.
	WallNs int64
	// CritNs is the total critical-path time attributed across the
	// tree; equals WallNs for a well-formed trace.
	CritNs int64
}

// StageStat aggregates one span name inside a flow.
type StageStat struct {
	// Name is the span name (see the Span* constants).
	Name string `json:"name"`
	// Count is how many spans of this name the flow holds.
	Count int `json:"count"`
	// TotalNs sums the spans' durations (may exceed the wall-clock when
	// the stage runs in parallel).
	TotalNs int64 `json:"total_ns"`
	// CritNs is the critical-path time attributed to this stage.
	CritNs int64 `json:"crit_ns"`
	// MaxConc is the peak number of simultaneously-open spans of this
	// name (per-stage concurrency).
	MaxConc int `json:"max_conc"`
	// Tokens/Bytes/Gates/Rows sum the spans' work counters.
	Tokens int `json:"tokens,omitempty"`
	Bytes  int `json:"bytes,omitempty"`
	Gates  int `json:"gates,omitempty"`
	Rows   int `json:"rows,omitempty"`
}

// Interval is a half-open [Start, End) time range in nanoseconds.
type Interval struct {
	// Start and End bound the interval; End < Start is treated as empty.
	Start, End int64
}

// UnionNs returns the total length of the union of the intervals —
// overlap counted once. Used for coverage accounting (what fraction of a
// window the named sub-spans explain).
func UnionNs(iv []Interval) int64 {
	if len(iv) == 0 {
		return 0
	}
	sorted := append([]Interval(nil), iv...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var total int64
	curS, curE := sorted[0].Start, sorted[0].End
	for _, v := range sorted[1:] {
		if v.End <= v.Start {
			continue
		}
		if v.Start > curE {
			if curE > curS {
				total += curE - curS
			}
			curS, curE = v.Start, v.End
			continue
		}
		if v.End > curE {
			curE = v.End
		}
	}
	if curE > curS {
		total += curE - curS
	}
	return total
}

// AssembleSpans groups spans by trace ID, builds each flow's span tree
// with clock alignment and critical-path attribution, and returns the
// flows sorted by root start time. Spans without a trace ID (v1 flat
// spans) are returned separately as untraced.
func AssembleSpans(spans []Span) (flows []*FlowTrace, untraced []Span, err error) {
	byTrace := map[string][]Span{}
	for _, sp := range spans {
		if sp.TraceID == "" || sp.SpanID == 0 {
			untraced = append(untraced, sp)
			continue
		}
		if _, perr := ParseTraceID(sp.TraceID); perr != nil {
			return nil, nil, fmt.Errorf("span %q flow %d: %w", sp.Name, sp.Flow, perr)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for id, group := range byTrace {
		flows = append(flows, assembleOne(id, group))
	}
	sort.Slice(flows, func(i, j int) bool {
		si, sj := flowSortKey(flows[i]), flowSortKey(flows[j])
		if si != sj {
			return si < sj
		}
		return flows[i].Trace < flows[j].Trace
	})
	return flows, untraced, nil
}

func flowSortKey(ft *FlowTrace) int64 {
	if ft.Root != nil {
		return ft.Root.Span.Start
	}
	return 0
}

// assembleOne builds a single flow's tree from its raw spans.
func assembleOne(trace string, group []Span) *FlowTrace {
	ft := &FlowTrace{Trace: trace, Offsets: map[string]int64{}}

	// Index spans by ID; duplicates and surplus roots are orphans.
	nodes := map[uint64]*SpanNode{}
	var root *SpanNode
	for _, sp := range group {
		if _, dup := nodes[sp.SpanID]; dup {
			ft.Orphans = append(ft.Orphans, sp)
			continue
		}
		n := &SpanNode{Span: sp}
		nodes[sp.SpanID] = n
		if sp.Parent == 0 {
			if root == nil || sp.Start < root.Span.Start {
				root = n
			}
		}
	}
	if root == nil {
		// No parentless span. For a sampled trace (every span labeled
		// head/tail by a flight recorder) that is expected, not an error:
		// the rooting party's flow was sampled out, so its conn span never
		// reached a sink. Synthesize the missing root instead of orphaning
		// the whole flow.
		root = synthesizeRoot(trace, group, nodes)
		ft.Partial = root != nil
	}
	ft.Root = root
	if root == nil {
		for _, sp := range group {
			ft.Orphans = append(ft.Orphans, sp)
		}
		sortSpans(ft.Orphans)
		return ft
	}

	// Link children; reachability from the root (BFS over child links)
	// is the acyclicity + completeness check: anything unreached —
	// missing parent, second root, or a parent cycle — is an orphan.
	// In a partial trace, spans whose parent was sampled out (any missing
	// parent ID) adopt the synthesized root instead of orphaning.
	for _, n := range nodes {
		if n == root || n.Span.Parent == 0 {
			continue
		}
		if p, ok := nodes[n.Span.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else if ft.Partial {
			root.Children = append(root.Children, n)
		}
	}
	reached := map[*SpanNode]bool{root: true}
	queue := []*SpanNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Children {
			if !reached[c] {
				reached[c] = true
				queue = append(queue, c)
			}
		}
	}
	for _, n := range nodes {
		if !reached[n] {
			ft.Orphans = append(ft.Orphans, n.Span)
		}
	}
	sortSpans(ft.Orphans)
	// Drop unreached nodes' child links into the reached tree: children
	// lists only ever contain reached nodes' subtrees from here on.
	prune(root, reached)

	alignClocks(ft, root)

	// Clamp children into their parents so the tree nests, then walk
	// the critical path.
	root.Start = root.Span.Start + ft.Offsets[root.Span.Party]
	root.End = root.Start + root.Span.Dur
	clamp(root, ft.Offsets)
	ft.WallNs = root.End - root.Start
	markCritical(root)
	ft.CritNs = sumCrit(root)
	return ft
}

// SpanPartialRoot names the placeholder root synthesized for a partial
// sampled trace (see FlowTrace.Partial). It is never emitted by the
// pipeline — only the assembler produces it.
const SpanPartialRoot = "(sampled-out root)"

// synthesizeRoot builds a stand-in root for a rootless sampled trace: the
// most common missing parent ID is, in practice, the sampled-out root span
// every flushed span hangs off (the trace-context root the hello carried),
// so a placeholder under that ID re-adopts the children naturally. Returns
// nil — keeping the legacy all-orphans behavior — unless every span in the
// group carries a Sampled label.
func synthesizeRoot(trace string, group []Span, nodes map[uint64]*SpanNode) *SpanNode {
	missing := map[uint64]int{}
	var earliest *Span
	minStart, maxEnd := int64(0), int64(0)
	for i := range group {
		sp := &group[i]
		if sp.Sampled == "" {
			return nil
		}
		if _, ok := nodes[sp.Parent]; !ok {
			missing[sp.Parent]++
		}
		if earliest == nil || sp.Start < minStart {
			earliest = sp
			minStart = sp.Start
		}
		if end := sp.Start + sp.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	if earliest == nil || len(missing) == 0 {
		return nil
	}
	rootID, best := uint64(0), 0
	for id, n := range missing {
		if n > best || (n == best && id < rootID) {
			rootID, best = id, n
		}
	}
	synth := &SpanNode{Span: Span{
		TraceID: trace, SpanID: rootID, Name: SpanPartialRoot,
		Party: earliest.Party, Flow: earliest.Flow,
		Start: minStart, Dur: maxEnd - minStart,
		Sampled: earliest.Sampled,
	}}
	nodes[rootID] = synth
	return synth
}

func sortSpans(s []Span) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		return s[i].SpanID < s[j].SpanID
	})
}

func prune(n *SpanNode, reached map[*SpanNode]bool) {
	kept := n.Children[:0]
	for _, c := range n.Children {
		if reached[c] {
			kept = append(kept, c)
			prune(c, reached)
		}
	}
	n.Children = kept
}

// alignClocks estimates per-party clock offsets from cross-party
// parent→child start-containment constraints and stores them in
// ft.Offsets (root party = 0).
func alignClocks(ft *FlowTrace, root *SpanNode) {
	type pair struct{ parent, child string }
	type bound struct {
		lo, hi int64
		ok     bool
	}
	bounds := map[pair]*bound{}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		for _, c := range n.Children {
			if c.Span.Party != n.Span.Party {
				k := pair{n.Span.Party, c.Span.Party}
				lo := n.Span.Start - c.Span.Start
				hi := n.Span.Start + n.Span.Dur - c.Span.Start
				b, ok := bounds[k]
				if !ok {
					bounds[k] = &bound{lo: lo, hi: hi, ok: true}
				} else {
					if lo > b.lo {
						b.lo = lo
					}
					if hi < b.hi {
						b.hi = hi
					}
				}
			}
			walk(c)
		}
	}
	walk(root)

	ft.Offsets[root.Span.Party] = 0
	// BFS over party pairs from the root party. The lower bound is the
	// estimate (see the package comment); an empty intersection means
	// inconsistent clocks, where the midpoint is the best effort left.
	progress := true
	for progress {
		progress = false
		for k, b := range bounds {
			if !b.ok {
				continue
			}
			est := b.lo
			if b.lo > b.hi {
				est = (b.lo + b.hi) / 2
			}
			po, haveP := ft.Offsets[k.parent]
			if _, haveC := ft.Offsets[k.child]; haveP && !haveC {
				ft.Offsets[k.child] = po + est
				progress = true
			}
		}
	}
	// Parties with no cross-party link to the root (shouldn't happen in
	// a well-formed trace) get offset 0.
	var fill func(n *SpanNode)
	fill = func(n *SpanNode) {
		if _, ok := ft.Offsets[n.Span.Party]; !ok {
			ft.Offsets[n.Span.Party] = 0
		}
		for _, c := range n.Children {
			fill(c)
		}
	}
	fill(root)
}

// clamp computes aligned child intervals and clips them into the parent
// so intervals strictly nest (alignment is an estimate; without clipping
// a child could poke microseconds past its parent and break the
// critical-path invariant critical ≤ wall).
func clamp(n *SpanNode, offsets map[string]int64) {
	for _, c := range n.Children {
		c.Start = c.Span.Start + offsets[c.Span.Party]
		c.End = c.Start + c.Span.Dur
		if c.Start < n.Start {
			c.Start = n.Start
		}
		if c.End > n.End {
			c.End = n.End
		}
		if c.End < c.Start {
			c.End = c.Start
		}
		clamp(c, offsets)
	}
	// Children are linked from a map walk, so ties on the aligned start
	// need the span ID as a deterministic tie-break or the rendered tree
	// order varies run to run.
	sort.SliceStable(n.Children, func(i, j int) bool {
		if n.Children[i].Start != n.Children[j].Start {
			return n.Children[i].Start < n.Children[j].Start
		}
		return n.Children[i].Span.SpanID < n.Children[j].Span.SpanID
	})
}

// markCritical walks the chain of last-finishing children: starting from
// the node's end, each gap not covered by a child is the node's own
// critical time, and each covering child is descended into. The node's
// interval is attributed exactly once across its subtree, so the tree's
// total critical time equals the root's duration.
func markCritical(n *SpanNode) {
	byEnd := append([]*SpanNode(nil), n.Children...)
	sort.SliceStable(byEnd, func(i, j int) bool { return byEnd[i].End > byEnd[j].End })
	cursor := n.End
	for _, c := range byEnd {
		if c.End > cursor || c.End == c.Start {
			continue // overlapped by an already-attributed child, or empty
		}
		n.SelfCritNs += cursor - c.End
		markCritical(c)
		cursor = c.Start
		if cursor <= n.Start {
			cursor = n.Start
			break
		}
	}
	n.SelfCritNs += cursor - n.Start
}

func sumCrit(n *SpanNode) int64 {
	total := n.SelfCritNs
	for _, c := range n.Children {
		total += sumCrit(c)
	}
	return total
}

// Nodes returns the flow's tree in preorder (root first, children by
// aligned start).
func (ft *FlowTrace) Nodes() []*SpanNode {
	var out []*SpanNode
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if ft.Root != nil {
		walk(ft.Root)
	}
	return out
}

// Stages aggregates the flow's spans by name — count, summed and
// critical-path time, peak concurrency, work counters — sorted by
// critical time descending, then name.
func (ft *FlowTrace) Stages() []StageStat {
	byName := map[string]*StageStat{}
	ivals := map[string][]Interval{}
	for _, n := range ft.Nodes() {
		st := byName[n.Span.Name]
		if st == nil {
			st = &StageStat{Name: n.Span.Name}
			byName[n.Span.Name] = st
		}
		st.Count++
		st.TotalNs += n.End - n.Start
		st.CritNs += n.SelfCritNs
		st.Tokens += n.Span.Tokens
		st.Bytes += n.Span.Bytes
		st.Gates += n.Span.Gates
		st.Rows += n.Span.Rows
		ivals[n.Span.Name] = append(ivals[n.Span.Name], Interval{n.Start, n.End})
	}
	var out []StageStat
	for name, st := range byName {
		st.MaxConc = maxConcurrency(ivals[name])
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CritNs != out[j].CritNs {
			return out[i].CritNs > out[j].CritNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// maxConcurrency sweeps the intervals and returns the peak overlap.
func maxConcurrency(iv []Interval) int {
	type edge struct {
		t     int64
		delta int
	}
	var edges []edge
	for _, v := range iv {
		if v.End <= v.Start {
			continue
		}
		edges = append(edges, edge{v.Start, 1}, edge{v.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // close before open at the same instant
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
