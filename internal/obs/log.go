// Structured logging glue: the pipeline logs through log/slog, and the
// packages that accept an optional *slog.Logger normalize nil to a
// disabled logger so call sites never nil-check.

package obs

import (
	"io"
	"log/slog"
)

// nopLogger discards everything; its handler reports Enabled() == false for
// every level, so disabled log calls cost one interface call and no
// formatting.
var nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127),
}))

// OrNop returns l, or a disabled logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// NewLogger builds the standard text logger the cmd binaries use.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
